package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Path  string // import path (or a synthetic path for testdata)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module without any
// external driver: module-internal imports are resolved against the
// module directory, and standard-library imports are type-checked from
// $GOROOT/src by the compiler-source importer. Loaded packages are
// memoized, so a whole-tree run type-checks each package (and each
// stdlib dependency) once.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader rooted at the module containing dir (dir or
// the nearest parent with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  root,
		ModulePath: modpath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Import implements types.Importer over the loader's resolution rules,
// so type-checking one module package can pull in its module and
// standard-library dependencies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package named by importPath.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	return l.loadDir(dir, importPath)
}

// LoadDir parses and type-checks the package in dir under a synthetic
// import path (used for testdata packages outside the module tree).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs, abs)
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// ExpandPatterns resolves package patterns ("./...", "./internal/...",
// or plain package directories relative to the module root) into
// import paths of packages that exist in the module tree. testdata,
// vendor and hidden directories are never matched by "..." wildcards.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(base) {
				add(l.importPathFor(base))
			} else {
				return nil, fmt.Errorf("analysis: no Go package in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(l.importPathFor(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
