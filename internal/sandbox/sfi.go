package sandbox

import (
	"errors"
	"fmt"
)

// Verification errors.
var (
	ErrEmptyProgram = errors.New("sandbox: empty program")
	ErrReservedReg  = errors.New("sandbox: program uses the reserved sandbox register")
	ErrNoHalt       = errors.New("sandbox: program has no halt instruction")
)

// Verify statically checks a source program: known opcodes, in-range
// registers and jump targets, no use of the reserved sandbox register,
// and at least one halt. This is the (cheap, structural) part of what
// a certifying compiler would guarantee; it does NOT make the program
// memory-safe — that is exactly what either SFI or certification must
// provide.
func Verify(p Program) error {
	if len(p) == 0 {
		return ErrEmptyProgram
	}
	hasHalt := false
	for pc, ins := range p {
		if ins.Op >= opcodeCount {
			return fmt.Errorf("%w: opcode %d at pc=%d", ErrBadInstr, ins.Op, pc)
		}
		if ins.Op == OpCheck {
			// Check instructions are inserted by the rewriter, never
			// written by component authors.
			return fmt.Errorf("%w: explicit check at pc=%d", ErrReservedReg, pc)
		}
		if int(ins.A) >= NumRegs || int(ins.B) >= NumRegs || int(ins.C) >= NumRegs {
			return fmt.Errorf("%w: register out of range at pc=%d", ErrBadInstr, pc)
		}
		if usesReg(ins, SandboxReg) {
			return fmt.Errorf("%w: at pc=%d (%v)", ErrReservedReg, pc, ins)
		}
		switch ins.Op {
		case OpJmp, OpJeq, OpJne, OpJlt, OpJge:
			if ins.Imm < 0 || ins.Imm >= int64(len(p)) {
				return fmt.Errorf("%w: target %d at pc=%d", ErrBadJump, ins.Imm, pc)
			}
		case OpHalt:
			hasHalt = true
		}
	}
	if !hasHalt {
		return ErrNoHalt
	}
	return nil
}

func usesReg(ins Instr, r uint8) bool {
	switch ins.Op {
	case OpHalt:
		return ins.A == r
	case OpLoadI:
		return ins.A == r
	case OpMov:
		return ins.A == r || ins.B == r
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr:
		return ins.A == r || ins.B == r || ins.C == r
	case OpAddI:
		return ins.A == r || ins.B == r
	case OpLd8, OpLd16, OpLd32, OpLd64, OpSt8, OpSt16, OpSt32, OpSt64:
		return ins.A == r || ins.B == r
	case OpJmp:
		return false
	case OpJeq, OpJne, OpJlt, OpJge:
		return ins.A == r || ins.B == r
	}
	return false
}

// Rewrite applies software fault isolation to a verified program: a
// check instruction is inserted before every load and store, masking
// the effective address into the segment and placing it in the
// dedicated sandbox register, which the memory instruction is then
// rewritten to use. Jump targets are relocated. This reproduces the
// instruction-level cost structure of Wahbe et al.'s scheme: a few
// extra ALU operations per memory reference and one reserved register.
func Rewrite(p Program) (Program, error) {
	if err := Verify(p); err != nil {
		return nil, err
	}
	// First pass: compute the new index of every old instruction.
	newIndex := make([]int, len(p)+1)
	n := 0
	for i, ins := range p {
		newIndex[i] = n
		if isMemOp(ins.Op) {
			n += 2 // check + rewritten access
		} else {
			n++
		}
	}
	newIndex[len(p)] = n

	out := make(Program, 0, n)
	for _, ins := range p {
		switch {
		case isMemOp(ins.Op):
			out = append(out, Instr{Op: OpCheck, B: ins.B, Imm: ins.Imm})
			rewritten := ins
			rewritten.B = SandboxReg
			rewritten.Imm = 0
			out = append(out, rewritten)
		case isJump(ins.Op):
			relocated := ins
			relocated.Imm = int64(newIndex[ins.Imm])
			out = append(out, relocated)
		default:
			out = append(out, ins)
		}
	}
	return out, nil
}

func isMemOp(op Opcode) bool {
	switch op {
	case OpLd8, OpLd16, OpLd32, OpLd64, OpSt8, OpSt16, OpSt32, OpSt64:
		return true
	}
	return false
}

func isJump(op Opcode) bool {
	switch op {
	case OpJmp, OpJeq, OpJne, OpJlt, OpJge:
		return true
	}
	return false
}
