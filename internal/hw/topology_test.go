package hw

import (
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/mmu"
)

// TestOversubscribedLeaseNodeAccounting: when AcquireCPU runs out of
// exclusive CPUs and falls back to forced shares, remote-frame
// accounting must still follow each lease's real CPU identity. Six
// leases on a 2×2 machine (two of them shared) each touch a node-0
// page, a node-1 page and an untagged page; the OpRemoteFrameAccess
// total must equal the cross-node accesses computed from the CPUs the
// leases actually landed on — a shared CPU charges per lease that uses
// it, an untagged frame charges nothing.
func TestOversubscribedLeaseNodeAccounting(t *testing.T) {
	m := New(Config{PhysFrames: 64, Topology: NewTopology(2, 2)})
	ctx := m.MMU.NewContext()

	type page struct {
		va   mmu.VAddr
		home int32
	}
	pages := []page{{va: 0x10000, home: 0}, {va: 0x20000, home: 1}}
	for _, p := range pages {
		frame, err := m.Phys.AllocFrame()
		if err != nil {
			t.Fatalf("alloc frame: %v", err)
		}
		if err := m.MMU.Map(ctx, p.va, frame, mmu.PermRead|mmu.PermWrite); err != nil {
			t.Fatalf("map %#x: %v", p.va, err)
		}
		if err := m.Phys.SetFrameNode(frame, p.home); err != nil {
			t.Fatalf("set frame node: %v", err)
		}
	}
	const untaggedVA = mmu.VAddr(0x30000)
	frame, err := m.Phys.AllocFrame()
	if err != nil {
		t.Fatalf("alloc untagged frame: %v", err)
	}
	if err := m.MMU.Map(ctx, untaggedVA, frame, mmu.PermRead); err != nil {
		t.Fatalf("map untagged: %v", err)
	}

	leases := make([]CPULease, 6)
	for i := range leases {
		leases[i] = m.AcquireCPU()
	}
	if got := m.SharedLeases(); got != 2 {
		t.Fatalf("SharedLeases() = %d, want 2 (6 leases on 4 CPUs)", got)
	}

	before := m.Meter.Count(clock.OpRemoteFrameAccess)
	var want uint64
	var buf [8]byte
	for i, l := range leases {
		node := m.NodeOfCPU(l.ID())
		for _, p := range pages {
			if err := m.LoadOn(l.ID(), ctx, p.va, buf[:]); err != nil {
				t.Fatalf("lease %d load %#x: %v", i, p.va, err)
			}
			if node != p.home {
				want++
			}
		}
		if err := m.LoadOn(l.ID(), ctx, untaggedVA, buf[:]); err != nil {
			t.Fatalf("lease %d load untagged: %v", i, err)
		}
	}
	if got := m.Meter.Count(clock.OpRemoteFrameAccess) - before; got != want {
		t.Fatalf("OpRemoteFrameAccess delta = %d, want %d (from actual lease CPUs)", got, want)
	}
	for _, l := range leases {
		l.Release()
	}
}
