// Docs-freshness checks: ARCHITECTURE.md documents the full cost
// model, so adding a clock.Op* constant without a row in its table —
// or unlinking the file from the README — fails the build. CI runs
// this as a dedicated step of the test job.
package paramecium_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// clockOps parses internal/clock/clock.go and returns every exported
// Op* constant, straight from the source of truth.
func clockOps(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/clock/clock.go", nil, 0)
	if err != nil {
		t.Fatalf("parse internal/clock/clock.go: %v", err)
	}
	var ops []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if strings.HasPrefix(name.Name, "Op") && name.IsExported() {
					ops = append(ops, name.Name)
				}
			}
		}
	}
	if len(ops) == 0 {
		t.Fatal("found no Op* constants in internal/clock/clock.go")
	}
	return ops
}

// TestArchitectureCostTableFresh fails when ARCHITECTURE.md's cost
// table omits any clock.Op* constant present in internal/clock: the
// table is documented as exhaustive, and this is what keeps it so.
func TestArchitectureCostTableFresh(t *testing.T) {
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("ARCHITECTURE.md must exist at the repository root: %v", err)
	}
	var missing []string
	for _, op := range clockOps(t) {
		if !strings.Contains(string(arch), "`"+op+"`") {
			missing = append(missing, op)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("ARCHITECTURE.md cost table omits %v — add a row (cycles + who pays) for each new clock.Op*", missing)
	}
}

// TestArchitectureLinked pins the docs topology: the README and the
// root package doc both point readers at ARCHITECTURE.md.
func TestArchitectureLinked(t *testing.T) {
	for _, f := range []string{"README.md", "doc.go"} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "ARCHITECTURE.md") {
			t.Fatalf("%s does not link ARCHITECTURE.md", f)
		}
	}
}
