package analysis

import (
	"go/ast"
	"strings"
)

// CPUState guards the per-CPU ownership discipline. Per-CPU state (the
// "cpus" arrays in the MMU and machine layers) may only be reached
// through the blessed entry points — the package's own cpu()/CPUByID
// accessors, a CPU identity threaded in as a CPUID parameter or lease,
// a frame's .CPU field, or a vp.ID() — never by indexing with an
// unrelated integer, which silently reads another CPU's state.
//
// It also polices the boot-CPU compatibility shims: referencing the
// BootCPU constant is only allowed in functions whose doc comment
// says so ("boot CPU"), making every implicit initiator choice an
// explicit, documented decision. The same rule covers the machine's
// compat ACCESS forms — Machine.Load/Store/Touch/TouchTagged delegate
// to their *On counterparts with BootCPU as the initiator, so calling
// one is choosing the boot CPU without writing it down: new call sites
// are flagged unless the calling function's doc acknowledges the
// choice, shrinking the compat surface to genuinely boot-time code.
var CPUState = &Analyzer{
	Name: "cpustate",
	Doc:  "per-CPU state must be reached through a blessed CPU identity",
	Run:  runCPUState,
}

// cpuStatePackages are the packages holding per-CPU arrays.
var cpuStatePackages = []string{
	"internal/mmu",
	"internal/hw",
}

// cpuAccessorFuncs may index the per-CPU array directly: they are the
// blessed accessors everything else must go through.
var cpuAccessorFuncs = map[string]bool{
	"cpu":        true,
	"CPUByID":    true,
	"AcquireCPU": true,
}

func runCPUState(pass *Pass) error {
	checkIndexing := inScopeFor(pass, cpuStatePackages)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if checkIndexing && !cpuAccessorFuncs[fn.Name.Name] {
				checkCPUIndexing(pass, fn)
			}
			checkBootCPUUse(pass, fn)
			checkBootCPUCompatCalls(pass, fn)
		}
	}
	return nil
}

// checkCPUIndexing flags indexing of a "cpus" field by anything that is
// not a CPU identity.
func checkCPUIndexing(pass *Pass, fn *ast.FuncDecl) {
	// Range-key variables over a cpus field are CPU-shaped by
	// construction.
	rangeKeys := make(map[string]string) // key var name -> ranged field text
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if key, ok := r.Key.(*ast.Ident); ok && isCPUsField(r.X) {
			rangeKeys[key.Name] = exprString(r.X)
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok || !isCPUsField(idx.X) {
			return true
		}
		if isBlessedCPUIndex(pass, idx.Index, exprString(idx.X), rangeKeys) {
			return true
		}
		pass.Reportf(idx.Index.Pos(), "per-CPU state indexed by %s, which is not a CPU identity; go through the cpu() accessor, a CPUID parameter, frame.CPU, or vp.ID()", describeIndex(idx.Index))
		return true
	})
}

// isCPUsField matches a selector (or ident) naming a per-CPU array
// field.
func isCPUsField(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name == "cpus"
	case *ast.Ident:
		return e.Name == "cpus"
	}
	return false
}

// isBlessedCPUIndex reports whether the index expression carries a CPU
// identity.
func isBlessedCPUIndex(pass *Pass, index ast.Expr, field string, rangeKeys map[string]string) bool {
	// A value already typed as CPUID (including CPUID(x) conversions).
	if t := pass.TypesInfo.TypeOf(index); t != nil {
		if name := namedTypeName(t); name == "CPUID" {
			return true
		}
	}
	switch index := index.(type) {
	case *ast.Ident:
		// The key variable of a range over the same field.
		if ranged, ok := rangeKeys[index.Name]; ok && ranged == field {
			return true
		}
	case *ast.SelectorExpr:
		// frame.CPU and friends: an explicit CPU slot on a struct.
		if index.Sel.Name == "CPU" {
			return true
		}
	case *ast.CallExpr:
		// vp.ID(): asking a virtual processor for its own identity.
		if sel, ok := index.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "ID" {
			return true
		}
	}
	return false
}

func describeIndex(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return "plain variable " + e.Name
	case *ast.BasicLit:
		return "literal " + e.Value
	case *ast.SelectorExpr:
		return "field " + exprString(e)
	}
	return "an unrelated expression"
}

// bootCPUCompatMethods are the Machine access forms that delegate to
// the boot CPU: each has a *On counterpart taking the initiating CPU.
var bootCPUCompatMethods = map[string]bool{
	"Load":        true,
	"Store":       true,
	"Touch":       true,
	"TouchTagged": true,
}

// checkBootCPUCompatCalls flags calls of the boot-CPU compatibility
// access quartet in functions whose doc does not acknowledge the boot
// CPU. Matching is by the receiver's named type (Machine), never by
// method name alone: Load and Store on atomics, rings, segments and
// name-space snapshots are unrelated.
func checkBootCPUCompatCalls(pass *Pass, fn *ast.FuncDecl) {
	if strings.Contains(strings.ToLower(funcDoc(fn)), "boot cpu") {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !bootCPUCompatMethods[sel.Sel.Name] {
			return true
		}
		if t := pass.TypesInfo.TypeOf(sel.X); namedTypeName(t) != "Machine" {
			return true
		}
		pass.Reportf(call.Pos(), "%s is the boot-CPU compatibility access form; call %sOn with the initiating CPU, or document the boot-CPU choice in the doc comment",
			exprString(sel), sel.Sel.Name)
		return true
	})
}

// checkBootCPUUse flags BootCPU references in functions whose doc does
// not acknowledge the boot-CPU choice.
func checkBootCPUUse(pass *Pass, fn *ast.FuncDecl) {
	if strings.Contains(strings.ToLower(funcDoc(fn)), "boot cpu") {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != "BootCPU" {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		pass.Reportf(id.Pos(), "BootCPU used as an implicit initiator in a function whose doc comment does not mention the boot CPU; thread the real CPU through or document the choice")
		return true
	})
}
