package bench

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tbl Table, row, col int) float64 {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d); rows=%v", tbl.ID, row, col, tbl.Rows)
	}
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tbl.ID, row, col, tbl.Rows[row][col])
	}
	return v
}

// findRow returns the first row whose first column contains substr.
func findRow(t *testing.T, tbl Table, substr string) []string {
	t.Helper()
	for _, r := range tbl.Rows {
		if strings.Contains(r[0], substr) {
			return r
		}
	}
	t.Fatalf("%s: no row containing %q", tbl.ID, substr)
	return nil
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%q not numeric", s)
	}
	return v
}

func TestT1InvocationShape(t *testing.T) {
	tbl := T1Invocation()
	direct := num(t, findRow(t, tbl, "direct")[1])
	iface := num(t, findRow(t, tbl, "interface")[1])
	deleg := num(t, findRow(t, tbl, "delegated")[1])
	d4 := num(t, findRow(t, tbl, "depth 4")[1])
	if !(direct < iface && iface <= deleg && deleg <= d4) {
		t.Fatalf("ordering violated: %v", tbl.Rows)
	}
	// The paper's claim: overhead is low — single-digit multiples of a
	// call, not orders of magnitude.
	if iface > 20*direct {
		t.Fatalf("interface call %vx direct — not 'relatively low'", iface/direct)
	}
}

func TestT2CrossDomainShape(t *testing.T) {
	tbl := T2CrossDomain()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		local := cell(t, tbl, i, 1)
		prox := cell(t, tbl, i, 2)
		mono := cell(t, tbl, i, 3)
		if !(local < mono && mono < prox) {
			t.Fatalf("row %d ordering: local=%v mono=%v proxy=%v", i, local, mono, prox)
		}
	}
	// Costs grow with argument size.
	if !(cell(t, tbl, 3, 2) > cell(t, tbl, 0, 2)) {
		t.Fatal("proxy cost does not grow with args")
	}
}

func TestT3InterruptShape(t *testing.T) {
	tbl := T3Interrupt()
	raw := cell(t, tbl, 0, 2)
	protoInline := cell(t, tbl, 1, 2)
	protoBlocked := cell(t, tbl, 2, 2)
	eager := cell(t, tbl, 3, 2)
	if !(raw < protoInline && protoInline < eager) {
		t.Fatalf("raw=%v protoInline=%v eager=%v", raw, protoInline, eager)
	}
	if protoBlocked <= protoInline {
		t.Fatal("promotion not visible")
	}
}

func TestT4CertificationShape(t *testing.T) {
	tbl := T4Certification()
	// Cold validation grows with image size; cached is much cheaper
	// than cold for large images.
	var colds, warms []float64
	for _, r := range tbl.Rows {
		if strings.HasPrefix(r[0], "validate (cold)") {
			colds = append(colds, num(t, r[2]))
		}
		if strings.HasPrefix(r[0], "validate (cached)") {
			warms = append(warms, num(t, r[2]))
		}
	}
	if len(colds) != 5 || len(warms) != 5 {
		t.Fatalf("rows missing: %d cold, %d warm", len(colds), len(warms))
	}
	for i := 1; i < len(colds); i++ {
		if colds[i] < colds[i-1] {
			t.Fatal("cold validation does not grow with size")
		}
	}
	if warms[4] >= colds[4] {
		t.Fatal("cache ineffective")
	}
	// Chain registration grows with depth.
	var chains []float64
	for _, r := range tbl.Rows {
		if strings.HasPrefix(r[0], "register delegation") {
			chains = append(chains, num(t, r[2]))
		}
	}
	if len(chains) != 4 || chains[3] <= chains[0] {
		t.Fatalf("chain costs = %v", chains)
	}
}

func TestT5FilterPlacementShape(t *testing.T) {
	tbl := T5FilterPlacement()
	certified := num(t, findRow(t, tbl, "kernel-certified")[1])
	sandboxed := num(t, findRow(t, tbl, "kernel-sandboxed")[1])
	user := num(t, findRow(t, tbl, "user")[1])
	mono := num(t, findRow(t, tbl, "monolith")[1])
	if !(certified < sandboxed && sandboxed < user) {
		t.Fatalf("certified=%v sandboxed=%v user=%v", certified, sandboxed, user)
	}
	if mono >= sandboxed {
		t.Fatalf("monolith fixed path (%v) should undercut sandboxed (%v)", mono, sandboxed)
	}
}

func TestT6ReconfigurationShape(t *testing.T) {
	tbl := T6Reconfiguration()
	cold := num(t, findRow(t, tbl, "cold")[1])
	bind := num(t, findRow(t, tbl, "bind")[1])
	if cold <= bind {
		t.Fatal("cold load should dwarf a bind")
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
}

func TestF1ThroughputShape(t *testing.T) {
	tbl := F1Throughput()
	last := tbl.Rows[len(tbl.Rows)-1]
	cert := num(t, last[1])
	sfi := num(t, last[2])
	user := num(t, last[3])
	if !(cert > sfi && sfi > user) {
		t.Fatalf("saturation ordering: cert=%v sfi=%v user=%v", cert, sfi, user)
	}
	// At low offered load all placements keep up.
	first := tbl.Rows[0]
	if num(t, first[1]) != num(t, first[2]) || num(t, first[2]) != num(t, first[3]) {
		t.Fatalf("low-load row should be un-saturated: %v", first)
	}
}

func TestF2BreakEvenShape(t *testing.T) {
	tbl := F2BreakEven()
	var evens []float64
	for _, r := range tbl.Rows {
		if r[4] == "never" {
			t.Fatalf("sandboxing never worse? row %v", r)
		}
		evens = append(evens, num(t, r[4]))
	}
	// More filter work per packet -> bigger per-packet saving ->
	// earlier break-even.
	if evens[len(evens)-1] >= evens[0] {
		t.Fatalf("break-even did not fall with work: %v", evens)
	}
}

func TestF3BlockingFractionShape(t *testing.T) {
	tbl := F3BlockingFraction()
	// At 0% blocking proto clearly beats eager.
	p0, e0 := cell(t, tbl, 0, 1), cell(t, tbl, 0, 2)
	if p0 >= e0 {
		t.Fatalf("0%% blocking: proto=%v eager=%v", p0, e0)
	}
	// Proto cost rises with blocking fraction.
	pLast := cell(t, tbl, len(tbl.Rows)-1, 1)
	if pLast <= p0 {
		t.Fatal("proto cost flat despite blocking")
	}
}

func TestF4NamespaceShape(t *testing.T) {
	tbl := F4Namespace()
	d1 := num(t, findRow(t, tbl, "depth 1, direct")[1])
	d8 := num(t, findRow(t, tbl, "depth 8, direct")[1])
	ov := num(t, findRow(t, tbl, "override hit")[1])
	if d8 <= d1 {
		t.Fatal("lookup cost flat with depth")
	}
	if ov >= d8 {
		t.Fatal("override hit not cheaper than deep lookup")
	}
}

func TestF5TrapCostSweepShape(t *testing.T) {
	tbl := F5TrapCostSweep()
	if len(tbl.Rows) != 4*3*2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Higher trap cost -> higher call cost (same switch, same tlb).
	var lowTrap, highTrap float64
	for _, r := range tbl.Rows {
		if r[1] == "200" && r[2] == "asid" {
			if r[0] == "60" {
				lowTrap = num(t, r[3])
			}
			if r[0] == "600" {
				highTrap = num(t, r[3])
			}
		}
	}
	if highTrap <= lowTrap {
		t.Fatalf("trap sweep flat: %v vs %v", lowTrap, highTrap)
	}
	// Flush-on-switch costs more than ASID for the same row.
	var asid, flush float64
	for _, r := range tbl.Rows {
		if r[0] == "120" && r[1] == "200" {
			if r[2] == "asid" {
				asid = num(t, r[3])
			} else {
				flush = num(t, r[3])
			}
		}
	}
	if flush <= asid {
		t.Fatalf("flush (%v) not costlier than asid (%v)", flush, asid)
	}
}

// TestP6ShareBeatsCopyByFourXAtPageSize pins the PR's acceptance
// claim: at a 4 KiB payload the shared-segment path beats the
// copy-through-batch path by at least 4x cycles per transfer, with the
// attach (map) and revoke (shootdown path) charges included in the
// share measurement.
func TestP6ShareBeatsCopyByFourXAtPageSize(t *testing.T) {
	tbl := P6BulkTransfer()
	row := findRow(t, tbl, "4096")
	copyCost, shareCost := num(t, row[1]), num(t, row[2])
	if copyCost < 4*shareCost {
		t.Fatalf("share advantage %.2fx at 4 KiB, want >= 4x (copy %.1f vs share %.1f cycles/op)",
			copyCost/shareCost, copyCost, shareCost)
	}
}

// TestP6ShapeIsFlatVsLinear: share cost is flat in payload size while
// copy cost grows with it — the structural signature of zero-copy.
func TestP6ShapeIsFlatVsLinear(t *testing.T) {
	tbl := P6BulkTransfer()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	small, large := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if num(t, large[1]) < 10*num(t, small[1]) {
		t.Fatalf("copy cost not growing with payload: %v -> %v", small[1], large[1])
	}
	if num(t, large[2]) > 2*num(t, small[2]) {
		t.Fatalf("share cost not flat: %v -> %v", small[2], large[2])
	}
}

func TestRenderAndAll(t *testing.T) {
	tbl := Table{ID: "X", Title: "t", Header: []string{"a", "b"}}
	tbl.AddRow("x", 1)
	tbl.AddRow("longer", 2.5)
	out := tbl.Render()
	if !strings.Contains(out, "== X: t ==") || !strings.Contains(out, "longer") {
		t.Fatalf("render:\n%s", out)
	}
	tables := All()
	if len(tables) != 11 {
		t.Fatalf("All() = %d tables", len(tables))
	}
	ids := map[string]bool{}
	for _, tb := range tables {
		if tb.Render() == "" {
			t.Fatalf("%s renders empty", tb.ID)
		}
		ids[tb.ID] = true
	}
	for _, want := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "F1", "F2", "F3", "F4", "F5"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}
