package proxy

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// liveFrames counts the factory's registered call frames across all
// shards — zero between calls, or frames have leaked.
func liveFrames(f *Factory) int {
	total := 0
	for i := range f.frames.shards {
		s := &f.frames.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// TestGroupedBatchCrossesPerTarget pins the multi-target vectoring
// contract at the meter: a grouped batch alternating two proxies pays
// the crossing bill — trap, fault decode, context-switch pair — once
// per DISTINCT target (and the per-entry decode once per entry),
// where the same interleave in-order pays the full bill per entry.
// Per-target execution order and the scatter of results to original
// entry slots are asserted alongside.
func TestGroupedBatchCrossesPerTarget(t *testing.T) {
	f, svc, m := setup()
	clientCtx := svc.NewDomain()
	const targets = 2
	const size = 16
	ps := make([]*Proxy, targets)
	ns := make([]*atomic.Int64, targets)
	incs := make([]obj.MethodHandle, targets)
	for i := range ps {
		target, n := newBatchTarget(m.Meter)
		p, err := f.New(clientCtx, svc.NewDomain(), target)
		if err != nil {
			t.Fatal(err)
		}
		iv, _ := p.Iface("test.batch.v1")
		inc, err := iv.Resolve("inc")
		if err != nil {
			t.Fatal(err)
		}
		ps[i], ns[i], incs[i] = p, n, inc
	}

	b := obj.NewBatch(size)
	b.SetMode(obj.Grouped)
	before := m.Meter.Snapshot()
	for i := 0; i < size; i++ {
		if err := b.Add(incs[i%targets]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	after := m.Meter.Snapshot()

	if got := after[clock.OpTrapEnter] - before[clock.OpTrapEnter]; got != targets {
		t.Fatalf("trap entries = %d, want %d (one per distinct target)", got, targets)
	}
	if got := after[clock.OpPageFault] - before[clock.OpPageFault]; got != targets {
		t.Fatalf("page faults = %d, want %d", got, targets)
	}
	if got := after[clock.OpCtxSwitch] - before[clock.OpCtxSwitch]; got != 2*targets {
		t.Fatalf("context switches = %d, want %d (one pair per target)", got, 2*targets)
	}
	if got := after[clock.OpBatchEntry] - before[clock.OpBatchEntry]; got != size {
		t.Fatalf("batch-entry decodes = %d, want %d (amortization never skips decode)", got, size)
	}
	if b.Crossings() != targets {
		t.Fatalf("batch crossings = %d, want %d", b.Crossings(), targets)
	}
	for i, p := range ps {
		if p.Crossings() != 1 {
			t.Fatalf("proxy %d crossings = %d, want 1", i, p.Crossings())
		}
		if p.Calls() != size/targets {
			t.Fatalf("proxy %d calls = %d, want %d", i, p.Calls(), size/targets)
		}
		if ns[i].Load() != size/targets {
			t.Fatalf("target %d counter = %d, want %d", i, ns[i].Load(), size/targets)
		}
	}
	// Entry i is the (i/targets)'th call on target i%targets; the
	// counter result pins per-target order, its slot pins the scatter.
	for i := 0; i < size; i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if res[0].(int64) != int64(i/targets+1) {
			t.Fatalf("entry %d result = %v, want %d (per-target order, scattered home)",
				i, res[0], i/targets+1)
		}
	}

	// The same interleave in the default in-order mode: a full
	// crossing per entry — the cliff grouped mode exists to fix.
	b.Reset()
	b.SetMode(obj.InOrder)
	before = m.Meter.Snapshot()
	for i := 0; i < size; i++ {
		if err := b.Add(incs[i%targets]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	after = m.Meter.Snapshot()
	if got := after[clock.OpTrapEnter] - before[clock.OpTrapEnter]; got != size {
		t.Fatalf("in-order trap entries = %d, want %d (one per entry)", got, size)
	}
	for i, p := range ps {
		if p.Crossings() != 1+size/targets {
			t.Fatalf("proxy %d crossings = %d after in-order rerun, want %d",
				i, p.Crossings(), 1+size/targets)
		}
	}
	if n := liveFrames(f); n != 0 {
		t.Fatalf("%d call frames still registered after the batches", n)
	}
}

// TestGroupedBatchDestroyedTargetFailsOnlyItsPartition: with one of
// two targets' domains destroyed, a grouped batch fails that target's
// partition — every entry, "target domain gone" — and still runs the
// surviving target's partition to completion; Run surfaces the dead
// partition's group error.
func TestGroupedBatchDestroyedTargetFailsOnlyItsPartition(t *testing.T) {
	f, svc, m := setup()
	clientCtx := svc.NewDomain()
	liveTarget, liveN := newBatchTarget(m.Meter)
	pLive, err := f.New(clientCtx, svc.NewDomain(), liveTarget)
	if err != nil {
		t.Fatal(err)
	}
	deadCtx := svc.NewDomain()
	deadTarget, deadN := newBatchTarget(m.Meter)
	pDead, err := f.New(clientCtx, deadCtx, deadTarget)
	if err != nil {
		t.Fatal(err)
	}
	ivL, _ := pLive.Iface("test.batch.v1")
	incLive, _ := ivL.Resolve("inc")
	ivD, _ := pDead.Iface("test.batch.v1")
	incDead, _ := ivD.Resolve("inc")
	if err := svc.DestroyDomain(deadCtx); err != nil {
		t.Fatal(err)
	}

	const size = 8
	b := obj.NewBatch(size)
	b.SetMode(obj.Grouped)
	for i := 0; i < size; i++ {
		h := incLive
		if i%2 == 1 {
			h = incDead
		}
		if err := b.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err == nil {
		t.Fatal("no group error from the destroyed target's partition")
	}
	for i := 0; i < size; i++ {
		_, err := b.Results(i)
		if i%2 == 0 {
			if err != nil {
				t.Fatalf("surviving entry %d: %v", i, err)
			}
		} else if err == nil {
			t.Fatalf("entry %d into the destroyed domain carried no error", i)
		}
	}
	if liveN.Load() != size/2 {
		t.Fatalf("surviving counter = %d, want %d", liveN.Load(), size/2)
	}
	if deadN.Load() != 0 {
		t.Fatalf("dead counter = %d, want 0", deadN.Load())
	}
	if n := liveFrames(f); n != 0 {
		t.Fatalf("%d call frames still registered", n)
	}
}

// TestGroupedDestroyMidRunRace: two goroutines run grouped batches
// against overlapping target sets ({A,B} and {B,C}) while C's domain
// is torn down mid-storm. Partitions on surviving targets must keep
// completing, the condemned partition must fail whole — within one
// run C's entries either all succeeded or all failed, never split —
// and when the storm ends no call frame is left registered. Run with
// -race.
func TestGroupedDestroyMidRunRace(t *testing.T) {
	f, svc, m := setup()
	names := []string{"A", "B", "C"}
	proxies := make([]*Proxy, len(names))
	incs := make([]obj.MethodHandle, len(names))
	counters := make([]*atomic.Int64, len(names))
	ctxC := svc.NewDomain()
	for i := range names {
		serverCtx := svc.NewDomain()
		if i == 2 {
			serverCtx = ctxC
		}
		target, n := newBatchTarget(m.Meter)
		p, err := f.New(svc.NewDomain(), serverCtx, target)
		if err != nil {
			t.Fatal(err)
		}
		iv, _ := p.Iface("test.batch.v1")
		inc, err := iv.Resolve("inc")
		if err != nil {
			t.Fatal(err)
		}
		proxies[i], incs[i], counters[i] = p, inc, n
	}

	const size = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := make(chan struct{})
	// worker alternates entries between its two targets in grouped
	// mode; sawClosed reports whether target hb ever failed.
	worker := func(ha, hb obj.MethodHandle, bCanClose bool) {
		defer wg.Done()
		<-start
		b := obj.NewBatch(size)
		b.SetMode(obj.Grouped)
		for !stop.Load() {
			b.Reset()
			for i := 0; i < size; i++ {
				h := ha
				if i%2 == 1 {
					h = hb
				}
				if err := b.Add(h); err != nil {
					t.Error(err)
					return
				}
			}
			err := b.Run()
			bOK, bFailed := 0, 0
			for i := 0; i < size; i++ {
				_, entryErr := b.Results(i)
				if i%2 == 0 {
					// The ha partition is never condemned: it must
					// complete on every run.
					if entryErr != nil {
						t.Errorf("surviving partition entry %d failed: %v", i, entryErr)
						return
					}
					continue
				}
				switch {
				case entryErr == nil:
					bOK++
				case errors.Is(entryErr, ErrClosed) && bCanClose:
					bFailed++
				default:
					t.Errorf("entry %d error = %v", i, entryErr)
					return
				}
			}
			if bOK != 0 && bFailed != 0 {
				t.Errorf("condemned partition split: %d succeeded, %d failed in one run", bOK, bFailed)
				return
			}
			if err != nil && !(errors.Is(err, ErrClosed) && bCanClose) {
				t.Errorf("group error = %v", err)
				return
			}
		}
	}
	wg.Add(2)
	go worker(incs[0], incs[1], false) // {A, B}
	go worker(incs[1], incs[2], true)  // {B, C}
	close(start)

	// Let both goroutines make progress on every target, then condemn
	// C underneath the storm.
	for counters[0].Load() < size || counters[2].Load() < size {
		runtime.Gosched()
	}
	f.CloseTarget(ctxC)
	// CloseTarget has quiesced C: its counter is frozen even though
	// the storm is still running against A and B.
	frozen := counters[2].Load()
	for counters[0].Load() < 4*size || counters[1].Load() < 4*size {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if got := counters[2].Load(); got != frozen {
		t.Fatalf("condemned target's counter moved after CloseTarget: %d -> %d", frozen, got)
	}
	if !proxies[2].Closed() {
		t.Fatal("CloseTarget left C's proxy open")
	}
	if n := liveFrames(f); n != 0 {
		t.Fatalf("%d call frames still registered after the storm", n)
	}
}
