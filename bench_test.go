// Benchmarks regenerating every experiment in DESIGN.md §4. Each
// benchmark drives the experiment's hot path b.N times and reports
// virtual cycles per operation; running with -v also prints the full
// result table exactly as cmd/benchtab would.
package paramecium_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"paramecium/internal/bench"
	"paramecium/internal/clock"
	"paramecium/internal/core"
	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mmu"
	"paramecium/internal/netstack"
	"paramecium/internal/obj"
	"paramecium/internal/probe"
	"paramecium/internal/threads"
)

// logTable prints the experiment's full table when -v is set.
func logTable(b *testing.B, t bench.Table) {
	b.Helper()
	b.Log("\n" + t.Render())
}

// reportCycles converts a virtual-cycle total into the benchmark's
// custom metric.
func reportCycles(b *testing.B, total uint64) {
	b.ReportMetric(float64(total)/float64(b.N), "cycles/op")
}

func BenchmarkT1_Invocation(b *testing.B) {
	w := bench.NewWorld()
	decl := obj.MustInterfaceDecl("bench.counter.v1", obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	o := obj.New("counter", w.K.Meter)
	n := 0
	bi, err := o.AddInterface(decl, &n)
	if err != nil {
		b.Fatal(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) { n++; return []any{n}, nil })
	iv, _ := o.Iface("bench.counter.v1")
	inc, err := iv.Resolve("inc")
	if err != nil {
		b.Fatal(err)
	}

	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.Call(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.T1Invocation())
}

// newBenchCounter builds a meterless counter object so the Invoke-vs-
// handle pair below measures host-machine dispatch cost only. The
// method is bound in the buffer-threading form and returns its state
// pointer — the paper's interfaces are "methods, state pointers and
// type information" — so a caller that supplies the result buffer
// completes the whole invocation with zero allocations.
func newBenchCounter(b *testing.B) obj.Invoker {
	b.Helper()
	decl := obj.MustInterfaceDecl("bench.counter.v1", obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	o := obj.New("counter", nil)
	n := 0
	bi, err := o.AddInterface(decl, &n)
	if err != nil {
		b.Fatal(err)
	}
	bi.MustBindInto("inc", func(out []any, _ ...any) ([]any, error) {
		n++
		return append(out, &n), nil
	})
	iv, _ := o.Iface("bench.counter.v1")
	return iv
}

// BenchmarkInvokeString and BenchmarkInvokeHandle are the invocation
// microbenchmark pair for the pre-resolved handle redesign: the same
// bound method called through the string-keyed compatibility path
// (name lookup per call, results allocated) and through a handle
// resolved once (slot dispatch with a caller-provided result buffer —
// the zero-allocation fast path, gated at 0 allocs/op in CI).
func BenchmarkInvokeString(b *testing.B) {
	iv := newBenchCounter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iv.Invoke("inc"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvokeHandle(b *testing.B) {
	iv := newBenchCounter(b)
	inc, err := iv.Resolve("inc")
	if err != nil {
		b.Fatal(err)
	}
	var buf [1]any
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.CallInto(buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkB0_ZeroAllocInvoke drives the full zero-allocation
// single-call contract: a method that takes an argument and returns a
// result, called through a pre-resolved handle with a reused argument
// list and a caller-provided result buffer. The CI allocs gate holds
// this (and BenchmarkInvokeHandle) at exactly 0 allocs/op.
func BenchmarkB0_ZeroAllocInvoke(b *testing.B) {
	decl := obj.MustInterfaceDecl("bench.acc.v1", obj.MethodDecl{Name: "add", NumIn: 1, NumOut: 1})
	o := obj.New("accumulator", nil)
	total := 0
	bi, err := o.AddInterface(decl, &total)
	if err != nil {
		b.Fatal(err)
	}
	bi.MustBindInto("add", func(out []any, args ...any) ([]any, error) {
		total += args[0].(int)
		return append(out, &total), nil
	})
	iv, _ := o.Iface("bench.acc.v1")
	add, err := iv.Resolve("add")
	if err != nil {
		b.Fatal(err)
	}
	args := []any{1}
	var buf [1]any
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := add.CallInto(buf[:0], args...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP0_SerializedProxyCall is the pre-PR reference point: the
// same cross-domain handle, but every call serialized through one
// mutex — exactly what the old per-interface pending-slot design
// imposed on concurrent callers. Compare its ns/op against
// BenchmarkP1_ParallelProxyCall at GOMAXPROCS≥8: the ratio is the
// aggregate speedup of the per-call frame redesign.
func BenchmarkP0_SerializedProxyCall(b *testing.B) {
	inc, _ := bench.SharedCounterHandle()
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			_, err := inc.Call()
			mu.Unlock()
			if err != nil {
				// b.Fatal is only safe from the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkP1_ParallelProxyCall drives one shared cross-domain handle
// from GOMAXPROCS goroutines with no caller-side serialization: each
// call carries its own pooled frame through the fault path.
func BenchmarkP1_ParallelProxyCall(b *testing.B) {
	inc, _ := bench.SharedCounterHandle()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := inc.Call(); err != nil {
				// b.Fatal is only safe from the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkP2_ParallelLookup resolves one deep path from GOMAXPROCS
// goroutines: name-space lookups walk an immutable copy-on-write
// snapshot and take no lock.
func BenchmarkP2_ParallelLookup(b *testing.B) {
	w := bench.NewWorld()
	leaf := obj.New("leaf", w.K.Meter)
	if err := w.K.Space.Register("/a/b/c/d", leaf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := w.K.RootView.Bind("/a/b/c/d"); err != nil {
				// b.Fatal is only safe from the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkP3_ParallelInvokeHandle is the parallel twin of
// BenchmarkInvokeHandle: one meterless local handle shared by
// GOMAXPROCS goroutines, measuring the slot-dispatch path's scaling.
func BenchmarkP3_ParallelInvokeHandle(b *testing.B) {
	decl := obj.MustInterfaceDecl("bench.atomic.v1", obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	o := obj.New("counter", nil)
	var n atomic.Int64
	bi, err := o.AddInterface(decl, &n)
	if err != nil {
		b.Fatal(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) { return []any{n.Add(1)}, nil })
	iv, _ := o.Iface("bench.atomic.v1")
	inc, err := iv.Resolve("inc")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := inc.Call(); err != nil {
				// b.Fatal is only safe from the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkP4_ParallelProxyCallCPUs sweeps the virtual CPU count under
// the parallel cross-domain workload: each call claims a virtual CPU,
// so with more CPUs the entry-page translations and crossing charges
// spread over per-CPU TLBs and registers instead of funnelling through
// shared MMU state. benchgate records one row per CPU count.
func BenchmarkP4_ParallelProxyCallCPUs(b *testing.B) {
	for _, ncpu := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cpus=%d", ncpu), func(b *testing.B) {
			inc, _, _ := bench.SharedCounterHandleCPUs(ncpu)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := inc.Call(); err != nil {
						// b.Fatal is only safe from the benchmark goroutine.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkP5_BatchedCall sweeps the vectored invocation plane's
// batch size: each iteration is ONE cross-domain invocation, issued
// in batches of the given size, so ns/op and cycles/op are directly
// comparable per invocation against the single-call P1/T2 paths. A
// batch pays the trap, page fault and context-switch pair once for
// the whole group, so per-invocation cost falls toward the per-entry
// floor as size grows.
func BenchmarkP5_BatchedCall(b *testing.B) {
	for _, size := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			inc, _, w := bench.SharedCounterHandleCPUs(1)
			batch := obj.NewBatch(size)
			// Per-entry result buffers, reused across rounds: with
			// AddInto the whole steady-state round — batch machinery,
			// dispatch, method bodies, results — allocates nothing,
			// which the CI allocs gate holds these rows to.
			bufs := make([][1]any, size)
			watch := w.K.Meter.Clock.StartWatch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; {
				k := size
				if rem := b.N - i; rem < k {
					k = rem
				}
				batch.Reset()
				for j := 0; j < k; j++ {
					if err := batch.AddInto(inc, bufs[j][:0]); err != nil {
						b.Fatal(err)
					}
				}
				if err := batch.Run(); err != nil {
					b.Fatal(err)
				}
				i += k
			}
			b.StopTimer()
			reportCycles(b, watch.Elapsed())
		})
	}
}

// BenchmarkP8_MixedTargetBatch measures the mixed-target batch cliff
// and the grouped-mode fix. Each iteration is ONE cross-domain
// invocation, issued in batches of the given size whose entries
// round-robin across the given number of distinct targets — A, B, A,
// B — the worst case for the default in-order mode's consecutive-run
// vectoring: every entry is a run of one, so every entry pays a full
// crossing. mode=grouped partitions the batch by target and pays one
// crossing per DISTINCT target instead; CI gates the grouped rows at
// ≥3x the in-order cycles/op (benchgate -mingrouped) and at 0
// allocs/op.
func BenchmarkP8_MixedTargetBatch(b *testing.B) {
	modes := []struct {
		name string
		mode obj.BatchMode
	}{{"inorder", obj.InOrder}, {"grouped", obj.Grouped}}
	for _, targets := range []int{2, 4} {
		for _, m := range modes {
			b.Run(fmt.Sprintf("targets=%d/size=16/mode=%s", targets, m.name), func(b *testing.B) {
				const size = 16
				handles, w := bench.MixedCounterHandles(targets)
				batch := obj.NewBatch(size)
				batch.SetMode(m.mode)
				// Per-entry result buffers, reused across rounds, as in
				// P5: the steady-state round allocates nothing in either
				// mode, which the CI allocs gate holds these rows to.
				bufs := make([][1]any, size)
				watch := w.K.Meter.Clock.StartWatch()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; {
					k := size
					if rem := b.N - i; rem < k {
						k = rem
					}
					batch.Reset()
					for j := 0; j < k; j++ {
						if err := batch.AddInto(handles[j%targets], bufs[j][:0]); err != nil {
							b.Fatal(err)
						}
					}
					if err := batch.Run(); err != nil {
						b.Fatal(err)
					}
					i += k
				}
				b.StopTimer()
				reportCycles(b, watch.Elapsed())
			})
		}
	}
}

// BenchmarkP9_TopologyScaling sweeps the NUMA topology under the two
// steady-state workloads: vectored parallel invocation (per-worker
// batches of 16 against per-worker counters, the P5 zero-allocation
// round) and ring streaming (the P7 place path, one ring per CPU).
// One worker per virtual CPU, each owning its whole working set, so
// throughput scales with CPUs until the host runs out of parallelism.
// CI holds the cpus=16/cpus=1 invoke ns/op ratio at a floor on
// multi-core runners (benchgate -minscaling) and gates the cpus=16
// invoke row at 0 allocs/op; a separate smoke step builds and runs the
// cpus=256 rows. Like P0–P4 these rows report host time, not virtual
// cycles: parallel interleaving makes the shared meter's total
// nondeterministic.
func BenchmarkP9_TopologyScaling(b *testing.B) {
	for _, shape := range bench.TopologyShapes() {
		ncpu := shape.CPUs()
		b.Run(fmt.Sprintf("cpus=%d/work=invoke", ncpu), func(b *testing.B) {
			h := bench.NewTopologyInvoke(shape.Nodes, shape.CPUsPerNode)
			b.ReportAllocs()
			b.ResetTimer()
			h.Run(b.N)
		})
		b.Run(fmt.Sprintf("cpus=%d/work=stream", ncpu), func(b *testing.B) {
			h := bench.NewTopologyStream(shape.Nodes, shape.CPUsPerNode)
			b.ReportAllocs()
			b.ResetTimer()
			h.Run(b.N)
		})
	}
}

// BenchmarkP6_BulkTransfer sweeps the bulk data plane: per op, one
// payload of the given size is made visible to a consumer in another
// protection domain. path=copy carries the payload through the
// vectored invocation plane (batched calls, OpCopyWord per 8 payload
// bytes, every time); path=share grants a segment once (attach and
// revoke — the map and TLB-shootdown machinery — are inside the
// measured window) and per op sends only a vectored notify, the
// consumer validating the transfer header in place through its own
// mapping. The share path's cycles/op is flat in payload size and its
// steady state allocates nothing (the attach fast path is gated at 0
// allocs/op in CI); the copy path grows a word per 8 bytes.
func BenchmarkP6_BulkTransfer(b *testing.B) {
	for _, size := range []int{256, 1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("bytes=%d/path=copy", size), func(b *testing.B) {
			h := bench.NewBulkCopy(size)
			watch := h.W.K.Meter.Clock.StartWatch()
			b.ReportAllocs()
			b.ResetTimer()
			h.Run(b.N)
			b.StopTimer()
			reportCycles(b, watch.Elapsed())
		})
		b.Run(fmt.Sprintf("bytes=%d/path=share", size), func(b *testing.B) {
			h := bench.NewBulkShare(size)
			watch := h.W.K.Meter.Clock.StartWatch()
			b.ReportAllocs()
			b.ResetTimer()
			h.Prepare()
			h.Run(b.N)
			h.Finish()
			b.StopTimer()
			reportCycles(b, watch.Elapsed())
		})
	}
}

// BenchmarkP7_RingStream streams records between concurrent producer
// and consumer domains through the shm ring: each iteration is ONE
// record. The producer publishes a burst of records (descriptor +
// tail words each) and rings the doorbell once; the doorbell is a
// vectored cross-domain call into the consumer domain, whose drain
// method validates and releases every record of the burst in place.
// Per-record cost is therefore push+pop bookkeeping plus the crossing
// divided by the burst — flat in record size on path=place, since
// payload bytes never ride the protocol. path=inline copies the full
// payload through Push/Pop as the contrast. The steady-state push/pop
// path allocates nothing; CI gates every row at 0 allocs/op and the
// cycles/op against the committed baseline.
func BenchmarkP7_RingStream(b *testing.B) {
	run := func(size, burst int, inline bool) func(*testing.B) {
		return func(b *testing.B) {
			h := bench.NewRingStream(size, burst, inline)
			watch := h.W.K.Meter.Clock.StartWatch()
			b.ReportAllocs()
			b.ResetTimer()
			h.Prepare()
			h.Run(b.N)
			h.Finish()
			b.StopTimer()
			reportCycles(b, watch.Elapsed())
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
		}
	}
	for _, burst := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("bytes=4096/burst=%d/path=place", burst), run(4096, burst, false))
	}
	for _, size := range []int{256, 65536} {
		b.Run(fmt.Sprintf("bytes=%d/burst=64/path=place", size), run(size, 64, false))
	}
	b.Run("bytes=4096/burst=64/path=inline", run(4096, 64, true))
}

func BenchmarkT2_CrossDomain(b *testing.B) {
	w := bench.NewWorld()
	decl := obj.MustInterfaceDecl("bench.echo.v1", obj.MethodDecl{Name: "echo", NumIn: 1, NumOut: 1})
	server := obj.New("echo", w.K.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		b.Fatal(err)
	}
	bi.MustBind("echo", func(args ...any) ([]any, error) { return []any{args[0]}, nil })
	serverDom := w.K.NewDomain("server")
	clientDom := w.K.NewDomain("client")
	if err := w.K.Register("/services/echo", server, serverDom.Ctx); err != nil {
		b.Fatal(err)
	}
	echo, err := clientDom.ResolveMethod("/services/echo", "bench.echo.v1", "echo")
	if err != nil {
		b.Fatal(err)
	}
	arg := make([]byte, 64)

	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := echo.Call(arg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.T2CrossDomain())
}

func BenchmarkT3_Interrupt(b *testing.B) {
	machine := hw.New(hw.Config{PhysFrames: 16})
	sched := threads.NewScheduler(machine.Meter)
	events := event.New(machine, sched)
	if err := events.RegisterIRQ(3, "bench", mmu.KernelContext, event.DispatchProto,
		func(*hw.TrapFrame, *threads.Thread) {}); err != nil {
		b.Fatal(err)
	}
	watch := machine.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := machine.RaiseIRQ(3); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sched.RunUntilIdle()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.T3Interrupt())
}

func BenchmarkT4_Certify(b *testing.B) {
	w := bench.NewWorld()
	image := make([]byte, 16<<10)
	c, err := w.Admin.Certify("img", image, 1)
	if err != nil {
		b.Fatal(err)
	}
	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.K.Validator.InvalidateCache()
		if err := w.K.Validator.Validate(image, c, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.T4Certification())
}

func BenchmarkT5_FilterPlacement(b *testing.B) {
	w := bench.NewWorld()
	w.AddPVM("portfilter", netstack.PortFilterProgram(7), true)
	lf, err := w.K.LoadFilter("portfilter", core.PlaceKernelCertified)
	if err != nil {
		b.Fatal(err)
	}
	frame := bench.Frame(7, 256)
	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lf.Accept(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.T5FilterPlacement())
}

func BenchmarkT6_Reconfig(b *testing.B) {
	w := bench.NewWorld()
	w.AddPVM("f", netstack.PortFilterProgram(7), true)
	if _, err := w.K.LoadFilter("f", core.PlaceKernelCertified); err != nil {
		b.Fatal(err)
	}
	path := "/services/f." + core.PlaceKernelCertified.String()
	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.K.RootView.Bind(path); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.T6Reconfiguration())
}

func BenchmarkF1_Throughput(b *testing.B) {
	w := bench.NewWorld()
	w.AddPVM("portfilter", netstack.PortFilterProgram(7), true)
	lf, err := w.K.LoadFilter("portfilter", core.PlaceKernelCertified)
	if err != nil {
		b.Fatal(err)
	}
	drv := obj.New("nulldrv", w.K.Meter)
	bi, err := drv.AddInterface(obj.MustInterfaceDecl("paramecium.netdev.v1",
		obj.MethodDecl{Name: "send", NumIn: 1, NumOut: 0},
		obj.MethodDecl{Name: "recv", NumIn: 0, NumOut: 1},
		obj.MethodDecl{Name: "stats", NumIn: 0, NumOut: 3}), nil)
	if err != nil {
		b.Fatal(err)
	}
	bi.MustBind("send", func(...any) ([]any, error) { return nil, nil }).
		MustBind("recv", func(...any) ([]any, error) { return []any{[]byte(nil)}, nil }).
		MustBind("stats", func(...any) ([]any, error) { return []any{uint64(0), uint64(0), uint64(0)}, nil })
	drvIv, _ := drv.Iface("paramecium.netdev.v1")
	stack, err := netstack.NewStack("stack", w.K.Meter, drvIv,
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.IP{10, 0, 0, 1})
	if err != nil {
		b.Fatal(err)
	}
	stack.AttachFilter(lf)
	if _, err := stack.Bind(7); err != nil {
		b.Fatal(err)
	}
	frame := bench.Frame(7, 256)
	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stack.Deliver(frame)
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.F1Throughput())
}

func BenchmarkF2_BreakEven(b *testing.B) {
	w := bench.NewWorld()
	w.AddPVM("f", netstack.WorkFilterProgram(7, 256), true)
	lf, err := w.K.LoadFilter("f", core.PlaceKernelSandboxed)
	if err != nil {
		b.Fatal(err)
	}
	frame := bench.Frame(7, 1024)
	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lf.Accept(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.F2BreakEven())
}

func BenchmarkF3_BlockingFraction(b *testing.B) {
	machine := hw.New(hw.Config{PhysFrames: 16})
	sched := threads.NewScheduler(machine.Meter)
	events := event.New(machine, sched)
	if err := events.RegisterIRQ(3, "bench", mmu.KernelContext, event.DispatchEager,
		func(*hw.TrapFrame, *threads.Thread) {}); err != nil {
		b.Fatal(err)
	}
	watch := machine.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := machine.RaiseIRQ(3); err != nil {
			b.Fatal(err)
		}
		sched.RunUntilIdle()
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.F3BlockingFraction())
}

func BenchmarkF4_Namespace(b *testing.B) {
	w := bench.NewWorld()
	leaf := obj.New("leaf", w.K.Meter)
	if err := w.K.Space.Register("/a/b/c/d", leaf); err != nil {
		b.Fatal(err)
	}
	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.K.RootView.Bind("/a/b/c/d"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.F4Namespace())
}

func BenchmarkF5_TrapCostSweep(b *testing.B) {
	w := bench.NewWorld()
	decl := obj.MustInterfaceDecl("bench.noop.v1", obj.MethodDecl{Name: "noop", NumIn: 0, NumOut: 0})
	server := obj.New("noop", w.K.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		b.Fatal(err)
	}
	bi.MustBind("noop", func(...any) ([]any, error) { return nil, nil })
	serverDom := w.K.NewDomain("server")
	clientDom := w.K.NewDomain("client")
	if err := w.K.Register("/services/noop", server, serverDom.Ctx); err != nil {
		b.Fatal(err)
	}
	noop, err := clientDom.ResolveMethod("/services/noop", "bench.noop.v1", "noop")
	if err != nil {
		b.Fatal(err)
	}
	watch := w.K.Meter.Clock.StartWatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noop.Call(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCycles(b, watch.Elapsed())
	logTable(b, bench.F5TrapCostSweep())
}

// BenchmarkP10_TraceOverhead measures the kernel flight recorder's
// cost in the two states that matter: path=emit is one instrumented
// call site (the gate check, and when open, one event emission into
// the per-CPU ring), path=cross is a full cross-domain invocation with
// every crossing probe firing and every charge rolling into the
// per-domain ledger. CI's allocs gate holds both emit rows at exactly
// 0 allocs/op — the disabled path is one atomic load and the enabled
// path is lock-free atomics into a preallocated ring — and the cycles
// metric on the cross rows is identical off and on: recording is free
// in virtual time.
func BenchmarkP10_TraceOverhead(b *testing.B) {
	for _, state := range []string{"off", "on"} {
		enabled := state == "on"
		b.Run(fmt.Sprintf("path=emit/state=%s", state), func(b *testing.B) {
			m := clock.NewMeter(clock.DefaultCosts())
			if enabled {
				m.EnableTracing(probe.NewRecorder(1, 0), probe.NewLedger(clock.LedgerSlots))
				defer m.DisableTracing()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if probe.Enabled() {
					m.Emit(0, probe.KindDoorbell, 1, uint64(i), 0)
				}
			}
		})
		b.Run(fmt.Sprintf("path=cross/state=%s", state), func(b *testing.B) {
			inc, _, w := bench.SharedCounterHandleCPUs(1)
			if enabled {
				w.K.Meter.EnableTracing(
					probe.NewRecorder(w.K.Machine.NumCPUs(), 0),
					probe.NewLedger(clock.LedgerSlots))
				defer w.K.Meter.DisableTracing()
			}
			var buf [1]any
			watch := w.K.Meter.Clock.StartWatch()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inc.CallInto(buf[:0]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportCycles(b, watch.Elapsed())
		})
	}
}
