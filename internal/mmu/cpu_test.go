package mmu

import (
	"strings"
	"sync"
	"testing"

	"paramecium/internal/clock"
)

func newMultiMMU(t *testing.T, cfg Config) (*MMU, *clock.Meter) {
	t.Helper()
	meter := clock.NewMeter(clock.DefaultCosts())
	return New(meter, cfg), meter
}

// TestPerCPUTLBIsolation: each CPU's TLB carries only its own
// translations; hit/miss counters are disjoint and a flush on one CPU
// leaves the others' entries live.
func TestPerCPUTLBIsolation(t *testing.T) {
	m, _ := newMultiMMU(t, Config{CPUs: 2})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x4000, 7, PermRead); err != nil {
		t.Fatal(err)
	}
	// CPU 0: miss then hit.
	for i := 0; i < 2; i++ {
		if _, err := m.TranslateOn(0, ctx, 0x4000, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	// CPU 1: one cold miss of its own — CPU 0's refill is invisible.
	if _, err := m.TranslateOn(1, ctx, 0x4000, AccessRead); err != nil {
		t.Fatal(err)
	}
	s0, s1 := m.TLBStatsOn(0), m.TLBStatsOn(1)
	if s0.Hits != 1 || s0.Misses != 1 {
		t.Fatalf("CPU0 stats = %+v, want 1 hit / 1 miss", s0)
	}
	if s1.Hits != 0 || s1.Misses != 1 {
		t.Fatalf("CPU1 stats = %+v, want 0 hits / 1 miss", s1)
	}
	// Flush CPU 1 only: CPU 0 keeps its entry hot.
	m.FlushTLBOn(1)
	if s := m.TLBStatsOn(1); s.Flushes != 1 || s.Entries != 0 {
		t.Fatalf("CPU1 after flush = %+v", s)
	}
	if _, err := m.TranslateOn(0, ctx, 0x4000, AccessRead); err != nil {
		t.Fatal(err)
	}
	if s := m.TLBStatsOn(0); s.Hits != 2 || s.Flushes != 0 {
		t.Fatalf("CPU0 after CPU1 flush = %+v, want 2 hits / 0 flushes", s)
	}
	// The aggregate view sums the per-CPU counters.
	hits, misses := m.TLBStats()
	if hits != 2 || misses != 2 {
		t.Fatalf("aggregate = %d hits / %d misses, want 2/2", hits, misses)
	}
}

// TestPerCPUCurrentRegisters: each CPU has its own context register;
// a context current on any CPU cannot be destroyed.
func TestPerCPUCurrentRegisters(t *testing.T) {
	m, meter := newMultiMMU(t, Config{CPUs: 2})
	ctx := m.NewContext()
	before := meter.Count(clock.OpCtxSwitch)
	if err := m.SwitchOn(1, ctx); err != nil {
		t.Fatal(err)
	}
	if got := m.CurrentOn(1); got != ctx {
		t.Fatalf("CPU1 current = %d, want %d", got, ctx)
	}
	if got := m.CurrentOn(0); got != KernelContext {
		t.Fatalf("CPU0 current = %d, want kernel", got)
	}
	if got := meter.Count(clock.OpCtxSwitch) - before; got != 1 {
		t.Fatalf("switches charged = %d, want 1", got)
	}
	err := m.DestroyContext(ctx)
	if err == nil || !strings.Contains(err.Error(), "CPU 1") {
		t.Fatalf("destroy of CPU1-current context: %v", err)
	}
	if err := m.SwitchOn(1, KernelContext); err != nil {
		t.Fatal(err)
	}
	if err := m.DestroyContext(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSwitchFlushesOnlyThatCPU: under FlushOnSwitch, a context switch
// costs the switching CPU its TLB — and no one else's.
func TestSwitchFlushesOnlyThatCPU(t *testing.T) {
	m, _ := newMultiMMU(t, Config{CPUs: 2, FlushOnSwitch: true})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x1000, 3, PermRead); err != nil {
		t.Fatal(err)
	}
	for cpu := CPUID(0); cpu < 2; cpu++ {
		if _, err := m.TranslateOn(cpu, ctx, 0x1000, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SwitchOn(0, ctx); err != nil {
		t.Fatal(err)
	}
	if s := m.TLBStatsOn(0); s.Flushes != 1 || s.Entries != 0 {
		t.Fatalf("CPU0 after switch = %+v, want flushed", s)
	}
	if s := m.TLBStatsOn(1); s.Flushes != 0 || s.Entries != 1 {
		t.Fatalf("CPU1 after CPU0 switch = %+v, want untouched", s)
	}
	// CrossSwitchOn likewise flushes only the calling CPU.
	if err := m.CrossSwitchOn(1, ctx); err != nil {
		t.Fatal(err)
	}
	if s := m.TLBStatsOn(1); s.Flushes != 1 {
		t.Fatalf("CPU1 after CrossSwitchOn = %+v, want 1 flush", s)
	}
	if s := m.TLBStatsOn(0); s.Flushes != 1 {
		t.Fatalf("CPU0 after CPU1 CrossSwitch = %+v, want still 1 flush", s)
	}
}

// TestShardedTranslationParallel: translations in unrelated contexts
// on distinct CPUs race mapping churn in a third context; the race
// detector validates the sharded locking, and every translation of a
// stably-mapped page must succeed.
func TestShardedTranslationParallel(t *testing.T) {
	m, _ := newMultiMMU(t, Config{CPUs: 4})
	ctxA, ctxB, ctxChurn := m.NewContext(), m.NewContext(), m.NewContext()
	for _, ctx := range []ContextID{ctxA, ctxB} {
		if err := m.Map(ctx, 0x2000, 5, PermRead|PermWrite); err != nil {
			t.Fatal(err)
		}
	}
	const iters = 2000
	var wg sync.WaitGroup
	for cpu := 0; cpu < 4; cpu++ {
		wg.Add(1)
		go func(cpu CPUID) {
			defer wg.Done()
			ctx := ctxA
			if cpu%2 == 1 {
				ctx = ctxB
			}
			for i := 0; i < iters; i++ {
				if _, err := m.TranslateOn(cpu, ctx, 0x2000, AccessRead); err != nil {
					t.Errorf("CPU %d: %v", cpu, err)
					return
				}
			}
		}(CPUID(cpu))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := m.Map(ctxChurn, 0x9000, uint64(i%16), PermRead); err != nil {
				t.Error(err)
				return
			}
			if err := m.Unmap(ctxChurn, 0x9000); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestUnmapShootsDownEveryCPU: an unmap invalidates the page in every
// CPU's TLB, not just the unmapping one's.
func TestUnmapShootsDownEveryCPU(t *testing.T) {
	m, _ := newMultiMMU(t, Config{CPUs: 2})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x3000, 4, PermRead); err != nil {
		t.Fatal(err)
	}
	for cpu := CPUID(0); cpu < 2; cpu++ {
		if _, err := m.TranslateOn(cpu, ctx, 0x3000, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Unmap(ctx, 0x3000); err != nil {
		t.Fatal(err)
	}
	for cpu := CPUID(0); cpu < 2; cpu++ {
		if _, err := m.TranslateOn(cpu, ctx, 0x3000, AccessRead); err == nil {
			t.Fatalf("CPU %d still translates an unmapped page", cpu)
		}
	}
}
