package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc enforces the zero-allocation discipline on functions
// annotated //paramecium:hotpath: the invocation and data fast paths
// are gated at zero allocs/op by benchgate, and this analyzer flags
// the allocation sites statically — make, new, append that cannot
// reuse its destination, string concatenation, boxing a non-pointer
// value into an interface, function literals that outlive the
// statement (captured by defer is fine, anything else is not), and
// spawning goroutines.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//paramecium:hotpath functions must not allocate",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) error {
	h := &hotpathAlloc{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			h.checkFunc(fn)
		}
	}
	return nil
}

type hotpathAlloc struct {
	pass        *Pass
	selfAppends map[*ast.CallExpr]bool
}

func (h *hotpathAlloc) checkFunc(fn *ast.FuncDecl) {
	deferLits := make(map[*ast.FuncLit]bool)
	selfAppends := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				deferLits[fl] = true
			}
		case *ast.AssignStmt:
			// x = append(x, ...) reuses a retained backing array.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) || len(call.Args) == 0 {
					continue
				}
				dst := exprString(n.Lhs[i])
				if dst != "" && dst == exprString(call.Args[0]) {
					selfAppends[call] = true
				}
			}
		}
		return true
	})
	h.selfAppends = selfAppends
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			h.pass.Reportf(n.Pos(), "hot path spawns a goroutine (allocates a stack and schedules)")
		case *ast.FuncLit:
			if !deferLits[n] {
				h.pass.Reportf(n.Pos(), "hot path creates a function literal that may escape")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(h.pass.TypesInfo.TypeOf(n)) {
				h.pass.Reportf(n.Pos(), "hot path concatenates strings (allocates)")
			}
		case *ast.CompositeLit:
			t := h.pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					h.pass.Reportf(n.Pos(), "hot path builds a %s literal (allocates)", typeKind(t))
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok && !implementsError(h.pass.TypesInfo.TypeOf(n)) {
					// Error values (&Fault{...} and friends) are exempt:
					// constructing an error is the off-hot-path outcome.
					h.pass.Reportf(n.Pos(), "hot path takes the address of a composite literal (escapes to heap)")
				}
			}
		case *ast.CallExpr:
			h.checkCall(n)
		}
		return true
	})
}

func (h *hotpathAlloc) checkCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := h.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				h.pass.Reportf(call.Pos(), "hot path calls make (allocates)")
				return
			case "new":
				h.pass.Reportf(call.Pos(), "hot path calls new (allocates)")
				return
			case "append":
				if !h.selfAppends[call] {
					h.pass.Reportf(call.Pos(), "hot path appends to a slice it does not reuse (may grow and allocate)")
				}
				return
			}
		}
	}
	// Interface boxing: passing a concrete non-pointer value where the
	// parameter is an interface forces a heap allocation on escape.
	sig, ok := calleeSignature(h.pass.TypesInfo, call)
	if !ok {
		return
	}
	if isExemptBoxer(h.pass.TypesInfo, call) {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := h.pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if at == types.Typ[types.UntypedNil] {
			continue
		}
		h.pass.Reportf(arg.Pos(), "hot path boxes a non-pointer %s into an interface argument (allocates on escape)", at.String())
	}
}

// exprString renders simple ident/selector chains for comparison.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// calleeSignature resolves a call's signature, skipping type
// conversions and builtins.
func calleeSignature(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// isExemptBoxer exempts error-path formatting calls (fmt.*, errors.*):
// they only run off the fast path, after the invariant is already
// broken, and flagging them would force unreadable error handling.
func isExemptBoxer(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkg.Imported().Path() {
	case "fmt", "errors":
		return true
	}
	return false
}
