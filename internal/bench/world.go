package bench

import (
	"fmt"

	"paramecium/internal/cert"
	"paramecium/internal/core"
	"paramecium/internal/hw"
	"paramecium/internal/netstack"
	"paramecium/internal/repoz"
	"paramecium/internal/sandbox"
)

// World is a booted kernel plus trust infrastructure, shared by the
// experiments.
type World struct {
	K     *core.Kernel
	Auth  *cert.Authority
	Admin *cert.KeyCertifier
}

// NewWorld boots a fresh single-CPU world. Panics on setup failure:
// the harness cannot proceed without a kernel, and every failure here
// is a programming error, not an experimental outcome.
func NewWorld() *World { return NewWorldCPUs(1) }

// NewWorldCPUs boots a world on a machine with ncpu virtual CPUs.
func NewWorldCPUs(ncpu int) *World {
	return newWorld(core.Config{CPUs: ncpu})
}

// NewWorldTopology boots a world on a NUMA machine of nodes ×
// cpusPerNode CPUs with the uniform node-distance matrix, the
// configuration the P9 scaling experiments sweep.
func NewWorldTopology(nodes, cpusPerNode int) *World {
	cfg := core.Config{}
	cfg.Machine.Topology = hw.NewTopology(nodes, cpusPerNode)
	// Big topologies run wide workloads (hundreds of domains and ring
	// pairs at cpus=256); frames are cheap until touched, so size the
	// frame table for the sweep rather than the default desktop.
	cfg.Machine.PhysFrames = 32768
	return newWorld(cfg)
}

func newWorld(cfg core.Config) *World {
	auth := cert.NewAuthority(0xB007)
	cfg.AuthorityKey = auth.PublicKey()
	k, err := core.Boot(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: boot: %v", err))
	}
	admin := cert.NewKeyCertifier("sysadmin", cert.GenerateKey(0xADD1),
		cert.PrivKernelResident|cert.PrivDeviceAccess|cert.PrivSharedService)
	if err := k.Validator.AddDelegation(auth.Delegate("sysadmin", admin.Key().Pub,
		cert.PrivKernelResident|cert.PrivDeviceAccess|cert.PrivSharedService)); err != nil {
		panic(fmt.Sprintf("bench: delegation: %v", err))
	}
	return &World{K: k, Auth: auth, Admin: admin}
}

// AddPVM stores a PVM program in the repository under name, certified
// for kernel residence when certified is true.
func (w *World) AddPVM(name, src string, certified bool) {
	prog := sandbox.MustAssemble(src)
	img := &repoz.Image{Name: name, Kind: repoz.KindPVM, Data: prog.Encode()}
	if certified {
		c, err := w.Admin.Certify(name, img.Data, cert.PrivKernelResident)
		if err != nil {
			panic(fmt.Sprintf("bench: certify: %v", err))
		}
		img.Cert = c
	}
	if err := w.K.Repo.Add(img); err != nil {
		panic(fmt.Sprintf("bench: repo add: %v", err))
	}
}

// Frame builds a UDP test frame addressed to port with a payload of
// the given size.
func Frame(port uint16, payloadSize int) []byte {
	return netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.MAC{2, 0, 0, 0, 0, 2},
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
		999, port, make([]byte, payloadSize))
}

// perOp measures the virtual cycles per iteration of fn over n runs.
func perOp(w *World, n int, fn func()) uint64 {
	watch := w.K.Meter.Clock.StartWatch()
	for i := 0; i < n; i++ {
		fn()
	}
	return watch.Elapsed() / uint64(n)
}
