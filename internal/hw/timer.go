package hw

import (
	"sync"

	"paramecium/internal/clock"
)

// Timer register word offsets.
const (
	TimerRegInterval = iota // rw: cycles between expirations (0 = off)
	TimerRegFires           // r: total expirations delivered
	timerRegCount
)

// Timer is a programmable interval timer driven by the virtual clock.
// Because virtual time only advances when work is charged, the harness
// (or the scheduler) calls Poll to let due expirations fire; this keeps
// the simulation single-threaded and deterministic.
type Timer struct {
	baseDevice
	name string
	irq  IRQLine
	clk  *clock.Clock
	reg  *IORegion

	mu       sync.Mutex
	interval uint64
	deadline uint64
	fires    uint64
}

// NewTimer builds a timer reading time from clk.
func NewTimer(name string, irq IRQLine, clk *clock.Clock) *Timer {
	t := &Timer{name: name, irq: irq, clk: clk}
	t.reg = NewIORegion(name+"-regs", timerRegCount, t.readReg, t.writeReg)
	return t
}

// Name implements Device.
func (t *Timer) Name() string { return t.name }

// IRQ implements Device.
func (t *Timer) IRQ() IRQLine { return t.irq }

// IORegion implements Device.
func (t *Timer) IORegion() *IORegion { return t.reg }

// Program arms the timer to fire every interval cycles (0 disarms).
func (t *Timer) Program(interval uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.interval = interval
	if interval == 0 {
		t.deadline = 0
		return
	}
	t.deadline = t.clk.Now() + interval
}

// Poll fires the interrupt for every deadline that has passed, and
// returns the number of expirations delivered. The clock is read once
// on entry: cycles charged by the interrupt handlers themselves do not
// generate further expirations within the same poll (otherwise a
// handler costing more than the interval would re-arm the timer
// forever).
func (t *Timer) Poll() int {
	t.mu.Lock()
	if t.interval == 0 {
		t.mu.Unlock()
		return 0
	}
	now := t.clk.Now()
	fired := 0
	for t.deadline <= now {
		t.deadline += t.interval
		t.fires++
		fired++
	}
	t.mu.Unlock()
	for i := 0; i < fired; i++ {
		t.raise(t.irq)
	}
	return fired
}

// Fires reports the number of expirations delivered so far.
func (t *Timer) Fires() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fires
}

func (t *Timer) readReg(reg int) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch reg {
	case TimerRegInterval:
		return t.interval, nil
	case TimerRegFires:
		return t.fires, nil
	}
	return 0, nil
}

func (t *Timer) writeReg(reg int, val uint64) error {
	switch reg {
	case TimerRegInterval:
		t.Program(val)
	}
	return nil
}
