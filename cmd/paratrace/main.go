// Command paratrace boots a system with the kernel flight recorder on,
// drives a deterministic workload across every plane the recorder
// instruments — cross-domain invocations, a vectored batch, a traced
// kernel service, the zero-copy segment plane, a streaming ring and a
// domain teardown — and exports what the recorder saw.
//
// Usage:
//
//	paratrace                      # per-domain cycle ledger (text)
//	paratrace -format=chrome       # Chrome trace_event JSON (chrome://tracing, Perfetto)
//	paratrace -format=timeline     # per-CPU event timelines (text)
//	paratrace -format=methods      # interposed-tracer method histograms
//	paratrace -cpus=4 -top=5       # more CPUs, deeper hot-op listing
//
// On one CPU the workload is fully deterministic, so the table output
// is diffable against a golden copy — CI does exactly that.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"paramecium"
	"paramecium/api"
)

func main() {
	format := flag.String("format", "table", "output format: table, chrome, timeline or methods")
	cpus := flag.Int("cpus", 1, "virtual CPUs to boot (1 is fully deterministic)")
	top := flag.Int("top", 3, "hot operations to list per domain in table format")
	flag.Parse()
	if err := run(os.Stdout, *format, *cpus, *top); err != nil {
		log.SetFlags(0)
		log.Fatalf("paratrace: %v", err)
	}
}

func run(out *os.File, format string, cpus, top int) error {
	sys, err := scenario(cpus)
	if err != nil {
		return err
	}
	snap := sys.TraceSnapshot()
	defer sys.Shutdown()
	switch format {
	case "table":
		return snap.WriteLedger(out, top)
	case "chrome":
		return snap.WriteChrome(out)
	case "timeline":
		return snap.WriteTimeline(out)
	case "methods":
		return snap.WriteMethods(out)
	}
	return fmt.Errorf("unknown format %q (want table, chrome, timeline or methods)", format)
}

// scenario boots WithTracing and exercises each instrumented plane
// with fixed iteration counts, so a single-CPU run always produces the
// same events and the same cycle bill.
func scenario(cpus int) (*paramecium.System, error) {
	sys, err := paramecium.Boot(
		paramecium.WithCPUs(cpus),
		paramecium.WithTracing(paramecium.TraceOptions{}),
	)
	if err != nil {
		return nil, err
	}

	// A kernel-resident service, with a measurement tracer interposed
	// on its name: its method histograms ride along in the snapshot.
	decl := api.MustInterfaceDecl("paratrace.calc.v1",
		api.MethodDecl{Name: "add", NumIn: 2, NumOut: 1},
		api.MethodDecl{Name: "ping", NumIn: 0, NumOut: 1})
	calc := sys.NewObject("calc")
	bi, err := calc.AddInterface(decl, nil)
	if err != nil {
		return nil, err
	}
	bi.MustBind("add", func(args ...any) ([]any, error) {
		return []any{args[0].(int) + args[1].(int)}, nil
	})
	bi.MustBind("ping", func(...any) ([]any, error) {
		return []any{"pong"}, nil
	})
	if err := sys.Register("/svc/calc", calc); err != nil {
		return nil, err
	}
	kh, err := sys.Bind("/svc/calc")
	if err != nil {
		return nil, err
	}
	if _, err := kh.Trace(); err != nil {
		return nil, err
	}

	client := sys.NewDomain("client")
	worker := sys.NewDomain("worker")

	// Single cross-domain calls: each pays its own crossing.
	h, err := client.Bind("/svc/calc")
	if err != nil {
		return nil, err
	}
	add, err := h.Resolve("paratrace.calc.v1", "add")
	if err != nil {
		return nil, err
	}
	for i := 0; i < 24; i++ {
		if _, err := add.Call(i, i); err != nil {
			return nil, err
		}
	}

	// A vectored batch: one crossing amortized over the group.
	b := h.Batch(16)
	for i := 0; i < 16; i++ {
		if err := b.Add(add, i, 1); err != nil {
			return nil, err
		}
	}
	if err := client.CallBatch(b); err != nil {
		return nil, err
	}

	// A second paying domain, destroyed below: its ledger row freezes.
	wh, err := worker.Bind("/svc/calc")
	if err != nil {
		return nil, err
	}
	wadd, err := wh.Resolve("paratrace.calc.v1", "add")
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if _, err := wadd.Call(i, 2); err != nil {
			return nil, err
		}
	}

	// The zero-copy segment plane: grant, attach, move bytes, revoke.
	seg, err := client.NewSegment(2)
	if err != nil {
		return nil, err
	}
	ref, err := seg.Grant(worker, api.RW)
	if err != nil {
		return nil, err
	}
	att, err := seg.Map(ref)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := att.Store(0, payload); err != nil {
		return nil, err
	}
	if err := att.Load(128, payload[:64]); err != nil {
		return nil, err
	}
	if err := seg.Revoke(ref); err != nil {
		return nil, err
	}

	// The streaming plane: pushed bursts, one doorbell each, drained.
	rg, err := client.NewRing(worker, 8, 32)
	if err != nil {
		return nil, err
	}
	prod, cons := rg.Producer(), rg.Consumer()
	rec := make([]byte, 16)
	for burst := 0; burst < 4; burst++ {
		for i := 0; i < 4; i++ {
			rec[0] = byte(burst<<4 | i)
			if err := prod.Push(rec); err != nil {
				return nil, err
			}
		}
		if err := prod.Notify(); err != nil {
			return nil, err
		}
		for i := 0; i < 4; i++ {
			if _, err := cons.Pop(rec); err != nil {
				return nil, err
			}
		}
	}
	if err := rg.Close(); err != nil {
		return nil, err
	}

	// Tear the worker down: its bill survives as a frozen ledger row.
	if err := worker.Destroy(); err != nil {
		return nil, err
	}
	return sys, nil
}
