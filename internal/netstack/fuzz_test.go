package netstack

import (
	"testing"
	"testing/quick"

	"paramecium/internal/clock"
	"paramecium/internal/sandbox"
)

// TestParsersTotalOnRandomBytes: the wire parsers must classify
// arbitrary bytes as parse-or-error, never panic.
func TestParsersTotalOnRandomBytes(t *testing.T) {
	f := func(b []byte) bool {
		if frame, err := ParseFrame(b); err == nil {
			if ip, err := ParseIP(frame.Payload); err == nil {
				_, _ = ParseUDP(ip.Payload)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestStackDeliverTotalOnRandomFrames: the full stack must absorb
// arbitrary frames without panicking, accounting each as delivered,
// filtered, malformed or port-less.
func TestStackDeliverTotalOnRandomFrames(t *testing.T) {
	s, _ := newTestStack(t)
	if _, err := s.Bind(7); err != nil {
		t.Fatal(err)
	}
	count := 0
	f := func(frame []byte) bool {
		s.Deliver(frame)
		count++
		st := s.Stats()
		total := st.Delivered + st.Filtered + st.NoPort + st.Malformed
		return total == uint64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPVMFilterTotalOnRandomFrames: a filter program must handle any
// frame contents, including oversized frames that get truncated into
// the inspection segment.
func TestPVMFilterTotalOnRandomFrames(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	cf, err := NewCertifiedFilter("p7", sandbox.MustAssemble(PortFilterProgram(7)), meter)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewSandboxedFilter("p7s", sandbox.MustAssemble(PortFilterProgram(7)), meter)
	if err != nil {
		t.Fatal(err)
	}
	f := func(frame []byte, pad uint16) bool {
		if len(frame) > 8000 {
			frame = frame[:8000]
		}
		okC, errC := cf.Accept(frame)
		okS, errS := sf.Accept(frame)
		// Certified and sandboxed must agree on every input (the
		// rewrite is semantics-preserving for in-segment accesses, and
		// the filter only reads within the segment).
		if errC != nil || errS != nil {
			return errC != nil && errS != nil
		}
		return okC == okS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkFilterAgreesAcrossRegimes: the heavier work filter is also
// placement-independent in its verdicts.
func TestWorkFilterAgreesAcrossRegimes(t *testing.T) {
	prog := sandbox.MustAssemble(WorkFilterProgram(9, 128))
	cf, err := NewCertifiedFilter("w", prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewSandboxedFilter("w", prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, port := range []uint16{7, 9, 100} {
		frame := BuildUDPFrame(macA, macB, ipB, ipA, 1, port, make([]byte, 300))
		okC, errC := cf.Accept(frame)
		okS, errS := sf.Accept(frame)
		if errC != nil || errS != nil {
			t.Fatalf("port %d: errs %v / %v", port, errC, errS)
		}
		if okC != okS {
			t.Fatalf("port %d: certified=%v sandboxed=%v", port, okC, okS)
		}
		if want := port == 9; okC != want {
			t.Fatalf("port %d: verdict %v, want %v", port, okC, want)
		}
	}
}
