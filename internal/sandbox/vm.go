package sandbox

import (
	"encoding/binary"
	"errors"
	"fmt"

	"paramecium/internal/clock"
)

// Execution errors.
var (
	ErrOutOfFuel    = errors.New("sandbox: out of fuel")
	ErrMemFault     = errors.New("sandbox: memory access out of bounds")
	ErrBadInstr     = errors.New("sandbox: illegal instruction")
	ErrBadJump      = errors.New("sandbox: jump out of program")
	ErrNotSandboxed = errors.New("sandbox: program touches memory without a preceding check")
)

// DefaultFuel bounds run length when Exec.Fuel is zero.
const DefaultFuel = 1_000_000

// Result reports one program execution.
type Result struct {
	Ret    uint64 // value of the register named by HALT
	Instrs uint64 // instructions executed (checks included)
	Checks uint64 // SFI checks executed
}

// Exec runs PVM programs against a data segment, charging virtual
// cycles per instruction and per SFI check.
type Exec struct {
	// Meter receives OpVMInstr and OpSFICheck charges; nil disables
	// accounting (unit tests of the ISA itself).
	Meter *clock.Meter
	// Fuel bounds the number of executed instructions per run.
	Fuel uint64
	// EnforceSandbox requires every memory access to go through the
	// dedicated sandbox register (i.e. the program was SFI-rewritten).
	// With it off, out-of-bounds accesses simply fail — the behaviour
	// trusted, certified components get.
	EnforceSandbox bool
}

// Run executes prog against mem. The data segment length must be a
// power of two when EnforceSandbox is set (the masking requirement of
// the SFI scheme).
func (e *Exec) Run(prog Program, mem []byte) (Result, error) {
	var res Result
	fuel := e.Fuel
	if fuel == 0 {
		fuel = DefaultFuel
	}
	if e.EnforceSandbox && len(mem)&(len(mem)-1) != 0 {
		return res, fmt.Errorf("%w: segment size %d not a power of two", ErrMemFault, len(mem))
	}
	mask := uint64(0)
	if len(mem) > 0 {
		mask = uint64(len(mem) - 1)
	}

	var regs [NumRegs]uint64
	pc := 0
	// checkedVia tracks whether the sandbox register currently holds a
	// masked address (set by OpCheck, cleared by anything clobbering it).
	checkedValid := false

	charge := func(op clock.Op) {
		if e.Meter != nil {
			e.Meter.Charge(op)
		}
	}

	for {
		if res.Instrs >= fuel {
			return res, fmt.Errorf("%w after %d instructions", ErrOutOfFuel, res.Instrs)
		}
		if pc < 0 || pc >= len(prog) {
			return res, fmt.Errorf("%w: pc=%d", ErrBadJump, pc)
		}
		ins := prog[pc]
		res.Instrs++
		charge(clock.OpVMInstr)

		// The interpreter is total even on unverified programs: a
		// register field out of range is an illegal instruction, not
		// a crash of the (kernel-resident) interpreter.
		if ins.A >= NumRegs || ins.B >= NumRegs || ins.C >= NumRegs {
			return res, fmt.Errorf("%w: register out of range at pc=%d", ErrBadInstr, pc)
		}

		switch ins.Op {
		case OpHalt:
			res.Ret = regs[ins.A]
			return res, nil
		case OpLoadI:
			regs[ins.A] = uint64(ins.Imm)
		case OpMov:
			regs[ins.A] = regs[ins.B]
		case OpAdd:
			regs[ins.A] = regs[ins.B] + regs[ins.C]
		case OpSub:
			regs[ins.A] = regs[ins.B] - regs[ins.C]
		case OpMul:
			regs[ins.A] = regs[ins.B] * regs[ins.C]
		case OpAnd:
			regs[ins.A] = regs[ins.B] & regs[ins.C]
		case OpOr:
			regs[ins.A] = regs[ins.B] | regs[ins.C]
		case OpXor:
			regs[ins.A] = regs[ins.B] ^ regs[ins.C]
		case OpShl:
			regs[ins.A] = regs[ins.B] << (regs[ins.C] & 63)
		case OpShr:
			regs[ins.A] = regs[ins.B] >> (regs[ins.C] & 63)
		case OpAddI:
			regs[ins.A] = regs[ins.B] + uint64(ins.Imm)
		case OpCheck:
			res.Checks++
			charge(clock.OpSFICheck)
			regs[SandboxReg] = (regs[ins.B] + uint64(ins.Imm)) & mask
			checkedValid = true
			pc++
			continue
		case OpLd8, OpLd16, OpLd32, OpLd64:
			addr, err := e.effAddr(ins, regs, len(mem), checkedValid)
			if err != nil {
				return res, err
			}
			size := loadSize(ins.Op)
			// Subtraction form: addr+size would overflow for addresses
			// near 2^64 (a wrapping effective address is just another
			// out-of-bounds access).
			if addr >= uint64(len(mem)) || uint64(len(mem))-addr < uint64(size) {
				return res, fmt.Errorf("%w: load %d bytes at %d (segment %d)", ErrMemFault, size, addr, len(mem))
			}
			regs[ins.A] = loadVal(mem[addr:addr+uint64(size)], size)
		case OpSt8, OpSt16, OpSt32, OpSt64:
			addr, err := e.effAddr(ins, regs, len(mem), checkedValid)
			if err != nil {
				return res, err
			}
			size := loadSize(ins.Op)
			if addr >= uint64(len(mem)) || uint64(len(mem))-addr < uint64(size) {
				return res, fmt.Errorf("%w: store %d bytes at %d (segment %d)", ErrMemFault, size, addr, len(mem))
			}
			storeVal(mem[addr:addr+uint64(size)], size, regs[ins.A])
		case OpJmp:
			pc = int(ins.Imm)
			continue
		case OpJeq:
			if regs[ins.A] == regs[ins.B] {
				pc = int(ins.Imm)
				continue
			}
		case OpJne:
			if regs[ins.A] != regs[ins.B] {
				pc = int(ins.Imm)
				continue
			}
		case OpJlt:
			if regs[ins.A] < regs[ins.B] {
				pc = int(ins.Imm)
				continue
			}
		case OpJge:
			if regs[ins.A] >= regs[ins.B] {
				pc = int(ins.Imm)
				continue
			}
		default:
			return res, fmt.Errorf("%w: %v at pc=%d", ErrBadInstr, ins.Op, pc)
		}
		if ins.A == SandboxReg || (ins.Op == OpMov && ins.A == SandboxReg) {
			// Anything writing the sandbox register other than OpCheck
			// invalidates it.
			checkedValid = false
		}
		pc++
	}
}

// effAddr computes the effective address of a memory instruction. In
// sandbox-enforcing mode the access must use the dedicated register
// freshly set by a check.
func (e *Exec) effAddr(ins Instr, regs [NumRegs]uint64, segLen int, checkedValid bool) (uint64, error) {
	if e.EnforceSandbox {
		if ins.B != SandboxReg || ins.Imm != 0 || !checkedValid {
			return 0, fmt.Errorf("%w: %v", ErrNotSandboxed, ins)
		}
		return regs[SandboxReg], nil
	}
	return regs[ins.B] + uint64(ins.Imm), nil
}

func loadSize(op Opcode) int {
	switch op {
	case OpLd8, OpSt8:
		return 1
	case OpLd16, OpSt16:
		return 2
	case OpLd32, OpSt32:
		return 4
	default:
		return 8
	}
}

func loadVal(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.BigEndian.Uint16(b))
	case 4:
		return uint64(binary.BigEndian.Uint32(b))
	default:
		return binary.BigEndian.Uint64(b)
	}
}

func storeVal(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.BigEndian.PutUint16(b, uint16(v))
	case 4:
		binary.BigEndian.PutUint32(b, uint32(v))
	default:
		binary.BigEndian.PutUint64(b, v)
	}
}
