module paramecium

go 1.24
