// Package lockorder is the golden suite for the lockorder analyzer:
// its Registry.mu (rank 1) → Segment.mu (rank 2) → Grant.mu (rank 3)
// hierarchy mirrors the shm package's documented order.
package lockorder

import "sync"

type Registry struct {
	mu       sync.Mutex
	segments []*Segment
}

type Segment struct {
	mu     sync.Mutex
	grants []*Grant
}

type Grant struct {
	mu      sync.Mutex
	revoked bool
}

// revokeAll walks the hierarchy in the documented order.
func (r *Registry) revokeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.segments {
		s.mu.Lock()
		for _, g := range s.grants {
			g.mu.Lock()
			g.revoked = true
			g.mu.Unlock()
		}
		s.mu.Unlock()
	}
}

// revokeUpward acquires against the documented order.
func (g *Grant) revokeUpward(s *Segment) {
	g.mu.Lock()
	s.mu.Lock() // want `lock order inversion: acquiring lockorder\.Segment\.mu \(rank 2\) while holding lockorder\.Grant\.mu \(rank 3\)`
	s.mu.Unlock()
	g.mu.Unlock()
}

// doubleLock reacquires a lock it already holds.
func (r *Registry) doubleLock() {
	r.mu.Lock()
	r.mu.Lock() // want `self-deadlock`
	r.mu.Unlock()
	r.mu.Unlock()
}

// sequential holds the locks one at a time: order is irrelevant.
func (g *Grant) sequential(s *Segment) {
	g.mu.Lock()
	g.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// lockRegistry is a helper whose acquire set propagates to callers.
func lockRegistry(r *Registry) {
	r.mu.Lock()
	r.mu.Unlock()
}

// viaHelper inverts the order through the helper call.
func (g *Grant) viaHelper(r *Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	lockRegistry(r) // want `lock order inversion: acquiring lockorder\.Registry\.mu \(rank 1\) while holding lockorder\.Grant\.mu \(rank 3\)`
}

// earlyReturn releases on the fast path and proceeds in order on the
// slow one.
func (r *Registry) earlyReturn(s *Segment, fast bool) {
	r.mu.Lock()
	if fast {
		r.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.mu.Unlock()
	r.mu.Unlock()
}

// reviewed is a documented deviation the analyzer must honor.
func (s *Segment) reviewed(g *Grant) {
	g.mu.Lock()
	defer g.mu.Unlock()
	//paralint:ignore lockorder reviewed: this segment is private to the caller, no concurrent registry walk can hold its lock
	s.mu.Lock()
	s.mu.Unlock()
}
