// Interpose: build the paper's monitoring tool. An RPC-ish object is
// registered in the name space; an interposing agent replaces its
// handle, counting and timing every call and exporting an *additional*
// measurement interface — "adding a measurement interface to an RPC
// object does not require recompilation of its users, since the RPC
// interface itself does not change."
package main

import (
	"fmt"
	"log"

	"paramecium/internal/cert"
	"paramecium/internal/core"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
	"paramecium/internal/trace"
)

var rpcDecl = obj.MustInterfaceDecl("example.rpc.v1",
	obj.MethodDecl{Name: "call", NumIn: 2, NumOut: 1}, // (proc string, arg int) -> int
)

func main() {
	log.SetFlags(0)
	auth := cert.NewAuthority(7)
	k, err := core.Boot(core.Config{AuthorityKey: auth.PublicKey()})
	if err != nil {
		log.Fatal(err)
	}

	// The RPC object: dispatches to two "remote" procedures.
	rpc := obj.New("rpc", k.Meter)
	bi, err := rpc.AddInterface(rpcDecl, nil)
	if err != nil {
		log.Fatal(err)
	}
	bi.MustBind("call", func(args ...any) ([]any, error) {
		proc := args[0].(string)
		arg := args[1].(int)
		switch proc {
		case "square":
			k.Meter.Clock.Advance(50) // simulated marshalling + work
			return []any{arg * arg}, nil
		case "negate":
			k.Meter.Clock.Advance(20)
			return []any{-arg}, nil
		}
		return nil, fmt.Errorf("rpc: no procedure %q", proc)
	})
	if err := k.Register("/services/rpc", rpc, mmu.KernelContext); err != nil {
		log.Fatal(err)
	}

	// A client binds before interposition, pre-resolving the method:
	// bind once, call many times.
	early, err := k.RootView.ResolveMethod("/services/rpc", "example.rpc.v1", "call")
	if err != nil {
		log.Fatal(err)
	}

	// ...then the measurement agent replaces the handle. Every
	// *future* bind goes through the tracer; existing references keep
	// talking to the raw object (exactly the handle-replacement
	// semantics of the paper).
	tracer, err := trace.NewTracer(rpc, k.Meter)
	if err != nil {
		log.Fatal(err)
	}
	tracer.Agent().SetMeter(k.Meter)
	if _, err := k.Interpose("/services/rpc", func(target obj.Instance) (obj.Instance, error) {
		return tracer.Agent(), nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("interposed tracer on /services/rpc")

	late, err := k.RootView.ResolveMethod("/services/rpc", "example.rpc.v1", "call")
	if err != nil {
		log.Fatal(err)
	}

	for i := 1; i <= 5; i++ {
		if _, err := late.Call("square", i); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := late.Call("negate", 9); err != nil {
		log.Fatal(err)
	}
	if _, err := late.Call("missing", 0); err != nil {
		fmt.Printf("observed failure through tracer: %v\n", err)
	}
	// The early handle bypasses the agent — its calls are invisible.
	if _, err := early.Call("square", 100); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmeasurement report (note: the early binding's call is absent):")
	fmt.Print(tracer.Report())

	st, _ := tracer.Stats("example.rpc.v1.call")
	fmt.Printf("\nhistogram of call latencies: %s\n", st.Hist.String())
	fmt.Printf("p50 <= %d cycles, p99 <= %d cycles\n",
		st.Hist.Percentile(50), st.Hist.Percentile(99))

	// Finally remove the agent; the system reverts without restart.
	if err := k.Unwrap("/services/rpc"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nagent removed; /services/rpc resolves to the raw object again")
}
