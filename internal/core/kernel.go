// Package core is the Paramecium nucleus: "a protected and trusted
// component which implements only those services that cannot be moved
// into the application without jeopardizing the system's integrity."
//
// The kernel is itself a static (link-time) composition of the four
// nucleus services — processor event management, memory management,
// the directory service and the certification service — assembled at
// Boot. Everything else (thread package, drivers, protocol stacks,
// virtual memory) is an ordinary component loaded from the repository
// into whichever protection domain its certificate allows.
package core

import (
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/cert"
	"paramecium/internal/clock"
	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/names"
	"paramecium/internal/obj"
	"paramecium/internal/proxy"
	"paramecium/internal/repoz"
	"paramecium/internal/threads"
)

// Well-known name-space paths.
const (
	PathNucleus  = "/nucleus"
	PathServices = "/services"
	PathDevices  = "/devices"
)

// Errors.
var (
	ErrNotCertified = errors.New("core: component not certified for requested placement")
	ErrNoSuchDomain = errors.New("core: no such domain")
)

// Config controls kernel construction.
type Config struct {
	// Machine configures the simulated hardware (defaults apply).
	Machine hw.Config
	// AuthorityKey is the certification authority's public key the
	// kernel trusts. Zero-length means certification is disabled and
	// every kernel placement request fails closed.
	AuthorityKey []byte
}

// Kernel is a booted Paramecium system.
type Kernel struct {
	Machine   *hw.Machine
	Meter     *clock.Meter
	Mem       *mem.Service
	Events    *event.Service
	Sched     *threads.Scheduler
	Space     *names.Space
	RootView  *names.View
	Validator *cert.Validator
	Repo      *repoz.Repository
	Proxies   *proxy.Factory
	// Nucleus is the static composition holding the four services.
	Nucleus *obj.Composition

	// mu guards placement and domains. Bind — the hot lookup path —
	// only read-locks it.
	mu        sync.RWMutex
	placement map[obj.Instance]mmu.ContextID // where each registered instance lives
	domains   map[mmu.ContextID]*Domain
}

// Boot assembles a kernel: machine, the four nucleus services, the
// root of the name space, and an empty repository.
func Boot(cfg Config) (*Kernel, error) {
	machine := hw.New(cfg.Machine)
	meter := machine.Meter
	memSvc := mem.New(machine)
	sched := threads.NewScheduler(meter)
	events := event.New(machine, sched)
	space := names.NewSpace(meter)
	validator := cert.NewValidator(meter, cfg.AuthorityKey)

	k := &Kernel{
		Machine:   machine,
		Meter:     meter,
		Mem:       memSvc,
		Events:    events,
		Sched:     sched,
		Space:     space,
		RootView:  names.RootView(space),
		Validator: validator,
		Repo:      repoz.New(),
		Proxies:   proxy.NewFactory(memSvc, 0),
		placement: make(map[obj.Instance]mmu.ContextID),
		domains:   make(map[mmu.ContextID]*Domain),
	}

	// The nucleus is the only static composition in the system.
	nucleus := obj.NewStaticComposition("paramecium.nucleus", meter)
	for role, inst := range map[string]obj.Instance{
		"events":    nucleusFacade("nucleus.events", meter),
		"memory":    nucleusFacade("nucleus.memory", meter),
		"directory": nucleusFacade("nucleus.directory", meter),
		"certify":   nucleusFacade("nucleus.certify", meter),
	} {
		if err := nucleus.AddChild(role, inst); err != nil {
			return nil, err
		}
		if err := space.Register(names.Join(PathNucleus, role), inst); err != nil {
			return nil, err
		}
	}
	k.Nucleus = nucleus
	return k, nil
}

// nucleusFacade builds the name-space face of one nucleus service. The
// actual service logic lives in the typed Go APIs (k.Mem, k.Events,
// ...); the facade object is what shows up in /nucleus so components
// can late-bind and interpose on it like on anything else.
func nucleusFacade(class string, meter *clock.Meter) obj.Instance {
	o := obj.NewStatic(class, meter)
	decl := obj.MustInterfaceDecl(class+".v1",
		obj.MethodDecl{Name: "describe", NumIn: 0, NumOut: 1},
	)
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		panic(err) // static construction; cannot fail at run time
	}
	bi.MustBind("describe", func(...any) ([]any, error) {
		return []any{class}, nil
	})
	return o
}

// Domain is an application protection domain with its own view of the
// name space (inherited from the root view, reconfigurable with
// overrides).
type Domain struct {
	Name string
	Ctx  mmu.ContextID
	View *names.View

	kernel *Kernel
	mu     sync.Mutex
	prox   map[obj.Instance]*proxy.Proxy // bind cache
}

// NewDomain creates an application protection domain.
func (k *Kernel) NewDomain(name string) *Domain {
	ctx := k.Mem.NewDomain()
	d := &Domain{
		Name:   name,
		Ctx:    ctx,
		View:   k.RootView.Child(),
		kernel: k,
		prox:   make(map[obj.Instance]*proxy.Proxy),
	}
	k.mu.Lock()
	k.domains[ctx] = d
	k.mu.Unlock()
	return d
}

// DestroyDomain tears a domain down.
func (k *Kernel) DestroyDomain(d *Domain) error {
	k.mu.Lock()
	if _, ok := k.domains[d.Ctx]; !ok {
		k.mu.Unlock()
		return ErrNoSuchDomain
	}
	delete(k.domains, d.Ctx)
	for inst, ctx := range k.placement {
		if ctx == d.Ctx {
			delete(k.placement, inst)
		}
	}
	k.mu.Unlock()
	d.mu.Lock()
	for _, p := range d.prox {
		_ = p.Close()
	}
	d.prox = nil
	d.mu.Unlock()
	return k.Mem.DestroyDomain(d.Ctx)
}

// registerPlacement records which context an instance lives in.
func (k *Kernel) registerPlacement(inst obj.Instance, ctx mmu.ContextID) {
	k.mu.Lock()
	k.placement[inst] = ctx
	k.mu.Unlock()
}

// PlacementOf reports the context an instance was registered under
// (kernel context if never registered).
func (k *Kernel) PlacementOf(inst obj.Instance) mmu.ContextID {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.placement[inst]
}

// Register places an instance in the name space, recording its
// protection domain.
func (k *Kernel) Register(path string, inst obj.Instance, ctx mmu.ContextID) error {
	if err := k.Space.Register(path, inst); err != nil {
		return err
	}
	k.registerPlacement(inst, ctx)
	return nil
}

// Bind resolves path in the domain's view. If the instance lives in
// another protection domain, a proxy appears — "importing an object
// from another protection domain, by means of the directory service,
// causes a proxy to appear." Binds from the kernel domain to kernel
// instances (and within the same domain) are direct.
func (d *Domain) Bind(path string) (obj.Instance, error) {
	inst, err := d.View.Bind(path)
	if err != nil {
		return nil, err
	}
	home := d.kernel.PlacementOf(inst)
	if home == d.Ctx {
		return inst, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.prox[inst]; ok {
		return p, nil
	}
	p, err := d.kernel.Proxies.New(d.Ctx, home, inst)
	if err != nil {
		return nil, err
	}
	d.prox[inst] = p
	return p, nil
}

// BindInterface is Bind followed by interface selection.
func (d *Domain) BindInterface(path, iface string) (obj.Invoker, error) {
	inst, err := d.Bind(path)
	if err != nil {
		return nil, err
	}
	iv, ok := inst.Iface(iface)
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", obj.ErrNoInterface, iface, path)
	}
	return iv, nil
}

// ResolveMethod binds path in the domain's view, selects an
// interface, and pre-resolves one method. Cross-domain targets
// resolve to a handle over the proxy's entry slot, so even the
// fault-driven path skips its per-call method lookup.
func (d *Domain) ResolveMethod(path, iface, method string) (obj.MethodHandle, error) {
	iv, err := d.BindInterface(path, iface)
	if err != nil {
		return obj.MethodHandle{}, err
	}
	return iv.Resolve(method)
}

// KernelBind resolves a path for kernel-resident callers: instances in
// the kernel context are returned directly; instances in application
// domains are reached through a proxy owned by the kernel context.
func (k *Kernel) KernelBind(path string) (obj.Instance, error) {
	inst, err := k.RootView.Bind(path)
	if err != nil {
		return nil, err
	}
	home := k.PlacementOf(inst)
	if home == mmu.KernelContext {
		return inst, nil
	}
	return k.Proxies.New(mmu.KernelContext, home, inst)
}

// Interpose replaces the instance at path with an interposing agent
// wrapping it, returning the agent. All future binds resolve to the
// agent; existing direct references are unaffected (exactly the
// semantics of handle replacement in the paper).
func (k *Kernel) Interpose(path string, build func(target obj.Instance) (obj.Instance, error)) (obj.Instance, error) {
	target, err := k.RootView.Bind(path)
	if err != nil {
		return nil, err
	}
	agent, err := build(target)
	if err != nil {
		return nil, err
	}
	if _, err := k.Space.Replace(path, agent); err != nil {
		return nil, err
	}
	k.registerPlacement(agent, k.PlacementOf(target))
	return agent, nil
}

// Unwrap undoes an interposition by restoring the wrapped target.
func (k *Kernel) Unwrap(path string) error {
	cur, err := k.RootView.Bind(path)
	if err != nil {
		return err
	}
	ip, ok := cur.(*obj.Interposer)
	if !ok {
		return fmt.Errorf("core: %q is not interposed", path)
	}
	_, err = k.Space.Replace(path, ip.Target())
	return err
}
