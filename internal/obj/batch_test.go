package obj

import (
	"errors"
	"fmt"
	"testing"
)

// batchTestIface builds an object with an into-bound counter and a
// plain failing method, returning the invoker.
func batchTestIface(t *testing.T) (Invoker, *int) {
	t.Helper()
	decl := MustInterfaceDecl("batch.v1",
		MethodDecl{Name: "inc", NumIn: 0, NumOut: 1},
		MethodDecl{Name: "fail", NumIn: 0, NumOut: 0},
	)
	o := New("counter", nil)
	n := new(int)
	bi, err := o.AddInterface(decl, n)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBindInto("inc", func(out []any, _ ...any) ([]any, error) {
		*n++
		return append(out, n), nil
	})
	bi.MustBind("fail", func(...any) ([]any, error) {
		return nil, errors.New("boom")
	})
	iv, _ := o.Iface("batch.v1")
	return iv, n
}

// TestBatchLocalEntriesDispatchInOrder: a batch of local handles runs
// every entry in order, recording per-entry results.
func TestBatchLocalEntriesDispatchInOrder(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(4)
	for i := 0; i < 4; i++ {
		if err := b.Add(inc); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if *n != 4 {
		t.Fatalf("counter = %d, want 4", *n)
	}
	for i := 0; i < b.Len(); i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got := *(res[0].(*int)); got != 4 {
			// The into-form returns the state pointer; all entries see
			// the final count.
			t.Fatalf("entry %d result = %d, want 4", i, got)
		}
	}
}

// TestBatchPartialFailureContinues: a failing entry records its error
// and the remaining entries still execute — batch semantics are N
// independent calls, not a transaction.
func TestBatchPartialFailureContinues(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	fail, _ := iv.Resolve("fail")
	b := NewBatch(3)
	_ = b.Add(inc)
	_ = b.Add(fail)
	_ = b.Add(inc)
	if err := b.Run(); err != nil {
		t.Fatalf("local batch returned group error: %v", err)
	}
	if *n != 2 {
		t.Fatalf("counter = %d, want 2 (entries after the failure must run)", *n)
	}
	if _, err := b.Results(0); err != nil {
		t.Fatalf("entry 0: %v", err)
	}
	if _, err := b.Results(1); err == nil {
		t.Fatal("failing entry recorded no error")
	}
	if _, err := b.Results(2); err != nil {
		t.Fatalf("entry 2: %v", err)
	}
}

// TestBatchAddValidatesArity: a malformed entry fails at Add, before
// anything runs.
func TestBatchAddValidatesArity(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	b := NewBatch(1)
	if err := b.Add(inc, "unexpected"); !errors.Is(err, ErrArity) {
		t.Fatalf("err = %v, want ErrArity", err)
	}
	if err := b.Add(MethodHandle{}); !errors.Is(err, ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
	if b.Len() != 0 {
		t.Fatalf("len = %d after rejected adds", b.Len())
	}
	_ = b.Run()
	if *n != 0 {
		t.Fatal("rejected entry executed")
	}
}

// TestBatchResetReuses: Reset keeps capacity and drops entry state.
func TestBatchResetReuses(t *testing.T) {
	iv, _ := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	b := NewBatch(2)
	_ = b.Add(inc)
	_ = b.Add(inc)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len = %d after Reset", b.Len())
	}
	_ = b.Add(inc)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Results(0); err != nil {
		t.Fatal(err)
	}
}

// recordingBatcher counts DispatchBatch groups and entries.
type recordingBatcher struct {
	groups  int
	entries int
}

func (r *recordingBatcher) DispatchBatch(calls []BatchCall) error {
	r.groups++
	r.entries += len(calls)
	for i := range calls {
		calls[i].SetResult(nil, nil)
	}
	return nil
}

// TestBatchGroupsConsecutiveSameBatcher: consecutive entries sharing
// a batcher form one group; an interleaved local entry splits them.
func TestBatchGroupsConsecutiveSameBatcher(t *testing.T) {
	iv, _ := batchTestIface(t)
	local, _ := iv.Resolve("fail") // plain local handle, no batcher
	rb := &recordingBatcher{}
	decl := &MethodDecl{Name: "remote", NumIn: 0, NumOut: 0}
	remote := NewBatchableHandle(decl,
		func(...any) ([]any, error) { return nil, nil }, nil, rb, nil)

	b := NewBatch(5)
	_ = b.Add(remote)
	_ = b.Add(remote)
	_ = b.Add(local)
	_ = b.Add(remote)
	_ = b.Add(remote)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if rb.groups != 2 || rb.entries != 4 {
		t.Fatalf("groups = %d entries = %d, want 2 groups of 4 entries", rb.groups, rb.entries)
	}
}

// TestBatchAddIntoThreadsBuffers: entries queued with AddInto land
// their results in the caller's own buffers, and a steady-state
// Reset-and-refill round over reused buffers allocates nothing — the
// vectored-plane twin of the single-call CallInto invariant.
func TestBatchAddIntoThreadsBuffers(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}
	const size = 4
	b := NewBatch(size)
	bufs := make([][1]any, size)
	for i := 0; i < size; i++ {
		if err := b.AddInto(inc, bufs[i][:0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < size; i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if &res[0] != &bufs[i][0] {
			t.Fatalf("entry %d result not in the caller's buffer", i)
		}
	}
	if *n != size {
		t.Fatalf("counter = %d, want %d", *n, size)
	}

	// Steady state: rebuilt from the same buffers, a round allocates
	// nothing.
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for i := 0; i < size; i++ {
			if err := b.AddInto(inc, bufs[i][:0]); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AddInto round allocates %.1f allocs, want 0", allocs)
	}
}

// TestBatchAddIntoValidatesLikeAdd: AddInto applies the same arity and
// zero-handle validation as Add.
func TestBatchAddIntoValidatesLikeAdd(t *testing.T) {
	iv, _ := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	var buf [1]any
	b := NewBatch(1)
	if err := b.AddInto(inc, buf[:0], "unexpected"); !errors.Is(err, ErrArity) {
		t.Fatalf("err = %v, want ErrArity", err)
	}
	if err := b.AddInto(MethodHandle{}, buf[:0]); !errors.Is(err, ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
}

// TestCallIntoZeroAlloc: the resolved into-path — dispatch, method
// body, results — allocates nothing when the caller supplies the
// result buffer. This is the single-call zero-allocation invariant
// the B0 benchmark gates in CI.
func TestCallIntoZeroAlloc(t *testing.T) {
	iv, _ := batchTestIface(t)
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}
	var buf [1]any
	allocs := testing.AllocsPerRun(1000, func() {
		res, err := inc.CallInto(buf[:0])
		if err != nil || len(res) != 1 {
			t.Fatal("bad result")
		}
	})
	if allocs != 0 {
		t.Fatalf("CallInto allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestCallIntoFallsBackForPlainHandles: handles without an into form
// (custom NewMethodHandle dispatchers) still work through CallInto.
func TestCallIntoFallsBackForPlainHandles(t *testing.T) {
	decl := &MethodDecl{Name: "echo", NumIn: 1, NumOut: 1}
	h := NewMethodHandle(decl, func(args ...any) ([]any, error) {
		return []any{fmt.Sprint(args[0])}, nil
	})
	var buf [1]any
	res, err := h.CallInto(buf[:0], 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "7" {
		t.Fatalf("res = %v", res)
	}
}

// orderedBatcher is a recordingBatcher whose results encode dispatch
// order: entry j of a run gets result base+j, so a caller can verify
// both that its buffer received the right target's result and that
// the target saw its entries in the caller's relative order. The
// values stay under 256 so boxing them into the result interface
// never allocates (the runtime's static small-int boxes).
type orderedBatcher struct {
	recordingBatcher
	base int
	seq  int
}

func (o *orderedBatcher) DispatchBatch(calls []BatchCall) error {
	o.groups++
	o.entries += len(calls)
	for i := range calls {
		c := &calls[i]
		c.SetResult(append(c.Out(), o.base+o.seq), nil)
		o.seq++
	}
	return nil
}

// groupedFixture builds k ordered batchers with distinct result bases
// and one batchable handle per batcher.
func groupedFixture(k int) ([]*orderedBatcher, []MethodHandle) {
	bs := make([]*orderedBatcher, k)
	hs := make([]MethodHandle, k)
	for i := range bs {
		bs[i] = &orderedBatcher{base: i * 50}
		decl := &MethodDecl{Name: "remote", NumIn: 0, NumOut: 1}
		hs[i] = NewBatchableHandle(decl,
			func(...any) ([]any, error) { return nil, nil }, nil, bs[i], nil)
	}
	return bs, hs
}

// TestBatchGroupedOneCrossingPerTarget: a grouped batch round-robining
// k targets dispatches exactly ONE group per distinct target — the
// multi-target vectoring contract — where in-order mode pays one
// group per entry on the same interleave.
func TestBatchGroupedOneCrossingPerTarget(t *testing.T) {
	const k, size = 3, 12
	bs, hs := groupedFixture(k)

	b := NewBatch(size)
	for i := 0; i < size; i++ {
		if err := b.Add(hs[i%k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Crossings(); got != size {
		t.Fatalf("in-order crossings = %d, want %d (one per entry on an interleave)", got, size)
	}
	for i, rb := range bs {
		if rb.groups != size/k {
			t.Fatalf("in-order target %d saw %d groups, want %d", i, rb.groups, size/k)
		}
		rb.groups, rb.entries, rb.seq = 0, 0, 0
	}

	b.SetMode(Grouped)
	b.Reset()
	for i := 0; i < size; i++ {
		if err := b.Add(hs[i%k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if got := b.Crossings(); got != k {
		t.Fatalf("grouped crossings = %d, want %d (one per distinct target)", got, k)
	}
	for i, rb := range bs {
		if rb.groups != 1 || rb.entries != size/k {
			t.Fatalf("grouped target %d saw %d groups of %d entries, want 1 group of %d",
				i, rb.groups, rb.entries, size/k)
		}
	}
}

// TestBatchGroupedScattersResults: a grouped Run with interleaved
// AddInto buffers across three targets lands every result in the
// caller's ORIGINAL entry slot — buffer identity and value both — with
// per-target dispatch order preserved, and a steady-state round over
// reused buffers allocates nothing (the P8 grouped rows hold this in
// CI).
func TestBatchGroupedScattersResults(t *testing.T) {
	const k, size = 3, 9
	bs, hs := groupedFixture(k)

	b := NewBatch(size)
	b.SetMode(Grouped)
	bufs := make([][1]any, size)
	fill := func() {
		b.Reset()
		for i := range bs {
			bs[i].seq = 0
		}
		for i := 0; i < size; i++ {
			if err := b.AddInto(hs[i%k], bufs[i][:0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill()
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < size; i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if &res[0] != &bufs[i][0] {
			t.Fatalf("entry %d result not in the caller's buffer", i)
		}
		// Entry i is the (i/k)'th entry queued for target i%k, so its
		// result must be that target's base plus that rank: the scatter
		// landed the right target's right dispatch in the right slot.
		if want := bs[i%k].base + i/k; res[0] != want {
			t.Fatalf("entry %d result = %v, want %d", i, res[0], want)
		}
	}

	allocs := testing.AllocsPerRun(100, func() {
		fill()
		if err := b.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state grouped round allocates %.1f allocs, want 0", allocs)
	}
}

// TestBatchGroupedLocalEntriesKeepOrder: batcher-less local entries
// form their own partition and run in their original relative order;
// their results land in their original slots like everyone else's.
func TestBatchGroupedLocalEntriesKeepOrder(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	_, hs := groupedFixture(1)

	b := NewBatch(4)
	b.SetMode(Grouped)
	_ = b.Add(inc)
	_ = b.Add(hs[0])
	_ = b.Add(inc)
	_ = b.Add(hs[0])
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Crossings() != 1 {
		t.Fatalf("crossings = %d, want 1 (locals never cross)", b.Crossings())
	}
	if *n != 2 {
		t.Fatalf("counter = %d, want 2", *n)
	}
	for _, i := range []int{0, 2} {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("local entry %d: %v", i, err)
		}
		if got := *(res[0].(*int)); got != 2 {
			t.Fatalf("local entry %d result = %d, want 2", i, got)
		}
	}
	for _, i := range []int{1, 3} {
		if res, err := b.Results(i); err != nil || res[0] != (i-1)/2 {
			t.Fatalf("remote entry %d = (%v, %v), want rank %d", i, res, err, (i-1)/2)
		}
	}
}

// TestBatchGroupedPartialFailure: a group-level dispatch error from
// one target is returned by Run, but every other partition still
// dispatches — grouped mode keeps the not-a-transaction semantics.
func TestBatchGroupedPartialFailure(t *testing.T) {
	bs, hs := groupedFixture(2)
	failing := &failingBatcher{}
	decl := &MethodDecl{Name: "remote", NumIn: 0, NumOut: 1}
	fh := NewBatchableHandle(decl,
		func(...any) ([]any, error) { return nil, nil }, nil, failing, nil)

	b := NewBatch(6)
	b.SetMode(Grouped)
	_ = b.Add(hs[0])
	_ = b.Add(fh)
	_ = b.Add(hs[1])
	_ = b.Add(hs[0])
	_ = b.Add(fh)
	_ = b.Add(hs[1])
	if err := b.Run(); err == nil || err.Error() != "route down" {
		t.Fatalf("err = %v, want the failing partition's group error", err)
	}
	if b.Crossings() != 3 {
		t.Fatalf("crossings = %d, want 3 (failed partitions still count)", b.Crossings())
	}
	for i, rb := range bs {
		if rb.groups != 1 || rb.entries != 2 {
			t.Fatalf("surviving target %d saw %d groups of %d entries, want 1 of 2", i, rb.groups, rb.entries)
		}
	}
	// The failing partition's entries carry its per-entry errors.
	for _, i := range []int{1, 4} {
		if _, err := b.Results(i); err == nil {
			t.Fatalf("entry %d of the failed partition recorded no error", i)
		}
	}
}

// failingBatcher fails the whole group: route-level error plus
// per-entry errors, the shape proxy dispatch produces for a condemned
// target.
type failingBatcher struct{}

func (f *failingBatcher) DispatchBatch(calls []BatchCall) error {
	err := errors.New("route down")
	for i := range calls {
		calls[i].SetResult(nil, err)
	}
	return err
}

// TestBatchGroupedUncomparableBatcher: a Batcher of an uncomparable
// dynamic type never groups — not even with itself — so each of its
// entries forms a partition of one, exactly the groups in-order mode
// would form; nothing panics.
func TestBatchGroupedUncomparableBatcher(t *testing.T) {
	counts := &recordingBatcher{}
	ub := uncomparableBatcher{counts: counts, pad: make([]int, 1)}
	decl := &MethodDecl{Name: "remote", NumIn: 0, NumOut: 0}
	h := NewBatchableHandle(decl,
		func(...any) ([]any, error) { return nil, nil }, nil, ub, nil)

	b := NewBatch(3)
	b.SetMode(Grouped)
	for i := 0; i < 3; i++ {
		_ = b.Add(h)
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if counts.groups != 3 || counts.entries != 3 {
		t.Fatalf("groups = %d entries = %d, want 3 partitions of one", counts.groups, counts.entries)
	}
	if b.Crossings() != 3 {
		t.Fatalf("crossings = %d, want 3", b.Crossings())
	}
}

// uncomparableBatcher's dynamic type has a slice field, so interface
// comparison would panic if sameBatcher compared it naively.
type uncomparableBatcher struct {
	counts *recordingBatcher
	pad    []int
}

func (u uncomparableBatcher) DispatchBatch(calls []BatchCall) error {
	return u.counts.DispatchBatch(calls)
}

// TestBatchModeDefaultsAndSurvivesReset: the default mode is InOrder,
// SetMode sticks across Reset (like capacity), and the Stringer names
// both modes.
func TestBatchModeDefaultsAndSurvivesReset(t *testing.T) {
	b := NewBatch(1)
	if b.Mode() != InOrder {
		t.Fatalf("default mode = %v, want %v", b.Mode(), InOrder)
	}
	b.SetMode(Grouped)
	b.Reset()
	if b.Mode() != Grouped {
		t.Fatalf("mode after Reset = %v, want %v", b.Mode(), Grouped)
	}
	if InOrder.String() != "in-order" || Grouped.String() != "grouped" {
		t.Fatalf("mode names = %q, %q", InOrder.String(), Grouped.String())
	}
}
