package core

import (
	"paramecium/internal/ring"
)

// NewRing creates a streaming data-plane ring produced by d and
// consumed by the to domain: a single-producer/single-consumer record
// ring (see internal/ring) over a segment owned by d and granted
// read-write to to, with the consumer side already attached.
//
// Teardown rides the existing sweeps: destroying d condemns the
// segment it owns, destroying to revokes the consumer grant — either
// way the surviving side observes ring.ErrHangup, the revoked-grant
// tombstone read as end-of-stream. Nothing needs to track the ring
// beyond the segment registry.
func (d *Domain) NewRing(to *Domain, slots, slotBytes int) (*ring.Ring, error) {
	k := d.kernel
	return ring.New(k.Meter, k.Shm, d.Ctx, to.Ctx, slots, slotBytes)
}
