// Package proxy implements Paramecium's cross-domain invocation:
// "Importing an object from another protection domain, by means of the
// directory service, causes a proxy to appear. This proxy provides
// exactly the same set of interfaces as the original object, but each
// interface entry will cause a page fault when referenced. Control is
// then transferred to a per page fault handler which will map in
// arguments into the object's protection domain, switch context, and
// invoke the actual method. Return values are handled similarly."
//
// A Proxy satisfies obj.Instance, so the directory service can hand it
// out exactly where a local object would appear; callers cannot tell
// the difference except in cycles.
package proxy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
)

// Errors.
var (
	ErrClosed     = errors.New("proxy: proxy closed")
	ErrNoDelivery = errors.New("proxy: fault did not reach the call handler")
)

// DefaultEntryBase is where proxy entry pages are placed in the
// caller's address space when the factory is built with base 0.
const DefaultEntryBase mmu.VAddr = 0x7000_0000

// Factory creates proxies, managing the entry-page address space of
// each client context.
type Factory struct {
	svc  *mem.Service
	base mmu.VAddr

	mu     sync.Mutex
	nextVA map[mmu.ContextID]mmu.VAddr
}

// NewFactory builds a factory allocating entry pages from base.
func NewFactory(svc *mem.Service, base mmu.VAddr) *Factory {
	if base == 0 {
		base = DefaultEntryBase
	}
	return &Factory{svc: svc, base: base, nextVA: make(map[mmu.ContextID]mmu.VAddr)}
}

// allocEntryPage reserves one (never-mapped) page of entry slots in
// callerCtx.
func (f *Factory) allocEntryPage(callerCtx mmu.ContextID) mmu.VAddr {
	f.mu.Lock()
	defer f.mu.Unlock()
	va, ok := f.nextVA[callerCtx]
	if !ok {
		va = f.base
	}
	f.nextVA[callerCtx] = va + mmu.PageSize
	return va
}

// New builds a proxy in callerCtx for target living in targetCtx. One
// entry page per exported interface is reserved; each method occupies
// an 8-byte slot on its page.
func (f *Factory) New(callerCtx, targetCtx mmu.ContextID, target obj.Instance) (*Proxy, error) {
	if target == nil {
		return nil, errors.New("proxy: nil target")
	}
	p := &Proxy{
		factory:   f,
		class:     target.Class(),
		callerCtx: callerCtx,
		targetCtx: targetCtx,
		target:    target,
		ifaces:    make(map[string]*entryIface),
	}
	for _, name := range target.InterfaceNames() {
		iv, ok := target.Iface(name)
		if !ok {
			continue
		}
		pageVA := f.allocEntryPage(callerCtx)
		// Entry slots are laid out by the declaration's slot indices,
		// the same numbering every bound interface dispatches by.
		ei := &entryIface{proxy: p, target: iv, pageVA: pageVA}
		if err := f.svc.RegisterFaultHandler(callerCtx, pageVA, ei.handleFault); err != nil {
			p.closeLocked()
			return nil, fmt.Errorf("proxy: entry page for %q: %w", name, err)
		}
		p.ifaces[name] = ei
	}
	return p, nil
}

// Proxy is a cross-domain stand-in for an object in another protection
// domain.
type Proxy struct {
	factory   *Factory
	class     string
	callerCtx mmu.ContextID
	targetCtx mmu.ContextID
	target    obj.Instance

	mu     sync.Mutex
	closed bool
	ifaces map[string]*entryIface
	calls  uint64
}

// Class implements obj.Instance. Proxies are transparent: they present
// the target's class name.
func (p *Proxy) Class() string { return p.class }

// InterfaceNames implements obj.Instance.
func (p *Proxy) InterfaceNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.ifaces))
	for n := range p.ifaces {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Iface implements obj.Instance.
func (p *Proxy) Iface(name string) (obj.Invoker, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ei, ok := p.ifaces[name]
	if !ok {
		return nil, false
	}
	return ei, true
}

// Calls reports the number of cross-domain invocations performed.
func (p *Proxy) Calls() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// TargetContext reports the protection domain of the real object.
func (p *Proxy) TargetContext() mmu.ContextID { return p.targetCtx }

// Close releases the proxy's entry pages and fault handlers.
func (p *Proxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closeLocked()
}

func (p *Proxy) closeLocked() error {
	if p.closed {
		return ErrClosed
	}
	p.closed = true
	for _, ei := range p.ifaces {
		_ = p.factory.svc.UnregisterFaultHandler(p.callerCtx, ei.pageVA)
	}
	return nil
}

// entryIface is one interface's entry page plus its live call state.
type entryIface struct {
	proxy  *Proxy
	target obj.Invoker
	pageVA mmu.VAddr

	mu      sync.Mutex // serializes calls through this interface
	pending *pendingCall
}

type pendingCall struct {
	method string
	args   []any
	res    []any
	err    error
	done   bool
}

// Decl implements obj.Invoker.
func (e *entryIface) Decl() *obj.InterfaceDecl { return e.target.Decl() }

// State implements obj.Invoker. Cross-domain state pointers are not
// addressable from the caller's domain; proxies return nil, exactly as
// a hardware implementation would have to.
func (e *entryIface) State() any { return nil }

// Invoke implements obj.Invoker: it references the method's entry
// slot, taking the page fault that drives the cross-domain call.
func (e *entryIface) Invoke(method string, args ...any) ([]any, error) {
	md, ok := e.target.Decl().Method(method)
	if !ok {
		return nil, fmt.Errorf("%w: %q.%s", obj.ErrNoMethod, e.target.Decl().Name, method)
	}
	if err := obj.CheckArity(md, args); err != nil {
		return nil, err
	}
	return e.fault(md, args)
}

// Resolve implements obj.Invoker: the entry slot's address is
// computed once, and the returned handle faults straight into the
// kernel on every Call with no per-call method lookup.
func (e *entryIface) Resolve(method string) (obj.MethodHandle, error) {
	md, ok := e.target.Decl().Method(method)
	if !ok {
		return obj.MethodHandle{}, fmt.Errorf("%w: %q.%s", obj.ErrNoMethod, e.target.Decl().Name, method)
	}
	return obj.NewMethodHandle(md, func(args ...any) ([]any, error) {
		return e.fault(md, args)
	}), nil
}

// fault performs the cross-domain call for one pre-looked-up method:
// it references the method's entry slot, taking the page fault that
// drives the kernel's call handler.
func (e *entryIface) fault(md *obj.MethodDecl, args []any) ([]any, error) {
	p := e.proxy
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	call := &pendingCall{method: md.Name, args: args}
	e.pending = call
	defer func() { e.pending = nil }()

	// Touch the entry slot: unmapped, so this page-faults into the
	// kernel, whose per-page handler performs the actual invocation.
	slotVA := e.pageVA + mmu.VAddr(md.Slot()*8)
	machine := p.factory.svc.Machine()
	_ = machine.Touch(p.callerCtx, slotVA, mmu.AccessExec)

	if !call.done {
		return nil, fmt.Errorf("%w: %q.%s", ErrNoDelivery, e.target.Decl().Name, md.Name)
	}
	p.mu.Lock()
	p.calls++
	p.mu.Unlock()
	return call.res, call.err
}

// handleFault is the per-page fault handler: the kernel half of the
// cross-domain call. It maps in the arguments (charged as word
// copies), switches to the target's context, invokes the real method,
// switches back, and copies out the results.
func (e *entryIface) handleFault(f *hw.TrapFrame) bool {
	e.proxy.mu.Lock()
	closed := e.proxy.closed
	e.proxy.mu.Unlock()
	if closed {
		return false
	}
	call := e.pending
	if call == nil {
		// A stray touch of the entry page (not a proxy call): leave
		// the fault unresolved.
		return false
	}
	machine := e.proxy.factory.svc.Machine()
	meter := machine.Meter

	// Map in arguments.
	meter.ChargeN(clock.OpCopyWord, wordsOf(call.args))

	cur := machine.MMU.Current()
	switched := cur != e.proxy.targetCtx
	if switched {
		if err := machine.MMU.Switch(e.proxy.targetCtx); err != nil {
			call.err = fmt.Errorf("proxy: target domain gone: %w", err)
			call.done = true
			return false
		}
	}
	call.res, call.err = e.target.Invoke(call.method, call.args...)
	if switched {
		_ = machine.MMU.Switch(cur)
	}

	// Return values are handled similarly.
	meter.ChargeN(clock.OpCopyWord, wordsOf(call.res))
	call.done = true
	// The entry page stays unmapped (the next call must fault again),
	// so the fault is reported as unresolved; Invoke picks the results
	// out of the call record.
	return false
}

// wordsOf estimates the 8-byte words needed to carry a value list
// across domains.
func wordsOf(vals []any) uint64 {
	var bytes uint64
	for _, v := range vals {
		switch x := v.(type) {
		case nil:
			bytes += 8
		case string:
			bytes += uint64(len(x)) + 8
		case []byte:
			bytes += uint64(len(x)) + 8
		case []any:
			bytes += 8 * uint64(len(x))
		default:
			bytes += 8
		}
	}
	return (bytes + 7) / 8
}

var _ obj.Instance = (*Proxy)(nil)
var _ obj.Invoker = (*entryIface)(nil)
