package obj

import "fmt"

// MethodHandle is a pre-resolved method binding: the bind-once /
// invoke-many pattern the paper's late binding implies. A handle is
// obtained from Invoker.Resolve; its Call dispatches by slot index
// with no per-call name lookup or lock. Handles stay live through
// rebinding — a slot rebound after Resolve is observed by the next
// Call, exactly as a string-keyed Invoke would observe it.
//
// The zero MethodHandle is invalid; Call on it fails.
type MethodHandle struct {
	decl *MethodDecl
	call Method
}

// NewMethodHandle builds a handle from a declaration and a dispatch
// function. It is intended for Invoker implementations (interposers,
// cross-domain proxies) that supply their own dispatch path; dispatch
// receives the arguments exactly as passed to Call, after arity
// validation.
func NewMethodHandle(decl *MethodDecl, dispatch Method) MethodHandle {
	if decl == nil || dispatch == nil {
		return MethodHandle{}
	}
	return MethodHandle{decl: decl, call: dispatch}
}

// Valid reports whether the handle is usable.
func (h MethodHandle) Valid() bool { return h.call != nil }

// Decl returns the type information of the resolved method.
func (h MethodHandle) Decl() *MethodDecl { return h.decl }

// Call invokes the resolved method. It validates argument arity
// before dispatch and result arity after a successful return, using
// the declaration captured at resolve time.
func (h MethodHandle) Call(args ...any) ([]any, error) {
	if h.call == nil {
		return nil, fmt.Errorf("%w: call through zero method handle", ErrUnbound)
	}
	if err := CheckArity(h.decl, args); err != nil {
		return nil, err
	}
	res, err := h.call(args...)
	if err != nil {
		return nil, err
	}
	if err := CheckResults(h.decl, res); err != nil {
		return nil, err
	}
	return res, nil
}
