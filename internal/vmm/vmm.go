// Package vmm is a virtual-memory component: demand-zero paging,
// copy-on-write cloning and page-out to a backing store. In the
// paper's architecture this is exactly the kind of service that does
// NOT live in the nucleus — "all other system components, like thread
// packages, device drivers, and virtual memory implementations reside
// outside this nucleus" — so the whole package is built on nothing but
// the memory service's public primitives: page allocation, sharing,
// protection and per-page fault call-backs.
package vmm

import (
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
)

// Errors.
var (
	ErrNotManaged = errors.New("vmm: page not managed")
	ErrNotMapped  = errors.New("vmm: page not mapped")
)

// Manager implements virtual-memory policies over the memory service.
type Manager struct {
	svc *mem.Service

	mu    sync.Mutex
	pages map[key]*page
	swap  map[uint64][]byte // swap slot -> page contents
	next  uint64            // next swap slot

	demandFaults uint64
	cowFaults    uint64
	swapIns      uint64
	swapOuts     uint64
}

type key struct {
	ctx mmu.ContextID
	vpn uint64
}

type pageState int

const (
	stateUnmapped pageState = iota // demand-zero, not yet touched
	stateMapped                    // resident
	stateCOW                       // resident, shared, write-protected
	stateSwapped                   // contents in swap
)

type page struct {
	state pageState
	perm  mmu.Perm // the permissions the owner asked for
	slot  uint64   // swap slot when stateSwapped
}

// New builds a manager over the memory service.
func New(svc *mem.Service) *Manager {
	return &Manager{
		svc:   svc,
		pages: make(map[key]*page),
		swap:  make(map[uint64][]byte),
	}
}

// Stats reports fault counts by cause.
func (m *Manager) Stats() (demand, cow, swapIn, swapOut uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.demandFaults, m.cowFaults, m.swapIns, m.swapOuts
}

// DemandRegion arranges n demand-zero pages at base in ctx: nothing is
// allocated until the first access faults.
func (m *Manager) DemandRegion(ctx mmu.ContextID, base mmu.VAddr, n int, perm mmu.Perm) error {
	for i := 0; i < n; i++ {
		va := base + mmu.VAddr(i*mmu.PageSize)
		k := key{ctx: ctx, vpn: va.VPN()}
		m.mu.Lock()
		if _, dup := m.pages[k]; dup {
			m.mu.Unlock()
			return fmt.Errorf("vmm: page %#x already managed", uint64(va))
		}
		m.pages[k] = &page{state: stateUnmapped, perm: perm}
		m.mu.Unlock()
		if err := m.svc.RegisterFaultHandler(ctx, va, m.handleFault); err != nil {
			return err
		}
	}
	return nil
}

// handleFault resolves demand-zero, copy-on-write and swap-in faults.
func (m *Manager) handleFault(f *hw.TrapFrame) bool {
	k := key{ctx: f.Ctx, vpn: f.Addr.VPN()}
	m.mu.Lock()
	p, ok := m.pages[k]
	if !ok {
		m.mu.Unlock()
		return false
	}
	state := p.state
	m.mu.Unlock()

	va := f.Addr.PageBase()
	switch state {
	case stateUnmapped:
		if err := m.svc.AllocPage(f.Ctx, va, p.perm); err != nil {
			return false
		}
		m.mu.Lock()
		p.state = stateMapped
		m.demandFaults++
		m.mu.Unlock()
		return true

	case stateCOW:
		if f.Access != mmu.AccessWrite {
			return false // reads of a COW page never fault
		}
		return m.resolveCOW(f.Ctx, va, p)

	case stateSwapped:
		return m.swapIn(f.Ctx, va, p)
	}
	return false
}

// Clone maps the n pages at srcBase in src into dst at dstBase,
// copy-on-write: both sides share frames read-only until one writes.
func (m *Manager) Clone(src mmu.ContextID, srcBase mmu.VAddr, dst mmu.ContextID, dstBase mmu.VAddr, n int) error {
	for i := 0; i < n; i++ {
		srcVA := srcBase + mmu.VAddr(i*mmu.PageSize)
		dstVA := dstBase + mmu.VAddr(i*mmu.PageSize)
		srcKey := key{ctx: src, vpn: srcVA.VPN()}
		dstKey := key{ctx: dst, vpn: dstVA.VPN()}

		m.mu.Lock()
		sp, ok := m.pages[srcKey]
		m.mu.Unlock()
		if !ok || sp.state == stateUnmapped {
			// An untouched demand page clones as a fresh demand page.
			m.mu.Lock()
			perm := mmu.PermRead | mmu.PermWrite
			if ok {
				perm = sp.perm
			}
			if _, dup := m.pages[dstKey]; dup {
				m.mu.Unlock()
				return fmt.Errorf("vmm: clone target %#x already managed", uint64(dstVA))
			}
			m.pages[dstKey] = &page{state: stateUnmapped, perm: perm}
			m.mu.Unlock()
			if err := m.svc.RegisterFaultHandler(dst, dstVA, m.handleFault); err != nil {
				return err
			}
			continue
		}
		if sp.state == stateSwapped {
			return fmt.Errorf("vmm: cannot clone swapped page %#x", uint64(srcVA))
		}

		// Resident: downgrade source to read-only and share.
		if err := m.svc.Protect(src, srcVA, mmu.PermRead); err != nil {
			return err
		}
		if err := m.svc.SharePage(src, srcVA, dst, dstVA, mmu.PermRead); err != nil {
			return err
		}
		m.mu.Lock()
		sp.state = stateCOW
		m.pages[dstKey] = &page{state: stateCOW, perm: sp.perm}
		m.mu.Unlock()
		// The destination page needs its own fault handler; the
		// source already has one from DemandRegion.
		if err := m.svc.RegisterFaultHandler(dst, dstVA, m.handleFault); err != nil {
			return err
		}
	}
	return nil
}

// resolveCOW gives the writing context a private copy (or upgrades in
// place when it is the last sharer).
func (m *Manager) resolveCOW(ctx mmu.ContextID, va mmu.VAddr, p *page) bool {
	machine := m.svc.Machine()
	frame, ok := m.svc.Frame(ctx, va)
	if !ok {
		return false
	}
	m.mu.Lock()
	m.cowFaults++
	m.mu.Unlock()

	if machine.Phys.RefCount(frame) == 1 {
		// Last sharer: upgrade in place.
		if err := m.svc.Protect(ctx, va, p.perm); err != nil {
			return false
		}
		m.mu.Lock()
		p.state = stateMapped
		m.mu.Unlock()
		return true
	}
	// Copy the frame.
	src, err := machine.Phys.FramePayload(frame)
	if err != nil {
		return false
	}
	contents := make([]byte, len(src))
	copy(contents, src)
	if err := m.svc.FreePage(ctx, va); err != nil {
		return false
	}
	if err := m.svc.AllocPage(ctx, va, p.perm); err != nil {
		return false
	}
	newFrame, _ := m.svc.Frame(ctx, va)
	dst, err := machine.Phys.FramePayload(newFrame)
	if err != nil {
		return false
	}
	copy(dst, contents)
	m.mu.Lock()
	p.state = stateMapped
	m.mu.Unlock()
	return true
}

// Evict pages out a resident page: its contents go to the swap store
// and the frame is released. The next access faults and swaps in.
func (m *Manager) Evict(ctx mmu.ContextID, va mmu.VAddr) error {
	k := key{ctx: ctx, vpn: va.VPN()}
	m.mu.Lock()
	p, ok := m.pages[k]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotManaged, uint64(va))
	}
	if p.state != stateMapped {
		return fmt.Errorf("%w: %#x (state %d)", ErrNotMapped, uint64(va), p.state)
	}
	machine := m.svc.Machine()
	frame, ok := m.svc.Frame(ctx, va)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotMapped, uint64(va))
	}
	payload, err := machine.Phys.FramePayload(frame)
	if err != nil {
		return err
	}
	contents := make([]byte, len(payload))
	copy(contents, payload)
	if err := m.svc.FreePage(ctx, va); err != nil {
		return err
	}
	// FreePage drops the fault handler too; re-register for swap-in.
	if err := m.svc.RegisterFaultHandler(ctx, va, m.handleFault); err != nil {
		return err
	}
	m.mu.Lock()
	slot := m.next
	m.next++
	m.swap[slot] = contents
	p.state = stateSwapped
	p.slot = slot
	m.swapOuts++
	m.mu.Unlock()
	return nil
}

// swapIn restores an evicted page on fault.
func (m *Manager) swapIn(ctx mmu.ContextID, va mmu.VAddr, p *page) bool {
	m.mu.Lock()
	contents, ok := m.swap[p.slot]
	m.mu.Unlock()
	if !ok {
		return false
	}
	if err := m.svc.AllocPage(ctx, va, p.perm); err != nil {
		return false
	}
	frame, _ := m.svc.Frame(ctx, va)
	dst, err := m.svc.Machine().Phys.FramePayload(frame)
	if err != nil {
		return false
	}
	copy(dst, contents)
	m.mu.Lock()
	delete(m.swap, p.slot)
	p.state = stateMapped
	m.swapIns++
	m.mu.Unlock()
	return true
}

// Resident reports whether the page at va is currently backed by a
// frame.
func (m *Manager) Resident(ctx mmu.ContextID, va mmu.VAddr) bool {
	_, ok := m.svc.Frame(ctx, va)
	return ok
}
