// Package mem implements the nucleus' memory management service: "the
// management of virtual and physical pages, and MMU contexts ... Pages
// can be allocated exclusively or shared among different protection
// domains. Individual virtual pages can have fault call-backs
// associated with them." The service also provides I/O space
// allocation for device drivers: register regions can be granted
// exclusively (private device registers) or shared (on-device buffers
// visible to several contexts).
//
// The per-page fault call-back is the load-bearing primitive: the
// cross-domain proxy mechanism (package proxy), demand paging and
// copy-on-write (package vmm) are all built on it.
package mem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"paramecium/internal/hw"
	"paramecium/internal/mmu"
)

// FaultHandler resolves a fault on a registered page. Returning true
// retries the faulting access.
type FaultHandler func(f *hw.TrapFrame) bool

// IOMode selects exclusive or shared I/O space allocation.
type IOMode int

// I/O allocation modes.
const (
	IOExclusive IOMode = iota
	IOShared
)

func (m IOMode) String() string {
	if m == IOExclusive {
		return "exclusive"
	}
	return "shared"
}

// Errors.
var (
	ErrPageBusy    = errors.New("mem: page already mapped")
	ErrNoPage      = errors.New("mem: page not managed by this service")
	ErrIOConflict  = errors.New("mem: conflicting I/O space allocation")
	ErrNoIORegion  = errors.New("mem: no such I/O region")
	ErrNoGrant     = errors.New("mem: grant not active")
	ErrHandlerBusy = errors.New("mem: page already has a fault handler")
)

type pageKey struct {
	ctx mmu.ContextID
	vpn uint64
}

// Service is the memory management service.
type Service struct {
	machine *hw.Machine

	// mu guards the page, handler and grant tables. Fault dispatch —
	// the cross-domain invocation hot path — only read-locks it, and
	// the registered call-back runs outside the lock entirely, so any
	// number of faults (including on the same page) dispatch
	// concurrently and handlers may re-enter the service.
	mu       sync.RWMutex
	pages    map[pageKey]uint64 // mapped page -> frame
	handlers map[pageKey]FaultHandler
	grants   map[string][]*IOGrant // region name -> active grants
	arenas   map[mmu.ContextID]*vaArena

	faultsResolved atomic.Uint64
	faultsUnknown  atomic.Uint64
}

// New builds the service and installs it as the machine's page-fault
// trap handler.
func New(machine *hw.Machine) *Service {
	s := &Service{
		machine:  machine,
		pages:    make(map[pageKey]uint64),
		handlers: make(map[pageKey]FaultHandler),
		grants:   make(map[string][]*IOGrant),
		arenas:   make(map[mmu.ContextID]*vaArena),
	}
	machine.SetTrapHandler(hw.TrapPageFault, s.handleFault)
	return s
}

// Machine exposes the underlying machine (used by higher layers).
func (s *Service) Machine() *hw.Machine { return s.machine }

// handleFault dispatches a page fault to the per-page call-back, if
// one is registered.
func (s *Service) handleFault(f *hw.TrapFrame) bool {
	key := pageKey{ctx: f.Ctx, vpn: f.Addr.VPN()}
	s.mu.RLock()
	h := s.handlers[key]
	s.mu.RUnlock()
	if h == nil {
		s.faultsUnknown.Add(1)
		return false
	}
	resolved := h(f)
	if resolved {
		s.faultsResolved.Add(1)
	}
	return resolved
}

// NewDomain creates a fresh protection domain (MMU context).
func (s *Service) NewDomain() mmu.ContextID {
	return s.machine.MMU.NewContext()
}

// DestroyDomain tears down a protection domain: every page it owns is
// unmapped and unreferenced, its fault handlers are dropped, its I/O
// grants are released, and the MMU context is destroyed. Teardown
// initiates from the boot CPU, where the nucleus runs; remote CPUs
// whose TLBs still hold the domain's entries are charged shootdowns by
// the MMU.
func (s *Service) DestroyDomain(ctx mmu.ContextID) error {
	s.mu.Lock()
	var keys []pageKey
	for k := range s.pages {
		if k.ctx == ctx {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		frame := s.pages[k]
		delete(s.pages, k)
		delete(s.handlers, k)
		_ = s.machine.MMU.Unmap(ctx, mmu.VAddr(k.vpn<<mmu.PageShift))
		_, _ = s.machine.Phys.Unref(frame)
	}
	for k := range s.handlers {
		if k.ctx == ctx {
			delete(s.handlers, k)
		}
	}
	for name, gs := range s.grants {
		kept := gs[:0]
		for _, g := range gs {
			if g.Ctx != ctx {
				kept = append(kept, g)
			}
		}
		s.grants[name] = kept
	}
	delete(s.arenas, ctx)
	s.mu.Unlock()
	return s.machine.MMU.DestroyContext(ctx)
}

// ShareBase is where kernel-brokered mappings — shared-memory segments
// and their grantee-side attachments — are placed in a context's
// address space when the caller does not pick addresses itself. It sits
// well below the proxy entry-page arena (0x7000_0000), so brokered
// data mappings and invocation entry slots never collide.
const ShareBase mmu.VAddr = 0x5000_0000

// vaArena is one context's reservation state: a bump pointer plus a
// free list of released ranges keyed by length, so churn (segments and
// attachments granted and revoked over and over) recycles address
// space instead of marching the bump pointer toward the proxy arena.
type vaArena struct {
	next mmu.VAddr
	free map[int][]mmu.VAddr // npages -> released bases
}

// ReserveVA reserves a contiguous range of n pages in ctx's address
// space, starting at ShareBase, and returns its base address. Nothing
// is mapped: reservation only guarantees that no other outstanding
// reservation in the same context overlaps the range. Released ranges
// (ReleaseVA) of the same length are reused exact-fit before the
// arena grows. The arena is forgotten when the domain is destroyed.
func (s *Service) ReserveVA(ctx mmu.ContextID, npages int) mmu.VAddr {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.arenas[ctx]
	if a == nil {
		a = &vaArena{next: ShareBase, free: make(map[int][]mmu.VAddr)}
		s.arenas[ctx] = a
	}
	if bases := a.free[npages]; len(bases) > 0 {
		va := bases[len(bases)-1]
		a.free[npages] = bases[:len(bases)-1]
		return va
	}
	va := a.next
	a.next += mmu.VAddr(npages * mmu.PageSize)
	return va
}

// ReleaseVA returns a range previously obtained from ReserveVA to the
// context's free list for reuse. The caller must have unmapped the
// range first; double releases and foreign ranges are the caller's
// bug, exactly like a heap free.
func (s *Service) ReleaseVA(ctx mmu.ContextID, base mmu.VAddr, npages int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.arenas[ctx]
	if a == nil {
		return // domain already torn down; its whole arena is gone
	}
	a.free[npages] = append(a.free[npages], base)
}

// AllocPage allocates a fresh exclusive page at va in ctx, initiating
// any TLB shootdown from the boot CPU (see AllocPageOn).
func (s *Service) AllocPage(ctx mmu.ContextID, va mmu.VAddr, perm mmu.Perm) error {
	return s.AllocPageOn(mmu.BootCPU, ctx, va, perm)
}

// AllocPageOn is AllocPage initiated from the given CPU, so shootdown
// cycles are charged from the true initiator's perspective. On a NUMA
// machine the fresh frame's home node follows first-touch policy: the
// page is homed on the initiating CPU's node, so the allocator's own
// accesses are local and everyone else's pay the node distance.
func (s *Service) AllocPageOn(initiator mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, perm mmu.Perm) error {
	node := int32(mmu.NoNode)
	if s.machine.Topology() != nil {
		node = s.machine.NodeOfCPU(initiator)
	}
	return s.allocPage(initiator, node, ctx, va, perm)
}

// AllocPageOnNode is AllocPage with an explicit home node: the frame
// is homed on the named NUMA node regardless of who allocates it, the
// policy for services that place producer/consumer buffers
// deliberately. Node -1 (mmu.NoNode) leaves the frame untagged, so
// no access to it is ever charged as remote. The map itself initiates
// from the boot CPU, like AllocPage.
func (s *Service) AllocPageOnNode(node int32, ctx mmu.ContextID, va mmu.VAddr, perm mmu.Perm) error {
	if t := s.machine.Topology(); t != nil && (node < -1 || int(node) >= t.Nodes) {
		return fmt.Errorf("mem: no NUMA node %d (machine has %d)", node, t.Nodes)
	}
	return s.allocPage(mmu.BootCPU, node, ctx, va, perm)
}

// allocPage is the shared allocation path: fresh frame, map from the
// initiator, home-node tag.
func (s *Service) allocPage(initiator mmu.CPUID, node int32, ctx mmu.ContextID, va mmu.VAddr, perm mmu.Perm) error {
	key := pageKey{ctx: ctx, vpn: va.VPN()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, busy := s.pages[key]; busy {
		return fmt.Errorf("%w: ctx %d va %#x", ErrPageBusy, ctx, uint64(va))
	}
	frame, err := s.machine.Phys.AllocFrame()
	if err != nil {
		return err
	}
	if err := s.machine.MMU.MapOn(initiator, ctx, va, frame, perm); err != nil {
		_, _ = s.machine.Phys.Unref(frame)
		return err
	}
	if node != mmu.NoNode {
		_ = s.machine.Phys.SetFrameNode(frame, node)
	}
	s.pages[key] = frame
	return nil
}

// AllocRange allocates n consecutive exclusive pages starting at va.
func (s *Service) AllocRange(ctx mmu.ContextID, va mmu.VAddr, n int, perm mmu.Perm) error {
	for i := 0; i < n; i++ {
		if err := s.AllocPage(ctx, va+mmu.VAddr(i*mmu.PageSize), perm); err != nil {
			return fmt.Errorf("mem: page %d of %d: %w", i, n, err)
		}
	}
	return nil
}

// SharePage maps the page at fromVA in fromCtx into toCtx at toVA with
// the given permissions, sharing the underlying frame, initiating any
// TLB shootdown from the boot CPU (see SharePageOn). "Pages can be
// allocated exclusively or shared among different protection domains."
func (s *Service) SharePage(fromCtx mmu.ContextID, fromVA mmu.VAddr, toCtx mmu.ContextID, toVA mmu.VAddr, perm mmu.Perm) error {
	return s.SharePageOn(mmu.BootCPU, fromCtx, fromVA, toCtx, toVA, perm)
}

// SharePageOn is SharePage initiated from the given CPU, so shootdown
// cycles are charged from the true initiator's perspective.
func (s *Service) SharePageOn(initiator mmu.CPUID, fromCtx mmu.ContextID, fromVA mmu.VAddr, toCtx mmu.ContextID, toVA mmu.VAddr, perm mmu.Perm) error {
	fromKey := pageKey{ctx: fromCtx, vpn: fromVA.VPN()}
	toKey := pageKey{ctx: toCtx, vpn: toVA.VPN()}
	s.mu.Lock()
	defer s.mu.Unlock()
	frame, ok := s.pages[fromKey]
	if !ok {
		return fmt.Errorf("%w: ctx %d va %#x", ErrNoPage, fromCtx, uint64(fromVA))
	}
	if _, busy := s.pages[toKey]; busy {
		return fmt.Errorf("%w: ctx %d va %#x", ErrPageBusy, toCtx, uint64(toVA))
	}
	if err := s.machine.Phys.Ref(frame); err != nil {
		return err
	}
	if err := s.machine.MMU.MapOn(initiator, toCtx, toVA, frame, perm); err != nil {
		_, _ = s.machine.Phys.Unref(frame)
		return err
	}
	s.pages[toKey] = frame
	return nil
}

// FreePage unmaps va from ctx and drops the frame reference, initiating
// any TLB shootdown from the boot CPU (see FreePageOn).
func (s *Service) FreePage(ctx mmu.ContextID, va mmu.VAddr) error {
	return s.FreePageOn(mmu.BootCPU, ctx, va)
}

// FreePageOn is FreePage initiated from the given CPU, so shootdown
// cycles are charged from the true initiator's perspective.
func (s *Service) FreePageOn(initiator mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr) error {
	key := pageKey{ctx: ctx, vpn: va.VPN()}
	s.mu.Lock()
	defer s.mu.Unlock()
	frame, ok := s.pages[key]
	if !ok {
		return fmt.Errorf("%w: ctx %d va %#x", ErrNoPage, ctx, uint64(va))
	}
	delete(s.pages, key)
	delete(s.handlers, key)
	if err := s.machine.MMU.UnmapOn(initiator, ctx, va); err != nil {
		return err
	}
	_, err := s.machine.Phys.Unref(frame)
	return err
}

// Protect changes the permissions of a managed page, initiating any TLB
// shootdown from the boot CPU (see ProtectOn).
func (s *Service) Protect(ctx mmu.ContextID, va mmu.VAddr, perm mmu.Perm) error {
	return s.ProtectOn(mmu.BootCPU, ctx, va, perm)
}

// ProtectOn is Protect initiated from the given CPU, so shootdown
// cycles are charged from the true initiator's perspective.
func (s *Service) ProtectOn(initiator mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, perm mmu.Perm) error {
	key := pageKey{ctx: ctx, vpn: va.VPN()}
	s.mu.Lock()
	_, ok := s.pages[key]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: ctx %d va %#x", ErrNoPage, ctx, uint64(va))
	}
	return s.machine.MMU.ProtectOn(initiator, ctx, va, perm)
}

// Frame reports the frame backing a managed page.
func (s *Service) Frame(ctx mmu.ContextID, va mmu.VAddr) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.pages[pageKey{ctx: ctx, vpn: va.VPN()}]
	return f, ok
}

// RegisterFaultHandler attaches a fault call-back to the page at va in
// ctx. The page need not be mapped — registering a handler on an
// unmapped page is exactly how demand paging and proxies work.
func (s *Service) RegisterFaultHandler(ctx mmu.ContextID, va mmu.VAddr, h FaultHandler) error {
	if h == nil {
		return errors.New("mem: nil fault handler")
	}
	key := pageKey{ctx: ctx, vpn: va.VPN()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[key]; dup {
		return fmt.Errorf("%w: ctx %d va %#x", ErrHandlerBusy, ctx, uint64(va))
	}
	s.handlers[key] = h
	return nil
}

// UnregisterFaultHandler removes a page's fault call-back. It prevents
// new dispatches but does not wait for call-backs already dispatched:
// fault dispatch runs the handler outside the service's lock, so a
// handler may still be executing when Unregister returns. A caller
// that needs quiescence before tearing down handler-owned state must
// track its own in-flight calls — as proxy.Proxy.Close does with its
// in-flight counter.
func (s *Service) UnregisterFaultHandler(ctx mmu.ContextID, va mmu.VAddr) error {
	key := pageKey{ctx: ctx, vpn: va.VPN()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.handlers[key]; !ok {
		return fmt.Errorf("%w: ctx %d va %#x", ErrNoPage, ctx, uint64(va))
	}
	delete(s.handlers, key)
	return nil
}

// FaultStats reports resolved and unresolved fault counts.
func (s *Service) FaultStats() (resolved, unknown uint64) {
	return s.faultsResolved.Load(), s.faultsUnknown.Load()
}

// IOGrant is an active I/O space allocation: the right of a context to
// drive a device register region.
type IOGrant struct {
	Region *hw.IORegion
	Ctx    mmu.ContextID
	Mode   IOMode
	name   string
	active bool
}

// AllocIOSpace grants ctx access to the named register region.
// Exclusive grants conflict with any other grant on the region; shared
// grants coexist with other shared grants.
func (s *Service) AllocIOSpace(ctx mmu.ContextID, regionName string, mode IOMode) (*IOGrant, error) {
	region, ok := s.machine.IORegionByName(regionName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoIORegion, regionName)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	existing := s.grants[regionName]
	for _, g := range existing {
		if mode == IOExclusive || g.Mode == IOExclusive {
			return nil, fmt.Errorf("%w: %q already granted %s to ctx %d",
				ErrIOConflict, regionName, g.Mode, g.Ctx)
		}
	}
	grant := &IOGrant{Region: region, Ctx: ctx, Mode: mode, name: regionName, active: true}
	s.grants[regionName] = append(existing, grant)
	return grant, nil
}

// ReleaseIOSpace returns a grant.
func (s *Service) ReleaseIOSpace(g *IOGrant) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g == nil || !g.active {
		return ErrNoGrant
	}
	gs := s.grants[g.name]
	for i, cur := range gs {
		if cur == g {
			s.grants[g.name] = append(gs[:i], gs[i+1:]...)
			g.active = false
			return nil
		}
	}
	return ErrNoGrant
}

// GrantCount reports the number of active grants on a region.
func (s *Service) GrantCount(regionName string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.grants[regionName])
}
