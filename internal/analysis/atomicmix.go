package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicMix flags struct fields that are accessed through sync/atomic
// in one place and by a plain read or write in another. Mixing the two
// silently downgrades the atomic sites: the plain access races with
// them, and -race only catches it when the interleaving actually
// happens. A field is classified as atomic when its address is passed
// to any sync/atomic function; every other appearance of that field is
// then required to be atomic too.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: find fields whose address flows into a sync/atomic call.
	atomicFields := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if obj := fieldObject(pass.TypesInfo, un.X); obj != nil {
					atomicFields[obj] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other use of those fields must be under sync/atomic.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObject(pass.TypesInfo, sel)
			if obj == nil || !atomicFields[obj] {
				return true
			}
			if underAtomicCall(pass.TypesInfo, stack) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races with those atomic operations", obj.Name())
			return true
		})
	}
	return nil
}

// isAtomicCall reports a call to a function in sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

// fieldObject resolves an expression to the struct field it selects.
func fieldObject(info *types.Info, e ast.Expr) types.Object {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// underAtomicCall reports whether the innermost enclosing call in the
// walk stack is a sync/atomic call taking the node's address.
func underAtomicCall(info *types.Info, stack []ast.Node) bool {
	// stack[len-1] is the selector itself; look for &sel directly inside
	// an atomic call.
	if len(stack) < 3 {
		return false
	}
	un, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}
