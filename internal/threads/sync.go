package threads

import "errors"

// Synchronization errors.
var (
	ErrNotOwner  = errors.New("threads: caller does not hold the mutex")
	ErrQueueSize = errors.New("threads: queue capacity must be positive")
)

// Mutex is a blocking mutual-exclusion lock for simulated threads.
// Unlock hands the lock directly to the oldest waiter, so the lock is
// fair and a woken thread never loses a race for it.
type Mutex struct {
	s       *Scheduler
	held    bool
	owner   *Thread
	waiters []*Thread
}

// NewMutex builds a mutex managed by s.
func NewMutex(s *Scheduler) *Mutex {
	return &Mutex{s: s}
}

// Lock acquires the mutex, blocking the thread if it is held. A
// proto-thread that must block is promoted.
func (m *Mutex) Lock(t *Thread) {
	s := m.s
	s.mu.Lock()
	if !m.held {
		m.held = true
		m.owner = t
		s.mu.Unlock()
		return
	}
	t.blockLocked(func() {
		m.waiters = append(m.waiters, t)
	})
}

// TryLock acquires the mutex without blocking; it reports success.
func (m *Mutex) TryLock(t *Thread) bool {
	s := m.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if m.held {
		return false
	}
	m.held = true
	m.owner = t
	return true
}

// Unlock releases the mutex, handing it to the oldest waiter if any.
func (m *Mutex) Unlock(t *Thread) error {
	s := m.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return m.unlockLocked(t)
}

func (m *Mutex) unlockLocked(t *Thread) error {
	if !m.held || m.owner != t {
		return ErrNotOwner
	}
	if len(m.waiters) > 0 {
		next := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.owner = next // direct handoff; stays held
		m.s.wakeLocked(next)
		return nil
	}
	m.held = false
	m.owner = nil
	return nil
}

// Holder reports the current owner (nil if free). For tests.
func (m *Mutex) Holder() *Thread {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	return m.owner
}

// Cond is a condition variable tied to a Mutex.
type Cond struct {
	m       *Mutex
	waiters []*Thread
}

// NewCond builds a condition variable over m.
func NewCond(m *Mutex) *Cond {
	return &Cond{m: m}
}

// Wait atomically releases the mutex and blocks until the thread is
// signalled, then reacquires the mutex before returning.
func (c *Cond) Wait(t *Thread) error {
	s := c.m.s
	s.mu.Lock()
	if !c.m.held || c.m.owner != t {
		s.mu.Unlock()
		return ErrNotOwner
	}
	if err := c.m.unlockLocked(t); err != nil {
		s.mu.Unlock()
		return err
	}
	t.blockLocked(func() {
		c.waiters = append(c.waiters, t)
	})
	//paralint:ignore lockorder blockLocked parks the thread and releases s.mu before Lock reacquires it
	c.m.Lock(t)
	return nil
}

// Signal wakes the oldest waiter, if any. The caller should hold the
// mutex but this is not enforced (as with sync.Cond).
func (c *Cond) Signal() {
	s := c.m.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(c.waiters) == 0 {
		return
	}
	t := c.waiters[0]
	c.waiters = c.waiters[1:]
	s.wakeLocked(t)
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	s := c.m.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range c.waiters {
		s.wakeLocked(t)
	}
	c.waiters = nil
}

// Semaphore is a counting semaphore.
type Semaphore struct {
	s       *Scheduler
	count   int
	waiters []*Thread
}

// NewSemaphore builds a semaphore with the given initial count.
func NewSemaphore(s *Scheduler, initial int) *Semaphore {
	return &Semaphore{s: s, count: initial}
}

// P (down) decrements the semaphore, blocking while it is zero.
func (sem *Semaphore) P(t *Thread) {
	s := sem.s
	s.mu.Lock()
	if sem.count > 0 {
		sem.count--
		s.mu.Unlock()
		return
	}
	t.blockLocked(func() {
		sem.waiters = append(sem.waiters, t)
	})
}

// V (up) increments the semaphore, waking one waiter if any. The count
// is transferred directly to the woken thread.
func (sem *Semaphore) V() {
	s := sem.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(sem.waiters) > 0 {
		t := sem.waiters[0]
		sem.waiters = sem.waiters[1:]
		s.wakeLocked(t)
		return
	}
	sem.count++
}

// Count reports the current count (waiters imply zero).
func (sem *Semaphore) Count() int {
	sem.s.mu.Lock()
	defer sem.s.mu.Unlock()
	return sem.count
}

// Queue is a bounded blocking FIFO of arbitrary items — the mailbox
// primitive used by the active-message example.
type Queue struct {
	s     *Scheduler
	cap   int
	items []any
	nf    []*Thread // waiting for not-full
	ne    []*Thread // waiting for not-empty
}

// NewQueue builds a queue of the given capacity.
func NewQueue(s *Scheduler, capacity int) (*Queue, error) {
	if capacity <= 0 {
		return nil, ErrQueueSize
	}
	return &Queue{s: s, cap: capacity}, nil
}

// Push appends an item, blocking while the queue is full.
func (q *Queue) Push(t *Thread, item any) {
	s := q.s
	for {
		s.mu.Lock()
		if len(q.items) < q.cap {
			q.items = append(q.items, item)
			if len(q.ne) > 0 {
				w := q.ne[0]
				q.ne = q.ne[1:]
				s.wakeLocked(w)
			}
			s.mu.Unlock()
			return
		}
		t.blockLocked(func() {
			q.nf = append(q.nf, t)
		})
	}
}

// TryPush appends without blocking; it reports success.
func (q *Queue) TryPush(item any) bool {
	s := q.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, item)
	if len(q.ne) > 0 {
		w := q.ne[0]
		q.ne = q.ne[1:]
		s.wakeLocked(w)
	}
	return true
}

// Pop removes the oldest item, blocking while the queue is empty.
func (q *Queue) Pop(t *Thread) any {
	s := q.s
	for {
		s.mu.Lock()
		if len(q.items) > 0 {
			item := q.items[0]
			q.items = q.items[1:]
			if len(q.nf) > 0 {
				w := q.nf[0]
				q.nf = q.nf[1:]
				s.wakeLocked(w)
			}
			s.mu.Unlock()
			return item
		}
		t.blockLocked(func() {
			q.ne = append(q.ne, t)
		})
	}
}

// Len reports the number of queued items.
func (q *Queue) Len() int {
	q.s.mu.Lock()
	defer q.s.mu.Unlock()
	return len(q.items)
}
