package proxy

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

var batchDecl = obj.MustInterfaceDecl("test.batch.v1",
	obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1},
	obj.MethodDecl{Name: "fail", NumIn: 0, NumOut: 0},
)

func newBatchTarget(meter *clock.Meter) (*obj.Object, *atomic.Int64) {
	o := obj.New("batchtarget", meter)
	n := new(atomic.Int64)
	bi, err := o.AddInterface(batchDecl, n)
	if err != nil {
		panic(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) {
		return []any{n.Add(1)}, nil
	}).MustBind("fail", func(...any) ([]any, error) {
		return nil, errors.New("target says no")
	})
	return o, n
}

// TestBatchCrossesOnce: a batch of N calls pays the trap, page-fault
// and context-switch-pair costs once, and the per-entry decode cost N
// times — the amortization that makes vectoring worth it.
func TestBatchCrossesOnce(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	target, n := newBatchTarget(m.Meter)
	p, err := f.New(clientCtx, serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.batch.v1")
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}

	const size = 8
	before := m.Meter.Snapshot()
	b := obj.NewBatch(size)
	for i := 0; i < size; i++ {
		if err := b.Add(inc); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	after := m.Meter.Snapshot()

	if n.Load() != size {
		t.Fatalf("counter = %d, want %d", n.Load(), size)
	}
	for i := 0; i < size; i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if res[0].(int64) != int64(i+1) {
			t.Fatalf("entry %d result = %v, want in-order execution", i, res[0])
		}
	}
	if got := after[clock.OpTrapEnter] - before[clock.OpTrapEnter]; got != 1 {
		t.Fatalf("trap entries = %d, want 1 for the whole batch", got)
	}
	if got := after[clock.OpPageFault] - before[clock.OpPageFault]; got != 1 {
		t.Fatalf("page faults = %d, want 1", got)
	}
	if got := after[clock.OpCtxSwitch] - before[clock.OpCtxSwitch]; got != 2 {
		t.Fatalf("context switches = %d, want 2 (one crossing pair)", got)
	}
	if got := after[clock.OpBatchEntry] - before[clock.OpBatchEntry]; got != size {
		t.Fatalf("batch-entry decodes = %d, want %d", got, size)
	}
	if got := after[clock.OpIndirect] - before[clock.OpIndirect]; got != size {
		t.Fatalf("indirect calls = %d, want %d", got, size)
	}
	if p.Calls() != size {
		t.Fatalf("Calls = %d, want %d (every entry counts)", p.Calls(), size)
	}
}

// TestBatchPartialFailureMidBatch: a failing entry records its own
// error; entries before and after execute normally in one crossing.
func TestBatchPartialFailureMidBatch(t *testing.T) {
	f, svc, m := setup()
	target, n := newBatchTarget(m.Meter)
	p, err := f.New(svc.NewDomain(), svc.NewDomain(), target)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.batch.v1")
	inc, _ := iv.Resolve("inc")
	fail, _ := iv.Resolve("fail")

	before := m.Meter.Snapshot()
	b := obj.NewBatch(3)
	_ = b.Add(inc)
	_ = b.Add(fail)
	_ = b.Add(inc)
	if err := b.Run(); err != nil {
		t.Fatalf("partial failure must not fail the group: %v", err)
	}
	after := m.Meter.Snapshot()

	if n.Load() != 2 {
		t.Fatalf("counter = %d, want 2 (entries after the failure still run)", n.Load())
	}
	if _, err := b.Results(0); err != nil {
		t.Fatalf("entry 0: %v", err)
	}
	if _, err := b.Results(1); err == nil || err.Error() != "target says no" {
		t.Fatalf("entry 1 err = %v, want the target's own error", err)
	}
	if _, err := b.Results(2); err != nil {
		t.Fatalf("entry 2: %v", err)
	}
	if got := after[clock.OpCtxSwitch] - before[clock.OpCtxSwitch]; got != 2 {
		t.Fatalf("context switches = %d, want 2 — the failure must not re-cross", got)
	}
}

// TestBatchIntoDestroyedContext: a batch through a proxy whose target
// context has been destroyed fails every entry with "target domain
// gone", exactly like a single call, and Run surfaces the group
// error.
func TestBatchIntoDestroyedContext(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	target, n := newBatchTarget(m.Meter)
	p, err := f.New(svc.NewDomain(), serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.batch.v1")
	inc, _ := iv.Resolve("inc")
	if err := svc.DestroyDomain(serverCtx); err != nil {
		t.Fatal(err)
	}

	b := obj.NewBatch(4)
	for i := 0; i < 4; i++ {
		_ = b.Add(inc)
	}
	if err := b.Run(); err == nil {
		t.Fatal("batch into destroyed context reported no group error")
	}
	for i := 0; i < 4; i++ {
		if _, err := b.Results(i); err == nil {
			t.Fatalf("entry %d carried no error", i)
		}
	}
	if n.Load() != 0 {
		t.Fatalf("counter = %d, want 0 — no entry may execute in a dead context", n.Load())
	}
	_ = m
}

// TestBatchThroughCondemnedTarget: CloseTarget (the DestroyDomain
// inbound-drain path) condemns the context and closes the proxy; a
// batch issued afterwards fails every entry with ErrClosed — batches
// drain exactly like single calls.
func TestBatchThroughCondemnedTarget(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	target, n := newBatchTarget(m.Meter)
	p, err := f.New(svc.NewDomain(), serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.batch.v1")
	inc, _ := iv.Resolve("inc")

	f.CloseTarget(serverCtx)
	if !p.Closed() {
		t.Fatal("CloseTarget left the proxy open")
	}
	b := obj.NewBatch(2)
	_ = b.Add(inc)
	_ = b.Add(inc)
	if err := b.Run(); !errors.Is(err, ErrClosed) {
		t.Fatalf("group err = %v, want ErrClosed", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.Results(i); !errors.Is(err, ErrClosed) {
			t.Fatalf("entry %d err = %v, want ErrClosed", i, err)
		}
	}
	if n.Load() != 0 {
		t.Fatalf("counter = %d, want 0", n.Load())
	}
	// And no new proxy can open a route into the condemned context.
	if _, err := f.New(svc.NewDomain(), serverCtx, target); err == nil {
		t.Fatal("factory built a proxy onto a condemned context")
	}
	_ = m
}

// TestCloseDuringBatchesQuiesces: Close racing a storm of concurrent
// batches returns only when no call is executing in the target domain;
// batches cut off by the close fail whole (every entry ErrClosed),
// never half-applied after Close returned. Run with -race.
func TestCloseDuringBatchesQuiesces(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	target, n := newBatchTarget(m.Meter)
	p, err := f.New(svc.NewDomain(), serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.batch.v1")
	inc, _ := iv.Resolve("inc")

	const workers = 8
	const size = 4
	var completed atomic.Int64 // entries that reported success
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			b := obj.NewBatch(size)
			for {
				b.Reset()
				for i := 0; i < size; i++ {
					if err := b.Add(inc); err != nil {
						t.Error(err)
						return
					}
				}
				err := b.Run()
				ok := 0
				for i := 0; i < size; i++ {
					res, entryErr := b.Results(i)
					switch {
					case entryErr == nil:
						if res[0].(int64) <= 0 {
							t.Error("successful entry with bad result")
							return
						}
						ok++
					case errors.Is(entryErr, ErrClosed):
					default:
						t.Errorf("entry error = %v", entryErr)
						return
					}
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("group error = %v", err)
					}
					if ok != 0 {
						// A group error from Close means the handler
						// never saw the batch: no entry may have run.
						t.Errorf("closed batch half-applied: %d entries succeeded", ok)
					}
					return
				}
				completed.Add(int64(ok))
			}
		}()
	}
	close(start)
	// Let the storm run, then close underneath it.
	for n.Load() < int64(workers*size) {
		runtime.Gosched()
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Close has returned: no call is executing in the target domain,
	// so the counter is frozen.
	frozen := n.Load()
	wg.Wait()
	if got := n.Load(); got != frozen {
		t.Fatalf("counter moved after Close returned: %d -> %d", frozen, got)
	}
	if completed.Load() == 0 {
		t.Fatal("no batch completed before the close")
	}
	_ = m
}
