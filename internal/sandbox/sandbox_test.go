package sandbox

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"paramecium/internal/clock"
)

// sumProgram adds the first r1 bytes of the segment.
const sumProgram = `
        ; r0 = index, r1 = limit, r2 = sum
        loadi r0, 0
        loadi r1, 64
        loadi r2, 0
        loadi r4, 1
loop:   jge   r0, r1, done
        ld8   r3, [r0+0]
        add   r2, r2, r3
        add   r0, r0, r4
        jmp   loop
done:   halt  r2
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble(sumProgram)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 128)
	for i := 0; i < 64; i++ {
		mem[i] = 1
	}
	var e Exec
	res, err := e.Run(p, mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 64 {
		t.Fatalf("sum = %d, want 64", res.Ret)
	}
	if res.Instrs == 0 {
		t.Fatal("no instructions counted")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1",             // unknown mnemonic
		"loadi r99, 1",         // bad register
		"loadi r1",             // missing immediate
		"jmp nowhere\nhalt r0", // undefined label
		"x: x: halt r0",        // duplicate label
		"ld8 r1, r2",           // bad memory operand
		"1abc: halt r0",        // bad label
		"jeq r0, r1",           // missing target
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestAssembleNumericJumpAndComments(t *testing.T) {
	p, err := Assemble("loadi r0, 5 # five\n jmp 2 ; skip nothing\n halt r0")
	if err != nil {
		t.Fatal(err)
	}
	var e Exec
	res, err := e.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 5 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := MustAssemble(sumProgram)
	img := p.Encode()
	q, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != len(p) {
		t.Fatalf("decoded %d instrs, want %d", len(q), len(p))
	}
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("instr %d differs: %v vs %v", i, p[i], q[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("short")); !errors.Is(err, ErrBadImage) {
		t.Fatalf("short: %v", err)
	}
	img := MustAssemble("halt r0").Encode()
	if _, err := Decode(img[:len(img)-3]); !errors.Is(err, ErrBadImage) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := MustAssemble(sumProgram)
	text := Disassemble(p)
	for _, want := range []string{"loadi", "ld8", "jge", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestArithmeticOps(t *testing.T) {
	src := `
        loadi r1, 12
        loadi r2, 5
        sub   r3, r1, r2   ; 7
        mul   r3, r3, r2   ; 35
        and   r4, r3, r1   ; 35 & 12 = 0
        or    r4, r4, r2   ; 5
        xor   r4, r4, r2   ; 0
        addi  r4, r4, 42   ; 42
        loadi r5, 2
        shl   r4, r4, r5   ; 168
        shr   r4, r4, r5   ; 42
        halt  r4
`
	var e Exec
	res, err := e.Run(MustAssemble(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	src := `
        loadi r1, 0x1122334455667788
        loadi r0, 0
        st64  [r0+0], r1
        ld32  r2, [r0+0]    ; big endian: 0x11223344
        ld16  r3, [r0+0]    ; 0x1122
        ld8   r4, [r0+7]    ; 0x88
        st16  [r0+16], r3
        ld64  r5, [r0+10]
        halt  r2
`
	mem := make([]byte, 32)
	var e Exec
	res, err := e.Run(MustAssemble(src), mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 0x11223344 {
		t.Fatalf("ld32 = %#x", res.Ret)
	}
	if mem[16] != 0x11 || mem[17] != 0x22 {
		t.Fatalf("st16 wrote %x %x", mem[16], mem[17])
	}
}

func TestOutOfFuel(t *testing.T) {
	p := MustAssemble("loop: jmp loop\nhalt r0")
	e := Exec{Fuel: 100}
	_, err := e.Run(p, nil)
	if !errors.Is(err, ErrOutOfFuel) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemFaultUnchecked(t *testing.T) {
	p := MustAssemble("loadi r0, 9999\nld8 r1, [r0+0]\nhalt r1")
	var e Exec
	_, err := e.Run(p, make([]byte, 64))
	if !errors.Is(err, ErrMemFault) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadJumpRuntime(t *testing.T) {
	p := Program{{Op: OpJmp, Imm: 99}}
	var e Exec
	if _, err := e.Run(p, nil); !errors.Is(err, ErrBadJump) {
		t.Fatalf("err = %v", err)
	}
}

func TestIllegalInstruction(t *testing.T) {
	p := Program{{Op: Opcode(200)}}
	var e Exec
	if _, err := e.Run(p, nil); !errors.Is(err, ErrBadInstr) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyAcceptsGoodProgram(t *testing.T) {
	if err := Verify(MustAssemble(sumProgram)); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejects(t *testing.T) {
	cases := []struct {
		name string
		p    Program
		want error
	}{
		{"empty", Program{}, ErrEmptyProgram},
		{"no halt", Program{{Op: OpLoadI, A: 0}}, ErrNoHalt},
		{"bad opcode", Program{{Op: Opcode(99)}, {Op: OpHalt}}, ErrBadInstr},
		{"bad jump", Program{{Op: OpJmp, Imm: 42}, {Op: OpHalt}}, ErrBadJump},
		{"negative jump", Program{{Op: OpJmp, Imm: -1}, {Op: OpHalt}}, ErrBadJump},
		{"sandbox reg", Program{{Op: OpLoadI, A: SandboxReg}, {Op: OpHalt}}, ErrReservedReg},
		{"explicit check", Program{{Op: OpCheck}, {Op: OpHalt}}, ErrReservedReg},
		{"sandbox reg in mem op", Program{{Op: OpLd8, A: 0, B: SandboxReg}, {Op: OpHalt}}, ErrReservedReg},
	}
	for _, c := range cases {
		if err := Verify(c.p); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestRewriteInsertsChecks(t *testing.T) {
	p := MustAssemble(sumProgram)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != len(p)+1 { // one memory op in the program
		t.Fatalf("rewritten length %d, want %d", len(q), len(p)+1)
	}
	checks := 0
	for _, ins := range q {
		if ins.Op == OpCheck {
			checks++
		}
	}
	if checks != 1 {
		t.Fatalf("checks = %d", checks)
	}
}

func TestRewrittenProgramBehavesIdentically(t *testing.T) {
	p := MustAssemble(sumProgram)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	mem1 := make([]byte, 128)
	mem2 := make([]byte, 128)
	for i := 0; i < 64; i++ {
		mem1[i] = byte(i)
		mem2[i] = byte(i)
	}
	var plain Exec
	r1, err := plain.Run(p, mem1)
	if err != nil {
		t.Fatal(err)
	}
	sandboxed := Exec{EnforceSandbox: true}
	r2, err := sandboxed.Run(q, mem2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ret != r2.Ret {
		t.Fatalf("results differ: %d vs %d", r1.Ret, r2.Ret)
	}
	if r2.Checks == 0 {
		t.Fatal("sandboxed run executed no checks")
	}
}

func TestSandboxContainsWildAccess(t *testing.T) {
	// A program reading far out of bounds: the certified (unchecked)
	// run faults; the SFI run is contained by masking and completes.
	src := `
        loadi r0, 100000
        ld8   r1, [r0+0]
        halt  r1
`
	p := MustAssemble(src)
	mem := make([]byte, 64) // power of two
	var plain Exec
	if _, err := plain.Run(p, mem); !errors.Is(err, ErrMemFault) {
		t.Fatalf("unchecked wild access: %v", err)
	}
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	sandboxed := Exec{EnforceSandbox: true}
	if _, err := sandboxed.Run(q, mem); err != nil {
		t.Fatalf("sandboxed wild access not contained: %v", err)
	}
}

func TestEnforceSandboxRejectsUnrewritten(t *testing.T) {
	p := MustAssemble("loadi r0, 0\nld8 r1, [r0+0]\nhalt r1")
	e := Exec{EnforceSandbox: true}
	if _, err := e.Run(p, make([]byte, 64)); !errors.Is(err, ErrNotSandboxed) {
		t.Fatalf("err = %v", err)
	}
}

func TestEnforceSandboxRequiresPow2Segment(t *testing.T) {
	q, err := Rewrite(MustAssemble("loadi r0, 0\nld8 r1, [r0+0]\nhalt r1"))
	if err != nil {
		t.Fatal(err)
	}
	e := Exec{EnforceSandbox: true}
	if _, err := e.Run(q, make([]byte, 100)); !errors.Is(err, ErrMemFault) {
		t.Fatalf("err = %v", err)
	}
}

func TestSFICostIsVisible(t *testing.T) {
	// The whole point: sandboxed execution must charge more cycles
	// than certified execution of the same source program.
	p := MustAssemble(sumProgram)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 128)

	mCert := clock.NewMeter(clock.DefaultCosts())
	certExec := Exec{Meter: mCert}
	if _, err := certExec.Run(p, mem); err != nil {
		t.Fatal(err)
	}
	mSFI := clock.NewMeter(clock.DefaultCosts())
	sfiExec := Exec{Meter: mSFI, EnforceSandbox: true}
	if _, err := sfiExec.Run(q, mem); err != nil {
		t.Fatal(err)
	}
	if mSFI.Clock.Now() <= mCert.Clock.Now() {
		t.Fatalf("SFI run (%d cycles) not costlier than certified (%d)",
			mSFI.Clock.Now(), mCert.Clock.Now())
	}
	if mSFI.Count(clock.OpSFICheck) == 0 {
		t.Fatal("no SFI checks charged")
	}
	if mCert.Count(clock.OpSFICheck) != 0 {
		t.Fatal("certified run charged SFI checks")
	}
}

func TestJumpRelocation(t *testing.T) {
	// A backward loop over memory ops must still terminate correctly
	// after rewriting shifts every instruction index.
	src := `
        loadi r0, 0
        loadi r1, 8
        loadi r2, 0
        loadi r4, 1
loop:   jge   r0, r1, done
        ld8   r3, [r0+0]
        add   r2, r2, r3
        st8   [r0+0], r2
        add   r0, r0, r4
        jmp   loop
done:   halt  r2
`
	p := MustAssemble(src)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]byte, 16)
	for i := range mem {
		mem[i] = 1
	}
	e := Exec{EnforceSandbox: true}
	res, err := e.Run(q, mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 8 {
		t.Fatalf("ret = %d, want 8", res.Ret)
	}
}

// Property: rewriting preserves results for straight-line arithmetic
// programs over random inputs.
func TestRewritePreservationProperty(t *testing.T) {
	src := `
        ld64  r1, [r0+0]
        ld64  r2, [r0+8]
        add   r3, r1, r2
        st64  [r0+16], r3
        halt  r3
`
	p := MustAssemble(src)
	q, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint64) bool {
		mem1 := make([]byte, 32)
		mem2 := make([]byte, 32)
		for i := 0; i < 8; i++ {
			mem1[i] = byte(a >> (56 - 8*i))
			mem1[8+i] = byte(b >> (56 - 8*i))
		}
		copy(mem2, mem1)
		var plain Exec
		r1, err1 := plain.Run(p, mem1)
		sandboxed := Exec{EnforceSandbox: true}
		r2, err2 := sandboxed.Run(q, mem2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Ret == r2.Ret && r1.Ret == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpHalt.String() != "halt" || OpCheck.String() != "check" {
		t.Fatal("opcode names")
	}
	if Opcode(99).String() != "op99" {
		t.Fatal("unknown opcode name")
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"halt r1":        {Op: OpHalt, A: 1},
		"loadi r2, 7":    {Op: OpLoadI, A: 2, Imm: 7},
		"add r1, r2, r3": {Op: OpAdd, A: 1, B: 2, C: 3},
		"ld8 r1, [r2+4]": {Op: OpLd8, A: 1, B: 2, Imm: 4},
		"st8 [r2+4], r1": {Op: OpSt8, A: 1, B: 2, Imm: 4},
		"jmp 3":          {Op: OpJmp, Imm: 3},
		"jeq r1, r2, 5":  {Op: OpJeq, A: 1, B: 2, Imm: 5},
		"check r2+4":     {Op: OpCheck, B: 2, Imm: 4},
		"mov r1, r2":     {Op: OpMov, A: 1, B: 2},
		"addi r1, r2, 9": {Op: OpAddI, A: 1, B: 2, Imm: 9},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestRegressionOverflowingEffectiveAddress(t *testing.T) {
	// Regression: an effective address near 2^64 once wrapped past the
	// bounds check and crashed the interpreter.
	p := Program{
		{Op: OpLoadI, A: 0, Imm: -1}, // r0 = 0xFFFF_FFFF_FFFF_FFFF
		{Op: OpLd64, A: 1, B: 0},     // load at ~2^64
		{Op: OpHalt, A: 1},
	}
	var e Exec
	if _, err := e.Run(p, make([]byte, 64)); !errors.Is(err, ErrMemFault) {
		t.Fatalf("err = %v, want ErrMemFault", err)
	}
	// Same for stores, and for small negative offsets from zero.
	p2 := Program{
		{Op: OpLoadI, A: 0, Imm: 0},
		{Op: OpSt64, A: 1, B: 0, Imm: -8},
		{Op: OpHalt, A: 1},
	}
	if _, err := e.Run(p2, make([]byte, 64)); !errors.Is(err, ErrMemFault) {
		t.Fatalf("negative offset: err = %v, want ErrMemFault", err)
	}
}

func TestRegressionOutOfRangeRegisterFields(t *testing.T) {
	// Regression: register fields beyond NumRegs once indexed past the
	// register file and panicked.
	p := Program{{Op: OpMov, A: 17, B: 3}, {Op: OpHalt}}
	var e Exec
	if _, err := e.Run(p, nil); !errors.Is(err, ErrBadInstr) {
		t.Fatalf("err = %v, want ErrBadInstr", err)
	}
}
