package hw

import (
	"sync/atomic"

	"paramecium/internal/mmu"
)

// CPU is one virtual processor of the simulated machine. Each CPU owns
// a current-context register and a private TLB (both live in the MMU,
// keyed by the CPU's ID) and counts the traps and interrupts delivered
// to it. Memory accesses performed through a CPU charge that CPU's TLB,
// so translation locality is a per-CPU quantity.
type CPU struct {
	id mmu.CPUID
	m  *Machine

	leased atomic.Bool
	traps  atomic.Uint64
	irqs   atomic.Uint64
}

// ID reports the CPU's identifier.
func (c *CPU) ID() mmu.CPUID { return c.id }

// Machine reports the machine the CPU belongs to.
func (c *CPU) Machine() *Machine { return c.m }

// Current reports the CPU's active MMU context, lock-free.
func (c *CPU) Current() mmu.ContextID { return c.m.MMU.CurrentOn(c.id) }

// Switch makes id the CPU's active context.
func (c *CPU) Switch(id mmu.ContextID) error { return c.m.MMU.SwitchOn(c.id, id) }

// Load reads simulated memory through this CPU's MMU state.
func (c *CPU) Load(ctx mmu.ContextID, va mmu.VAddr, buf []byte) error {
	return c.m.accessOn(c.id, ctx, va, buf, mmu.AccessRead)
}

// Store writes simulated memory through this CPU's MMU state.
func (c *CPU) Store(ctx mmu.ContextID, va mmu.VAddr, buf []byte) error {
	return c.m.accessOn(c.id, ctx, va, buf, mmu.AccessWrite)
}

// Touch performs a zero-length access on this CPU; see Machine.Touch.
func (c *CPU) Touch(ctx mmu.ContextID, va mmu.VAddr, access mmu.Access) error {
	return c.TouchTagged(ctx, va, access, 0)
}

// TouchTagged is Touch with a caller-supplied token; see
// Machine.TouchTagged.
func (c *CPU) TouchTagged(ctx mmu.ContextID, va mmu.VAddr, access mmu.Access, token uint64) error {
	_, err := c.m.translateWithFaults(c.id, ctx, va, access, token)
	return err
}

// Stats reports the traps and interrupts delivered to this CPU.
func (c *CPU) Stats() (traps, irqs uint64) {
	return c.traps.Load(), c.irqs.Load()
}

// TLBStats reports this CPU's TLB counters — hits, misses, flushes and
// the cross-CPU shootdowns it received (entries its TLB held that a
// map/unmap/protect on another CPU had to invalidate, one IPI charge
// each). Per-CPU shootdown counts are how a workload sees which CPUs
// were actually paying for page-mapping churn elsewhere in the machine.
func (c *CPU) TLBStats() mmu.CPUTLBStats {
	return c.m.MMU.TLBStatsOn(c.id)
}

// CPULease is a claim on one virtual CPU for the duration of an
// operation. In-flight cross-domain calls acquire a lease so each call
// runs on its own CPU when one is free — populating that CPU's TLB and
// charging its crossings there — and shares a CPU (without disturbing
// its holder's lease) when the machine is oversubscribed.
type CPULease struct {
	cpu   *CPU
	owned bool
}

// CPU returns the leased CPU.
func (l CPULease) CPU() *CPU { return l.cpu }

// ID returns the leased CPU's identifier.
func (l CPULease) ID() mmu.CPUID { return l.cpu.id }

// Release returns the CPU to the free pool. Releasing a shared
// (oversubscribed) lease is a no-op: only the claim that set the lease
// flag clears it.
func (l CPULease) Release() {
	if l.owned {
		l.cpu.leased.Store(false)
	}
}

// AcquireCPU claims a free CPU, preferring an exclusive claim (each
// concurrent caller lands on its own CPU) and falling back to sharing
// when every CPU is busy. Forced shares are counted (SharedLeases):
// sharers interleave on one TLB, so a climbing counter is the signal
// that a workload has outgrown its WithCPUs(n) topology.
func (m *Machine) AcquireCPU() CPULease {
	n := len(m.cpus)
	if n == 1 {
		// A uniprocessor still claims, so oversubscription — concurrent
		// calls forced onto the one CPU — is visible in the counter.
		c := m.cpus[0]
		if c.leased.CompareAndSwap(false, true) {
			return CPULease{cpu: c, owned: true}
		}
		m.sharedLeases.Add(1)
		return CPULease{cpu: c}
	}
	start := int(m.cpuRR.Add(1)-1) % n
	for i := 0; i < n; i++ {
		c := m.cpus[(start+i)%n]
		if c.leased.CompareAndSwap(false, true) {
			return CPULease{cpu: c, owned: true}
		}
	}
	m.sharedLeases.Add(1)
	return CPULease{cpu: m.cpus[start]}
}

// SharedLeases reports how many AcquireCPU claims found every CPU
// busy and fell back to sharing one. A steadily climbing count means
// cross-domain calls are interleaving on shared TLBs — quantifying
// when the machine needs WithCPUs(n) raised. Note that NESTED calls
// count too: a call issued from inside another call's target method
// holds the outer lease, so the inner claim shares even with no
// concurrency — call depth oversubscribes a small topology exactly as
// concurrent callers do.
func (m *Machine) SharedLeases() uint64 { return m.sharedLeases.Load() }

// NumCPUs reports the number of virtual CPUs.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// CPUByID returns one virtual CPU. It panics on an out-of-range ID.
func (m *Machine) CPUByID(id mmu.CPUID) *CPU {
	return m.cpus[id]
}

// CPUs returns the machine's CPUs in ID order. The slice is shared;
// callers must not mutate it.
func (m *Machine) CPUs() []*CPU { return m.cpus }
