// Docs-freshness checks: ARCHITECTURE.md documents the full cost
// model, so adding a clock.Op* constant without a row in its table —
// or unlinking the file from the README — fails the build. CI runs
// this as a dedicated step of the test job.
package paramecium_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// clockOps parses internal/clock/clock.go and returns every exported
// Op* constant, straight from the source of truth.
func clockOps(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/clock/clock.go", nil, 0)
	if err != nil {
		t.Fatalf("parse internal/clock/clock.go: %v", err)
	}
	var ops []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if strings.HasPrefix(name.Name, "Op") && name.IsExported() {
					ops = append(ops, name.Name)
				}
			}
		}
	}
	if len(ops) == 0 {
		t.Fatal("found no Op* constants in internal/clock/clock.go")
	}
	return ops
}

// TestArchitectureCostTableFresh fails when ARCHITECTURE.md's cost
// table omits any clock.Op* constant present in internal/clock: the
// table is documented as exhaustive, and this is what keeps it so.
func TestArchitectureCostTableFresh(t *testing.T) {
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("ARCHITECTURE.md must exist at the repository root: %v", err)
	}
	var missing []string
	for _, op := range clockOps(t) {
		if !strings.Contains(string(arch), "`"+op+"`") {
			missing = append(missing, op)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("ARCHITECTURE.md cost table omits %v — add a row (cycles + who pays) for each new clock.Op*", missing)
	}
}

// probeKinds parses internal/probe/probe.go and returns every exported
// Kind* constant, straight from the source of truth.
func probeKinds(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/probe/probe.go", nil, 0)
	if err != nil {
		t.Fatalf("parse internal/probe/probe.go: %v", err)
	}
	var kinds []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if strings.HasPrefix(name.Name, "Kind") && name.IsExported() {
					kinds = append(kinds, name.Name)
				}
			}
		}
	}
	if len(kinds) == 0 {
		t.Fatal("found no Kind* constants in internal/probe/probe.go")
	}
	return kinds
}

// TestArchitectureObservabilityFresh fails when ARCHITECTURE.md's
// event-schema table omits any probe.Kind* constant: the flight
// recorder's schema is documented as exhaustive, and this keeps it so.
func TestArchitectureObservabilityFresh(t *testing.T) {
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("ARCHITECTURE.md must exist at the repository root: %v", err)
	}
	var missing []string
	for _, kind := range probeKinds(t) {
		if !strings.Contains(string(arch), "`"+kind+"`") {
			missing = append(missing, kind)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("ARCHITECTURE.md event-schema table omits %v — add a row (event + A/B operands) for each new probe.Kind*", missing)
	}
}

// TestArchitectureLinked pins the docs topology: the README and the
// root package doc both point readers at ARCHITECTURE.md.
func TestArchitectureLinked(t *testing.T) {
	for _, f := range []string{"README.md", "doc.go"} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "ARCHITECTURE.md") {
			t.Fatalf("%s does not link ARCHITECTURE.md", f)
		}
	}
}
