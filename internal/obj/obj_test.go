package obj

import (
	"errors"
	"testing"

	"paramecium/internal/clock"
)

var counterDecl = MustInterfaceDecl("test.counter.v1",
	MethodDecl{Name: "inc", NumIn: 1, NumOut: 1},
	MethodDecl{Name: "get", NumIn: 0, NumOut: 1},
)

// newCounter builds a counter object exporting test.counter.v1.
func newCounter(meter *clock.Meter) *Object {
	o := New("counter", meter)
	state := new(int)
	bi, err := o.AddInterface(counterDecl, state)
	if err != nil {
		panic(err)
	}
	bi.MustBind("inc", func(args ...any) ([]any, error) {
		*state += args[0].(int)
		return []any{*state}, nil
	}).MustBind("get", func(args ...any) ([]any, error) {
		return []any{*state}, nil
	})
	return o
}

func TestInterfaceDeclValidation(t *testing.T) {
	if _, err := NewInterfaceDecl(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewInterfaceDecl("x", MethodDecl{Name: ""}); err == nil {
		t.Fatal("unnamed method accepted")
	}
	if _, err := NewInterfaceDecl("x", MethodDecl{Name: "a"}, MethodDecl{Name: "a"}); err == nil {
		t.Fatal("duplicate method accepted")
	}
	d, err := NewInterfaceDecl("x", MethodDecl{Name: "a", NumIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := d.Method("a"); !ok || m.NumIn != 2 {
		t.Fatal("Method lookup failed")
	}
	if _, ok := d.Method("b"); ok {
		t.Fatal("phantom method found")
	}
}

func TestMustInterfaceDeclPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustInterfaceDecl("")
}

func TestMethodNamesSorted(t *testing.T) {
	d := MustInterfaceDecl("x", MethodDecl{Name: "zz"}, MethodDecl{Name: "aa"})
	names := d.MethodNames()
	if len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Fatalf("names = %v", names)
	}
}

func TestObjectInvoke(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	o := newCounter(meter)
	iv, ok := o.Iface("test.counter.v1")
	if !ok {
		t.Fatal("interface missing")
	}
	res, err := iv.Invoke("inc", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int) != 5 {
		t.Fatalf("inc = %v", res)
	}
	res, err = iv.Invoke("get")
	if err != nil || res[0].(int) != 5 {
		t.Fatalf("get = %v, %v", res, err)
	}
	if meter.Count(clock.OpIndirect) != 2 {
		t.Fatalf("indirect calls charged = %d", meter.Count(clock.OpIndirect))
	}
	if iv.State() == nil {
		t.Fatal("state pointer lost")
	}
}

func TestInvokeErrors(t *testing.T) {
	o := newCounter(nil)
	iv, _ := o.Iface("test.counter.v1")
	if _, err := iv.Invoke("nonexistent"); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("no method: %v", err)
	}
	if _, err := iv.Invoke("inc"); !errors.Is(err, ErrArity) {
		t.Fatalf("bad arity: %v", err)
	}
	if _, err := iv.Invoke("inc", 1, 2); !errors.Is(err, ErrArity) {
		t.Fatalf("bad arity: %v", err)
	}
}

func TestUnboundMethod(t *testing.T) {
	o := New("partial", nil)
	bi, err := o.AddInterface(counterDecl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.FullyBound() {
		t.Fatal("object with unbound methods reports FullyBound")
	}
	if _, err := bi.Invoke("inc", 1); !errors.Is(err, ErrUnbound) {
		t.Fatalf("unbound: %v", err)
	}
}

func TestBindValidation(t *testing.T) {
	o := New("x", nil)
	bi, _ := o.AddInterface(counterDecl, nil)
	if err := bi.Bind("nope", func(...any) ([]any, error) { return nil, nil }); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("bind undeclared: %v", err)
	}
	if err := bi.Bind("inc", nil); err == nil {
		t.Fatal("nil implementation accepted")
	}
}

func TestDuplicateInterface(t *testing.T) {
	o := New("x", nil)
	if _, err := o.AddInterface(counterDecl, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AddInterface(counterDecl, nil); err == nil {
		t.Fatal("duplicate interface accepted")
	}
}

func TestRemoveInterface(t *testing.T) {
	o := newCounter(nil)
	if err := o.RemoveInterface("test.counter.v1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Iface("test.counter.v1"); ok {
		t.Fatal("interface still present")
	}
	if err := o.RemoveInterface("test.counter.v1"); !errors.Is(err, ErrNoInterface) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestInterfaceEvolution(t *testing.T) {
	// Adding a measurement interface must not disturb the original.
	o := newCounter(nil)
	measureDecl := MustInterfaceDecl("test.measure.v1", MethodDecl{Name: "stats", NumIn: 0, NumOut: 1})
	bi, err := o.AddInterface(measureDecl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("stats", func(...any) ([]any, error) { return []any{"ok"}, nil })
	names := o.InterfaceNames()
	if len(names) != 2 || names[0] != "test.counter.v1" || names[1] != "test.measure.v1" {
		t.Fatalf("names = %v", names)
	}
	iv, _ := o.Iface("test.counter.v1")
	if _, err := iv.Invoke("inc", 1); err != nil {
		t.Fatalf("original interface broken: %v", err)
	}
}

func TestDelegation(t *testing.T) {
	backend := newCounter(nil)
	front := New("front", nil)
	if _, err := front.AddInterface(counterDecl, nil); err != nil {
		t.Fatal(err)
	}
	// Bind "get" locally, delegate the rest ("inc") to backend.
	bi, _ := front.Bound("test.counter.v1")
	localGets := 0
	bi.MustBind("get", func(...any) ([]any, error) {
		localGets++
		biv, _ := backend.Iface("test.counter.v1")
		return biv.Invoke("get")
	})
	if err := front.Delegate("test.counter.v1", backend); err != nil {
		t.Fatal(err)
	}
	if !front.FullyBound() {
		t.Fatal("delegation left methods unbound")
	}
	iv, _ := front.Iface("test.counter.v1")
	if _, err := iv.Invoke("inc", 7); err != nil {
		t.Fatal(err)
	}
	res, err := iv.Invoke("get")
	if err != nil || res[0].(int) != 7 {
		t.Fatalf("get via front = %v, %v", res, err)
	}
	if localGets != 1 {
		t.Fatal("locally bound method was overridden by delegation")
	}
}

func TestDelegateErrors(t *testing.T) {
	a, b := New("a", nil), New("b", nil)
	if err := a.Delegate("missing", b); !errors.Is(err, ErrNoInterface) {
		t.Fatalf("delegate missing iface: %v", err)
	}
	if _, err := a.AddInterface(counterDecl, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Delegate("test.counter.v1", b); !errors.Is(err, ErrNoInterface) {
		t.Fatalf("delegate to object without iface: %v", err)
	}
}

func TestOrigin(t *testing.T) {
	if New("x", nil).Origin() != RunTime {
		t.Fatal("New should be run-time")
	}
	if NewStatic("x", nil).Origin() != LinkTime {
		t.Fatal("NewStatic should be link-time")
	}
	if LinkTime.String() != "link-time" || RunTime.String() != "run-time" {
		t.Fatal("origin strings")
	}
}

func TestCompositionChildren(t *testing.T) {
	c := NewComposition("kernel", nil)
	irq := newCounter(nil)
	if err := c.AddChild("interrupts", irq); err != nil {
		t.Fatal(err)
	}
	if err := c.AddChild("interrupts", irq); err == nil {
		t.Fatal("duplicate role accepted")
	}
	if err := c.AddChild("x", nil); err == nil {
		t.Fatal("nil child accepted")
	}
	got, ok := c.Child("interrupts")
	if !ok || got != Instance(irq) {
		t.Fatal("Child lookup failed")
	}
	if _, ok := c.Child("nope"); ok {
		t.Fatal("phantom child")
	}
	if roles := c.Roles(); len(roles) != 1 || roles[0] != "interrupts" {
		t.Fatalf("roles = %v", roles)
	}
}

func TestCompositionReplaceChild(t *testing.T) {
	c := NewComposition("kernel", nil)
	first := newCounter(nil)
	second := newCounter(nil)
	if _, err := c.ReplaceChild("r", second); err == nil {
		t.Fatal("replace of missing role accepted")
	}
	if err := c.AddChild("r", first); err != nil {
		t.Fatal(err)
	}
	prev, err := c.ReplaceChild("r", second)
	if err != nil || prev != Instance(first) {
		t.Fatalf("ReplaceChild = %v, %v", prev, err)
	}
	got, _ := c.Child("r")
	if got != Instance(second) {
		t.Fatal("child not replaced")
	}
	if _, err := c.ReplaceChild("r", nil); err == nil {
		t.Fatal("nil replacement accepted")
	}
}

func TestCompositionRemoveChild(t *testing.T) {
	c := NewComposition("k", nil)
	if err := c.RemoveChild("r"); err == nil {
		t.Fatal("remove of missing role accepted")
	}
	if err := c.AddChild("r", newCounter(nil)); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveChild("r"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Child("r"); ok {
		t.Fatal("child still present")
	}
}

func TestCompositionExportChildInterface(t *testing.T) {
	c := NewComposition("facade", nil)
	inner := newCounter(nil)
	if err := c.AddChild("ctr", inner); err != nil {
		t.Fatal(err)
	}
	if err := c.ExportChildInterface("nope", "test.counter.v1"); err == nil {
		t.Fatal("export from missing child accepted")
	}
	if err := c.ExportChildInterface("ctr", "missing"); !errors.Is(err, ErrNoInterface) {
		t.Fatalf("export missing iface: %v", err)
	}
	if err := c.ExportChildInterface("ctr", "test.counter.v1"); err != nil {
		t.Fatal(err)
	}
	iv, ok := c.Iface("test.counter.v1")
	if !ok {
		t.Fatal("exported interface missing")
	}
	if _, err := iv.Invoke("inc", 3); err != nil {
		t.Fatal(err)
	}
	// The call must have reached the child.
	innerIv, _ := inner.Iface("test.counter.v1")
	res, _ := innerIv.Invoke("get")
	if res[0].(int) != 3 {
		t.Fatal("call did not reach child")
	}
}

func TestRecursiveComposition(t *testing.T) {
	outer := NewComposition("system", nil)
	innerComp := NewComposition("kernel", nil)
	if err := innerComp.AddChild("ctr", newCounter(nil)); err != nil {
		t.Fatal(err)
	}
	if err := outer.AddChild("kernel", innerComp); err != nil {
		t.Fatal(err)
	}
	k, ok := outer.Child("kernel")
	if !ok {
		t.Fatal("nested composition lost")
	}
	kc, ok := k.(*Composition)
	if !ok {
		t.Fatal("child is not a composition")
	}
	if _, ok := kc.Child("ctr"); !ok {
		t.Fatal("grandchild lost")
	}
}

func TestStaticComposition(t *testing.T) {
	c := NewStaticComposition("nucleus", nil)
	if c.Origin() != LinkTime {
		t.Fatal("static composition is not link-time")
	}
}

func TestInterposerForwardsByDefault(t *testing.T) {
	target := newCounter(nil)
	ip := NewInterposer("monitor", target)
	iv, ok := ip.Iface("test.counter.v1")
	if !ok {
		t.Fatal("interposer hides target interface")
	}
	if _, err := iv.Invoke("inc", 2); err != nil {
		t.Fatal(err)
	}
	res, err := iv.Invoke("get")
	if err != nil || res[0].(int) != 2 {
		t.Fatalf("forwarded get = %v, %v", res, err)
	}
	if ip.Target() != Instance(target) {
		t.Fatal("Target() wrong")
	}
}

func TestInterposerWrap(t *testing.T) {
	target := newCounter(nil)
	ip := NewInterposer("doubler", target)
	if err := ip.Wrap("test.counter.v1", "inc", func(next Method, args ...any) ([]any, error) {
		return next(args[0].(int) * 2) // double every increment
	}); err != nil {
		t.Fatal(err)
	}
	iv, _ := ip.Iface("test.counter.v1")
	if _, err := iv.Invoke("inc", 3); err != nil {
		t.Fatal(err)
	}
	res, _ := iv.Invoke("get")
	if res[0].(int) != 6 {
		t.Fatalf("wrapped inc: get = %v", res)
	}
}

func TestInterposerWrapSuppresses(t *testing.T) {
	target := newCounter(nil)
	ip := NewInterposer("firewall", target)
	if err := ip.Wrap("test.counter.v1", "inc", func(next Method, args ...any) ([]any, error) {
		return nil, errors.New("denied")
	}); err != nil {
		t.Fatal(err)
	}
	iv, _ := ip.Iface("test.counter.v1")
	if _, err := iv.Invoke("inc", 3); err == nil {
		t.Fatal("suppressed call went through")
	}
	res, _ := iv.Invoke("get")
	if res[0].(int) != 0 {
		t.Fatal("target state changed despite suppression")
	}
}

func TestInterposerWrapValidation(t *testing.T) {
	ip := NewInterposer("m", newCounter(nil))
	if err := ip.Wrap("missing", "inc", nil); !errors.Is(err, ErrNoInterface) {
		t.Fatalf("wrap missing iface: %v", err)
	}
	if err := ip.Wrap("test.counter.v1", "missing", nil); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("wrap missing method: %v", err)
	}
}

func TestInterposerExtraInterface(t *testing.T) {
	target := newCounter(nil)
	ip := NewInterposer("measured", target)

	extraObj := New("stats", nil)
	statsDecl := MustInterfaceDecl("test.stats.v1", MethodDecl{Name: "count", NumIn: 0, NumOut: 1})
	bi, _ := extraObj.AddInterface(statsDecl, nil)
	bi.MustBind("count", func(...any) ([]any, error) { return []any{42}, nil })
	extraIv, _ := extraObj.Iface("test.stats.v1")

	if err := ip.AddExtraInterface(extraIv); err != nil {
		t.Fatal(err)
	}
	if err := ip.AddExtraInterface(extraIv); err == nil {
		t.Fatal("duplicate extra accepted")
	}
	names := ip.InterfaceNames()
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	iv, ok := ip.Iface("test.stats.v1")
	if !ok {
		t.Fatal("extra interface missing")
	}
	res, err := iv.Invoke("count")
	if err != nil || res[0].(int) != 42 {
		t.Fatalf("extra invoke = %v, %v", res, err)
	}
	// Cannot add an extra that shadows a target interface.
	ctrIv, _ := target.Iface("test.counter.v1")
	if err := ip.AddExtraInterface(ctrIv); err == nil {
		t.Fatal("shadowing extra accepted")
	}
}

func TestInterposerChaining(t *testing.T) {
	// Interposers stack: monitor(doubler(counter)).
	target := newCounter(nil)
	doubler := NewInterposer("doubler", target)
	if err := doubler.Wrap("test.counter.v1", "inc", func(next Method, args ...any) ([]any, error) {
		return next(args[0].(int) * 2)
	}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	monitor := NewInterposer("monitor", doubler)
	if err := monitor.Wrap("test.counter.v1", "inc", func(next Method, args ...any) ([]any, error) {
		calls++
		return next(args...)
	}); err != nil {
		t.Fatal(err)
	}
	iv, _ := monitor.Iface("test.counter.v1")
	if _, err := iv.Invoke("inc", 5); err != nil {
		t.Fatal(err)
	}
	res, _ := iv.Invoke("get")
	if res[0].(int) != 10 {
		t.Fatalf("chained result = %v", res)
	}
	if calls != 1 {
		t.Fatalf("monitor saw %d calls", calls)
	}
}

func TestInterposerMissingIface(t *testing.T) {
	ip := NewInterposer("m", newCounter(nil))
	if _, ok := ip.Iface("missing"); ok {
		t.Fatal("phantom interface")
	}
}

func TestCheckArityNegativeMeansVariadic(t *testing.T) {
	d := &MethodDecl{Name: "v", NumIn: -1}
	if err := CheckArity(d, []any{1, 2, 3}); err != nil {
		t.Fatalf("variadic decl rejected args: %v", err)
	}
	if err := CheckArity(d, nil); err != nil {
		t.Fatalf("variadic decl rejected empty: %v", err)
	}
}
