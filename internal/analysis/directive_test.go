package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedDirective checks that a //paralint:ignore directive
// without a reason suppresses nothing and is itself reported.
func TestMalformedDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

type Meter struct{}

func (m *Meter) Charge(op int) {}

func move(dst, src []byte) {
	//paralint:ignore chargepath
	copy(dst, src)
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := sharedLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(ChargePath, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want malformed-directive and unsuppressed-copy findings, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "malformed") {
		t.Errorf("first finding should flag the malformed directive, got %s", diags[0])
	}
	if !strings.Contains(diags[1].Message, "copy of payload bytes") {
		t.Errorf("second finding should flag the copy as unsuppressed, got %s", diags[1])
	}
}

// TestSuppressionRequiresMatchingAnalyzer checks that a directive for
// one analyzer does not silence another.
func TestSuppressionRequiresMatchingAnalyzer(t *testing.T) {
	dir := t.TempDir()
	src := `package cross

type Meter struct{}

func (m *Meter) Charge(op int) {}

func move(dst, src []byte) {
	//paralint:ignore lockorder wrong analyzer named here
	copy(dst, src)
}
`
	if err := os.WriteFile(filepath.Join(dir, "cross.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := sharedLoader(t).LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(ChargePath, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "copy of payload bytes") {
		t.Fatalf("a lockorder directive must not silence chargepath, got %v", diags)
	}
}
