package threads

import (
	"sync"

	"paramecium/internal/clock"
)

// Scheduler multiplexes simulated threads over the (single) simulated
// processor, round-robin. It also owns the sleep queue and charges all
// thread-related costs.
type Scheduler struct {
	meter *clock.Meter

	mu       sync.Mutex
	nextID   uint64
	runq     []*Thread
	sleepers []sleeper
	live     int // spawned or promoted, not yet done
}

type sleeper struct {
	t        *Thread
	deadline uint64
}

// NewScheduler builds a scheduler charging against meter.
func NewScheduler(meter *clock.Meter) *Scheduler {
	return &Scheduler{meter: meter}
}

// Meter exposes the scheduler's meter (used by the event service).
func (s *Scheduler) Meter() *clock.Meter { return s.meter }

func (s *Scheduler) newThread(name string, proto bool) *Thread {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.live++
	s.mu.Unlock()
	return &Thread{
		id:        id,
		name:      name,
		sched:     s,
		proto:     proto,
		resume:    make(chan struct{}, 1),
		parked:    make(chan struct{}, 1),
		protoDone: make(chan bool, 1),
		done:      make(chan struct{}),
	}
}

// Spawn creates a real thread that will run fn when scheduled. The
// full thread-creation cost is charged immediately.
func (s *Scheduler) Spawn(name string, fn func(*Thread)) *Thread {
	s.meter.Charge(clock.OpThreadCreate)
	t := s.newThread(name, false)
	go func() {
		<-t.resume
		t.setState(StateRunning)
		fn(t)
		s.finish(t)
	}()
	s.mu.Lock()
	t.setState(StateReady)
	s.readyLocked(t)
	s.mu.Unlock()
	return t
}

// PopUpEager turns an event into a thread the expensive way: a full
// thread is created and scheduled for every event (the baseline the
// proto-thread optimization is measured against).
func (s *Scheduler) PopUpEager(name string, fn func(*Thread)) *Thread {
	return s.Spawn(name, fn)
}

// PopUpProto runs fn as a proto-thread: it executes immediately on the
// caller's (interrupt) context for the cheap proto-thread cost. If fn
// runs to completion without blocking, no thread is ever created. The
// moment fn blocks, yields or sleeps, the proto-thread is promoted to
// a real thread (promotion + creation costs are charged) and PopUpProto
// returns while the new thread continues under the scheduler.
//
// The returned thread handle reports, via Promoted, which path was
// taken; ran is true when fn completed inline.
func (s *Scheduler) PopUpProto(name string, fn func(*Thread)) (t *Thread, ran bool) {
	s.meter.Charge(clock.OpProtoThread)
	t = s.newThread(name, true)
	t.setState(StateRunning)
	go func() {
		fn(t)
		s.finish(t)
	}()
	completed := <-t.protoDone
	return t, completed
}

// chargePromotion accounts for turning a proto-thread into a real
// thread. Callers hold s.mu.
func (s *Scheduler) chargePromotion() {
	s.meter.Charge(clock.OpPromote)
	s.meter.Charge(clock.OpThreadCreate)
}

// finish retires a thread.
func (s *Scheduler) finish(t *Thread) {
	s.mu.Lock()
	t.setState(StateDone)
	s.live--
	s.mu.Unlock()
	close(t.done)
	t.stop(true)
}

// readyLocked appends t to the ready queue; the caller holds s.mu.
func (s *Scheduler) readyLocked(t *Thread) {
	s.runq = append(s.runq, t)
}

// Wake moves a blocked thread to the ready queue. Synchronization
// primitives call it with the scheduler lock held via wakeLocked; the
// exported form is for event sources living outside this package.
func (s *Scheduler) Wake(t *Thread) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wakeLocked(t)
}

func (s *Scheduler) wakeLocked(t *Thread) {
	t.setState(StateReady)
	s.readyLocked(t)
}

// RunUntilIdle dispatches ready threads until none remain. When the
// ready queue drains but threads are sleeping on the virtual clock,
// the clock is advanced to the earliest deadline and the sleepers are
// woken. It returns the number of dispatches performed.
func (s *Scheduler) RunUntilIdle() int {
	dispatches := 0
	for {
		t := s.next()
		if t == nil {
			return dispatches
		}
		dispatches++
		s.meter.Charge(clock.OpSchedule)
		t.resume <- struct{}{}
		<-t.parked // until the thread stops running again
	}
}

// next pops the next ready thread, advancing virtual time over sleep
// gaps when necessary. It returns nil when the system is idle.
func (s *Scheduler) next() *Thread {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.runq) > 0 {
			t := s.runq[0]
			s.runq = s.runq[1:]
			return t
		}
		if len(s.sleepers) == 0 {
			return nil
		}
		// Advance the clock to the earliest deadline and wake the due.
		earliest := s.sleepers[0].deadline
		for _, sl := range s.sleepers[1:] {
			if sl.deadline < earliest {
				earliest = sl.deadline
			}
		}
		now := s.meter.Clock.Now()
		if earliest > now {
			s.meter.Clock.Advance(earliest - now)
		}
		now = s.meter.Clock.Now()
		var rest []sleeper
		for _, sl := range s.sleepers {
			if sl.deadline <= now {
				s.wakeLocked(sl.t)
			} else {
				rest = append(rest, sl)
			}
		}
		s.sleepers = rest
	}
}

// ReadyCount reports the number of threads waiting to run.
func (s *Scheduler) ReadyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runq)
}

// LiveCount reports spawned/promoted threads that have not finished.
func (s *Scheduler) LiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}
