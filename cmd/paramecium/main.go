// Command paramecium boots a complete simulated system and runs a
// demonstration scenario: NIC + drivers + shared protocol stack in the
// kernel, a certified packet filter loaded into the kernel protection
// domain, a sandboxed and a user-level variant alongside it, and a
// monitoring interposer on the shared stack. It prints what happened
// and the cycle bill for each configuration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"paramecium/internal/cert"
	"paramecium/internal/clock"
	"paramecium/internal/core"
	"paramecium/internal/drivers"
	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/netstack"
	"paramecium/internal/repoz"
	"paramecium/internal/sandbox"
	"paramecium/internal/trace"
)

func main() {
	packets := flag.Int("packets", 200, "packets to inject per placement")
	flag.Parse()
	if *packets < 1 {
		log.SetFlags(0)
		log.Fatal("paramecium: -packets must be at least 1")
	}
	if err := run(*packets); err != nil {
		log.SetFlags(0)
		log.Fatalf("paramecium: %v", err)
	}
}

func run(packets int) error {
	fmt.Println("paramecium: booting nucleus ...")
	auth := cert.NewAuthority(2025)
	k, err := core.Boot(core.Config{AuthorityKey: auth.PublicKey()})
	if err != nil {
		return err
	}
	admin := cert.NewKeyCertifier("sysadmin", cert.GenerateKey(2026),
		cert.PrivKernelResident|cert.PrivDeviceAccess|cert.PrivSharedService)
	if err := k.Validator.AddDelegation(auth.Delegate("sysadmin", admin.Key().Pub,
		cert.PrivKernelResident|cert.PrivDeviceAccess|cert.PrivSharedService)); err != nil {
		return err
	}

	// Devices and drivers.
	nic := hw.NewNIC("net0", 4)
	cons := hw.NewConsole("cons0", 2)
	if err := k.Machine.AttachDevice(nic); err != nil {
		return err
	}
	if err := k.Machine.AttachDevice(cons); err != nil {
		return err
	}
	netdrv, err := drivers.NewNetDriver("netdrv", nic, k.Mem, k.Events, drivers.NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOShared,
	})
	if err != nil {
		return err
	}
	if err := k.Register("/devices/net0", netdrv, mmu.KernelContext); err != nil {
		return err
	}
	consdrv, err := drivers.NewConsoleDriver("consdrv", cons, k.Mem, mmu.KernelContext)
	if err != nil {
		return err
	}
	if err := k.Register("/devices/console", consdrv, mmu.KernelContext); err != nil {
		return err
	}
	if _, err := consdrv.Write("paramecium console online\n"); err != nil {
		return err
	}

	// Shared protocol stack over the driver.
	drvIv, err := k.RootView.BindInterface("/devices/net0", drivers.NetDevIface)
	if err != nil {
		return err
	}
	stack, err := netstack.NewStack("ipstack", k.Meter, drvIv,
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.IP{10, 0, 0, 1})
	if err != nil {
		return err
	}
	if err := k.Register("/shared/network", stack, mmu.KernelContext); err != nil {
		return err
	}

	// A monitoring agent interposed on the shared stack.
	tracer, err := trace.NewTracer(stack, k.Meter)
	if err != nil {
		return err
	}
	tracer.Agent().SetMeter(k.Meter)
	if _, err := k.Space.Replace("/shared/network", tracer.Agent()); err != nil {
		return err
	}
	fmt.Println("paramecium: interposed monitoring agent on /shared/network")

	// The downloadable filter component.
	prog := sandbox.MustAssemble(netstack.PortFilterProgram(7))
	img := &repoz.Image{Name: "portfilter", Kind: repoz.KindPVM, Data: prog.Encode()}
	c, err := admin.Certify("portfilter", img.Data, cert.PrivKernelResident)
	if err != nil {
		return err
	}
	img.Cert = c
	if err := k.Repo.Add(img); err != nil {
		return err
	}
	fmt.Printf("paramecium: component %q certified by %q (digest %x...)\n",
		img.Name, c.Issuer, c.Digest[:6])

	ep, err := stack.Bind(7)
	if err != nil {
		return err
	}

	// Applications late-bind the shared stack through the name space,
	// so they transparently go through the monitoring agent. The pump
	// method is resolved once; the packet loop dispatches by slot.
	pump, err := k.RootView.ResolveMethod("/shared/network", netstack.StackIface, "pump")
	if err != nil {
		return err
	}

	placements := []core.Placement{core.PlaceKernelCertified, core.PlaceKernelSandboxed, core.PlaceUser}
	fmt.Printf("\n%-20s %14s %14s %10s\n", "placement", "cycles/packet", "delivered", "filtered")
	for _, p := range placements {
		lf, err := k.LoadFilter("portfilter", p)
		if err != nil {
			return err
		}
		stack.AttachFilter(lf)
		before := stack.Stats()
		watch := k.Meter.Clock.StartWatch()
		for i := 0; i < packets; i++ {
			port := uint16(7)
			if i%4 == 3 {
				port = 9 // a quarter of the traffic is for someone else
			}
			frame := netstack.BuildUDPFrame(
				netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.MAC{2, 0, 0, 0, 0, 2},
				netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
				500, port, []byte("payload"))
			if err := nic.Inject(frame); err != nil {
				return err
			}
			if _, err := pump.Call(); err != nil {
				return err
			}
		}
		k.Sched.RunUntilIdle()
		elapsed := watch.Elapsed()
		after := stack.Stats()
		fmt.Printf("%-20s %14d %14d %10d\n", p,
			elapsed/uint64(packets),
			after.Delivered-before.Delivered,
			after.Filtered-before.Filtered)
		if err := stack.DetachFilter("portfilter"); err != nil {
			return err
		}
		// Drain the endpoint between rounds.
		for {
			if _, ok := ep.Recv(); !ok {
				break
			}
		}
	}

	// Certification refusal demonstration.
	rogue := sandbox.MustAssemble(netstack.AcceptAllProgram)
	if err := k.Repo.Add(&repoz.Image{Name: "rogue", Kind: repoz.KindPVM, Data: rogue.Encode()}); err != nil {
		return err
	}
	if _, err := k.LoadFilter("rogue", core.PlaceKernelCertified); err != nil {
		fmt.Printf("\nparamecium: kernel refused uncertified component: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "paramecium: BUG: uncertified component entered the kernel")
		os.Exit(1)
	}

	fmt.Println("\nmonitoring agent observations on /shared/network:")
	fmt.Print(tracer.Report())

	fmt.Printf("machine: %d total virtual cycles, %d traps, %d TLB misses, %d interrupts\n",
		k.Meter.Clock.Now(),
		k.Meter.Count(clock.OpTrapEnter),
		k.Meter.Count(clock.OpTLBMiss),
		k.Meter.Count(clock.OpInterrupt))
	fmt.Printf("console captured: %q\n", cons.Contents())
	return nil
}
