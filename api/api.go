// Package api declares the types of Paramecium's public embedding
// surface: the object architecture of the paper — objects exporting
// named interfaces of "methods, state pointers and type information" —
// as seen by programs that embed the kernel.
//
// The package contains declarations only. Booting a system, creating
// objects and binding names is done through the root paramecium
// package; everything returned from there is expressed in these types.
package api

import (
	"paramecium/internal/obj"
	"paramecium/internal/probe"
	"paramecium/internal/ring"
	"paramecium/internal/shm"
	"paramecium/internal/trace"
)

// Method is a late-bound method implementation. Arguments and results
// are dynamically typed; the interface declaration carries the arity
// used for call validation, mirroring the paper's "type information".
type Method = obj.Method

// MethodDecl declares one method of an interface: its name, arity and
// (once part of an InterfaceDecl) its dispatch slot.
type MethodDecl = obj.MethodDecl

// InterfaceDecl is the type information of a named interface. Decls
// are immutable after construction and may be shared between many
// objects.
type InterfaceDecl = obj.InterfaceDecl

// Invoker is the universal calling surface of a bound interface.
// Objects, interposers and cross-domain proxies all satisfy it. The
// hot path is Resolve once, Call many times; Invoke is the string
// compatibility path.
type Invoker = obj.Invoker

// MethodHandle is a pre-resolved method binding whose Call dispatches
// by slot index with no per-call name lookup or lock. CallInto is the
// allocation-free variant: the caller supplies the result buffer, and
// a method bound in the buffer-threading form (BindInto) appends its
// results without allocating.
type MethodHandle = obj.MethodHandle

// MethodInto is the buffer-threading form of a method implementation:
// results are appended to a caller-owned slice, which is what keeps
// the single-call invocation hot path allocation-free. Bind one with
// BoundInterface.BindInto.
type MethodInto = obj.MethodInto

// Batch is an ordered list of pre-resolved invocations executed
// together. In the default in-order mode, consecutive entries
// resolved through one cross-domain proxy are vectored across the
// protection boundary in a single crossing — one trap, one
// context-switch pair, N slot dispatches — amortizing the fixed
// crossing cost over the group; Batch.SetMode(BatchGrouped) instead
// partitions a mixed-target batch by target and pays one crossing per
// DISTINCT target, reordering execution across targets (never within
// one). Per-entry results and errors are read back with Results, in
// queue order in both modes.
type Batch = obj.Batch

// BatchMode selects how Batch.Run orders dispatch across targets:
// strictly in queue order (BatchInOrder, the default) or partitioned
// one-crossing-per-distinct-target (BatchGrouped). See Batch.
type BatchMode = obj.BatchMode

// Batch dispatch modes.
const (
	// BatchInOrder executes entries strictly in queue order; only
	// consecutive same-proxy entries share a crossing, so an
	// alternating mixed-target batch pays one crossing per entry.
	BatchInOrder = obj.InOrder
	// BatchGrouped partitions entries by target and pays one crossing
	// per distinct target, preserving per-target order but reordering
	// execution across targets. Opt in only when entries bound for
	// different targets are independent of each other.
	BatchGrouped = obj.Grouped
)

// BatchCall is one entry of a Batch.
type BatchCall = obj.BatchCall

// Batcher executes a group of pre-resolved calls in one protection
// crossing; the cross-domain proxy implements it. Custom Invoker
// implementations can supply their own via NewBatchableHandle.
type Batcher = obj.Batcher

// Instance is anything that can be registered in, and bound from, the
// name space: an object, a composition, an interposing agent or a
// proxy for an object in another protection domain.
type Instance = obj.Instance

// Object is a concrete component instance: methods plus instance
// data, exporting one or more named interfaces. Create one with
// System.NewObject so it is wired to the system's cycle meter.
type Object = obj.Object

// BoundInterface is an interface exported by a concrete object; bind
// method implementations to it with Bind or MustBind.
type BoundInterface = obj.BoundInterface

// Composition is an object composed of other object instances,
// exporting interfaces (typically re-exported from its children) like
// any object.
type Composition = obj.Composition

// Interposer is an interposing agent: it exports a superset of the
// original object's interfaces, reimplements the methods it sees fit
// and forwards the others.
type Interposer = obj.Interposer

// WrapFunc reimplements one method of an interposed interface; next
// invokes the original implementation.
type WrapFunc = obj.WrapFunc

// Errors shared by every Invoker implementation.
var (
	// ErrNoInterface reports an interface name the instance does not
	// export.
	ErrNoInterface = obj.ErrNoInterface
	// ErrNoMethod reports a method name the interface does not
	// declare. Both Invoke and Resolve return it.
	ErrNoMethod = obj.ErrNoMethod
	// ErrUnbound reports a declared method with no implementation
	// bound yet.
	ErrUnbound = obj.ErrUnbound
	// ErrArity reports an argument or result list whose length
	// contradicts the method's type information.
	ErrArity = obj.ErrArity
)

// NewInterfaceDecl builds an interface declaration, assigning each
// method a dispatch slot. Method names must be unique.
func NewInterfaceDecl(name string, methods ...MethodDecl) (*InterfaceDecl, error) {
	return obj.NewInterfaceDecl(name, methods...)
}

// MustInterfaceDecl is NewInterfaceDecl that panics on error; intended
// for package-level declarations of well-known interfaces.
func MustInterfaceDecl(name string, methods ...MethodDecl) *InterfaceDecl {
	return obj.MustInterfaceDecl(name, methods...)
}

// NewMethodHandle builds a handle from a declaration and a dispatch
// function, for custom Invoker implementations that supply their own
// dispatch path.
func NewMethodHandle(decl *MethodDecl, dispatch Method) MethodHandle {
	return obj.NewMethodHandle(decl, dispatch)
}

// NewBatchableHandle is NewMethodHandle for Invoker implementations
// that can execute grouped calls in one crossing and/or thread
// caller-provided result buffers; see obj.NewBatchableHandle.
func NewBatchableHandle(decl *MethodDecl, dispatch Method, into MethodInto, batcher Batcher, key any) MethodHandle {
	return obj.NewBatchableHandle(decl, dispatch, into, batcher, key)
}

// NewBatch returns an empty batch with room for n entries. A batch is
// reusable via Reset; see Batch.
func NewBatch(n int) *Batch { return obj.NewBatch(n) }

// SegmentRights is the access a shared-memory grant confers: RO maps
// the segment read-only in the grantee's protection domain, RW maps it
// read-write. The segment's owner always has read-write access.
type SegmentRights = shm.Rights

// Shared-memory grant rights.
const (
	RO SegmentRights = shm.RO
	RW SegmentRights = shm.RW
)

// GrantRef is the unforgeable capability naming one shared-memory
// grant. It is a single 64-bit word, so it crosses the invocation
// plane as one copied word — pass it as an ordinary call argument and
// the grantee attaches the segment instead of receiving copied bytes.
// The proxy validates grant arguments before paying for the crossing:
// a forged, revoked or misaddressed ref fails the call up front.
type GrantRef = shm.GrantRef

// Attachment is a grantee's live mapping of a shared segment: Load and
// Store move bytes through the grantee's own MMU context, charged as
// that domain's memory traffic — never as invocation-plane copies.
// After the grant is revoked, both fail with ErrSegmentRevoked.
type Attachment = shm.Attachment

// Shared-memory errors.
var (
	// ErrSegmentRevoked reports an attach or access through a revoked
	// grant: access was withdrawn, distinct from a never-issued ref.
	ErrSegmentRevoked = shm.ErrRevoked
	// ErrNoGrant reports a grant reference the kernel never issued.
	ErrNoGrant = shm.ErrNoGrant
	// ErrSegmentReadOnly reports a store through an RO grant.
	ErrSegmentReadOnly = shm.ErrReadOnly
)

// Coalescer queues single calls into a Batch and auto-flushes at a
// size threshold or virtual-clock deadline derived from the measured
// break-even curve, so callers issuing calls one at a time still get
// vectored-crossing amortization. Create one with System.NewCoalescer
// or Handle.Coalesce.
type Coalescer = obj.Coalescer

// RingProducer is the publishing endpoint of a streaming ring: Push
// (or ProduceOffset/PushInPlace for zero-copy payloads), then Notify
// once per burst to ring the consumer's doorbell. Single-goroutine.
type RingProducer = ring.Producer

// RingConsumer is the draining endpoint of a streaming ring: Pop, or
// Peek/Release for in-place payload consumption. Single-goroutine.
type RingConsumer = ring.Consumer

// Streaming-ring errors.
var (
	// ErrRingFull reports a push the consumer hasn't made room for.
	ErrRingFull = ring.ErrFull
	// ErrRingEmpty reports a pop with no published records.
	ErrRingEmpty = ring.ErrEmpty
	// ErrRingHangup reports that the ring's peer is gone: the grant
	// backing the ring was revoked — by Producer.Hangup or by domain
	// teardown. Distinct from ErrNoGrant (a forged capability).
	ErrRingHangup = ring.ErrHangup
	// ErrRingRecordSize reports a record larger than the ring's slots.
	ErrRingRecordSize = ring.ErrRecordSize
)

// Tracer is a measurement interposer: it wraps every method of every
// interface an instance exports and counts and times each call in
// virtual cycles, without the target or its clients changing at all —
// the paper's "powerful monitoring tools" built out of interposition.
// Install one on a bound name with Handle.Trace.
type Tracer = trace.Tracer

// MethodStats aggregates one traced method's observations: calls,
// errors, total cycles inside the target, and a latency histogram.
type MethodStats = trace.MethodStats

// MethodSnapshot is one traced method's stats as copied out by
// Tracer.Snapshot: the "iface.method" key plus the stats value.
type MethodSnapshot = trace.MethodSnapshot

// Histogram is a power-of-two bucketed latency histogram; bucket i
// counts observations in [2^i, 2^(i+1)) virtual cycles.
type Histogram = trace.Histogram

// TraceEvent is one kernel flight-recorder event: a typed occurrence
// (crossing leg, batch dispatch, fault, TLB traffic, doorbell, grant
// motion, scheduler activity) stamped with its virtual-clock cycles,
// CPU and paying protection domain. A and B carry kind-specific
// operands; see the Observability section of ARCHITECTURE.md.
type TraceEvent = probe.Event

// TraceKind is the type tag of a flight-recorder event.
type TraceKind = probe.Kind

// LedgerRow is one protection domain's row of the per-domain cycle
// ledger: total attributed cycles plus per-operation cycle and count
// columns, frozen at domain destruction.
type LedgerRow = probe.RowSnapshot
