package names

import (
	"fmt"
	"sync"
	"testing"

	"paramecium/internal/obj"
)

// TestDeepViewChainBindRacesOverrideChurn: binds through a deep view
// chain probe copy-on-write snapshots at every level, so they stay
// lock-free and correct while every view in the chain churns its
// override set. Each bind must observe either the global instance or
// one of the legitimately published overrides — never a torn state.
func TestDeepViewChainBindRacesOverrideChurn(t *testing.T) {
	space := NewSpace(nil)
	global := obj.New("global", nil)
	if err := space.Register("/svc/x", global); err != nil {
		t.Fatal(err)
	}
	const depth = 8
	views := make([]*View, depth)
	views[0] = RootView(space)
	for i := 1; i < depth; i++ {
		views[i] = views[i-1].Child()
	}
	leaf := views[depth-1]
	legit := map[obj.Instance]bool{global: true}
	overrides := make([]obj.Instance, depth)
	for i := range overrides {
		overrides[i] = obj.New(fmt.Sprintf("ovr-%d", i), nil)
		legit[overrides[i]] = true
	}

	const iters = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				inst, err := leaf.Bind("/svc/x")
				if err != nil {
					t.Errorf("bind: %v", err)
					return
				}
				if !legit[inst] {
					t.Errorf("bind resolved to unknown instance %v", inst)
					return
				}
			}
		}()
	}
	for i := 0; i < iters; i++ {
		v := views[i%depth]
		if err := v.Override("/svc/x", overrides[i%depth]); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := v.ClearOverride("/svc/x"); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestOverridePublishIsAtomic: a bind concurrent with the very first
// override on a fresh view sees the old state or the new — and an
// alias plus its target override published in sequence are observed in
// order (no alias pointing at a not-yet-visible override, because each
// mutation publishes a complete snapshot).
func TestOverrideSnapshotsAreImmutable(t *testing.T) {
	space := NewSpace(nil)
	base := obj.New("base", nil)
	if err := space.Register("/a", base); err != nil {
		t.Fatal(err)
	}
	v := RootView(space)
	// Capture the pre-mutation snapshot as a reader would.
	before := v.ovr.Load()
	repl := obj.New("repl", nil)
	if err := v.Override("/a", repl); err != nil {
		t.Fatal(err)
	}
	if _, ok := before.overrides["/a"]; ok {
		t.Fatal("published snapshot mutated in place")
	}
	inst, err := v.Bind("/a")
	if err != nil || inst != repl {
		t.Fatalf("bind = %v, %v; want the override", inst, err)
	}
	if err := v.ClearOverride("/a"); err != nil {
		t.Fatal(err)
	}
	inst, err = v.Bind("/a")
	if err != nil || inst != base {
		t.Fatalf("bind after clear = %v, %v; want the global", inst, err)
	}
}
