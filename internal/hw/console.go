package hw

import (
	"bytes"
	"sync"
)

// Console register word offsets.
const (
	ConsoleRegPutc    = iota // w: emit one byte
	ConsoleRegWritten        // r: total bytes written
	consoleRegCount
)

// Console is a write-only serial console device capturing output in a
// buffer. Kernel and user components print through their console
// driver object; tests assert on Contents.
type Console struct {
	baseDevice
	name string
	irq  IRQLine
	reg  *IORegion

	mu  sync.Mutex
	buf bytes.Buffer
}

// NewConsole builds a console. It raises no interrupts (irq is kept
// for symmetry and future read-side support).
func NewConsole(name string, irq IRQLine) *Console {
	c := &Console{name: name, irq: irq}
	c.reg = NewIORegion(name+"-regs", consoleRegCount, c.readReg, c.writeReg)
	return c
}

// Name implements Device.
func (c *Console) Name() string { return c.name }

// IRQ implements Device.
func (c *Console) IRQ() IRQLine { return c.irq }

// IORegion implements Device.
func (c *Console) IORegion() *IORegion { return c.reg }

// Contents returns everything written so far.
func (c *Console) Contents() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

// ResetBuffer clears the captured output.
func (c *Console) ResetBuffer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf.Reset()
}

func (c *Console) readReg(reg int) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if reg == ConsoleRegWritten {
		return uint64(c.buf.Len()), nil
	}
	return 0, nil
}

func (c *Console) writeReg(reg int, val uint64) error {
	if reg == ConsoleRegPutc {
		c.mu.Lock()
		c.buf.WriteByte(byte(val))
		c.mu.Unlock()
	}
	return nil
}
