package vmm

import (
	"errors"
	"testing"

	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
)

func setup(frames int) (*Manager, *mem.Service, *hw.Machine) {
	machine := hw.New(hw.Config{PhysFrames: frames})
	svc := mem.New(machine)
	return New(svc), svc, machine
}

func TestDemandZeroPaging(t *testing.T) {
	m, svc, machine := setup(16)
	ctx := svc.NewDomain()
	if err := m.DemandRegion(ctx, 0x10000, 4, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	// Nothing resident yet.
	if m.Resident(ctx, 0x10000) {
		t.Fatal("page resident before first touch")
	}
	free := machine.Phys.FreeFrames()
	if err := machine.Store(ctx, 0x10008, []byte("lazy")); err != nil {
		t.Fatal(err)
	}
	if machine.Phys.FreeFrames() != free-1 {
		t.Fatal("expected exactly one frame allocated")
	}
	buf := make([]byte, 4)
	if err := machine.Load(ctx, 0x10008, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "lazy" {
		t.Fatalf("read %q", buf)
	}
	demand, _, _, _ := m.Stats()
	if demand != 1 {
		t.Fatalf("demand faults = %d", demand)
	}
	// Touch another page in the region.
	if err := machine.Store(ctx, 0x12000, []byte("x")); err != nil {
		t.Fatal(err)
	}
	demand, _, _, _ = m.Stats()
	if demand != 2 {
		t.Fatalf("demand faults = %d", demand)
	}
}

func TestDemandRegionDuplicate(t *testing.T) {
	m, svc, _ := setup(8)
	ctx := svc.NewDomain()
	if err := m.DemandRegion(ctx, 0x1000, 1, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := m.DemandRegion(ctx, 0x1000, 1, mmu.PermRead); err == nil {
		t.Fatal("duplicate region accepted")
	}
}

func TestCopyOnWrite(t *testing.T) {
	m, svc, machine := setup(16)
	parent := svc.NewDomain()
	child := svc.NewDomain()
	if err := m.DemandRegion(parent, 0x10000, 2, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := machine.Store(parent, 0x10000, []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(parent, 0x10000, child, 0x20000, 2); err != nil {
		t.Fatal(err)
	}
	// Child reads the parent's data without copying.
	buf := make([]byte, 8)
	if err := machine.Load(child, 0x20000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Fatalf("child sees %q", buf)
	}
	_, cow, _, _ := m.Stats()
	if cow != 0 {
		t.Fatal("reads caused COW faults")
	}
	// Child writes: gets a private copy; parent unchanged.
	if err := machine.Store(child, 0x20000, []byte("childown")); err != nil {
		t.Fatal(err)
	}
	if err := machine.Load(parent, 0x10000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Fatalf("parent sees %q after child write", buf)
	}
	if err := machine.Load(child, 0x20000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "childown" {
		t.Fatalf("child sees %q after its write", buf)
	}
	_, cow, _, _ = m.Stats()
	if cow != 1 {
		t.Fatalf("cow faults = %d", cow)
	}
	// Parent writes its (now sole) copy: upgraded in place, no copy.
	free := machine.Phys.FreeFrames()
	if err := machine.Store(parent, 0x10000, []byte("parent2!")); err != nil {
		t.Fatal(err)
	}
	if machine.Phys.FreeFrames() != free {
		t.Fatal("last-sharer write allocated a frame")
	}
	_, cow, _, _ = m.Stats()
	if cow != 2 {
		t.Fatalf("cow faults = %d", cow)
	}
}

func TestCloneOfUntouchedPagesStaysLazy(t *testing.T) {
	m, svc, machine := setup(16)
	parent := svc.NewDomain()
	child := svc.NewDomain()
	if err := m.DemandRegion(parent, 0x10000, 1, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(parent, 0x10000, child, 0x20000, 1); err != nil {
		t.Fatal(err)
	}
	free := machine.Phys.FreeFrames()
	if err := machine.Store(child, 0x20000, []byte("c")); err != nil {
		t.Fatal(err)
	}
	if machine.Phys.FreeFrames() != free-1 {
		t.Fatal("clone of untouched page did not stay lazy")
	}
	// Parent's page is still untouched and independent.
	if err := machine.Store(parent, 0x10000, []byte("p")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := machine.Load(child, 0x20000, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 'c' {
		t.Fatalf("child sees %q", buf)
	}
}

func TestSwapOutIn(t *testing.T) {
	m, svc, machine := setup(16)
	ctx := svc.NewDomain()
	if err := m.DemandRegion(ctx, 0x10000, 1, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := machine.Store(ctx, 0x10000, []byte("persist me")); err != nil {
		t.Fatal(err)
	}
	free := machine.Phys.FreeFrames()
	if err := m.Evict(ctx, 0x10000); err != nil {
		t.Fatal(err)
	}
	if machine.Phys.FreeFrames() != free+1 {
		t.Fatal("evict did not free the frame")
	}
	if m.Resident(ctx, 0x10000) {
		t.Fatal("page resident after evict")
	}
	// Touch: swap-in restores contents.
	buf := make([]byte, 10)
	if err := machine.Load(ctx, 0x10000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "persist me" {
		t.Fatalf("after swap-in: %q", buf)
	}
	_, _, swapIn, swapOut := m.Stats()
	if swapIn != 1 || swapOut != 1 {
		t.Fatalf("swap stats = %d/%d", swapIn, swapOut)
	}
}

func TestEvictErrors(t *testing.T) {
	m, svc, machine := setup(8)
	ctx := svc.NewDomain()
	if err := m.Evict(ctx, 0x5000); !errors.Is(err, ErrNotManaged) {
		t.Fatalf("unmanaged: %v", err)
	}
	if err := m.DemandRegion(ctx, 0x5000, 1, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	// Still demand-zero (never touched): cannot evict.
	if err := m.Evict(ctx, 0x5000); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("untouched: %v", err)
	}
	if err := machine.Store(ctx, 0x5000, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict(ctx, 0x5000); err != nil {
		t.Fatal(err)
	}
	// Double evict.
	if err := m.Evict(ctx, 0x5000); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("double evict: %v", err)
	}
}

func TestWorkingSetLargerThanMemory(t *testing.T) {
	// 4 frames of memory, an 8-page working set: with explicit
	// eviction the workload still completes and data survives.
	m, svc, machine := setup(4)
	ctx := svc.NewDomain()
	const pages = 8
	if err := m.DemandRegion(ctx, 0x10000, pages, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		va := mmu.VAddr(0x10000 + i*mmu.PageSize)
		if machine.Phys.FreeFrames() == 0 {
			// Evict the oldest resident page.
			for j := 0; j < i; j++ {
				victim := mmu.VAddr(0x10000 + j*mmu.PageSize)
				if m.Resident(ctx, victim) {
					if err := m.Evict(ctx, victim); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		}
		if err := machine.Store(ctx, va, []byte{byte(i + 1)}); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	// Every page's data must be recoverable (faulting in as needed,
	// with manual eviction to make room).
	for i := 0; i < pages; i++ {
		va := mmu.VAddr(0x10000 + i*mmu.PageSize)
		if !m.Resident(ctx, va) && machine.Phys.FreeFrames() == 0 {
			for j := 0; j < pages; j++ {
				victim := mmu.VAddr(0x10000 + j*mmu.PageSize)
				if victim != va && m.Resident(ctx, victim) {
					if err := m.Evict(ctx, victim); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		}
		buf := make([]byte, 1)
		if err := machine.Load(ctx, va, buf); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d = %d, want %d", i, buf[0], i+1)
		}
	}
}

func TestCloneSwappedPageRefused(t *testing.T) {
	m, svc, machine := setup(8)
	a, b := svc.NewDomain(), svc.NewDomain()
	if err := m.DemandRegion(a, 0x1000, 1, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := machine.Store(a, 0x1000, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := m.Evict(a, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(a, 0x1000, b, 0x2000, 1); err == nil {
		t.Fatal("clone of swapped page accepted")
	}
}
