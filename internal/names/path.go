// Package names implements the Paramecium hierarchical name space for
// object instances: registration, binding, interposition by handle
// replacement, and per-object views with override sets.
//
// The name space is the reconfiguration mechanism of the whole system.
// Binding is by instance name at run time (late binding); replacing the
// handle under a name transparently interposes an agent on all future
// binds; and a child object inherits its parent's view but can override
// individual names, which is how a programmer controls exactly which
// components an application imports.
package names

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by name-space operations.
var (
	ErrNotFound = errors.New("names: not found")
	ErrExists   = errors.New("names: already registered")
	ErrIsDir    = errors.New("names: path names a directory")
	ErrNotDir   = errors.New("names: path component is not a directory")
	ErrBadPath  = errors.New("names: bad path")
)

// Split normalizes a path and returns its components. Paths use '/' as
// the separator; leading and trailing slashes and empty components are
// ignored. The root is the empty component list.
func Split(path string) ([]string, error) {
	if strings.ContainsRune(path, 0) {
		return nil, fmt.Errorf("%w: NUL in %q", ErrBadPath, path)
	}
	raw := strings.Split(path, "/")
	out := make([]string, 0, len(raw))
	for _, c := range raw {
		switch c {
		case "", ".":
			continue
		case "..":
			return nil, fmt.Errorf("%w: %q contains '..'", ErrBadPath, path)
		}
		out = append(out, c)
	}
	return out, nil
}

// Clean returns the canonical form of a path ("/a/b").
func Clean(path string) (string, error) {
	parts, err := Split(path)
	if err != nil {
		return "", err
	}
	return "/" + strings.Join(parts, "/"), nil
}

// Join concatenates path components canonically.
func Join(parts ...string) string {
	joined := strings.Join(parts, "/")
	c, err := Clean(joined)
	if err != nil {
		return "/" + joined
	}
	return c
}
