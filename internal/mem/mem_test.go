package mem

import (
	"errors"
	"testing"

	"paramecium/internal/hw"
	"paramecium/internal/mmu"
)

func newService(frames int) (*Service, *hw.Machine) {
	m := hw.New(hw.Config{PhysFrames: frames})
	return New(m), m
}

func TestAllocPageAndAccess(t *testing.T) {
	s, m := newService(16)
	ctx := s.NewDomain()
	if err := s.AllocPage(ctx, 0x10000, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(ctx, 0x10010, []byte("data")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := m.Load(ctx, 0x10010, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("read back %q", buf)
	}
}

func TestAllocPageDuplicate(t *testing.T) {
	s, _ := newService(16)
	ctx := s.NewDomain()
	if err := s.AllocPage(ctx, 0x1000, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := s.AllocPage(ctx, 0x1800, mmu.PermRead); !errors.Is(err, ErrPageBusy) {
		t.Fatalf("same page: %v", err) // 0x1800 is within the same page
	}
}

func TestAllocPageOutOfMemory(t *testing.T) {
	s, _ := newService(1)
	ctx := s.NewDomain()
	if err := s.AllocPage(ctx, 0x1000, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := s.AllocPage(ctx, 0x2000, mmu.PermRead); !errors.Is(err, mmu.ErrOutOfMemory) {
		t.Fatalf("OOM: %v", err)
	}
}

func TestAllocRange(t *testing.T) {
	s, m := newService(16)
	ctx := s.NewDomain()
	if err := s.AllocRange(ctx, 0x4000, 3, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	// Spanning write across the whole range.
	data := make([]byte, 3*mmu.PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.Store(ctx, 0x4000, data); err != nil {
		t.Fatal(err)
	}
}

func TestSharePage(t *testing.T) {
	s, m := newService(16)
	a := s.NewDomain()
	b := s.NewDomain()
	if err := s.AllocPage(a, 0x1000, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := s.SharePage(a, 0x1000, b, 0x8000, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	// Writes in a are visible in b.
	if err := m.Store(a, 0x1000, []byte("shared!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if err := m.Load(b, 0x8000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "shared!" {
		t.Fatalf("b sees %q", buf)
	}
	// b's mapping is read-only.
	if err := m.Store(b, 0x8000, []byte("x")); err == nil {
		t.Fatal("read-only sharer could write")
	}
	// Frame is refcounted at 2.
	frame, ok := s.Frame(a, 0x1000)
	if !ok {
		t.Fatal("Frame lookup failed")
	}
	if got := m.Phys.RefCount(frame); got != 2 {
		t.Fatalf("refcount = %d", got)
	}
}

func TestSharePageErrors(t *testing.T) {
	s, _ := newService(16)
	a, b := s.NewDomain(), s.NewDomain()
	if err := s.SharePage(a, 0x1000, b, 0x2000, mmu.PermRead); !errors.Is(err, ErrNoPage) {
		t.Fatalf("share unmanaged: %v", err)
	}
	if err := s.AllocPage(a, 0x1000, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := s.AllocPage(b, 0x2000, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := s.SharePage(a, 0x1000, b, 0x2000, mmu.PermRead); !errors.Is(err, ErrPageBusy) {
		t.Fatalf("share onto busy: %v", err)
	}
}

func TestFreePage(t *testing.T) {
	s, m := newService(4)
	ctx := s.NewDomain()
	if err := s.AllocPage(ctx, 0x1000, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	free := m.Phys.FreeFrames()
	if err := s.FreePage(ctx, 0x1000); err != nil {
		t.Fatal(err)
	}
	if m.Phys.FreeFrames() != free+1 {
		t.Fatal("frame not returned")
	}
	if err := m.Load(ctx, 0x1000, make([]byte, 1)); err == nil {
		t.Fatal("freed page still readable")
	}
	if err := s.FreePage(ctx, 0x1000); !errors.Is(err, ErrNoPage) {
		t.Fatalf("double free: %v", err)
	}
}

func TestFreeSharedPageKeepsFrame(t *testing.T) {
	s, m := newService(4)
	a, b := s.NewDomain(), s.NewDomain()
	if err := s.AllocPage(a, 0x1000, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := s.SharePage(a, 0x1000, b, 0x1000, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(a, 0x1000, []byte("persist")); err != nil {
		t.Fatal(err)
	}
	if err := s.FreePage(a, 0x1000); err != nil {
		t.Fatal(err)
	}
	// b still reads the data; the frame survived.
	buf := make([]byte, 7)
	if err := m.Load(b, 0x1000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "persist" {
		t.Fatalf("b sees %q", buf)
	}
}

func TestProtect(t *testing.T) {
	s, m := newService(4)
	ctx := s.NewDomain()
	if err := s.AllocPage(ctx, 0x1000, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(ctx, 0x1000, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(ctx, 0x1000, []byte("x")); err == nil {
		t.Fatal("write allowed after Protect")
	}
	if err := s.Protect(ctx, 0x9000, mmu.PermRead); !errors.Is(err, ErrNoPage) {
		t.Fatalf("protect unmanaged: %v", err)
	}
}

func TestFaultHandlerDemandPaging(t *testing.T) {
	s, m := newService(8)
	ctx := s.NewDomain()
	faults := 0
	if err := s.RegisterFaultHandler(ctx, 0x5000, func(f *hw.TrapFrame) bool {
		faults++
		if err := s.AllocPage(f.Ctx, f.Addr.PageBase(), mmu.PermRead|mmu.PermWrite); err != nil {
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(ctx, 0x5008, []byte("lazy")); err != nil {
		t.Fatalf("demand-paged store: %v", err)
	}
	if faults != 1 {
		t.Fatalf("faults = %d", faults)
	}
	// Warm access: no new fault.
	if err := m.Store(ctx, 0x5008, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("faults after warm access = %d", faults)
	}
	resolved, unknown := s.FaultStats()
	if resolved != 1 || unknown != 0 {
		t.Fatalf("stats = %d/%d", resolved, unknown)
	}
}

func TestFaultWithoutHandlerIsUnresolved(t *testing.T) {
	s, m := newService(8)
	ctx := s.NewDomain()
	if err := m.Load(ctx, 0x7000, make([]byte, 1)); err == nil {
		t.Fatal("unhandled fault did not error")
	}
	_, unknown := s.FaultStats()
	if unknown != 1 {
		t.Fatalf("unknown = %d", unknown)
	}
}

func TestFaultHandlerRegistration(t *testing.T) {
	s, _ := newService(8)
	ctx := s.NewDomain()
	h := func(*hw.TrapFrame) bool { return false }
	if err := s.RegisterFaultHandler(ctx, 0x1000, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := s.RegisterFaultHandler(ctx, 0x1000, h); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterFaultHandler(ctx, 0x1800, h); !errors.Is(err, ErrHandlerBusy) {
		t.Fatalf("duplicate (same page): %v", err)
	}
	if err := s.UnregisterFaultHandler(ctx, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := s.UnregisterFaultHandler(ctx, 0x1000); !errors.Is(err, ErrNoPage) {
		t.Fatalf("double unregister: %v", err)
	}
}

func TestDestroyDomainReclaimsEverything(t *testing.T) {
	s, m := newService(8)
	ctx := s.NewDomain()
	free := m.Phys.FreeFrames()
	if err := s.AllocRange(ctx, 0x1000, 3, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterFaultHandler(ctx, 0x9000, func(*hw.TrapFrame) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if err := s.DestroyDomain(ctx); err != nil {
		t.Fatal(err)
	}
	if m.Phys.FreeFrames() != free {
		t.Fatalf("frames leaked: %d != %d", m.Phys.FreeFrames(), free)
	}
	if m.MMU.HasContext(ctx) {
		t.Fatal("context survived destroy")
	}
}

func TestDestroyDomainKeepsSharedFrames(t *testing.T) {
	s, m := newService(8)
	a, b := s.NewDomain(), s.NewDomain()
	if err := s.AllocPage(a, 0x1000, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := s.SharePage(a, 0x1000, b, 0x2000, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(a, 0x1000, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := s.DestroyDomain(a); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := m.Load(b, 0x2000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "alive" {
		t.Fatalf("b sees %q after sharer died", buf)
	}
}

func TestIOSpaceExclusive(t *testing.T) {
	s, m := newService(8)
	nic := hw.NewNIC("net0", 4)
	if err := m.AttachDevice(nic); err != nil {
		t.Fatal(err)
	}
	drv := s.NewDomain()
	other := s.NewDomain()
	g, err := s.AllocIOSpace(drv, "net0-regs", IOExclusive)
	if err != nil {
		t.Fatal(err)
	}
	if g.Region == nil || g.Mode != IOExclusive {
		t.Fatalf("grant = %+v", g)
	}
	// The grant's region is usable.
	if _, err := g.Region.ReadReg(hw.NICRegRxPending); err != nil {
		t.Fatal(err)
	}
	// No second grant of any kind while exclusive is held.
	if _, err := s.AllocIOSpace(other, "net0-regs", IOShared); !errors.Is(err, ErrIOConflict) {
		t.Fatalf("shared over exclusive: %v", err)
	}
	if _, err := s.AllocIOSpace(other, "net0-regs", IOExclusive); !errors.Is(err, ErrIOConflict) {
		t.Fatalf("double exclusive: %v", err)
	}
	if err := s.ReleaseIOSpace(g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocIOSpace(other, "net0-regs", IOExclusive); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if err := s.ReleaseIOSpace(g); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("double release: %v", err)
	}
}

func TestIOSpaceShared(t *testing.T) {
	s, m := newService(8)
	nic := hw.NewNIC("net0", 4)
	if err := m.AttachDevice(nic); err != nil {
		t.Fatal(err)
	}
	a, b := s.NewDomain(), s.NewDomain()
	if _, err := s.AllocIOSpace(a, "net0-regs", IOShared); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocIOSpace(b, "net0-regs", IOShared); err != nil {
		t.Fatal(err)
	}
	if got := s.GrantCount("net0-regs"); got != 2 {
		t.Fatalf("grants = %d", got)
	}
	// Exclusive now conflicts with the shared holders.
	if _, err := s.AllocIOSpace(a, "net0-regs", IOExclusive); !errors.Is(err, ErrIOConflict) {
		t.Fatalf("exclusive over shared: %v", err)
	}
}

func TestIOSpaceUnknownRegion(t *testing.T) {
	s, _ := newService(8)
	if _, err := s.AllocIOSpace(0, "ghost", IOShared); !errors.Is(err, ErrNoIORegion) {
		t.Fatalf("unknown region: %v", err)
	}
}

func TestDestroyDomainReleasesGrants(t *testing.T) {
	s, m := newService(8)
	nic := hw.NewNIC("net0", 4)
	if err := m.AttachDevice(nic); err != nil {
		t.Fatal(err)
	}
	ctx := s.NewDomain()
	if _, err := s.AllocIOSpace(ctx, "net0-regs", IOExclusive); err != nil {
		t.Fatal(err)
	}
	if err := s.DestroyDomain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.GrantCount("net0-regs"); got != 0 {
		t.Fatalf("grants after destroy = %d", got)
	}
}

func TestIOModeString(t *testing.T) {
	if IOExclusive.String() != "exclusive" || IOShared.String() != "shared" {
		t.Fatal("mode strings")
	}
}

func TestReserveVAArena(t *testing.T) {
	s, _ := newService(16)
	a, b := s.NewDomain(), s.NewDomain()

	// Reservations within one context never overlap; contexts are
	// independent arenas starting at ShareBase.
	r1 := s.ReserveVA(a, 2)
	r2 := s.ReserveVA(a, 3)
	if r1 != ShareBase {
		t.Fatalf("first reservation at %#x, want ShareBase %#x", uint64(r1), uint64(ShareBase))
	}
	if r2 < r1+2*mmu.PageSize {
		t.Fatalf("reservations overlap: %#x then %#x", uint64(r1), uint64(r2))
	}
	if got := s.ReserveVA(b, 2); got != ShareBase {
		t.Fatalf("context b arena starts at %#x, want ShareBase", uint64(got))
	}

	// Released ranges are recycled exact-fit before the arena grows.
	s.ReleaseVA(a, r1, 2)
	if got := s.ReserveVA(a, 2); got != r1 {
		t.Fatalf("2-page reservation = %#x, want recycled %#x", uint64(got), uint64(r1))
	}
	// A different length does not steal the freed range.
	s.ReleaseVA(a, r2, 3)
	if got := s.ReserveVA(a, 1); got == r2 {
		t.Fatal("1-page reservation reused a 3-page range")
	}

	// DestroyDomain forgets the arena; a late release is a no-op.
	if err := s.DestroyDomain(a); err != nil {
		t.Fatal(err)
	}
	s.ReleaseVA(a, r2, 3)
}
