package core

import (
	"errors"
	"testing"

	"paramecium/internal/cert"
	"paramecium/internal/clock"
	"paramecium/internal/mmu"
	"paramecium/internal/netstack"
	"paramecium/internal/obj"
	"paramecium/internal/repoz"
	"paramecium/internal/sandbox"
)

// testWorld is a booted kernel plus the trust infrastructure the
// tests certify components with.
type testWorld struct {
	k     *Kernel
	auth  *cert.Authority
	admin *cert.KeyCertifier
}

func newWorld(t *testing.T) *testWorld {
	t.Helper()
	auth := cert.NewAuthority(1000)
	k, err := Boot(Config{AuthorityKey: auth.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	admin := cert.NewKeyCertifier("sysadmin", cert.GenerateKey(1001),
		cert.PrivKernelResident|cert.PrivDeviceAccess|cert.PrivSharedService)
	if err := k.Validator.AddDelegation(auth.Delegate("sysadmin", admin.Key().Pub,
		cert.PrivKernelResident|cert.PrivDeviceAccess|cert.PrivSharedService)); err != nil {
		t.Fatal(err)
	}
	return &testWorld{k: k, auth: auth, admin: admin}
}

// addFilterImage stores the port-7 filter in the repository,
// optionally certified.
func (w *testWorld) addFilterImage(t *testing.T, name string, certified bool) {
	t.Helper()
	prog := sandbox.MustAssemble(netstack.PortFilterProgram(7))
	img := &repoz.Image{Name: name, Kind: repoz.KindPVM, Data: prog.Encode()}
	if certified {
		c, err := w.admin.Certify(name, img.Data, cert.PrivKernelResident)
		if err != nil {
			t.Fatal(err)
		}
		img.Cert = c
	}
	if err := w.k.Repo.Add(img); err != nil {
		t.Fatal(err)
	}
}

func testFrame(port uint16) []byte {
	return netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.MAC{2, 0, 0, 0, 0, 2},
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
		999, port, []byte("data"))
}

func TestBootNucleusComposition(t *testing.T) {
	w := newWorld(t)
	if w.k.Nucleus.Origin() != obj.LinkTime {
		t.Fatal("nucleus is not a static composition")
	}
	roles := w.k.Nucleus.Roles()
	if len(roles) != 4 {
		t.Fatalf("roles = %v", roles)
	}
	// Each service is bindable through the name space.
	for _, role := range []string{"events", "memory", "directory", "certify"} {
		inst, err := w.k.RootView.Bind("/nucleus/" + role)
		if err != nil {
			t.Fatalf("bind %s: %v", role, err)
		}
		iv, ok := inst.Iface("nucleus." + role + ".v1")
		if !ok {
			t.Fatalf("%s facade missing", role)
		}
		res, err := iv.Invoke("describe")
		if err != nil || res[0].(string) != "nucleus."+role {
			t.Fatalf("describe = %v, %v", res, err)
		}
	}
}

func TestLoadFilterCertified(t *testing.T) {
	w := newWorld(t)
	w.addFilterImage(t, "portfilter", true)
	lf, err := w.k.LoadFilter("portfilter", PlaceKernelCertified)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Placement() != PlaceKernelCertified {
		t.Fatal("placement wrong")
	}
	ok, err := lf.Accept(testFrame(7))
	if err != nil || !ok {
		t.Fatalf("accept(7) = %v, %v", ok, err)
	}
	ok, err = lf.Accept(testFrame(8))
	if err != nil || ok {
		t.Fatalf("accept(8) = %v, %v", ok, err)
	}
	// Certified placement pays no SFI checks.
	if w.k.Meter.Count(clock.OpSFICheck) != 0 {
		t.Fatal("certified filter charged SFI checks")
	}
	// It is registered in the name space.
	if _, err := w.k.RootView.Bind("/services/portfilter.kernel-certified"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFilterUncertifiedRefusedFromKernel(t *testing.T) {
	w := newWorld(t)
	w.addFilterImage(t, "rogue", false)
	if _, err := w.k.LoadFilter("rogue", PlaceKernelCertified); !errors.Is(err, ErrNotCertified) {
		t.Fatalf("uncertified kernel load: %v", err)
	}
}

func TestLoadFilterTamperedImageRefused(t *testing.T) {
	w := newWorld(t)
	w.addFilterImage(t, "tampered", true)
	img, _ := w.k.Repo.Get("tampered")
	// Tamper after certification: re-encode a modified program.
	prog := sandbox.MustAssemble(netstack.AcceptAllProgram)
	img.Data = prog.Encode()
	if _, err := w.k.LoadFilter("tampered", PlaceKernelCertified); !errors.Is(err, ErrNotCertified) {
		t.Fatalf("tampered load: %v", err)
	}
}

func TestLoadFilterSandboxed(t *testing.T) {
	w := newWorld(t)
	w.addFilterImage(t, "sfi-filter", false) // no certificate needed
	lf, err := w.k.LoadFilter("sfi-filter", PlaceKernelSandboxed)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := lf.Accept(testFrame(7))
	if err != nil || !ok {
		t.Fatalf("accept = %v, %v", ok, err)
	}
	if w.k.Meter.Count(clock.OpSFICheck) == 0 {
		t.Fatal("sandboxed filter paid no checks")
	}
}

func TestLoadFilterUser(t *testing.T) {
	w := newWorld(t)
	w.addFilterImage(t, "user-filter", false)
	lf, err := w.k.LoadFilter("user-filter", PlaceUser)
	if err != nil {
		t.Fatal(err)
	}
	before := w.k.Meter.Count(clock.OpCtxSwitch)
	ok, err := lf.Accept(testFrame(7))
	if err != nil || !ok {
		t.Fatalf("accept = %v, %v", ok, err)
	}
	// The call crossed into the filter's domain and back.
	if got := w.k.Meter.Count(clock.OpCtxSwitch) - before; got < 2 {
		t.Fatalf("context switches = %d, want >= 2", got)
	}
	if w.k.Meter.Count(clock.OpSFICheck) != 0 {
		t.Fatal("user filter charged SFI checks")
	}
}

func TestPlacementCostOrdering(t *testing.T) {
	// The paper's T5 shape: certified < sandboxed < user (per call).
	w := newWorld(t)
	w.addFilterImage(t, "f", true)
	frame := testFrame(7)

	measure := func(p Placement) uint64 {
		lf, err := w.k.LoadFilter("f", p)
		if err != nil {
			t.Fatal(err)
		}
		watch := w.k.Meter.Clock.StartWatch()
		for i := 0; i < 50; i++ {
			if _, err := lf.Accept(frame); err != nil {
				t.Fatal(err)
			}
		}
		return watch.Elapsed()
	}
	certified := measure(PlaceKernelCertified)
	sandboxed := measure(PlaceKernelSandboxed)
	user := measure(PlaceUser)
	if !(certified < sandboxed && sandboxed < user) {
		t.Fatalf("cost ordering violated: certified=%d sandboxed=%d user=%d",
			certified, sandboxed, user)
	}
}

func TestUnloadFilter(t *testing.T) {
	w := newWorld(t)
	w.addFilterImage(t, "f", false)
	lf, err := w.k.LoadFilter("f", PlaceUser)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.k.Unload(lf); err != nil {
		t.Fatal(err)
	}
	if _, err := w.k.RootView.Bind("/services/f.user"); err == nil {
		t.Fatal("filter still bound after unload")
	}
	// Its domain is gone.
	if w.k.Machine.MMU.HasContext(lf.domain.Ctx) {
		t.Fatal("filter domain survived unload")
	}
}

func TestDomainBindSameDomainIsDirect(t *testing.T) {
	w := newWorld(t)
	d := w.k.NewDomain("app")
	o := obj.New("local", w.k.Meter)
	if err := w.k.Register("/services/local", o, d.Ctx); err != nil {
		t.Fatal(err)
	}
	got, err := d.Bind("/services/local")
	if err != nil {
		t.Fatal(err)
	}
	if got != obj.Instance(o) {
		t.Fatal("same-domain bind returned a proxy")
	}
}

func TestDomainBindCrossDomainIsProxy(t *testing.T) {
	w := newWorld(t)
	server := w.k.NewDomain("server")
	client := w.k.NewDomain("client")

	o := obj.New("svc", w.k.Meter)
	decl := obj.MustInterfaceDecl("s.v1", obj.MethodDecl{Name: "ping", NumIn: 0, NumOut: 1})
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("ping", func(...any) ([]any, error) { return []any{"pong"}, nil })
	if err := w.k.Register("/services/svc", o, server.Ctx); err != nil {
		t.Fatal(err)
	}

	got, err := client.Bind("/services/svc")
	if err != nil {
		t.Fatal(err)
	}
	if got == obj.Instance(o) {
		t.Fatal("cross-domain bind returned the raw instance")
	}
	iv, ok := got.Iface("s.v1")
	if !ok {
		t.Fatal("proxy lost interface")
	}
	res, err := iv.Invoke("ping")
	if err != nil || res[0].(string) != "pong" {
		t.Fatalf("ping = %v, %v", res, err)
	}
	// Binding again reuses the cached proxy.
	again, err := client.Bind("/services/svc")
	if err != nil || again != got {
		t.Fatal("proxy not cached")
	}
}

func TestKernelBindToUserDomain(t *testing.T) {
	w := newWorld(t)
	d := w.k.NewDomain("app")
	o := obj.New("usersvc", w.k.Meter)
	if err := w.k.Register("/services/usersvc", o, d.Ctx); err != nil {
		t.Fatal(err)
	}
	got, err := w.k.KernelBind("/services/usersvc")
	if err != nil {
		t.Fatal(err)
	}
	if got == obj.Instance(o) {
		t.Fatal("kernel got a direct reference into a user domain")
	}
}

func TestViewOverridePerDomain(t *testing.T) {
	// Two domains bind the same path to different implementations via
	// per-domain overrides — the paper's "control the child objects it
	// will import".
	w := newWorld(t)
	real := obj.New("real", w.k.Meter)
	mock := obj.New("mock", w.k.Meter)
	if err := w.k.Register("/services/net", real, mmu.KernelContext); err != nil {
		t.Fatal(err)
	}
	w.k.registerPlacement(mock, mmu.KernelContext)

	normal := w.k.NewDomain("normal")
	debug := w.k.NewDomain("debug")
	if err := debug.View.Override("/services/net", mock); err != nil {
		t.Fatal(err)
	}
	a, err := normal.Bind("/services/net")
	if err != nil {
		t.Fatal(err)
	}
	b, err := debug.Bind("/services/net")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("override did not isolate the debug domain")
	}
}

func TestInterposeAndUnwrap(t *testing.T) {
	w := newWorld(t)
	o := obj.New("target", w.k.Meter)
	decl := obj.MustInterfaceDecl("t.v1", obj.MethodDecl{Name: "f", NumIn: 0, NumOut: 1})
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("f", func(...any) ([]any, error) { return []any{1}, nil })
	if err := w.k.Register("/services/target", o, mmu.KernelContext); err != nil {
		t.Fatal(err)
	}

	calls := 0
	if _, err := w.k.Interpose("/services/target", func(target obj.Instance) (obj.Instance, error) {
		ip := obj.NewInterposer("monitor", target)
		err := ip.Wrap("t.v1", "f", func(next obj.Method, args ...any) ([]any, error) {
			calls++
			return next(args...)
		})
		return ip, err
	}); err != nil {
		t.Fatal(err)
	}

	iv, err := w.k.RootView.BindInterface("/services/target", "t.v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iv.Invoke("f"); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("monitor saw %d calls", calls)
	}

	if err := w.k.Unwrap("/services/target"); err != nil {
		t.Fatal(err)
	}
	iv, err = w.k.RootView.BindInterface("/services/target", "t.v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iv.Invoke("f"); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("unwrap did not remove the monitor")
	}
	if err := w.k.Unwrap("/services/target"); err == nil {
		t.Fatal("double unwrap succeeded")
	}
}

func TestConstructNativeComponent(t *testing.T) {
	w := newWorld(t)
	img := &repoz.Image{Name: "alloc", Kind: repoz.KindNative, Data: []byte("cfg")}
	c, err := w.admin.Certify("alloc", img.Data, cert.PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	img.Cert = c
	if err := w.k.Repo.Add(img); err != nil {
		t.Fatal(err)
	}
	if err := w.k.Repo.RegisterConstructor("alloc", func(data []byte) (obj.Instance, error) {
		return obj.New("alloc", w.k.Meter), nil
	}); err != nil {
		t.Fatal(err)
	}
	inst, ctx, err := w.k.Construct("alloc", "/services/alloc", true)
	if err != nil {
		t.Fatal(err)
	}
	if ctx != mmu.KernelContext {
		t.Fatalf("ctx = %d", ctx)
	}
	if inst.Class() != "alloc" {
		t.Fatal("wrong instance")
	}
}

func TestConstructUncertifiedNativeRefusedFromKernel(t *testing.T) {
	w := newWorld(t)
	if err := w.k.Repo.Add(&repoz.Image{Name: "x", Kind: repoz.KindNative}); err != nil {
		t.Fatal(err)
	}
	if err := w.k.Repo.RegisterConstructor("x", func([]byte) (obj.Instance, error) {
		return obj.New("x", nil), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.k.Construct("x", "/services/x", true); !errors.Is(err, ErrNotCertified) {
		t.Fatalf("uncertified native kernel load: %v", err)
	}
	// User placement works without a certificate.
	if _, ctx, err := w.k.Construct("x", "/services/x", false); err != nil || ctx == mmu.KernelContext {
		t.Fatalf("user construct = ctx %d, %v", ctx, err)
	}
}

func TestDestroyDomain(t *testing.T) {
	w := newWorld(t)
	d := w.k.NewDomain("doomed")
	ctx := d.Ctx
	if err := w.k.DestroyDomain(d); err != nil {
		t.Fatal(err)
	}
	if w.k.Machine.MMU.HasContext(ctx) {
		t.Fatal("context survived")
	}
	if err := w.k.DestroyDomain(d); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("double destroy: %v", err)
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceKernelCertified.String() != "kernel-certified" ||
		PlaceKernelSandboxed.String() != "kernel-sandboxed" ||
		PlaceUser.String() != "user" {
		t.Fatal("placement names")
	}
	if Placement(9).String() != "placement(9)" {
		t.Fatal("unknown placement name")
	}
}

func TestEndToEndSharedStackWithFilterPlacements(t *testing.T) {
	// The full scenario: a shared protocol stack in the kernel, one
	// filter per placement, frames flowing end to end.
	w := newWorld(t)
	w.addFilterImage(t, "portfilter", true)

	lfCert, err := w.k.LoadFilter("portfilter", PlaceKernelCertified)
	if err != nil {
		t.Fatal(err)
	}

	// A stack fed directly (no device needed for this test).
	drv := obj.New("nulldrv", w.k.Meter)
	bi, err := drv.AddInterface(obj.MustInterfaceDecl("paramecium.netdev.v1",
		obj.MethodDecl{Name: "send", NumIn: 1, NumOut: 0},
		obj.MethodDecl{Name: "recv", NumIn: 0, NumOut: 1},
		obj.MethodDecl{Name: "stats", NumIn: 0, NumOut: 3},
	), nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("send", func(...any) ([]any, error) { return nil, nil }).
		MustBind("recv", func(...any) ([]any, error) { return []any{[]byte(nil)}, nil }).
		MustBind("stats", func(...any) ([]any, error) { return []any{uint64(0), uint64(0), uint64(0)}, nil })
	drvIv, _ := drv.Iface("paramecium.netdev.v1")

	stack, err := netstack.NewStack("stack", w.k.Meter, drvIv,
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.IP{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.k.Register("/shared/network", stack, mmu.KernelContext); err != nil {
		t.Fatal(err)
	}
	stack.AttachFilter(lfCert)

	ep, err := stack.Bind(7)
	if err != nil {
		t.Fatal(err)
	}
	stack.Deliver(testFrame(7))
	stack.Deliver(testFrame(9)) // filtered out
	if ep.Len() != 1 {
		t.Fatalf("endpoint has %d datagrams", ep.Len())
	}
	st := stack.Stats()
	if st.Delivered != 1 || st.Filtered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
