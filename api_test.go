// Tests and runnable examples for the public embedding API. This file
// imports only the paramecium and paramecium/api packages, so it
// doubles as proof that the public surface is self-sufficient.
package paramecium_test

import (
	"errors"
	"fmt"
	"testing"

	"paramecium"
	"paramecium/api"
)

// ExampleBoot boots a system, defines a component as an object with a
// named interface, registers it in the name space, and calls it from
// an application domain across the protection boundary.
func ExampleBoot() {
	sys, err := paramecium.Boot()
	if err != nil {
		panic(err)
	}
	decl := api.MustInterfaceDecl("example.adder.v1",
		api.MethodDecl{Name: "add", NumIn: 2, NumOut: 1})
	adder := sys.NewObject("adder")
	bi, err := adder.AddInterface(decl, nil)
	if err != nil {
		panic(err)
	}
	bi.MustBind("add", func(args ...any) ([]any, error) {
		return []any{args[0].(int) + args[1].(int)}, nil
	})
	if err := sys.Register("/services/adder", adder); err != nil {
		panic(err)
	}

	app := sys.NewDomain("app")
	h, err := app.Bind("/services/adder")
	if err != nil {
		panic(err)
	}
	res, err := h.Invoke("example.adder.v1", "add", 2, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("2 + 3 =", res[0])
	// Output: 2 + 3 = 5
}

// ExampleHandle_Resolve shows the bind-once / invoke-many fast path:
// a method is resolved to a handle once, then called repeatedly with
// no per-call name lookup. The handle tracks the slot, so rebinding
// the method later is still observed — late binding is preserved.
func ExampleHandle_Resolve() {
	sys, err := paramecium.Boot()
	if err != nil {
		panic(err)
	}
	decl := api.MustInterfaceDecl("example.counter.v1",
		api.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	counter := sys.NewObject("counter")
	n := 0
	bi, err := counter.AddInterface(decl, &n)
	if err != nil {
		panic(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) { n++; return []any{n}, nil })
	if err := sys.Register("/services/counter", counter); err != nil {
		panic(err)
	}

	h, err := sys.Bind("/services/counter")
	if err != nil {
		panic(err)
	}
	inc, err := h.Resolve("example.counter.v1", "inc")
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := inc.Call(); err != nil {
			panic(err)
		}
	}
	res, _ := inc.Call()
	fmt.Println("count =", res[0])

	// Rebind the slot; the live handle sees the new implementation.
	bi.MustBind("inc", func(...any) ([]any, error) { return []any{-1}, nil })
	res, _ = inc.Call()
	fmt.Println("after rebind =", res[0])
	// Output:
	// count = 4
	// after rebind = -1
}

// errOf normalizes an ([]any, error) pair to its error.
func errOf(_ []any, err error) error { return err }

// TestInvokeHandleErrorAgreement is the regression contract between
// the string-keyed compatibility path and the pre-resolved handle
// path: both must report the same sentinel errors for undeclared
// methods, unbound slots, wrong argument arity, and wrong result
// arity.
func TestInvokeHandleErrorAgreement(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	decl := api.MustInterfaceDecl("test.v1",
		api.MethodDecl{Name: "ok", NumIn: 1, NumOut: 1},
		api.MethodDecl{Name: "unbound", NumIn: 0, NumOut: 0},
		api.MethodDecl{Name: "liar", NumIn: 0, NumOut: 2},
	)
	o := sys.NewObject("probe")
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("ok", func(args ...any) ([]any, error) { return []any{args[0]}, nil }).
		MustBind("liar", func(...any) ([]any, error) { return []any{1}, nil }) // declares 2 results, returns 1
	iv, ok := o.Iface("test.v1")
	if !ok {
		t.Fatal("interface lost")
	}

	// ErrNoMethod: Invoke fails per call, Resolve fails at bind time.
	if err := errOf(iv.Invoke("nope")); !errors.Is(err, api.ErrNoMethod) {
		t.Fatalf("Invoke undeclared = %v, want ErrNoMethod", err)
	}
	if _, err := iv.Resolve("nope"); !errors.Is(err, api.ErrNoMethod) {
		t.Fatalf("Resolve undeclared = %v, want ErrNoMethod", err)
	}

	// The remaining errors must match call-for-call.
	cases := []struct {
		name   string
		method string
		args   []any
		want   error
	}{
		{"unbound slot", "unbound", nil, api.ErrUnbound},
		{"too few args", "ok", nil, api.ErrArity},
		{"too many args", "ok", []any{1, 2}, api.ErrArity},
		{"wrong result count", "liar", nil, api.ErrArity},
	}
	for _, tc := range cases {
		invokeErr := errOf(iv.Invoke(tc.method, tc.args...))
		h, err := iv.Resolve(tc.method)
		if err != nil {
			t.Fatalf("%s: Resolve = %v", tc.name, err)
		}
		callErr := errOf(h.Call(tc.args...))
		if !errors.Is(invokeErr, tc.want) {
			t.Errorf("%s: Invoke = %v, want %v", tc.name, invokeErr, tc.want)
		}
		if !errors.Is(callErr, tc.want) {
			t.Errorf("%s: handle Call = %v, want %v", tc.name, callErr, tc.want)
		}
		if (invokeErr == nil) != (callErr == nil) {
			t.Errorf("%s: paths disagree: Invoke=%v Call=%v", tc.name, invokeErr, callErr)
		}
	}
}

// TestHandleAgreementAcrossProxy re-runs the error contract through a
// cross-domain proxy: the fault-driven path must classify errors
// exactly like a local bound interface.
func TestHandleAgreementAcrossProxy(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	decl := api.MustInterfaceDecl("test.v1",
		api.MethodDecl{Name: "echo", NumIn: 1, NumOut: 1})
	o := sys.NewObject("echo")
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("echo", func(args ...any) ([]any, error) { return []any{args[0]}, nil })

	home := sys.NewDomain("home")
	if err := home.Register("/services/echo", o); err != nil {
		t.Fatal(err)
	}
	client := sys.NewDomain("client")
	h, err := client.Bind("/services/echo")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := h.Resolve("test.v1", "nope"); !errors.Is(err, api.ErrNoMethod) {
		t.Fatalf("proxy Resolve undeclared = %v, want ErrNoMethod", err)
	}
	echo, err := h.Resolve("test.v1", "echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := errOf(echo.Call()); !errors.Is(err, api.ErrArity) {
		t.Fatalf("proxy handle bad arity = %v, want ErrArity", err)
	}
	iv, err := h.Interface("test.v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := errOf(iv.Invoke("echo")); !errors.Is(err, api.ErrArity) {
		t.Fatalf("proxy Invoke bad arity = %v, want ErrArity", err)
	}
	res, err := echo.Call("ping")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "ping" {
		t.Fatalf("proxy handle call = %v", res)
	}
	if err := client.Destroy(); err != nil {
		t.Fatal(err)
	}
}

// TestOptions exercises the functional boot options.
func TestOptions(t *testing.T) {
	costs := paramecium.DefaultCosts()
	sys, err := paramecium.Boot(
		paramecium.WithAuthority(nil),
		paramecium.WithMachine(paramecium.MachineConfig{PhysFrames: 32, Costs: &costs}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cycles() != 0 {
		t.Fatalf("fresh system clock = %d", sys.Cycles())
	}
	o := sys.NewObject("x")
	decl := api.MustInterfaceDecl("x.v1", api.MethodDecl{Name: "f", NumIn: 0, NumOut: 0})
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("f", func(...any) ([]any, error) { return nil, nil })
	if err := sys.Register("/services/x", o); err != nil {
		t.Fatal(err)
	}
	h, err := sys.Bind("/services/x")
	if err != nil {
		t.Fatal(err)
	}
	f, err := h.Resolve("x.v1", "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Call(); err != nil {
		t.Fatal(err)
	}
	if sys.Cycles() == 0 {
		t.Fatal("invocation charged no cycles")
	}
}
