// Package hw simulates the machine Paramecium runs on: N virtual CPUs
// (Config.CPUs; one by default) with trap and interrupt vectors, an MMU
// (package mmu) with per-CPU context registers and TLBs, physical
// memory, I/O spaces and a small set of devices.
//
// The machine is deliberately not an instruction-set simulator.
// Components execute as Go code (or as PVM bytecode, package sandbox),
// but every access to *simulated memory* goes through Load/Store and
// therefore through the MMU, and every privileged transition (trap,
// interrupt, context switch) is charged on the shared cycle meter. This
// is exactly the level of detail the paper's arguments live at: counts
// of protection-boundary crossings, faults and run-time checks.
package hw

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
	"paramecium/internal/mmu"
	"paramecium/internal/probe"
)

// TrapVector identifies a synchronous processor event (trap).
type TrapVector int

// The trap vectors the nucleus knows about. User-defined vectors start
// at TrapUserBase.
const (
	TrapPageFault TrapVector = iota
	TrapSyscall
	TrapDivZero
	TrapIllegal
	TrapBreakpoint
	TrapUserBase TrapVector = 32
)

func (v TrapVector) String() string {
	switch v {
	case TrapPageFault:
		return "page-fault"
	case TrapSyscall:
		return "syscall"
	case TrapDivZero:
		return "div-zero"
	case TrapIllegal:
		return "illegal"
	case TrapBreakpoint:
		return "breakpoint"
	}
	return fmt.Sprintf("trap(%d)", int(v))
}

// IRQLine identifies an interrupt source.
type IRQLine int

// NumIRQLines is the number of interrupt lines on the simulated machine.
const NumIRQLines = 16

// TrapFrame carries the state delivered with a trap or interrupt.
type TrapFrame struct {
	Vector TrapVector
	IRQ    IRQLine
	Ctx    mmu.ContextID
	Addr   mmu.VAddr // faulting address, if any
	Access mmu.Access
	Fault  *mmu.Fault // populated for page-fault traps
	Arg    uint64     // syscall number or device-specific argument
	// Token is a caller-supplied tag threaded from TouchTagged through
	// to the fault handler. Reentrant handlers (the cross-domain proxy)
	// key per-call state on it so concurrent faults on one page find
	// their own call frames. Zero means "untagged access".
	Token uint64
	// CPU is the virtual CPU the trap or interrupt was delivered on.
	// Handlers that switch contexts or charge TLB traffic use it to
	// operate on the right per-CPU MMU state.
	CPU mmu.CPUID
}

// TrapHandler handles a trap or interrupt. The handler for a page fault
// returns true if the fault was resolved and the access should be
// retried.
type TrapHandler func(*TrapFrame) bool

// ErrNoHandler is returned when an event fires with no registered
// handler. On real hardware this would be a fatal watchdog reset.
var ErrNoHandler = errors.New("hw: no handler for event")

// ErrBadIRQ is returned for out-of-range interrupt lines.
var ErrBadIRQ = errors.New("hw: bad IRQ line")

// Machine is the simulated computer.
type Machine struct {
	Meter *clock.Meter
	MMU   *mmu.MMU
	Phys  *mmu.PhysMem

	// cpus are the machine's virtual processors; cpuRR round-robins
	// lease acquisition so concurrent callers spread across them.
	cpus  []*CPU
	cpuRR atomic.Uint64

	// topo is the validated NUMA shape, nil on the default single-node
	// machine (in which case no access is ever charged as remote).
	topo *Topology

	// mu guards the handler tables, device list and IRQ state. The
	// trap hot path (RaiseTrap) only ever read-locks it, so concurrent
	// page faults dispatch in parallel.
	mu         sync.RWMutex
	trapTable  map[TrapVector]TrapHandler
	irqTable   [NumIRQLines]TrapHandler
	irqMasked  [NumIRQLines]bool
	irqPending [NumIRQLines]int
	devices    []Device
	iospaces   map[string]*IORegion

	// stats, atomic: counted on the concurrent fault path.
	trapsDelivered atomic.Uint64
	irqsDelivered  atomic.Uint64
	irqsDropped    atomic.Uint64
	sharedLeases   atomic.Uint64
}

// Config controls machine construction.
type Config struct {
	PhysFrames int        // number of physical frames (0 => 4096)
	MMU        mmu.Config // MMU configuration
	Costs      *clock.CostModel
	// CPUs is the virtual CPU count (0 => 1). It overrides MMU.CPUs:
	// the machine and its MMU always agree on the topology.
	CPUs int
	// Topology is the optional NUMA shape. When set it determines the
	// CPU count (Nodes × CPUsPerNode, overriding CPUs) and enables
	// remote-frame-access charging; a malformed topology panics at
	// construction. Nil is the classic flat machine.
	Topology *Topology
}

// New builds a machine.
func New(cfg Config) *Machine {
	frames := cfg.PhysFrames
	if frames <= 0 {
		frames = 4096
	}
	costs := clock.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	var topo *Topology
	if cfg.Topology != nil {
		var err error
		if topo, err = cfg.Topology.validate(); err != nil {
			panic(err)
		}
	}
	ncpu := cfg.CPUs
	if topo != nil {
		ncpu = topo.NumCPUs()
	}
	if ncpu <= 0 {
		ncpu = cfg.MMU.CPUs
	}
	if ncpu <= 0 {
		ncpu = 1
	}
	mmuCfg := cfg.MMU
	mmuCfg.CPUs = ncpu
	meter := clock.NewMeter(costs)
	m := &Machine{
		Meter:     meter,
		MMU:       mmu.New(meter, mmuCfg),
		Phys:      mmu.NewPhysMem(frames),
		topo:      topo,
		trapTable: make(map[TrapVector]TrapHandler),
		iospaces:  make(map[string]*IORegion),
	}
	m.cpus = make([]*CPU, ncpu)
	for i := range m.cpus {
		m.cpus[i] = &CPU{id: mmu.CPUID(i), m: m}
	}
	return m
}

// SetTrapHandler installs the handler for a trap vector, returning the
// previous handler (nil if none). Passing a nil handler uninstalls.
func (m *Machine) SetTrapHandler(v TrapVector, h TrapHandler) TrapHandler {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.trapTable[v]
	if h == nil {
		delete(m.trapTable, v)
	} else {
		m.trapTable[v] = h
	}
	return prev
}

// SetIRQHandler installs the handler for an interrupt line.
func (m *Machine) SetIRQHandler(line IRQLine, h TrapHandler) (TrapHandler, error) {
	if line < 0 || line >= NumIRQLines {
		return nil, fmt.Errorf("%w: %d", ErrBadIRQ, line)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.irqTable[line]
	m.irqTable[line] = h
	return prev, nil
}

// MaskIRQ disables delivery on a line; raised interrupts are counted as
// pending and delivered when the line is unmasked.
func (m *Machine) MaskIRQ(line IRQLine) error {
	if line < 0 || line >= NumIRQLines {
		return fmt.Errorf("%w: %d", ErrBadIRQ, line)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.irqMasked[line] = true
	return nil
}

// UnmaskIRQ re-enables a line and delivers any pending interrupts.
func (m *Machine) UnmaskIRQ(line IRQLine) error {
	if line < 0 || line >= NumIRQLines {
		return fmt.Errorf("%w: %d", ErrBadIRQ, line)
	}
	m.mu.Lock()
	pending := m.irqPending[line]
	m.irqPending[line] = 0
	m.irqMasked[line] = false
	m.mu.Unlock()
	for i := 0; i < pending; i++ {
		if err := m.RaiseIRQ(line); err != nil {
			return err
		}
	}
	return nil
}

// RaiseTrap delivers a synchronous trap, charging trap entry and exit.
// It returns the handler's verdict (meaningful for page faults) or
// ErrNoHandler.
func (m *Machine) RaiseTrap(frame *TrapFrame) (bool, error) {
	if frame.CPU < 0 || int(frame.CPU) >= len(m.cpus) {
		// Rejected up front: handlers index per-CPU state (delivery
		// locks, context registers) by frame.CPU and would panic on a
		// CPU the machine does not have.
		return false, fmt.Errorf("hw: no CPU %d (machine has %d)", frame.CPU, len(m.cpus))
	}
	m.mu.RLock()
	h := m.trapTable[frame.Vector]
	m.mu.RUnlock()
	m.trapsDelivered.Add(1)
	m.cpus[frame.CPU].traps.Add(1)
	// The trapping context pays for both protection-boundary legs.
	m.Meter.ChargeFor(uint32(frame.Ctx), clock.OpTrapEnter)
	defer m.Meter.ChargeFor(uint32(frame.Ctx), clock.OpTrapExit)
	if probe.Enabled() {
		m.Meter.Emit(int(frame.CPU), probe.KindTrap, uint32(frame.Ctx), uint64(frame.Vector), uint64(frame.Arg))
	}
	if h == nil {
		return false, fmt.Errorf("%w: trap %v", ErrNoHandler, frame.Vector)
	}
	return h(frame), nil
}

// RaiseIRQ delivers an asynchronous interrupt on the given line to the
// boot CPU. Masked lines accumulate pending counts; unhandled lines
// drop the interrupt and count it.
func (m *Machine) RaiseIRQ(line IRQLine) error {
	return m.RaiseIRQOn(line, mmu.BootCPU)
}

// RaiseIRQOn delivers an interrupt on the given line to one CPU: the
// trap frame carries that CPU's ID and active context, so the handler
// runs against the interrupted CPU's MMU state. Concurrent interrupts
// on distinct CPUs dispatch in parallel.
func (m *Machine) RaiseIRQOn(line IRQLine, cpu mmu.CPUID) error {
	if line < 0 || line >= NumIRQLines {
		return fmt.Errorf("%w: %d", ErrBadIRQ, line)
	}
	if cpu < 0 || int(cpu) >= len(m.cpus) {
		return fmt.Errorf("hw: no CPU %d (machine has %d)", cpu, len(m.cpus))
	}
	m.mu.Lock()
	if m.irqMasked[line] {
		m.irqPending[line]++
		m.mu.Unlock()
		return nil
	}
	h := m.irqTable[line]
	if h == nil {
		m.irqsDropped.Add(1)
		m.mu.Unlock()
		return fmt.Errorf("%w: irq %d", ErrNoHandler, line)
	}
	m.irqsDelivered.Add(1)
	m.cpus[cpu].irqs.Add(1)
	m.mu.Unlock()
	m.Meter.Charge(clock.OpInterrupt)
	frame := &TrapFrame{Vector: -1, IRQ: line, Ctx: m.MMU.CurrentOn(cpu), CPU: cpu}
	h(frame)
	return nil
}

// Stats reports delivery counters.
func (m *Machine) Stats() (traps, irqs, dropped uint64) {
	return m.trapsDelivered.Load(), m.irqsDelivered.Load(), m.irqsDropped.Load()
}

// Load reads len(buf) bytes of simulated memory at va in context ctx
// on the boot CPU. Page faults are delivered as traps; if the
// page-fault handler reports the fault resolved, the access is retried
// (once per page). Per-CPU accesses go through CPU.Load.
func (m *Machine) Load(ctx mmu.ContextID, va mmu.VAddr, buf []byte) error {
	return m.accessOn(mmu.BootCPU, ctx, va, buf, mmu.AccessRead)
}

// Store writes buf to simulated memory at va in context ctx on the
// boot CPU.
func (m *Machine) Store(ctx mmu.ContextID, va mmu.VAddr, buf []byte) error {
	return m.accessOn(mmu.BootCPU, ctx, va, buf, mmu.AccessWrite)
}

// Touch performs a zero-length access of the given kind at va on the
// boot CPU: it runs the full translation (and fault) machinery without
// moving data.
func (m *Machine) Touch(ctx mmu.ContextID, va mmu.VAddr, access mmu.Access) error {
	return m.TouchTagged(ctx, va, access, 0)
}

// TouchTagged is Touch with a caller-supplied token delivered in the
// trap frame of any resulting page fault. Proxy invocation uses it
// with AccessExec on interface entry slots: the token keys the call
// frame, so any number of concurrent calls through the same entry page
// each reach their own arguments and results. It runs on the boot CPU;
// CPU.TouchTagged is the per-CPU form.
func (m *Machine) TouchTagged(ctx mmu.ContextID, va mmu.VAddr, access mmu.Access, token uint64) error {
	_, err := m.translateWithFaults(mmu.BootCPU, ctx, va, access, token)
	return err
}

// LoadOn reads len(buf) bytes of simulated memory at va in context ctx
// through the named CPU's MMU state: the initiator-threaded form of
// Load, used wherever the accessing CPU is known (thread execution
// contexts, lease holders).
func (m *Machine) LoadOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, buf []byte) error {
	return m.accessOn(cpu, ctx, va, buf, mmu.AccessRead)
}

// StoreOn writes buf to simulated memory at va in context ctx through
// the named CPU's MMU state.
func (m *Machine) StoreOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, buf []byte) error {
	return m.accessOn(cpu, ctx, va, buf, mmu.AccessWrite)
}

// TouchOn performs a zero-length access of the given kind at va on the
// named CPU: the full translation (and fault) machinery, no data.
func (m *Machine) TouchOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, access mmu.Access) error {
	return m.TouchTaggedOn(cpu, ctx, va, access, 0)
}

// TouchTaggedOn is TouchOn with a caller-supplied token delivered in
// the trap frame of any resulting page fault; see Machine.TouchTagged.
func (m *Machine) TouchTaggedOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, access mmu.Access, token uint64) error {
	_, err := m.translateWithFaults(cpu, ctx, va, access, token)
	return err
}

// accessOn moves buf through the MMU page by page on one CPU: the
// memory-access data plane under every Load/Store.
//
//paramecium:hotpath
func (m *Machine) accessOn(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, buf []byte, kind mmu.Access) error {
	for len(buf) > 0 {
		pa, err := m.translateWithFaults(cpu, ctx, va, kind, 0)
		if err != nil {
			return err
		}
		n := mmu.PageSize - int(va.Offset())
		if n > len(buf) {
			n = len(buf)
		}
		// Charge before touching DRAM: the cost model bills the copy
		// attempt, so the movement below is always pre-paid. The touching
		// context pays for its own memory traffic.
		m.Meter.ChargeNFor(uint32(ctx), clock.OpCopyWord, uint64((n+7)/8))
		if m.topo != nil {
			m.chargeRemote(cpu, ctx, pa)
		}
		if kind == mmu.AccessWrite {
			err = m.Phys.Write(pa, buf[:n])
		} else {
			err = m.Phys.Read(pa, buf[:n])
		}
		if err != nil {
			return err
		}
		buf = buf[n:]
		va += mmu.VAddr(n)
	}
	return nil
}

// trapFramePool recycles the page-fault trap frames the access path
// delivers. Trap delivery is synchronous — "the faulting context is
// suspended until the handler returns" — so once RaiseTrap returns the
// frame is dead and can be reused; pooling it keeps the per-call frame
// allocation off the cross-domain invocation hot path. Handlers must
// not retain a fault frame past their return (asynchronous IRQ frames,
// which pop-up threads may outlive their delivery with, are allocated
// fresh and never pooled).
var trapFramePool = sync.Pool{New: func() any { return new(TrapFrame) }}

// translateWithFaults translates va on one CPU, delivering a
// page-fault trap on failure and retrying once if the handler reports
// the fault resolved. The trap frame carries the CPU, so the handler's
// own crossings and TLB traffic charge against the faulting CPU.
func (m *Machine) translateWithFaults(cpu mmu.CPUID, ctx mmu.ContextID, va mmu.VAddr, kind mmu.Access, token uint64) (mmu.PAddr, error) {
	for attempt := 0; ; attempt++ {
		pa, err := m.MMU.TranslateOn(cpu, ctx, va, kind)
		if err == nil {
			return pa, nil
		}
		var f *mmu.Fault
		if !errors.As(err, &f) {
			return 0, err
		}
		if attempt > 0 {
			// The handler claimed resolution but the fault persists:
			// report it rather than spinning.
			return 0, fmt.Errorf("hw: fault persists after handler: %w", f)
		}
		m.Meter.ChargeFor(uint32(ctx), clock.OpPageFault)
		if probe.Enabled() {
			m.Meter.Emit(int(cpu), probe.KindFault, uint32(ctx), uint64(va), uint64(kind))
		}
		frame := trapFramePool.Get().(*TrapFrame)
		*frame = TrapFrame{
			Vector: TrapPageFault,
			Ctx:    ctx,
			Addr:   va,
			Access: kind,
			Fault:  f,
			Token:  token,
			CPU:    cpu,
		}
		resolved, herr := m.RaiseTrap(frame)
		*frame = TrapFrame{}
		trapFramePool.Put(frame)
		if herr != nil {
			return 0, fmt.Errorf("hw: unhandled page fault: %w", f)
		}
		if !resolved {
			return 0, f
		}
	}
}

// Syscall raises the syscall trap with the given argument, modelling a
// user-to-kernel protected entry. It returns the handler's verdict.
func (m *Machine) Syscall(ctx mmu.ContextID, arg uint64) (bool, error) {
	return m.RaiseTrap(&TrapFrame{Vector: TrapSyscall, Ctx: ctx, Arg: arg})
}

// AttachDevice registers a device and its I/O region, and wires the
// device to the machine for interrupt raising.
func (m *Machine) AttachDevice(d Device) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	region := d.IORegion()
	if region != nil {
		if _, dup := m.iospaces[region.Name]; dup {
			return fmt.Errorf("hw: duplicate I/O region %q", region.Name)
		}
		m.iospaces[region.Name] = region
	}
	m.devices = append(m.devices, d)
	d.attach(m)
	return nil
}

// Device returns an attached device by name, or nil.
func (m *Machine) Device(name string) Device {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, d := range m.devices {
		if d.Name() == name {
			return d
		}
	}
	return nil
}

// Devices returns the attached devices in attach order.
func (m *Machine) Devices() []Device {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Device, len(m.devices))
	copy(out, m.devices)
	return out
}

// IORegionByName returns a registered I/O region.
func (m *Machine) IORegionByName(name string) (*IORegion, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.iospaces[name]
	return r, ok
}
