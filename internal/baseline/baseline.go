// Package baseline implements the comparison system the paper defines
// itself against: a traditional monolithic kernel. Its services are
// fixed at build time (no dynamic loading, no reconfiguration, no
// interposition) and applications reach every service through a trap —
// the classic syscall path with argument copy-in/copy-out.
//
// The experiments use it two ways: as the "trap per call" column of
// the cross-domain invocation comparison (T2), and as the rigid
// alternative whose packet path cannot host application filters at
// all (T5 discussion).
package baseline

import (
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/netstack"
)

// Errors.
var (
	ErrNoService = errors.New("baseline: no such service")
	ErrSealed    = errors.New("baseline: kernel is sealed; services are fixed at build time")
)

// Service is one in-kernel entry point.
type Service func(args ...any) ([]any, error)

// Monolith is the traditional kernel.
type Monolith struct {
	machine *hw.Machine
	meter   *clock.Meter

	mu       sync.Mutex
	sealed   bool
	services map[string]Service
	calls    uint64
}

// New builds an (unsealed) monolithic kernel over the machine.
func New(machine *hw.Machine) *Monolith {
	return &Monolith{
		machine:  machine,
		meter:    machine.Meter,
		services: make(map[string]Service),
	}
}

// AddService installs a service at build time. After Seal, the set is
// immutable — that rigidity is the point of the baseline.
func (m *Monolith) AddService(name string, s Service) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		return ErrSealed
	}
	if s == nil {
		return errors.New("baseline: nil service")
	}
	if _, dup := m.services[name]; dup {
		return fmt.Errorf("baseline: service %q already present", name)
	}
	m.services[name] = s
	return nil
}

// Seal finishes the build; the kernel boots with a fixed service set.
func (m *Monolith) Seal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sealed = true
}

// Sealed reports whether the kernel is sealed.
func (m *Monolith) Sealed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sealed
}

// Syscall invokes a kernel service from application code: trap entry,
// argument copy-in, the service body, result copy-out, trap exit.
func (m *Monolith) Syscall(name string, args ...any) ([]any, error) {
	m.mu.Lock()
	s, ok := m.services[name]
	m.calls++
	m.mu.Unlock()

	m.meter.Charge(clock.OpTrapEnter)
	defer m.meter.Charge(clock.OpTrapExit)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoService, name)
	}
	m.meter.ChargeN(clock.OpCopyWord, wordsOf(args))
	m.meter.Charge(clock.OpIndirect)
	res, err := s(args...)
	m.meter.ChargeN(clock.OpCopyWord, wordsOf(res))
	return res, err
}

// Calls reports total syscalls issued.
func (m *Monolith) Calls() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// wordsOf mirrors the proxy package's argument-size model so the two
// crossing mechanisms are charged on equal terms.
func wordsOf(vals []any) uint64 {
	var bytes uint64
	for _, v := range vals {
		switch x := v.(type) {
		case nil:
			bytes += 8
		case string:
			bytes += uint64(len(x)) + 8
		case []byte:
			bytes += uint64(len(x)) + 8
		case []any:
			bytes += 8 * uint64(len(x))
		default:
			bytes += 8
		}
	}
	return (bytes + 7) / 8
}

// NetPath is the monolith's fixed in-kernel packet path: parsing and a
// single, compiled-in port filter. Applications cannot extend it —
// the closest they get is selecting the port, and anything fancier
// means a syscall per packet to a user-level filter.
type NetPath struct {
	m *Monolith

	mu        sync.Mutex
	port      uint16
	delivered uint64
	dropped   uint64
	queue     [][]byte
}

// NewNetPath builds the fixed packet path with its compiled-in filter
// configured for the given UDP port.
func NewNetPath(m *Monolith, port uint16) *NetPath {
	return &NetPath{m: m, port: port}
}

// Deliver pushes a frame through the fixed kernel path. The built-in
// filter and demultiplexer run in the kernel without any crossing —
// fast, but immutable. Header processing and the payload copy are
// charged on the same terms as the Paramecium stack's.
func (p *NetPath) Deliver(frame []byte) {
	p.m.meter.ChargeN(clock.OpCall, 3)
	p.m.meter.ChargeN(clock.OpCopyWord, uint64(len(frame)+7)/8)
	eth, err := netstack.ParseFrame(frame)
	if err != nil || eth.EtherType != netstack.EtherTypeIP {
		p.drop()
		return
	}
	ip, err := netstack.ParseIP(eth.Payload)
	if err != nil || ip.Proto != netstack.ProtoUDP {
		p.drop()
		return
	}
	udp, err := netstack.ParseUDP(ip.Payload)
	if err != nil {
		p.drop()
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if udp.DstPort != p.port {
		p.dropped++
		return
	}
	p.delivered++
	p.queue = append(p.queue, append([]byte{}, udp.Payload...))
}

// DeliverViaUserFilter is what extensibility costs on the monolith: a
// syscall (to hand the frame to the user filter) per packet before
// the fixed path runs.
func (p *NetPath) DeliverViaUserFilter(frame []byte, filter func([]byte) bool) {
	res, err := p.m.Syscall("netpath.filter_upcall", frame)
	if err != nil || len(res) == 0 {
		p.drop()
		return
	}
	if ok, _ := res[0].(bool); !ok {
		p.drop()
		return
	}
	_ = filter // the upcall service invoked it; parameter documents intent
	p.Deliver(frame)
}

func (p *NetPath) drop() {
	p.mu.Lock()
	p.dropped++
	p.mu.Unlock()
}

// Stats reports delivered and dropped frame counts.
func (p *NetPath) Stats() (delivered, dropped uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delivered, p.dropped
}

// Recv pops the oldest delivered payload.
func (p *NetPath) Recv() ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return nil, false
	}
	b := p.queue[0]
	p.queue = p.queue[1:]
	return b, true
}
