package bench

import (
	"fmt"

	"paramecium/internal/baseline"
	"paramecium/internal/cert"
	"paramecium/internal/clock"
	"paramecium/internal/core"
	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mmu"
	"paramecium/internal/netstack"
	"paramecium/internal/obj"
	"paramecium/internal/threads"
)

const iters = 200

// counterDecl is a minimal interface used by the invocation
// experiments.
var counterDecl = obj.MustInterfaceDecl("bench.counter.v1",
	obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1},
)

func newCounter(w *World) (*obj.Object, *int) {
	o := obj.New("counter", w.K.Meter)
	n := new(int)
	bi, err := o.AddInterface(counterDecl, n)
	if err != nil {
		panic(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) {
		*n++
		return []any{*n}, nil
	})
	return o, n
}

// T1Invocation measures method invocation overhead: direct procedure
// call, object interface call, delegated call, and interposer chains
// of depth 1–4.
func T1Invocation() Table {
	t := Table{
		ID:     "T1",
		Title:  "Method invocation overhead (cycles/call)",
		Claim:  `"a method invocation is usually just a procedure call ... we expect the overhead to be relatively low" (§2)`,
		Header: []string{"variant", "cycles/call", "vs direct"},
	}
	w := NewWorld()

	// Direct procedure call: the compiler-level baseline.
	n := 0
	direct := perOp(w, iters, func() {
		w.K.Meter.Charge(clock.OpCall)
		n++
	})

	o, _ := newCounter(w)
	iv, _ := o.Iface("bench.counter.v1")
	ifaceCall := perOp(w, iters, func() { iv.Invoke("inc") })

	// Pre-resolved handle: same virtual cost as string invocation (the
	// cost model charges the indirect call, not the lookup), but the
	// host-machine lookup and lock disappear — see BenchmarkInvoke*.
	inc, err := iv.Resolve("inc")
	if err != nil {
		panic(err)
	}
	handleCall := perOp(w, iters, func() { inc.Call() })

	// Delegated: front object forwards to the backend through a handle
	// resolved at delegation time.
	front := obj.New("front", w.K.Meter)
	if _, err := front.AddInterface(counterDecl, nil); err != nil {
		panic(err)
	}
	if err := front.Delegate("bench.counter.v1", o); err != nil {
		panic(err)
	}
	fv, _ := front.Iface("bench.counter.v1")
	finc, err := fv.Resolve("inc")
	if err != nil {
		panic(err)
	}
	delegated := perOp(w, iters, func() { finc.Call() })

	t.AddRow("direct procedure call", direct, "1.0x")
	t.AddRow("interface invocation", ifaceCall, ratio(ifaceCall, direct))
	t.AddRow("pre-resolved handle", handleCall, ratio(handleCall, direct))
	t.AddRow("delegated invocation", delegated, ratio(delegated, direct))

	// Interposer chains, each depth calling through a fresh handle.
	var target obj.Instance = o
	for depth := 1; depth <= 4; depth++ {
		ip := obj.NewInterposer(fmt.Sprintf("mon%d", depth), target)
		ip.SetMeter(w.K.Meter)
		if err := ip.Wrap("bench.counter.v1", "inc", func(next obj.Method, args ...any) ([]any, error) {
			return next(args...)
		}); err != nil {
			panic(err)
		}
		target = ip
		tv, _ := target.Iface("bench.counter.v1")
		tinc, err := tv.Resolve("inc")
		if err != nil {
			panic(err)
		}
		c := perOp(w, iters, func() { tinc.Call() })
		t.AddRow(fmt.Sprintf("interposed depth %d", depth), c, ratio(c, direct))
	}
	return t
}

func ratio(a, b uint64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// T2CrossDomain compares invocation across protection regimes for a
// range of argument sizes: same-domain interface call, Paramecium
// fault-driven proxy, and the monolithic kernel's trap-per-call path.
func T2CrossDomain() Table {
	t := Table{
		ID:     "T2",
		Title:  "Cross-domain invocation (cycles/call)",
		Claim:  `cross-domain calls are "implemented using per page fault-handlers" (§3)`,
		Header: []string{"arg bytes", "same-domain", "proxy cross-domain", "monolith syscall"},
	}
	w := NewWorld()

	echoDecl := obj.MustInterfaceDecl("bench.echo.v1",
		obj.MethodDecl{Name: "echo", NumIn: 1, NumOut: 1})
	server := obj.New("echo", w.K.Meter)
	bi, err := server.AddInterface(echoDecl, nil)
	if err != nil {
		panic(err)
	}
	bi.MustBind("echo", func(args ...any) ([]any, error) { return []any{args[0]}, nil })

	serverDom := w.K.NewDomain("server")
	clientDom := w.K.NewDomain("client")
	if err := w.K.Register("/services/echo", server, serverDom.Ctx); err != nil {
		panic(err)
	}
	remote, err := clientDom.BindInterface("/services/echo", "bench.echo.v1")
	if err != nil {
		panic(err)
	}
	local, _ := server.Iface("bench.echo.v1")

	mono := baseline.New(w.K.Machine)
	if err := mono.AddService("echo", func(args ...any) ([]any, error) {
		return []any{args[0]}, nil
	}); err != nil {
		panic(err)
	}
	mono.Seal()

	lecho, err := local.Resolve("echo")
	if err != nil {
		panic(err)
	}
	recho, err := remote.Resolve("echo")
	if err != nil {
		panic(err)
	}
	for _, size := range []int{0, 64, 1024, 4096} {
		arg := make([]byte, size)
		lc := perOp(w, iters, func() { lecho.Call(arg) })
		pc := perOp(w, iters, func() { recho.Call(arg) })
		mc := perOp(w, iters, func() { mono.Syscall("echo", arg) })
		t.AddRow(size, lc, pc, mc)
	}
	t.Notes = append(t.Notes,
		"proxy pays trap + fault decode + 2 context switches + arg/result copy; the monolith pays trap + copy only, but cannot relocate the service")
	return t
}

// interruptRig builds a machine + scheduler + event service with a
// registered handler under the given dispatch policy.
type interruptRig struct {
	machine *hw.Machine
	sched   *threads.Scheduler
	events  *event.Service
	mtx     *threads.Mutex
	q       *threads.Queue
}

func newInterruptRig(d event.Dispatch, blockers bool) *interruptRig {
	machine := hw.New(hw.Config{PhysFrames: 16})
	sched := threads.NewScheduler(machine.Meter)
	events := event.New(machine, sched)
	r := &interruptRig{machine: machine, sched: sched, events: events}
	r.mtx = threads.NewMutex(sched)
	var err error
	r.q, err = threads.NewQueue(sched, 1)
	if err != nil {
		panic(err)
	}
	handler := func(f *hw.TrapFrame, th *threads.Thread) {
		if blockers && th != nil {
			r.mtx.Lock(th)
			r.mtx.Unlock(th)
		}
	}
	if err := events.RegisterIRQ(3, "bench", mmu.KernelContext, d, handler); err != nil {
		panic(err)
	}
	return r
}

// fire delivers one interrupt and runs the system to idle, returning
// the cycles consumed.
func (r *interruptRig) fire() uint64 {
	watch := r.machine.Meter.Clock.StartWatch()
	if err := r.machine.RaiseIRQ(3); err != nil {
		panic(err)
	}
	r.sched.RunUntilIdle()
	return watch.Elapsed()
}

// holdMutex parks a thread holding the rig's mutex (so the next
// proto-thread handler must block and promote); release lets it go.
func (r *interruptRig) holdMutex() {
	r.sched.Spawn("holder", func(th *threads.Thread) {
		r.mtx.Lock(th)
		r.q.Pop(th)
		r.mtx.Unlock(th)
	})
	r.sched.RunUntilIdle()
}

func (r *interruptRig) release() {
	r.q.TryPush(struct{}{})
	r.sched.RunUntilIdle()
}

// T3Interrupt measures interrupt-to-completion cost per dispatch
// policy, including the promotion path.
func T3Interrupt() Table {
	t := Table{
		ID:     "T3",
		Title:  "Interrupt handling cost (cycles/event)",
		Claim:  `proto-threads give "fast interrupt processing of user code with proper thread semantics" (§3)`,
		Header: []string{"dispatch", "handler", "cycles/event"},
	}
	measure := func(d event.Dispatch, blocking bool) uint64 {
		r := newInterruptRig(d, blocking)
		var total uint64
		for i := 0; i < iters; i++ {
			if blocking && d == event.DispatchProto {
				r.holdMutex()
				watch := r.machine.Meter.Clock.StartWatch()
				if err := r.machine.RaiseIRQ(3); err != nil {
					panic(err)
				}
				r.release()
				total += watch.Elapsed()
				continue
			}
			total += r.fire()
		}
		return total / uint64(iters)
	}
	t.AddRow("raw call-back", "non-blocking", measure(event.DispatchRaw, false))
	t.AddRow("proto-thread", "non-blocking (runs inline)", measure(event.DispatchProto, false))
	t.AddRow("proto-thread", "blocking (promoted)", measure(event.DispatchProto, true))
	t.AddRow("eager pop-up thread", "non-blocking", measure(event.DispatchEager, false))
	t.Notes = append(t.Notes,
		"proto non-blocking ~ raw + proto-thread cost; promotion pays thread creation only when the handler actually blocks")
	return t
}

// T4Certification measures load-time validation: image size sweep,
// cache effect, and delegation chain registration by depth.
func T4Certification() Table {
	t := Table{
		ID:     "T4",
		Title:  "Certificate validation cost (cycles)",
		Claim:  `"certificates include a message digest of the component ... validated by the kernel" (§3, §4); cached: "it does not require any further software checks" (§4)`,
		Header: []string{"case", "parameter", "cycles"},
	}
	w := NewWorld()
	meter := w.K.Meter

	for _, size := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		image := make([]byte, size)
		clock.NewRand(uint64(size)).Bytes(image)
		c, err := w.Admin.Certify("img", image, cert.PrivKernelResident)
		if err != nil {
			panic(err)
		}
		watch := meter.Clock.StartWatch()
		if err := w.K.Validator.Validate(image, c, cert.PrivKernelResident); err != nil {
			panic(err)
		}
		cold := watch.Elapsed()
		watch = meter.Clock.StartWatch()
		if err := w.K.Validator.Validate(image, c, cert.PrivKernelResident); err != nil {
			panic(err)
		}
		warm := watch.Elapsed()
		t.AddRow("validate (cold)", fmt.Sprintf("%d KiB image", size/1024), cold)
		t.AddRow("validate (cached)", fmt.Sprintf("%d KiB image", size/1024), warm)
	}

	// Delegation chains: registration cost by depth.
	for depth := 1; depth <= 4; depth++ {
		w2 := NewWorld()
		keys := make([]cert.KeyPair, depth)
		for i := range keys {
			keys[i] = cert.GenerateKey(uint64(4000 + i))
		}
		watch := w2.K.Meter.Clock.StartWatch()
		parent := w2.Auth.Delegate("d0", keys[0].Pub, cert.PrivKernelResident)
		if err := w2.K.Validator.AddDelegation(parent); err != nil {
			panic(err)
		}
		for i := 1; i < depth; i++ {
			d := cert.SubDelegate(parent, keys[i-1], fmt.Sprintf("d%d", i), keys[i].Pub, cert.PrivKernelResident)
			if err := w2.K.Validator.AddDelegation(d); err != nil {
				panic(err)
			}
			parent = d
		}
		t.AddRow("register delegation chain", fmt.Sprintf("depth %d", depth), watch.Elapsed())
	}
	return t
}

// T5FilterPlacement measures per-packet filter cost across the three
// Paramecium placements and the monolith's fixed path.
func T5FilterPlacement() Table {
	t := Table{
		ID:     "T5",
		Title:  "Packet filter placement (cycles/packet)",
		Claim:  `"verifying a certificate at load-time obviates the need for run time fault checks thus allowing components to be more efficient" (§5)`,
		Header: []string{"placement", "cycles/packet", "vs certified"},
	}
	w := NewWorld()
	w.AddPVM("portfilter", netstack.PortFilterProgram(7), true)
	frame := Frame(7, 256)

	costs := map[string]uint64{}
	for _, p := range []core.Placement{core.PlaceKernelCertified, core.PlaceKernelSandboxed, core.PlaceUser} {
		lf, err := w.K.LoadFilter("portfilter", p)
		if err != nil {
			panic(err)
		}
		costs[p.String()] = perOp(w, iters, func() {
			if _, err := lf.Accept(frame); err != nil {
				panic(err)
			}
		})
	}

	mono := baseline.New(w.K.Machine)
	mono.Seal()
	path := baseline.NewNetPath(mono, 7)
	costs["monolith fixed path"] = perOp(w, iters, func() { path.Deliver(frame) })

	certified := costs[core.PlaceKernelCertified.String()]
	for _, name := range []string{
		core.PlaceKernelCertified.String(),
		core.PlaceKernelSandboxed.String(),
		"monolith fixed path",
		core.PlaceUser.String(),
	} {
		t.AddRow(name, costs[name], ratio(costs[name], certified))
	}
	t.Notes = append(t.Notes,
		"the monolith's path is native (no interpretation) but admits no application filters; Paramecium certified matches its structure while staying extensible")
	return t
}

// T6Reconfiguration measures the dynamic-configuration primitives.
func T6Reconfiguration() Table {
	t := Table{
		ID:     "T6",
		Title:  "Reconfiguration primitives (cycles/op)",
		Claim:  `"late binding and dynamic loading to instantiate components at run time" (§1); interposition "is trivial" (§2)`,
		Header: []string{"operation", "cycles"},
	}
	w := NewWorld()
	w.AddPVM("f", netstack.PortFilterProgram(7), true)

	watch := w.K.Meter.Clock.StartWatch()
	lf, err := w.K.LoadFilter("f", core.PlaceKernelCertified)
	if err != nil {
		panic(err)
	}
	t.AddRow("dynamic load (cold, incl. validation)", watch.Elapsed())
	if err := w.K.Unload(lf); err == nil {
		watch = w.K.Meter.Clock.StartWatch()
		if _, err := w.K.LoadFilter("f", core.PlaceKernelCertified); err != nil {
			panic(err)
		}
		t.AddRow("dynamic load (warm, cached validation)", watch.Elapsed())
	}

	path := "/services/f." + core.PlaceKernelCertified.String()
	bindCost := perOp(w, iters, func() {
		if _, err := w.K.RootView.Bind(path); err != nil {
			panic(err)
		}
	})
	t.AddRow("name-space bind", bindCost)

	watch = w.K.Meter.Clock.StartWatch()
	if _, err := w.K.Interpose(path, func(target obj.Instance) (obj.Instance, error) {
		return obj.NewInterposer("monitor", target), nil
	}); err != nil {
		panic(err)
	}
	t.AddRow("interpose (handle replacement)", watch.Elapsed())

	watch = w.K.Meter.Clock.StartWatch()
	if err := w.K.Unwrap(path); err != nil {
		panic(err)
	}
	t.AddRow("unwrap interposer", watch.Elapsed())

	dom := w.K.NewDomain("app")
	mock := obj.New("mock", w.K.Meter)
	watch = w.K.Meter.Clock.StartWatch()
	if err := dom.View.Override(path, mock); err != nil {
		panic(err)
	}
	t.AddRow("install per-domain override", watch.Elapsed())
	return t
}

// F1Throughput derives delivered-vs-offered curves for the three
// filter placements from measured per-packet full-path cost
// (filter + stack parse + demux).
func F1Throughput() Table {
	t := Table{
		ID:     "F1",
		Title:  "Delivered throughput vs offered load (packets per Mcycle)",
		Claim:  `shared-driver motivation: application filters in a shared network driver (§1)`,
		Header: []string{"offered", "certified", "sandboxed", "user-level"},
	}
	w := NewWorld()
	w.AddPVM("portfilter", netstack.PortFilterProgram(7), true)
	frame := Frame(7, 256)

	// Measure the full receive path per placement: filter + parse.
	perPacket := map[core.Placement]uint64{}
	for _, p := range []core.Placement{core.PlaceKernelCertified, core.PlaceKernelSandboxed, core.PlaceUser} {
		lf, err := w.K.LoadFilter("portfilter", p)
		if err != nil {
			panic(err)
		}
		drv := nullDriver(w)
		stack, err := netstack.NewStack("stack-"+p.String(), w.K.Meter, drv,
			netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.IP{10, 0, 0, 1})
		if err != nil {
			panic(err)
		}
		stack.AttachFilter(lf)
		if _, err := stack.Bind(7); err != nil {
			panic(err)
		}
		perPacket[p] = perOp(w, iters, func() { stack.Deliver(frame) })
	}

	// Saturation curve: delivered = min(offered, capacity). Offered
	// rates span from below the slowest placement's capacity (all
	// keep up) to beyond the fastest's (all saturated).
	capacity := func(p core.Placement) float64 { return 1e6 / float64(perPacket[p]) }
	userCap := capacity(core.PlaceUser)
	certCap := capacity(core.PlaceKernelCertified)
	offeredRates := []float64{
		0.5 * userCap, 0.9 * userCap, 1.5 * userCap,
		0.9 * capacity(core.PlaceKernelSandboxed),
		0.9 * certCap, 1.2 * certCap,
	}
	for _, offered := range offeredRates {
		row := []any{offered}
		for _, p := range []core.Placement{core.PlaceKernelCertified, core.PlaceKernelSandboxed, core.PlaceUser} {
			row = append(row, min2(offered, capacity(p)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured per-packet cycles: certified=%d sandboxed=%d user=%d",
			perPacket[core.PlaceKernelCertified], perPacket[core.PlaceKernelSandboxed], perPacket[core.PlaceUser]),
		"delivered = min(offered, 1e6/per-packet): each placement saturates at its measured capacity")
	return t
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// nullDriver builds an empty netdev object (the F1 stack is fed via
// Deliver, not the driver).
func nullDriver(w *World) obj.Invoker {
	drv := obj.New("nulldrv", w.K.Meter)
	bi, err := drv.AddInterface(obj.MustInterfaceDecl("paramecium.netdev.v1",
		obj.MethodDecl{Name: "send", NumIn: 1, NumOut: 0},
		obj.MethodDecl{Name: "recv", NumIn: 0, NumOut: 1},
		obj.MethodDecl{Name: "stats", NumIn: 0, NumOut: 3},
	), nil)
	if err != nil {
		panic(err)
	}
	bi.MustBind("send", func(...any) ([]any, error) { return nil, nil }).
		MustBind("recv", func(...any) ([]any, error) { return []any{[]byte(nil)}, nil }).
		MustBind("stats", func(...any) ([]any, error) { return []any{uint64(0), uint64(0), uint64(0)}, nil })
	iv, _ := drv.Iface("paramecium.netdev.v1")
	return iv
}

// F2BreakEven computes the invocation count at which paying the
// one-time certification validation beats per-call SFI overhead, as a
// function of filter complexity.
func F2BreakEven() Table {
	t := Table{
		ID:     "F2",
		Title:  "Certification break-even vs filter complexity",
		Claim:  `certification "is efficient ... all run time checks can then be omitted" (§4)`,
		Header: []string{"filter work (bytes summed)", "validate cycles", "cert cycles/pkt", "sfi cycles/pkt", "break-even packets"},
	}
	frame := Frame(7, 1024)
	for _, work := range []int{0, 64, 256, 1024} {
		w := NewWorld()
		src := netstack.PortFilterProgram(7)
		if work > 0 {
			src = netstack.WorkFilterProgram(7, work)
		}
		w.AddPVM("f", src, true)

		img, err := w.K.Repo.Get("f")
		if err != nil {
			panic(err)
		}
		watch := w.K.Meter.Clock.StartWatch()
		if err := w.K.Validator.Validate(img.Data, img.Cert, cert.PrivKernelResident); err != nil {
			panic(err)
		}
		validate := watch.Elapsed()
		w.K.Validator.InvalidateCache()

		lfC, err := w.K.LoadFilter("f", core.PlaceKernelCertified)
		if err != nil {
			panic(err)
		}
		lfS, err := w.K.LoadFilter("f", core.PlaceKernelSandboxed)
		if err != nil {
			panic(err)
		}
		certCost := perOp(w, iters, func() { lfC.Accept(frame) })
		sfiCost := perOp(w, iters, func() { lfS.Accept(frame) })

		breakEven := "never"
		if sfiCost > certCost {
			breakEven = fmt.Sprint(validate/(sfiCost-certCost) + 1)
		}
		t.AddRow(work, validate, certCost, sfiCost, breakEven)
	}
	t.Notes = append(t.Notes,
		"break-even = validation cycles / per-packet saving; more filter work per packet amortizes certification sooner")
	return t
}

// F3BlockingFraction measures interrupt cost for proto vs eager
// dispatch as the fraction of handlers that block varies.
func F3BlockingFraction() Table {
	t := Table{
		ID:     "F3",
		Title:  "Interrupt cost vs blocking fraction (cycles/event)",
		Claim:  `"only when the proto-thread is about to block or be rescheduled do we turn it into a real thread" (§3)`,
		Header: []string{"% handlers blocking", "proto-thread", "eager pop-up", "proto saving"},
	}
	const events = 100
	for _, pct := range []int{0, 25, 50, 75, 100} {
		proto := runBlockingMix(event.DispatchProto, pct, events)
		eager := runBlockingMix(event.DispatchEager, pct, events)
		saving := "-"
		if eager > proto {
			saving = fmt.Sprintf("%.0f%%", 100*float64(eager-proto)/float64(eager))
		}
		t.AddRow(pct, proto, eager, saving)
	}
	t.Notes = append(t.Notes,
		"proto wins by the full thread-creation cost on non-blocking events and converges toward eager as every handler blocks")
	return t
}

// runBlockingMix delivers events of which pct% block on a held mutex,
// returning average cycles per event.
func runBlockingMix(d event.Dispatch, pct, events int) uint64 {
	machine := hw.New(hw.Config{PhysFrames: 16})
	sched := threads.NewScheduler(machine.Meter)
	evts := event.New(machine, sched)
	mtx := threads.NewMutex(sched)
	q, err := threads.NewQueue(sched, 1)
	if err != nil {
		panic(err)
	}
	shouldBlock := false
	if err := evts.RegisterIRQ(3, "mix", mmu.KernelContext, d, func(f *hw.TrapFrame, th *threads.Thread) {
		if shouldBlock && th != nil {
			mtx.Lock(th)
			mtx.Unlock(th)
		}
	}); err != nil {
		panic(err)
	}
	rand := clock.NewRand(42)
	watch := machine.Meter.Clock.StartWatch()
	for i := 0; i < events; i++ {
		shouldBlock = rand.Intn(100) < pct
		if shouldBlock {
			// Park a holder so a blocking handler really blocks.
			sched.Spawn("holder", func(th *threads.Thread) {
				mtx.Lock(th)
				q.Pop(th)
				mtx.Unlock(th)
			})
			sched.RunUntilIdle()
			if err := machine.RaiseIRQ(3); err != nil {
				panic(err)
			}
			q.TryPush(struct{}{})
			sched.RunUntilIdle()
			continue
		}
		if err := machine.RaiseIRQ(3); err != nil {
			panic(err)
		}
		sched.RunUntilIdle()
	}
	return watch.Elapsed() / uint64(events)
}

// F4Namespace measures lookup cost vs path depth and override/alias
// configurations.
func F4Namespace() Table {
	t := Table{
		ID:     "F4",
		Title:  "Name-space lookup cost (cycles/bind)",
		Claim:  `instance naming and overrides make reconfiguration cheap (§2)`,
		Header: []string{"case", "cycles/bind"},
	}
	w := NewWorld()
	target := obj.New("leaf", w.K.Meter)

	// pathAt builds a non-overlapping path of the given depth:
	// /n<depth>/c0/c1/... (depth components total).
	pathAt := func(depth int) string {
		path := fmt.Sprintf("/n%d", depth)
		for i := 1; i < depth; i++ {
			path += fmt.Sprintf("/c%d", i)
		}
		return path
	}
	for _, depth := range []int{1, 2, 4, 8} {
		path := pathAt(depth)
		if err := w.K.Space.Register(path, target); err != nil {
			panic(err)
		}
		c := perOp(w, iters, func() {
			if _, err := w.K.RootView.Bind(path); err != nil {
				panic(err)
			}
		})
		t.AddRow(fmt.Sprintf("depth %d, direct", depth), c)
	}

	// Override hit: constant cost regardless of path depth.
	deep := pathAt(8)
	v := w.K.RootView.Child()
	if err := v.Override(deep, target); err != nil {
		panic(err)
	}
	c := perOp(w, iters, func() {
		if _, err := v.Bind(deep); err != nil {
			panic(err)
		}
	})
	t.AddRow("depth 8, override hit", c)

	// Alias chain: one redirect then the real lookup.
	v2 := w.K.RootView.Child()
	if err := v2.Alias("/short", pathAt(1)); err != nil {
		panic(err)
	}
	c = perOp(w, iters, func() {
		if _, err := v2.Bind("/short"); err != nil {
			panic(err)
		}
	})
	t.AddRow("alias -> depth 1", c)
	return t
}

// F5TrapCostSweep is the ablation: cross-domain proxy call cost as the
// hardware trap and context-switch costs vary, plus the
// TLB-flush-on-switch configuration.
func F5TrapCostSweep() Table {
	t := Table{
		ID:     "F5",
		Title:  "Proxy call cost vs hardware cost model (cycles/call)",
		Claim:  `fault-driven proxies inherit the hardware's trap/switch costs (§3, ablation)`,
		Header: []string{"trap cost", "ctx-switch cost", "tlb", "cycles/call"},
	}
	for _, trapCost := range []uint64{60, 120, 300, 600} {
		for _, switchCost := range []uint64{100, 200, 400} {
			for _, flush := range []bool{false, true} {
				costs := clock.DefaultCosts().
					WithCost(clock.OpTrapEnter, trapCost).
					WithCost(clock.OpCtxSwitch, switchCost)
				c := measureProxyCall(costs, flush)
				tlb := "asid"
				if flush {
					tlb = "flush"
				}
				t.AddRow(trapCost, switchCost, tlb, c)
			}
		}
	}
	t.Notes = append(t.Notes,
		"rows sweep the simulated SPARC's privileged-operation costs; flush = TLB flushed on every context switch (no ASIDs), which adds refill misses to every call that touches domain memory")
	return t
}

// measureProxyCall builds a two-domain echo service under the given
// cost model and measures one cross-domain call that also touches a
// page of domain memory (so TLB policy matters). The server's touch
// goes through the boot CPU deliberately: this single-CPU experiment
// sweeps trap/switch/TLB costs, and one fixed TLB keeps the refill
// pattern comparable across cost models.
func measureProxyCall(costs clock.CostModel, flushOnSwitch bool) uint64 {
	auth := cert.NewAuthority(0xB007)
	k, err := core.Boot(core.Config{
		AuthorityKey: auth.PublicKey(),
		Machine: hw.Config{
			PhysFrames: 64,
			Costs:      &costs,
			MMU:        mmu.Config{FlushOnSwitch: flushOnSwitch, TLBSize: 16},
		},
	})
	if err != nil {
		panic(err)
	}
	serverDom := k.NewDomain("server")
	clientDom := k.NewDomain("client")

	// Server touches its own memory per call (a page of state).
	if err := k.Mem.AllocPage(serverDom.Ctx, 0x10000, mmu.PermRead|mmu.PermWrite); err != nil {
		panic(err)
	}
	decl := obj.MustInterfaceDecl("bench.touch.v1", obj.MethodDecl{Name: "touch", NumIn: 0, NumOut: 0})
	server := obj.New("toucher", k.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 64)
	bi.MustBind("touch", func(...any) ([]any, error) {
		return nil, k.Machine.Load(serverDom.Ctx, 0x10000, buf)
	})
	if err := k.Register("/services/touch", server, serverDom.Ctx); err != nil {
		panic(err)
	}
	touch, err := clientDom.ResolveMethod("/services/touch", "bench.touch.v1", "touch")
	if err != nil {
		panic(err)
	}
	// Warm up, then measure.
	if _, err := touch.Call(); err != nil {
		panic(err)
	}
	watch := k.Meter.Clock.StartWatch()
	for i := 0; i < iters; i++ {
		if _, err := touch.Call(); err != nil {
			panic(err)
		}
	}
	return watch.Elapsed() / uint64(iters)
}
