package cert

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/clock"
)

// AuthorityName is the issuer name of the root certification
// authority.
const AuthorityName = "authority"

// Authority is the root of trust. It never certifies components
// directly; it only issues delegations (possibly chained).
type Authority struct {
	key KeyPair
}

// NewAuthority creates a root authority with a deterministic key.
func NewAuthority(seed uint64) *Authority {
	return &Authority{key: GenerateKey(seed)}
}

// PublicKey returns the authority's verification key, which the
// kernel's validator is configured with at boot.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.key.Pub }

// Delegate issues a delegation for a subordinate key, bounded by
// maxPriv.
func (a *Authority) Delegate(name string, key ed25519.PublicKey, maxPriv Privilege) *Delegation {
	d := &Delegation{Delegate: name, Key: key, MaxPrivilege: maxPriv, Issuer: AuthorityName}
	d.Signature = a.key.Sign(d.SigningBytes())
	return d
}

// SubDelegate lets an existing delegate (holding parentKey, named in
// parent) issue a further delegation, forming a chain. The
// sub-delegation cannot exceed the parent's own privilege mask — the
// validator enforces monotonicity when walking the chain.
func SubDelegate(parent *Delegation, parentKey KeyPair, name string, key ed25519.PublicKey, maxPriv Privilege) *Delegation {
	d := &Delegation{Delegate: name, Key: key, MaxPrivilege: maxPriv, Issuer: parent.Delegate}
	d.Signature = ed25519.Sign(parentKey.Priv, d.SigningBytes())
	return d
}

// Validation errors.
var (
	ErrDigestMismatch  = errors.New("cert: image digest does not match certificate")
	ErrBadSignature    = errors.New("cert: signature verification failed")
	ErrUnknownIssuer   = errors.New("cert: issuer has no registered delegation")
	ErrPrivilegeExcess = errors.New("cert: certificate grants more than the delegate may")
	ErrChainTooDeep    = errors.New("cert: delegation chain too deep")
	ErrInsufficient    = errors.New("cert: certificate lacks a required privilege")
)

// MaxChainDepth bounds delegation chain walks.
const MaxChainDepth = 8

// Validator is the kernel-resident checker: it holds the authority's
// public key, the set of delegations presented at boot or load time,
// and a digest-keyed cache of validation results. "After a
// component's certificate is validated by the kernel it does not
// require any further software checks" — the cache is what makes
// reloading a certified component nearly free.
type Validator struct {
	meter        *clock.Meter
	authorityKey ed25519.PublicKey

	mu          sync.RWMutex
	delegations map[string]*Delegation // by delegate name
	cache       map[Digest]Privilege   // validated digest -> privilege
	cacheHits   uint64
	cacheMisses uint64
}

// NewValidator builds a validator trusting the given authority key.
func NewValidator(meter *clock.Meter, authorityKey ed25519.PublicKey) *Validator {
	return &Validator{
		meter:        meter,
		authorityKey: authorityKey,
		delegations:  make(map[string]*Delegation),
		cache:        make(map[Digest]Privilege),
	}
}

// AddDelegation registers a delegation after verifying its own chain
// of signatures back to the authority.
func (v *Validator) AddDelegation(d *Delegation) error {
	if err := v.verifyDelegation(d, 0); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.delegations[d.Delegate] = d
	return nil
}

// verifyDelegation checks the signature on d and, recursively, on its
// issuer chain, enforcing privilege monotonicity.
func (v *Validator) verifyDelegation(d *Delegation, depth int) error {
	if depth >= MaxChainDepth {
		return ErrChainTooDeep
	}
	msg := d.SigningBytes()
	if d.Issuer == AuthorityName || d.Issuer == "" {
		v.chargeVerify()
		if !ed25519.Verify(v.authorityKey, msg, d.Signature) {
			return fmt.Errorf("%w: delegation %q by authority", ErrBadSignature, d.Delegate)
		}
		return nil
	}
	v.mu.RLock()
	parent, ok := v.delegations[d.Issuer]
	v.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q (issuing %q)", ErrUnknownIssuer, d.Issuer, d.Delegate)
	}
	if !parent.MaxPrivilege.Has(d.MaxPrivilege) {
		return fmt.Errorf("%w: %q grants %v beyond parent %q's %v",
			ErrPrivilegeExcess, d.Delegate, d.MaxPrivilege, parent.Delegate, parent.MaxPrivilege)
	}
	v.chargeVerify()
	if !ed25519.Verify(parent.Key, msg, d.Signature) {
		return fmt.Errorf("%w: delegation %q by %q", ErrBadSignature, d.Delegate, d.Issuer)
	}
	// The parent was verified when it was added; stop here. (Chains
	// deeper than one level are built by adding each link in order.)
	return nil
}

// ChainDepth reports how many delegation links lie between the named
// delegate and the authority (1 for a direct delegate). It returns 0
// for unknown delegates.
func (v *Validator) ChainDepth(delegate string) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	depth := 0
	name := delegate
	for depth < MaxChainDepth {
		d, ok := v.delegations[name]
		if !ok {
			return 0
		}
		depth++
		if d.Issuer == AuthorityName || d.Issuer == "" {
			return depth
		}
		name = d.Issuer
	}
	return depth
}

func (v *Validator) chargeVerify() {
	if v.meter != nil {
		v.meter.Charge(clock.OpSigVerify)
	}
}

// Validate checks that cert covers image and carries at least the
// required privileges. On success the digest is cached so that
// subsequent loads of the same image skip all cryptography.
func (v *Validator) Validate(image []byte, c *Certificate, required Privilege) error {
	digest := DigestImage(v.meter, image)
	if digest != c.Digest {
		return fmt.Errorf("%w: component %q", ErrDigestMismatch, c.Component)
	}

	v.mu.RLock()
	cached, hit := v.cache[digest]
	v.mu.RUnlock()
	if hit {
		v.mu.Lock()
		v.cacheHits++
		v.mu.Unlock()
		if !cached.Has(required) {
			return fmt.Errorf("%w: cached %v, need %v", ErrInsufficient, cached, required)
		}
		return nil
	}
	v.mu.Lock()
	v.cacheMisses++
	v.mu.Unlock()

	v.mu.RLock()
	deleg, ok := v.delegations[c.Issuer]
	v.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownIssuer, c.Issuer)
	}
	if !deleg.MaxPrivilege.Has(c.Privilege) {
		return fmt.Errorf("%w: cert grants %v, delegate %q limited to %v",
			ErrPrivilegeExcess, c.Privilege, deleg.Delegate, deleg.MaxPrivilege)
	}
	v.chargeVerify()
	if !ed25519.Verify(deleg.Key, c.SigningBytes(), c.Signature) {
		return fmt.Errorf("%w: certificate for %q by %q", ErrBadSignature, c.Component, c.Issuer)
	}
	if !c.Privilege.Has(required) {
		return fmt.Errorf("%w: cert grants %v, need %v", ErrInsufficient, c.Privilege, required)
	}

	v.mu.Lock()
	v.cache[digest] = c.Privilege
	v.mu.Unlock()
	return nil
}

// CacheStats reports validation-cache hits and misses.
func (v *Validator) CacheStats() (hits, misses uint64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.cacheHits, v.cacheMisses
}

// InvalidateCache drops all cached validations (e.g. after key
// revocation).
func (v *Validator) InvalidateCache() {
	v.mu.Lock()
	defer v.mu.Unlock()
	clear(v.cache)
}
