package sandbox

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses PVM assembler text into a program. The syntax is one
// instruction per line, with ';' or '#' comments and optional
// "label:" definitions; jump targets may be labels or absolute
// instruction indices.
//
//	; accept frames longer than 64 bytes
//	        loadi r1, 64
//	        ld64  r2, [r0+0]      ; packet length word
//	        jlt   r2, r1, drop
//	        loadi r0, 1
//	        halt  r0
//	drop:   loadi r0, 0
//	        halt  r0
func Assemble(src string) (Program, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	var prog Program
	labels := make(map[string]int)
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, fmt.Errorf("sandbox: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("sandbox: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		ins, labelRef, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("sandbox: line %d: %w", lineNo+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{instr: len(prog), label: labelRef, line: lineNo + 1})
		}
		prog = append(prog, ins)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("sandbox: line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instr].Imm = int64(target)
	}
	return prog, nil
}

// MustAssemble is Assemble that panics on error, for tests and
// built-in programs.
func MustAssemble(src string) Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders a program as assembler text.
func Disassemble(p Program) string {
	var b strings.Builder
	for i, ins := range p {
		fmt.Fprintf(&b, "%4d: %s\n", i, ins)
	}
	return b.String()
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseInstr(line string) (Instr, string, error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToLower(fields[0])
	argStr := strings.Join(fields[1:], " ")
	args := splitArgs(argStr)

	switch mnemonic {
	case "halt":
		r, err := reg(args, 0)
		return Instr{Op: OpHalt, A: r}, "", err
	case "loadi":
		r, err := reg(args, 0)
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := imm(args, 1)
		return Instr{Op: OpLoadI, A: r, Imm: imm}, "", err
	case "mov":
		a, err := reg(args, 0)
		if err != nil {
			return Instr{}, "", err
		}
		b, err := reg(args, 1)
		return Instr{Op: OpMov, A: a, B: b}, "", err
	case "add", "sub", "mul", "and", "or", "xor", "shl", "shr":
		ops := map[string]Opcode{"add": OpAdd, "sub": OpSub, "mul": OpMul,
			"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr}
		a, err := reg(args, 0)
		if err != nil {
			return Instr{}, "", err
		}
		b, err := reg(args, 1)
		if err != nil {
			return Instr{}, "", err
		}
		c, err := reg(args, 2)
		return Instr{Op: ops[mnemonic], A: a, B: b, C: c}, "", err
	case "addi":
		a, err := reg(args, 0)
		if err != nil {
			return Instr{}, "", err
		}
		b, err := reg(args, 1)
		if err != nil {
			return Instr{}, "", err
		}
		v, err := imm(args, 2)
		return Instr{Op: OpAddI, A: a, B: b, Imm: v}, "", err
	case "ld8", "ld16", "ld32", "ld64":
		ops := map[string]Opcode{"ld8": OpLd8, "ld16": OpLd16, "ld32": OpLd32, "ld64": OpLd64}
		a, err := reg(args, 0)
		if err != nil {
			return Instr{}, "", err
		}
		b, off, err := memOperand(args, 1)
		return Instr{Op: ops[mnemonic], A: a, B: b, Imm: off}, "", err
	case "st8", "st16", "st32", "st64":
		ops := map[string]Opcode{"st8": OpSt8, "st16": OpSt16, "st32": OpSt32, "st64": OpSt64}
		b, off, err := memOperand(args, 0)
		if err != nil {
			return Instr{}, "", err
		}
		a, err := reg(args, 1)
		return Instr{Op: ops[mnemonic], A: a, B: b, Imm: off}, "", err
	case "jmp":
		if len(args) != 1 {
			return Instr{}, "", fmt.Errorf("jmp takes one target, got %q", argStr)
		}
		if n, err := strconv.ParseInt(args[0], 0, 64); err == nil {
			return Instr{Op: OpJmp, Imm: n}, "", nil
		}
		return Instr{Op: OpJmp}, args[0], nil
	case "jeq", "jne", "jlt", "jge":
		ops := map[string]Opcode{"jeq": OpJeq, "jne": OpJne, "jlt": OpJlt, "jge": OpJge}
		a, err := reg(args, 0)
		if err != nil {
			return Instr{}, "", err
		}
		b, err := reg(args, 1)
		if err != nil {
			return Instr{}, "", err
		}
		if len(args) < 3 {
			return Instr{}, "", fmt.Errorf("%s needs a target", mnemonic)
		}
		if n, err := strconv.ParseInt(args[2], 0, 64); err == nil {
			return Instr{Op: ops[mnemonic], A: a, B: b, Imm: n}, "", nil
		}
		return Instr{Op: ops[mnemonic], A: a, B: b}, args[2], nil
	}
	return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func reg(args []string, i int) (uint8, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing register operand %d", i)
	}
	a := strings.ToLower(args[i])
	if !strings.HasPrefix(a, "r") {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	n, err := strconv.Atoi(a[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	return uint8(n), nil
}

func imm(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing immediate operand %d", i)
	}
	n, err := strconv.ParseInt(args[i], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", args[i])
	}
	return n, nil
}

// memOperand parses "[rN+off]" or "[rN]".
func memOperand(args []string, i int) (uint8, int64, error) {
	if i >= len(args) {
		return 0, 0, fmt.Errorf("missing memory operand %d", i)
	}
	a := args[i]
	if !strings.HasPrefix(a, "[") || !strings.HasSuffix(a, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", a)
	}
	inner := strings.TrimSpace(a[1 : len(a)-1])
	base := inner
	off := int64(0)
	if j := strings.IndexAny(inner, "+-"); j > 0 {
		base = strings.TrimSpace(inner[:j])
		n, err := strconv.ParseInt(strings.ReplaceAll(inner[j:], " ", ""), 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", a)
		}
		off = n
	}
	r, err := reg([]string{base}, 0)
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}
