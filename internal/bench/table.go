// Package bench is the experiment harness: one function per
// claim-derived table or figure (see DESIGN.md §4), each returning a
// Table of deterministic virtual-cycle measurements. The same
// functions back the root-level testing.B benchmarks and the
// cmd/benchtab executable that regenerates every experiment as text.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string // experiment id, e.g. "T1"
	Title  string
	Claim  string // the paper sentence this operationalizes
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cols ...any) {
	row := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment and returns the tables in report order.
func All() []Table {
	return []Table{
		T1Invocation(),
		T2CrossDomain(),
		T3Interrupt(),
		T4Certification(),
		T5FilterPlacement(),
		T6Reconfiguration(),
		F1Throughput(),
		F2BreakEven(),
		F3BlockingFraction(),
		F4Namespace(),
		F5TrapCostSweep(),
	}
}
