package bench

import (
	"fmt"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// P5BatchSweep sweeps the vectored invocation plane's batch size,
// reporting deterministic virtual cycles per invocation. A vectored
// call carries N pre-resolved invocations across the protection
// boundary in ONE crossing — one trap, one page fault, one
// context-switch pair — then pays only a small decode cost per entry,
// so the per-invocation cost falls hyperbolically toward the
// per-entry floor. The break-even column shows the amortization
// factor against issuing the same calls one at a time.
//
// Unlike the rest of the P-series this experiment is deterministic
// (virtual cycles, not host wall-clock): batching is a cost-model
// property, not a host-parallelism property.
func P5BatchSweep() Table {
	t := Table{
		ID:     "P5",
		Title:  "Vectored cross-domain invocation: batch-size sweep (virtual cycles per invocation)",
		Claim:  `batching many invocations into one crossing amortizes the trap and context-switch cost, the classic active-message vectoring, making many small domains affordable for high-throughput clients`,
		Header: []string{"batch size", "cycles/invocation", "vs single call", "crossing share"},
	}
	// The fixed cost one crossing pays regardless of batch size: trap
	// entry/exit, fault decode, and the context-switch pair.
	costs := clock.DefaultCosts()
	fixed := float64(costs.Cost(clock.OpTrapEnter) + costs.Cost(clock.OpTrapExit) +
		costs.Cost(clock.OpPageFault) + 2*costs.Cost(clock.OpCtxSwitch))
	single := float64(0)
	for _, size := range []int{1, 2, 4, 8, 16, 32, 64} {
		inc, _, w := SharedCounterHandleCPUs(1)
		batch := obj.NewBatch(size)
		// Per-entry result buffers, reused across rounds: with AddInto
		// the steady-state vectored plane is allocation-free end to end
		// (the CI allocs gate holds the BenchmarkP5 rows to this).
		bufs := make([][1]any, size)
		const rounds = 64
		watch := w.K.Meter.Clock.StartWatch()
		for r := 0; r < rounds; r++ {
			batch.Reset()
			for j := 0; j < size; j++ {
				if err := batch.AddInto(inc, bufs[j][:0]); err != nil {
					panic(fmt.Sprintf("bench: batch add: %v", err))
				}
			}
			if err := batch.Run(); err != nil {
				panic(fmt.Sprintf("bench: batch run: %v", err))
			}
		}
		perInv := float64(watch.Elapsed()) / float64(rounds*size)
		if size == 1 {
			single = perInv
		}
		speedup := single / perInv
		// The amortized crossing cost's share of each invocation
		// shrinks as 1/size toward the per-entry floor.
		t.AddRow(size,
			fmt.Sprintf("%.1f", perInv),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%.0f%%", 100*fixed/float64(size)/perInv))
	}
	t.Notes = append(t.Notes,
		"deterministic virtual cycles (single-threaded sweep); one trap + one ctx-switch pair per batch, OpBatchEntry per entry",
		"break-even: a batch of 2 already halves the crossing overhead; see README \"Performance\"")
	return t
}
