package hw

import (
	"errors"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/mmu"
)

func newTestMachine() *Machine {
	return New(Config{PhysFrames: 64})
}

func TestTrapDispatch(t *testing.T) {
	m := newTestMachine()
	var got *TrapFrame
	m.SetTrapHandler(TrapSyscall, func(f *TrapFrame) bool {
		got = f
		return true
	})
	ok, err := m.Syscall(mmu.KernelContext, 42)
	if err != nil || !ok {
		t.Fatalf("Syscall = %v, %v", ok, err)
	}
	if got == nil || got.Arg != 42 || got.Vector != TrapSyscall {
		t.Fatalf("handler saw %+v", got)
	}
	if m.Meter.Count(clock.OpTrapEnter) != 1 || m.Meter.Count(clock.OpTrapExit) != 1 {
		t.Fatal("trap entry/exit not charged")
	}
}

func TestTrapNoHandler(t *testing.T) {
	m := newTestMachine()
	_, err := m.RaiseTrap(&TrapFrame{Vector: TrapDivZero})
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestSetTrapHandlerReturnsPrevious(t *testing.T) {
	m := newTestMachine()
	h1 := func(*TrapFrame) bool { return true }
	if prev := m.SetTrapHandler(TrapSyscall, h1); prev != nil {
		t.Fatal("fresh vector had a previous handler")
	}
	if prev := m.SetTrapHandler(TrapSyscall, nil); prev == nil {
		t.Fatal("uninstall did not return previous handler")
	}
	if _, err := m.Syscall(0, 0); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("after uninstall: %v", err)
	}
}

func TestIRQDispatchAndMasking(t *testing.T) {
	m := newTestMachine()
	count := 0
	if _, err := m.SetIRQHandler(3, func(f *TrapFrame) bool {
		if f.IRQ != 3 {
			t.Errorf("frame IRQ = %d", f.IRQ)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseIRQ(3); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	if err := m.MaskIRQ(3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.RaiseIRQ(3); err != nil {
			t.Fatal(err)
		}
	}
	if count != 1 {
		t.Fatal("masked IRQ delivered")
	}
	if err := m.UnmaskIRQ(3); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("pending IRQs not delivered on unmask: count = %d", count)
	}
}

func TestIRQBadLine(t *testing.T) {
	m := newTestMachine()
	if err := m.RaiseIRQ(-1); !errors.Is(err, ErrBadIRQ) {
		t.Fatalf("RaiseIRQ(-1): %v", err)
	}
	if err := m.RaiseIRQ(NumIRQLines); !errors.Is(err, ErrBadIRQ) {
		t.Fatalf("RaiseIRQ(max): %v", err)
	}
	if _, err := m.SetIRQHandler(NumIRQLines, nil); !errors.Is(err, ErrBadIRQ) {
		t.Fatalf("SetIRQHandler: %v", err)
	}
	if err := m.MaskIRQ(-2); !errors.Is(err, ErrBadIRQ) {
		t.Fatalf("MaskIRQ: %v", err)
	}
	if err := m.UnmaskIRQ(99); !errors.Is(err, ErrBadIRQ) {
		t.Fatalf("UnmaskIRQ: %v", err)
	}
}

func TestIRQNoHandlerDropsAndCounts(t *testing.T) {
	m := newTestMachine()
	if err := m.RaiseIRQ(5); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
	_, _, dropped := m.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestLoadStoreThroughMMU(t *testing.T) {
	m := newTestMachine()
	ctx := m.MMU.NewContext()
	frame, err := m.Phys.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MMU.Map(ctx, 0x10000, frame, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	msg := []byte("paramecium")
	if err := m.Store(ctx, 0x10004, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := m.Load(ctx, 0x10004, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("read back %q", got)
	}
}

func TestStoreToUnmappedFaults(t *testing.T) {
	m := newTestMachine()
	ctx := m.MMU.NewContext()
	err := m.Store(ctx, 0x2000, []byte{1})
	var f *mmu.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *mmu.Fault", err)
	}
	if f.Kind != mmu.FaultNoMapping {
		t.Fatalf("fault kind = %v", f.Kind)
	}
}

func TestPageFaultHandlerResolvesAndRetries(t *testing.T) {
	m := newTestMachine()
	ctx := m.MMU.NewContext()
	faults := 0
	m.SetTrapHandler(TrapPageFault, func(f *TrapFrame) bool {
		faults++
		frame, err := m.Phys.AllocFrame()
		if err != nil {
			return false
		}
		if err := m.MMU.Map(f.Ctx, f.Addr, frame, mmu.PermRead|mmu.PermWrite); err != nil {
			return false
		}
		return true
	})
	if err := m.Store(ctx, 0x5000, []byte("demand paged")); err != nil {
		t.Fatalf("store after resolving fault: %v", err)
	}
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	// Second access must not fault again.
	if err := m.Store(ctx, 0x5000, []byte("again")); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("faults = %d after warm access", faults)
	}
}

func TestPageFaultHandlerDeclines(t *testing.T) {
	m := newTestMachine()
	ctx := m.MMU.NewContext()
	m.SetTrapHandler(TrapPageFault, func(*TrapFrame) bool { return false })
	err := m.Load(ctx, 0x1000, make([]byte, 1))
	var f *mmu.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want the fault", err)
	}
}

func TestPageFaultHandlerLiesDetected(t *testing.T) {
	// A handler that claims resolution without mapping the page must
	// not cause an infinite retry loop.
	m := newTestMachine()
	ctx := m.MMU.NewContext()
	calls := 0
	m.SetTrapHandler(TrapPageFault, func(*TrapFrame) bool {
		calls++
		return true
	})
	err := m.Load(ctx, 0x1000, make([]byte, 1))
	if err == nil {
		t.Fatal("access succeeded without a mapping")
	}
	if calls != 1 {
		t.Fatalf("handler called %d times, want 1", calls)
	}
}

func TestAccessSpanningPages(t *testing.T) {
	m := newTestMachine()
	ctx := m.MMU.NewContext()
	f1, _ := m.Phys.AllocFrame()
	f2, _ := m.Phys.AllocFrame()
	if err := m.MMU.Map(ctx, 0x1000, f1, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := m.MMU.Map(ctx, 0x2000, f2, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	va := mmu.VAddr(0x2000 - 100)
	if err := m.Store(ctx, va, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := m.Load(ctx, va, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestTouchExecRaisesProtectionFault(t *testing.T) {
	m := newTestMachine()
	ctx := m.MMU.NewContext()
	frame, _ := m.Phys.AllocFrame()
	if err := m.MMU.Map(ctx, 0x8000, frame, mmu.PermRead); err != nil {
		t.Fatal(err)
	}
	handled := false
	m.SetTrapHandler(TrapPageFault, func(f *TrapFrame) bool {
		handled = true
		if f.Access != mmu.AccessExec {
			t.Errorf("access = %v, want exec", f.Access)
		}
		return false
	})
	if err := m.Touch(ctx, 0x8000, mmu.AccessExec); err == nil {
		t.Fatal("exec touch on non-exec page succeeded")
	}
	if !handled {
		t.Fatal("fault handler not invoked")
	}
}

func TestDeviceAttachAndLookup(t *testing.T) {
	m := newTestMachine()
	nic := NewNIC("net0", 4)
	if err := m.AttachDevice(nic); err != nil {
		t.Fatal(err)
	}
	if got := m.Device("net0"); got != nic {
		t.Fatal("Device lookup failed")
	}
	if got := m.Device("nope"); got != nil {
		t.Fatal("lookup of missing device returned non-nil")
	}
	if len(m.Devices()) != 1 {
		t.Fatal("Devices() wrong length")
	}
	if _, ok := m.IORegionByName("net0-regs"); !ok {
		t.Fatal("I/O region not registered")
	}
	dup := NewNIC("net0", 5) // same region name
	if err := m.AttachDevice(dup); err == nil {
		t.Fatal("duplicate I/O region accepted")
	}
}

func TestNICInjectReceiveTransmit(t *testing.T) {
	m := newTestMachine()
	nic := NewNIC("net0", 4)
	if err := m.AttachDevice(nic); err != nil {
		t.Fatal(err)
	}
	irqs := 0
	if _, err := m.SetIRQHandler(4, func(*TrapFrame) bool { irqs++; return true }); err != nil {
		t.Fatal(err)
	}
	frame := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := nic.Inject(frame); err != nil {
		t.Fatal(err)
	}
	if irqs != 1 {
		t.Fatalf("irqs = %d", irqs)
	}
	regs := nic.IORegion()
	pending, _ := regs.ReadReg(NICRegRxPending)
	if pending != 1 {
		t.Fatalf("pending = %d", pending)
	}
	slot, _ := regs.ReadReg(NICRegRxSlot)
	length, _ := regs.ReadReg(NICRegRxLen)
	if length != uint64(len(frame)) {
		t.Fatalf("len = %d", length)
	}
	data, err := nic.SlotData(int(slot))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range frame {
		if data[i] != b {
			t.Fatalf("slot data mismatch at %d", i)
		}
	}
	// Retire and check ring empties.
	if err := regs.WriteReg(NICRegRxPop, 1); err != nil {
		t.Fatal(err)
	}
	pending, _ = regs.ReadReg(NICRegRxPending)
	if pending != 0 {
		t.Fatalf("pending after pop = %d", pending)
	}

	// Transmit path.
	var sent []byte
	nic.SetTxSink(func(f []byte) { sent = f })
	copy(data, []byte("xmit!"))
	if err := regs.WriteReg(NICRegTxSlot, slot); err != nil {
		t.Fatal(err)
	}
	if err := regs.WriteReg(NICRegTxLen, 5); err != nil {
		t.Fatal(err)
	}
	if err := regs.WriteReg(NICRegTxGo, 1); err != nil {
		t.Fatal(err)
	}
	if string(sent) != "xmit!" {
		t.Fatalf("sent %q", sent)
	}
	if nic.Transmitted() != 1 {
		t.Fatal("tx count wrong")
	}
}

func TestNICRingOverflow(t *testing.T) {
	nic := NewNIC("net0", 4)
	for i := 0; i < NICSlots; i++ {
		if err := nic.Inject([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nic.Inject([]byte{0xFF}); !errors.Is(err, ErrRingFull) {
		t.Fatalf("overflow inject: %v", err)
	}
	if nic.Dropped() != 1 {
		t.Fatalf("dropped = %d", nic.Dropped())
	}
	reg, _ := nic.IORegion().ReadReg(NICRegRxDropped)
	if reg != 1 {
		t.Fatalf("dropped register = %d", reg)
	}
}

func TestNICFrameTooBig(t *testing.T) {
	nic := NewNIC("net0", 4)
	if err := nic.Inject(make([]byte, NICSlotSize+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestNICBadTransmitDescriptor(t *testing.T) {
	nic := NewNIC("net0", 4)
	regs := nic.IORegion()
	if err := regs.WriteReg(NICRegTxSlot, 999); err != nil {
		t.Fatal(err)
	}
	if err := regs.WriteReg(NICRegTxGo, 1); err == nil {
		t.Fatal("bad descriptor accepted")
	}
}

func TestNICSlotDataRange(t *testing.T) {
	nic := NewNIC("net0", 4)
	if _, err := nic.SlotData(-1); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := nic.SlotData(NICSlots); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestTimerProgramAndPoll(t *testing.T) {
	m := newTestMachine()
	timer := NewTimer("timer0", 1, m.Meter.Clock)
	if err := m.AttachDevice(timer); err != nil {
		t.Fatal(err)
	}
	fires := 0
	if _, err := m.SetIRQHandler(1, func(*TrapFrame) bool { fires++; return true }); err != nil {
		t.Fatal(err)
	}
	timer.Program(100)
	if n := timer.Poll(); n != 0 {
		t.Fatalf("timer fired %d times before deadline", n)
	}
	m.Meter.Clock.Advance(250)
	if n := timer.Poll(); n != 2 {
		t.Fatalf("Poll = %d, want 2", n)
	}
	if fires != 2 || timer.Fires() != 2 {
		t.Fatalf("fires = %d / %d", fires, timer.Fires())
	}
	// Disarm.
	timer.Program(0)
	m.Meter.Clock.Advance(1000)
	if n := timer.Poll(); n != 0 {
		t.Fatal("disarmed timer fired")
	}
}

func TestTimerRegisters(t *testing.T) {
	m := newTestMachine()
	timer := NewTimer("timer0", 1, m.Meter.Clock)
	if err := m.AttachDevice(timer); err != nil {
		t.Fatal(err)
	}
	regs := timer.IORegion()
	if err := regs.WriteReg(TimerRegInterval, 500); err != nil {
		t.Fatal(err)
	}
	v, err := regs.ReadReg(TimerRegInterval)
	if err != nil || v != 500 {
		t.Fatalf("interval = %d, %v", v, err)
	}
}

func TestConsoleOutput(t *testing.T) {
	m := newTestMachine()
	cons := NewConsole("cons0", 2)
	if err := m.AttachDevice(cons); err != nil {
		t.Fatal(err)
	}
	regs := cons.IORegion()
	for _, b := range []byte("boot: ok\n") {
		if err := regs.WriteReg(ConsoleRegPutc, uint64(b)); err != nil {
			t.Fatal(err)
		}
	}
	if got := cons.Contents(); got != "boot: ok\n" {
		t.Fatalf("console = %q", got)
	}
	n, _ := regs.ReadReg(ConsoleRegWritten)
	if n != 9 {
		t.Fatalf("written = %d", n)
	}
	cons.ResetBuffer()
	if cons.Contents() != "" {
		t.Fatal("ResetBuffer did not clear")
	}
}

func TestIORegionBadRegister(t *testing.T) {
	r := NewIORegion("x", 2, nil, nil)
	if _, err := r.ReadReg(5); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("read: %v", err)
	}
	if err := r.WriteReg(-1, 0); !errors.Is(err, ErrBadRegister) {
		t.Fatalf("write: %v", err)
	}
	// nil hooks are harmless
	if _, err := r.ReadReg(0); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteReg(0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTrapVectorString(t *testing.T) {
	if TrapPageFault.String() != "page-fault" || TrapSyscall.String() != "syscall" {
		t.Fatal("trap names wrong")
	}
	if TrapVector(99).String() != "trap(99)" {
		t.Fatal("unknown trap name wrong")
	}
}
