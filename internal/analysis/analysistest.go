package analysis

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexps of one "// want" comment.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one "// want" entry: a line that must produce a
// finding matching re.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// RunGolden runs one analyzer over the package in dir (a testdata
// package) and compares its findings against the package's "// want"
// comments, exactly like x/tools' analysistest: every finding must
// match a want expectation on its line, and every expectation must be
// matched by a finding. Lines carrying a //paralint:ignore directive
// therefore assert suppression simply by carrying no want comment.
func RunGolden(t *testing.T, loader *Loader, dir string, a *Analyzer) {
	t.Helper()
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[idx+len("want "):], -1) {
					pattern := q
					if q[0] == '"' {
						var err error
						pattern, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
					} else {
						pattern = strings.Trim(q, "`")
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, q, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: pattern,
					})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.raw)
		}
	}
}
