// Package core is the Paramecium nucleus: "a protected and trusted
// component which implements only those services that cannot be moved
// into the application without jeopardizing the system's integrity."
//
// The kernel is itself a static (link-time) composition of the four
// nucleus services — processor event management, memory management,
// the directory service and the certification service — assembled at
// Boot. Everything else (thread package, drivers, protocol stacks,
// virtual memory) is an ordinary component loaded from the repository
// into whichever protection domain its certificate allows.
package core

import (
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/cert"
	"paramecium/internal/clock"
	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/names"
	"paramecium/internal/obj"
	"paramecium/internal/probe"
	"paramecium/internal/proxy"
	"paramecium/internal/repoz"
	"paramecium/internal/shm"
	"paramecium/internal/threads"
)

// Well-known name-space paths.
const (
	PathNucleus  = "/nucleus"
	PathServices = "/services"
	PathDevices  = "/devices"
)

// Errors.
var (
	ErrNotCertified = errors.New("core: component not certified for requested placement")
	ErrNoSuchDomain = errors.New("core: no such domain")
)

// Config controls kernel construction.
type Config struct {
	// Machine configures the simulated hardware (defaults apply).
	Machine hw.Config
	// AuthorityKey is the certification authority's public key the
	// kernel trusts. Zero-length means certification is disabled and
	// every kernel placement request fails closed.
	AuthorityKey []byte
	// CPUs is the virtual CPU count (0 => 1). It sets the machine
	// topology and sizes the thread scheduler to match: per-CPU
	// context registers and TLBs in the MMU, one run queue per CPU in
	// the scheduler. The default of one CPU preserves every
	// single-processor semantic exactly.
	CPUs int
	// Trace enables the kernel flight recorder from boot: per-CPU event
	// rings plus the per-domain cycle ledger, both reachable through the
	// meter. Off by default; the disabled emit path is a single atomic
	// load, so untraced systems pay nothing.
	Trace bool
	// TraceRingCapacity sizes each per-CPU event ring (0 selects
	// probe.DefaultRingCapacity). Older events are overwritten; the
	// ledger is exact regardless.
	TraceRingCapacity int
}

// Kernel is a booted Paramecium system.
type Kernel struct {
	Machine   *hw.Machine
	Meter     *clock.Meter
	Mem       *mem.Service
	Events    *event.Service
	Sched     *threads.Scheduler
	Space     *names.Space
	RootView  *names.View
	Validator *cert.Validator
	Repo      *repoz.Repository
	Proxies   *proxy.Factory
	// Shm is the shared-memory segment registry: the zero-copy bulk
	// data plane the memory service brokers between protection domains.
	// Grants are capabilities (unforgeable refs), validated by the
	// proxy factory when passed across calls and condemned on
	// DestroyDomain through the same sweep that kills names and
	// proxies.
	Shm *shm.Registry
	// Nucleus is the static composition holding the four services.
	Nucleus *obj.Composition

	// mu guards placement and domains. Bind — the hot lookup path —
	// only read-locks it.
	mu        sync.RWMutex
	placement map[obj.Instance]mmu.ContextID // where each registered instance lives
	domains   map[mmu.ContextID]*Domain

	// regMu serializes name-space publication with placement recording
	// (Register, Interpose), so a failed publication's placement
	// rollback cannot clobber a concurrent publication of the same
	// instance. Lookups never take it.
	regMu sync.Mutex

	// kprox is KernelBind's bind cache — the kernel-resident mirror of
	// Domain.prox, so repeated kernel binds of one instance share one
	// proxy instead of leaking entry pages per call.
	kprox proxyCache
}

// proxyCache is a bind cache of live proxies keyed by instance, shared
// by Domain.Bind (per-domain) and KernelBind (kernel-wide) so the two
// cannot drift: one staleness rule, one eviction path.
type proxyCache struct {
	mu sync.Mutex
	m  map[obj.Instance]*proxy.Proxy // nil once destroyed
}

// bind resolves inst for a caller in ctx caller: the instance itself
// if it lives there, else a cached-or-fresh proxy. homeOf reads the
// instance's current placement; it is re-read at every decision point
// rather than snapshotted once, so a bind that was delayed after an
// early read cannot act on stale placement. Stale cache entries —
// closed (the target domain died), or targeting a context other than
// the instance's home (re-homed) — are evicted; an evicted open proxy
// is Closed only if a placement re-read at that moment still says it
// is orphaned (closing is destructive to every handle resolved
// through it, so when in doubt the proxy is left open: a bounded leak
// under placement flapping, never a wrongly killed live route). The
// Close happens OUTSIDE the cache lock: it drains in-flight calls,
// which may themselves need this cache.
func (c *proxyCache) bind(inst obj.Instance, caller mmu.ContextID, homeOf func() mmu.ContextID, f *proxy.Factory) (obj.Instance, error) {
	for {
		home := homeOf()
		if home == caller {
			// No proxy needed. Drop a proxy cached before inst was
			// re-homed into the caller's own context, closing it only
			// if the placement still says so.
			c.mu.Lock()
			var stale *proxy.Proxy
			if c.m != nil {
				if p, ok := c.m[inst]; ok {
					delete(c.m, inst)
					stale = p
				}
			}
			c.mu.Unlock()
			if stale != nil && !stale.Closed() && homeOf() == caller {
				_ = stale.Close()
			}
			return inst, nil
		}
		c.mu.Lock()
		if c.m == nil {
			c.mu.Unlock()
			return nil, ErrNoSuchDomain
		}
		p, ok := c.m[inst]
		if !ok {
			np, err := f.New(caller, home, inst)
			if err != nil {
				c.mu.Unlock()
				return nil, err
			}
			c.m[inst] = np
			c.mu.Unlock()
			return np, nil
		}
		if !p.Closed() && p.TargetContext() == home {
			c.mu.Unlock()
			return p, nil
		}
		delete(c.m, inst)
		c.mu.Unlock()
		if !p.Closed() && p.TargetContext() != homeOf() {
			// Still orphaned on re-read: drain and release it.
			_ = p.Close()
		}
		// Loop: rebuild against fresh placement, or adopt a proxy a
		// concurrent bind installed.
	}
}

// destroy empties the cache permanently and returns its proxies for
// the caller to close (outside the cache lock).
func (c *proxyCache) destroy() map[obj.Instance]*proxy.Proxy {
	c.mu.Lock()
	m := c.m
	c.m = nil
	c.mu.Unlock()
	return m
}

// Boot assembles a kernel: machine, the four nucleus services, the
// root of the name space, and an empty repository.
func Boot(cfg Config) (*Kernel, error) {
	machineCfg := cfg.Machine
	if cfg.CPUs > 0 {
		machineCfg.CPUs = cfg.CPUs
	}
	machine := hw.New(machineCfg)
	meter := machine.Meter
	if cfg.Trace {
		meter.EnableTracing(
			probe.NewRecorder(machine.NumCPUs(), cfg.TraceRingCapacity),
			probe.NewLedger(clock.LedgerSlots),
		)
	}
	memSvc := mem.New(machine)
	sched := threads.NewSchedulerCPUs(meter, machine.NumCPUs())
	// Scheduler CPU k and machine CPU k are one identity: thread
	// bodies run their simulated memory traffic through the machine on
	// their dispatching CPU, and placement learns the NUMA shape.
	sched.AttachExec(machine)
	if topo := machine.Topology(); topo != nil {
		sched.SetTopology(topo.Nodes, topo.CPUsPerNode)
	}
	events := event.New(machine, sched)
	space := names.NewSpace(meter)
	validator := cert.NewValidator(meter, cfg.AuthorityKey)

	k := &Kernel{
		Machine:   machine,
		Meter:     meter,
		Mem:       memSvc,
		Events:    events,
		Sched:     sched,
		Space:     space,
		RootView:  names.RootView(space),
		Validator: validator,
		Repo:      repoz.New(),
		Proxies:   proxy.NewFactory(memSvc, 0),
		Shm:       shm.NewRegistry(memSvc),
		placement: make(map[obj.Instance]mmu.ContextID),
		domains:   make(map[mmu.ContextID]*Domain),
		kprox:     proxyCache{m: make(map[obj.Instance]*proxy.Proxy)},
	}
	// Grant capabilities passed across calls are validated by the
	// proxy before any crossing cost is paid, and a domain teardown's
	// CloseTarget condemns the domain's segments through the same
	// sweep that condemns its proxies — no fresh mapping (or call)
	// appears after DestroyDomain returns.
	k.Proxies.SetGrantRegistry(k.Shm)
	k.Proxies.OnCloseTarget(k.Shm.CondemnDomain)

	// The nucleus is the only static composition in the system.
	nucleus := obj.NewStaticComposition("paramecium.nucleus", meter)
	for role, inst := range map[string]obj.Instance{
		"events":    nucleusFacade("nucleus.events", meter),
		"memory":    nucleusFacade("nucleus.memory", meter),
		"directory": nucleusFacade("nucleus.directory", meter),
		"certify":   nucleusFacade("nucleus.certify", meter),
	} {
		if err := nucleus.AddChild(role, inst); err != nil {
			return nil, err
		}
		if err := space.Register(names.Join(PathNucleus, role), inst); err != nil {
			return nil, err
		}
	}
	k.Nucleus = nucleus
	return k, nil
}

// nucleusFacade builds the name-space face of one nucleus service. The
// actual service logic lives in the typed Go APIs (k.Mem, k.Events,
// ...); the facade object is what shows up in /nucleus so components
// can late-bind and interpose on it like on anything else.
func nucleusFacade(class string, meter *clock.Meter) obj.Instance {
	o := obj.NewStatic(class, meter)
	decl := obj.MustInterfaceDecl(class+".v1",
		obj.MethodDecl{Name: "describe", NumIn: 0, NumOut: 1},
	)
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		panic(err) // static construction; cannot fail at run time
	}
	bi.MustBind("describe", func(...any) ([]any, error) {
		return []any{class}, nil
	})
	return o
}

// Domain is an application protection domain with its own view of the
// name space (inherited from the root view, reconfigurable with
// overrides).
type Domain struct {
	Name string
	Ctx  mmu.ContextID
	View *names.View

	kernel *Kernel
	prox   proxyCache
	// destroyed is closed (via destroyOnce, since a failed teardown
	// can be retried) once DestroyDomain has quiesced the domain —
	// drains and condemn done — so a DestroyDomain losing the race to
	// a concurrent destroyer can still wait for quiescence before
	// reporting ErrNoSuchDomain.
	destroyed   chan struct{}
	destroyOnce sync.Once
}

// NewDomain creates an application protection domain.
func (k *Kernel) NewDomain(name string) *Domain {
	ctx := k.Mem.NewDomain()
	d := &Domain{
		Name:      name,
		Ctx:       ctx,
		View:      k.RootView.Child(),
		kernel:    k,
		prox:      proxyCache{m: make(map[obj.Instance]*proxy.Proxy)},
		destroyed: make(chan struct{}),
	}
	k.mu.Lock()
	k.domains[ctx] = d
	k.mu.Unlock()
	return d
}

// DestroyDomain tears a domain down. When it returns — including with
// ErrNoSuchDomain after losing the race to a concurrent destroyer —
// no cross-domain call is executing in the domain. Like Proxy.Close,
// it must not be called from inside a method served by the domain
// being destroyed (the drain could never finish).
func (k *Kernel) DestroyDomain(d *Domain) error {
	k.mu.Lock()
	if _, ok := k.domains[d.Ctx]; !ok {
		k.mu.Unlock()
		// Lost to a concurrent destroyer: wait out its teardown so
		// ErrNoSuchDomain still implies quiescence.
		<-d.destroyed
		return ErrNoSuchDomain
	}
	delete(k.domains, d.Ctx)
	k.mu.Unlock()
	// Close outside the cache lock: Close blocks until in-flight
	// calls drain, and an in-flight call's target method may itself
	// bind through this domain — closing under the lock would
	// deadlock.
	for _, p := range d.prox.destroy() {
		_ = p.Close()
	}
	// Quiesce inbound calls too: proxies targeting this domain live in
	// other domains' bind caches (and in kernel-resident callers), not
	// in d.prox. Closing them drains every call still executing in
	// this domain before its context is destroyed. This runs BEFORE
	// the placement entries are removed: a Bind racing teardown either
	// reads the old placement and fails on the condemned target, or
	// (after the removal below) no placement at all — it can never
	// build a live route into the dying context. The CloseTarget
	// condemn also sweeps the shared-memory registry (via the hook
	// registered at Boot): grants to the domain are revoked, segments
	// it owns destroyed, and pending attaches fail — no fresh mapping
	// appears after this call, just as no fresh proxy route does.
	k.Proxies.CloseTarget(d.Ctx)
	// The sweep holds regMu so it cannot interleave with a
	// publishPlaced between its placement write and its publication —
	// a racing Register into the dying context either lands entirely
	// before the sweep (and is unregistered below like any other name
	// of the dead domain) or entirely after (and its binds fail on the
	// condemned target).
	k.regMu.Lock()
	k.mu.Lock()
	doomed := make(map[obj.Instance]bool)
	for inst, ctx := range k.placement {
		if ctx == d.Ctx {
			doomed[inst] = true
			delete(k.placement, inst)
		}
	}
	k.mu.Unlock()
	// Sweep the dead domain's names out of the name space. Without
	// this, a later bind of such a name would resolve placement-less —
	// PlacementOf's zero value is the kernel context — and reach the
	// orphaned object directly instead of failing; dead services must
	// fail lookups. regMu is still held, so no concurrent publication
	// interleaves with the walk-and-unregister.
	var dead []string
	_ = k.Space.Walk(func(path string, inst obj.Instance) error {
		if doomed[inst] {
			dead = append(dead, path)
		}
		return nil
	})
	for _, path := range dead {
		_ = k.Space.Unregister(path)
	}
	// View overrides can pin a doomed instance too — and resolve it
	// placement-less, bypassing both the space sweep and the proxy
	// condemn. Sweep every live domain's view (and the root view) of
	// overrides on the dead domain's instances.
	isDoomed := func(inst obj.Instance) bool { return doomed[inst] }
	k.mu.Lock()
	views := make([]*names.View, 0, len(k.domains)+1)
	views = append(views, k.RootView)
	for _, dom := range k.domains {
		views = append(views, dom.View)
	}
	k.mu.Unlock()
	for _, v := range views {
		v.SweepInstances(isDoomed)
	}
	k.regMu.Unlock()
	// Freeze the domain's ledger row while it is quiescent: its bill
	// stays readable after death instead of being dropped with the
	// domain. Context ids are never reused, so frozen is final.
	if led := k.Meter.Ledger(); led != nil {
		led.Freeze(uint32(d.Ctx))
	}
	// Quiescent: drains, condemn and sweep are done. Release waiters
	// now, whether or not the context destruction below succeeds.
	d.destroyOnce.Do(func() { close(d.destroyed) })
	if err := k.Mem.DestroyDomain(d.Ctx); err != nil {
		// The context survived (e.g. it is the machine's current
		// context). Keep it condemned, and re-register the domain so
		// the teardown can be retried — the drains above are all
		// idempotent.
		k.mu.Lock()
		k.domains[d.Ctx] = d
		k.mu.Unlock()
		return err
	}
	// The context is gone: the MMU now rejects every crossing into it,
	// so the condemn entries — the proxy factory's and the segment
	// registry's alike — are redundant and can be dropped (bounding
	// the condemned sets under domain churn).
	k.Proxies.Absolve(d.Ctx)
	k.Shm.AbsolveDomain(d.Ctx)
	return nil
}

// registerPlacement records which context an instance lives in
// WITHOUT publishing a name for it. Production code must go through
// publishPlaced (Register, Interpose), which keeps placement and
// publication consistent under regMu; this exists for instances made
// reachable by other means (per-domain view overrides, tests).
func (k *Kernel) registerPlacement(inst obj.Instance, ctx mmu.ContextID) {
	k.regMu.Lock()
	defer k.regMu.Unlock()
	k.mu.Lock()
	k.placement[inst] = ctx
	k.mu.Unlock()
}

// PlacementOf reports the context an instance was registered under
// (kernel context if never registered).
func (k *Kernel) PlacementOf(inst obj.Instance) mmu.ContextID {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.placement[inst]
}

// publishPlaced records inst's placement and runs publish (a
// name-space mutation making inst reachable), keeping the pair
// consistent for concurrent lock-free Binds: an instance never
// becomes reachable before its placement is known (a racing Bind
// would otherwise cache a proxy targeting the kernel context,
// PlacementOf's zero value), and an instance that is already placed
// keeps its old home until publication succeeds, so a failed
// publication never exposes even a transient wrong placement for
// names already published. regMu serializes publications, so the
// rollback cannot clobber a concurrent publication of inst.
func (k *Kernel) publishPlaced(inst obj.Instance, ctx mmu.ContextID, publish func() error) error {
	k.regMu.Lock()
	defer k.regMu.Unlock()
	return k.publishPlacedLocked(inst, ctx, publish)
}

// publishPlacedLocked is publishPlaced for callers already holding
// regMu (Interpose, which must read the target's placement inside the
// same critical section it publishes the agent under).
func (k *Kernel) publishPlacedLocked(inst obj.Instance, ctx mmu.ContextID, publish func() error) error {
	k.mu.Lock()
	prev, had := k.placement[inst]
	if !had {
		k.placement[inst] = ctx
	}
	k.mu.Unlock()
	if err := publish(); err != nil {
		if !had {
			// inst was reachable through no name (regMu excludes
			// concurrent publications), so nothing observed this.
			k.mu.Lock()
			delete(k.placement, inst)
			k.mu.Unlock()
		}
		return err
	}
	if had && prev != ctx {
		// Re-homing an already-published instance: last-write-wins,
		// applied only once the new name is live.
		k.mu.Lock()
		k.placement[inst] = ctx
		k.mu.Unlock()
	}
	return nil
}

// Register places an instance in the name space, recording its
// protection domain.
func (k *Kernel) Register(path string, inst obj.Instance, ctx mmu.ContextID) error {
	return k.publishPlaced(inst, ctx, func() error {
		return k.Space.Register(path, inst)
	})
}

// Bind resolves path in the domain's view. If the instance lives in
// another protection domain, a proxy appears — "importing an object
// from another protection domain, by means of the directory service,
// causes a proxy to appear." Binds from the kernel domain to kernel
// instances (and within the same domain) are direct.
func (d *Domain) Bind(path string) (obj.Instance, error) {
	inst, err := d.View.Bind(path)
	if err != nil {
		return nil, err
	}
	return d.prox.bind(inst, d.Ctx,
		func() mmu.ContextID { return d.kernel.PlacementOf(inst) },
		d.kernel.Proxies)
}

// BindInterface is Bind followed by interface selection.
func (d *Domain) BindInterface(path, iface string) (obj.Invoker, error) {
	inst, err := d.Bind(path)
	if err != nil {
		return nil, err
	}
	iv, ok := inst.Iface(iface)
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", obj.ErrNoInterface, iface, path)
	}
	return iv, nil
}

// ResolveMethod binds path in the domain's view, selects an
// interface, and pre-resolves one method. Cross-domain targets
// resolve to a handle over the proxy's entry slot, so even the
// fault-driven path skips its per-call method lookup.
func (d *Domain) ResolveMethod(path, iface, method string) (obj.MethodHandle, error) {
	iv, err := d.BindInterface(path, iface)
	if err != nil {
		return obj.MethodHandle{}, err
	}
	return iv.Resolve(method)
}

// CallBatch executes a batch of pre-resolved invocations. Consecutive
// entries resolved through one cross-domain proxy vector across the
// boundary in a single crossing — one trap, one context-switch pair,
// N slot dispatches — with per-entry results and errors; see
// obj.Batch. Routing is carried entirely by each entry's resolved
// handle (a proxy handle is bound to its caller context at Resolve
// time), so the receiver is the natural call site, not a routing
// input: CallBatch here and on Kernel run an identical batch
// identically.
func (d *Domain) CallBatch(b *obj.Batch) error { return b.Run() }

// CallBatch executes a batch of pre-resolved invocations for a
// kernel-resident call site; routing is carried by each entry's
// resolved handle — see Domain.CallBatch.
func (k *Kernel) CallBatch(b *obj.Batch) error { return b.Run() }

// KernelBind resolves a path for kernel-resident callers: instances in
// the kernel context are returned directly; instances in application
// domains are reached through a proxy owned by the kernel context,
// cached per instance exactly as Domain.Bind caches its proxies.
func (k *Kernel) KernelBind(path string) (obj.Instance, error) {
	inst, err := k.RootView.Bind(path)
	if err != nil {
		return nil, err
	}
	return k.kprox.bind(inst, mmu.KernelContext,
		func() mmu.ContextID { return k.PlacementOf(inst) },
		k.Proxies)
}

// Interpose replaces the instance at path with an interposing agent
// wrapping it, returning the agent. All future binds resolve to the
// agent; existing direct references are unaffected (exactly the
// semantics of handle replacement in the paper).
func (k *Kernel) Interpose(path string, build func(target obj.Instance) (obj.Instance, error)) (obj.Instance, error) {
	target, err := k.RootView.Bind(path)
	if err != nil {
		return nil, err
	}
	agent, err := build(target)
	if err != nil {
		return nil, err
	}
	// The target's placement is read under regMu, so a concurrent
	// re-registration of the target cannot slip between the read and
	// the agent's publication.
	k.regMu.Lock()
	defer k.regMu.Unlock()
	if err := k.publishPlacedLocked(agent, k.PlacementOf(target), func() error {
		_, err := k.Space.Replace(path, agent)
		return err
	}); err != nil {
		return nil, err
	}
	return agent, nil
}

// Unwrap undoes an interposition by restoring the wrapped target.
func (k *Kernel) Unwrap(path string) error {
	cur, err := k.RootView.Bind(path)
	if err != nil {
		return err
	}
	ip, ok := cur.(*obj.Interposer)
	if !ok {
		return fmt.Errorf("core: %q is not interposed", path)
	}
	_, err = k.Space.Replace(path, ip.Target())
	return err
}
