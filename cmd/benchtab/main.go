// Command benchtab regenerates every experiment table and figure of
// the reproduction (DESIGN.md §4) and prints them as text.
//
// Usage:
//
//	benchtab            # run all deterministic experiments
//	benchtab T1 F2      # run selected experiments by id
//	benchtab -parallel  # also run the host-parallel P-series
//	benchtab P1         # run one parallel experiment by id
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"paramecium/internal/bench"
)

func main() {
	parallel := flag.Bool("parallel", false,
		"also run the P-series parallel-throughput experiments (host wall-clock, not deterministic)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchtab [-parallel] [experiment ids...]\n")
		fmt.Fprintf(os.Stderr, "experiments: T1 T2 T3 T4 T5 T6 F1 F2 F3 F4 F5 P1 P2 P3 P5 P6 P7 P8 P9 P10 (default: all T/F)\n")
	}
	flag.Parse()

	want := make(map[string]bool)
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}

	runners := map[string]func() bench.Table{
		"T1":  bench.T1Invocation,
		"T2":  bench.T2CrossDomain,
		"T3":  bench.T3Interrupt,
		"T4":  bench.T4Certification,
		"T5":  bench.T5FilterPlacement,
		"T6":  bench.T6Reconfiguration,
		"F1":  bench.F1Throughput,
		"F2":  bench.F2BreakEven,
		"F3":  bench.F3BlockingFraction,
		"F4":  bench.F4Namespace,
		"F5":  bench.F5TrapCostSweep,
		"P1":  bench.P1ParallelProxyCall,
		"P2":  bench.P2ParallelLookup,
		"P3":  bench.P3CPUTopology,
		"P5":  bench.P5BatchSweep,
		"P6":  bench.P6BulkTransfer,
		"P7":  bench.P7RingStream,
		"P8":  bench.P8MixedTargetSweep,
		"P9":  bench.P9ScalingSweep,
		"P10": bench.P10TraceOverhead,
	}
	order := []string{"T1", "T2", "T3", "T4", "T5", "T6", "F1", "F2", "F3", "F4", "F5", "P1", "P2", "P3", "P5", "P6", "P7", "P8", "P9", "P10"}

	for _, a := range flag.Args() {
		if _, ok := runners[strings.ToUpper(a)]; !ok {
			fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", a)
			os.Exit(2)
		}
	}

	ran := 0
	for _, id := range order {
		isParallel := strings.HasPrefix(id, "P")
		switch {
		case len(want) > 0:
			if !want[id] {
				continue
			}
		case isParallel && !*parallel:
			continue
		}
		t := runners[id]()
		fmt.Println(t.Render())
		ran++
	}
	if ran == 0 {
		flag.Usage()
		os.Exit(2)
	}
}
