// Command paralint runs the repo-specific static analyzers over module
// packages and exits non-zero if any finding survives. It is the static
// complement to the dynamic CI gates: chargepath (cost-model dominance),
// lockorder (documented lock ranks), hotpathalloc (zero-alloc fast
// paths), atomicmix (no mixed atomic/plain field access) and cpustate
// (per-CPU ownership).
//
// Usage:
//
//	paralint [-analyzers name,name] [-list] [packages]
//
// Packages accept the usual ./... patterns; the default is ./... from
// the module root.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"paramecium/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paralint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *names != "" {
		var err error
		analyzers, err = analysis.ByName(*names)
		if err != nil {
			fmt.Fprintf(stderr, "paralint: %v\n", err)
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "paralint: %v\n", err)
		return 2
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "paralint: %v\n", err)
		return 2
	}

	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "paralint: %v\n", err)
			return 2
		}
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintf(stderr, "paralint: %v\n", err)
				return 2
			}
			for _, d := range diags {
				fmt.Fprintln(stdout, d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "paralint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
