package hw

import (
	"sync"
	"testing"

	"paramecium/internal/mmu"
)

// TestAcquireCPUSpreadsExclusiveLeases: concurrent acquirers land on
// distinct CPUs while any are free, and oversubscription falls back to
// sharing without corrupting the holders' leases.
func TestAcquireCPUSpreadsExclusiveLeases(t *testing.T) {
	m := New(Config{PhysFrames: 16, CPUs: 4})
	if m.NumCPUs() != 4 {
		t.Fatalf("NumCPUs = %d", m.NumCPUs())
	}
	var leases []CPULease
	seen := map[mmu.CPUID]bool{}
	for i := 0; i < 4; i++ {
		l := m.AcquireCPU()
		if seen[l.ID()] {
			t.Fatalf("CPU %d leased twice", l.ID())
		}
		seen[l.ID()] = true
		leases = append(leases, l)
	}
	// Fifth claim: every CPU busy, so the lease is shared.
	extra := m.AcquireCPU()
	extra.Release() // must not clear the exclusive holder's lease
	for _, l := range leases {
		l.Release()
	}
	// All free again: four fresh exclusive claims succeed.
	seen = map[mmu.CPUID]bool{}
	for i := 0; i < 4; i++ {
		l := m.AcquireCPU()
		if seen[l.ID()] {
			t.Fatalf("CPU %d leased twice after release", l.ID())
		}
		seen[l.ID()] = true
		defer l.Release()
	}
}

// TestSingleCPUAcquireCountsShares: on a uniprocessor every acquire
// lands on CPU 0; an acquire that overlaps a held lease is a forced
// share, counted in SharedLeases, and releasing the shared lease must
// not clear the exclusive holder's claim.
func TestSingleCPUAcquireCountsShares(t *testing.T) {
	m := New(Config{PhysFrames: 16})
	a, b := m.AcquireCPU(), m.AcquireCPU()
	if a.ID() != 0 || b.ID() != 0 {
		t.Fatalf("leases on CPUs %d/%d, want 0/0", a.ID(), b.ID())
	}
	if got := m.SharedLeases(); got != 1 {
		t.Fatalf("SharedLeases = %d, want 1 (second acquire overlapped the first)", got)
	}
	b.Release() // shared: must not free the holder's claim
	c := m.AcquireCPU()
	if got := m.SharedLeases(); got != 2 {
		t.Fatalf("SharedLeases = %d, want 2 (holder still claims the CPU)", got)
	}
	c.Release()
	a.Release()
	// All free: a serial acquire is exclusive again.
	d := m.AcquireCPU()
	defer d.Release()
	if got := m.SharedLeases(); got != 2 {
		t.Fatalf("SharedLeases = %d after release, want 2 (serial acquire must not share)", got)
	}
}

// TestSharedLeasesCountOversubscription: the four-CPU machine counts
// exactly the claims beyond its topology.
func TestSharedLeasesCountOversubscription(t *testing.T) {
	m := New(Config{PhysFrames: 16, CPUs: 4})
	var leases []CPULease
	for i := 0; i < 4; i++ {
		leases = append(leases, m.AcquireCPU())
	}
	if got := m.SharedLeases(); got != 0 {
		t.Fatalf("SharedLeases = %d with free CPUs, want 0", got)
	}
	for i := 0; i < 3; i++ {
		m.AcquireCPU().Release()
	}
	if got := m.SharedLeases(); got != 3 {
		t.Fatalf("SharedLeases = %d, want 3", got)
	}
	for _, l := range leases {
		l.Release()
	}
}

// TestRaiseIRQOnDeliversCPU: the trap frame of a routed interrupt
// carries the target CPU and that CPU's active context, and per-CPU
// delivery counters advance.
func TestRaiseIRQOnDeliversCPU(t *testing.T) {
	m := New(Config{PhysFrames: 16, CPUs: 2})
	ctx := m.MMU.NewContext()
	if err := m.MMU.SwitchOn(1, ctx); err != nil {
		t.Fatal(err)
	}
	var got *TrapFrame
	if _, err := m.SetIRQHandler(3, func(f *TrapFrame) bool {
		got = f
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseIRQOn(3, 1); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.CPU != 1 || got.Ctx != ctx {
		t.Fatalf("frame = %+v, want CPU 1 ctx %d", got, ctx)
	}
	if _, irqs := m.CPUByID(1).Stats(); irqs != 1 {
		t.Fatalf("CPU1 irqs = %d, want 1", irqs)
	}
	if _, irqs := m.CPUByID(0).Stats(); irqs != 0 {
		t.Fatalf("CPU0 irqs = %d, want 0", irqs)
	}
	if err := m.RaiseIRQOn(3, 7); err == nil {
		t.Fatal("out-of-range CPU accepted")
	}
}

// TestPerCPULoadsUseOwnTLB: the same page loaded through two CPUs
// costs each CPU its own cold miss — translation locality is per-CPU.
func TestPerCPULoadsUseOwnTLB(t *testing.T) {
	m := New(Config{PhysFrames: 16, CPUs: 2})
	frame, err := m.Phys.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MMU.Map(mmu.KernelContext, 0x1000, frame, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	var wg sync.WaitGroup
	for cpu := 0; cpu < 2; cpu++ {
		wg.Add(1)
		go func(c *CPU) {
			defer wg.Done()
			b := make([]byte, 8)
			for i := 0; i < 10; i++ {
				if err := c.Load(mmu.KernelContext, 0x1000, b); err != nil {
					t.Error(err)
					return
				}
			}
		}(m.CPUByID(mmu.CPUID(cpu)))
	}
	wg.Wait()
	if err := m.Store(mmu.KernelContext, 0x1000, buf); err != nil {
		t.Fatal(err)
	}
	s0, s1 := m.MMU.TLBStatsOn(0), m.MMU.TLBStatsOn(1)
	if s0.Misses != 1 || s1.Misses != 1 {
		t.Fatalf("misses = %d/%d, want one cold miss per CPU", s0.Misses, s1.Misses)
	}
	if s0.Hits < 10 || s1.Hits < 9 {
		t.Fatalf("hits = %d/%d, want warm TLBs", s0.Hits, s1.Hits)
	}
}
