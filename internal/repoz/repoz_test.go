package repoz

import (
	"errors"
	"testing"

	"paramecium/internal/cert"
	"paramecium/internal/obj"
	"paramecium/internal/sandbox"
)

func pvmImage(name string) *Image {
	prog := sandbox.MustAssemble("loadi r0, 1\nhalt r0")
	return &Image{Name: name, Kind: KindPVM, Data: prog.Encode()}
}

func TestAddGetRemove(t *testing.T) {
	r := New()
	img := pvmImage("filter")
	if err := r.Add(img); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("filter")
	if err != nil || got != img {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if err := r.Add(pvmImage("filter")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := r.Remove("filter"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("filter"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after remove: %v", err)
	}
	if err := r.Remove("filter"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestAddValidation(t *testing.T) {
	r := New()
	if err := r.Add(nil); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("nil: %v", err)
	}
	if err := r.Add(&Image{Name: "", Kind: KindPVM}); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("unnamed: %v", err)
	}
	if err := r.Add(&Image{Name: "x", Kind: Kind("weird")}); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("bad kind: %v", err)
	}
}

func TestReplace(t *testing.T) {
	r := New()
	if err := r.Replace(pvmImage("f")); err != nil {
		t.Fatal(err)
	}
	v2 := pvmImage("f")
	v2.Data = append(v2.Data, 0)
	if err := r.Replace(v2); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get("f")
	if got != v2 {
		t.Fatal("replace did not take")
	}
}

func TestList(t *testing.T) {
	r := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := r.Add(pvmImage(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.List()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
}

func TestCertify(t *testing.T) {
	r := New()
	img := pvmImage("driver")
	if err := r.Add(img); err != nil {
		t.Fatal(err)
	}
	admin := cert.NewKeyCertifier("admin", cert.GenerateKey(1), cert.PrivKernelResident)
	c, err := admin.Certify("driver", img.Data, cert.PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Certify("driver", c); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get("driver")
	if got.Cert != c {
		t.Fatal("certificate not attached")
	}
	// Certificate over different bytes is rejected.
	other, err := admin.Certify("driver", []byte("other bytes"), cert.PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Certify("driver", other); err == nil {
		t.Fatal("mismatched certificate accepted")
	}
	if err := r.Certify("ghost", c); !errors.Is(err, ErrNotFound) {
		t.Fatalf("certify missing: %v", err)
	}
}

func TestConstructor(t *testing.T) {
	r := New()
	if err := r.Add(&Image{Name: "alloc", Kind: KindNative, Data: []byte("cfg")}); err != nil {
		t.Fatal(err)
	}
	var gotData []byte
	if err := r.RegisterConstructor("alloc", func(data []byte) (obj.Instance, error) {
		gotData = data
		return obj.New("alloc", nil), nil
	}); err != nil {
		t.Fatal(err)
	}
	inst, err := r.Construct("alloc")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Class() != "alloc" || string(gotData) != "cfg" {
		t.Fatalf("constructed %v with data %q", inst.Class(), gotData)
	}
	// Error paths.
	if err := r.RegisterConstructor("alloc", func([]byte) (obj.Instance, error) { return nil, nil }); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate ctor: %v", err)
	}
	if err := r.RegisterConstructor("x", nil); err == nil {
		t.Fatal("nil ctor accepted")
	}
	if _, err := r.Construct("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("construct missing: %v", err)
	}
	if err := r.Add(pvmImage("prog")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Construct("prog"); err == nil {
		t.Fatal("constructed a PVM image natively")
	}
	if err := r.Add(&Image{Name: "orphan", Kind: KindNative}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Construct("orphan"); !errors.Is(err, ErrNoConstructor) {
		t.Fatalf("orphan: %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	r := New()
	img := pvmImage("net-filter")
	if err := r.Add(img); err != nil {
		t.Fatal(err)
	}
	admin := cert.NewKeyCertifier("admin", cert.GenerateKey(1), cert.PrivKernelResident)
	c, err := admin.Certify("net-filter", img.Data, cert.PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Certify("net-filter", c); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(&Image{Name: "native-thing", Kind: KindNative, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}

	blob, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	names := back.List()
	if len(names) != 2 {
		t.Fatalf("round-tripped names = %v", names)
	}
	got, err := back.Get("net-filter")
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != img.Digest() {
		t.Fatal("image bytes changed in round trip")
	}
	if got.Cert == nil || got.Cert.Issuer != "admin" || got.Cert.Digest != c.Digest {
		t.Fatalf("certificate lost: %+v", got.Cert)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("bad json: %v", err)
	}
	if _, err := Unmarshal([]byte(`[{"name":"x","kind":"pvm","data":"!!!"}]`)); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("bad base64: %v", err)
	}
	if _, err := Unmarshal([]byte(`[{"name":"x","kind":"pvm","data":"","cert":"!!!"}]`)); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("bad cert b64: %v", err)
	}
	if _, err := Unmarshal([]byte(`[{"name":"x","kind":"pvm","data":"","cert":"Z2FyYmFnZQ=="}]`)); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("bad cert bytes: %v", err)
	}
}

func TestImageDigestStable(t *testing.T) {
	a := pvmImage("x")
	b := pvmImage("x")
	if a.Digest() != b.Digest() {
		t.Fatal("identical images, different digests")
	}
	b.Data = append(b.Data, 1)
	if a.Digest() == b.Digest() {
		t.Fatal("different images, same digest")
	}
}
