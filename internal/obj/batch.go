package obj

import (
	"fmt"
	"reflect"
)

// Batcher executes a group of pre-resolved calls together. The
// cross-domain proxy implements it to carry a whole group across the
// protection boundary in a single crossing — one trap, one
// context-switch pair — amortizing the fixed crossing cost over the
// group, the way active-message systems vector requests. Local
// handles have no batcher and dispatch one by one.
//
// DispatchBatch receives entries whose handles all name this batcher.
// It records each entry's results or error with SetResult and returns
// an error only when the group as a whole could not be attempted (the
// route itself failed); per-call failures are per-entry state.
type Batcher interface {
	DispatchBatch(calls []BatchCall) error
}

// BatchCall is one queued invocation of a Batch: the resolved handle,
// its arguments, and — after Run — its results or error.
type BatchCall struct {
	h    MethodHandle
	args []any
	out  []any // caller-provided result buffer (AddInto); may be nil
	res  []any
	err  error
}

// Decl returns the type information of the entry's method.
func (c *BatchCall) Decl() *MethodDecl { return c.h.decl }

// Args returns the entry's argument list. Batchers read it; callers
// must not mutate it between Add and Run.
func (c *BatchCall) Args() []any { return c.args }

// Key returns the batcher-private routing key of the entry's handle
// (see NewBatchableHandle). It is how a Batcher finds the target slot
// without a name lookup.
func (c *BatchCall) Key() any { return c.h.bkey }

// Out returns the entry's caller-provided result buffer (nil unless
// queued with AddInto). Batchers dispatch through it — CallInto-style —
// so the entry's results land in caller-owned storage without an
// allocation.
func (c *BatchCall) Out() []any { return c.out }

// SetResult records the entry's outcome. Batchers call it once per
// entry; result arity against the declaration is the batcher's (or its
// dispatch path's) responsibility, exactly as for a single call.
func (c *BatchCall) SetResult(res []any, err error) {
	c.res, c.err = res, err
}

// Results returns the entry's results or error after Run.
func (c *BatchCall) Results() ([]any, error) { return c.res, c.err }

// Batch is an ordered list of pre-resolved invocations executed
// together by Run. Only maximal runs of CONSECUTIVE entries whose
// handles share a Batcher (calls through the same cross-domain proxy)
// are carried across the protection boundary in one crossing;
// everything else dispatches individually. Entries are never
// reordered — execution order is observable, so Run will not move an
// entry past one with a different target to enlarge a group.
//
// The mixed-target pitfall follows directly: a batch alternating
// between two proxies (A, B, A, B, …) forms groups of one and pays a
// full crossing per entry — none of the 12x size-16 amortization —
// while the same entries ordered A, A, …, B, B, … pay two crossings
// total. Callers mixing targets should order entries deliberately,
// grouping same-target calls, whenever inter-target ordering does not
// matter to them.
//
// A batch is not a transaction: entries execute in order, a failing
// entry records its error and the rest still run — exactly the
// semantics of issuing the calls one by one, minus the repeated
// crossings.
//
// A Batch is reusable: Reset keeps the entry array's capacity, so a
// steady-state caller building same-sized batches allocates nothing
// for the batch machinery. It is not safe for concurrent use; build
// and Run a batch from one goroutine (any number of goroutines may
// each run their own).
type Batch struct {
	calls []BatchCall
}

// NewBatch returns an empty batch with room for n entries.
func NewBatch(n int) *Batch {
	return &Batch{calls: make([]BatchCall, 0, n)}
}

// Add queues one invocation. Argument arity is validated immediately,
// so a malformed entry fails at Add rather than poisoning Run.
func (b *Batch) Add(h MethodHandle, args ...any) error {
	return b.AddInto(h, nil, args...)
}

// AddInto is Add with a caller-provided result buffer: the entry's
// results are appended to out (typically a zero-length slice over a
// reused array), exactly as MethodHandle.CallInto threads a buffer
// through a single call. A steady-state caller that reuses the batch
// (Reset) and its per-entry buffers completes whole vectored rounds
// with zero allocations for the batch machinery and results alike.
// After Run, the entry's Results are out plus exactly the method's
// results; the buffer's array is the caller's to reuse once read.
func (b *Batch) AddInto(h MethodHandle, out []any, args ...any) error {
	if h.call == nil {
		return fmt.Errorf("%w: batch entry through zero method handle", ErrUnbound)
	}
	if err := CheckArity(h.decl, args); err != nil {
		return err
	}
	b.calls = append(b.calls, BatchCall{h: h, args: args, out: out})
	return nil
}

// Len reports the number of queued entries.
func (b *Batch) Len() int { return len(b.calls) }

// Call returns the i'th entry (for reading results after Run).
func (b *Batch) Call(i int) *BatchCall { return &b.calls[i] }

// Results returns the i'th entry's results or error after Run.
func (b *Batch) Results(i int) ([]any, error) { return b.calls[i].Results() }

// Reset empties the batch, keeping the entry array's capacity and
// dropping all value references so a pooled batch does not pin caller
// data.
func (b *Batch) Reset() {
	for i := range b.calls {
		b.calls[i] = BatchCall{}
	}
	b.calls = b.calls[:0]
}

// Run executes the batch in order. Maximal runs of consecutive
// entries sharing one Batcher are handed to it as a group — one
// protection crossing for the whole run — while entries with no
// batcher (local objects, interposers) dispatch directly. Per-entry
// results and errors land in the entries (Results); Run returns the
// first group-level dispatch error, if any, after attempting every
// group.
func (b *Batch) Run() error {
	var firstErr error
	calls := b.calls
	for i := 0; i < len(calls); {
		c := &calls[i]
		if c.h.batcher == nil {
			if c.out != nil {
				c.res, c.err = c.h.CallInto(c.out, c.args...)
			} else {
				c.res, c.err = c.h.Call(c.args...)
			}
			i++
			continue
		}
		j := i + 1
		for j < len(calls) && sameBatcher(calls[j].h.batcher, c.h.batcher) {
			j++
		}
		if err := c.h.batcher.DispatchBatch(calls[i:j]); err != nil && firstErr == nil {
			firstErr = err
		}
		i = j
	}
	return firstErr
}

// sameBatcher reports whether two handles name the same Batcher,
// without panicking on Batcher implementations of uncomparable types
// (a struct with a slice or map field): those never group — each
// entry dispatches as its own batch of one, which is correct, just
// unamortized. Pointer-typed batchers (the cross-domain proxy)
// compare by identity.
func sameBatcher(a, b Batcher) bool {
	if a == nil || b == nil {
		return false
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}
