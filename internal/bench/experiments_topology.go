package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"paramecium/internal/mmu"
	"paramecium/internal/obj"
	"paramecium/internal/ring"
)

// The P9 experiment sweeps the NUMA topology: the same two workloads —
// vectored parallel invocation and ring streaming — on machines of 1,
// 4, 16, 64 and 256 virtual CPUs arranged as square-ish node grids.
// Every worker owns its whole working set (target object, batch,
// result buffers, ring), so nothing serializes callers against each
// other: throughput should scale with CPUs until the host runs out of
// parallelism. Like the rest of the P-series this measures host
// wall-clock, not virtual cycles — scaling is a property of the real
// machine underneath.

// TopologyShape is one point of the P9 sweep: a machine of Nodes ×
// CPUsPerNode virtual CPUs.
type TopologyShape struct {
	Nodes       int
	CPUsPerNode int
}

// CPUs is the shape's total CPU count.
func (s TopologyShape) CPUs() int { return s.Nodes * s.CPUsPerNode }

// TopologyShapes is the P9 sweep: square-ish node grids at 1, 4, 16,
// 64 and 256 CPUs.
func TopologyShapes() []TopologyShape {
	return []TopologyShape{{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}}
}

// invokeBatchSize is the per-round batch each invoke worker issues —
// the P5 sweet spot where batch machinery amortizes to the per-entry
// floor and the steady-state round allocates nothing.
const invokeBatchSize = 16

// TopologyInvoke is the P9 parallel-invoke harness: one worker per
// virtual CPU, each with its own counter object in a shared server
// domain, its own pre-resolved handle and its own reusable batch and
// result buffers. The steady-state round — batch machinery, crossing,
// method bodies, results — allocates nothing, which CI gates the
// cpus=16 row to.
type TopologyInvoke struct {
	W       *World
	workers int
	handles []obj.MethodHandle
	batches []*obj.Batch
	bufs    [][][1]any
}

// NewTopologyInvoke boots a nodes × cpusPerNode world and wires one
// invoke worker per CPU.
func NewTopologyInvoke(nodes, cpusPerNode int) *TopologyInvoke {
	w := NewWorldTopology(nodes, cpusPerNode)
	h := &TopologyInvoke{W: w, workers: nodes * cpusPerNode}
	serverDom := w.K.NewDomain("server")
	clientDom := w.K.NewDomain("client")
	decl := obj.MustInterfaceDecl("bench.atomic.v1", obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	for i := 0; i < h.workers; i++ {
		server := obj.New(fmt.Sprintf("atomic-counter-%d", i), w.K.Meter)
		n := new(atomic.Int64)
		bi, err := server.AddInterface(decl, n)
		if err != nil {
			panic(err)
		}
		// Bound in the buffer-threading form, as in SharedCounterHandleCPUs:
		// callers that thread result buffers complete whole invocations
		// with zero allocations.
		bi.MustBindInto("inc", func(out []any, _ ...any) ([]any, error) {
			n.Add(1)
			return append(out, n), nil
		})
		path := fmt.Sprintf("/services/atomic/w%d", i)
		if err := w.K.Register(path, server, serverDom.Ctx); err != nil {
			panic(err)
		}
		inc, err := clientDom.ResolveMethod(path, "bench.atomic.v1", "inc")
		if err != nil {
			panic(err)
		}
		h.handles = append(h.handles, inc)
		h.batches = append(h.batches, obj.NewBatch(invokeBatchSize))
		h.bufs = append(h.bufs, make([][1]any, invokeBatchSize))
	}
	return h
}

// Run performs n cross-domain invocations split evenly across the
// workers, each worker issuing vectored batches against its own
// target.
func (h *TopologyInvoke) Run(n int) {
	h.eachWorker(n, func(w, quota int) {
		batch, bufs, inc := h.batches[w], h.bufs[w], h.handles[w]
		for i := 0; i < quota; {
			k := invokeBatchSize
			if rem := quota - i; rem < k {
				k = rem
			}
			batch.Reset()
			for j := 0; j < k; j++ {
				if err := batch.AddInto(inc, bufs[j][:0]); err != nil {
					panic(fmt.Sprintf("bench: topology invoke add: %v", err))
				}
			}
			if err := batch.Run(); err != nil {
				panic(fmt.Sprintf("bench: topology invoke run: %v", err))
			}
			i += k
		}
	})
}

// eachWorker splits n ops across the harness's workers (first workers
// pick up the remainder) and runs body concurrently, one goroutine per
// worker with a non-zero quota.
func (h *TopologyInvoke) eachWorker(n int, body func(w, quota int)) {
	eachWorkers(h.workers, n, body)
}

func eachWorkers(workers, n int, body func(w, quota int)) {
	each, extra := n/workers, n%workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		quota := each
		if w < extra {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			body(w, quota)
		}(w, quota)
	}
	wg.Wait()
}

// streamBurst and streamRecordSize fix the P9 streaming workload at
// the P7 reference point: 64-record bursts of 256-byte records,
// published in place.
const (
	streamBurst      = 64
	streamRecordSize = 256
)

// TopologyStream is the P9 ring-stream harness: one SPSC ring per
// virtual CPU between a shared producer domain and a shared consumer
// domain, each with its own drain service as the doorbell — per
// worker, the P7 place-path protocol, all rings streaming
// concurrently.
type TopologyStream struct {
	W       *World
	workers int
	prods   []*ring.Producer
}

// NewTopologyStream boots a nodes × cpusPerNode world and wires one
// ring streamer per CPU.
func NewTopologyStream(nodes, cpusPerNode int) *TopologyStream {
	w := NewWorldTopology(nodes, cpusPerNode)
	h := &TopologyStream{W: w, workers: nodes * cpusPerNode}
	prodDom := w.K.NewDomain("producer")
	consDom := w.K.NewDomain("consumer")
	decl := obj.MustInterfaceDecl("bench.ringdrain.v1",
		obj.MethodDecl{Name: "drain", NumIn: 0, NumOut: 0})
	for i := 0; i < h.workers; i++ {
		r, err := prodDom.NewRing(consDom, 2*streamBurst, streamRecordSize)
		if err != nil {
			panic(fmt.Sprintf("bench: topology ring: %v", err))
		}
		cons := r.Consumer()
		server := obj.New(fmt.Sprintf("ring-drain-%d", i), w.K.Meter)
		bi, err := server.AddInterface(decl, nil)
		if err != nil {
			panic(err)
		}
		// The P7 place-path drain: validate each record's 8-byte
		// descriptor in place and release the slot; payload bytes never
		// ride the protocol.
		bi.MustBindInto("drain", func(out []any, _ ...any) ([]any, error) {
			for {
				_, n, err := cons.Peek()
				if err != nil {
					if errors.Is(err, ring.ErrEmpty) {
						return out, nil
					}
					return nil, err
				}
				if n != streamRecordSize {
					return nil, fmt.Errorf("bench: ring record %d bytes, want %d", n, streamRecordSize)
				}
				if err := cons.Release(); err != nil {
					return nil, err
				}
			}
		})
		path := fmt.Sprintf("/services/ringdrain/w%d", i)
		if err := w.K.Register(path, server, consDom.Ctx); err != nil {
			panic(err)
		}
		drain, err := prodDom.ResolveMethod(path, "bench.ringdrain.v1", "drain")
		if err != nil {
			panic(err)
		}
		prod := r.Producer()
		prod.SetDoorbell(drain)
		// Stage the in-place payload pattern once, as P7's Prepare does:
		// production writes the mapped slots at the producer's own
		// (charged) pace, and per record only the descriptor rides.
		off, err := prod.ProduceOffset()
		if err != nil {
			panic(err)
		}
		pattern := make([]byte, streamRecordSize)
		for j := range pattern {
			pattern[j] = 0x5A
		}
		if err := r.Segment().Store(off, pattern); err != nil {
			panic(err)
		}
		h.prods = append(h.prods, prod)
	}
	return h
}

// Run streams n records split evenly across the workers, each pushing
// bursts through its own ring and ringing its own doorbell.
func (h *TopologyStream) Run(n int) {
	eachWorkers(h.workers, n, func(w, quota int) {
		prod := h.prods[w]
		for i := 0; i < quota; {
			k := streamBurst
			if rem := quota - i; rem < k {
				k = rem
			}
			for j := 0; j < k; j++ {
				if err := prod.PushInPlace(streamRecordSize); err != nil {
					panic(fmt.Sprintf("bench: topology ring push: %v", err))
				}
			}
			if err := prod.Notify(); err != nil {
				panic(fmt.Sprintf("bench: topology ring notify: %v", err))
			}
			i += k
		}
	})
}

// P9ScalingSweep sweeps both P9 workloads across the topology shapes
// and reports throughput, speedup over the single-CPU machine, and
// where the TLB traffic landed — with unified CPU identity every
// worker's translations charge the CPU it actually ran on, so the
// misses spread across the grid instead of funnelling through one
// shared TLB.
func P9ScalingSweep() Table {
	t := Table{
		ID:     "P9",
		Title:  "NUMA topology scaling: parallel invoke and ring streaming (host ops/ms, higher is better)",
		Claim:  `scheduler CPU k and machine CPU k are one identity on a node-aware topology: per-worker working sets stay on their own CPUs and nodes, so both the invocation and streaming planes scale with the machine instead of a global serialization point`,
		Header: []string{"cpus", "nodes", "invoke ops/ms", "speedup", "stream recs/ms", "speedup", "CPUs with TLB traffic"},
	}
	const total = 8_192
	run := func(n int, f func(int)) float64 {
		start := time.Now()
		f(n)
		elapsed := time.Since(start)
		if elapsed <= 0 {
			return 0
		}
		return float64(n) / (elapsed.Seconds() * 1000)
	}
	var invokeBase, streamBase float64
	for _, shape := range TopologyShapes() {
		ncpu := shape.CPUs()
		hi := NewTopologyInvoke(shape.Nodes, shape.CPUsPerNode)
		invoke := run(total, hi.Run)
		hs := NewTopologyStream(shape.Nodes, shape.CPUsPerNode)
		stream := run(total, hs.Run)
		if ncpu == 1 {
			invokeBase, streamBase = invoke, stream
		}
		populated := 0
		for i := 0; i < ncpu; i++ {
			if hi.W.K.Machine.MMU.TLBStatsOn(mmu.CPUID(i)).Misses > 0 {
				populated++
			}
		}
		speedup := func(v, base float64) string {
			if base <= 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.2fx", v/base)
		}
		t.AddRow(ncpu, shape.Nodes,
			fmt.Sprintf("%.0f", invoke), speedup(invoke, invokeBase),
			fmt.Sprintf("%.0f", stream), speedup(stream, streamBase),
			populated)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("host wall-clock at GOMAXPROCS=%d; not deterministic virtual cycles", runtime.GOMAXPROCS(0)),
		"one worker per virtual CPU; every worker owns its target object, batch, buffers and ring — nothing shared between callers",
		"invoke = vectored batches of 16 against per-worker counters; stream = P7's place path, 64-record bursts of 256-byte records",
		"CI gates cpus=16/cpus=1 invoke ns/op at a floor ratio (benchgate -minscaling) on multi-core runners")
	return t
}
