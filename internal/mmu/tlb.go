package mmu

// tlb is a fully associative, ASID-tagged translation look-aside buffer
// with FIFO replacement. FIFO (rather than LRU) keeps the replacement
// behaviour trivially deterministic, which matters for reproducible
// experiment output.
//
// Each virtual CPU owns one tlb; the owning cpu's mutex guards every
// access, so the counters here are plain integers.
type tlb struct {
	size    int
	entries map[tlbKey]*tlbEntry
	fifo    []tlbKey // insertion order, oldest first
	hits    uint64
	misses  uint64
	flushes uint64
	// shootdowns counts cross-CPU invalidations RECEIVED: entries this
	// TLB actually held that a Map/Unmap/Protect initiated on another
	// CPU had to shoot down (one IPI each in the cost model).
	shootdowns uint64
}

type tlbKey struct {
	ctx ContextID
	vpn uint64
}

type tlbEntry struct {
	frame uint64
	perm  Perm
}

func newTLB(size int) *tlb {
	return &tlb{
		size:    size,
		entries: make(map[tlbKey]*tlbEntry, size),
	}
}

func (t *tlb) lookup(ctx ContextID, vpn uint64) (*tlbEntry, bool) {
	e, ok := t.entries[tlbKey{ctx, vpn}]
	if ok {
		t.hits++
	} else {
		t.misses++
	}
	return e, ok
}

func (t *tlb) insert(ctx ContextID, vpn, frame uint64, perm Perm) {
	k := tlbKey{ctx, vpn}
	if _, ok := t.entries[k]; ok {
		t.entries[k] = &tlbEntry{frame: frame, perm: perm}
		return
	}
	for len(t.entries) >= t.size {
		t.evictOldest()
	}
	t.entries[k] = &tlbEntry{frame: frame, perm: perm}
	t.fifo = append(t.fifo, k)
}

func (t *tlb) evictOldest() {
	for len(t.fifo) > 0 {
		k := t.fifo[0]
		t.fifo = t.fifo[1:]
		if _, ok := t.entries[k]; ok {
			delete(t.entries, k)
			return
		}
		// Stale FIFO slot (entry was invalidated); keep scanning.
	}
}

// present reports whether the TLB holds an entry for the page without
// touching the hit/miss counters (an invalidation probe, not a lookup).
func (t *tlb) present(ctx ContextID, vpn uint64) bool {
	_, ok := t.entries[tlbKey{ctx, vpn}]
	return ok
}

func (t *tlb) invalidate(ctx ContextID, vpn uint64) {
	delete(t.entries, tlbKey{ctx, vpn})
}

// invalidateContext removes every entry tagged with ctx and reports how
// many were held, so context teardown can tell which CPUs actually need
// an invalidation IPI.
func (t *tlb) invalidateContext(ctx ContextID) int {
	n := 0
	for k := range t.entries {
		if k.ctx == ctx {
			delete(t.entries, k)
			n++
		}
	}
	return n
}

func (t *tlb) flush() {
	clear(t.entries)
	t.fifo = t.fifo[:0]
	t.flushes++
}
