package proxy

import (
	"errors"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/obj"
)

var calcDecl = obj.MustInterfaceDecl("test.calc.v1",
	obj.MethodDecl{Name: "add", NumIn: 2, NumOut: 1},
	obj.MethodDecl{Name: "total", NumIn: 0, NumOut: 1},
)

func newCalc(meter *clock.Meter) *obj.Object {
	o := obj.New("calc", meter)
	total := new(int)
	bi, err := o.AddInterface(calcDecl, total)
	if err != nil {
		panic(err)
	}
	bi.MustBind("add", func(args ...any) ([]any, error) {
		sum := args[0].(int) + args[1].(int)
		*total += sum
		return []any{sum}, nil
	}).MustBind("total", func(...any) ([]any, error) {
		return []any{*total}, nil
	})
	return o
}

func setup() (*Factory, *mem.Service, *hw.Machine) {
	m := hw.New(hw.Config{PhysFrames: 64})
	svc := mem.New(m)
	return NewFactory(svc, 0), svc, m
}

func TestProxyInvoke(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	calc := newCalc(m.Meter)
	p, err := f.New(clientCtx, serverCtx, calc)
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := p.Iface("test.calc.v1")
	if !ok {
		t.Fatal("proxy hides interface")
	}
	res, err := iv.Invoke("add", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int) != 5 {
		t.Fatalf("add = %v", res)
	}
	res, err = iv.Invoke("total")
	if err != nil || res[0].(int) != 5 {
		t.Fatalf("total = %v, %v", res, err)
	}
	if p.Calls() != 2 {
		t.Fatalf("calls = %d", p.Calls())
	}
}

func TestProxyPresentsSameInterfaces(t *testing.T) {
	f, svc, m := setup()
	calc := newCalc(m.Meter)
	p, err := f.New(svc.NewDomain(), svc.NewDomain(), calc)
	if err != nil {
		t.Fatal(err)
	}
	a, b := calc.InterfaceNames(), p.InterfaceNames()
	if len(a) != len(b) {
		t.Fatalf("interface sets differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interface sets differ: %v vs %v", a, b)
		}
	}
	if p.Class() != calc.Class() {
		t.Fatalf("class = %q", p.Class())
	}
	if _, ok := p.Iface("phantom"); ok {
		t.Fatal("phantom interface")
	}
	iv, _ := p.Iface("test.calc.v1")
	if iv.Decl() != calcDecl {
		t.Fatal("decl not preserved")
	}
	if iv.State() != nil {
		t.Fatal("cross-domain state pointer leaked")
	}
}

func TestProxyChargesCrossDomainCosts(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	p, err := f.New(clientCtx, serverCtx, newCalc(m.Meter))
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.calc.v1")
	m.Meter.ResetCounts()
	if _, err := iv.Invoke("add", 1, 2); err != nil {
		t.Fatal(err)
	}
	// One page fault trap, two context switches (there and back).
	if got := m.Meter.Count(clock.OpTrapEnter); got != 1 {
		t.Errorf("trap entries = %d, want 1", got)
	}
	if got := m.Meter.Count(clock.OpPageFault); got != 1 {
		t.Errorf("page faults = %d, want 1", got)
	}
	if got := m.Meter.Count(clock.OpCtxSwitch); got != 2 {
		t.Errorf("context switches = %d, want 2", got)
	}
	if got := m.Meter.Count(clock.OpCopyWord); got == 0 {
		t.Error("no argument copy charged")
	}
}

func TestProxyEveryCallFaults(t *testing.T) {
	// The entry page must stay unmapped: each invocation pays the
	// fault (this is the design's cost model, not an optimization
	// bug).
	f, svc, m := setup()
	p, err := f.New(svc.NewDomain(), svc.NewDomain(), newCalc(m.Meter))
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.calc.v1")
	m.Meter.ResetCounts()
	for i := 0; i < 5; i++ {
		if _, err := iv.Invoke("total"); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Meter.Count(clock.OpPageFault); got != 5 {
		t.Fatalf("page faults = %d, want 5", got)
	}
}

func TestProxyMethodErrors(t *testing.T) {
	f, svc, m := setup()
	p, err := f.New(svc.NewDomain(), svc.NewDomain(), newCalc(m.Meter))
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.calc.v1")
	if _, err := iv.Invoke("missing"); !errors.Is(err, obj.ErrNoMethod) {
		t.Fatalf("missing method: %v", err)
	}
	if _, err := iv.Invoke("add", 1); !errors.Is(err, obj.ErrArity) {
		t.Fatalf("bad arity: %v", err)
	}
}

func TestProxyPropagatesTargetError(t *testing.T) {
	f, svc, _ := setup()
	o := obj.New("failer", nil)
	decl := obj.MustInterfaceDecl("f.v1", obj.MethodDecl{Name: "boom", NumIn: 0, NumOut: 0})
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("kaboom")
	bi.MustBind("boom", func(...any) ([]any, error) { return nil, sentinel })
	p, err := f.New(svc.NewDomain(), svc.NewDomain(), o)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("f.v1")
	if _, err := iv.Invoke("boom"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestProxyClose(t *testing.T) {
	f, svc, m := setup()
	clientCtx := svc.NewDomain()
	p, err := f.New(clientCtx, svc.NewDomain(), newCalc(m.Meter))
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.calc.v1")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := iv.Invoke("total"); !errors.Is(err, ErrClosed) {
		t.Fatalf("invoke after close: %v", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	// The entry page handler is gone; a new proxy can be built for
	// the same client context.
	if _, err := f.New(clientCtx, svc.NewDomain(), newCalc(m.Meter)); err != nil {
		t.Fatal(err)
	}
}

func TestProxyTargetDomainDies(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	p, err := f.New(clientCtx, serverCtx, newCalc(m.Meter))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.DestroyDomain(serverCtx); err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.calc.v1")
	if _, err := iv.Invoke("total"); err == nil {
		t.Fatal("call into dead domain succeeded")
	}
}

func TestProxySameDomainSkipsSwitch(t *testing.T) {
	// A proxy whose target lives in the caller's own context pays the
	// fault but not the context switches.
	f, svc, m := setup()
	ctx := svc.NewDomain()
	if err := m.MMU.Switch(ctx); err != nil {
		t.Fatal(err)
	}
	p, err := f.New(ctx, ctx, newCalc(m.Meter))
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.calc.v1")
	m.Meter.ResetCounts()
	if _, err := iv.Invoke("total"); err != nil {
		t.Fatal(err)
	}
	if got := m.Meter.Count(clock.OpCtxSwitch); got != 0 {
		t.Fatalf("context switches = %d, want 0", got)
	}
}

func TestProxyDistinctEntryPages(t *testing.T) {
	// Two proxies in the same client context must not collide.
	f, svc, m := setup()
	clientCtx := svc.NewDomain()
	p1, err := f.New(clientCtx, svc.NewDomain(), newCalc(m.Meter))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.New(clientCtx, svc.NewDomain(), newCalc(m.Meter))
	if err != nil {
		t.Fatal(err)
	}
	iv1, _ := p1.Iface("test.calc.v1")
	iv2, _ := p2.Iface("test.calc.v1")
	if _, err := iv1.Invoke("add", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := iv2.Invoke("add", 2, 2); err != nil {
		t.Fatal(err)
	}
	r1, _ := iv1.Invoke("total")
	r2, _ := iv2.Invoke("total")
	if r1[0].(int) != 2 || r2[0].(int) != 4 {
		t.Fatalf("totals = %v, %v (state mixed up)", r1, r2)
	}
}

func TestProxyNilTarget(t *testing.T) {
	f, svc, _ := setup()
	if _, err := f.New(svc.NewDomain(), svc.NewDomain(), nil); err == nil {
		t.Fatal("nil target accepted")
	}
}

func TestWordsOf(t *testing.T) {
	cases := []struct {
		vals []any
		want uint64
	}{
		{nil, 0},
		{[]any{1, 2}, 2},
		{[]any{"hello"}, 2},              // 5 bytes + 8 header = 13 -> 2 words
		{[]any{[]byte("0123456789")}, 3}, // 10 + 8 = 18 -> 3 words
		{[]any{nil}, 1},
		{[]any{[]any{1, 2, 3}}, 3},
	}
	for _, c := range cases {
		if got := wordsOf(c.vals); got != c.want {
			t.Errorf("wordsOf(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

func TestCrossDomainVsLocalCostGap(t *testing.T) {
	// The experiment T2 premise: a cross-domain call costs far more
	// than a local interface call.
	f, svc, m := setup()
	calc := newCalc(m.Meter)
	p, err := f.New(svc.NewDomain(), svc.NewDomain(), calc)
	if err != nil {
		t.Fatal(err)
	}
	local, _ := calc.Iface("test.calc.v1")
	remote, _ := p.Iface("test.calc.v1")

	w := m.Meter.Clock.StartWatch()
	for i := 0; i < 100; i++ {
		if _, err := local.Invoke("total"); err != nil {
			t.Fatal(err)
		}
	}
	localCycles := w.Elapsed()

	w = m.Meter.Clock.StartWatch()
	for i := 0; i < 100; i++ {
		if _, err := remote.Invoke("total"); err != nil {
			t.Fatal(err)
		}
	}
	remoteCycles := w.Elapsed()

	if remoteCycles < localCycles*10 {
		t.Fatalf("cross-domain (%d) not clearly costlier than local (%d)", remoteCycles, localCycles)
	}
}
