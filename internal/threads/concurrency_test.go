package threads

import (
	"sync"
	"sync/atomic"
	"testing"

	"paramecium/internal/clock"
)

// TestConcurrentSpawn: thread creation may come from any host
// goroutine (the concurrent invocation plane promotes proto-threads
// from parallel fault handlers), so Spawn must be safe to call
// concurrently and every spawned thread must run exactly once.
func TestConcurrentSpawn(t *testing.T) {
	s := NewScheduler(clock.NewMeter(clock.DefaultCosts()))
	const spawners = 8
	const each = 25
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < spawners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Spawn("worker", func(*Thread) { ran.Add(1) })
			}
		}()
	}
	wg.Wait()
	s.RunUntilIdle()
	if got := ran.Load(); got != spawners*each {
		t.Fatalf("%d threads ran, want %d", got, spawners*each)
	}
	if live := s.LiveCount(); live != 0 {
		t.Fatalf("LiveCount = %d after idle, want 0", live)
	}
}

// TestConcurrentPopUpProto: proto-thread pop-ups from parallel event
// sources. Non-blocking handlers must all complete inline with no
// promotions charged.
func TestConcurrentPopUpProto(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	s := NewScheduler(meter)
	const dispatchers = 8
	const each = 25
	var ran atomic.Int64
	var inline atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < dispatchers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_, completed := s.PopUpProto("popup", func(*Thread) { ran.Add(1) })
				if completed {
					inline.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	s.RunUntilIdle()
	if got := ran.Load(); got != dispatchers*each {
		t.Fatalf("%d handlers ran, want %d", got, dispatchers*each)
	}
	if got := inline.Load(); got != dispatchers*each {
		t.Fatalf("%d handlers completed inline, want all %d", got, dispatchers*each)
	}
	if promoted := meter.Count(clock.OpPromote); promoted != 0 {
		t.Fatalf("%d promotions charged for non-blocking handlers", promoted)
	}
}
