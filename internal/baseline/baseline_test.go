package baseline

import (
	"errors"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/netstack"
)

func newMonolith() (*Monolith, *hw.Machine) {
	m := hw.New(hw.Config{PhysFrames: 16})
	return New(m), m
}

func TestSyscallPath(t *testing.T) {
	mono, machine := newMonolith()
	if err := mono.AddService("getpid", func(...any) ([]any, error) {
		return []any{42}, nil
	}); err != nil {
		t.Fatal(err)
	}
	mono.Seal()
	res, err := mono.Syscall("getpid")
	if err != nil || res[0].(int) != 42 {
		t.Fatalf("getpid = %v, %v", res, err)
	}
	if machine.Meter.Count(clock.OpTrapEnter) != 1 || machine.Meter.Count(clock.OpTrapExit) != 1 {
		t.Fatal("syscall did not charge trap entry/exit")
	}
	if mono.Calls() != 1 {
		t.Fatalf("calls = %d", mono.Calls())
	}
}

func TestSyscallUnknownService(t *testing.T) {
	mono, _ := newMonolith()
	mono.Seal()
	if _, err := mono.Syscall("nope"); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v", err)
	}
}

func TestSealedKernelRejectsNewServices(t *testing.T) {
	mono, _ := newMonolith()
	mono.Seal()
	if !mono.Sealed() {
		t.Fatal("not sealed")
	}
	if err := mono.AddService("late", func(...any) ([]any, error) { return nil, nil }); !errors.Is(err, ErrSealed) {
		t.Fatalf("late add: %v", err)
	}
}

func TestAddServiceValidation(t *testing.T) {
	mono, _ := newMonolith()
	if err := mono.AddService("x", nil); err == nil {
		t.Fatal("nil service accepted")
	}
	if err := mono.AddService("x", func(...any) ([]any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := mono.AddService("x", func(...any) ([]any, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestSyscallChargesCopyBySize(t *testing.T) {
	mono, machine := newMonolith()
	if err := mono.AddService("write", func(args ...any) ([]any, error) {
		return []any{len(args[0].([]byte))}, nil
	}); err != nil {
		t.Fatal(err)
	}
	mono.Seal()
	machine.Meter.ResetCounts()
	if _, err := mono.Syscall("write", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	small := machine.Meter.Count(clock.OpCopyWord)
	machine.Meter.ResetCounts()
	if _, err := mono.Syscall("write", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	big := machine.Meter.Count(clock.OpCopyWord)
	if big <= small {
		t.Fatalf("copy charge did not scale: %d vs %d", small, big)
	}
}

func frame(port uint16, payload []byte) []byte {
	return netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.MAC{2, 0, 0, 0, 0, 2},
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
		500, port, payload)
}

func TestNetPathFixedFilter(t *testing.T) {
	mono, _ := newMonolith()
	mono.Seal()
	p := NewNetPath(mono, 7)
	p.Deliver(frame(7, []byte("keep")))
	p.Deliver(frame(8, []byte("toss")))
	p.Deliver([]byte("junk"))
	delivered, dropped := p.Stats()
	if delivered != 1 || dropped != 2 {
		t.Fatalf("stats = %d/%d", delivered, dropped)
	}
	payload, ok := p.Recv()
	if !ok || string(payload) != "keep" {
		t.Fatalf("recv = %q, %v", payload, ok)
	}
	if _, ok := p.Recv(); ok {
		t.Fatal("phantom payload")
	}
}

func TestNetPathUserFilterPaysSyscall(t *testing.T) {
	mono, machine := newMonolith()
	userFilter := func(f []byte) bool { return len(f) > 0 }
	if err := mono.AddService("netpath.filter_upcall", func(args ...any) ([]any, error) {
		return []any{userFilter(args[0].([]byte))}, nil
	}); err != nil {
		t.Fatal(err)
	}
	mono.Seal()
	p := NewNetPath(mono, 7)

	machine.Meter.ResetCounts()
	p.Deliver(frame(7, []byte("fast")))
	if machine.Meter.Count(clock.OpTrapEnter) != 0 {
		t.Fatal("fixed path trapped")
	}
	p.DeliverViaUserFilter(frame(7, []byte("slow")), userFilter)
	if machine.Meter.Count(clock.OpTrapEnter) != 1 {
		t.Fatal("user-filter path did not trap")
	}
	delivered, _ := p.Stats()
	if delivered != 2 {
		t.Fatalf("delivered = %d", delivered)
	}
}

func TestNetPathUserFilterReject(t *testing.T) {
	mono, _ := newMonolith()
	if err := mono.AddService("netpath.filter_upcall", func(args ...any) ([]any, error) {
		return []any{false}, nil
	}); err != nil {
		t.Fatal(err)
	}
	mono.Seal()
	p := NewNetPath(mono, 7)
	p.DeliverViaUserFilter(frame(7, []byte("x")), nil)
	delivered, dropped := p.Stats()
	if delivered != 0 || dropped != 1 {
		t.Fatalf("stats = %d/%d", delivered, dropped)
	}
}
