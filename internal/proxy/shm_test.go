package proxy

import (
	"bytes"
	"errors"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
	"paramecium/internal/shm"
)

var shareDecl = obj.MustInterfaceDecl("test.share.v1",
	obj.MethodDecl{Name: "attach", NumIn: 1, NumOut: 1},
)

// TestGrantCrossesAsOneWord drives the zero-copy bulk path end to end
// at the proxy layer: the caller passes a grant capability instead of
// the payload, the target attaches the segment inside its method, and
// the cycle charges show one capability word crossed — not the
// payload's 4 KiB.
func TestGrantCrossesAsOneWord(t *testing.T) {
	f, svc, m := setup()
	reg := shm.NewRegistry(svc)
	f.SetGrantRegistry(reg)
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()

	payload := bytes.Repeat([]byte{0xAB}, mmu.PageSize)
	seg, err := reg.NewSegment(clientCtx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Store(0, payload); err != nil {
		t.Fatal(err)
	}
	g, err := seg.Grant(serverCtx, shm.RO)
	if err != nil {
		t.Fatal(err)
	}

	server := obj.New("server", m.Meter)
	got := make([]byte, len(payload))
	bi, err := server.AddInterface(shareDecl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("attach", func(args ...any) ([]any, error) {
		att, err := reg.Attach(args[0].(shm.GrantRef))
		if err != nil {
			return nil, err
		}
		if err := att.Load(0, got); err != nil {
			return nil, err
		}
		return []any{att.Size()}, nil
	})
	p, err := f.New(clientCtx, serverCtx, server)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.share.v1")

	before := m.Meter.Snapshot()
	res, err := iv.Invoke("attach", g.Ref())
	if err != nil {
		t.Fatal(err)
	}
	after := m.Meter.Snapshot()
	if res[0].(int) != mmu.PageSize {
		t.Fatalf("attach returned %v", res[0])
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("target did not observe the owner's payload through the segment")
	}
	// The grant crossed as ONE word; the payload crossed as zero. The
	// target's in-place read of the page is charged as its own memory
	// traffic (one word per 8 bytes read), but the INVOCATION PLANE
	// carried 1 argument word + 1 result word — compare the ~513 words
	// a copied 4 KiB argument would have been charged.
	crossed := after[clock.OpCopyWord] - before[clock.OpCopyWord]
	pageWords := uint64(mmu.PageSize / 8)
	// att.Load(0, 4096) charges pageWords of memory traffic; the call
	// itself adds 2 (capability word in, size word out).
	if want := pageWords + 2; crossed != want {
		t.Fatalf("copy words charged = %d, want %d (1 capability word + 1 result word + the target's own %d-word read)",
			crossed, want, pageWords)
	}
}

// TestMisaddressedGrantFailsBeforeCrossing: a grant addressed to some
// other domain fails the call during argument decode — no context
// switch, no copy charge — with the registry's distinct error.
func TestMisaddressedGrantFailsBeforeCrossing(t *testing.T) {
	f, svc, m := setup()
	reg := shm.NewRegistry(svc)
	f.SetGrantRegistry(reg)
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	thirdCtx := svc.NewDomain()

	seg, err := reg.NewSegment(clientCtx, 1)
	if err != nil {
		t.Fatal(err)
	}
	misaddressed, err := seg.Grant(thirdCtx, shm.RO) // NOT the server
	if err != nil {
		t.Fatal(err)
	}

	server := obj.New("server", m.Meter)
	ran := false
	bi, _ := server.AddInterface(shareDecl, nil)
	bi.MustBind("attach", func(args ...any) ([]any, error) {
		ran = true
		return []any{0}, nil
	})
	p, err := f.New(clientCtx, serverCtx, server)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.share.v1")

	before := m.Meter.Snapshot()
	_, err = iv.Invoke("attach", misaddressed.Ref())
	after := m.Meter.Snapshot()
	if !errors.Is(err, shm.ErrWrongDomain) {
		t.Fatalf("err = %v, want ErrWrongDomain", err)
	}
	if ran {
		t.Fatal("target method ran despite the misaddressed grant")
	}
	if got := after[clock.OpCtxSwitch] - before[clock.OpCtxSwitch]; got != 0 {
		t.Fatalf("%d context switches charged for a call rejected at decode, want 0", got)
	}
	if got := after[clock.OpCopyWord] - before[clock.OpCopyWord]; got != 0 {
		t.Fatalf("%d copy words charged for a rejected call, want 0", got)
	}

	// A forged ref and a revoked grant are rejected the same way, each
	// with its own distinct error.
	if _, err := iv.Invoke("attach", shm.GrantRef(12345)); !errors.Is(err, shm.ErrNoGrant) {
		t.Fatalf("forged ref: err = %v, want ErrNoGrant", err)
	}
	ok, err := seg.Grant(serverCtx, shm.RO)
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Revoke(); err != nil {
		t.Fatal(err)
	}
	if _, err := iv.Invoke("attach", ok.Ref()); !errors.Is(err, shm.ErrRevoked) {
		t.Fatalf("revoked grant: err = %v, want ErrRevoked", err)
	}
	if ran {
		t.Fatal("target method ran despite rejected grants")
	}
}

// TestBatchEntryGrantFailureIsPerEntry: inside a vectored group, a bad
// grant capability fails only its own entry; the rest of the batch
// still runs in the one crossing.
func TestBatchEntryGrantFailureIsPerEntry(t *testing.T) {
	f, svc, m := setup()
	reg := shm.NewRegistry(svc)
	f.SetGrantRegistry(reg)
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	thirdCtx := svc.NewDomain()

	seg, err := reg.NewSegment(clientCtx, 1)
	if err != nil {
		t.Fatal(err)
	}
	good, err := seg.Grant(serverCtx, shm.RO)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := seg.Grant(thirdCtx, shm.RO)
	if err != nil {
		t.Fatal(err)
	}

	server := obj.New("server", m.Meter)
	attached := 0
	bi, _ := server.AddInterface(shareDecl, nil)
	bi.MustBind("attach", func(args ...any) ([]any, error) {
		if _, err := reg.Attach(args[0].(shm.GrantRef)); err != nil {
			return nil, err
		}
		attached++
		return []any{attached}, nil
	})
	p, err := f.New(clientCtx, serverCtx, server)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.share.v1")
	attach, err := iv.Resolve("attach")
	if err != nil {
		t.Fatal(err)
	}

	b := obj.NewBatch(3)
	_ = b.Add(attach, good.Ref())
	_ = b.Add(attach, bad.Ref())
	_ = b.Add(attach, good.Ref()) // idempotent re-attach
	if err := b.Run(); err != nil {
		t.Fatalf("group error = %v, want per-entry failure only", err)
	}
	if _, err := b.Results(0); err != nil {
		t.Fatalf("entry 0: %v", err)
	}
	if _, err := b.Results(1); !errors.Is(err, shm.ErrWrongDomain) {
		t.Fatalf("entry 1: err = %v, want ErrWrongDomain", err)
	}
	if _, err := b.Results(2); err != nil {
		t.Fatalf("entry 2: %v", err)
	}
	if attached != 2 {
		t.Fatalf("attached = %d, want 2 (entries around the failure ran)", attached)
	}
}
