// Package cpustate is the golden suite for the cpustate analyzer:
// per-CPU state is only reachable through a blessed CPU identity, and
// BootCPU is only referenced under an explicit doc-comment mention.
package cpustate

// CPUID is the CPU identity type.
type CPUID int

// BootCPU is CPU 0.
const BootCPU CPUID = 0

type vp struct{ id CPUID }

func (v *vp) ID() CPUID { return v.id }

type frame struct {
	CPU CPUID
}

type cpuState struct{ loads int }

type machine struct {
	cpus []cpuState
}

// cpu is the blessed accessor and may index freely.
func (m *machine) cpu(id CPUID) *cpuState {
	return &m.cpus[int(id)]
}

// bad indexes per-CPU state with an unrelated integer.
func (m *machine) bad(i int) *cpuState {
	return &m.cpus[i] // want `per-CPU state indexed by plain variable i`
}

// zero hardcodes a CPU slot.
func (m *machine) zero() int {
	return m.cpus[0].loads // want `per-CPU state indexed by literal 0`
}

// onCPU threads a CPUID through, which is blessed.
func (m *machine) onCPU(id CPUID) int {
	return m.cpus[id].loads
}

// conv converts explicitly to the identity type.
func (m *machine) conv(i int) int {
	return m.cpus[CPUID(i)].loads
}

// sweep ranges over the per-CPU array; the range key is CPU-shaped by
// construction.
func (m *machine) sweep() int {
	total := 0
	for i := range m.cpus {
		total += m.cpus[i].loads
	}
	return total
}

// fromFrame uses a frame's CPU slot and a virtual processor's own ID.
func (m *machine) fromFrame(f *frame, v *vp) {
	m.cpus[f.CPU].loads++
	m.cpus[v.ID()].loads++
}

// implicit references BootCPU without acknowledging it.
func (m *machine) implicit() *cpuState {
	return m.cpu(BootCPU) // want `BootCPU used as an implicit initiator`
}

// compat delegates from the boot CPU, as this comment documents.
func (m *machine) compat() *cpuState {
	return m.cpu(BootCPU)
}

// pinned is a reviewed deviation.
func (m *machine) pinned() *cpuState {
	//paralint:ignore cpustate fixture pins the boot CPU by construction
	return m.cpu(BootCPU)
}

// Machine mimics the hardware façade: Load/Store/Touch/TouchTagged are
// the boot-CPU compatibility access forms, the *On methods the
// identity-carrying ones.
type Machine struct{}

// Load is the compat read form, delegating from the boot CPU.
func (m *Machine) Load(va int, buf []byte) error { return nil }

// Store is the compat write form, delegating from the boot CPU.
func (m *Machine) Store(va int, buf []byte) error { return nil }

// LoadOn reads as the given CPU.
func (m *Machine) LoadOn(cpu CPUID, va int, buf []byte) error { return nil }

type segment struct{}

func (s *segment) Load(off int, buf []byte) error { return nil }

// undocumentedCompat reaches memory through the compat form without
// acknowledging whose TLB gets charged.
func undocumentedCompat(m *Machine, buf []byte) {
	_ = m.Load(0x40, buf)  // want `m.Load is the boot-CPU compatibility access form`
	_ = m.Store(0x40, buf) // want `m.Store is the boot-CPU compatibility access form`
}

// documentedCompat copies through the boot CPU deliberately, as this
// comment records.
func documentedCompat(m *Machine, buf []byte) {
	_ = m.Load(0x40, buf)
}

// identityCarrying threads the initiating CPU through the On form.
func identityCarrying(m *Machine, id CPUID, buf []byte) {
	_ = m.LoadOn(id, 0x40, buf)
}

// unrelatedLoad: Load on a non-Machine receiver is not the compat form.
func unrelatedLoad(s *segment, buf []byte) {
	_ = s.Load(0, buf)
}

// suppressedCompat is a reviewed deviation.
func suppressedCompat(m *Machine, buf []byte) {
	//paralint:ignore cpustate fixture pins the boot CPU by construction
	_ = m.Load(0x40, buf)
}
