// Package trace builds the paper's "powerful monitoring tools" out of
// interposing agents: wrap any instance registered in the name space
// with a Tracer and every method call is counted and timed in virtual
// cycles, without the target or its clients changing at all.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// MethodStats aggregates one method's observations.
type MethodStats struct {
	Calls  uint64
	Errors uint64
	Cycles uint64 // total virtual cycles inside the target
	Hist   Histogram
}

// Tracer is a measurement interposer. Install it by replacing the
// target's handle in the name space:
//
//	tr := trace.NewTracer(target, meter)
//	space.Replace("/shared/network", tr.Agent())
type Tracer struct {
	agent *obj.Interposer
	meter *clock.Meter

	mu    sync.Mutex
	stats map[string]*MethodStats // "iface.method"
}

// NewTracer wraps target, instrumenting every method of every
// exported interface.
func NewTracer(target obj.Instance, meter *clock.Meter) (*Tracer, error) {
	t := &Tracer{
		agent: obj.NewInterposer(target.Class()+"-tracer", target),
		meter: meter,
		stats: make(map[string]*MethodStats),
	}
	for _, ifaceName := range target.InterfaceNames() {
		iv, ok := target.Iface(ifaceName)
		if !ok {
			continue
		}
		for _, m := range iv.Decl().Methods {
			keyName := ifaceName + "." + m.Name
			if err := t.agent.Wrap(ifaceName, m.Name, func(next obj.Method, args ...any) ([]any, error) {
				var watch clock.Stopwatch
				if t.meter != nil {
					watch = t.meter.Clock.StartWatch()
				}
				res, err := next(args...)
				var elapsed uint64
				if t.meter != nil {
					elapsed = watch.Elapsed()
				}
				t.record(keyName, elapsed, err)
				return res, err
			}); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Agent returns the interposing instance to register in the name
// space.
func (t *Tracer) Agent() *obj.Interposer { return t.agent }

func (t *Tracer) record(key string, cycles uint64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[key]
	if st == nil {
		st = &MethodStats{}
		t.stats[key] = st
	}
	st.Calls++
	st.Cycles += cycles
	st.Hist.Add(cycles)
	if err != nil {
		st.Errors++
	}
}

// Stats returns the aggregated stats of one method ("iface.method").
func (t *Tracer) Stats(key string) (MethodStats, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stats[key]
	if !ok {
		return MethodStats{}, false
	}
	return *st, true
}

// Keys lists observed methods, sorted.
func (t *Tracer) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.stats))
	for k := range t.stats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MethodSnapshot is one method's aggregated stats as copied by
// Snapshot: the key ("iface.method") plus the stats value.
type MethodSnapshot struct {
	Key   string
	Stats MethodStats
}

// Snapshot copies every method's stats, sorted by key — the form the
// trace exporters merge into their reports.
func (t *Tracer) Snapshot() []MethodSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]MethodSnapshot, 0, len(t.stats))
	for k, st := range t.stats {
		out = append(out, MethodSnapshot{Key: k, Stats: *st})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Report renders a human-readable summary table.
func (t *Tracer) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %10s %8s %14s %10s\n", "method", "calls", "errors", "cycles", "avg")
	for _, k := range t.Keys() {
		st, _ := t.Stats(k)
		avg := uint64(0)
		if st.Calls > 0 {
			avg = st.Cycles / st.Calls
		}
		fmt.Fprintf(&b, "%-40s %10d %8d %14d %10d\n", k, st.Calls, st.Errors, st.Cycles, avg)
	}
	return b.String()
}

// Reset clears all recorded observations.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.stats)
}

// HistBuckets is the number of power-of-two histogram buckets.
const HistBuckets = 32

// Histogram is a power-of-two bucketed latency histogram: bucket i
// counts observations in [2^i, 2^(i+1)) cycles, with bucket 0 also
// holding zeros.
type Histogram struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Add records one observation.
func (h *Histogram) Add(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bucketOf(v)]++
}

func bucketOf(v uint64) int {
	b := 0
	for v > 1 && b < HistBuckets-1 {
		v >>= 1
		b++
	}
	return b
}

// Mean returns the average observation.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an upper bound for the p-th percentile
// (0 < p <= 100) from the bucket boundaries.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.Count == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	target := uint64(float64(h.Count) * p / 100)
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			if i == HistBuckets-1 {
				return h.Max
			}
			return 1 << uint(i+1) // upper bound of the bucket
		}
	}
	return h.Max
}

// String renders the non-empty buckets.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%.1f max=%d", h.Count, h.Mean(), h.Max)
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		fmt.Fprintf(&b, " [2^%d:%d]", i, c)
	}
	return b.String()
}
