package core

import (
	"errors"
	"fmt"

	"paramecium/internal/cert"
	"paramecium/internal/mmu"
	"paramecium/internal/names"
	"paramecium/internal/netstack"
	"paramecium/internal/obj"
	"paramecium/internal/repoz"
	"paramecium/internal/sandbox"
)

// Placement selects the protection regime of a loaded component.
type Placement int

// Placements.
const (
	// PlaceKernelCertified loads into the kernel protection domain;
	// the image's certificate must validate with PrivKernelResident.
	// The component then runs with no run-time checks.
	PlaceKernelCertified Placement = iota
	// PlaceKernelSandboxed loads into the kernel protection domain
	// without a certificate, Exokernel/SPIN-style: the component is
	// passed through the SFI rewriter and pays per-access checks.
	PlaceKernelSandboxed
	// PlaceUser loads into a fresh application protection domain; the
	// component runs unchecked but is reached through cross-domain
	// proxies.
	PlaceUser
)

func (p Placement) String() string {
	switch p {
	case PlaceKernelCertified:
		return "kernel-certified"
	case PlaceKernelSandboxed:
		return "kernel-sandboxed"
	case PlaceUser:
		return "user"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// FilterIface is the interface exported by loaded PVM filter
// components.
const FilterIface = "paramecium.filter.v1"

// FilterDecl is the filter interface's type information.
var FilterDecl = obj.MustInterfaceDecl(FilterIface,
	obj.MethodDecl{Name: "accept", NumIn: 1, NumOut: 1}, // (frame []byte) -> bool
)

// LoadedFilter is a PVM filter component placed somewhere in the
// system. It satisfies netstack.Filter regardless of placement, so
// the protocol stack does not know (or care) which regime it runs
// under — only the cycle meter can tell.
type LoadedFilter struct {
	name      string
	placement Placement
	iface     obj.Invoker      // the filter interface (object or proxy)
	accept    obj.MethodHandle // accept() pre-resolved through object/proxy machinery
	domain    *Domain          // non-nil for PlaceUser
	inst      obj.Instance
}

// Name implements netstack.Filter.
func (lf *LoadedFilter) Name() string { return lf.name }

// Placement reports the filter's protection regime.
func (lf *LoadedFilter) Placement() Placement { return lf.placement }

// Instance returns the underlying object (or proxy).
func (lf *LoadedFilter) Instance() obj.Instance { return lf.inst }

// Accept implements netstack.Filter. The per-frame path goes through
// the handle pre-resolved at load time: no method lookup per packet,
// whichever protection regime the filter runs under.
func (lf *LoadedFilter) Accept(frame []byte) (bool, error) {
	res, err := lf.accept.Call(frame)
	if err != nil {
		return false, err
	}
	ok, _ := res[0].(bool)
	return ok, nil
}

// LoadFilter fetches a PVM component from the repository and places
// it. This is the reproduction of the paper's central scenario: the
// same component image, three protection regimes.
func (k *Kernel) LoadFilter(component string, placement Placement) (*LoadedFilter, error) {
	img, err := k.Repo.Get(component)
	if err != nil {
		return nil, err
	}
	if img.Kind != repoz.KindPVM {
		return nil, fmt.Errorf("core: %q is not a PVM component", component)
	}
	prog, err := sandbox.Decode(img.Data)
	if err != nil {
		return nil, err
	}
	if err := sandbox.Verify(prog); err != nil {
		return nil, err
	}

	switch placement {
	case PlaceKernelCertified:
		// "Objects can be associated with a certificate that is
		// validated by the certification service before mapping it
		// into a protection domain."
		if img.Cert == nil {
			return nil, fmt.Errorf("%w: %q carries no certificate", ErrNotCertified, component)
		}
		if err := k.Validator.Validate(img.Data, img.Cert, cert.PrivKernelResident); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNotCertified, err)
		}
		f, err := netstack.NewCertifiedFilter(component, prog, k.Meter)
		if err != nil {
			return nil, err
		}
		return k.wrapFilter(component, placement, f, mmu.KernelContext, nil)

	case PlaceKernelSandboxed:
		f, err := netstack.NewSandboxedFilter(component, prog, k.Meter)
		if err != nil {
			return nil, err
		}
		return k.wrapFilter(component, placement, f, mmu.KernelContext, nil)

	case PlaceUser:
		dom := k.NewDomain(component + "-domain")
		f, err := netstack.NewCertifiedFilter(component, prog, k.Meter)
		if err != nil {
			_ = k.DestroyDomain(dom)
			return nil, err
		}
		return k.wrapFilter(component, placement, f, dom.Ctx, dom)
	}
	return nil, fmt.Errorf("core: unknown placement %v", placement)
}

// wrapFilter builds the filter object, registers it in the name space
// under /services/<name>, and wires the calling surface according to
// placement (direct for kernel placements, proxied for user).
func (k *Kernel) wrapFilter(component string, placement Placement, f netstack.Filter, ctx mmu.ContextID, dom *Domain) (*LoadedFilter, error) {
	o := obj.New(component, k.Meter)
	bi, err := o.AddInterface(FilterDecl, nil)
	if err != nil {
		return nil, err
	}
	bi.MustBind("accept", func(args ...any) ([]any, error) {
		frame, ok := args[0].([]byte)
		if !ok {
			return nil, fmt.Errorf("core: accept wants []byte, got %T", args[0])
		}
		ok, err := f.Accept(frame)
		if err != nil {
			return nil, err
		}
		return []any{ok}, nil
	})

	path := names.Join(PathServices, component+"."+placement.String())
	if err := k.Register(path, o, ctx); err != nil {
		return nil, err
	}

	lf := &LoadedFilter{name: component, placement: placement, domain: dom, inst: o}
	if placement == PlaceUser {
		// The kernel-resident stack reaches the user filter through a
		// proxy: every accept() pays the cross-domain path.
		p, err := k.Proxies.New(mmu.KernelContext, ctx, o)
		if err != nil {
			return nil, err
		}
		lf.inst = p
		iv, ok := p.Iface(FilterIface)
		if !ok {
			return nil, errors.New("core: proxy lost filter interface")
		}
		lf.iface = iv
	} else {
		lf.iface, _ = o.Iface(FilterIface)
	}
	accept, err := lf.iface.Resolve("accept")
	if err != nil {
		return nil, err
	}
	lf.accept = accept
	return lf, nil
}

// Unload removes a loaded filter from the name space and, for user
// placements, destroys its domain.
func (k *Kernel) Unload(lf *LoadedFilter) error {
	path := names.Join(PathServices, lf.name+"."+lf.placement.String())
	if err := k.Space.Unregister(path); err != nil {
		return err
	}
	if lf.domain != nil {
		return k.DestroyDomain(lf.domain)
	}
	return nil
}

// Construct loads a native component from the repository: certified
// components may be placed in the kernel context; uncertified ones
// land in their own fresh domain.
func (k *Kernel) Construct(component, path string, wantKernel bool) (obj.Instance, mmu.ContextID, error) {
	img, err := k.Repo.Get(component)
	if err != nil {
		return nil, 0, err
	}
	ctx := mmu.ContextID(0)
	if wantKernel {
		if img.Cert == nil {
			return nil, 0, fmt.Errorf("%w: %q", ErrNotCertified, component)
		}
		if err := k.Validator.Validate(img.Data, img.Cert, cert.PrivKernelResident); err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrNotCertified, err)
		}
	} else {
		ctx = k.NewDomain(component + "-domain").Ctx
	}
	inst, err := k.Repo.Construct(component)
	if err != nil {
		return nil, 0, err
	}
	if o, ok := inst.(*obj.Object); ok && !o.FullyBound() {
		return nil, 0, fmt.Errorf("core: component %q has unbound methods", component)
	}
	if err := k.Register(path, inst, ctx); err != nil {
		return nil, 0, err
	}
	return inst, ctx, nil
}
