package bench

import (
	"fmt"
	"sync/atomic"

	"paramecium/internal/obj"
)

// MixedCounterHandles boots a single-CPU world with k server domains,
// each exporting its own concurrency-safe counter object, and returns
// k pre-resolved cross-domain handles from one client domain plus the
// world — the mixed-target fixture used by the P8 experiment and the
// root-level BenchmarkP8 family. Each handle routes through a distinct
// proxy, so a batch interleaving them exercises the multi-target
// dispatch path rather than the consecutive-run fast path.
func MixedCounterHandles(k int) ([]obj.MethodHandle, *World) {
	w := NewWorld()
	decl := obj.MustInterfaceDecl("bench.atomic.v1", obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	clientDom := w.K.NewDomain("client")
	handles := make([]obj.MethodHandle, k)
	for i := 0; i < k; i++ {
		server := obj.New(fmt.Sprintf("atomic-counter-%d", i), w.K.Meter)
		n := new(atomic.Int64)
		bi, err := server.AddInterface(decl, n)
		if err != nil {
			panic(err)
		}
		bi.MustBindInto("inc", func(out []any, _ ...any) ([]any, error) {
			n.Add(1)
			return append(out, n), nil
		})
		serverDom := w.K.NewDomain(fmt.Sprintf("server-%d", i))
		path := fmt.Sprintf("/services/atomic%d", i)
		if err := w.K.Register(path, server, serverDom.Ctx); err != nil {
			panic(err)
		}
		h, err := clientDom.ResolveMethod(path, "bench.atomic.v1", "inc")
		if err != nil {
			panic(err)
		}
		handles[i] = h
	}
	return handles, w
}

// mixedBatchCycles measures virtual cycles per invocation for a batch
// of the given size whose entries round-robin across the handles
// (entry j targets handles[j%len(handles)] — the worst case for
// consecutive-run vectoring), run in the given mode.
func mixedBatchCycles(handles []obj.MethodHandle, w *World, size int, mode obj.BatchMode) float64 {
	batch := obj.NewBatch(size)
	batch.SetMode(mode)
	bufs := make([][1]any, size)
	const rounds = 64
	watch := w.K.Meter.Clock.StartWatch()
	for r := 0; r < rounds; r++ {
		batch.Reset()
		for j := 0; j < size; j++ {
			if err := batch.AddInto(handles[j%len(handles)], bufs[j][:0]); err != nil {
				panic(fmt.Sprintf("bench: mixed batch add: %v", err))
			}
		}
		if err := batch.Run(); err != nil {
			panic(fmt.Sprintf("bench: mixed batch run: %v", err))
		}
	}
	return float64(watch.Elapsed()) / float64(rounds*size)
}

// P8MixedTargetSweep measures the mixed-target batch cliff and the
// grouped-mode fix. A batch that interleaves k targets — A, B, A, B —
// defeats the consecutive-run vectoring of the default in-order mode:
// every entry is a run of one, so every entry pays a full crossing.
// Grouped mode partitions the batch by target and pays one crossing
// per DISTINCT target, restoring the amortization at the cost of
// cross-target reordering (per-target order is preserved).
//
// Deterministic virtual cycles, like P5: the comparison is a
// cost-model property, not a host-parallelism property.
func P8MixedTargetSweep() Table {
	t := Table{
		ID:     "P8",
		Title:  "Mixed-target batch: in-order vs grouped dispatch (virtual cycles per invocation)",
		Claim:  `a batch interleaving k targets pays one crossing per entry in order-preserving mode; grouped dispatch pays one crossing per distinct target, recovering the vectored amortization for mixed-target batches`,
		Header: []string{"targets", "batch size", "in-order cycles/inv", "grouped cycles/inv", "grouped speedup", "crossings in-order/grouped"},
	}
	for _, k := range []int{2, 4, 8} {
		for _, size := range []int{16, 32} {
			if size < k {
				continue
			}
			handles, w := MixedCounterHandles(k)
			inOrder := mixedBatchCycles(handles, w, size, obj.InOrder)
			grouped := mixedBatchCycles(handles, w, size, obj.Grouped)
			speedup := inOrder / grouped
			// Round-robin interleave: in-order sees size runs of one
			// (size crossings), grouped sees k partitions (k crossings).
			t.AddRow(k, size,
				fmt.Sprintf("%.1f", inOrder),
				fmt.Sprintf("%.1f", grouped),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%d/%d", size, k))
		}
	}
	t.Notes = append(t.Notes,
		"deterministic virtual cycles; entries round-robin across targets (A,B,A,B...), the worst case for consecutive-run vectoring",
		"grouped mode reorders across targets (never within one); opt in with Batch.SetMode(BatchGrouped) only for independent entries")
	return t
}
