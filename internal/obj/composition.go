package obj

import (
	"fmt"
	"sort"
	"sync"

	"paramecium/internal/clock"
)

// Composition is an ordinary object composed of other object
// instances: "composition is to objects what objects are to data: an
// encapsulation technique". A composition exports interfaces like any
// object (typically delegated to its children) and can itself be a
// child of a larger composition — the paper notes composition applies
// recursively; the Paramecium kernel itself is a composition of the
// interrupt, context and naming objects.
type Composition struct {
	*Object

	mu       sync.RWMutex
	children map[string]Instance
}

// NewComposition creates a run-time (dynamic) composition.
func NewComposition(class string, meter *clock.Meter) *Composition {
	return &Composition{
		Object:   New(class, meter),
		children: make(map[string]Instance),
	}
}

// NewStaticComposition creates a link-time composition (the resident
// part of the kernel is the only static composition in the system).
func NewStaticComposition(class string, meter *clock.Meter) *Composition {
	return &Composition{
		Object:   NewStatic(class, meter),
		children: make(map[string]Instance),
	}
}

// AddChild mounts an instance under a role name.
func (c *Composition) AddChild(role string, inst Instance) error {
	if inst == nil {
		return fmt.Errorf("obj: nil child for role %q", role)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.children[role]; dup {
		return fmt.Errorf("obj: composition %q already has child %q", c.Class(), role)
	}
	c.children[role] = inst
	return nil
}

// ReplaceChild swaps the instance under a role for a new one; this is
// the mechanism behind run-time recomposition ("allows for the
// composing objects to be replaced by new instances"). It returns the
// previous instance.
func (c *Composition) ReplaceChild(role string, inst Instance) (Instance, error) {
	if inst == nil {
		return nil, fmt.Errorf("obj: nil child for role %q", role)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, ok := c.children[role]
	if !ok {
		return nil, fmt.Errorf("obj: composition %q has no child %q", c.Class(), role)
	}
	c.children[role] = inst
	return prev, nil
}

// RemoveChild unmounts a role.
func (c *Composition) RemoveChild(role string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.children[role]; !ok {
		return fmt.Errorf("obj: composition %q has no child %q", c.Class(), role)
	}
	delete(c.children, role)
	return nil
}

// Child returns the instance mounted under role.
func (c *Composition) Child(role string) (Instance, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	inst, ok := c.children[role]
	return inst, ok
}

// Roles lists the mounted role names, sorted.
func (c *Composition) Roles() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.children))
	for r := range c.children {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// ExportChildInterface re-exports an interface of a child as an
// interface of the composition itself, forwarding all calls through
// handles pre-resolved at export time. This is the common way a
// composition presents a facade assembled from its parts.
func (c *Composition) ExportChildInterface(role, ifaceName string) error {
	c.mu.RLock()
	child, ok := c.children[role]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("obj: composition %q has no child %q", c.Class(), role)
	}
	target, ok := child.Iface(ifaceName)
	if !ok {
		return fmt.Errorf("%w: child %q does not export %q", ErrNoInterface, role, ifaceName)
	}
	bi, err := c.AddInterface(target.Decl(), target.State())
	if err != nil {
		return err
	}
	for _, m := range target.Decl().Methods {
		h, err := target.Resolve(m.Name)
		if err != nil {
			return err
		}
		if err := bi.Bind(m.Name, h.Call); err != nil {
			return err
		}
	}
	return nil
}

var _ Instance = (*Composition)(nil)
