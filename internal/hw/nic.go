package hw

import (
	"errors"
	"fmt"
	"sync"
)

// NIC register word offsets. Drivers drive the device exclusively
// through these registers plus the shared slot buffers, mirroring a
// memory-mapped Ethernet controller with on-device packet memory.
const (
	NICRegRxPending = iota // r: frames waiting
	NICRegRxSlot           // r: slot index of the head frame
	NICRegRxLen            // r: length of the head frame
	NICRegRxPop            // w: retire the head frame
	NICRegTxSlot           // w: slot to transmit from
	NICRegTxLen            // w: length to transmit
	NICRegTxGo             // w: start transmission
	NICRegRxDropped        // r: frames dropped because the ring was full
	NICRegTxCount          // r: frames transmitted
	nicRegCount
)

// NICSlots is the number of packet slots in device memory.
const NICSlots = 32

// NICSlotSize is the capacity of one packet slot in bytes.
const NICSlotSize = 2048

// ErrFrameTooBig is returned when a frame exceeds NICSlotSize.
var ErrFrameTooBig = errors.New("hw: frame exceeds NIC slot size")

// ErrRingFull is returned by Inject when the receive ring is full.
var ErrRingFull = errors.New("hw: NIC receive ring full")

// NIC is a simulated network interface with on-device packet memory,
// a receive ring and a transmit path. Frames enter via Inject (the
// "wire") and leave via the transmit sink.
type NIC struct {
	baseDevice
	name string
	irq  IRQLine

	mu        sync.Mutex
	slots     [NICSlots][]byte // on-device packet memory
	rxQueue   []int            // slot indices with received frames
	rxLens    map[int]int
	freeSlots []int
	txSink    func(frame []byte)
	rxDropped uint64
	txCount   uint64
	region    *IORegion

	// txSlot/txLen latch the pending transmit descriptor.
	txSlot, txLen uint64
}

// NewNIC builds a NIC raising interrupts on the given line.
func NewNIC(name string, irq IRQLine) *NIC {
	n := &NIC{
		name:   name,
		irq:    irq,
		rxLens: make(map[int]int),
	}
	for i := 0; i < NICSlots; i++ {
		n.slots[i] = make([]byte, NICSlotSize)
		n.freeSlots = append(n.freeSlots, i)
	}
	n.region = NewIORegion(name+"-regs", nicRegCount, n.readReg, n.writeReg)
	return n
}

// Name implements Device.
func (n *NIC) Name() string { return n.name }

// IRQ implements Device.
func (n *NIC) IRQ() IRQLine { return n.irq }

// IORegion implements Device.
func (n *NIC) IORegion() *IORegion { return n.region }

// SetTxSink installs the function that receives transmitted frames
// (the "wire" on the send side).
func (n *NIC) SetTxSink(sink func(frame []byte)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.txSink = sink
}

// SlotData exposes the payload memory of one slot. This models the
// shared on-device buffer that the paper's I/O space service lets
// multiple contexts map.
func (n *NIC) SlotData(slot int) ([]byte, error) {
	if slot < 0 || slot >= NICSlots {
		return nil, fmt.Errorf("hw: NIC slot %d out of range", slot)
	}
	return n.slots[slot], nil
}

// Inject delivers a frame from the wire into the receive ring and
// raises the device interrupt. It fails with ErrRingFull when no slot
// is free (the frame is counted as dropped).
func (n *NIC) Inject(frame []byte) error {
	if len(frame) > NICSlotSize {
		return ErrFrameTooBig
	}
	n.mu.Lock()
	if len(n.freeSlots) == 0 {
		n.rxDropped++
		n.mu.Unlock()
		return ErrRingFull
	}
	slot := n.freeSlots[0]
	n.freeSlots = n.freeSlots[1:]
	//paralint:ignore chargepath device DMA into the receive ring costs no CPU cycles by design
	copy(n.slots[slot], frame)
	n.rxLens[slot] = len(frame)
	n.rxQueue = append(n.rxQueue, slot)
	n.mu.Unlock()
	n.raise(n.irq)
	return nil
}

// Pending reports the number of frames waiting in the receive ring.
func (n *NIC) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.rxQueue)
}

// Dropped reports frames dropped due to ring overflow.
func (n *NIC) Dropped() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rxDropped
}

// Transmitted reports the number of frames sent.
func (n *NIC) Transmitted() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.txCount
}

func (n *NIC) readReg(reg int) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch reg {
	case NICRegRxPending:
		return uint64(len(n.rxQueue)), nil
	case NICRegRxSlot:
		if len(n.rxQueue) == 0 {
			return ^uint64(0), nil
		}
		return uint64(n.rxQueue[0]), nil
	case NICRegRxLen:
		if len(n.rxQueue) == 0 {
			return 0, nil
		}
		return uint64(n.rxLens[n.rxQueue[0]]), nil
	case NICRegRxDropped:
		return n.rxDropped, nil
	case NICRegTxCount:
		return n.txCount, nil
	}
	return 0, nil
}

func (n *NIC) writeReg(reg int, val uint64) error {
	n.mu.Lock()
	switch reg {
	case NICRegRxPop:
		if len(n.rxQueue) > 0 {
			slot := n.rxQueue[0]
			n.rxQueue = n.rxQueue[1:]
			delete(n.rxLens, slot)
			n.freeSlots = append(n.freeSlots, slot)
		}
		n.mu.Unlock()
		return nil
	case NICRegTxSlot:
		n.txSlot = val
		n.mu.Unlock()
		return nil
	case NICRegTxLen:
		n.txLen = val
		n.mu.Unlock()
		return nil
	case NICRegTxGo:
		slot, length := int(n.txSlot), int(n.txLen)
		if slot < 0 || slot >= NICSlots || length < 0 || length > NICSlotSize {
			n.mu.Unlock()
			return fmt.Errorf("hw: bad transmit descriptor slot=%d len=%d", slot, length)
		}
		frame := make([]byte, length)
		//paralint:ignore chargepath device DMA out of the transmit ring costs no CPU cycles by design
		copy(frame, n.slots[slot][:length])
		sink := n.txSink
		n.txCount++
		n.mu.Unlock()
		if sink != nil {
			sink(frame)
		}
		return nil
	}
	n.mu.Unlock()
	return nil
}
