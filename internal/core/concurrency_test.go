package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paramecium/internal/obj"
)

// TestConcurrentCrossDomainInvocation drives the whole invocation
// plane end to end in parallel: many goroutines in one client domain
// share pre-resolved handles onto a server object in another domain,
// while other goroutines bind and resolve afresh. Everything from the
// name space through the proxy fault path must cope.
func TestConcurrentCrossDomainInvocation(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	decl := obj.MustInterfaceDecl("svc.count.v1",
		obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	server := obj.New("counter", k.Meter)
	var n atomic.Int64
	bi, err := server.AddInterface(decl, &n)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) { return []any{n.Add(1)}, nil })

	serverDom := k.NewDomain("server")
	clientDom := k.NewDomain("client")
	if err := k.Register("/services/counter", server, serverDom.Ctx); err != nil {
		t.Fatal(err)
	}
	shared, err := clientDom.ResolveMethod("/services/counter", "svc.count.v1", "inc")
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const callsEach = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// A third of the goroutines re-resolve per iteration, so
			// name-space lookups and the proxy bind cache race the
			// shared-handle callers.
			for i := 0; i < callsEach; i++ {
				h := shared
				if g%3 == 0 {
					var err error
					h, err = clientDom.ResolveMethod("/services/counter", "svc.count.v1", "inc")
					if err != nil {
						t.Errorf("resolve: %v", err)
						return
					}
				}
				if _, err := h.Call(); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := n.Load(); got != goroutines*callsEach {
		t.Fatalf("server saw %d calls, want %d", got, goroutines*callsEach)
	}
}

// TestConcurrentBindSharesOneProxy: parallel Binds of one instance
// from one domain must converge on a single cached proxy.
func TestConcurrentBindSharesOneProxy(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	decl := obj.MustInterfaceDecl("svc.noop.v1",
		obj.MethodDecl{Name: "noop", NumIn: 0, NumOut: 0})
	server := obj.New("noop", k.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("noop", func(...any) ([]any, error) { return nil, nil })
	serverDom := k.NewDomain("server")
	clientDom := k.NewDomain("client")
	if err := k.Register("/services/noop", server, serverDom.Ctx); err != nil {
		t.Fatal(err)
	}

	const binders = 8
	got := make([]obj.Instance, binders)
	var wg sync.WaitGroup
	for g := 0; g < binders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inst, err := clientDom.Bind("/services/noop")
			if err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			got[g] = inst
		}(g)
	}
	wg.Wait()
	for g := 1; g < binders; g++ {
		if got[g] != got[0] {
			t.Fatalf("bind %d returned a different proxy than bind 0", g)
		}
	}
}

// TestDestroyDomainDrainsWithoutDeadlock: DestroyDomain closes the
// domain's proxies outside the domain lock, because Proxy.Close now
// blocks until in-flight calls drain — and an in-flight call's target
// method may itself need the domain lock (Bind). Closing under the
// lock would deadlock; this must complete instead.
func TestDestroyDomainDrainsWithoutDeadlock(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	client := k.NewDomain("client")
	entered := make(chan struct{})
	proceed := make(chan struct{})
	decl := obj.MustInterfaceDecl("svc.slow.v1",
		obj.MethodDecl{Name: "work", NumIn: 0, NumOut: 0})
	server := obj.New("slow", k.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("work", func(...any) ([]any, error) {
		close(entered)
		<-proceed
		// Mid-drain, touch the destroying domain's bind cache: with
		// Close held under d.mu this blocks forever; outside the lock
		// it fails cleanly with ErrNoSuchDomain.
		_, _ = client.Bind("/services/slow")
		return nil, nil
	})
	serverDom := k.NewDomain("server")
	if err := k.Register("/services/slow", server, serverDom.Ctx); err != nil {
		t.Fatal(err)
	}
	h, err := client.ResolveMethod("/services/slow", "svc.slow.v1", "work")
	if err != nil {
		t.Fatal(err)
	}

	callDone := make(chan error, 1)
	go func() {
		_, err := h.Call()
		callDone <- err
	}()
	<-entered // the call is now in flight in the server domain

	destroyDone := make(chan error, 1)
	go func() { destroyDone <- k.DestroyDomain(client) }()
	// Let DestroyDomain reach its drain, then release the method.
	time.Sleep(10 * time.Millisecond)
	close(proceed)

	select {
	case err := <-destroyDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DestroyDomain deadlocked against an in-flight call")
	}
	if err := <-callDone; err != nil {
		t.Fatalf("in-flight call: %v", err)
	}
}

// TestDestroyDomainDrainsInboundCalls: destroying a SERVER domain must
// wait for calls executing inside it — those calls arrive through
// proxies cached in other domains' bind caches (and kernel-resident
// callers), which the dying domain's own cache knows nothing about.
// Factory.CloseTarget closes and drains them all.
func TestDestroyDomainDrainsInboundCalls(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	decl := obj.MustInterfaceDecl("svc.block.v1",
		obj.MethodDecl{Name: "block", NumIn: 0, NumOut: 0})
	server := obj.New("blocker", k.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("block", func(...any) ([]any, error) {
		close(entered)
		<-release
		return nil, nil
	})
	serverDom := k.NewDomain("server")
	clientDom := k.NewDomain("client")
	if err := k.Register("/services/blocker", server, serverDom.Ctx); err != nil {
		t.Fatal(err)
	}
	h, err := clientDom.ResolveMethod("/services/blocker", "svc.block.v1", "block")
	if err != nil {
		t.Fatal(err)
	}

	callDone := make(chan error, 1)
	go func() {
		_, err := h.Call()
		callDone <- err
	}()
	<-entered // the call is now executing inside the server domain

	destroyDone := make(chan error, 1)
	go func() { destroyDone <- k.DestroyDomain(serverDom) }()
	select {
	case err := <-destroyDone:
		t.Fatalf("DestroyDomain returned (%v) while a call was executing in the domain", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-destroyDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DestroyDomain never returned")
	}
	if err := <-callDone; err != nil {
		t.Fatalf("in-flight call: %v", err)
	}
	// The server domain is gone and its proxies are closed: new calls
	// fail cleanly.
	if _, err := h.Call(); err == nil {
		t.Fatal("call into destroyed domain succeeded")
	}
}
