// Tests for the kernel flight recorder's public surface: WithTracing,
// System.TraceSnapshot, Domain.Cycles and Handle.Trace. The acceptance
// invariants pinned here are the ones ARCHITECTURE.md's Observability
// section promises: recording is free in virtual time, every charged
// cycle lands in exactly one ledger row, per-CPU timelines come back in
// virtual-time order, and a destroyed domain's bill stays readable.
package paramecium_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"paramecium"
	"paramecium/api"
)

// traceWorkload drives every instrumented plane with fixed iteration
// counts: single calls, a vectored batch, segment traffic and a ring
// stream. Deterministic on a single CPU, so two runs bill identically.
func traceWorkload(t *testing.T, sys *paramecium.System) (client, worker *paramecium.Domain) {
	t.Helper()
	decl := api.MustInterfaceDecl("tracetest.calc.v1",
		api.MethodDecl{Name: "add", NumIn: 2, NumOut: 1})
	calc := sys.NewObject("calc")
	bi, err := calc.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("add", func(args ...any) ([]any, error) {
		return []any{args[0].(int) + args[1].(int)}, nil
	})
	if err := sys.Register("/svc/calc", calc); err != nil {
		t.Fatal(err)
	}

	client = sys.NewDomain("client")
	worker = sys.NewDomain("worker")
	h, err := client.Bind("/svc/calc")
	if err != nil {
		t.Fatal(err)
	}
	add, err := h.Resolve("tracetest.calc.v1", "add")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := add.Call(i, i); err != nil {
			t.Fatal(err)
		}
	}
	b := h.Batch(8)
	for i := 0; i < 8; i++ {
		if err := b.Add(add, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.CallBatch(b); err != nil {
		t.Fatal(err)
	}

	wh, err := worker.Bind("/svc/calc")
	if err != nil {
		t.Fatal(err)
	}
	wadd, err := wh.Resolve("tracetest.calc.v1", "add")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := wadd.Call(i, 2); err != nil {
			t.Fatal(err)
		}
	}

	seg, err := client.NewSegment(2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := seg.Grant(worker, api.RW)
	if err != nil {
		t.Fatal(err)
	}
	att, err := seg.Map(ref)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := att.Store(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := att.Load(64, buf[:64]); err != nil {
		t.Fatal(err)
	}
	if err := seg.Revoke(ref); err != nil {
		t.Fatal(err)
	}

	rg, err := client.NewRing(worker, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	prod, cons := rg.Producer(), rg.Consumer()
	rec := make([]byte, 16)
	for burst := 0; burst < 3; burst++ {
		for i := 0; i < 4; i++ {
			if err := prod.Push(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := prod.Notify(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := cons.Pop(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rg.Close(); err != nil {
		t.Fatal(err)
	}
	return client, worker
}

// TestTraceCyclesUnperturbed: the recorder is the measurement
// apparatus, not part of the machine — the same workload bills exactly
// the same virtual cycles with tracing off and on. This is the claim
// the P10 benchmark's cross rows demonstrate; here it is asserted
// exactly.
func TestTraceCyclesUnperturbed(t *testing.T) {
	run := func(opts ...paramecium.Option) uint64 {
		sys, err := paramecium.Boot(opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Shutdown()
		traceWorkload(t, sys)
		return sys.Cycles()
	}
	off := run(paramecium.WithCPUs(1))
	on := run(paramecium.WithCPUs(1), paramecium.WithTracing(paramecium.TraceOptions{}))
	if off != on {
		t.Fatalf("tracing perturbed the virtual clock: %d cycles untraced, %d traced", off, on)
	}
	if off == 0 {
		t.Fatal("workload billed zero cycles — the comparison is vacuous")
	}
}

// TestTraceAcceptance: the end-to-end acceptance run on a 4-CPU system
// booted WithTracing — the ledger's grand total equals the meter clock,
// each CPU's timeline is ordered by virtual time, the Chrome export is
// loadable JSON, and a destroyed domain's ledger row survives frozen.
func TestTraceAcceptance(t *testing.T) {
	sys, err := paramecium.Boot(
		paramecium.WithCPUs(4),
		paramecium.WithTracing(paramecium.TraceOptions{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	if !sys.Tracing() {
		t.Fatal("system booted WithTracing reports Tracing() == false")
	}

	client, worker := traceWorkload(t, sys)

	wc := worker.Cycles()
	if wc == 0 {
		t.Fatal("worker domain paid nothing — the workload missed it")
	}
	if err := worker.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := worker.Cycles(); got != wc {
		t.Fatalf("destroyed domain's bill changed: %d then %d", wc, got)
	}
	if client.Cycles() == 0 {
		t.Fatal("client domain paid nothing")
	}

	snap := sys.TraceSnapshot()

	// Every charged cycle lands in exactly one row: the ledger's grand
	// total is the virtual clock, to the cycle.
	var total uint64
	for _, row := range snap.Ledger {
		total += row.Total
	}
	if clock := sys.Cycles(); total != clock {
		t.Fatalf("ledger total %d != meter clock %d", total, clock)
	}

	// The destroyed worker's row is present and frozen, at its
	// pre-destroy total (teardown costs are billed before the freeze,
	// and Domain.Cycles above already pinned the post-destroy value).
	frozen := 0
	for _, row := range snap.Ledger {
		if row.Frozen {
			frozen++
			if row.Total != wc {
				t.Fatalf("frozen row bills %d cycles, worker paid %d", row.Total, wc)
			}
		}
	}
	if frozen != 1 {
		t.Fatalf("%d frozen rows, want exactly 1 (the destroyed worker)", frozen)
	}

	// Per-CPU timelines come back ordered by virtual time, stamped with
	// their own CPU, and non-empty in aggregate.
	if len(snap.Events) != 4 {
		t.Fatalf("%d event timelines, want 4 (one per CPU)", len(snap.Events))
	}
	events := 0
	for cpu, evs := range snap.Events {
		events += len(evs)
		for i, e := range evs {
			if e.CPU != cpu {
				t.Fatalf("cpu %d timeline holds event stamped cpu %d", cpu, e.CPU)
			}
			if i > 0 && e.Cycles < evs[i-1].Cycles {
				t.Fatalf("cpu %d timeline out of order at %d: %d after %d",
					cpu, i, e.Cycles, evs[i-1].Cycles)
			}
		}
	}
	if events == 0 {
		t.Fatal("no events recorded across any CPU")
	}

	// The Chrome export parses as trace_event JSON with one entry per
	// retained event plus per-CPU track metadata.
	var buf bytes.Buffer
	if err := snap.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) < events {
		t.Fatalf("chrome export has %d entries for %d recorded events",
			len(chrome.TraceEvents), events)
	}
}

// TestTracedGroupedBatchRace: a measurement tracer interposed on two
// server paths stays consistent while concurrent clients drive
// grouped-mode vectored batches through it — the satellite the CI race
// job exists to re-check. Counts are asserted exactly: nothing a racing
// tracer drops or double-counts survives this test under -race.
func TestTracedGroupedBatchRace(t *testing.T) {
	sys, err := paramecium.Boot(
		paramecium.WithCPUs(4),
		paramecium.WithTracing(paramecium.TraceOptions{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	decl := api.MustInterfaceDecl("racetrace.v1",
		api.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	const targets = 2
	var hits [targets]atomic.Int64
	for i := 0; i < targets; i++ {
		o := sys.NewObject("counter")
		n := &hits[i]
		bi, err := o.AddInterface(decl, nil)
		if err != nil {
			t.Fatal(err)
		}
		bi.MustBind("inc", func(...any) ([]any, error) {
			return []any{n.Add(1)}, nil
		})
		server := sys.NewDomain("server")
		path := "/svc/race" + string(rune('0'+i))
		if err := server.Register(path, o); err != nil {
			t.Fatal(err)
		}
		// Interpose the tracer BEFORE any client binds: all later binds
		// resolve through the measurement agent.
		kh, err := sys.Bind(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := kh.Trace(); err != nil {
			t.Fatal(err)
		}
	}

	const clients, batches, size = 4, 10, 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dom := sys.NewDomain("client")
			incs := make([]api.MethodHandle, targets)
			for i := 0; i < targets; i++ {
				h, err := dom.Bind("/svc/race" + string(rune('0'+i)))
				if err != nil {
					errs <- err
					return
				}
				if incs[i], err = h.Resolve("racetrace.v1", "inc"); err != nil {
					errs <- err
					return
				}
			}
			for round := 0; round < batches; round++ {
				b := paramecium.NewBatch(size)
				b.SetMode(paramecium.BatchGrouped)
				for i := 0; i < size; i++ {
					if err := b.Add(incs[i%targets]); err != nil {
						errs <- err
						return
					}
				}
				if err := dom.CallBatch(b); err != nil {
					errs <- err
					return
				}
				for i := 0; i < size; i++ {
					if _, err := b.Results(i); err != nil {
						errs <- err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Each target saw exactly its share of the entries...
	perTarget := int64(clients * batches * size / targets)
	for i := range hits {
		if got := hits[i].Load(); got != perTarget {
			t.Fatalf("target %d handled %d calls, want %d", i, got, perTarget)
		}
	}
	// ...and the interposed tracers counted every one of them.
	var traced uint64
	for _, tm := range sys.TraceSnapshot().Methods {
		for _, m := range tm.Methods {
			if m.Stats.Errors != 0 {
				t.Fatalf("traced method %s reports %d errors", m.Key, m.Stats.Errors)
			}
			traced += m.Stats.Calls
		}
	}
	if want := uint64(clients * batches * size); traced != want {
		t.Fatalf("tracers counted %d calls, want %d", traced, want)
	}
}
