package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder builds a static lock-acquisition graph over the repo's
// named mutexes and flags edges that invert the documented partial
// order. A lock is identified by its declaring struct field
// ("pkg.Type.field"); acquiring B while holding A records the edge
// A→B, both intraprocedurally and through same-package calls (a call
// made while holding A contributes edges from A to every lock the
// callee may acquire). Acquiring a lock of the same class that is
// already held exclusively is flagged as self-deadlock.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions must respect the documented partial order",
	Run:  runLockOrder,
}

// lockRanks is the documented partial order, one rank group per
// subsystem. Within a group, a lock may only be acquired while holding
// locks of strictly lower rank; locks in different groups (or absent
// here) are unordered and unchecked. The "lockorder" group covers the
// analyzer's own golden-suite package.
var lockRanks = map[string]map[string]int{
	"shm": {
		"shm.Registry.mu":      1,
		"shm.Segment.accessMu": 2,
		"shm.Grant.accessMu":   3,
	},
	"mmu": {
		"mmu.MMU.mu":       1,
		"mmu.pageTable.mu": 2,
		"mmu.cpuState.mu":  3,
	},
	"core": {
		"core.Kernel.regMu": 1,
		"core.Kernel.mu":    2,
	},
	"threads": {
		"threads.Scheduler.runMu":  0,
		"threads.Scheduler.mu":     1,
		"threads.runqueue.mu":      2,
		"threads.Scheduler.idleMu": 2,
		"threads.Scheduler.genMu":  3,
	},
	"lockorder": {
		"lockorder.Registry.mu": 1,
		"lockorder.Segment.mu":  2,
		"lockorder.Grant.mu":    3,
	},
}

// rankOf resolves a lock class to its (group, rank).
func rankOf(class string) (string, int, bool) {
	for group, ranks := range lockRanks {
		if r, ok := ranks[class]; ok {
			return group, r, true
		}
	}
	return "", 0, false
}

// lockOp is one acquisition or release in source order.
type lockOp struct {
	class    string
	read     bool // RLock/RUnlock
	acquire  bool
	deferred bool
	pos      token.Pos
}

type lockOrder struct {
	pass *Pass
	// summaries maps each same-package function to the set of lock
	// classes it (transitively) may acquire.
	summaries map[types.Object]map[string]bool
	bodies    map[types.Object]*ast.FuncDecl
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrder{
		pass:      pass,
		summaries: make(map[types.Object]map[string]bool),
		bodies:    make(map[types.Object]*ast.FuncDecl),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					lo.bodies[obj] = fn
				}
			}
		}
	}
	// Fixpoint over transitive acquire sets.
	for obj, fn := range lo.bodies {
		lo.summaries[obj] = lo.directAcquires(fn)
	}
	for changed := true; changed; {
		changed = false
		for obj, fn := range lo.bodies {
			sum := lo.summaries[obj]
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := lo.calleeObject(call); callee != nil {
					for class := range lo.summaries[callee] {
						if !sum[class] {
							sum[class] = true
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	for _, fn := range lo.bodies {
		held := &heldSet{}
		lo.checkBlock(fn.Body.List, held)
	}
	return nil
}

// directAcquires collects the lock classes fn acquires directly.
func (lo *lockOrder) directAcquires(fn *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := lo.lockOpOf(call); ok && op.acquire {
				out[op.class] = true
			}
		}
		return true
	})
	return out
}

// calleeObject resolves a call to a same-package function or method.
func (lo *lockOrder) calleeObject(call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := lo.pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() != lo.pass.Pkg {
		return nil
	}
	if _, ok := lo.bodies[obj]; !ok {
		return nil
	}
	return obj
}

// lockOpOf classifies a call as a mutex acquire/release on a named
// struct-field lock and returns its class.
func (lo *lockOrder) lockOpOf(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fsel := lo.pass.TypesInfo.Selections[recv]
	if fsel == nil || fsel.Kind() != types.FieldVal {
		return lockOp{}, false
	}
	field, ok := fsel.Obj().(*types.Var)
	if !ok || !isMutexType(field.Type()) {
		return lockOp{}, false
	}
	owner := namedTypeName(fsel.Recv())
	if owner == "" {
		return lockOp{}, false
	}
	pkgName := ""
	if field.Pkg() != nil {
		pkgName = field.Pkg().Name()
	}
	return lockOp{
		class:   fmt.Sprintf("%s.%s.%s", pkgName, owner, field.Name()),
		read:    read,
		acquire: acquire,
		pos:     call.Pos(),
	}, true
}

func isMutexType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// heldSet is the ordered multiset of locks held at a program point.
type heldSet struct {
	locks []lockOp
}

func (h *heldSet) clone() *heldSet {
	return &heldSet{locks: append([]lockOp(nil), h.locks...)}
}

func (h *heldSet) push(op lockOp) { h.locks = append(h.locks, op) }

func (h *heldSet) release(class string) {
	for i := len(h.locks) - 1; i >= 0; i-- {
		if h.locks[i].class == class && !h.locks[i].deferred {
			h.locks = append(h.locks[:i], h.locks[i+1:]...)
			return
		}
	}
}

// checkAcquire validates acquiring op while holding h.
func (lo *lockOrder) checkAcquire(op lockOp, h *heldSet) {
	for _, held := range h.locks {
		if held.class == op.class {
			if !held.read || !op.read {
				lo.pass.Reportf(op.pos, "acquiring %s while an exclusive hold of %s is outstanding (self-deadlock)", op.class, held.class)
			}
			continue
		}
		hg, hr, hok := rankOf(held.class)
		og, or, ook := rankOf(op.class)
		if hok && ook && hg == og && hr >= or {
			lo.pass.Reportf(op.pos, "lock order inversion: acquiring %s (rank %d) while holding %s (rank %d); the documented order is the other way around", op.class, or, held.class, hr)
		}
	}
}

// checkCall applies a same-package callee's acquire summary against the
// current held set.
func (lo *lockOrder) checkCall(call *ast.CallExpr, h *heldSet) {
	callee := lo.calleeObject(call)
	if callee == nil || len(h.locks) == 0 {
		return
	}
	for class := range lo.summaries[callee] {
		lo.checkAcquire(lockOp{class: class, pos: call.Pos()}, h)
	}
}

// checkExpr scans an expression for lock operations and calls, updating
// the held set in evaluation order.
func (lo *lockOrder) checkExpr(n ast.Node, h *heldSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			// A function literal's body runs at call time, not here;
			// analyze it against an empty held set.
			lo.checkBlock(fl.Body.List, &heldSet{})
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := lo.lockOpOf(call); ok {
			if op.acquire {
				lo.checkAcquire(op, h)
				h.push(op)
			} else {
				h.release(op.class)
			}
			return false
		}
		lo.checkCall(call, h)
		return true
	})
}

// terminates reports whether a statement list certainly transfers
// control out (return or panic as its last statement).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (lo *lockOrder) checkBlock(stmts []ast.Stmt, h *heldSet) {
	for _, s := range stmts {
		lo.checkStmt(s, h)
	}
}

func (lo *lockOrder) checkStmt(s ast.Stmt, h *heldSet) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.DeferStmt:
		if op, ok := lo.lockOpOf(s.Call); ok {
			if !op.acquire {
				// defer x.Unlock(): the lock stays held to function
				// end; mark it so release() skips it.
				for i := len(h.locks) - 1; i >= 0; i-- {
					if h.locks[i].class == op.class {
						h.locks[i].deferred = true
						break
					}
				}
				return
			}
			lo.checkAcquire(op, h)
			return
		}
		lo.checkExpr(s.Call, h)
	case *ast.BlockStmt:
		lo.checkBlock(s.List, h)
	case *ast.IfStmt:
		lo.checkStmt(s.Init, h)
		lo.checkExpr(s.Cond, h)
		thenH := h.clone()
		lo.checkBlock(s.Body.List, thenH)
		if s.Else != nil {
			elseH := h.clone()
			lo.checkStmt(s.Else, elseH)
			switch {
			case terminates(s.Body.List):
				h.locks = elseH.locks
			default:
				h.locks = thenH.locks
			}
			return
		}
		if !terminates(s.Body.List) {
			h.locks = thenH.locks
		}
	case *ast.ForStmt:
		lo.checkStmt(s.Init, h)
		lo.checkExpr(s.Cond, h)
		bodyH := h.clone()
		lo.checkBlock(s.Body.List, bodyH)
		lo.checkStmt(s.Post, bodyH)
	case *ast.RangeStmt:
		lo.checkExpr(s.X, h)
		bodyH := h.clone()
		lo.checkBlock(s.Body.List, bodyH)
	case *ast.SwitchStmt:
		lo.checkStmt(s.Init, h)
		lo.checkExpr(s.Tag, h)
		for _, c := range s.Body.List {
			lo.checkBlock(c.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.TypeSwitchStmt:
		lo.checkStmt(s.Init, h)
		for _, c := range s.Body.List {
			lo.checkBlock(c.(*ast.CaseClause).Body, h.clone())
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			lo.checkBlock(c.(*ast.CommClause).Body, h.clone())
		}
	case *ast.LabeledStmt:
		lo.checkStmt(s.Stmt, h)
	case *ast.GoStmt:
		// The goroutine starts with no locks held.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.checkBlock(fl.Body.List, &heldSet{})
		} else {
			lo.checkExpr(s.Call, &heldSet{})
		}
	default:
		lo.checkExpr(s, h)
	}
}
