package analysis

import (
	"path/filepath"
	"sync"
	"testing"
)

// The loader is shared across tests: the expensive part is source-
// importing the standard library, which memoizes in one loader.
var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testLoader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return testLoader
}

func golden(t *testing.T, a *Analyzer) {
	t.Helper()
	RunGolden(t, sharedLoader(t), filepath.Join("testdata", "src", a.Name), a)
}

func TestChargePathGolden(t *testing.T)   { golden(t, ChargePath) }
func TestLockOrderGolden(t *testing.T)    { golden(t, LockOrder) }
func TestHotpathAllocGolden(t *testing.T) { golden(t, HotpathAlloc) }
func TestAtomicMixGolden(t *testing.T)    { golden(t, AtomicMix) }
func TestCPUStateGolden(t *testing.T)     { golden(t, CPUState) }
func TestProbeSafeGolden(t *testing.T)    { golden(t, ProbeSafe) }

// TestRealTreeClean is the smoke gate behind CI's paralint job: every
// analyzer over every module package must produce zero findings.
func TestRealTreeClean(t *testing.T) {
	loader := sharedLoader(t)
	paths, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("expanding ./...: %v", err)
	}
	if len(paths) < 10 {
		t.Fatalf("expected the module tree, got %d packages: %v", len(paths), paths)
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, a := range All() {
			diags, err := Run(a, pkg)
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			for _, d := range diags {
				t.Errorf("real tree is not clean: %s", d)
			}
		}
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("chargepath, lockorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ChargePath || got[1] != LockOrder {
		t.Fatalf("ByName resolved %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
