package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"paramecium/internal/obj"
)

// TestConcurrentCrossDomainInvocation drives the whole invocation
// plane end to end in parallel: many goroutines in one client domain
// share pre-resolved handles onto a server object in another domain,
// while other goroutines bind and resolve afresh. Everything from the
// name space through the proxy fault path must cope.
func TestConcurrentCrossDomainInvocation(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	decl := obj.MustInterfaceDecl("svc.count.v1",
		obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	server := obj.New("counter", k.Meter)
	var n atomic.Int64
	bi, err := server.AddInterface(decl, &n)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) { return []any{n.Add(1)}, nil })

	serverDom := k.NewDomain("server")
	clientDom := k.NewDomain("client")
	if err := k.Register("/services/counter", server, serverDom.Ctx); err != nil {
		t.Fatal(err)
	}
	shared, err := clientDom.ResolveMethod("/services/counter", "svc.count.v1", "inc")
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const callsEach = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// A third of the goroutines re-resolve per iteration, so
			// name-space lookups and the proxy bind cache race the
			// shared-handle callers.
			for i := 0; i < callsEach; i++ {
				h := shared
				if g%3 == 0 {
					var err error
					h, err = clientDom.ResolveMethod("/services/counter", "svc.count.v1", "inc")
					if err != nil {
						t.Errorf("resolve: %v", err)
						return
					}
				}
				if _, err := h.Call(); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := n.Load(); got != goroutines*callsEach {
		t.Fatalf("server saw %d calls, want %d", got, goroutines*callsEach)
	}
}

// TestConcurrentBindSharesOneProxy: parallel Binds of one instance
// from one domain must converge on a single cached proxy.
func TestConcurrentBindSharesOneProxy(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	decl := obj.MustInterfaceDecl("svc.noop.v1",
		obj.MethodDecl{Name: "noop", NumIn: 0, NumOut: 0})
	server := obj.New("noop", k.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("noop", func(...any) ([]any, error) { return nil, nil })
	serverDom := k.NewDomain("server")
	clientDom := k.NewDomain("client")
	if err := k.Register("/services/noop", server, serverDom.Ctx); err != nil {
		t.Fatal(err)
	}

	const binders = 8
	got := make([]obj.Instance, binders)
	var wg sync.WaitGroup
	for g := 0; g < binders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inst, err := clientDom.Bind("/services/noop")
			if err != nil {
				t.Errorf("bind: %v", err)
				return
			}
			got[g] = inst
		}(g)
	}
	wg.Wait()
	for g := 1; g < binders; g++ {
		if got[g] != got[0] {
			t.Fatalf("bind %d returned a different proxy than bind 0", g)
		}
	}
}
