// Tests and runnable examples for the public embedding API. This file
// imports only the paramecium and paramecium/api packages, so it
// doubles as proof that the public surface is self-sufficient.
package paramecium_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"paramecium"
	"paramecium/api"
)

// ExampleBoot boots a system, defines a component as an object with a
// named interface, registers it in the name space, and calls it from
// an application domain across the protection boundary.
func ExampleBoot() {
	sys, err := paramecium.Boot()
	if err != nil {
		panic(err)
	}
	decl := api.MustInterfaceDecl("example.adder.v1",
		api.MethodDecl{Name: "add", NumIn: 2, NumOut: 1})
	adder := sys.NewObject("adder")
	bi, err := adder.AddInterface(decl, nil)
	if err != nil {
		panic(err)
	}
	bi.MustBind("add", func(args ...any) ([]any, error) {
		return []any{args[0].(int) + args[1].(int)}, nil
	})
	if err := sys.Register("/services/adder", adder); err != nil {
		panic(err)
	}

	app := sys.NewDomain("app")
	h, err := app.Bind("/services/adder")
	if err != nil {
		panic(err)
	}
	res, err := h.Invoke("example.adder.v1", "add", 2, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("2 + 3 =", res[0])
	// Output: 2 + 3 = 5
}

// ExampleHandle_Resolve shows the bind-once / invoke-many fast path:
// a method is resolved to a handle once, then called repeatedly with
// no per-call name lookup. The handle tracks the slot, so rebinding
// the method later is still observed — late binding is preserved.
func ExampleHandle_Resolve() {
	sys, err := paramecium.Boot()
	if err != nil {
		panic(err)
	}
	decl := api.MustInterfaceDecl("example.counter.v1",
		api.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	counter := sys.NewObject("counter")
	n := 0
	bi, err := counter.AddInterface(decl, &n)
	if err != nil {
		panic(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) { n++; return []any{n}, nil })
	if err := sys.Register("/services/counter", counter); err != nil {
		panic(err)
	}

	h, err := sys.Bind("/services/counter")
	if err != nil {
		panic(err)
	}
	inc, err := h.Resolve("example.counter.v1", "inc")
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := inc.Call(); err != nil {
			panic(err)
		}
	}
	res, _ := inc.Call()
	fmt.Println("count =", res[0])

	// Rebind the slot; the live handle sees the new implementation.
	bi.MustBind("inc", func(...any) ([]any, error) { return []any{-1}, nil })
	res, _ = inc.Call()
	fmt.Println("after rebind =", res[0])
	// Output:
	// count = 4
	// after rebind = -1
}

// errOf normalizes an ([]any, error) pair to its error.
func errOf(_ []any, err error) error { return err }

// TestInvokeHandleErrorAgreement is the regression contract between
// the string-keyed compatibility path and the pre-resolved handle
// path: both must report the same sentinel errors for undeclared
// methods, unbound slots, wrong argument arity, and wrong result
// arity.
func TestInvokeHandleErrorAgreement(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	decl := api.MustInterfaceDecl("test.v1",
		api.MethodDecl{Name: "ok", NumIn: 1, NumOut: 1},
		api.MethodDecl{Name: "unbound", NumIn: 0, NumOut: 0},
		api.MethodDecl{Name: "liar", NumIn: 0, NumOut: 2},
	)
	o := sys.NewObject("probe")
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("ok", func(args ...any) ([]any, error) { return []any{args[0]}, nil }).
		MustBind("liar", func(...any) ([]any, error) { return []any{1}, nil }) // declares 2 results, returns 1
	iv, ok := o.Iface("test.v1")
	if !ok {
		t.Fatal("interface lost")
	}

	// ErrNoMethod: Invoke fails per call, Resolve fails at bind time.
	if err := errOf(iv.Invoke("nope")); !errors.Is(err, api.ErrNoMethod) {
		t.Fatalf("Invoke undeclared = %v, want ErrNoMethod", err)
	}
	if _, err := iv.Resolve("nope"); !errors.Is(err, api.ErrNoMethod) {
		t.Fatalf("Resolve undeclared = %v, want ErrNoMethod", err)
	}

	// The remaining errors must match call-for-call.
	cases := []struct {
		name   string
		method string
		args   []any
		want   error
	}{
		{"unbound slot", "unbound", nil, api.ErrUnbound},
		{"too few args", "ok", nil, api.ErrArity},
		{"too many args", "ok", []any{1, 2}, api.ErrArity},
		{"wrong result count", "liar", nil, api.ErrArity},
	}
	for _, tc := range cases {
		invokeErr := errOf(iv.Invoke(tc.method, tc.args...))
		h, err := iv.Resolve(tc.method)
		if err != nil {
			t.Fatalf("%s: Resolve = %v", tc.name, err)
		}
		callErr := errOf(h.Call(tc.args...))
		if !errors.Is(invokeErr, tc.want) {
			t.Errorf("%s: Invoke = %v, want %v", tc.name, invokeErr, tc.want)
		}
		if !errors.Is(callErr, tc.want) {
			t.Errorf("%s: handle Call = %v, want %v", tc.name, callErr, tc.want)
		}
		if (invokeErr == nil) != (callErr == nil) {
			t.Errorf("%s: paths disagree: Invoke=%v Call=%v", tc.name, invokeErr, callErr)
		}
	}
}

// TestHandleAgreementAcrossProxy re-runs the error contract through a
// cross-domain proxy: the fault-driven path must classify errors
// exactly like a local bound interface.
func TestHandleAgreementAcrossProxy(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	decl := api.MustInterfaceDecl("test.v1",
		api.MethodDecl{Name: "echo", NumIn: 1, NumOut: 1})
	o := sys.NewObject("echo")
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("echo", func(args ...any) ([]any, error) { return []any{args[0]}, nil })

	home := sys.NewDomain("home")
	if err := home.Register("/services/echo", o); err != nil {
		t.Fatal(err)
	}
	client := sys.NewDomain("client")
	h, err := client.Bind("/services/echo")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := h.Resolve("test.v1", "nope"); !errors.Is(err, api.ErrNoMethod) {
		t.Fatalf("proxy Resolve undeclared = %v, want ErrNoMethod", err)
	}
	echo, err := h.Resolve("test.v1", "echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := errOf(echo.Call()); !errors.Is(err, api.ErrArity) {
		t.Fatalf("proxy handle bad arity = %v, want ErrArity", err)
	}
	iv, err := h.Interface("test.v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := errOf(iv.Invoke("echo")); !errors.Is(err, api.ErrArity) {
		t.Fatalf("proxy Invoke bad arity = %v, want ErrArity", err)
	}
	res, err := echo.Call("ping")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "ping" {
		t.Fatalf("proxy handle call = %v", res)
	}
	if err := client.Destroy(); err != nil {
		t.Fatal(err)
	}
}

// TestOptions exercises the functional boot options.
func TestOptions(t *testing.T) {
	costs := paramecium.DefaultCosts()
	sys, err := paramecium.Boot(
		paramecium.WithAuthority(nil),
		paramecium.WithMachine(paramecium.MachineConfig{PhysFrames: 32, Costs: &costs}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cycles() != 0 {
		t.Fatalf("fresh system clock = %d", sys.Cycles())
	}
	o := sys.NewObject("x")
	decl := api.MustInterfaceDecl("x.v1", api.MethodDecl{Name: "f", NumIn: 0, NumOut: 0})
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("f", func(...any) ([]any, error) { return nil, nil })
	if err := sys.Register("/services/x", o); err != nil {
		t.Fatal(err)
	}
	h, err := sys.Bind("/services/x")
	if err != nil {
		t.Fatal(err)
	}
	f, err := h.Resolve("x.v1", "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Call(); err != nil {
		t.Fatal(err)
	}
	if sys.Cycles() == 0 {
		t.Fatal("invocation charged no cycles")
	}
}

// ExampleDomain_CallBatch vectors many cross-domain calls into one
// protection crossing: the batch pays the trap and context-switch
// pair once for the whole group.
func ExampleDomain_CallBatch() {
	sys, err := paramecium.Boot()
	if err != nil {
		panic(err)
	}
	decl := api.MustInterfaceDecl("example.acc.v1",
		api.MethodDecl{Name: "add", NumIn: 1, NumOut: 1})
	acc := sys.NewObject("accumulator")
	sum := 0
	bi, err := acc.AddInterface(decl, &sum)
	if err != nil {
		panic(err)
	}
	bi.MustBind("add", func(args ...any) ([]any, error) {
		sum += args[0].(int)
		return []any{sum}, nil
	})
	server := sys.NewDomain("server")
	if err := server.Register("/services/acc", acc); err != nil {
		panic(err)
	}

	client := sys.NewDomain("client")
	h, err := client.Bind("/services/acc")
	if err != nil {
		panic(err)
	}
	add, err := h.Resolve("example.acc.v1", "add")
	if err != nil {
		panic(err)
	}

	b := h.Batch(4)
	for i := 1; i <= 4; i++ {
		if err := b.Add(add, i); err != nil {
			panic(err)
		}
	}
	if err := client.CallBatch(b); err != nil {
		panic(err)
	}
	res, _ := b.Results(3)
	fmt.Println("sum =", res[0])
	// Output:
	// sum = 10
}

// TestBatchAmortizesCrossings: through the public API, a batch of N
// cross-domain calls costs strictly fewer virtual cycles than N
// single calls of the same method — the vectored plane's whole point.
func TestBatchAmortizesCrossings(t *testing.T) {
	boot := func() (*paramecium.System, api.MethodHandle, *paramecium.Domain) {
		sys, err := paramecium.Boot()
		if err != nil {
			t.Fatal(err)
		}
		decl := api.MustInterfaceDecl("bench.v1",
			api.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
		o := sys.NewObject("counter")
		n := 0
		bi, err := o.AddInterface(decl, &n)
		if err != nil {
			t.Fatal(err)
		}
		bi.MustBind("inc", func(...any) ([]any, error) { n++; return []any{n}, nil })
		server := sys.NewDomain("server")
		if err := server.Register("/s/c", o); err != nil {
			t.Fatal(err)
		}
		client := sys.NewDomain("client")
		h, err := client.Bind("/s/c")
		if err != nil {
			t.Fatal(err)
		}
		inc, err := h.Resolve("bench.v1", "inc")
		if err != nil {
			t.Fatal(err)
		}
		return sys, inc, client
	}

	const size = 16
	sysA, incA, _ := boot()
	startA := sysA.Cycles()
	for i := 0; i < size; i++ {
		if _, err := incA.Call(); err != nil {
			t.Fatal(err)
		}
	}
	single := sysA.Cycles() - startA

	sysB, incB, clientB := boot()
	b := paramecium.NewBatch(size)
	for i := 0; i < size; i++ {
		if err := b.Add(incB); err != nil {
			t.Fatal(err)
		}
	}
	startB := sysB.Cycles()
	if err := clientB.CallBatch(b); err != nil {
		t.Fatal(err)
	}
	batched := sysB.Cycles() - startB

	if batched*4 > single {
		t.Fatalf("batch of %d cost %d cycles vs %d for singles: less than 4x amortization", size, batched, single)
	}
	for i := 0; i < size; i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if res[0].(int) != i+1 {
			t.Fatalf("entry %d = %v, want in-order results", i, res[0])
		}
	}
}

// TestBatchGroupedAmortizesMixedTargets: through the public API, a
// batch alternating two server domains in BatchGrouped mode costs at
// most a third of the same interleave in the default in-order mode —
// one crossing per distinct target instead of one per entry — and
// every result still lands in the caller's original entry slot, in
// queue order.
func TestBatchGroupedAmortizesMixedTargets(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	decl := api.MustInterfaceDecl("mixed.v1",
		api.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	const targets = 2
	client := sys.NewDomain("client")
	incs := make([]api.MethodHandle, targets)
	for i := 0; i < targets; i++ {
		o := sys.NewObject(fmt.Sprintf("counter%d", i))
		n := 0
		bi, err := o.AddInterface(decl, &n)
		if err != nil {
			t.Fatal(err)
		}
		bi.MustBind("inc", func(...any) ([]any, error) { n++; return []any{n}, nil })
		server := sys.NewDomain(fmt.Sprintf("server%d", i))
		path := fmt.Sprintf("/s/mixed%d", i)
		if err := server.Register(path, o); err != nil {
			t.Fatal(err)
		}
		h, err := client.Bind(path)
		if err != nil {
			t.Fatal(err)
		}
		if incs[i], err = h.Resolve("mixed.v1", "inc"); err != nil {
			t.Fatal(err)
		}
	}

	const size = 16
	run := func(mode paramecium.BatchMode) (uint64, *paramecium.Batch) {
		b := paramecium.NewBatch(size)
		b.SetMode(mode)
		for i := 0; i < size; i++ {
			if err := b.Add(incs[i%targets]); err != nil {
				t.Fatal(err)
			}
		}
		start := sys.Cycles()
		if err := client.CallBatch(b); err != nil {
			t.Fatal(err)
		}
		return sys.Cycles() - start, b
	}

	inOrder, _ := run(paramecium.BatchInOrder)
	grouped, b := run(paramecium.BatchGrouped)
	if grouped*3 > inOrder {
		t.Fatalf("grouped mixed batch cost %d cycles vs %d in-order: less than 3x amortization",
			grouped, inOrder)
	}
	for i := 0; i < size; i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		// Second round on each counter: entry i is its target's
		// (i/targets)'th call, on top of the in-order round's 8.
		if want := size/targets + i/targets + 1; res[0].(int) != want {
			t.Fatalf("entry %d = %v, want %d (per-target order, scattered to its slot)",
				i, res[0], want)
		}
	}
}

// TestBatchIntoDestroyedDomainFails: batches drain like single calls —
// destroying the server domain fails every entry of a later batch
// instead of reaching freed state.
func TestBatchIntoDestroyedDomainFails(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	decl := api.MustInterfaceDecl("gone.v1",
		api.MethodDecl{Name: "f", NumIn: 0, NumOut: 0})
	o := sys.NewObject("victim")
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	bi.MustBind("f", func(...any) ([]any, error) { ran = true; return nil, nil })
	server := sys.NewDomain("server")
	if err := server.Register("/s/victim", o); err != nil {
		t.Fatal(err)
	}
	client := sys.NewDomain("client")
	h, err := client.Bind("/s/victim")
	if err != nil {
		t.Fatal(err)
	}
	f, err := h.Resolve("gone.v1", "f")
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Destroy(); err != nil {
		t.Fatal(err)
	}
	b := paramecium.NewBatch(3)
	for i := 0; i < 3; i++ {
		if err := b.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.CallBatch(b); err == nil {
		t.Fatal("batch into destroyed domain reported no error")
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Results(i); err == nil {
			t.Fatalf("entry %d carried no error", i)
		}
	}
	if ran {
		t.Fatal("method executed in a destroyed domain")
	}
}

// TestSharedLeasesUnderUniprocessorStress: a WithCPUs(1) system under
// concurrent cross-domain load must oversubscribe its single CPU —
// AcquireCPU falls back to sharing, and the forced shares are counted
// and surfaced, quantifying that the workload wants more CPUs.
func TestSharedLeasesUnderUniprocessorStress(t *testing.T) {
	sys, err := paramecium.Boot(paramecium.WithCPUs(1))
	if err != nil {
		t.Fatal(err)
	}
	decl := api.MustInterfaceDecl("stress.v1",
		api.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	o := sys.NewObject("counter")
	var n atomic.Int64
	bi, err := o.AddInterface(decl, &n)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) {
		// Yield inside the call so concurrent callers genuinely overlap
		// the CPU-lease window even on a GOMAXPROCS=1 host.
		runtime.Gosched()
		return []any{n.Add(1)}, nil
	})
	server := sys.NewDomain("server")
	if err := server.Register("/s/counter", o); err != nil {
		t.Fatal(err)
	}
	client := sys.NewDomain("client")
	h, err := client.Bind("/s/counter")
	if err != nil {
		t.Fatal(err)
	}
	inc, err := h.Resolve("stress.v1", "inc")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const each = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := inc.Call(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n.Load() != workers*each {
		t.Fatalf("count = %d, want %d", n.Load(), workers*each)
	}
	if sys.SharedCPULeases() == 0 {
		t.Fatalf("no shared CPU leases counted across %d concurrent calls on one CPU", workers*each)
	}
	if sys.NumCPUs() != 1 {
		t.Fatalf("NumCPUs = %d", sys.NumCPUs())
	}
}
