package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestParalintTreeClean is the smoke gate: paralint over the whole
// module must exit 0 with no output.
func TestParalintTreeClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("paralint ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", stdout.String())
	}
}

func TestParalintList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("paralint -list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"chargepath", "lockorder", "hotpathalloc", "atomicmix", "cpustate"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestParalintUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer should exit 2, got %d", code)
	}
}
