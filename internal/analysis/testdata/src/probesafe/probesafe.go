// Package probesafe is the golden suite for the probesafe analyzer:
// flight-recorder Emit call sites must sit under the probe enable
// gate and must not allocate in their argument expressions.
package probesafe

// Enabled is the gate predicate (stands in for probe.Enabled).
func Enabled() bool { return false }

// Meter stands in for clock.Meter's emission wrapper.
type Meter struct{}

// Emit stands in for the real emission entry point.
func (m *Meter) Emit(a, b any) {}

// Recorder stands in for probe.Recorder.
type Recorder struct{}

// Emit stands in for the recorder's raw emission entry point.
func (r *Recorder) Emit(a, b any) {}

type payload struct{ x uint64 }

// gated wraps the emit in the canonical enable-gate block.
func gated(m *Meter, v uint64) {
	if Enabled() {
		m.Emit(v, v)
	}
}

// ungated emits with no gate in sight.
func ungated(m *Meter, v uint64) {
	m.Emit(v, v) // want `Emit call site is not under the probe enable gate`
}

// ungatedRecorder emits on the raw recorder with no gate.
func ungatedRecorder(r *Recorder, v uint64) {
	r.Emit(v, v) // want `Emit call site is not under the probe enable gate`
}

// earlyReturn uses the leading negated-gate form; everything after the
// early exit is gated.
func earlyReturn(m *Meter, v uint64) {
	if !Enabled() {
		return
	}
	m.Emit(v, v)
}

// conjunct gates through a short-circuit conjunction.
func conjunct(m *Meter, crossing bool, v uint64) {
	if crossing && Enabled() {
		m.Emit(v, v)
	}
}

// nested keeps the gate across nested control flow inside the block.
func nested(m *Meter, crossing bool, v uint64) {
	if Enabled() {
		m.Emit(v, 0)
		if crossing {
			m.Emit(v, 1)
		}
	}
}

// elseArm is not covered by the gate: the condition was false there.
func elseArm(m *Meter, v uint64) {
	if Enabled() {
		m.Emit(v, 0)
	} else {
		m.Emit(v, 1) // want `Emit call site is not under the probe enable gate`
	}
}

// deferred defers the emit: it runs at return, outside the guard's
// dynamic extent, so the deferred expression needs its own gate.
func deferred(m *Meter, v uint64) {
	if Enabled() {
		defer m.Emit(v, v) // want `Emit call site is not under the probe enable gate`
	}
}

// escaped captures the emit in a function literal that may be invoked
// long after the gate check.
func escaped(m *Meter, v uint64) func() {
	if Enabled() {
		return func() {
			m.Emit(v, v) // want `Emit call site is not under the probe enable gate`
		}
	}
	return nil
}

// allocLiteral builds a composite literal in an argument.
func allocLiteral(m *Meter, v uint64) {
	if Enabled() {
		m.Emit(&payload{x: v}, v) // want `composite literal, which allocates`
	}
}

// allocAppend grows a slice in an argument.
func allocAppend(m *Meter, vs []uint64, v uint64) {
	if Enabled() {
		m.Emit(append(vs, v), v) // want `calls append, which allocates`
	}
}

// allocConcat concatenates strings in an argument.
func allocConcat(m *Meter, name string) {
	if Enabled() {
		m.Emit(name+"!", 0) // want `concatenates strings, which allocates`
	}
}

// pinned is a reviewed deviation: the fixture's gate is established by
// its sole caller, documented here.
func pinned(m *Meter, v uint64) {
	//paralint:ignore probesafe caller holds the gate by construction
	m.Emit(v, v)
}
