package threads

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paramecium/internal/clock"
)

func newSchedN(n int) (*Scheduler, *clock.Meter) {
	meter := clock.NewMeter(clock.DefaultCosts())
	return NewSchedulerCPUs(meter, n), meter
}

// TestMultiCPUDispatchCompletesAll: every spawned thread runs to
// completion under the parallel dispatch loops, and the dispatch count
// stays exact (one per run segment) no matter how threads migrate.
func TestMultiCPUDispatchCompletesAll(t *testing.T) {
	s, _ := newSchedN(4)
	const threads = 200
	var ran atomic.Int64
	for i := 0; i < threads; i++ {
		s.Spawn("w", func(th *Thread) {
			th.Yield()
			th.Yield()
			ran.Add(1)
		})
	}
	got := s.RunUntilIdle()
	if ran.Load() != threads {
		t.Fatalf("%d threads ran, want %d", ran.Load(), threads)
	}
	// Each thread has three run segments (two yields): the dispatch
	// count is exact even when segments execute on different CPUs.
	if want := threads * 3; got != want {
		t.Fatalf("dispatches = %d, want %d", got, want)
	}
	if s.LiveCount() != 0 {
		t.Fatalf("live = %d", s.LiveCount())
	}
	if s.ReadyCount() != 0 {
		t.Fatalf("ready = %d", s.ReadyCount())
	}
}

// TestSpawnOnPlacesOnAffineQueue: SpawnOn queues the thread on the
// requested CPU's local deque.
func TestSpawnOnPlacesOnAffineQueue(t *testing.T) {
	s, _ := newSchedN(4)
	th := s.SpawnOn(2, "affine", func(*Thread) {})
	s.cpus[2].mu.Lock()
	n := len(s.cpus[2].q)
	s.cpus[2].mu.Unlock()
	if n != 1 {
		t.Fatalf("CPU 2 queue holds %d threads, want 1", n)
	}
	if th.LastCPU() != 2 {
		t.Fatalf("affinity = %d, want 2", th.LastCPU())
	}
	s.RunUntilIdle()
	<-th.Done()
}

// TestStealTakesHalfFromTail: a thief takes half the victim's deque
// from the back — the newest thread to run immediately, the rest onto
// its own queue — while the owner keeps the front half in FIFO order.
func TestStealTakesHalfFromTail(t *testing.T) {
	s, _ := newSchedN(2)
	var ths []*Thread
	for i := 0; i < 4; i++ {
		ths = append(ths, s.SpawnOn(0, "victim-work", func(*Thread) {}))
	}
	stolen := s.stealFor(1, clock.NewRand(1))
	if stolen == nil {
		t.Fatal("nothing stolen from a 4-deep victim queue")
	}
	if stolen != ths[3] {
		t.Fatalf("stole thread %d, want the newest (%d)", stolen.ID(), ths[3].ID())
	}
	if s.Steals() != 1 {
		t.Fatalf("steal operations = %d, want 1", s.Steals())
	}
	if s.StolenThreads() != 2 {
		t.Fatalf("stolen threads = %d, want 2 (half of 4)", s.StolenThreads())
	}
	// The other half of the batch landed on the thief's queue, oldest
	// first; the victim keeps its front half in order.
	if got := s.pop(1); got != ths[2] {
		t.Fatalf("thief queue holds %v, want %d", got, ths[2].ID())
	}
	if popped := s.pop(0); popped != ths[0] {
		t.Fatalf("owner popped %v, want the oldest (%d)", popped, ths[0].ID())
	}
	// Put everything back so the run can drain it.
	s.mu.Lock()
	s.ready(stolen)
	s.ready(ths[0])
	s.ready(ths[2])
	s.mu.Unlock()
	s.RunUntilIdle()
	for _, th := range ths {
		<-th.Done()
	}
}

// TestStealHalfRebalancesBurst: a burst of pop-up work concentrated on
// one CPU — the shape a hot interrupt line produces — spreads across
// the topology in far fewer steal operations than threads, because
// each operation migrates half a deque. With one-at-a-time stealing
// the operation count would equal the migrated-thread count.
func TestStealHalfRebalancesBurst(t *testing.T) {
	s, _ := newSchedN(4)
	const burst = 64
	var ran atomic.Int64
	for i := 0; i < burst; i++ {
		// Every thread is affined to CPU 0, exactly like pop-up threads
		// of an interrupt bound there; the body is long enough that the
		// other CPUs must steal to help.
		s.PopUpEagerOn(0, "burst", func(th *Thread) {
			th.Yield()
			ran.Add(1)
		})
	}
	s.RunUntilIdle()
	if ran.Load() != burst {
		t.Fatalf("%d ran, want %d", ran.Load(), burst)
	}
	ops, moved := s.Steals(), s.StolenThreads()
	if ops == 0 || moved == 0 {
		t.Fatal("a 64-thread burst on one CPU of four triggered no stealing")
	}
	if moved <= ops {
		t.Fatalf("stolen threads (%d) <= steal operations (%d): stealing one at a time, not half-deques", moved, ops)
	}
}

// TestPersistentDispatchersReused: the parallel run spawns one host
// dispatcher per CPU once; repeated scheduler pumps reuse the parked
// pool instead of spawning per call.
func TestPersistentDispatchersReused(t *testing.T) {
	s, _ := newSchedN(4)
	const pumps = 10
	var ran atomic.Int64
	for p := 0; p < pumps; p++ {
		for i := 0; i < 8; i++ {
			s.Spawn("w", func(th *Thread) {
				th.Yield()
				ran.Add(1)
			})
		}
		if got := s.RunUntilIdle(); got != 8*2 {
			t.Fatalf("pump %d: dispatches = %d, want 16", p, got)
		}
	}
	if ran.Load() != pumps*8 {
		t.Fatalf("%d ran, want %d", ran.Load(), pumps*8)
	}
	if got := s.DispatcherSpawns(); got != 4 {
		t.Fatalf("dispatcher spawns = %d over %d pumps, want one per CPU (4)", got, pumps)
	}
}

// TestShutdownReleasesPoolAndRespawns: Shutdown retires the parked
// dispatcher pool (no goroutines stranded for the process lifetime);
// the scheduler stays usable and the next pump spawns a fresh pool.
func TestShutdownReleasesPoolAndRespawns(t *testing.T) {
	s, _ := newSchedN(2)
	run := func() {
		var ran atomic.Int64
		for i := 0; i < 4; i++ {
			s.Spawn("w", func(*Thread) { ran.Add(1) })
		}
		s.RunUntilIdle()
		if ran.Load() != 4 {
			t.Fatalf("%d ran, want 4", ran.Load())
		}
	}
	run()
	if got := s.DispatcherSpawns(); got != 2 {
		t.Fatalf("spawns = %d, want 2", got)
	}
	before := runtime.NumGoroutine()
	s.Shutdown()
	// The two parked workers must exit; give the runtime a moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before-2 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if got := runtime.NumGoroutine(); got > before-2 {
		t.Fatalf("goroutines = %d after Shutdown, want <= %d", got, before-2)
	}
	s.Shutdown() // idempotent
	run()        // respawns a fresh pool
	if got := s.DispatcherSpawns(); got != 4 {
		t.Fatalf("spawns = %d after respawn, want 4", got)
	}
	s.Shutdown()
}

// TestIdleCPUsParkAndWakeUnderHandoff: with far more CPUs than
// runnable threads, idle CPUs must park — and every blocking handoff
// between the two workers must wake one back up without losing the
// wakeup. Completion of the full ping-pong is the liveness proof.
func TestIdleCPUsParkAndWakeUnderHandoff(t *testing.T) {
	s, _ := newSchedN(4)
	const rounds = 500
	ping, err := NewQueue(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	pong, err := NewQueue(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum int
	s.Spawn("ping", func(th *Thread) {
		for i := 0; i < rounds; i++ {
			ping.Push(th, i)
			sum += pong.Pop(th).(int)
		}
	})
	s.Spawn("pong", func(th *Thread) {
		for i := 0; i < rounds; i++ {
			v := ping.Pop(th).(int)
			pong.Push(th, v*2)
		}
	})
	s.RunUntilIdle()
	if want := rounds * (rounds - 1); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if s.Parks() == 0 {
		t.Fatal("no CPU ever parked with 4 CPUs and 2 runnable threads")
	}
}

// TestMultiCPUSleepersAdvanceClock: when every CPU idles and threads
// sleep on the virtual clock, the last parking CPU advances time and
// the sleepers wake — no wall-clock delay, no hang.
func TestMultiCPUSleepersAdvanceClock(t *testing.T) {
	s, meter := newSchedN(4)
	start := meter.Clock.Now()
	var woke atomic.Int64
	s.Spawn("short", func(th *Thread) {
		th.Sleep(100)
		woke.Add(1)
	})
	s.Spawn("long", func(th *Thread) {
		th.Sleep(500)
		woke.Add(1)
	})
	s.RunUntilIdle()
	if woke.Load() != 2 {
		t.Fatalf("woke = %d, want 2", woke.Load())
	}
	if meter.Clock.Now() < start+500 {
		t.Fatalf("clock = %d, want >= %d", meter.Clock.Now(), start+500)
	}
}

// TestMultiCPUConcurrentSpawn: spawns racing the parallel dispatch
// loops from many host goroutines all complete exactly once.
func TestMultiCPUConcurrentSpawn(t *testing.T) {
	s, _ := newSchedN(4)
	const spawners = 8
	const each = 50
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < spawners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Spawn("w", func(th *Thread) {
					th.Yield()
					ran.Add(1)
				})
			}
		}()
	}
	wg.Wait()
	s.RunUntilIdle()
	if got := ran.Load(); got != spawners*each {
		t.Fatalf("%d ran, want %d", got, spawners*each)
	}
	if s.LiveCount() != 0 {
		t.Fatalf("live = %d", s.LiveCount())
	}
}

// TestMultiCPUProtoPromotion: a proto-thread promoted while the
// parallel loops are quiescent is picked up by the next run.
func TestMultiCPUProtoPromotion(t *testing.T) {
	s, meter := newSchedN(2)
	th, completed := s.PopUpProto("irq", func(t2 *Thread) {
		t2.Yield()
	})
	if completed {
		t.Fatal("yielding proto-thread reported inline completion")
	}
	if !th.Promoted() {
		t.Fatal("yielding proto-thread not promoted")
	}
	if meter.Count(clock.OpPromote) != 1 {
		t.Fatal("promotion not charged")
	}
	s.RunUntilIdle()
	<-th.Done()
}
