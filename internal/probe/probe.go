// Package probe is the kernel flight recorder: per-CPU fixed-capacity
// rings of typed events plus a per-domain cycle ledger, the measurement
// substrate behind System.TraceSnapshot and cmd/paratrace.
//
// The package sits below every subsystem that charges the clock, so it
// imports nothing but the standard library; the clock package wires a
// Recorder and Ledger into its Meter and every other layer reaches them
// through that one pointer.
//
// # Cost discipline
//
// Recording is free in VIRTUAL time — the recorder is the measurement
// apparatus, not part of the machine being simulated — and cheap in
// host time: with the gate disabled every instrumented site is a single
// atomic load and a branch, and with it enabled an emit is a handful of
// atomic stores into a preallocated slot. Emission never allocates in
// steady state, a discipline enforced statically by the probesafe
// paralint analyzer and dynamically by the P10 benchmark's alloc gate.
package probe

import (
	"sort"
	"sync/atomic"
)

// Kind identifies one typed flight-recorder event. The set covers every
// boundary the cost model charges: protection crossings, vectored
// dispatch, traps and faults, TLB traffic including shootdowns on both
// the initiating and receiving CPU, ring doorbells and hangups, grant
// lifecycle, scheduler steal/park/wake, and remote-NUMA frame touches.
type Kind uint8

// Flight-recorder event kinds. The operand meanings (A, B) of each kind
// are part of the trace schema documented in ARCHITECTURE.md's
// Observability section; a docs-freshness test fails if a kind is
// missing from that table.
const (
	// KindCrossingBegin marks entry to a cross-domain invocation: the
	// trap has fired and the context-switch pair is about to install
	// the target. Domain is the paying caller; A is the target context;
	// B is the number of vectored entries carried (1 for a single call).
	KindCrossingBegin Kind = iota
	// KindCrossingEnd marks the return switch of a crossing. Operands
	// mirror KindCrossingBegin.
	KindCrossingEnd
	// KindBatchDispatch marks one vectored group hitting a proxy.
	// Domain is the caller; A is the group size; B is the batch mode
	// (0 in-order, 1 grouped).
	KindBatchDispatch
	// KindTrap marks a trap being raised. Domain is the trapping
	// context; A is the trap vector; B is the trap argument word.
	KindTrap
	// KindFault marks a translation fault. Domain is the faulting
	// context; A is the faulting virtual address; B is the fault kind.
	KindFault
	// KindTLBMiss marks a TLB refill. Domain is the translating
	// context; A is the virtual page address.
	KindTLBMiss
	// KindTLBFlush marks a full TLB flush on the event's CPU. Domain is
	// the context whose switch forced it (kernel for explicit flushes).
	KindTLBFlush
	// KindShootdownInit marks the initiating side of a TLB shootdown.
	// Domain is the context whose mapping changed; A is the virtual
	// page unmapped (0 for whole-context teardown); B is the number of
	// remote CPUs that were sent an invalidation.
	KindShootdownInit
	// KindShootdownRecv marks the receiving side of a TLB shootdown:
	// the event's CPU invalidates entries another CPU unmapped. Domain
	// is the context whose mapping changed; A is the virtual page
	// invalidated, or for whole-context teardown the number of entries
	// this CPU's TLB dropped.
	KindShootdownRecv
	// KindDoorbell marks a ring doorbell latch. Domain is the producing
	// context; A is the burst size the notify covers; B is the backing
	// segment id.
	KindDoorbell
	// KindHangup marks a ring endpoint hanging up or observing its peer
	// gone. Domain is the endpoint's own context; A is the backing
	// segment id; B is 0 on the producer (deliberate hangup) and 1 on
	// the consumer (revoked grant observed as end-of-stream).
	KindHangup
	// KindGrantAttach marks a segment grant being mapped into its
	// grantee. Domain is the grantee; A is the segment id; B its pages.
	KindGrantAttach
	// KindGrantRevoke marks a grant being withdrawn. Domain is the
	// grantee losing access; A is the segment id; B its pages.
	KindGrantRevoke
	// KindSteal marks the event's CPU stealing runnable threads.
	// A is the victim CPU; B the number of threads taken.
	KindSteal
	// KindPark marks the event's CPU parking idle.
	KindPark
	// KindWake marks a thread made runnable on the event's CPU. A is
	// the thread id.
	KindWake
	// KindRemoteFrame marks an access touching a frame homed on another
	// NUMA node. Domain is the touching context; A is the physical
	// frame number; B is the topology's node distance.
	KindRemoteFrame

	kindCount
)

var kindNames = [...]string{
	KindCrossingBegin: "crossing-begin",
	KindCrossingEnd:   "crossing-end",
	KindBatchDispatch: "batch-dispatch",
	KindTrap:          "trap",
	KindFault:         "fault",
	KindTLBMiss:       "tlb-miss",
	KindTLBFlush:      "tlb-flush",
	KindShootdownInit: "shootdown-init",
	KindShootdownRecv: "shootdown-recv",
	KindDoorbell:      "doorbell",
	KindHangup:        "hangup",
	KindGrantAttach:   "grant-attach",
	KindGrantRevoke:   "grant-revoke",
	KindSteal:         "steal",
	KindPark:          "park",
	KindWake:          "wake",
	KindRemoteFrame:   "remote-frame",
}

// String returns the kind's mnemonic.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return "kind(?)"
	}
	return kindNames[k]
}

// NumKinds is the number of distinct event kinds.
const NumKinds = int(kindCount)

// gate is the package-level enable gate. It is a counter, not a bool:
// concurrent systems (tests boot many) each enable their own tracing
// and the gate stays up until the last one disables. A system whose
// meter carries no sink emits nothing even while the gate is up, so
// traced and untraced systems coexist in one process.
var gate atomic.Int64

// Enabled reports whether any system in the process is tracing. This
// is the single load that every instrumented site pays on the disabled
// path — the whole cost of carrying the flight recorder when it is off.
//
//paramecium:hotpath
func Enabled() bool { return gate.Load() != 0 }

// Enable raises the package gate. Pair with Disable.
func Enable() { gate.Add(1) }

// Disable lowers the package gate raised by one Enable.
func Disable() { gate.Add(-1) }

// DefaultRingCapacity is the per-CPU event ring capacity when the
// embedder does not choose one.
const DefaultRingCapacity = 4096

// Event is one recorded flight-recorder entry, as read back by
// Snapshot. Seq is the slot's reservation number within its CPU ring
// (a tiebreak for equal virtual timestamps); Cycles is the
// virtual-clock stamp; Domain is the paying protection-domain context.
// A and B are kind-specific operands — see the Kind constants.
type Event struct {
	Seq    uint64
	Cycles uint64
	Kind   Kind
	CPU    int
	Domain uint32
	A, B   uint64
}

// slot is one ring entry. Every field is atomic so a snapshot racing an
// emit reads torn nothing: the writer invalidates seq, stores the
// payload, then publishes seq = index+1, and the reader re-checks seq
// around its field loads, dropping the slot on mismatch.
type slot struct {
	seq    atomic.Uint64
	cycles atomic.Uint64
	kind   atomic.Uint32
	domain atomic.Uint32
	a      atomic.Uint64
	b      atomic.Uint64
}

// cpuRing is one CPU's fixed-capacity event ring. In the simulation
// there is one logical writer per CPU; the implementation nonetheless
// stays torn-proof under racing writers (a shared CPU lease interleaves
// two callers on one CPU) because reservation is an atomic fetch-add
// and publication is per-slot.
type cpuRing struct {
	cursor atomic.Uint64
	slots  []slot
}

// Recorder is the flight recorder: one event ring per CPU. The zero
// Recorder is unusable; build one with NewRecorder.
type Recorder struct {
	rings []cpuRing
}

// NewRecorder builds a recorder with one ring of the given capacity per
// CPU. capacity <= 0 selects DefaultRingCapacity.
func NewRecorder(cpus, capacity int) *Recorder {
	if cpus < 1 {
		cpus = 1
	}
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	r := &Recorder{rings: make([]cpuRing, cpus)}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, capacity)
	}
	return r
}

// CPUs reports the number of per-CPU rings.
func (r *Recorder) CPUs() int { return len(r.rings) }

// Capacity reports each ring's slot count.
func (r *Recorder) Capacity() int { return len(r.rings[0].slots) }

// Emit records one event on cpu's ring at virtual time cycles. A cpu
// outside the recorder's range (the NoCPU sentinel, boot-time paths)
// lands on ring 0. Emit is lock-free and allocation-free: it reserves a
// slot with one fetch-add, stores the payload, and publishes the slot's
// sequence; when the ring laps, the oldest events are overwritten.
//
//paramecium:hotpath
func (r *Recorder) Emit(cpu int, cycles uint64, kind Kind, domain uint32, a, b uint64) {
	if r == nil {
		return
	}
	if cpu < 0 || cpu >= len(r.rings) {
		cpu = 0
	}
	ring := &r.rings[cpu]
	idx := ring.cursor.Add(1) - 1
	s := &ring.slots[idx%uint64(len(ring.slots))]
	s.seq.Store(0) // invalidate while the payload is half-written
	s.cycles.Store(cycles)
	s.kind.Store(uint32(kind))
	s.domain.Store(domain)
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(idx + 1)
}

// Emitted reports the total number of events ever emitted on cpu's
// ring, including ones the ring has since overwritten.
func (r *Recorder) Emitted(cpu int) uint64 {
	if cpu < 0 || cpu >= len(r.rings) {
		return 0
	}
	return r.rings[cpu].cursor.Load()
}

// Dropped reports how many of cpu's events the ring has overwritten.
func (r *Recorder) Dropped(cpu int) uint64 {
	n := r.Emitted(cpu)
	if c := uint64(r.Capacity()); n > c {
		return n - c
	}
	return 0
}

// Snapshot reads every ring and returns the retained events per CPU,
// each CPU's slice ordered by virtual time (reservation order breaks
// ties). Snapshot may race live emits; a slot caught mid-write is
// dropped rather than returned torn.
func (r *Recorder) Snapshot() [][]Event {
	if r == nil {
		return nil
	}
	out := make([][]Event, len(r.rings))
	for cpu := range r.rings {
		ring := &r.rings[cpu]
		capn := uint64(len(ring.slots))
		n := ring.cursor.Load()
		start := uint64(0)
		if n > capn {
			start = n - capn
		}
		evs := make([]Event, 0, n-start)
		for idx := start; idx < n; idx++ {
			s := &ring.slots[idx%capn]
			if s.seq.Load() != idx+1 {
				continue
			}
			e := Event{
				Seq:    idx,
				Cycles: s.cycles.Load(),
				Kind:   Kind(s.kind.Load()),
				CPU:    cpu,
				Domain: s.domain.Load(),
				A:      s.a.Load(),
				B:      s.b.Load(),
			}
			if s.seq.Load() != idx+1 {
				continue // overwritten while reading; drop the torn copy
			}
			evs = append(evs, e)
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Cycles != evs[j].Cycles {
				return evs[i].Cycles < evs[j].Cycles
			}
			return evs[i].Seq < evs[j].Seq
		})
		out[cpu] = evs
	}
	return out
}
