package obj

import (
	"testing"

	"paramecium/internal/clock"
)

// TestCoalescerSizeFlush: the size threshold flushes exactly at the
// threshold, never earlier.
func TestCoalescerSizeFlush(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}
	meter := clock.NewMeter(clock.DefaultCosts())
	c := NewCoalescer(meter, 4, 1<<40) // deadline effectively never
	for i := 1; i <= 3; i++ {
		if err := c.Submit(inc); err != nil {
			t.Fatal(err)
		}
		if *n != 0 {
			t.Fatalf("flushed after %d submits, want none before 4", i)
		}
	}
	if err := c.Submit(inc); err != nil {
		t.Fatal(err)
	}
	if *n != 4 || c.Len() != 0 {
		t.Fatalf("after 4th submit: counter = %d, queued = %d; want 4, 0", *n, c.Len())
	}
}

// TestCoalescerDeadlineFlush: deadline flushing is deterministic
// under the virtual clock — a queued entry flushes at exactly
// due = submit-time + delay, observed via Poll, and never before.
func TestCoalescerDeadlineFlush(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}
	meter := clock.NewMeter(clock.DefaultCosts())
	meter.Clock.Advance(1000)
	const delay = 500
	c := NewCoalescer(meter, 100, delay)
	if err := c.Submit(inc); err != nil {
		t.Fatal(err)
	}
	if want := uint64(1000 + delay); c.Deadline() != want {
		t.Fatalf("deadline = %d, want %d", c.Deadline(), want)
	}
	// One cycle short of the deadline: Poll must not flush.
	meter.Clock.Advance(delay - 1)
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if *n != 0 {
		t.Fatal("flushed one cycle before the deadline")
	}
	// At the deadline: Poll flushes. Rerunning the test gives the
	// same virtual timeline cycle for cycle.
	meter.Clock.Advance(1)
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
	if *n != 1 || c.Len() != 0 {
		t.Fatalf("at deadline: counter = %d, queued = %d; want 1, 0", *n, c.Len())
	}
}

// TestCoalescerDeadlineOnSubmit: a submit past the deadline flushes
// without waiting for Poll.
func TestCoalescerDeadlineOnSubmit(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	meter := clock.NewMeter(clock.DefaultCosts())
	c := NewCoalescer(meter, 100, 500)
	if err := c.Submit(inc); err != nil {
		t.Fatal(err)
	}
	meter.Clock.Advance(500)
	if err := c.Submit(inc); err != nil {
		t.Fatal(err)
	}
	if *n != 2 {
		t.Fatalf("counter = %d, want 2 (late submit flushes both)", *n)
	}
}

// TestCoalescerDefaults: zero thresholds derive from the P5 curve —
// size 16, delay = the model's fixed crossing cost.
func TestCoalescerDefaults(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	c := NewCoalescer(meter, 0, 0)
	if c.Size() != DefaultCoalesceSize {
		t.Fatalf("size = %d, want %d", c.Size(), DefaultCoalesceSize)
	}
	if want := CrossingCycles(&meter.Model); c.Delay() != want || want != 660 {
		t.Fatalf("delay = %d, want CrossingCycles = %d (660 under defaults)", c.Delay(), want)
	}
}

// TestCoalescerBuffersAndHook: SubmitInto results survive the flush
// in caller-owned buffers; OnFlush sees per-entry outcomes before the
// reset.
func TestCoalescerBuffersAndHook(t *testing.T) {
	iv, _ := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	fail, _ := iv.Resolve("fail")
	meter := clock.NewMeter(clock.DefaultCosts())
	c := NewCoalescer(meter, 2, 1<<40)

	var flushedErrs int
	c.OnFlush = func(b *Batch) {
		for i := 0; i < b.Len(); i++ {
			if _, err := b.Results(i); err != nil {
				flushedErrs++
			}
		}
	}
	buf := make([]any, 0, 1)
	if err := c.SubmitInto(inc, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(fail); err != nil {
		t.Fatal(err)
	}
	if flushedErrs != 1 {
		t.Fatalf("OnFlush saw %d per-entry errors, want 1", flushedErrs)
	}
	if got := buf[:1]; *(got[0].(*int)) != 1 {
		t.Fatalf("caller buffer = %v, want the counter result 1", got[0])
	}
	if c.Len() != 0 {
		t.Fatalf("queue not reset after flush: %d", c.Len())
	}
}

// TestCoalescerFlushEmpty: flushing or polling an empty queue is a
// no-op.
func TestCoalescerFlushEmpty(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	c := NewCoalescer(meter, 4, 100)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Poll(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescerCrossingStats: a coalescer fed alternating targets
// reports the mixed-target cliff through Flushes and Crossings — one
// crossing per entry in the default in-order mode — and OnFlush can
// read the same number per flush from Batch.Crossings. SetMode(Grouped)
// drops it to one crossing per distinct target.
func TestCoalescerCrossingStats(t *testing.T) {
	_, hs := groupedFixture(2)
	meter := clock.NewMeter(clock.DefaultCosts())
	c := NewCoalescer(meter, 4, 1<<40)

	var perFlush []int
	c.OnFlush = func(b *Batch) { perFlush = append(perFlush, b.Crossings()) }

	// Two alternating-target flushes in the default mode: every entry
	// is a run of one, so each flush of 4 pays 4 crossings.
	for i := 0; i < 8; i++ {
		if err := c.Submit(hs[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	if c.Flushes() != 2 || c.Crossings() != 8 {
		t.Fatalf("in-order: flushes = %d crossings = %d, want 2 and 8 (the cliff)",
			c.Flushes(), c.Crossings())
	}

	// Grouped: the same feed pays one crossing per distinct target.
	c.SetMode(Grouped)
	if c.Mode() != Grouped {
		t.Fatalf("mode = %v, want %v", c.Mode(), Grouped)
	}
	for i := 0; i < 8; i++ {
		if err := c.Submit(hs[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	if c.Flushes() != 4 || c.Crossings() != 12 {
		t.Fatalf("grouped: flushes = %d crossings = %d, want 4 and 12 (2 per flush)",
			c.Flushes(), c.Crossings())
	}
	want := []int{4, 4, 2, 2}
	if len(perFlush) != len(want) {
		t.Fatalf("OnFlush ran %d times, want %d", len(perFlush), len(want))
	}
	for i := range want {
		if perFlush[i] != want[i] {
			t.Fatalf("flush %d paid %d crossings, want %d", i, perFlush[i], want[i])
		}
	}
}
