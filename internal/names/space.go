package names

import (
	"fmt"
	"sort"
	"sync"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// Space is the system-wide hierarchical name space of object
// instances, managed by the directory service in the nucleus. Every
// lookup charges one hop per path component, so experiments can
// measure lookup cost versus depth (experiment F4).
type Space struct {
	meter *clock.Meter

	mu   sync.RWMutex
	root *dir
}

type dir struct {
	children map[string]*entry
}

// entry is either a subdirectory or an object handle (never both).
type entry struct {
	dir  *dir
	inst obj.Instance
}

func newDir() *dir { return &dir{children: make(map[string]*entry)} }

// NewSpace builds an empty name space. meter may be nil.
func NewSpace(meter *clock.Meter) *Space {
	return &Space{meter: meter, root: newDir()}
}

func (s *Space) chargeHops(n int) {
	if s.meter != nil && n > 0 {
		s.meter.ChargeN(clock.OpNameLookupHop, uint64(n))
	}
}

// Register binds an instance to path, creating intermediate
// directories as needed. Registering over an existing name fails; use
// Replace for interposition.
func (s *Space) Register(path string, inst obj.Instance) error {
	if inst == nil {
		return fmt.Errorf("%w: nil instance for %q", ErrBadPath, path)
	}
	parts, err := Split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot register at root", ErrBadPath)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.root
	for _, c := range parts[:len(parts)-1] {
		e, ok := d.children[c]
		if !ok {
			e = &entry{dir: newDir()}
			d.children[c] = e
		}
		if e.dir == nil {
			return fmt.Errorf("%w: %q under %q", ErrNotDir, c, path)
		}
		d = e.dir
	}
	leaf := parts[len(parts)-1]
	if _, dup := d.children[leaf]; dup {
		return fmt.Errorf("%w: %q", ErrExists, path)
	}
	d.children[leaf] = &entry{inst: inst}
	return nil
}

// Replace atomically swaps the instance registered at path for a new
// one and returns the previous instance. This is the interposition
// primitive: "build an interposing object … and replace the object
// handle in the name space. All further lookups … will result in a
// reference to the interposing agent."
func (s *Space) Replace(path string, inst obj.Instance) (obj.Instance, error) {
	if inst == nil {
		return nil, fmt.Errorf("%w: nil instance for %q", ErrBadPath, path)
	}
	parts, err := Split(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.lookupLocked(parts)
	if err != nil {
		return nil, err
	}
	if e.inst == nil {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	prev := e.inst
	e.inst = inst
	return prev, nil
}

// Unregister removes the instance at path. Directories are removed
// only when empty.
func (s *Space) Unregister(path string) error {
	parts, err := Split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot unregister root", ErrBadPath)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.root
	for _, c := range parts[:len(parts)-1] {
		e, ok := d.children[c]
		if !ok || e.dir == nil {
			return fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		d = e.dir
	}
	leaf := parts[len(parts)-1]
	e, ok := d.children[leaf]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	if e.dir != nil && len(e.dir.children) > 0 {
		return fmt.Errorf("names: directory %q not empty", path)
	}
	delete(d.children, leaf)
	return nil
}

// Bind resolves path to the registered instance, charging one hop per
// component.
func (s *Space) Bind(path string) (obj.Instance, error) {
	parts, err := Split(path)
	if err != nil {
		return nil, err
	}
	s.chargeHops(len(parts))
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, err := s.lookupLocked(parts)
	if err != nil {
		return nil, err
	}
	if e.inst == nil {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	return e.inst, nil
}

func (s *Space) lookupLocked(parts []string) (*entry, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: root is a directory", ErrIsDir)
	}
	d := s.root
	for i, c := range parts {
		e, ok := d.children[c]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, "/"+joinParts(parts[:i+1]))
		}
		if i == len(parts)-1 {
			return e, nil
		}
		if e.dir == nil {
			return nil, fmt.Errorf("%w: %q", ErrNotDir, "/"+joinParts(parts[:i+1]))
		}
		d = e.dir
	}
	return nil, ErrNotFound // unreachable
}

func joinParts(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}

// List returns the sorted names under a directory path ("" or "/" for
// the root). Names of subdirectories carry a trailing slash.
func (s *Space) List(path string) ([]string, error) {
	parts, err := Split(path)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := s.root
	for _, c := range parts {
		e, ok := d.children[c]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		if e.dir == nil {
			return nil, fmt.Errorf("%w: %q", ErrNotDir, path)
		}
		d = e.dir
	}
	out := make([]string, 0, len(d.children))
	for name, e := range d.children {
		if e.dir != nil {
			name += "/"
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Walk visits every registered instance in depth-first name order.
func (s *Space) Walk(fn func(path string, inst obj.Instance) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return walkDir(s.root, "", fn)
}

func walkDir(d *dir, prefix string, fn func(string, obj.Instance) error) error {
	names := make([]string, 0, len(d.children))
	for n := range d.children {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := d.children[n]
		p := prefix + "/" + n
		if e.dir != nil {
			if err := walkDir(e.dir, p, fn); err != nil {
				return err
			}
			continue
		}
		if err := fn(p, e.inst); err != nil {
			return err
		}
	}
	return nil
}
