package shm

import (
	"errors"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/mmu"
)

// TestRevokeFromInitiator is the shm-level regression test for the
// boot-CPU-initiator bug: revoking a grant whose pages are cached only
// in the revoking CPU's own TLB must charge no shootdown IPIs, while
// the same revoke initiated from the boot CPU pays one per page held.
func TestRevokeFromInitiator(t *testing.T) {
	for _, tc := range []struct {
		name      string
		revoke    func(r *Registry, ref GrantRef) error
		wantIPIs  uint64
		wantStats uint64 // CPU 1's received-shootdown counter afterwards
	}{
		{
			name:     "from the CPU holding the entries",
			revoke:   func(r *Registry, ref GrantRef) error { return r.RevokeFrom(1, ref) },
			wantIPIs: 0,
		},
		{
			name:      "from the boot CPU",
			revoke:    func(r *Registry, ref GrantRef) error { return r.Revoke(ref) },
			wantIPIs:  2, // one per page CPU 1 held cached
			wantStats: 2,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg, svc, machine := newTestRegistry(t, 2)
			owner := svc.NewDomain()
			grantee := svc.NewDomain()
			seg, err := reg.NewSegment(owner, 2)
			if err != nil {
				t.Fatal(err)
			}
			g, err := seg.Grant(grantee, RO)
			if err != nil {
				t.Fatal(err)
			}
			att, err := reg.Attach(g.Ref())
			if err != nil {
				t.Fatal(err)
			}
			// Cache both grantee-side pages in CPU 1's TLB only.
			for i := 0; i < seg.Pages(); i++ {
				va := att.Base() + mmu.VAddr(i*mmu.PageSize)
				if _, err := machine.MMU.TranslateOn(1, grantee, va, mmu.AccessRead); err != nil {
					t.Fatalf("TranslateOn(1): %v", err)
				}
			}
			before := machine.Meter.Count(clock.OpTLBShootdown)
			if err := tc.revoke(reg, g.Ref()); err != nil {
				t.Fatal(err)
			}
			if got := machine.Meter.Count(clock.OpTLBShootdown) - before; got != tc.wantIPIs {
				t.Fatalf("revoke charged %d shootdowns, want %d", got, tc.wantIPIs)
			}
			if got := machine.MMU.TLBStatsOn(1).Shootdowns; got != tc.wantStats {
				t.Fatalf("CPU 1 Shootdowns = %d, want %d", got, tc.wantStats)
			}
		})
	}
}

// TestTombstoneChurnBounded drives create/grant/attach/revoke/destroy
// churn and asserts the registry's grant table no longer grows
// monotonically: tombstone retention is bounded by the cap, evicted
// refs degrade from ErrRevoked to ErrNoGrant, and recent tombstones
// keep the better error.
func TestTombstoneChurnBounded(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 1)
	reg.SetMaxTombstones(8)
	owner := svc.NewDomain()
	grantee := svc.NewDomain()

	var refs []GrantRef
	for i := 0; i < 100; i++ {
		seg, err := reg.NewSegment(owner, 1)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		g, err := seg.Grant(grantee, RW)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if _, err := reg.Attach(g.Ref()); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if err := reg.Revoke(g.Ref()); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		refs = append(refs, g.Ref())
		if got := reg.Tombstones(); got > 8 {
			t.Fatalf("iteration %d: %d tombstones retained, cap is 8", i, got)
		}
		if got := reg.Grants(); got > 8 {
			t.Fatalf("iteration %d: %d grant records retained, want <= cap", i, got)
		}
	}

	// The most recent revocations still report the distinct error; the
	// oldest have been evicted and degrade to ErrNoGrant.
	if _, err := reg.Attach(refs[len(refs)-1]); !errors.Is(err, ErrRevoked) {
		t.Fatalf("recent tombstone: Attach err = %v, want ErrRevoked", err)
	}
	if _, err := reg.Attach(refs[0]); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("evicted tombstone: Attach err = %v, want ErrNoGrant", err)
	}

	// The segments created above are still live; tear them down and
	// confirm their tombstones go with them.
	reg.CondemnDomain(owner)
	if got := reg.Tombstones(); got != 0 {
		t.Fatalf("tombstones after owner teardown = %d, want 0 (all segments destroyed)", got)
	}
}

// TestDestroySweepsTombstones asserts destroying a segment reclaims the
// tombstones of its revoked grants immediately, ahead of the size cap.
func TestDestroySweepsTombstones(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 1)
	owner := svc.NewDomain()
	grantee := svc.NewDomain()

	seg, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	other, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := seg.Grant(grantee, RO)
	if err != nil {
		t.Fatal(err)
	}
	og, err := other.Grant(grantee, RO)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Revoke(g.Ref()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Revoke(og.Ref()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Tombstones(); got != 2 {
		t.Fatalf("tombstones = %d, want 2", got)
	}

	if err := seg.Destroy(); err != nil {
		t.Fatal(err)
	}
	// Only the destroyed segment's tombstone is swept; the other
	// segment's survives with its better error.
	if got := reg.Tombstones(); got != 1 {
		t.Fatalf("tombstones after destroy = %d, want 1", got)
	}
	if _, err := reg.Attach(g.Ref()); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("swept tombstone: Attach err = %v, want ErrNoGrant", err)
	}
	if _, err := reg.Attach(og.Ref()); !errors.Is(err, ErrRevoked) {
		t.Fatalf("surviving tombstone: Attach err = %v, want ErrRevoked", err)
	}
}

// TestSetMaxTombstonesZero asserts a zero cap retains nothing: every
// revoked ref immediately reports ErrNoGrant.
func TestSetMaxTombstonesZero(t *testing.T) {
	reg, svc, _ := newTestRegistry(t, 1)
	reg.SetMaxTombstones(0)
	owner := svc.NewDomain()
	grantee := svc.NewDomain()
	seg, err := reg.NewSegment(owner, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := seg.Grant(grantee, RO)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Revoke(g.Ref()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Attach(g.Ref()); !errors.Is(err, ErrNoGrant) {
		t.Fatalf("Attach err = %v, want ErrNoGrant (cap 0 retains nothing)", err)
	}
	if got := reg.Grants(); got != 0 {
		t.Fatalf("grant records = %d, want 0", got)
	}
}

// TestTeardownShootdownThroughDomainDestroy exercises the full
// DestroyContext teardown charge through the mem service: a second CPU
// caches a domain's page, the domain is destroyed from the boot CPU,
// and the remote CPU is charged its context-invalidation IPI on top of
// the per-page unmap shootdown.
func TestTeardownShootdownThroughDomainDestroy(t *testing.T) {
	_, svc, machine := newTestRegistry(t, 2)
	ctx := svc.NewDomain()
	va := mmu.VAddr(0x4000)
	if err := svc.AllocPage(ctx, va, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	// CPU 1 caches the page; nothing else in the domain is cached.
	if _, err := machine.MMU.TranslateOn(1, ctx, va, mmu.AccessRead); err != nil {
		t.Fatal(err)
	}
	before := machine.Meter.Count(clock.OpTLBShootdown)
	if err := svc.DestroyDomain(ctx); err != nil {
		t.Fatal(err)
	}
	// One IPI for the page unmap (CPU 1 held it) — then the context
	// teardown finds CPU 1's TLB already empty, so no second charge.
	if got := machine.Meter.Count(clock.OpTLBShootdown) - before; got != 1 {
		t.Fatalf("DestroyDomain charged %d shootdowns, want 1", got)
	}
}
