// Quickstart: boot a Paramecium kernel, define a component as an
// object with a named interface, register it in the hierarchical name
// space, late-bind it from an application domain (getting a proxy),
// and call it across the protection boundary.
package main

import (
	"fmt"
	"log"

	"paramecium/internal/cert"
	"paramecium/internal/core"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
)

func main() {
	log.SetFlags(0)

	// 1. Boot: the nucleus is a static composition of the four
	// services (events, memory, directory, certification).
	auth := cert.NewAuthority(1)
	k, err := core.Boot(core.Config{AuthorityKey: auth.PublicKey()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted; nucleus children:", k.Nucleus.Roles())

	// 2. A component is an object exporting a *named* interface: a
	// set of methods, a state pointer and type information.
	greetDecl := obj.MustInterfaceDecl("example.greeter.v1",
		obj.MethodDecl{Name: "greet", NumIn: 1, NumOut: 1},
		obj.MethodDecl{Name: "count", NumIn: 0, NumOut: 1},
	)
	greeter := obj.New("greeter", k.Meter)
	greeted := 0
	bi, err := greeter.AddInterface(greetDecl, &greeted)
	if err != nil {
		log.Fatal(err)
	}
	bi.MustBind("greet", func(args ...any) ([]any, error) {
		greeted++
		return []any{"hello, " + args[0].(string)}, nil
	}).MustBind("count", func(...any) ([]any, error) {
		return []any{greeted}, nil
	})

	// 3. Register the instance under an instance name. The greeter
	// lives in the kernel protection domain here.
	if err := k.Register("/services/greeter", greeter, mmu.KernelContext); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered /services/greeter")

	// 4. An application domain late-binds by name. Because the
	// greeter lives in another protection domain, the directory
	// service hands the application a *proxy*: same interfaces, but
	// every call page-faults into the kernel, which switches domains
	// and invokes the real method.
	app := k.NewDomain("app")
	iv, err := app.BindInterface("/services/greeter", "example.greeter.v1")
	if err != nil {
		log.Fatal(err)
	}

	before := k.Meter.Clock.Now()
	res, err := iv.Invoke("greet", "world")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-domain call returned %q (%d virtual cycles)\n",
		res[0], k.Meter.Clock.Now()-before)

	res, err = iv.Invoke("count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeter state observed through the proxy: count = %v\n", res[0])

	// 5. The same name resolves differently per domain: a test domain
	// overrides the greeter with a mock, without anyone else noticing.
	mock := obj.New("mock-greeter", k.Meter)
	mbi, err := mock.AddInterface(greetDecl, nil)
	if err != nil {
		log.Fatal(err)
	}
	mbi.MustBind("greet", func(args ...any) ([]any, error) {
		return []any{"MOCK says hi to " + args[0].(string)}, nil
	}).MustBind("count", func(...any) ([]any, error) { return []any{-1}, nil })

	test := k.NewDomain("test")
	if err := test.View.Override("/services/greeter", mock); err != nil {
		log.Fatal(err)
	}
	tiv, err := test.BindInterface("/services/greeter", "example.greeter.v1")
	if err != nil {
		log.Fatal(err)
	}
	res, err = tiv.Invoke("greet", "tester")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test domain, same name, overridden binding: %q\n", res[0])

	// The app domain still sees the real greeter.
	res, err = iv.Invoke("count")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("app domain unaffected: count = %v\n", res[0])
	fmt.Println("quickstart complete")
}
