// Package analysis is paralint: a family of repo-specific static
// analyzers that enforce the kernel's cost-model, locking and hot-path
// invariants at compile time — the static complement to the dynamic
// gates (-race, benchgate -allocgate).
//
// The framework mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) but is reimplemented on the standard
// library's go/ast + go/types only: this module is dependency-free by
// design, so the analyzers must be too.
//
// # Suppression
//
// A finding can be deliberately suppressed with a directive on the
// flagged line or the line above it:
//
//	//paralint:ignore <analyzer> <reason>
//
// The reason is mandatory: a bare directive is itself reported. The
// driver treats suppressions as documentation of a reviewed deviation,
// never as a fix — true findings must be fixed, not ignored.
//
// # Hot-path annotation
//
// Functions on the invocation or data fast path are annotated in their
// doc comment with:
//
//	//paramecium:hotpath
//
// and are then held to hotpathalloc's no-allocation rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects a Pass and reports
// findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned and attributed to the
// analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   []Diagnostic
	ignores map[string]map[int]ignoreEntry // file -> line -> directive
}

// ignoreEntry is one parsed //paralint:ignore directive.
type ignoreEntry struct {
	analyzer string
	reason   string
	used     bool
}

// IgnoreDirective is the comment prefix that suppresses a finding.
const IgnoreDirective = "//paralint:ignore"

// HotpathDirective marks a function as allocation-free fast path.
const HotpathDirective = "//paramecium:hotpath"

// Reportf records a finding at pos unless a suppression directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether an ignore directive for this analyzer sits
// on the finding's line or the line above it, and marks it used.
func (p *Pass) suppressed(pos token.Position) bool {
	lines := p.ignores[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if e, ok := lines[line]; ok && e.analyzer == p.Analyzer.Name && e.reason != "" {
			e.used = true
			lines[line] = e
			return true
		}
	}
	return false
}

// collectIgnores parses every //paralint:ignore directive in the pass's
// files, reporting malformed ones (missing analyzer or reason) as
// findings of the running analyzer's pass driver.
func (p *Pass) collectIgnores() {
	p.ignores = make(map[string]map[int]ignoreEntry)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				fields := strings.Fields(rest)
				pos := p.Fset.Position(c.Pos())
				if len(fields) < 2 {
					// Malformed: suppresses nothing, and the first
					// analyzer to visit the file says so.
					p.diags = append(p.diags, Diagnostic{
						Pos:      pos,
						Analyzer: p.Analyzer.Name,
						Message:  fmt.Sprintf("malformed %s directive: want analyzer name and reason", IgnoreDirective),
					})
					continue
				}
				m := p.ignores[pos.Filename]
				if m == nil {
					m = make(map[int]ignoreEntry)
					p.ignores[pos.Filename] = m
				}
				m[pos.Line] = ignoreEntry{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				}
			}
		}
	}
}

// Run executes one analyzer over one loaded package and returns its
// findings sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	pass.collectIgnores()
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool {
		a, b := pass.diags[i].Pos, pass.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return pass.diags, nil
}

// All returns every paralint analyzer in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		ChargePath,
		LockOrder,
		HotpathAlloc,
		AtomicMix,
		CPUState,
		ProbeSafe,
	}
}

// ByName resolves a comma-separated analyzer list; an unknown name is
// an error.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// funcDoc returns the doc comment text of the function declaration
// enclosing pos, or the empty string.
func funcDoc(fn *ast.FuncDecl) string {
	if fn == nil || fn.Doc == nil {
		return ""
	}
	var b strings.Builder
	for _, c := range fn.Doc.List {
		b.WriteString(c.Text)
		b.WriteString("\n")
	}
	return b.String()
}

// isHotpath reports whether the function carries the hotpath directive.
func isHotpath(fn *ast.FuncDecl) bool {
	return strings.Contains(funcDoc(fn), HotpathDirective)
}
