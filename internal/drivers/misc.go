package drivers

import (
	"fmt"

	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
	"paramecium/internal/threads"
)

// TimerIface is the interface name exported by timer drivers.
const TimerIface = "paramecium.timer.v1"

// TimerDecl is the timer interface's type information.
var TimerDecl = obj.MustInterfaceDecl(TimerIface,
	obj.MethodDecl{Name: "program", NumIn: 1, NumOut: 0}, // (interval cycles)
	obj.MethodDecl{Name: "ticks", NumIn: 0, NumOut: 1},   // -> delivered ticks
	obj.MethodDecl{Name: "poll", NumIn: 0, NumOut: 1},    // -> expirations fired now
)

// TimerDriver exposes the interval timer as an object. Subscribers
// register Go callbacks; each device interrupt invokes them.
type TimerDriver struct {
	*obj.Object
	timer *hw.Timer
	grant *mem.IOGrant

	ticks uint64
	subs  []func()
}

// TimerDriverConfig configures timer driver construction.
type TimerDriverConfig struct {
	Ctx      mmu.ContextID
	Dispatch event.Dispatch
}

// NewTimerDriver builds a timer driver over t.
func NewTimerDriver(class string, t *hw.Timer, svc *mem.Service, evt *event.Service, cfg TimerDriverConfig) (*TimerDriver, error) {
	grant, err := svc.AllocIOSpace(cfg.Ctx, t.IORegion().Name, mem.IOExclusive)
	if err != nil {
		return nil, fmt.Errorf("drivers: timer I/O space: %w", err)
	}
	d := &TimerDriver{
		Object: obj.New(class, svc.Machine().Meter),
		timer:  t,
		grant:  grant,
	}
	bi, err := d.AddInterface(TimerDecl, d)
	if err != nil {
		_ = svc.ReleaseIOSpace(grant)
		return nil, err
	}
	bi.MustBind("program", func(args ...any) ([]any, error) {
		iv, ok := args[0].(uint64)
		if !ok {
			return nil, fmt.Errorf("drivers: program wants uint64, got %T", args[0])
		}
		return nil, grant.Region.WriteReg(hw.TimerRegInterval, iv)
	}).MustBind("ticks", func(...any) ([]any, error) {
		return []any{d.ticks}, nil
	}).MustBind("poll", func(...any) ([]any, error) {
		return []any{d.timer.Poll()}, nil
	})
	if err := evt.RegisterIRQ(t.IRQ(), class+"-tick", cfg.Ctx, cfg.Dispatch, func(*hw.TrapFrame, *threads.Thread) {
		d.ticks++
		for _, fn := range d.subs {
			fn()
		}
	}); err != nil {
		_ = svc.ReleaseIOSpace(grant)
		return nil, err
	}
	return d, nil
}

// Subscribe registers a callback invoked on every tick. Must be called
// before ticks start arriving (no locking on the hot path).
func (d *TimerDriver) Subscribe(fn func()) {
	d.subs = append(d.subs, fn)
}

// Ticks reports delivered tick interrupts.
func (d *TimerDriver) Ticks() uint64 { return d.ticks }

// ConsoleIface is the interface name exported by console drivers.
const ConsoleIface = "paramecium.console.v1"

// ConsoleDecl is the console interface's type information.
var ConsoleDecl = obj.MustInterfaceDecl(ConsoleIface,
	obj.MethodDecl{Name: "write", NumIn: 1, NumOut: 1}, // (s string) -> n
)

// ConsoleDriver exposes the console device as an object.
type ConsoleDriver struct {
	*obj.Object
	grant *mem.IOGrant
	write obj.MethodHandle
}

// NewConsoleDriver builds a console driver over c.
func NewConsoleDriver(class string, c *hw.Console, svc *mem.Service, ctx mmu.ContextID) (*ConsoleDriver, error) {
	grant, err := svc.AllocIOSpace(ctx, c.IORegion().Name, mem.IOExclusive)
	if err != nil {
		return nil, fmt.Errorf("drivers: console I/O space: %w", err)
	}
	d := &ConsoleDriver{Object: obj.New(class, svc.Machine().Meter), grant: grant}
	bi, err := d.AddInterface(ConsoleDecl, d)
	if err != nil {
		_ = svc.ReleaseIOSpace(grant)
		return nil, err
	}
	bi.MustBind("write", func(args ...any) ([]any, error) {
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("drivers: write wants string, got %T", args[0])
		}
		for i := 0; i < len(s); i++ {
			if err := grant.Region.WriteReg(hw.ConsoleRegPutc, uint64(s[i])); err != nil {
				return []any{i}, err
			}
		}
		return []any{len(s)}, nil
	})
	iv, _ := d.Iface(ConsoleIface)
	if d.write, err = iv.Resolve("write"); err != nil {
		_ = svc.ReleaseIOSpace(grant)
		return nil, err
	}
	return d, nil
}

// Write prints s to the console device through the handle resolved at
// construction.
func (d *ConsoleDriver) Write(s string) (int, error) {
	res, err := d.write.Call(s)
	if err != nil {
		return 0, err
	}
	return res[0].(int), nil
}
