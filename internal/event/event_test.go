package event

import (
	"errors"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/mmu"
	"paramecium/internal/threads"
)

func newService() (*Service, *hw.Machine, *threads.Scheduler) {
	m := hw.New(hw.Config{PhysFrames: 64})
	sched := threads.NewScheduler(m.Meter)
	return New(m, sched), m, sched
}

func TestRegisterIRQRawDispatch(t *testing.T) {
	s, m, _ := newService()
	count := 0
	if err := s.RegisterIRQ(3, "net", mmu.KernelContext, DispatchRaw, func(f *hw.TrapFrame, th *threads.Thread) {
		if th != nil {
			t.Error("raw dispatch passed a thread")
		}
		count++
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseIRQ(3); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	st, ok := s.IRQStats(3)
	if !ok || st.Delivered != 1 || st.Name != "net" || st.Dispatch != DispatchRaw {
		t.Fatalf("stats = %+v, %v", st, ok)
	}
}

func TestRegisterIRQDuplicate(t *testing.T) {
	s, _, _ := newService()
	h := func(*hw.TrapFrame, *threads.Thread) {}
	if err := s.RegisterIRQ(1, "a", 0, DispatchRaw, h); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterIRQ(1, "b", 0, DispatchRaw, h); !errors.Is(err, ErrBound) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := s.RegisterIRQ(2, "c", 0, DispatchRaw, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestUnregisterIRQ(t *testing.T) {
	s, m, _ := newService()
	if err := s.RegisterIRQ(1, "a", 0, DispatchRaw, func(*hw.TrapFrame, *threads.Thread) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.UnregisterIRQ(1); err != nil {
		t.Fatal(err)
	}
	if err := s.UnregisterIRQ(1); !errors.Is(err, ErrNotBound) {
		t.Fatalf("double unregister: %v", err)
	}
	if err := m.RaiseIRQ(1); !errors.Is(err, hw.ErrNoHandler) {
		t.Fatalf("raise after unregister: %v", err)
	}
}

func TestProtoDispatchInlineCompletion(t *testing.T) {
	s, m, sched := newService()
	ran := false
	if err := s.RegisterIRQ(2, "fast", mmu.KernelContext, DispatchProto, func(f *hw.TrapFrame, th *threads.Thread) {
		if th == nil {
			t.Error("proto dispatch passed nil thread")
		}
		ran = true
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseIRQ(2); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("handler did not run inline")
	}
	if m.Meter.Count(clock.OpThreadCreate) != 0 {
		t.Fatal("inline proto charged thread creation")
	}
	st, _ := s.IRQStats(2)
	if st.Inline != 1 || st.Promoted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	sched.RunUntilIdle()
}

func TestProtoDispatchPromotion(t *testing.T) {
	s, m, sched := newService()
	mtx := threads.NewMutex(sched)
	q, err := threads.NewQueue(sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched.Spawn("holder", func(th *threads.Thread) {
		mtx.Lock(th)
		q.Pop(th)
		mtx.Unlock(th)
	})
	sched.RunUntilIdle()

	finished := false
	if err := s.RegisterIRQ(2, "slow", mmu.KernelContext, DispatchProto, func(f *hw.TrapFrame, th *threads.Thread) {
		mtx.Lock(th) // held by holder -> promotion
		finished = true
		mtx.Unlock(th)
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseIRQ(2); err != nil {
		t.Fatal(err)
	}
	st, _ := s.IRQStats(2)
	if st.Promoted != 1 || st.Inline != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if finished {
		t.Fatal("handler completed while mutex held elsewhere")
	}
	q.TryPush(struct{}{})
	sched.RunUntilIdle()
	if !finished {
		t.Fatal("promoted handler never finished")
	}
}

func TestEagerDispatchDefersToScheduler(t *testing.T) {
	s, m, sched := newService()
	ran := false
	if err := s.RegisterIRQ(5, "eager", mmu.KernelContext, DispatchEager, func(*hw.TrapFrame, *threads.Thread) {
		ran = true
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseIRQ(5); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("eager handler ran on the interrupt context")
	}
	if m.Meter.Count(clock.OpThreadCreate) != 1 {
		t.Fatal("eager dispatch did not create a thread")
	}
	sched.RunUntilIdle()
	if !ran {
		t.Fatal("eager handler never ran")
	}
}

func TestCrossContextDeliveryChargesSwitches(t *testing.T) {
	s, m, _ := newService()
	userCtx := m.MMU.NewContext()
	var seen mmu.ContextID
	if err := s.RegisterIRQ(1, "user-handler", userCtx, DispatchRaw, func(*hw.TrapFrame, *threads.Thread) {
		seen = m.MMU.Current()
	}); err != nil {
		t.Fatal(err)
	}
	before := m.Meter.Count(clock.OpCtxSwitch)
	if err := m.RaiseIRQ(1); err != nil {
		t.Fatal(err)
	}
	if seen != userCtx {
		t.Fatalf("handler ran in context %d, want %d", seen, userCtx)
	}
	if m.MMU.Current() != mmu.KernelContext {
		t.Fatal("context not restored after delivery")
	}
	if got := m.Meter.Count(clock.OpCtxSwitch) - before; got != 2 {
		t.Fatalf("context switches = %d, want 2", got)
	}
}

func TestSameContextDeliveryIsFree(t *testing.T) {
	s, m, _ := newService()
	if err := s.RegisterIRQ(1, "kern", mmu.KernelContext, DispatchRaw, func(*hw.TrapFrame, *threads.Thread) {}); err != nil {
		t.Fatal(err)
	}
	before := m.Meter.Count(clock.OpCtxSwitch)
	if err := m.RaiseIRQ(1); err != nil {
		t.Fatal(err)
	}
	if got := m.Meter.Count(clock.OpCtxSwitch) - before; got != 0 {
		t.Fatalf("context switches = %d, want 0", got)
	}
}

func TestDeadContextFallsBack(t *testing.T) {
	s, m, _ := newService()
	ctx := m.MMU.NewContext()
	ran := false
	if err := s.RegisterIRQ(1, "zombie", ctx, DispatchRaw, func(*hw.TrapFrame, *threads.Thread) {
		ran = true
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.MMU.DestroyContext(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseIRQ(1); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event dropped when context died")
	}
}

func TestRegisterTrap(t *testing.T) {
	s, m, _ := newService()
	if err := s.RegisterTrap(hw.TrapSyscall, "syscalls", mmu.KernelContext, func(f *hw.TrapFrame) bool {
		return f.Arg == 42
	}); err != nil {
		t.Fatal(err)
	}
	ok, err := m.Syscall(mmu.KernelContext, 42)
	if err != nil || !ok {
		t.Fatalf("syscall(42) = %v, %v", ok, err)
	}
	ok, err = m.Syscall(mmu.KernelContext, 7)
	if err != nil || ok {
		t.Fatalf("syscall(7) = %v, %v", ok, err)
	}
	st, found := s.TrapStats(hw.TrapSyscall)
	if !found || st.Delivered != 2 {
		t.Fatalf("trap stats = %+v", st)
	}
	if err := s.RegisterTrap(hw.TrapSyscall, "dup", 0, func(*hw.TrapFrame) bool { return false }); !errors.Is(err, ErrBound) {
		t.Fatalf("duplicate trap: %v", err)
	}
	if err := s.RegisterTrap(hw.TrapDivZero, "nil", 0, nil); err == nil {
		t.Fatal("nil trap handler accepted")
	}
	if err := s.UnregisterTrap(hw.TrapSyscall); err != nil {
		t.Fatal(err)
	}
	if err := s.UnregisterTrap(hw.TrapSyscall); !errors.Is(err, ErrNotBound) {
		t.Fatalf("double unregister: %v", err)
	}
}

func TestStatsOfUnboundEvent(t *testing.T) {
	s, _, _ := newService()
	if _, ok := s.IRQStats(9); ok {
		t.Fatal("stats for unbound IRQ")
	}
	if _, ok := s.TrapStats(hw.TrapDivZero); ok {
		t.Fatal("stats for unbound trap")
	}
}

func TestDispatchString(t *testing.T) {
	if DispatchRaw.String() != "raw" || DispatchProto.String() != "proto" || DispatchEager.String() != "eager" {
		t.Fatal("dispatch names")
	}
	if Dispatch(9).String() != "dispatch(9)" {
		t.Fatal("unknown dispatch name")
	}
}

func TestNICInterruptToProtoThreadPipeline(t *testing.T) {
	// Integration: a NIC frame arrival becomes a proto-thread that
	// drains the ring inline.
	s, m, sched := newService()
	nic := hw.NewNIC("net0", 4)
	if err := m.AttachDevice(nic); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := s.RegisterIRQ(4, "net-rx", mmu.KernelContext, DispatchProto, func(f *hw.TrapFrame, th *threads.Thread) {
		regs := nic.IORegion()
		slot, _ := regs.ReadReg(hw.NICRegRxSlot)
		length, _ := regs.ReadReg(hw.NICRegRxLen)
		data, err := nic.SlotData(int(slot))
		if err != nil {
			t.Error(err)
			return
		}
		got = append([]byte{}, data[:length]...)
		regs.WriteReg(hw.NICRegRxPop, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := nic.Inject([]byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	if string(got) != "frame-1" {
		t.Fatalf("got %q", got)
	}
	if nic.Pending() != 0 {
		t.Fatal("ring not drained")
	}
	sched.RunUntilIdle()
}
