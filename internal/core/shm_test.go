package core

import (
	"errors"
	"sync"
	"testing"

	"paramecium/internal/shm"
)

// TestDestroyDomainFailsPendingAttaches is the regression test for the
// CloseTarget condemnation covering segment attaches: attaches racing
// a DestroyDomain of their grantee either complete before the condemn
// (and are revoked by it) or fail — once DestroyDomain returns, the
// dying domain holds no segment mapping, no pending attach can create
// one, and the MMU context is gone. Run under -race.
func TestDestroyDomainFailsPendingAttaches(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	owner := k.NewDomain("owner")
	victim := k.NewDomain("victim")

	const grants = 64
	refs := make([]shm.GrantRef, grants)
	seg, err := k.Shm.NewSegment(owner.Ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		g, err := seg.Grant(victim.Ctx, shm.RW)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = g.Ref()
	}

	// Attackers race attaches into the victim while it is destroyed.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := w; i < grants; i += 4 {
				_, _ = k.Shm.Attach(refs[i])
			}
		}(w)
	}
	wg.Add(1)
	var destroyErr error
	go func() {
		defer wg.Done()
		<-start
		destroyErr = k.DestroyDomain(victim)
	}()
	close(start)
	wg.Wait()
	if destroyErr != nil {
		t.Fatalf("DestroyDomain: %v", destroyErr)
	}

	// The context is gone and no mapping survived the teardown.
	if k.Machine.MMU.HasContext(victim.Ctx) {
		t.Fatal("victim context survives DestroyDomain")
	}
	// Every grant to the victim is now a revoked tombstone: a late
	// attach fails with the distinct revocation error, never by
	// creating a mapping.
	for _, ref := range refs {
		if _, err := k.Shm.Attach(ref); !errors.Is(err, shm.ErrRevoked) {
			t.Fatalf("attach after destroy = %v, want ErrRevoked", err)
		}
	}
}

// TestDestroyDomainDestroysOwnedSegments: destroying a domain that
// OWNS segments revokes every other domain's attachments of them and
// releases the frames — the revocation side of the zero-copy plane.
func TestDestroyDomainDestroysOwnedSegments(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := k.Machine.Phys.FreeFrames()
	owner := k.NewDomain("owner")
	reader := k.NewDomain("reader")

	seg, err := k.Shm.NewSegment(owner.Ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Store(0, []byte("bulk")); err != nil {
		t.Fatal(err)
	}
	g, err := seg.Grant(reader.Ctx, shm.RO)
	if err != nil {
		t.Fatal(err)
	}
	att, err := k.Shm.Attach(g.Ref())
	if err != nil {
		t.Fatal(err)
	}
	var b [4]byte
	if err := att.Load(0, b[:]); err != nil || string(b[:]) != "bulk" {
		t.Fatalf("pre-destroy read = (%v, %q)", err, b)
	}

	if err := k.DestroyDomain(owner); err != nil {
		t.Fatal(err)
	}
	if err := att.Load(0, b[:]); !errors.Is(err, shm.ErrRevoked) {
		t.Fatalf("reader attachment after owner destroy = %v, want ErrRevoked", err)
	}
	if got := k.Machine.MMU.Mappings(reader.Ctx); got != 0 {
		t.Fatalf("reader still holds %d mappings of the dead owner's segment", got)
	}
	if err := k.DestroyDomain(reader); err != nil {
		t.Fatal(err)
	}
	if free := k.Machine.Phys.FreeFrames(); free != freeBefore {
		t.Fatalf("frames leaked across segment-owning domain teardown: %d free, want %d", free, freeBefore)
	}
}

// TestSegmentGrantAfterDestroyFails: the whole grant plane refuses a
// destroyed domain — grants to it, segments in it, attaches for it.
func TestSegmentGrantAfterDestroyFails(t *testing.T) {
	k, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	owner := k.NewDomain("owner")
	gone := k.NewDomain("gone")
	seg, err := k.Shm.NewSegment(owner.Ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.DestroyDomain(gone); err != nil {
		t.Fatal(err)
	}
	// The context was absolved after destruction, so the registry-level
	// condemn gate is lifted — but the MMU context is gone, so every
	// path still fails, now at the hardware.
	if _, err := k.Shm.NewSegment(gone.Ctx, 1); err == nil {
		t.Fatal("NewSegment in destroyed domain succeeded")
	}
	if g, err := seg.Grant(gone.Ctx, shm.RO); err == nil {
		if _, err := k.Shm.Attach(g.Ref()); err == nil {
			t.Fatal("attach into destroyed domain succeeded")
		}
	}
}
