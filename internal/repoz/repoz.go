// Package repoz implements the Paramecium component repository: the
// store that dynamic loading pulls component images from. "Standard
// operations exist to bind to an existing object, load one from a
// repository, and to obtain an interface from a given object handle."
//
// An image is a named byte string (for PVM components, the encoded
// program; for native components, constructor parameters) plus an
// optional certificate. The kernel's loader validates the certificate
// against the image before a component may be placed in the kernel
// protection domain.
package repoz

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"paramecium/internal/cert"
	"paramecium/internal/obj"
)

// Kind distinguishes how an image is instantiated.
type Kind string

// Image kinds.
const (
	// KindPVM images are encoded sandbox.Program byte strings.
	KindPVM Kind = "pvm"
	// KindNative images are instantiated by a registered constructor;
	// Data carries constructor parameters.
	KindNative Kind = "native"
)

// Errors.
var (
	ErrNotFound      = errors.New("repoz: component not found")
	ErrExists        = errors.New("repoz: component already stored")
	ErrNoConstructor = errors.New("repoz: no constructor registered")
	ErrBadManifest   = errors.New("repoz: bad manifest")
)

// Image is one stored component.
type Image struct {
	Name string
	Kind Kind
	Data []byte
	// Cert is the component's certificate, if it has been certified.
	Cert *cert.Certificate
}

// Digest returns the image's digest (what certificates cover).
func (img *Image) Digest() cert.Digest {
	return cert.DigestImage(nil, img.Data)
}

// Constructor instantiates a native component from its image data.
type Constructor func(data []byte) (obj.Instance, error)

// Repository is a concurrent-safe component store.
type Repository struct {
	mu           sync.RWMutex
	images       map[string]*Image
	constructors map[string]Constructor
}

// New builds an empty repository.
func New() *Repository {
	return &Repository{
		images:       make(map[string]*Image),
		constructors: make(map[string]Constructor),
	}
}

// Add stores an image. Component names are unique.
func (r *Repository) Add(img *Image) error {
	if img == nil || img.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadManifest)
	}
	if img.Kind != KindPVM && img.Kind != KindNative {
		return fmt.Errorf("%w: kind %q", ErrBadManifest, img.Kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.images[img.Name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, img.Name)
	}
	r.images[img.Name] = img
	return nil
}

// Replace stores an image, overwriting any previous version (a new
// version invalidates the old certificate by construction, since the
// digest changes).
func (r *Repository) Replace(img *Image) error {
	if img == nil || img.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadManifest)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[img.Name] = img
	return nil
}

// Get fetches an image by name.
func (r *Repository) Get(name string) (*Image, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	img, ok := r.images[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return img, nil
}

// Remove deletes an image.
func (r *Repository) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.images[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.images, name)
	return nil
}

// List returns the stored component names, sorted.
func (r *Repository) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.images))
	for n := range r.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Certify attaches a certificate to a stored image after checking it
// actually covers the stored bytes.
func (r *Repository) Certify(name string, c *cert.Certificate) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	img, ok := r.images[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if c.Digest != cert.DigestImage(nil, img.Data) {
		return fmt.Errorf("repoz: certificate digest does not match stored image %q", name)
	}
	img.Cert = c
	return nil
}

// RegisterConstructor installs the builder for a native component.
func (r *Repository) RegisterConstructor(name string, ctor Constructor) error {
	if ctor == nil {
		return errors.New("repoz: nil constructor")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.constructors[name]; dup {
		return fmt.Errorf("%w: constructor %q", ErrExists, name)
	}
	r.constructors[name] = ctor
	return nil
}

// Construct instantiates a native image through its registered
// constructor.
func (r *Repository) Construct(name string) (obj.Instance, error) {
	r.mu.RLock()
	img, ok := r.images[name]
	ctor := r.constructors[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if img.Kind != KindNative {
		return nil, fmt.Errorf("repoz: %q is not a native component", name)
	}
	if ctor == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoConstructor, name)
	}
	return ctor(img.Data)
}

// manifestEntry is the JSON form of an image.
type manifestEntry struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	Data string `json:"data"` // base64
	Cert string `json:"cert,omitempty"`
}

// Marshal serializes the repository to a JSON manifest.
func (r *Repository) Marshal() ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.images))
	for n := range r.images {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make([]manifestEntry, 0, len(names))
	for _, n := range names {
		img := r.images[n]
		e := manifestEntry{
			Name: img.Name,
			Kind: img.Kind,
			Data: base64.StdEncoding.EncodeToString(img.Data),
		}
		if img.Cert != nil {
			e.Cert = base64.StdEncoding.EncodeToString(img.Cert.Marshal())
		}
		entries = append(entries, e)
	}
	return json.MarshalIndent(entries, "", "  ")
}

// Unmarshal loads a manifest into a fresh repository.
func Unmarshal(data []byte) (*Repository, error) {
	var entries []manifestEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	r := New()
	for _, e := range entries {
		raw, err := base64.StdEncoding.DecodeString(e.Data)
		if err != nil {
			return nil, fmt.Errorf("%w: data of %q: %v", ErrBadManifest, e.Name, err)
		}
		img := &Image{Name: e.Name, Kind: e.Kind, Data: raw}
		if e.Cert != "" {
			rawCert, err := base64.StdEncoding.DecodeString(e.Cert)
			if err != nil {
				return nil, fmt.Errorf("%w: cert of %q: %v", ErrBadManifest, e.Name, err)
			}
			c, err := cert.UnmarshalCertificate(rawCert)
			if err != nil {
				return nil, fmt.Errorf("%w: cert of %q: %v", ErrBadManifest, e.Name, err)
			}
			img.Cert = c
		}
		if err := r.Add(img); err != nil {
			return nil, err
		}
	}
	return r, nil
}
