// Command certify manages component repositories and certificates: it
// creates repositories, assembles PVM components into them, signs them
// via a certifier chain with an escape hatch, and verifies manifests —
// the offline half of the paper's certification story.
//
// Usage:
//
//	certify init    <manifest>
//	certify add     <manifest> <name> <program.pvm-asm>
//	certify sign    <manifest> <name> <delegate> <key-seed> [privileges]
//	certify verify  <manifest> <authority-seed> <delegate> <key-seed>
//	certify list    <manifest>
//
// Key management is deliberately seed-based (deterministic keys) so
// that examples and tests are reproducible; a production system would
// hold real key files.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"paramecium/internal/cert"
	"paramecium/internal/repoz"
	"paramecium/internal/sandbox"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "init":
		err = cmdInit(os.Args[2])
	case "add":
		if len(os.Args) != 5 {
			usage()
		}
		err = cmdAdd(os.Args[2], os.Args[3], os.Args[4])
	case "sign":
		if len(os.Args) < 6 {
			usage()
		}
		privs := "kernel"
		if len(os.Args) > 6 {
			privs = os.Args[6]
		}
		err = cmdSign(os.Args[2], os.Args[3], os.Args[4], os.Args[5], privs)
	case "verify":
		if len(os.Args) != 6 {
			usage()
		}
		err = cmdVerify(os.Args[2], os.Args[3], os.Args[4], os.Args[5])
	case "list":
		err = cmdList(os.Args[2])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "certify: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  certify init    <manifest>
  certify add     <manifest> <name> <program.pvm-asm>
  certify sign    <manifest> <name> <delegate> <key-seed> [privileges]
  certify verify  <manifest> <authority-seed> <delegate> <key-seed>
  certify list    <manifest>
privileges: comma-separated from kernel,device,shared`)
	os.Exit(2)
}

func loadRepo(path string) (*repoz.Repository, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return repoz.Unmarshal(data)
}

func saveRepo(path string, r *repoz.Repository) error {
	data, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func cmdInit(path string) error {
	if _, err := os.Stat(path); err == nil {
		return fmt.Errorf("%s already exists", path)
	}
	return saveRepo(path, repoz.New())
}

func cmdAdd(manifest, name, asmPath string) error {
	r, err := loadRepo(manifest)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(asmPath)
	if err != nil {
		return err
	}
	prog, err := sandbox.Assemble(string(src))
	if err != nil {
		return err
	}
	if err := sandbox.Verify(prog); err != nil {
		return err
	}
	if err := r.Add(&repoz.Image{Name: name, Kind: repoz.KindPVM, Data: prog.Encode()}); err != nil {
		return err
	}
	if err := saveRepo(manifest, r); err != nil {
		return err
	}
	digest := cert.DigestImage(nil, prog.Encode())
	fmt.Printf("added %q: %d instructions, digest %x\n", name, len(prog), digest[:8])
	return nil
}

func parsePrivs(s string) (cert.Privilege, error) {
	var p cert.Privilege
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "kernel":
			p |= cert.PrivKernelResident
		case "device":
			p |= cert.PrivDeviceAccess
		case "shared":
			p |= cert.PrivSharedService
		case "":
		default:
			return 0, fmt.Errorf("unknown privilege %q", part)
		}
	}
	return p, nil
}

func cmdSign(manifest, name, delegate, seedStr, privStr string) error {
	r, err := loadRepo(manifest)
	if err != nil {
		return err
	}
	seed, err := strconv.ParseUint(seedStr, 0, 64)
	if err != nil {
		return fmt.Errorf("bad key seed: %v", err)
	}
	privs, err := parsePrivs(privStr)
	if err != nil {
		return err
	}
	img, err := r.Get(name)
	if err != nil {
		return err
	}
	certifier := cert.NewKeyCertifier(delegate, cert.GenerateKey(seed), privs)
	c, err := certifier.Certify(name, img.Data, privs)
	if err != nil {
		return err
	}
	if err := r.Certify(name, c); err != nil {
		return err
	}
	if err := saveRepo(manifest, r); err != nil {
		return err
	}
	fmt.Printf("signed %q by %q with %v\n", name, delegate, privs)
	return nil
}

func cmdVerify(manifest, authSeedStr, delegate, seedStr string) error {
	r, err := loadRepo(manifest)
	if err != nil {
		return err
	}
	authSeed, err := strconv.ParseUint(authSeedStr, 0, 64)
	if err != nil {
		return fmt.Errorf("bad authority seed: %v", err)
	}
	seed, err := strconv.ParseUint(seedStr, 0, 64)
	if err != nil {
		return fmt.Errorf("bad key seed: %v", err)
	}
	auth := cert.NewAuthority(authSeed)
	val := cert.NewValidator(nil, auth.PublicKey())
	key := cert.GenerateKey(seed)
	all := cert.PrivKernelResident | cert.PrivDeviceAccess | cert.PrivSharedService
	if err := val.AddDelegation(auth.Delegate(delegate, key.Pub, all)); err != nil {
		return err
	}
	ok, bad := 0, 0
	for _, name := range r.List() {
		img, err := r.Get(name)
		if err != nil {
			return err
		}
		if img.Cert == nil {
			fmt.Printf("%-24s UNCERTIFIED\n", name)
			bad++
			continue
		}
		if err := val.Validate(img.Data, img.Cert, img.Cert.Privilege); err != nil {
			fmt.Printf("%-24s INVALID: %v\n", name, err)
			bad++
			continue
		}
		fmt.Printf("%-24s ok (%v by %s)\n", name, img.Cert.Privilege, img.Cert.Issuer)
		ok++
	}
	fmt.Printf("%d valid, %d problematic\n", ok, bad)
	if bad > 0 {
		os.Exit(1)
	}
	return nil
}

func cmdList(manifest string) error {
	r, err := loadRepo(manifest)
	if err != nil {
		return err
	}
	for _, name := range r.List() {
		img, err := r.Get(name)
		if err != nil {
			return err
		}
		status := "uncertified"
		if img.Cert != nil {
			status = fmt.Sprintf("certified %v by %s", img.Cert.Privilege, img.Cert.Issuer)
		}
		fmt.Printf("%-24s %-8s %6d bytes  %s\n", name, img.Kind, len(img.Data), status)
	}
	return nil
}
