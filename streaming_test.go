// Runnable examples and tests for the streaming surface: rings
// (Domain.NewRing) and the adaptive coalescer (Handle.Coalesce). Like
// api_test.go, this file imports only the public paramecium and
// paramecium/api packages.
package paramecium_test

import (
	"errors"
	"fmt"
	"testing"

	"paramecium"
	"paramecium/api"
)

// ExampleDomain_NewRing shows the streaming data plane: a producer
// domain opens a ring to a consumer domain, installs the consumer's
// drain method as the doorbell, pushes a burst of records and rings
// the doorbell once — one vectored crossing wakes the consumer for
// the whole burst. Hanging up revokes the underlying grant; the
// consumer reads the tombstone as the distinct api.ErrRingHangup.
func ExampleDomain_NewRing() {
	sys, err := paramecium.Boot()
	if err != nil {
		panic(err)
	}
	producer := sys.NewDomain("producer")
	consumer := sys.NewDomain("consumer")

	// 8 slots of 64 bytes, owned by producer, granted to consumer.
	r, err := producer.NewRing(consumer, 8, 64)
	if err != nil {
		panic(err)
	}
	prod, cons := r.Producer(), r.Consumer()

	// The consumer exports a drain service: pop until empty.
	var drained []string
	var buf [64]byte
	decl := api.MustInterfaceDecl("example.drain.v1",
		api.MethodDecl{Name: "drain", NumIn: 0, NumOut: 0})
	sink := sys.NewObject("drain")
	bi, err := sink.AddInterface(decl, nil)
	if err != nil {
		panic(err)
	}
	bi.MustBindInto("drain", func(out []any, _ ...any) ([]any, error) {
		for {
			n, err := cons.Pop(buf[:])
			if err != nil {
				if errors.Is(err, api.ErrRingEmpty) {
					return out, nil
				}
				return nil, err
			}
			drained = append(drained, string(buf[:n]))
		}
	})
	if err := consumer.Register("/services/drain", sink); err != nil {
		panic(err)
	}
	h, err := producer.Bind("/services/drain")
	if err != nil {
		panic(err)
	}
	drain, err := h.Resolve("example.drain.v1", "drain")
	if err != nil {
		panic(err)
	}
	prod.SetDoorbell(drain)

	// Push a burst, notify once.
	for i := 0; i < 5; i++ {
		if err := prod.Push([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			panic(err)
		}
	}
	if err := prod.Notify(); err != nil {
		panic(err)
	}
	fmt.Println("drained:", drained)

	if err := prod.Hangup(); err != nil {
		panic(err)
	}
	_, err = cons.Pop(buf[:])
	fmt.Println("hangup observed:", errors.Is(err, api.ErrRingHangup))
	// Output:
	// drained: [record-0 record-1 record-2 record-3 record-4]
	// hangup observed: true
}

// ExampleHandle_Coalesce shows the adaptive coalescer: queued
// invocations flush themselves at the size threshold or, for a
// straggling partial batch, at a virtual-clock deadline one crossing's
// worth of cycles after the first entry was queued — the caller never
// picks flush points by hand.
func ExampleHandle_Coalesce() {
	sys, err := paramecium.Boot()
	if err != nil {
		panic(err)
	}
	server := sys.NewDomain("server")
	app := sys.NewDomain("app")

	total := 0
	decl := api.MustInterfaceDecl("example.adder.v1",
		api.MethodDecl{Name: "add", NumIn: 1, NumOut: 0})
	adder := sys.NewObject("adder")
	bi, err := adder.AddInterface(decl, nil)
	if err != nil {
		panic(err)
	}
	bi.MustBindInto("add", func(out []any, args ...any) ([]any, error) {
		total += args[0].(int)
		return out, nil
	})
	if err := server.Register("/services/adder", adder); err != nil {
		panic(err)
	}
	h, err := app.Bind("/services/adder")
	if err != nil {
		panic(err)
	}
	add, err := h.Resolve("example.adder.v1", "add")
	if err != nil {
		panic(err)
	}

	c := h.Coalesce(3) // flush at 3 entries, or at the cycle deadline
	_ = c.Submit(add, 1)
	_ = c.Submit(add, 2)
	fmt.Println("queued:", c.Len(), "— total:", total)
	_ = c.Submit(add, 3) // reaches the size threshold: auto-flush
	fmt.Println("after size flush:", c.Len(), "— total:", total)

	_ = c.Submit(add, 10) // a straggler, below the threshold
	// Unrelated work advances the virtual clock past the deadline...
	if _, err := h.Invoke("example.adder.v1", "add", 0); err != nil {
		panic(err)
	}
	_ = c.Poll() // ...and the next poll flushes the straggler.
	fmt.Println("after deadline flush:", c.Len(), "— total:", total)
	// Output:
	// queued: 2 — total: 0
	// after size flush: 0 — total: 6
	// after deadline flush: 0 — total: 16
}

// TestRingTeardownOnDomainDestroy: ring teardown rides the existing
// domain-teardown sweeps, and the surviving endpoint sees the distinct
// api.ErrRingHangup — never a generic grant-lookup failure.
func TestRingTeardownOnDomainDestroy(t *testing.T) {
	// Consumer dies: the sweep revokes its grant, the producer's next
	// push reads the tombstone.
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	producer := sys.NewDomain("producer")
	consumer := sys.NewDomain("consumer")
	r, err := producer.NewRing(consumer, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	prod := r.Producer()
	if err := prod.Push([]byte("alive")); err != nil {
		t.Fatalf("push before destroy: %v", err)
	}
	if err := consumer.Destroy(); err != nil {
		t.Fatal(err)
	}
	err = prod.Push([]byte("dead"))
	if !errors.Is(err, api.ErrRingHangup) {
		t.Fatalf("push after consumer destroy = %v, want ErrRingHangup", err)
	}
	if errors.Is(err, api.ErrNoGrant) {
		t.Fatalf("hangup leaked through as ErrNoGrant: %v", err)
	}

	// Producer dies: its segments are destroyed, the consumer's next
	// pop reads the tombstone.
	sys2, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	producer2 := sys2.NewDomain("producer")
	consumer2 := sys2.NewDomain("consumer")
	r2, err := producer2.NewRing(consumer2, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	prod2, cons2 := r2.Producer(), r2.Consumer()
	if err := prod2.Push([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := producer2.Destroy(); err != nil {
		t.Fatal(err)
	}
	var buf [64]byte
	if _, err := cons2.Pop(buf[:]); !errors.Is(err, api.ErrRingHangup) {
		t.Fatalf("pop after producer destroy = %v, want ErrRingHangup", err)
	}
}
