package threads

import (
	"fmt"
	"sync"
	"testing"

	"paramecium/internal/hw"
	"paramecium/internal/mmu"
)

// TestTopologyTLBMissPartition64 is the 64-CPU identity stress: one
// thread per non-boot CPU, each loading its own private page a few
// times. Because thread accesses carry the dispatching CPU's identity,
// each page's single TLB miss must land on the CPU the thread actually
// ran on — never on the boot CPU as the old compatibility forms would
// have charged it. Work stealing may migrate an affined thread before
// its first dispatch, so the assertion partitions misses against each
// thread's recorded LastCPU, not its spawn target: per CPU, the miss
// delta equals the number of threads that ran there, and the deltas sum
// to exactly the thread count. Run under -race this also shakes out
// data races in the per-CPU TLB and dispatch paths.
func TestTopologyTLBMissPartition64(t *testing.T) {
	const nodes, perNode = 16, 4
	const ncpu = nodes * perNode
	machine := hw.New(hw.Config{
		PhysFrames: 256,
		Topology:   hw.NewTopology(nodes, perNode),
	})
	ctx := machine.MMU.NewContext()
	vaOf := func(k int) mmu.VAddr { return mmu.VAddr(0x100000 + k*mmu.PageSize) }
	for k := 1; k < ncpu; k++ {
		frame, err := machine.Phys.AllocFrame()
		if err != nil {
			t.Fatalf("alloc frame %d: %v", k, err)
		}
		if err := machine.MMU.Map(ctx, vaOf(k), frame, mmu.PermRead|mmu.PermWrite); err != nil {
			t.Fatalf("map page %d: %v", k, err)
		}
	}

	base := make([]uint64, ncpu)
	for k := range base {
		base[k] = machine.MMU.TLBStatsOn(mmu.CPUID(k)).Misses
	}

	sched := NewSchedulerCPUs(machine.Meter, ncpu)
	sched.AttachExec(machine)
	sched.SetTopology(nodes, perNode)

	var mu sync.Mutex
	ranOn := make([]int, ncpu)
	var failures []string
	for k := 1; k < ncpu; k++ {
		k := k
		sched.SpawnOn(mmu.CPUID(k), fmt.Sprintf("pinned-%d", k), func(th *Thread) {
			var buf [8]byte
			var errs []string
			cpu := th.LastCPU()
			if cpu == mmu.NoCPU {
				errs = append(errs, fmt.Sprintf("thread %d running with NoCPU identity", k))
			}
			for r := 0; r < 4; r++ {
				if err := th.Load(ctx, vaOf(k), buf[:]); err != nil {
					errs = append(errs, fmt.Sprintf("thread %d load %d: %v", k, r, err))
					break
				}
			}
			if again := th.LastCPU(); again != cpu {
				errs = append(errs, fmt.Sprintf("thread %d migrated mid-body: %d -> %d", k, cpu, again))
			}
			mu.Lock()
			if cpu != mmu.NoCPU {
				ranOn[int(cpu)]++
			}
			failures = append(failures, errs...)
			mu.Unlock()
		})
	}
	sched.RunUntilIdle()

	for _, f := range failures {
		t.Error(f)
	}
	total := 0
	for k := 0; k < ncpu; k++ {
		delta := machine.MMU.TLBStatsOn(mmu.CPUID(k)).Misses - base[k]
		if delta != uint64(ranOn[k]) {
			t.Errorf("cpu %d: TLB miss delta %d, want %d (threads that ran there)", k, delta, ranOn[k])
		}
		total += ranOn[k]
	}
	if total != ncpu-1 {
		t.Errorf("threads accounted across CPUs: %d, want %d", total, ncpu-1)
	}
}
