package obj

import (
	"sync/atomic"

	"paramecium/internal/clock"
)

// DefaultCoalesceSize is the flush threshold a Coalescer uses when
// none is given: 16 entries, the knee of the P5 batch sweep, where
// vectoring delivers 12.1x the single-call rate and deeper batches
// only shave the last few percent (the per-entry decode cost already
// dominates the amortized crossing share).
const DefaultCoalesceSize = 16

// CrossingCycles reports the fixed cost of one uncoalesced protection
// crossing under a cost model: trap entry and exit, the fault decode,
// and the context-switch pair. Under the default model this is 660
// cycles (the measured P5 single-call cost is ≈705 with dispatch on
// top), against a per-entry vectored cost of ≈50 — which is the whole
// case for coalescing. It is also the default flush deadline: holding
// a queued call longer than one crossing's worth of virtual time
// costs more latency than the crossing it could save.
func CrossingCycles(m *clock.CostModel) uint64 {
	return m.Cost(clock.OpTrapEnter) + m.Cost(clock.OpTrapExit) +
		m.Cost(clock.OpPageFault) + 2*m.Cost(clock.OpCtxSwitch)
}

// Coalescer gives callers that issue calls one at a time the
// amortization of the vectored plane, hands-free: Submit queues a
// call into an internal Batch and flushes automatically when either
// the size threshold is reached (amortization is as good as it gets)
// or the virtual-clock deadline passes (latency bound). Both
// thresholds derive from the P5 break-even curve — see
// DefaultCoalesceSize and CrossingCycles for the reasoning and for
// what to pass to tune them: a latency-sensitive caller lowers delay
// toward zero (degenerating to unbatched calls), a throughput caller
// raises size until the per-entry decode cost dominates.
//
// The deadline is virtual time, so flush timing is deterministic: the
// clock only advances when work is charged, and a test can drive it
// exactly. Time held by a queued call is checked at every Submit and
// at Poll — a caller that stops submitting must Poll (or Flush) to
// bound latency, there is no background timer thread.
//
// Entries queued with SubmitInto thread caller-owned result buffers,
// so their results survive the automatic flush (the flush resets the
// internal batch). Fire-and-forget entries queued with Submit drop
// their results; install an OnFlush hook to harvest outcomes before
// the reset. Like Batch, a Coalescer is single-goroutine.
type Coalescer struct {
	meter *clock.Meter
	batch *Batch
	size  int
	delay uint64
	due   uint64 // deadline for the oldest queued entry; valid when Len > 0

	// flushes/crossings are atomic: the submitting goroutine owns the
	// coalescer, but monitoring code (trace snapshots, stats scrapes)
	// reads these counters from other goroutines while flushes run.
	flushes   atomic.Uint64
	crossings atomic.Uint64

	// OnFlush, if set, observes the batch after each Run and before
	// the reset — per-entry results and errors are still readable,
	// and Batch.Crossings reports what the flush just cost: a
	// coalescer fed alternating targets in the default in-order mode
	// reports one crossing per entry, the regression SetMode(Grouped)
	// exists to fix.
	OnFlush func(*Batch)
}

// NewCoalescer builds a coalescer over the given meter's clock and
// cost model. size <= 0 selects DefaultCoalesceSize; delay == 0
// selects CrossingCycles of the meter's model. A delay of 1 with a
// large size flushes on the next submit after any charged work —
// useful in tests.
func NewCoalescer(meter *clock.Meter, size int, delay uint64) *Coalescer {
	if size <= 0 {
		size = DefaultCoalesceSize
	}
	if delay == 0 {
		delay = CrossingCycles(&meter.Model)
	}
	return &Coalescer{
		meter: meter,
		batch: NewBatch(size),
		size:  size,
		delay: delay,
	}
}

// SetMode selects the dispatch mode of the internal batch. The
// default is InOrder, which preserves submission order exactly but
// falls off the amortization cliff when submissions alternate
// targets: every flush pays one crossing per entry. SetMode(Grouped)
// is the opt-in fix — a flush then pays one crossing per DISTINCT
// target, reordering execution across targets (per-target order
// preserved); see Batch for the semantics. Crossings reports the
// difference either way.
func (c *Coalescer) SetMode(m BatchMode) { c.batch.SetMode(m) }

// Mode reports the dispatch mode of the internal batch.
func (c *Coalescer) Mode() BatchMode { return c.batch.Mode() }

// Flushes reports how many non-empty flushes the coalescer has run.
func (c *Coalescer) Flushes() uint64 { return c.flushes.Load() }

// Crossings reports the cumulative protection crossings the
// coalescer's flushes have paid (each flushed Batcher group is one).
// Divide by Flushes to see the amortization actually achieved: a
// coalescer fed mixed targets in the default in-order mode degrades
// toward one crossing per submitted call — visible here — and
// SetMode(Grouped) restores one crossing per distinct target.
func (c *Coalescer) Crossings() uint64 { return c.crossings.Load() }

// Size reports the flush threshold.
func (c *Coalescer) Size() int { return c.size }

// Delay reports the flush deadline in virtual cycles.
func (c *Coalescer) Delay() uint64 { return c.delay }

// Len reports the number of queued, unflushed entries.
func (c *Coalescer) Len() int { return c.batch.Len() }

// Deadline reports the virtual time at which the queue must flush;
// meaningful only while Len > 0.
func (c *Coalescer) Deadline() uint64 { return c.due }

// Submit queues one fire-and-forget invocation, flushing if the queue
// reaches the size threshold or the deadline has passed. The returned
// error is a queueing or flush-dispatch error; per-entry outcomes are
// only observable through an OnFlush hook.
func (c *Coalescer) Submit(h MethodHandle, args ...any) error {
	return c.SubmitInto(h, nil, args...)
}

// SubmitInto is Submit with a caller-provided result buffer, exactly
// as Batch.AddInto: results are appended into out's array, which the
// caller owns and may read after the flush that ran the entry.
//
//paramecium:hotpath
func (c *Coalescer) SubmitInto(h MethodHandle, out []any, args ...any) error {
	if err := c.batch.AddInto(h, out, args...); err != nil {
		return err
	}
	now := c.meter.Clock.Now()
	if c.batch.Len() == 1 {
		c.due = now + c.delay
	}
	if c.batch.Len() >= c.size || now >= c.due {
		return c.Flush()
	}
	return nil
}

// Poll flushes if the deadline has passed; a no-op otherwise. Callers
// with idle gaps call it at their convenient points (their event
// loop, their scheduler tick) to bound queued-call latency.
func (c *Coalescer) Poll() error {
	if c.batch.Len() == 0 || c.meter.Clock.Now() < c.due {
		return nil
	}
	return c.Flush()
}

// Flush runs the queued entries now — consecutive same-proxy entries
// vector in one crossing, see Batch.Run — then resets the queue. It
// returns Run's group-level error; per-entry outcomes go to caller
// buffers (SubmitInto) or the OnFlush hook.
//
//paramecium:hotpath
func (c *Coalescer) Flush() error {
	if c.batch.Len() == 0 {
		return nil
	}
	err := c.batch.Run()
	// Crossings before flushes, so a concurrent reader computing the
	// amortization ratio Crossings/Flushes never sees a flush whose
	// crossings have not landed yet.
	c.crossings.Add(uint64(c.batch.Crossings()))
	c.flushes.Add(1)
	if c.OnFlush != nil {
		c.OnFlush(c.batch)
	}
	c.batch.Reset()
	c.due = 0
	return err
}
