// Package mmu simulates a SPARC-flavoured memory management unit: MMU
// contexts with per-context page tables, an ASID-tagged TLB, page
// protections and fault reporting.
//
// The MMU is the protection substrate for the whole reproduction. The
// Paramecium nucleus implements cross-domain calls, fault call-backs and
// page sharing on top of the primitives here, exactly as the paper's
// memory-management service does on real hardware.
package mmu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
)

// PageSize is the size of a virtual and physical page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// VAddr is a virtual address within some MMU context.
type VAddr uint64

// PAddr is a physical address.
type PAddr uint64

// VPN returns the virtual page number of the address.
func (a VAddr) VPN() uint64 { return uint64(a) >> PageShift }

// Offset returns the within-page offset of the address.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// PageBase returns the address of the start of the page containing a.
func (a VAddr) PageBase() VAddr { return a &^ (PageSize - 1) }

// Frame returns the physical frame number of the address.
func (p PAddr) Frame() uint64 { return uint64(p) >> PageShift }

// Perm is a page protection bit set.
type Perm uint8

// Protection bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Has reports whether every bit in want is present.
func (p Perm) Has(want Perm) bool { return p&want == want }

// String renders the permission in "rwx" form.
func (p Perm) String() string {
	b := []byte("---")
	if p.Has(PermRead) {
		b[0] = 'r'
	}
	if p.Has(PermWrite) {
		b[1] = 'w'
	}
	if p.Has(PermExec) {
		b[2] = 'x'
	}
	return string(b)
}

// Access is the kind of memory access being attempted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return fmt.Sprintf("access(%d)", uint8(a))
}

// perm returns the permission bit an access requires.
func (a Access) perm() Perm {
	switch a {
	case AccessWrite:
		return PermWrite
	case AccessExec:
		return PermExec
	default:
		return PermRead
	}
}

// FaultKind classifies a translation fault.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone       FaultKind = iota
	FaultNoMapping            // no PTE for the page
	FaultProtection           // PTE present but access not permitted
	FaultBadContext           // context does not exist
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNoMapping:
		return "no-mapping"
	case FaultProtection:
		return "protection"
	case FaultBadContext:
		return "bad-context"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault describes a failed translation. It implements error so the MMU
// can return it directly from Translate.
type Fault struct {
	Kind    FaultKind
	Ctx     ContextID
	Addr    VAddr
	Access  Access
	Present Perm // permissions of the PTE, if one was present
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: %s fault in context %d at %#x (%s access, page perms %s)",
		f.Kind, f.Ctx, uint64(f.Addr), f.Access, f.Present)
}

// ContextID names an MMU context (an address space). Context 0 is the
// kernel context by convention.
type ContextID uint32

// KernelContext is the MMU context the nucleus itself runs in.
const KernelContext ContextID = 0

// PTE is a page table entry.
type PTE struct {
	Frame uint64
	Perm  Perm
	Valid bool
	// Tag carries arbitrary owner data (the mem service stores the
	// page's allocation record here). The MMU itself ignores it.
	Tag any
}

// pageTable is a per-context sparse page table.
type pageTable struct {
	entries map[uint64]PTE // keyed by VPN
}

func newPageTable() *pageTable {
	return &pageTable{entries: make(map[uint64]PTE)}
}

// ErrNoContext is returned when an operation names an unknown context.
var ErrNoContext = errors.New("mmu: no such context")

// ErrExists is returned when creating a context that already exists.
var ErrExists = errors.New("mmu: context already exists")

// MMU is the memory management unit. All methods are safe for
// concurrent use.
type MMU struct {
	meter *clock.Meter

	// current is the context register. Reads are lock-free; writes
	// still happen under mu (Switch, DestroyContext ordering). It is
	// scheduler state: cross-domain calls do not route through it (see
	// CrossSwitch), so it never holds a call's transient target context.
	current atomic.Uint32

	mu       sync.RWMutex
	contexts map[ContextID]*pageTable
	nextCtx  ContextID
	tlb      *tlb
	// FlushOnSwitch selects the non-ASID behaviour in which every
	// context switch flushes the whole TLB (ablation F5).
	flushOnSwitch bool
}

// Config controls MMU construction.
type Config struct {
	TLBSize       int  // entries; 0 means DefaultTLBSize
	FlushOnSwitch bool // flush TLB on every context switch
}

// DefaultTLBSize is the TLB capacity used when Config.TLBSize is zero.
const DefaultTLBSize = 64

// New builds an MMU charging against meter. The kernel context (0) is
// created automatically.
func New(meter *clock.Meter, cfg Config) *MMU {
	size := cfg.TLBSize
	if size <= 0 {
		size = DefaultTLBSize
	}
	m := &MMU{
		meter:         meter,
		contexts:      make(map[ContextID]*pageTable),
		nextCtx:       1,
		tlb:           newTLB(size),
		flushOnSwitch: cfg.FlushOnSwitch,
	}
	m.contexts[KernelContext] = newPageTable()
	return m
}

// NewContext allocates a fresh MMU context and returns its ID.
func (m *MMU) NewContext() ContextID {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextCtx
	m.nextCtx++
	m.contexts[id] = newPageTable()
	return id
}

// DestroyContext removes a context, invalidating all of its TLB entries.
// Destroying the kernel context or the current context is an error.
func (m *MMU) DestroyContext(id ContextID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == KernelContext {
		return errors.New("mmu: cannot destroy kernel context")
	}
	if id == ContextID(m.current.Load()) {
		return errors.New("mmu: cannot destroy current context")
	}
	if _, ok := m.contexts[id]; !ok {
		return ErrNoContext
	}
	delete(m.contexts, id)
	m.tlb.invalidateContext(id)
	return nil
}

// HasContext reports whether id names a live context.
func (m *MMU) HasContext(id ContextID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.contexts[id]
	return ok
}

// Current reports the active context. Lock-free: the context register
// is read on every cross-domain fault.
func (m *MMU) Current() ContextID {
	return ContextID(m.current.Load())
}

// Switch makes id the active context, charging the context-switch cost.
// Switching to the already-active context is free.
func (m *MMU) Switch(id ContextID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.contexts[id]; !ok {
		return ErrNoContext
	}
	if id == ContextID(m.current.Load()) {
		return nil
	}
	m.current.Store(uint32(id))
	m.meter.Charge(clock.OpCtxSwitch)
	if m.flushOnSwitch {
		m.tlb.flush()
		m.meter.Charge(clock.OpTLBFlush)
	}
	return nil
}

// CrossSwitch models one leg of a cross-domain call's context-switch
// pair (caller→target on entry, target→caller on return): it validates
// that the destination context exists and charges the switch cost —
// plus the TLB flush under FlushOnSwitch — without moving the shared
// context register. Each in-flight cross-domain call executes as if on
// its own processor, so one call's transient target context is never
// observable to a concurrent call, and the charge sequence is
// deterministic under any interleaving: always exactly one OpCtxSwitch
// per leg.
func (m *MMU) CrossSwitch(to ContextID) error {
	if !m.flushOnSwitch {
		// ASID mode mutates nothing: an existence check plus an atomic
		// meter charge. Read-lock so concurrent crossings — two per
		// cross-domain call — do not serialize on the MMU.
		m.mu.RLock()
		_, ok := m.contexts[to]
		m.mu.RUnlock()
		if !ok {
			return ErrNoContext
		}
		m.meter.Charge(clock.OpCtxSwitch)
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.contexts[to]; !ok {
		return ErrNoContext
	}
	m.meter.Charge(clock.OpCtxSwitch)
	m.tlb.flush()
	m.meter.Charge(clock.OpTLBFlush)
	return nil
}

// Map installs a translation for the page containing va in context id.
func (m *MMU) Map(id ContextID, va VAddr, frame uint64, perm Perm) error {
	return m.MapTagged(id, va, frame, perm, nil)
}

// MapTagged is Map with an owner tag stored in the PTE.
func (m *MMU) MapTagged(id ContextID, va VAddr, frame uint64, perm Perm, tag any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pt, ok := m.contexts[id]
	if !ok {
		return ErrNoContext
	}
	pt.entries[va.VPN()] = PTE{Frame: frame, Perm: perm, Valid: true, Tag: tag}
	m.tlb.invalidate(id, va.VPN())
	return nil
}

// Unmap removes the translation for the page containing va.
func (m *MMU) Unmap(id ContextID, va VAddr) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pt, ok := m.contexts[id]
	if !ok {
		return ErrNoContext
	}
	delete(pt.entries, va.VPN())
	m.tlb.invalidate(id, va.VPN())
	return nil
}

// Protect changes the permissions of an existing mapping.
func (m *MMU) Protect(id ContextID, va VAddr, perm Perm) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pt, ok := m.contexts[id]
	if !ok {
		return ErrNoContext
	}
	pte, ok := pt.entries[va.VPN()]
	if !ok || !pte.Valid {
		return &Fault{Kind: FaultNoMapping, Ctx: id, Addr: va}
	}
	pte.Perm = perm
	pt.entries[va.VPN()] = pte
	m.tlb.invalidate(id, va.VPN())
	return nil
}

// Lookup returns the PTE for the page containing va without charging
// any cycles (a debugger's view, not a hardware walk).
func (m *MMU) Lookup(id ContextID, va VAddr) (PTE, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pt, ok := m.contexts[id]
	if !ok {
		return PTE{}, false
	}
	pte, ok := pt.entries[va.VPN()]
	return pte, ok && pte.Valid
}

// Translate resolves va in context id for the given access kind,
// charging TLB and page-table costs. On failure it returns a *Fault.
func (m *MMU) Translate(id ContextID, va VAddr, access Access) (PAddr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.translateLocked(id, va, access)
}

// TranslateCurrent resolves va in the active context.
func (m *MMU) TranslateCurrent(va VAddr, access Access) (PAddr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.translateLocked(ContextID(m.current.Load()), va, access)
}

func (m *MMU) translateLocked(id ContextID, va VAddr, access Access) (PAddr, error) {
	pt, ok := m.contexts[id]
	if !ok {
		return 0, &Fault{Kind: FaultBadContext, Ctx: id, Addr: va, Access: access}
	}
	vpn := va.VPN()
	if e, hit := m.tlb.lookup(id, vpn); hit {
		if !e.perm.Has(access.perm()) {
			return 0, &Fault{Kind: FaultProtection, Ctx: id, Addr: va, Access: access, Present: e.perm}
		}
		return PAddr(e.frame<<PageShift | va.Offset()), nil
	}
	// TLB miss: hardware walk of the page table.
	m.meter.Charge(clock.OpTLBMiss)
	pte, ok := pt.entries[vpn]
	if !ok || !pte.Valid {
		return 0, &Fault{Kind: FaultNoMapping, Ctx: id, Addr: va, Access: access}
	}
	if !pte.Perm.Has(access.perm()) {
		return 0, &Fault{Kind: FaultProtection, Ctx: id, Addr: va, Access: access, Present: pte.Perm}
	}
	m.tlb.insert(id, vpn, pte.Frame, pte.Perm)
	return PAddr(pte.Frame<<PageShift | va.Offset()), nil
}

// FlushTLB empties the TLB, charging the flush cost.
func (m *MMU) FlushTLB() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tlb.flush()
	m.meter.Charge(clock.OpTLBFlush)
}

// TLBStats reports hits and misses since construction.
func (m *MMU) TLBStats() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tlb.hits, m.tlb.misses
}

// Mappings returns the number of valid mappings in a context.
func (m *MMU) Mappings(id ContextID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	pt, ok := m.contexts[id]
	if !ok {
		return 0
	}
	return len(pt.entries)
}
