package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ChargePath enforces the cost-model discipline on raw data movement:
// in the data-plane packages, any statement that moves payload bytes —
// a call to PhysMem.Read/Write or a builtin copy over byte slices —
// must be dominated by a clock charge (Meter.Charge/ChargeN, or a call
// to a same-package function that itself charges) on every path from
// the function's entry. No crossing or copy is ever free.
//
// The PhysMem methods themselves are the raw DRAM primitive and sit
// below the cost model: charging belongs at the access layer that
// invokes them, so functions whose receiver is PhysMem are exempt.
var ChargePath = &Analyzer{
	Name: "chargepath",
	Doc:  "raw data movement must be dominated by a clock charge",
	Run:  runChargePath,
}

// chargePathPackages are the module packages the invariant covers: the
// data planes that move payload bytes. Non-module (testdata) packages
// are always covered.
var chargePathPackages = []string{
	"internal/proxy",
	"internal/mmu",
	"internal/shm",
	"internal/hw",
	"internal/ring",
}

func inScopeFor(pass *Pass, suffixes []string) bool {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "paramecium") {
		return true // testdata / golden-suite package
	}
	for _, s := range suffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func runChargePath(pass *Pass) error {
	if !inScopeFor(pass, chargePathPackages) {
		return nil
	}
	cp := &chargePath{pass: pass, charging: make(map[types.Object]bool)}
	// Pre-pass: same-package functions that contain a direct charge
	// anywhere count as charging helpers when called.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			direct := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && cp.isDirectCharge(call) {
					direct = true
				}
				return !direct
			})
			if direct {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					cp.charging[obj] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || cp.isPhysMemMethod(fn) {
				continue
			}
			cp.checkBlock(fn.Body.List, false)
		}
	}
	return nil
}

type chargePath struct {
	pass     *Pass
	charging map[types.Object]bool
}

// isPhysMemMethod reports whether fn is a method on the raw-memory
// primitive type, which is below the cost model by design.
func (cp *chargePath) isPhysMemMethod(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := cp.pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
	return namedTypeName(t) == "PhysMem"
}

// namedTypeName unwraps pointers and reports the named type's name.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isDirectCharge reports a Meter.Charge/ChargeN call or one of their
// attributed forms (ChargeFor/ChargeNFor, which charge identically and
// additionally name the paying domain for the cycle ledger).
func (cp *chargePath) isDirectCharge(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Charge", "ChargeN", "ChargeFor", "ChargeNFor":
	default:
		return false
	}
	return namedTypeName(cp.pass.TypesInfo.TypeOf(sel.X)) == "Meter"
}

// isCharge reports a direct charge or a call to a same-package
// function known to charge.
func (cp *chargePath) isCharge(call *ast.CallExpr) bool {
	if cp.isDirectCharge(call) {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return cp.charging[cp.pass.TypesInfo.Uses[fun]]
	case *ast.SelectorExpr:
		return cp.charging[cp.pass.TypesInfo.Uses[fun.Sel]]
	}
	return false
}

// isMovement reports a raw payload movement: PhysMem.Read/Write, or
// builtin copy with a byte-slice operand.
func (cp *chargePath) isMovement(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "copy" && len(call.Args) == 2 {
			if obj, ok := cp.pass.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "copy" {
				for _, arg := range call.Args {
					if isByteSlice(cp.pass.TypesInfo.TypeOf(arg)) {
						return "copy of payload bytes", true
					}
				}
			}
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Read" || fun.Sel.Name == "Write" {
			if namedTypeName(cp.pass.TypesInfo.TypeOf(fun.X)) == "PhysMem" {
				return "PhysMem." + fun.Sel.Name, true
			}
		}
	}
	return "", false
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// checkExpr scans one expression tree in evaluation order, reporting
// uncharged movements and returning the charged state after it.
func (cp *chargePath) checkExpr(n ast.Node, charged bool) bool {
	if n == nil {
		return charged
	}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what, ok := cp.isMovement(call); ok && !charged {
			cp.pass.Reportf(call.Pos(), "%s is not dominated by a clock charge on every path from the function entry", what)
		}
		if cp.isCharge(call) {
			charged = true
		}
		return true
	})
	return charged
}

// checkBlock walks statements sequentially, tracking whether a charge
// dominates each movement. Branches merge conservatively: the charged
// state after an if/switch is true only when every arm (including an
// else/default) charges.
func (cp *chargePath) checkBlock(stmts []ast.Stmt, charged bool) bool {
	for _, s := range stmts {
		charged = cp.checkStmt(s, charged)
	}
	return charged
}

func (cp *chargePath) checkStmt(s ast.Stmt, charged bool) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		charged = cp.checkStmt(s.Init, charged)
		charged = cp.checkExpr(s.Cond, charged)
		thenOut := cp.checkBlock(s.Body.List, charged)
		elseOut := charged
		hasElse := s.Else != nil
		if hasElse {
			elseOut = cp.checkStmt(s.Else, charged)
		}
		if hasElse && thenOut && elseOut {
			return true
		}
		return charged
	case *ast.BlockStmt:
		return cp.checkBlock(s.List, charged)
	case *ast.ForStmt:
		charged = cp.checkStmt(s.Init, charged)
		cp.checkExpr(s.Cond, charged)
		cp.checkBlock(s.Body.List, charged)
		cp.checkStmt(s.Post, charged)
		return charged // body may run zero times
	case *ast.RangeStmt:
		charged = cp.checkExpr(s.X, charged)
		cp.checkBlock(s.Body.List, charged)
		return charged
	case *ast.SwitchStmt:
		charged = cp.checkStmt(s.Init, charged)
		charged = cp.checkExpr(s.Tag, charged)
		all := true
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			if !cp.checkBlock(cc.Body, charged) {
				all = false
			}
		}
		if all && hasDefault {
			return true
		}
		return charged
	case *ast.TypeSwitchStmt:
		charged = cp.checkStmt(s.Init, charged)
		for _, c := range s.Body.List {
			cp.checkBlock(c.(*ast.CaseClause).Body, charged)
		}
		return charged
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cp.checkBlock(c.(*ast.CommClause).Body, charged)
		}
		return charged
	case *ast.DeferStmt:
		// A deferred movement runs at return, after any charge the
		// body performs; treat it with the state accumulated so far.
		return cp.checkExpr(s.Call, charged)
	case *ast.GoStmt:
		return cp.checkExpr(s.Call, charged)
	case *ast.LabeledStmt:
		return cp.checkStmt(s.Stmt, charged)
	case nil:
		return charged
	default:
		return cp.checkExpr(s, charged)
	}
}
