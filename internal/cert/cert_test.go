package cert

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"paramecium/internal/clock"
)

func TestPrivilegeHasAndString(t *testing.T) {
	p := PrivKernelResident | PrivDeviceAccess
	if !p.Has(PrivKernelResident) || !p.Has(PrivDeviceAccess) {
		t.Fatal("Has failed on present bits")
	}
	if p.Has(PrivSharedService) {
		t.Fatal("Has true for absent bit")
	}
	if got := p.String(); got != "kernel+device" {
		t.Fatalf("String = %q", got)
	}
	if got := Privilege(0).String(); got != "none" {
		t.Fatalf("zero String = %q", got)
	}
}

func TestDigestImageDeterministicAndCharged(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	img := bytes.Repeat([]byte{7}, 256)
	d1 := DigestImage(meter, img)
	d2 := DigestImage(nil, img)
	if d1 != d2 {
		t.Fatal("digest not deterministic")
	}
	if got := meter.Count(clock.OpDigestBlock); got != 4 {
		t.Fatalf("blocks charged = %d, want 4", got)
	}
	// Empty image charges at least one block.
	DigestImage(meter, nil)
	if got := meter.Count(clock.OpDigestBlock); got != 5 {
		t.Fatalf("blocks after empty = %d, want 5", got)
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	kp := GenerateKey(1)
	c := &Certificate{
		Component: "netfilter",
		Digest:    DigestImage(nil, []byte("image")),
		Privilege: PrivKernelResident | PrivSharedService,
		Issuer:    "compiler",
	}
	c.Signature = kp.Sign(c.SigningBytes())
	got, err := UnmarshalCertificate(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Component != c.Component || got.Digest != c.Digest ||
		got.Privilege != c.Privilege || got.Issuer != c.Issuer ||
		!bytes.Equal(got.Signature, c.Signature) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, c)
	}
}

func TestUnmarshalCertificateErrors(t *testing.T) {
	if _, err := UnmarshalCertificate([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalCertificate(nil); err == nil {
		t.Fatal("empty accepted")
	}
	// Truncated valid prefix.
	kp := GenerateKey(1)
	c := &Certificate{Component: "x", Issuer: "y"}
	c.Signature = kp.Sign(c.SigningBytes())
	full := c.Marshal()
	if _, err := UnmarshalCertificate(full[:len(full)-10]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestGenerateKeyDeterministic(t *testing.T) {
	a, b := GenerateKey(7), GenerateKey(7)
	if !bytes.Equal(a.Pub, b.Pub) {
		t.Fatal("same seed, different keys")
	}
	c := GenerateKey(8)
	if bytes.Equal(a.Pub, c.Pub) {
		t.Fatal("different seeds, same key")
	}
}

func newTrust(t *testing.T) (*Authority, *Validator, *KeyCertifier) {
	t.Helper()
	auth := NewAuthority(100)
	meter := clock.NewMeter(clock.DefaultCosts())
	val := NewValidator(meter, auth.PublicKey())
	admin := NewKeyCertifier("sysadmin", GenerateKey(101), PrivKernelResident|PrivDeviceAccess|PrivSharedService)
	if err := val.AddDelegation(auth.Delegate("sysadmin", admin.Key().Pub, admin.max)); err != nil {
		t.Fatal(err)
	}
	return auth, val, admin
}

func TestValidateHappyPath(t *testing.T) {
	_, val, admin := newTrust(t)
	img := []byte("a trustworthy component")
	c, err := admin.Certify("drv", img, PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if err := val.Validate(img, c, PrivKernelResident); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDigestMismatch(t *testing.T) {
	_, val, admin := newTrust(t)
	img := []byte("original")
	c, err := admin.Certify("drv", img, PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte("originaX")
	if err := val.Validate(tampered, c, PrivKernelResident); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("tampered image: %v", err)
	}
}

func TestValidateForgedSignature(t *testing.T) {
	_, val, _ := newTrust(t)
	rogue := NewKeyCertifier("sysadmin", GenerateKey(999), PrivKernelResident) // wrong key, right name
	img := []byte("malware")
	c, err := rogue.Certify("mal", img, PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if err := val.Validate(img, c, PrivKernelResident); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged cert: %v", err)
	}
}

func TestValidateUnknownIssuer(t *testing.T) {
	_, val, _ := newTrust(t)
	stranger := NewKeyCertifier("stranger", GenerateKey(555), PrivKernelResident)
	img := []byte("x")
	c, _ := stranger.Certify("x", img, PrivKernelResident)
	if err := val.Validate(img, c, PrivKernelResident); !errors.Is(err, ErrUnknownIssuer) {
		t.Fatalf("unknown issuer: %v", err)
	}
}

func TestValidatePrivilegeExcess(t *testing.T) {
	auth := NewAuthority(1)
	val := NewValidator(nil, auth.PublicKey())
	// Delegate limited to device access only.
	lim := NewKeyCertifier("tester", GenerateKey(2), PrivDeviceAccess)
	if err := val.AddDelegation(auth.Delegate("tester", lim.Key().Pub, PrivDeviceAccess)); err != nil {
		t.Fatal(err)
	}
	// Forge a cert where the delegate grants beyond its mask. Certify
	// itself refuses, so build it manually.
	img := []byte("img")
	c := &Certificate{Component: "x", Digest: DigestImage(nil, img), Privilege: PrivKernelResident, Issuer: "tester"}
	c.Signature = lim.Key().Sign(c.SigningBytes())
	if err := val.Validate(img, c, PrivKernelResident); !errors.Is(err, ErrPrivilegeExcess) {
		t.Fatalf("excess: %v", err)
	}
}

func TestValidateInsufficientPrivilege(t *testing.T) {
	_, val, admin := newTrust(t)
	img := []byte("img")
	c, err := admin.Certify("x", img, PrivDeviceAccess)
	if err != nil {
		t.Fatal(err)
	}
	if err := val.Validate(img, c, PrivKernelResident); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("insufficient: %v", err)
	}
}

func TestValidationCache(t *testing.T) {
	auth := NewAuthority(1)
	meter := clock.NewMeter(clock.DefaultCosts())
	val := NewValidator(meter, auth.PublicKey())
	admin := NewKeyCertifier("admin", GenerateKey(2), PrivKernelResident)
	if err := val.AddDelegation(auth.Delegate("admin", admin.Key().Pub, PrivKernelResident)); err != nil {
		t.Fatal(err)
	}
	img := []byte("cached component")
	c, err := admin.Certify("x", img, PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if err := val.Validate(img, c, PrivKernelResident); err != nil {
		t.Fatal(err)
	}
	verifies := meter.Count(clock.OpSigVerify)
	for i := 0; i < 5; i++ {
		if err := val.Validate(img, c, PrivKernelResident); err != nil {
			t.Fatal(err)
		}
	}
	if meter.Count(clock.OpSigVerify) != verifies {
		t.Fatal("cached validations re-verified signatures")
	}
	hits, misses := val.CacheStats()
	if hits != 5 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses", hits, misses)
	}
	// Cached result still enforces privilege.
	if err := val.Validate(img, c, PrivKernelResident|PrivDeviceAccess); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("cached insufficient: %v", err)
	}
	val.InvalidateCache()
	if err := val.Validate(img, c, PrivKernelResident); err != nil {
		t.Fatal(err)
	}
	if meter.Count(clock.OpSigVerify) == verifies {
		t.Fatal("validation after invalidate did not re-verify")
	}
}

func TestDelegationChain(t *testing.T) {
	auth := NewAuthority(1)
	val := NewValidator(nil, auth.PublicKey())
	// authority -> department -> lab -> grad-student
	dept := GenerateKey(10)
	lab := GenerateKey(11)
	grad := GenerateKey(12)
	dDept := auth.Delegate("department", dept.Pub, PrivKernelResident|PrivDeviceAccess)
	if err := val.AddDelegation(dDept); err != nil {
		t.Fatal(err)
	}
	dLab := SubDelegate(dDept, dept, "lab", lab.Pub, PrivKernelResident)
	if err := val.AddDelegation(dLab); err != nil {
		t.Fatal(err)
	}
	dGrad := SubDelegate(dLab, lab, "grad-student", grad.Pub, PrivKernelResident)
	if err := val.AddDelegation(dGrad); err != nil {
		t.Fatal(err)
	}
	if got := val.ChainDepth("grad-student"); got != 3 {
		t.Fatalf("ChainDepth = %d, want 3", got)
	}
	if got := val.ChainDepth("department"); got != 1 {
		t.Fatalf("ChainDepth = %d, want 1", got)
	}
	if got := val.ChainDepth("unknown"); got != 0 {
		t.Fatalf("ChainDepth(unknown) = %d", got)
	}
	// The grad student can now certify kernel components.
	gradCert := NewKeyCertifier("grad-student", grad, PrivKernelResident)
	img := []byte("thesis code")
	c, err := gradCert.Certify("thesis", img, PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if err := val.Validate(img, c, PrivKernelResident); err != nil {
		t.Fatal(err)
	}
}

func TestSubDelegationCannotEscalate(t *testing.T) {
	auth := NewAuthority(1)
	val := NewValidator(nil, auth.PublicKey())
	dept := GenerateKey(10)
	dDept := auth.Delegate("department", dept.Pub, PrivDeviceAccess) // no kernel bit
	if err := val.AddDelegation(dDept); err != nil {
		t.Fatal(err)
	}
	evil := GenerateKey(11)
	dEvil := SubDelegate(dDept, dept, "evil", evil.Pub, PrivKernelResident)
	if err := val.AddDelegation(dEvil); !errors.Is(err, ErrPrivilegeExcess) {
		t.Fatalf("escalating sub-delegation: %v", err)
	}
}

func TestAddDelegationBadSignature(t *testing.T) {
	auth := NewAuthority(1)
	otherAuth := NewAuthority(2)
	val := NewValidator(nil, auth.PublicKey())
	k := GenerateKey(3)
	d := otherAuth.Delegate("imposter", k.Pub, PrivKernelResident)
	if err := val.AddDelegation(d); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("foreign delegation: %v", err)
	}
	// Unknown intermediate issuer.
	d2 := &Delegation{Delegate: "x", Key: k.Pub, MaxPrivilege: 0, Issuer: "ghost"}
	if err := val.AddDelegation(d2); !errors.Is(err, ErrUnknownIssuer) {
		t.Fatalf("ghost issuer: %v", err)
	}
}

func TestKeyCertifierRefusesBeyondMask(t *testing.T) {
	kc := NewKeyCertifier("limited", GenerateKey(1), PrivDeviceAccess)
	_, err := kc.Certify("x", []byte("i"), PrivKernelResident)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("beyond mask: %v", err)
	}
}

func TestKeyCertifierPolicy(t *testing.T) {
	kc := NewKeyCertifier("compiler", GenerateKey(1), PrivKernelResident)
	kc.Policy = func(component string, image []byte) bool {
		return bytes.HasPrefix(image, []byte("SAFE")) // models "compiled by me"
	}
	if _, err := kc.Certify("x", []byte("UNSAFE..."), PrivKernelResident); !errors.Is(err, ErrRefused) {
		t.Fatalf("policy reject: %v", err)
	}
	if _, err := kc.Certify("x", []byte("SAFE..."), PrivKernelResident); err != nil {
		t.Fatalf("policy accept: %v", err)
	}
}

func TestEscapeHatchFallsThrough(t *testing.T) {
	prover := NewKeyCertifier("prover", GenerateKey(1), PrivKernelResident)
	prover.Policy = func(string, []byte) bool { return false } // can never finish the proof
	admin := NewKeyCertifier("sysadmin", GenerateKey(2), PrivKernelResident)
	hatch := NewEscapeHatch(prover, admin)

	c, err := hatch.Certify("drv", []byte("driver"), PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if c.Issuer != "sysadmin" {
		t.Fatalf("issuer = %q, want fallthrough to sysadmin", c.Issuer)
	}
	if names := hatch.Names(); len(names) != 2 || names[0] != "prover" {
		t.Fatalf("Names = %v", names)
	}
}

func TestEscapeHatchPreferenceOrder(t *testing.T) {
	prover := NewKeyCertifier("prover", GenerateKey(1), PrivKernelResident)
	admin := NewKeyCertifier("sysadmin", GenerateKey(2), PrivKernelResident)
	hatch := NewEscapeHatch(prover, admin)
	c, err := hatch.Certify("drv", []byte("driver"), PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if c.Issuer != "prover" {
		t.Fatalf("issuer = %q, want first preference", c.Issuer)
	}
}

func TestEscapeHatchAllRefuse(t *testing.T) {
	a := NewKeyCertifier("a", GenerateKey(1), PrivKernelResident)
	a.Policy = func(string, []byte) bool { return false }
	b := NewKeyCertifier("b", GenerateKey(2), PrivKernelResident)
	b.Policy = func(string, []byte) bool { return false }
	hatch := NewEscapeHatch(a, b)
	_, err := hatch.Certify("x", []byte("i"), PrivKernelResident)
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("all refuse: %v", err)
	}
	// Both refusals should be reported.
	if !strings.Contains(err.Error(), `"a"`) || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("refusal message incomplete: %v", err)
	}
}

func TestEscapeHatchEmpty(t *testing.T) {
	hatch := NewEscapeHatch()
	if _, err := hatch.Certify("x", nil, 0); !errors.Is(err, ErrRefused) {
		t.Fatalf("empty hatch: %v", err)
	}
}

type abortCertifier struct{}

func (abortCertifier) Name() string { return "broken" }
func (abortCertifier) Certify(string, []byte, Privilege) (*Certificate, error) {
	return nil, errors.New("hardware security module on fire")
}

func TestEscapeHatchAbortsOnHardError(t *testing.T) {
	admin := NewKeyCertifier("admin", GenerateKey(1), PrivKernelResident)
	hatch := NewEscapeHatch(abortCertifier{}, admin)
	_, err := hatch.Certify("x", []byte("i"), PrivKernelResident)
	if err == nil || errors.Is(err, ErrRefused) {
		t.Fatalf("hard error should abort, got %v", err)
	}
}

// Property: any certificate issued by a registered delegate validates
// against the matching image and fails against any different image.
func TestCertifyValidateProperty(t *testing.T) {
	auth := NewAuthority(42)
	val := NewValidator(nil, auth.PublicKey())
	admin := NewKeyCertifier("admin", GenerateKey(43), PrivKernelResident|PrivDeviceAccess|PrivSharedService)
	if err := val.AddDelegation(auth.Delegate("admin", admin.Key().Pub, PrivKernelResident|PrivDeviceAccess|PrivSharedService)); err != nil {
		t.Fatal(err)
	}
	f := func(img []byte, extra byte) bool {
		c, err := admin.Certify("p", img, PrivKernelResident)
		if err != nil {
			return false
		}
		if val.Validate(img, c, PrivKernelResident) != nil {
			return false
		}
		mutated := append(append([]byte{}, img...), extra)
		return errors.Is(val.Validate(mutated, c, PrivKernelResident), ErrDigestMismatch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
