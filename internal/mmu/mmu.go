// Package mmu simulates a SPARC-flavoured memory management unit: MMU
// contexts with per-context page tables, per-CPU ASID-tagged TLBs and
// context registers, page protections and fault reporting.
//
// The MMU is the protection substrate for the whole reproduction. The
// Paramecium nucleus implements cross-domain calls, fault call-backs and
// page sharing on top of the primitives here, exactly as the paper's
// memory-management service does on real hardware.
//
// The machine may have any number of virtual CPUs (Config.CPUs). Each
// CPU carries its own current-context register and its own TLB with its
// own hit/miss/flush counters, so TLB locality is a per-CPU quantity
// exactly as on real multiprocessors. Translation is sharded: the
// contexts map is read-locked only to fetch a page table, and the walk
// itself takes that context's own lock — unrelated domains fault and
// translate fully in parallel.
package mmu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
	"paramecium/internal/probe"
)

// PageSize is the size of a virtual and physical page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// VAddr is a virtual address within some MMU context.
type VAddr uint64

// PAddr is a physical address.
type PAddr uint64

// VPN returns the virtual page number of the address.
func (a VAddr) VPN() uint64 { return uint64(a) >> PageShift }

// Offset returns the within-page offset of the address.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// PageBase returns the address of the start of the page containing a.
func (a VAddr) PageBase() VAddr { return a &^ (PageSize - 1) }

// Frame returns the physical frame number of the address.
func (p PAddr) Frame() uint64 { return uint64(p) >> PageShift }

// Perm is a page protection bit set.
type Perm uint8

// Protection bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Has reports whether every bit in want is present.
func (p Perm) Has(want Perm) bool { return p&want == want }

// String renders the permission in "rwx" form.
func (p Perm) String() string {
	b := []byte("---")
	if p.Has(PermRead) {
		b[0] = 'r'
	}
	if p.Has(PermWrite) {
		b[1] = 'w'
	}
	if p.Has(PermExec) {
		b[2] = 'x'
	}
	return string(b)
}

// Access is the kind of memory access being attempted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return fmt.Sprintf("access(%d)", uint8(a))
}

// perm returns the permission bit an access requires.
func (a Access) perm() Perm {
	switch a {
	case AccessWrite:
		return PermWrite
	case AccessExec:
		return PermExec
	default:
		return PermRead
	}
}

// FaultKind classifies a translation fault.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone       FaultKind = iota
	FaultNoMapping            // no PTE for the page
	FaultProtection           // PTE present but access not permitted
	FaultBadContext           // context does not exist
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNoMapping:
		return "no-mapping"
	case FaultProtection:
		return "protection"
	case FaultBadContext:
		return "bad-context"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault describes a failed translation. It implements error so the MMU
// can return it directly from Translate.
type Fault struct {
	Kind    FaultKind
	Ctx     ContextID
	Addr    VAddr
	Access  Access
	Present Perm // permissions of the PTE, if one was present
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: %s fault in context %d at %#x (%s access, page perms %s)",
		f.Kind, f.Ctx, uint64(f.Addr), f.Access, f.Present)
}

// ContextID names an MMU context (an address space). Context 0 is the
// kernel context by convention.
type ContextID uint32

// KernelContext is the MMU context the nucleus itself runs in.
const KernelContext ContextID = 0

// CPUID names one virtual CPU of the simulated machine. CPU 0 is the
// boot CPU; every legacy single-CPU entry point operates on it.
type CPUID int

// BootCPU is the CPU the machine boots on, and the CPU every
// non-suffixed (single-CPU compatibility) method operates on.
const BootCPU CPUID = 0

// NoCPU is the sentinel for "no CPU": a thread that has never been
// dispatched, or an identity slot that is deliberately empty. It is
// never a valid index into per-CPU state.
const NoCPU CPUID = -1

// PTE is a page table entry.
type PTE struct {
	Frame uint64
	Perm  Perm
	Valid bool
	// Tag carries arbitrary owner data (the mem service stores the
	// page's allocation record here). The MMU itself ignores it.
	Tag any
}

// pageTable is a per-context sparse page table with its own lock, so
// translation in one context never serializes against another.
type pageTable struct {
	mu      sync.RWMutex
	entries map[uint64]PTE // keyed by VPN
	// dead marks a table whose context has been destroyed. Operations
	// fetch the table under the structure lock and then lock pt.mu;
	// DestroyContext can complete in that window, so every operation
	// re-checks dead under pt.mu — a stale fetch then fails exactly
	// like a fresh lookup of the missing context would.
	dead bool
}

func newPageTable() *pageTable {
	return &pageTable{entries: make(map[uint64]PTE)}
}

// cpuState is one virtual CPU's share of the MMU: its current-context
// register and its private TLB. mu guards the TLB (and serializes
// same-CPU switches); the register is atomic so reads are lock-free.
// States are stored by value in one contiguous array, padded to a
// 64-byte stride, so two CPUs' registers and locks never share a
// cache line.
type cpuState struct {
	current atomic.Uint32
	mu      sync.Mutex
	tlb     *tlb
	_       [40]byte
}

// ErrNoContext is returned when an operation names an unknown context.
var ErrNoContext = errors.New("mmu: no such context")

// ErrExists is returned when creating a context that already exists.
var ErrExists = errors.New("mmu: context already exists")

// MMU is the memory management unit. All methods are safe for
// concurrent use.
type MMU struct {
	meter *clock.Meter
	cpus  []cpuState

	// mu guards the contexts map structure only. Translation read-locks
	// it briefly to fetch a page table; the walk itself runs under that
	// context's own lock, so unrelated domains translate in parallel.
	mu       sync.RWMutex
	contexts map[ContextID]*pageTable
	nextCtx  ContextID
	// FlushOnSwitch selects the non-ASID behaviour in which every
	// context switch flushes the switching CPU's whole TLB (ablation F5).
	flushOnSwitch bool
}

// Config controls MMU construction.
type Config struct {
	TLBSize       int  // entries per CPU; 0 means DefaultTLBSize
	FlushOnSwitch bool // flush TLB on every context switch
	CPUs          int  // virtual CPU count; 0 means 1
}

// DefaultTLBSize is the per-CPU TLB capacity used when Config.TLBSize
// is zero.
const DefaultTLBSize = 64

// New builds an MMU charging against meter. The kernel context (0) is
// created automatically; every CPU boots with it current.
func New(meter *clock.Meter, cfg Config) *MMU {
	size := cfg.TLBSize
	if size <= 0 {
		size = DefaultTLBSize
	}
	ncpu := cfg.CPUs
	if ncpu <= 0 {
		ncpu = 1
	}
	m := &MMU{
		meter:         meter,
		cpus:          make([]cpuState, ncpu),
		contexts:      make(map[ContextID]*pageTable),
		nextCtx:       1,
		flushOnSwitch: cfg.FlushOnSwitch,
	}
	for i := range m.cpus {
		m.cpus[i].tlb = newTLB(size)
	}
	m.contexts[KernelContext] = newPageTable()
	return m
}

// NumCPUs reports the number of virtual CPUs.
func (m *MMU) NumCPUs() int { return len(m.cpus) }

// cpu returns the state of one virtual CPU, panicking on an
// out-of-range ID (a programming error, like indexing past a slice).
func (m *MMU) cpu(id CPUID) *cpuState {
	if id < 0 || int(id) >= len(m.cpus) {
		panic(fmt.Sprintf("mmu: no CPU %d (machine has %d)", id, len(m.cpus)))
	}
	return &m.cpus[id]
}

// pageTableOf fetches a context's page table under the structure lock.
func (m *MMU) pageTableOf(id ContextID) (*pageTable, bool) {
	m.mu.RLock()
	pt, ok := m.contexts[id]
	m.mu.RUnlock()
	return pt, ok
}

// NewContext allocates a fresh MMU context and returns its ID.
func (m *MMU) NewContext() ContextID {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextCtx
	m.nextCtx++
	m.contexts[id] = newPageTable()
	return id
}

// DestroyContext removes a context, invalidating all of its TLB entries
// on every CPU. The teardown initiates from the boot CPU (the nucleus'
// memory service runs there); see DestroyContextFrom for the
// initiator-aware form. Destroying the kernel context or a context that
// is current on any CPU is an error.
func (m *MMU) DestroyContext(id ContextID) error {
	return m.DestroyContextFrom(BootCPU, id)
}

// DestroyContextFrom removes a context, invalidating all of its TLB
// entries on every CPU. Each REMOTE CPU (one other than the initiator)
// whose TLB actually held entries for the context costs one
// inter-processor interrupt: OpTLBShootdown is charged once per such
// CPU and recorded in its Shootdowns counter. The initiator invalidates
// its own entries for free, and CPUs that never cached the context cost
// nothing — on a uniprocessor teardown is therefore free, exactly as
// before. Destroying the kernel context or a context that is current on
// any CPU is an error.
func (m *MMU) DestroyContextFrom(initiator CPUID, id ContextID) error {
	m.cpu(initiator) // validate the initiator up front
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == KernelContext {
		return errors.New("mmu: cannot destroy kernel context")
	}
	for i := range m.cpus {
		if id == ContextID(m.cpus[i].current.Load()) {
			return fmt.Errorf("mmu: cannot destroy context current on CPU %d", i)
		}
	}
	pt, ok := m.contexts[id]
	if !ok {
		return ErrNoContext
	}
	delete(m.contexts, id)
	// Shoot down the context's TLB entries everywhere and kill the
	// orphaned table. Holding pt.mu excludes a walk already past the
	// map check, so it cannot re-insert between the invalidation and
	// our return; the dead mark makes any operation that fetched the
	// table before the delete fail under pt.mu rather than mutate —
	// or translate into and re-cache — a destroyed context.
	pt.mu.Lock()
	pt.dead = true
	clear(pt.entries)
	var remote uint64
	for i := range m.cpus {
		c := &m.cpus[i]
		c.mu.Lock()
		if held := c.tlb.invalidateContext(id); held > 0 && CPUID(i) != initiator {
			// One context-wide invalidation IPI per remote CPU that
			// held entries, regardless of how many it held.
			c.tlb.shootdowns++
			remote++
			if probe.Enabled() {
				m.meter.Emit(i, probe.KindShootdownRecv, uint32(id), uint64(held), 0)
			}
		}
		c.mu.Unlock()
	}
	pt.mu.Unlock()
	// The context whose mappings are torn down pays for its shootdowns.
	m.meter.ChargeNFor(uint32(id), clock.OpTLBShootdown, remote)
	if remote > 0 && probe.Enabled() {
		m.meter.Emit(int(initiator), probe.KindShootdownInit, uint32(id), 0, remote)
	}
	return nil
}

// HasContext reports whether id names a live context.
func (m *MMU) HasContext(id ContextID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.contexts[id]
	return ok
}

// Current reports the boot CPU's active context. Lock-free: the context
// register is read on every cross-domain fault.
func (m *MMU) Current() ContextID { return m.CurrentOn(BootCPU) }

// CurrentOn reports the active context of one CPU, lock-free.
func (m *MMU) CurrentOn(cpu CPUID) ContextID {
	return ContextID(m.cpu(cpu).current.Load())
}

// Switch makes id the active context on the boot CPU.
func (m *MMU) Switch(id ContextID) error { return m.SwitchOn(BootCPU, id) }

// SwitchOn makes id the active context on one CPU, charging the
// context-switch cost. Switching to the already-active context is free.
// Only that CPU's register and TLB are touched, so switches on distinct
// CPUs proceed in parallel.
func (m *MMU) SwitchOn(cpu CPUID, id ContextID) error {
	c := m.cpu(cpu)
	// Hold the structure read-lock across the register write so
	// DestroyContext's current-on-any-CPU check (under the write lock)
	// can never interleave with a half-done switch.
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.contexts[id]; !ok {
		return ErrNoContext
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == ContextID(c.current.Load()) {
		return nil
	}
	c.current.Store(uint32(id))
	// The destination context pays: a switch is part of entering it.
	m.meter.ChargeFor(uint32(id), clock.OpCtxSwitch)
	if m.flushOnSwitch {
		c.tlb.flush()
		m.meter.ChargeFor(uint32(id), clock.OpTLBFlush)
		if probe.Enabled() {
			m.meter.Emit(int(cpu), probe.KindTLBFlush, uint32(id), 0, 0)
		}
	}
	return nil
}

// CrossSwitch models one leg of a cross-domain call's context-switch
// pair on the boot CPU; see CrossSwitchOn.
func (m *MMU) CrossSwitch(to ContextID) error { return m.CrossSwitchOn(BootCPU, to) }

// CrossSwitchOn models one leg of a cross-domain call's context-switch
// pair (caller→target on entry, target→caller on return) on the given
// CPU: it validates that the destination context exists and charges the
// switch cost — plus that CPU's TLB flush under FlushOnSwitch — without
// moving the CPU's context register. Each in-flight cross-domain call
// executes as if on its own processor, so one call's transient target
// context is never observable to a concurrent call, and the charge
// sequence is deterministic under any interleaving: always exactly one
// OpCtxSwitch per leg.
func (m *MMU) CrossSwitchOn(cpu CPUID, to ContextID) error {
	m.mu.RLock()
	_, ok := m.contexts[to]
	m.mu.RUnlock()
	if !ok {
		return ErrNoContext
	}
	m.meter.ChargeFor(uint32(to), clock.OpCtxSwitch)
	if m.flushOnSwitch {
		c := m.cpu(cpu)
		c.mu.Lock()
		c.tlb.flush()
		c.mu.Unlock()
		m.meter.ChargeFor(uint32(to), clock.OpTLBFlush)
		if probe.Enabled() {
			m.meter.Emit(int(cpu), probe.KindTLBFlush, uint32(to), 0, 0)
		}
	}
	return nil
}

// Map installs a translation for the page containing va in context id,
// initiating any shootdown from the boot CPU (the single-CPU
// compatibility form; see MapOn).
func (m *MMU) Map(id ContextID, va VAddr, frame uint64, perm Perm) error {
	return m.MapTaggedOn(BootCPU, id, va, frame, perm, nil)
}

// MapOn is Map initiated from the given CPU: that CPU invalidates its
// own stale TLB entry for free, and only other CPUs holding the entry
// are charged a shootdown IPI.
func (m *MMU) MapOn(initiator CPUID, id ContextID, va VAddr, frame uint64, perm Perm) error {
	return m.MapTaggedOn(initiator, id, va, frame, perm, nil)
}

// MapTagged is Map with an owner tag stored in the PTE, initiating from
// the boot CPU.
func (m *MMU) MapTagged(id ContextID, va VAddr, frame uint64, perm Perm, tag any) error {
	return m.MapTaggedOn(BootCPU, id, va, frame, perm, tag)
}

// MapTaggedOn is MapOn with an owner tag stored in the PTE.
func (m *MMU) MapTaggedOn(initiator CPUID, id ContextID, va VAddr, frame uint64, perm Perm, tag any) error {
	m.cpu(initiator) // validate the initiator up front
	pt, ok := m.pageTableOf(id)
	if !ok {
		return ErrNoContext
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.dead {
		return ErrNoContext
	}
	pt.entries[va.VPN()] = PTE{Frame: frame, Perm: perm, Valid: true, Tag: tag}
	m.invalidateAll(initiator, id, va.VPN())
	return nil
}

// Unmap removes the translation for the page containing va, initiating
// any shootdown from the boot CPU (the single-CPU compatibility form;
// see UnmapOn).
func (m *MMU) Unmap(id ContextID, va VAddr) error {
	return m.UnmapOn(BootCPU, id, va)
}

// UnmapOn is Unmap initiated from the given CPU: that CPU invalidates
// its own stale TLB entry for free, and only other CPUs holding the
// entry are charged a shootdown IPI.
func (m *MMU) UnmapOn(initiator CPUID, id ContextID, va VAddr) error {
	m.cpu(initiator) // validate the initiator up front
	pt, ok := m.pageTableOf(id)
	if !ok {
		return ErrNoContext
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.dead {
		return ErrNoContext
	}
	delete(pt.entries, va.VPN())
	m.invalidateAll(initiator, id, va.VPN())
	return nil
}

// Protect changes the permissions of an existing mapping, initiating
// any shootdown from the boot CPU (the single-CPU compatibility form;
// see ProtectOn).
func (m *MMU) Protect(id ContextID, va VAddr, perm Perm) error {
	return m.ProtectOn(BootCPU, id, va, perm)
}

// ProtectOn is Protect initiated from the given CPU: that CPU
// invalidates its own stale TLB entry for free, and only other CPUs
// holding the entry are charged a shootdown IPI.
func (m *MMU) ProtectOn(initiator CPUID, id ContextID, va VAddr, perm Perm) error {
	m.cpu(initiator) // validate the initiator up front
	pt, ok := m.pageTableOf(id)
	if !ok {
		return ErrNoContext
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.dead {
		return ErrNoContext
	}
	pte, ok := pt.entries[va.VPN()]
	if !ok || !pte.Valid {
		return &Fault{Kind: FaultNoMapping, Ctx: id, Addr: va}
	}
	pte.Perm = perm
	pt.entries[va.VPN()] = pte
	m.invalidateAll(initiator, id, va.VPN())
	return nil
}

// invalidateAll shoots one page's entry out of every CPU's TLB. Callers
// hold the page table's write lock, which excludes the translation walk
// that could otherwise re-insert a stale entry concurrently.
//
// The initiating CPU invalidates its own entry for free (part of the
// map/unmap/protect instruction sequence), but every REMOTE CPU whose
// TLB actually holds the entry costs an inter-processor interrupt:
// OpTLBShootdown is charged once per such CPU, and the receiving CPU's
// Shootdowns counter records it. CPUs that never cached the page cost
// nothing — the charge partitions exactly across the CPUs that did.
// The *On entry points thread the true initiator through; the
// non-suffixed compatibility forms initiate from the boot CPU. On a
// uniprocessor the remote set is always empty, so single-CPU cost
// baselines are unchanged.
func (m *MMU) invalidateAll(initiator CPUID, id ContextID, vpn uint64) {
	var remote uint64
	for i := range m.cpus {
		c := &m.cpus[i]
		c.mu.Lock()
		if c.tlb.present(id, vpn) {
			c.tlb.invalidate(id, vpn)
			if CPUID(i) != initiator {
				c.tlb.shootdowns++
				remote++
				if probe.Enabled() {
					m.meter.Emit(i, probe.KindShootdownRecv, uint32(id), vpn, 0)
				}
			}
		}
		c.mu.Unlock()
	}
	// The context whose mapping changed pays for the IPIs it caused.
	m.meter.ChargeNFor(uint32(id), clock.OpTLBShootdown, remote)
	if remote > 0 && probe.Enabled() {
		m.meter.Emit(int(initiator), probe.KindShootdownInit, uint32(id), vpn, remote)
	}
}

// Lookup returns the PTE for the page containing va without charging
// any cycles (a debugger's view, not a hardware walk).
func (m *MMU) Lookup(id ContextID, va VAddr) (PTE, bool) {
	pt, ok := m.pageTableOf(id)
	if !ok {
		return PTE{}, false
	}
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	if pt.dead {
		return PTE{}, false
	}
	pte, ok := pt.entries[va.VPN()]
	return pte, ok && pte.Valid
}

// Translate resolves va in context id on the boot CPU.
func (m *MMU) Translate(id ContextID, va VAddr, access Access) (PAddr, error) {
	return m.TranslateOn(BootCPU, id, va, access)
}

// TranslateCurrent resolves va in the boot CPU's active context.
func (m *MMU) TranslateCurrent(va VAddr, access Access) (PAddr, error) {
	return m.TranslateOn(BootCPU, ContextID(m.cpu(BootCPU).current.Load()), va, access)
}

// TranslateOn resolves va in context id for the given access kind on
// one CPU, charging TLB and page-table costs against that CPU's TLB. On
// failure it returns a *Fault. Translation is sharded: a hit touches
// only the CPU's own TLB, and a miss walks the context's page table
// under that context's lock — translations in unrelated contexts, or
// on distinct CPUs, never serialize on a global mutex.
//
//paramecium:hotpath
func (m *MMU) TranslateOn(cpu CPUID, id ContextID, va VAddr, access Access) (PAddr, error) {
	c := m.cpu(cpu)
	pt, ok := m.pageTableOf(id)
	if !ok {
		return 0, &Fault{Kind: FaultBadContext, Ctx: id, Addr: va, Access: access}
	}
	vpn := va.VPN()
	c.mu.Lock()
	if e, hit := c.tlb.lookup(id, vpn); hit {
		frame, perm := e.frame, e.perm
		c.mu.Unlock()
		if !perm.Has(access.perm()) {
			return 0, &Fault{Kind: FaultProtection, Ctx: id, Addr: va, Access: access, Present: perm}
		}
		return PAddr(frame<<PageShift | va.Offset()), nil
	}
	c.mu.Unlock()
	// TLB miss: hardware walk of the page table. The refill is inserted
	// while still holding the table's read lock, so a concurrent
	// Map/Unmap/Protect (write lock + shoot-down) cannot interleave
	// between the walk and the insert and leave a stale TLB entry.
	m.meter.ChargeFor(uint32(id), clock.OpTLBMiss)
	if probe.Enabled() {
		m.meter.Emit(int(cpu), probe.KindTLBMiss, uint32(id), vpn, 0)
	}
	pt.mu.RLock()
	if pt.dead {
		pt.mu.RUnlock()
		return 0, &Fault{Kind: FaultBadContext, Ctx: id, Addr: va, Access: access}
	}
	pte, ok := pt.entries[vpn]
	if !ok || !pte.Valid {
		pt.mu.RUnlock()
		return 0, &Fault{Kind: FaultNoMapping, Ctx: id, Addr: va, Access: access}
	}
	if !pte.Perm.Has(access.perm()) {
		pt.mu.RUnlock()
		return 0, &Fault{Kind: FaultProtection, Ctx: id, Addr: va, Access: access, Present: pte.Perm}
	}
	c.mu.Lock()
	c.tlb.insert(id, vpn, pte.Frame, pte.Perm)
	c.mu.Unlock()
	pt.mu.RUnlock()
	return PAddr(pte.Frame<<PageShift | va.Offset()), nil
}

// FlushTLB empties every CPU's TLB, charging one flush per CPU.
func (m *MMU) FlushTLB() {
	for i := range m.cpus {
		m.FlushTLBOn(CPUID(i))
	}
}

// FlushTLBOn empties one CPU's TLB, charging the flush cost.
func (m *MMU) FlushTLBOn(cpu CPUID) {
	c := m.cpu(cpu)
	c.mu.Lock()
	c.tlb.flush()
	c.mu.Unlock()
	m.meter.Charge(clock.OpTLBFlush)
	if probe.Enabled() {
		m.meter.Emit(int(cpu), probe.KindTLBFlush, uint32(KernelContext), 0, 0)
	}
}

// TLBStats reports hits and misses summed over every CPU (the
// single-CPU view the original experiments read).
func (m *MMU) TLBStats() (hits, misses uint64) {
	for i := range m.cpus {
		s := m.TLBStatsOn(CPUID(i))
		hits += s.Hits
		misses += s.Misses
	}
	return hits, misses
}

// CPUTLBStats is a snapshot of one CPU's TLB counters. (The aggregate
// TLBStats method predates it and keeps its two-value shape.)
type CPUTLBStats struct {
	Hits    uint64
	Misses  uint64
	Flushes uint64
	// Shootdowns counts cross-CPU invalidations this CPU RECEIVED:
	// entries its TLB held that a Map/Unmap/Protect initiated on
	// another CPU had to shoot down, one OpTLBShootdown charge each.
	Shootdowns uint64
	Entries    int // live entries at snapshot time
}

// TLBStatsOn reports one CPU's TLB counters. Each CPU's TLB is private,
// so the stats measure that CPU's own translation locality — disjoint
// from every other CPU's.
func (m *MMU) TLBStatsOn(cpu CPUID) CPUTLBStats {
	c := m.cpu(cpu)
	c.mu.Lock()
	defer c.mu.Unlock()
	return CPUTLBStats{
		Hits:       c.tlb.hits,
		Misses:     c.tlb.misses,
		Flushes:    c.tlb.flushes,
		Shootdowns: c.tlb.shootdowns,
		Entries:    len(c.tlb.entries),
	}
}

// Mappings returns the number of valid mappings in a context.
func (m *MMU) Mappings(id ContextID) int {
	pt, ok := m.pageTableOf(id)
	if !ok {
		return 0
	}
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	return len(pt.entries)
}
