// Parallel: the application domain the Paramecium prototype targeted —
// parallel programming with active messages over pop-up threads (van
// Doorn & Tanenbaum [10]). Incoming "network" messages carry a method
// to invoke on a shared object; each message interrupt becomes a
// proto-thread that runs the handler inline when it can and is
// promoted to a real thread only when the handler must block on the
// shared object's lock.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"paramecium/internal/clock"
	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mmu"
	"paramecium/internal/threads"
)

// Active message opcodes.
const (
	msgAdd   = 1 // add value to the shared accumulator (never blocks)
	msgSync  = 2 // grab the lock, fold in the pending delta (may block)
	msgDrain = 3 // release the lock held by the "long" worker
)

func main() {
	log.SetFlags(0)
	machine := hw.New(hw.Config{PhysFrames: 64})
	sched := threads.NewScheduler(machine.Meter)
	events := event.New(machine, sched)
	nic := hw.NewNIC("net0", 4)
	if err := machine.AttachDevice(nic); err != nil {
		log.Fatal(err)
	}

	// The shared object: an accumulator protected by a thread-package
	// mutex (ordinary component, outside the nucleus).
	var accumulator int64
	var pending int64
	lock := threads.NewMutex(sched)
	gate, err := threads.NewQueue(sched, 1)
	if err != nil {
		log.Fatal(err)
	}

	// A long-running worker holds the lock until a drain message
	// arrives — this is what forces some handlers to block.
	sched.Spawn("long-worker", func(t *threads.Thread) {
		lock.Lock(t)
		gate.Pop(t) // wait for msgDrain
		lock.Unlock(t)
	})
	sched.RunUntilIdle()

	// Active-message dispatcher: NIC interrupt -> proto-thread.
	if err := events.RegisterIRQ(nic.IRQ(), "active-msg", mmu.KernelContext, event.DispatchProto,
		func(f *hw.TrapFrame, t *threads.Thread) {
			regs := nic.IORegion()
			for {
				pendingFrames, _ := regs.ReadReg(hw.NICRegRxPending)
				if pendingFrames == 0 {
					return
				}
				slot, _ := regs.ReadReg(hw.NICRegRxSlot)
				data, err := nic.SlotData(int(slot))
				if err != nil {
					return
				}
				op := data[0]
				val := int64(binary.BigEndian.Uint64(data[1:9]))
				regs.WriteReg(hw.NICRegRxPop, 1)
				switch op {
				case msgAdd:
					// Lock-free fast path: runs to completion on the
					// proto-thread, no real thread ever created.
					pending += val
				case msgSync:
					// Must take the shared lock: if the long worker
					// holds it, this proto-thread is promoted.
					lock.Lock(t)
					accumulator += pending
					pending = 0
					lock.Unlock(t)
				case msgDrain:
					gate.TryPush(struct{}{})
				}
			}
		}); err != nil {
		log.Fatal(err)
	}

	send := func(op byte, val int64) {
		var frame [9]byte
		frame[0] = op
		binary.BigEndian.PutUint64(frame[1:], uint64(val))
		if err := nic.Inject(frame[:]); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 1: a burst of non-blocking adds. Every one should run
	// inline as a proto-thread.
	for i := int64(1); i <= 100; i++ {
		send(msgAdd, i)
	}
	st, _ := events.IRQStats(nic.IRQ())
	fmt.Printf("after 100 add messages: inline=%d promoted=%d (pending=%d)\n",
		st.Inline, st.Promoted, pending)

	// Phase 2: a sync while the lock is held -> promotion.
	send(msgSync, 0)
	st, _ = events.IRQStats(nic.IRQ())
	fmt.Printf("after sync against held lock: inline=%d promoted=%d\n", st.Inline, st.Promoted)

	// Phase 3: drain the long worker; the promoted sync completes
	// under the scheduler with proper thread semantics.
	send(msgDrain, 0)
	sched.RunUntilIdle()
	fmt.Printf("after drain: accumulator=%d (want %d)\n", accumulator, int64(100*101/2))
	if accumulator != 100*101/2 {
		log.Fatal("BUG: lost updates")
	}

	fmt.Printf("\ncost accounting (virtual cycles):\n")
	fmt.Printf("  proto-threads created: %d (%d cycles each)\n",
		machine.Meter.Count(clock.OpProtoThread), machine.Meter.Model.Cost(clock.OpProtoThread))
	fmt.Printf("  promotions:            %d (+%d cycles + thread creation)\n",
		machine.Meter.Count(clock.OpPromote), machine.Meter.Model.Cost(clock.OpPromote))
	fmt.Printf("  full threads created:  %d\n", machine.Meter.Count(clock.OpThreadCreate))
	fmt.Printf("  total: %d cycles for 102 active messages\n", machine.Meter.Clock.Now())
	fmt.Println("\nonly the one blocking handler paid for a real thread — the paper's proto-thread claim")
}
