package analysis

import "testing"

func TestGoldenCounts(t *testing.T) {
	for _, tc := range []struct {
		a    *Analyzer
		dir  string
		want int
	}{
		{ChargePath, "testdata/src/chargepath", 4},
		{LockOrder, "testdata/src/lockorder", 3},
		{HotpathAlloc, "testdata/src/hotpathalloc", 8},
		{AtomicMix, "testdata/src/atomicmix", 2},
		{CPUState, "testdata/src/cpustate", 5},
		{ProbeSafe, "testdata/src/probesafe", 8},
	} {
		pkg, err := sharedLoader(t).LoadDir(tc.dir)
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Run(tc.a, pkg)
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != tc.want {
			t.Errorf("%s: %d findings, want %d:", tc.a.Name, len(diags), tc.want)
			for _, d := range diags {
				t.Errorf("  %s", d)
			}
		}
	}
}
