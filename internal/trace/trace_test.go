package trace

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

var decl = obj.MustInterfaceDecl("svc.v1",
	obj.MethodDecl{Name: "work", NumIn: 1, NumOut: 0},
	obj.MethodDecl{Name: "fail", NumIn: 0, NumOut: 0},
)

func newTarget(meter *clock.Meter) *obj.Object {
	o := obj.New("svc", meter)
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		panic(err)
	}
	bi.MustBind("work", func(args ...any) ([]any, error) {
		// Burn a caller-specified number of cycles.
		meter.Clock.Advance(args[0].(uint64))
		return nil, nil
	}).MustBind("fail", func(...any) ([]any, error) {
		return nil, errors.New("deliberate")
	})
	return o
}

func TestTracerCountsAndTimes(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	target := newTarget(meter)
	tr, err := NewTracer(target, meter)
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := tr.Agent().Iface("svc.v1")
	if !ok {
		t.Fatal("traced interface missing")
	}
	for i := 0; i < 3; i++ {
		if _, err := iv.Invoke("work", uint64(100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := iv.Invoke("fail"); err == nil {
		t.Fatal("fail did not fail")
	}
	st, ok := tr.Stats("svc.v1.work")
	if !ok {
		t.Fatal("no stats for work")
	}
	if st.Calls != 3 || st.Errors != 0 {
		t.Fatalf("work stats = %+v", st)
	}
	if st.Cycles < 300 {
		t.Fatalf("work cycles = %d, want >= 300", st.Cycles)
	}
	st, _ = tr.Stats("svc.v1.fail")
	if st.Calls != 1 || st.Errors != 1 {
		t.Fatalf("fail stats = %+v", st)
	}
	if _, ok := tr.Stats("svc.v1.missing"); ok {
		t.Fatal("phantom stats")
	}
}

func TestTracerTransparency(t *testing.T) {
	// The traced object behaves identically to the original.
	meter := clock.NewMeter(clock.DefaultCosts())
	target := newTarget(meter)
	tr, err := NewTracer(target, meter)
	if err != nil {
		t.Fatal(err)
	}
	agent := tr.Agent()
	if agent.Class() != "svc-tracer" {
		t.Fatalf("class = %q", agent.Class())
	}
	names := agent.InterfaceNames()
	if len(names) != 1 || names[0] != "svc.v1" {
		t.Fatalf("interfaces = %v", names)
	}
	iv, _ := agent.Iface("svc.v1")
	if _, err := iv.Invoke("work", uint64(1), 2); err == nil {
		t.Fatal("arity check lost through tracer")
	}
}

func TestTracerKeysAndReport(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	tr, err := NewTracer(newTarget(meter), meter)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := tr.Agent().Iface("svc.v1")
	iv.Invoke("work", uint64(10))
	iv.Invoke("fail")
	keys := tr.Keys()
	if len(keys) != 2 || keys[0] != "svc.v1.fail" || keys[1] != "svc.v1.work" {
		t.Fatalf("keys = %v", keys)
	}
	rep := tr.Report()
	if !strings.Contains(rep, "svc.v1.work") || !strings.Contains(rep, "svc.v1.fail") {
		t.Fatalf("report:\n%s", rep)
	}
	tr.Reset()
	if len(tr.Keys()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1000} {
		h.Add(v)
	}
	if h.Count != 7 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Max != 1000 {
		t.Fatalf("max = %d", h.Max)
	}
	if h.Mean() < 150 || h.Mean() > 170 {
		t.Fatalf("mean = %f", h.Mean())
	}
	if got := h.Percentile(100); got < 1000 {
		t.Fatalf("p100 = %d", got)
	}
	if got := h.Percentile(10); got > 2 {
		t.Fatalf("p10 = %d", got)
	}
	if h.String() == "" {
		t.Fatal("empty string render")
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(uint64(v))
		}
		last := uint64(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			cur := h.Percentile(p)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	// Huge values saturate in the last bucket.
	if got := bucketOf(1 << 63); got != HistBuckets-1 {
		t.Errorf("bucketOf(2^63) = %d", got)
	}
}
