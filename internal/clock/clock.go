// Package clock provides the virtual time base for the simulated machine.
//
// Every component of the Paramecium reproduction charges work against a
// shared Clock, expressed in cycles of a SPARC-flavoured processor. This
// keeps the benchmark results deterministic: the *shape* of every
// experiment (who wins, where the crossover falls) depends only on the
// cost model, not on the host machine.
package clock

import (
	"fmt"
	"sync/atomic"

	"paramecium/internal/probe"
)

// Clock is a monotonically increasing virtual cycle counter. It is safe
// for concurrent use; all mutation goes through atomic operations.
type Clock struct {
	cycles atomic.Uint64
}

// New returns a Clock starting at cycle zero.
func New() *Clock {
	return &Clock{}
}

// Now reports the current cycle count.
func (c *Clock) Now() uint64 {
	return c.cycles.Load()
}

// Advance adds n cycles to the clock and returns the new time.
func (c *Clock) Advance(n uint64) uint64 {
	return c.cycles.Add(n)
}

// Reset rewinds the clock to zero. Only tests and the benchmark harness
// should call this; live subsystems assume time never goes backwards.
func (c *Clock) Reset() {
	c.cycles.Store(0)
}

// Stopwatch measures an interval on a Clock.
type Stopwatch struct {
	clock *Clock
	start uint64
}

// StartWatch begins an interval measurement.
func (c *Clock) StartWatch() Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports the cycles consumed since the stopwatch started.
func (s Stopwatch) Elapsed() uint64 {
	return s.clock.Now() - s.start
}

// Op identifies a privileged or otherwise costed machine operation.
type Op int

// The costed operations. The set covers every privileged transition the
// paper's mechanisms exercise: trap entry/exit, interrupt dispatch,
// context switches, TLB traffic, page-table walks, cache-line copies and
// the per-check overhead of software fault isolation.
const (
	OpTrapEnter     Op = iota // user→kernel trap entry
	OpTrapExit                // kernel→user return
	OpInterrupt               // interrupt vectoring
	OpCtxSwitch               // MMU context switch
	OpTLBMiss                 // TLB refill from page table
	OpTLBFlush                // full TLB flush
	OpPageFault               // fault decode and dispatch (excl. trap)
	OpCall                    // procedure call overhead
	OpIndirect                // indirect (interface) call overhead
	OpCopyWord                // copy one 8-byte word across domains
	OpSFICheck                // one software fault-isolation check
	OpVMInstr                 // one interpreted PVM instruction
	OpDigestBlock             // digest one 64-byte block
	OpSigVerify               // one public-key signature verification
	OpThreadCreate            // full thread creation
	OpProtoThread             // proto-thread creation (lazy)
	OpPromote                 // proto-thread → real thread promotion
	OpSchedule                // scheduler dispatch decision
	OpNameLookupHop           // one hop in a name-space lookup
	OpBatchEntry              // decode one entry of a vectored cross-domain call
	OpTLBShootdown            // one remote-CPU TLB invalidation IPI
	OpRingPush                // publish one ring record (descriptor + tail bookkeeping)
	OpRingPop                 // consume one ring record (descriptor + head bookkeeping)
	OpDoorbell                // latch a ring doorbell for the consumer
	// OpRemoteFrameAccess is appended after every pre-existing Op so
	// all earlier ordinals — and with them every committed baseline
	// row — stay byte-identical.
	OpRemoteFrameAccess // touch a frame homed on another NUMA node
	opCount
)

var opNames = [...]string{
	OpTrapEnter:     "trap-enter",
	OpTrapExit:      "trap-exit",
	OpInterrupt:     "interrupt",
	OpCtxSwitch:     "ctx-switch",
	OpTLBMiss:       "tlb-miss",
	OpTLBFlush:      "tlb-flush",
	OpPageFault:     "page-fault",
	OpCall:          "call",
	OpIndirect:      "indirect-call",
	OpCopyWord:      "copy-word",
	OpSFICheck:      "sfi-check",
	OpVMInstr:       "vm-instr",
	OpDigestBlock:   "digest-block",
	OpSigVerify:     "sig-verify",
	OpThreadCreate:  "thread-create",
	OpProtoThread:   "proto-thread",
	OpPromote:       "promote",
	OpSchedule:      "schedule",
	OpNameLookupHop: "name-hop",
	OpBatchEntry:    "batch-entry",
	OpTLBShootdown:  "tlb-shootdown",
	OpRingPush:      "ring-push",
	OpRingPop:       "ring-pop",
	OpDoorbell:      "doorbell",

	OpRemoteFrameAccess: "remote-frame-access",
}

// String returns the mnemonic for the operation.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// NumOps is the number of distinct costed operations.
const NumOps = int(opCount)

// CostModel maps each operation to its cost in cycles. A nil or zero
// entry means the operation is free. Cost models are value types; copy
// one, tweak a field, and hand it to a new Machine to run an ablation.
type CostModel struct {
	Costs [NumOps]uint64
}

// DefaultCosts returns the SPARC-flavoured default cost model used by all
// experiments unless a sweep overrides individual entries. The ratios —
// not the absolute values — are what the paper's arguments depend on:
// traps and context switches are two orders of magnitude more expensive
// than procedure calls, and an SFI check costs a handful of cycles on
// every memory reference.
func DefaultCosts() CostModel {
	var m CostModel
	m.Costs[OpTrapEnter] = 120
	m.Costs[OpTrapExit] = 80
	m.Costs[OpInterrupt] = 100
	m.Costs[OpCtxSwitch] = 200
	m.Costs[OpTLBMiss] = 30
	m.Costs[OpTLBFlush] = 90
	m.Costs[OpPageFault] = 60
	m.Costs[OpCall] = 2
	m.Costs[OpIndirect] = 6
	m.Costs[OpCopyWord] = 1
	m.Costs[OpSFICheck] = 4
	m.Costs[OpVMInstr] = 3
	m.Costs[OpDigestBlock] = 48
	m.Costs[OpSigVerify] = 42000
	m.Costs[OpThreadCreate] = 900
	m.Costs[OpProtoThread] = 40
	m.Costs[OpPromote] = 500
	m.Costs[OpSchedule] = 70
	m.Costs[OpNameLookupHop] = 15
	// A vectored call pays the trap and context-switch pair once, then
	// this small decode cost per entry: the slot index, argument base
	// and result base of one entry in the batch frame. Its ratio to
	// OpTrapEnter+OpTrapExit+2*OpCtxSwitch sets the batching break-even.
	m.Costs[OpBatchEntry] = 8
	// Invalidating a page cached in a REMOTE CPU's TLB costs an
	// inter-processor interrupt plus the remote invalidate — paid once
	// per remote CPU that actually holds the entry. On a uniprocessor
	// the remote set is empty and unmap-heavy workloads pay nothing,
	// which is why every pre-multiprocessor baseline is unchanged.
	m.Costs[OpTLBShootdown] = 150
	// Ring bookkeeping is deliberately cheap — a push or pop is a
	// couple of word accesses plus index arithmetic on memory both
	// sides already map, comparable to a procedure call. The control
	// and descriptor words it moves are charged separately as ordinary
	// OpCopyWord memory traffic by the side that touches them.
	m.Costs[OpRingPush] = 2
	m.Costs[OpRingPop] = 2
	// A doorbell latch is a store to the control page plus the
	// interrupt-like prod that makes the consumer look — far cheaper
	// than a full crossing, and paid by the producer ONCE per notified
	// burst, not per record. Its ratio to the vectored-call fixed cost
	// (≈700 cycles) against burst size sets the streaming break-even.
	m.Costs[OpDoorbell] = 40
	// Touching a frame whose home NUMA node differs from the accessing
	// CPU's node pays the interconnect hop: one unit per page-sized
	// chunk of the access, scaled by the topology's node-distance
	// entry. Paid by the side whose CPU issues the access (the toucher
	// pays, exactly like OpCopyWord). The default single-node topology
	// has no remote pairs, so every pre-topology baseline is unchanged.
	m.Costs[OpRemoteFrameAccess] = 100
	return m
}

// Cost reports the cycle cost of one operation.
func (m *CostModel) Cost(op Op) uint64 {
	if op < 0 || int(op) >= NumOps {
		return 0
	}
	return m.Costs[op]
}

// WithCost returns a copy of the model with one entry replaced. Useful
// for parameter sweeps:
//
//	m := clock.DefaultCosts().WithCost(clock.OpTrapEnter, 500)
func (m CostModel) WithCost(op Op, cycles uint64) CostModel {
	if op >= 0 && int(op) < NumOps {
		m.Costs[op] = cycles
	}
	return m
}

// Attribution of charges to protection domains. The clock package
// cannot import the MMU, so domain contexts appear here as their raw
// uint32 ids; KernelDomain mirrors mmu.KernelContext.
const (
	// KernelDomain is the ledger row charges land on when no explicit
	// payer is known: plain Charge/ChargeN, boot-time machinery,
	// teardown sweeps.
	KernelDomain uint32 = 0
	// IdleSlot is the ledger's pseudo-operation slot for clock advances
	// outside any costed operation — the scheduler fast-forwarding
	// virtual time to the next timer deadline. It sits after every real
	// Op ordinal so the two index spaces never collide.
	IdleSlot = NumOps
	// LedgerSlots is the operation-slot count a Meter's ledger needs:
	// every Op plus the idle pseudo-slot.
	LedgerSlots = NumOps + 1
)

// LedgerOpName names a ledger operation slot: Op mnemonics for real
// ordinals, "idle-advance" for the pseudo-slot.
func LedgerOpName(slot int) string {
	if slot == IdleSlot {
		return "idle-advance"
	}
	return Op(slot).String()
}

// Class buckets an operation for the attribution report's cost split:
// protection-crossing machinery, wire-level streaming bookkeeping,
// payload copies, TLB shootdowns, and everything else.
func (o Op) Class() string {
	switch o {
	case OpTrapEnter, OpTrapExit, OpInterrupt, OpCtxSwitch, OpPageFault, OpBatchEntry:
		return "crossing"
	case OpRingPush, OpRingPop, OpDoorbell:
		return "wire"
	case OpCopyWord:
		return "copy"
	case OpTLBShootdown:
		return "shootdown"
	}
	return "other"
}

// LedgerOpClass is Op.Class extended over ledger slots.
func LedgerOpClass(slot int) string {
	if slot == IdleSlot {
		return "other"
	}
	return Op(slot).Class()
}

// probeSink bundles the flight recorder and ledger a tracing-enabled
// Meter feeds. It is installed atomically as one pointer so the
// disabled path stays a single load.
type probeSink struct {
	rec *probe.Recorder
	led *probe.Ledger
}

// Meter couples a Clock with a CostModel and per-operation counters.
// Subsystems hold a *Meter and call Charge for every costed operation.
type Meter struct {
	Clock *Clock
	Model CostModel
	tally [NumOps]atomic.Uint64
	sink  atomic.Pointer[probeSink]
}

// NewMeter builds a Meter over a fresh clock and the given model.
func NewMeter(model CostModel) *Meter {
	return &Meter{Clock: New(), Model: model}
}

// EnableTracing attaches a flight recorder and per-domain ledger to the
// meter and raises the package-level probe gate. From then on every
// charge rolls up into the ledger under its paying domain, and
// instrumented subsystems emit events into the recorder. Pair with
// DisableTracing.
func (m *Meter) EnableTracing(rec *probe.Recorder, led *probe.Ledger) {
	m.sink.Store(&probeSink{rec: rec, led: led})
	probe.Enable()
}

// DisableTracing detaches the meter's recorder and ledger and lowers
// the probe gate raised by EnableTracing. A no-op if tracing was never
// enabled on this meter.
func (m *Meter) DisableTracing() {
	if m.sink.Swap(nil) != nil {
		probe.Disable()
	}
}

// Recorder returns the attached flight recorder, or nil.
func (m *Meter) Recorder() *probe.Recorder {
	if s := m.sink.Load(); s != nil {
		return s.rec
	}
	return nil
}

// Ledger returns the attached per-domain ledger, or nil.
func (m *Meter) Ledger() *probe.Ledger {
	if s := m.sink.Load(); s != nil {
		return s.led
	}
	return nil
}

// Emit records one flight-recorder event stamped with the clock's
// current virtual time, if tracing is enabled on this meter. Call
// sites guard with probe.Enabled() so the disabled path pays only that
// one load — the probesafe analyzer enforces the guard.
//
//paramecium:hotpath
func (m *Meter) Emit(cpu int, kind probe.Kind, domain uint32, a, b uint64) {
	if !probe.Enabled() {
		return
	}
	if s := m.sink.Load(); s != nil && s.rec != nil {
		s.rec.Emit(cpu, m.Clock.Now(), kind, domain, a, b)
	}
}

// Charge advances the clock by the cost of op and counts the event,
// attributed to the kernel domain.
func (m *Meter) Charge(op Op) {
	m.ChargeNFor(KernelDomain, op, 1)
}

// ChargeN charges n occurrences of op at once, attributed to the
// kernel domain.
func (m *Meter) ChargeN(op Op, n uint64) {
	m.ChargeNFor(KernelDomain, op, n)
}

// ChargeFor charges one occurrence of op, attributing its cycles to
// the paying domain's ledger row when tracing is enabled.
func (m *Meter) ChargeFor(payer uint32, op Op) {
	m.ChargeNFor(payer, op, 1)
}

// ChargeNFor charges n occurrences of op at once, attributing the
// cycles to payer. Subsystems that know the responsible domain — the
// proxy's caller, the context touching memory, the context whose
// mapping a shootdown serves — use this form; the plain forms bill the
// kernel.
func (m *Meter) ChargeNFor(payer uint32, op Op, n uint64) {
	if n == 0 {
		return
	}
	c := m.Model.Cost(op)
	if c != 0 {
		m.Clock.Advance(c * n)
	}
	if op >= 0 && int(op) < NumOps {
		m.tally[op].Add(n)
	}
	if probe.Enabled() {
		if s := m.sink.Load(); s != nil && s.led != nil {
			s.led.Add(payer, int(op), c*n, n)
		}
	}
}

// AdvanceAttributed advances the clock by n cycles outside any costed
// operation — the scheduler fast-forwarding to a timer deadline — and
// attributes them to the kernel row's idle pseudo-slot, so an enabled
// ledger's total still equals the clock. Returns the new time.
func (m *Meter) AdvanceAttributed(n uint64) uint64 {
	t := m.Clock.Advance(n)
	if n != 0 && probe.Enabled() {
		if s := m.sink.Load(); s != nil && s.led != nil {
			s.led.Add(KernelDomain, IdleSlot, n, 1)
		}
	}
	return t
}

// Count reports how many times op has been charged.
func (m *Meter) Count(op Op) uint64 {
	if op < 0 || int(op) >= NumOps {
		return 0
	}
	return m.tally[op].Load()
}

// ResetCounts zeroes the per-operation counters (the clock keeps
// running; virtual time is monotonic).
func (m *Meter) ResetCounts() {
	for i := range m.tally {
		m.tally[i].Store(0)
	}
}

// Snapshot returns a copy of all counters, indexed by Op.
func (m *Meter) Snapshot() [NumOps]uint64 {
	var out [NumOps]uint64
	for i := range m.tally {
		out[i] = m.tally[i].Load()
	}
	return out
}
