// Tests and a runnable example for the shared-memory segment surface:
// the zero-copy bulk data plane. Like api_test.go, this file imports
// only the public paramecium and paramecium/api packages.
package paramecium_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"paramecium"
	"paramecium/api"
)

// ExampleDomain_NewSegment shows the zero-copy handshake: a producer
// domain creates a segment and fills it, grants it read-only to a
// consumer domain, and passes the grant across a call as a single
// capability word. The consumer attaches the segment and reads the
// payload in place — no byte of it ever crosses the invocation plane.
func ExampleDomain_NewSegment() {
	sys, err := paramecium.Boot()
	if err != nil {
		panic(err)
	}
	producer := sys.NewDomain("producer")
	consumer := sys.NewDomain("consumer")

	// The consumer exports a service that accepts a grant ref.
	decl := api.MustInterfaceDecl("example.sink.v1",
		api.MethodDecl{Name: "consume", NumIn: 2, NumOut: 1})
	sink := sys.NewObject("sink")
	bi, err := sink.AddInterface(decl, nil)
	if err != nil {
		panic(err)
	}
	bi.MustBind("consume", func(args ...any) ([]any, error) {
		ref, n := args[0].(api.GrantRef), args[1].(int)
		att, err := sys.AttachGrant(ref) // map, don't copy
		if err != nil {
			return nil, err
		}
		data := make([]byte, n)
		if err := att.Load(0, data); err != nil {
			return nil, err
		}
		return []any{string(data)}, nil
	})
	if err := consumer.Register("/services/sink", sink); err != nil {
		panic(err)
	}

	// The producer shares four pages and sends only the capability.
	seg, err := producer.NewSegment(4)
	if err != nil {
		panic(err)
	}
	payload := []byte("sixteen kilobytes of bulk data, one word on the wire")
	if err := seg.Store(0, payload); err != nil {
		panic(err)
	}
	ref, err := seg.Grant(consumer, api.RO)
	if err != nil {
		panic(err)
	}
	consume, err := producer.Bind("/services/sink")
	if err != nil {
		panic(err)
	}
	res, err := consume.Invoke("example.sink.v1", "consume", ref, len(payload))
	if err != nil {
		panic(err)
	}
	fmt.Printf("consumed %d bytes in place: %q...\n", len(res[0].(string)), res[0].(string)[:13])
	// Output: consumed 52 bytes in place: "sixteen kilob"...
}

// TestSegmentZeroCopyCheaperThanCopying asserts the cost-model claim
// behind the whole subsystem. Copying 16 KiB through a call charges a
// copy word per 8 payload bytes ON TOP of the crossing, every time,
// whether or not the consumer needed every byte. Sharing a segment
// charges the capability word and the mapping machinery; the payload
// is then the consumer's own memory — it touches what it uses (here, a
// descriptor header, the classic network-stack pattern) and pays its
// own memory traffic for exactly that, never an invocation-plane copy.
func TestSegmentZeroCopyCheaperThanCopying(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	producer := sys.NewDomain("producer")
	consumer := sys.NewDomain("consumer")
	const size = 16 << 10

	decl := api.MustInterfaceDecl("bench.sink.v1",
		api.MethodDecl{Name: "copy", NumIn: 1, NumOut: 1},
		api.MethodDecl{Name: "share", NumIn: 1, NumOut: 1})
	sink := sys.NewObject("sink")
	bi, err := sink.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both paths do the same work: validate the frame's 8-byte header.
	bi.MustBind("copy", func(args ...any) ([]any, error) {
		return []any{args[0].([]byte)[0]}, nil
	})
	var hdr [8]byte
	bi.MustBind("share", func(args ...any) ([]any, error) {
		att, err := sys.AttachGrant(args[0].(api.GrantRef))
		if err != nil {
			return nil, err
		}
		if err := att.Load(0, hdr[:]); err != nil {
			return nil, err
		}
		return []any{hdr[0]}, nil
	})
	if err := consumer.Register("/services/sink", sink); err != nil {
		t.Fatal(err)
	}
	h, err := producer.Bind("/services/sink")
	if err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte{0x5A}, size)
	seg, err := producer.NewSegment(size / 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Store(0, payload); err != nil {
		t.Fatal(err)
	}
	ref, err := seg.Grant(consumer, api.RO)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 8
	before := sys.Cycles()
	for i := 0; i < rounds; i++ {
		if res, err := h.Invoke("bench.sink.v1", "copy", payload); err != nil || res[0].(byte) != 0x5A {
			t.Fatalf("copy round %d: (%v, %v)", i, res, err)
		}
	}
	copyCost := (sys.Cycles() - before) / rounds

	before = sys.Cycles()
	for i := 0; i < rounds; i++ {
		if res, err := h.Invoke("bench.sink.v1", "share", ref); err != nil || res[0].(byte) != 0x5A {
			t.Fatalf("share round %d: (%v, %v)", i, res, err)
		}
	}
	shareCost := (sys.Cycles() - before) / rounds

	// Per delivery, the copy path pays size/8 = 2048 words the share
	// path never does; both pay the same crossing. Require the share
	// path to win by at least 2x (it wins by ~3.5x here; the batched
	// P6 benchmark pushes this past 4x by amortizing the crossing).
	if 2*shareCost >= copyCost {
		t.Fatalf("share cost %d/op not clearly below copy cost %d/op for %d bytes", shareCost, copyCost, size)
	}
}

// TestSegmentRevocationIsObservable: revoking a grant cuts the
// consumer off with the distinct ErrSegmentRevoked — not a generic
// lookup failure — and destroying the producer domain revokes
// everything it ever granted.
func TestSegmentRevocationIsObservable(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	producer := sys.NewDomain("producer")
	consumer := sys.NewDomain("consumer")
	seg, err := producer.NewSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := seg.Grant(consumer, api.RW)
	if err != nil {
		t.Fatal(err)
	}
	att, err := seg.Map(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := att.Store(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := seg.Revoke(ref); err != nil {
		t.Fatal(err)
	}
	if err := att.Store(0, []byte{2}); !errors.Is(err, api.ErrSegmentRevoked) {
		t.Fatalf("store after revoke = %v, want ErrSegmentRevoked", err)
	}
	if _, err := sys.AttachGrant(ref); !errors.Is(err, api.ErrSegmentRevoked) {
		t.Fatalf("re-attach after revoke = %v, want ErrSegmentRevoked", err)
	}
	// Forged refs are a different failure.
	if _, err := sys.AttachGrant(ref + 1); !errors.Is(err, api.ErrNoGrant) {
		t.Fatalf("forged ref = %v, want ErrNoGrant", err)
	}

	// Owner teardown revokes outstanding grants wholesale.
	ref2, err := seg.Grant(consumer, api.RO)
	if err != nil {
		t.Fatal(err)
	}
	att2, err := sys.AttachGrant(ref2)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := att2.Load(0, make([]byte, 1)); !errors.Is(err, api.ErrSegmentRevoked) {
		t.Fatalf("load after owner destroy = %v, want ErrSegmentRevoked", err)
	}
}

// TestSegmentScopedCapabilities: the public Segment.Revoke and
// Segment.Map refuse a ref issued for a different segment — a mixed-up
// variable cannot revoke or map a grant the caller never meant to
// touch. System.AttachGrant remains the unscoped form.
func TestSegmentScopedCapabilities(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	owner := sys.NewDomain("owner")
	grantee := sys.NewDomain("grantee")
	segA, err := owner.NewSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	segB, err := owner.NewSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := segB.Grant(grantee, api.RW)
	if err != nil {
		t.Fatal(err)
	}
	if err := segA.Revoke(refB); !errors.Is(err, api.ErrNoGrant) {
		t.Fatalf("segA.Revoke(refOfB) = %v, want ErrNoGrant", err)
	}
	if _, err := segA.Map(refB); !errors.Is(err, api.ErrNoGrant) {
		t.Fatalf("segA.Map(refOfB) = %v, want ErrNoGrant", err)
	}
	// The grant is untouched and still maps through its own segment.
	if _, err := segB.Map(refB); err != nil {
		t.Fatalf("segB.Map after mixed-up calls: %v", err)
	}
}

// TestSegmentRightsEnforced: an RO attachment refuses stores.
func TestSegmentRightsEnforced(t *testing.T) {
	sys, err := paramecium.Boot()
	if err != nil {
		t.Fatal(err)
	}
	owner := sys.NewDomain("owner")
	reader := sys.NewDomain("reader")
	seg, err := owner.NewSegment(1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := seg.Grant(reader, api.RO)
	if err != nil {
		t.Fatal(err)
	}
	att, err := sys.AttachGrant(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := att.Store(0, []byte{1}); !errors.Is(err, api.ErrSegmentReadOnly) {
		t.Fatalf("store through RO grant = %v, want ErrSegmentReadOnly", err)
	}
	if err := att.Load(0, make([]byte, 1)); err != nil {
		t.Fatalf("load through RO grant: %v", err)
	}
}
