// Package shm is the shared-memory segment subsystem: the zero-copy
// bulk data plane between protection domains. Paramecium's contexts
// "communicate through shared memory and events"; the invocation plane
// (package proxy) carries control transfers and small argument lists,
// while this package carries the bulk bytes — a domain creates a
// segment of refcounted physical frames, grants it to another domain
// with rights, the grantee maps it into its own MMU context, and the
// data never crosses the invocation plane at all.
//
// The capability discipline mirrors the paper's memory service:
//
//   - A grant is an unforgeable 64-bit reference (GrantRef) addressed
//     to one grantee context with RO or RW rights. Refs are drawn from
//     a 64-bit space, so they can cross the invocation plane as a
//     single capability word and cannot be guessed by enumeration.
//   - Attaching maps the segment's frames into the grantee's context
//     through the memory service's refcounted share path; the cost
//     model charges the mapping machinery (page-table writes, later
//     TLB fills and shootdowns), never the payload bytes.
//   - Revocation unmaps the segment from the grantee's context,
//     paying the per-remote-CPU TLB shootdown charge for every page a
//     remote CPU still held cached, and leaves a tombstone so later
//     attaches and accesses fail with the distinct ErrRevoked rather
//     than a generic lookup error.
//   - Destroying a protection domain condemns it here via the same
//     teardown sweep that kills its names and proxies: grants TO the
//     dying domain are revoked, segments it OWNS are destroyed
//     (revoking their grants in every other domain), and no fresh
//     mapping can appear once the sweep has run.
package shm

import (
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/clock"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/probe"
)

// Rights is the access a grant confers on a segment.
type Rights uint8

// Grant rights. RO maps the segment read-only in the grantee; RW maps
// it read-write. The owner always has read-write access.
const (
	RO Rights = iota
	RW
)

func (r Rights) String() string {
	if r == RO {
		return "ro"
	}
	return "rw"
}

// perm translates grant rights into MMU page protections.
func (r Rights) perm() mmu.Perm {
	if r == RW {
		return mmu.PermRead | mmu.PermWrite
	}
	return mmu.PermRead
}

// Errors.
var (
	// ErrNoGrant reports a reference that names no grant this registry
	// ever issued — a forged or mistyped capability.
	ErrNoGrant = errors.New("shm: no such grant")
	// ErrRevoked reports an operation on a revoked grant: the segment
	// was unmapped from the grantee (or its owner destroyed it, or a
	// domain teardown swept it). Distinct from ErrNoGrant so a grantee
	// can tell "my access was withdrawn" from "this ref was never real".
	ErrRevoked = errors.New("shm: grant revoked")
	// ErrWrongDomain reports a grant presented by (or delivered to) a
	// domain other than its grantee. Grants are not transferable.
	ErrWrongDomain = errors.New("shm: grant addressed to another domain")
	// ErrCondemned reports an attach into a domain that is being
	// destroyed: no fresh mapping may appear once teardown has begun.
	ErrCondemned = errors.New("shm: domain being destroyed")
	// ErrDestroyed reports an operation on a destroyed segment.
	ErrDestroyed = errors.New("shm: segment destroyed")
	// ErrReadOnly reports a store through a read-only grant.
	ErrReadOnly = errors.New("shm: grant is read-only")
	// ErrBounds reports an access outside the segment.
	ErrBounds = errors.New("shm: access outside segment")
)

// SegmentID names a segment within its registry.
type SegmentID uint64

// GrantRef is the unforgeable capability naming one grant. It is a
// plain 64-bit word, so it crosses the invocation plane as a single
// copied word — the whole point of the zero-copy path: the capability
// crosses, the data does not. The zero ref is never issued.
type GrantRef uint64

// Registry brokers segments and grants over one memory service. All
// methods are safe for concurrent use; one mutex serializes the
// control plane (create/grant/attach/revoke — none of which are
// per-byte operations). The data plane (Attachment and Segment
// Load/Store) never touches the registry lock: each grant and each
// segment carries its own access lock, held shared for the duration
// of a copy — pinning the mapping so a racing revoke cannot free the
// frames out from under it — and exclusively by revocation. Bulk
// transfers over unrelated grants proceed fully in parallel.
type Registry struct {
	svc *mem.Service

	mu        sync.Mutex
	rnd       *clock.Rand
	segs      map[SegmentID]*Segment
	grants    map[GrantRef]*Grant
	condemned map[mmu.ContextID]struct{}
	nextSeg   uint64
	// tombs lists revoked grants still held in the grants map so later
	// presentations of their refs fail ErrRevoked rather than ErrNoGrant,
	// oldest first. Retention is bounded: a tombstone is dropped when its
	// segment is destroyed (the whole object is gone) or when the list
	// exceeds maxTombs (the oldest is evicted). A dropped tombstone's ref
	// reports ErrNoGrant — indistinguishable from a forged ref, the same
	// degradation a real capability system accepts when it recycles
	// revocation state.
	tombs    []GrantRef
	maxTombs int
}

// DefaultMaxTombstones bounds how many revoked-grant tombstones a
// registry retains for better error reporting before evicting the
// oldest.
const DefaultMaxTombstones = 1024

// NewRegistry builds a segment registry brokering over svc.
func NewRegistry(svc *mem.Service) *Registry {
	return &Registry{
		svc:       svc,
		rnd:       clock.NewRand(0x5E6_4EF5),
		segs:      make(map[SegmentID]*Segment),
		grants:    make(map[GrantRef]*Grant),
		condemned: make(map[mmu.ContextID]struct{}),
		maxTombs:  DefaultMaxTombstones,
	}
}

// SetMaxTombstones adjusts the tombstone retention cap. A cap of zero
// retains nothing: revoked refs immediately report ErrNoGrant.
func (r *Registry) SetMaxTombstones(n int) {
	if n < 0 {
		n = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxTombs = n
	r.evictTombsLocked()
}

// Tombstones reports how many revoked-grant tombstones the registry
// currently retains.
func (r *Registry) Tombstones() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tombs)
}

// Grants reports the total number of grant records the registry holds:
// live grants plus retained tombstones. Bounded churn keeps this from
// growing monotonically.
func (r *Registry) Grants() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.grants)
}

// Segment is N pages of refcounted shared frames owned by one
// protection domain. The owner reads and writes it directly (Load and
// Store below); other domains reach it only through grants.
type Segment struct {
	reg   *Registry
	id    SegmentID
	owner mmu.ContextID
	base  mmu.VAddr
	pages int

	// accessMu pins the owner-side mapping during Load/Store (held
	// shared) against Destroy (held exclusive, under reg.mu), so a
	// teardown cannot release frames under an in-flight copy.
	// destroyed is written under both locks, readable under either.
	accessMu  sync.RWMutex
	destroyed bool

	// Guarded by reg.mu.
	grants map[GrantRef]*Grant
}

// Grant is the right of one grantee context to map one segment. It is
// named by an unforgeable GrantRef; the struct itself stays inside the
// registry — only the ref crosses domains.
type Grant struct {
	reg    *Registry
	ref    GrantRef
	seg    *Segment
	to     mmu.ContextID
	rights Rights

	// accessMu pins the grantee-side mapping during Attachment
	// Load/Store (held shared) against revocation (held exclusive,
	// under reg.mu): an in-flight copy completes before the frames are
	// unmapped and unreferenced, so a racing revoke can never expose a
	// recycled frame to a stale copy. revoked is written under both
	// locks, readable under either.
	accessMu sync.RWMutex
	revoked  bool

	// Guarded by reg.mu.
	mapped bool
	base   mmu.VAddr // grantee-side base when mapped
	att    *Attachment
}

// Attachment is a grantee's live mapping of a segment. Load and Store
// access the shared frames through the grantee's own MMU context —
// translations, TLB traffic and protection faults are all charged on
// the grantee's side, exactly as if the grantee touched the memory
// itself (it is).
type Attachment struct {
	g *Grant
}

// NewSegment creates a segment of n pages owned by ctx: fresh zeroed
// frames, mapped read-write at a kernel-chosen base in the owner's
// address space.
func (r *Registry) NewSegment(owner mmu.ContextID, pages int) (*Segment, error) {
	if pages <= 0 {
		return nil, errors.New("shm: segment needs at least one page")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dead := r.condemned[owner]; dead {
		return nil, fmt.Errorf("%w: context %d", ErrCondemned, owner)
	}
	base := r.svc.ReserveVA(owner, pages)
	for i := 0; i < pages; i++ {
		va := base + mmu.VAddr(i*mmu.PageSize)
		if err := r.svc.AllocPage(owner, va, mmu.PermRead|mmu.PermWrite); err != nil {
			for j := 0; j < i; j++ {
				_ = r.svc.FreePage(owner, base+mmu.VAddr(j*mmu.PageSize))
			}
			r.svc.ReleaseVA(owner, base, pages)
			return nil, fmt.Errorf("shm: segment page %d of %d: %w", i, pages, err)
		}
	}
	r.nextSeg++
	s := &Segment{
		reg:    r,
		id:     SegmentID(r.nextSeg),
		owner:  owner,
		base:   base,
		pages:  pages,
		grants: make(map[GrantRef]*Grant),
	}
	r.segs[s.id] = s
	return s, nil
}

// ID reports the segment's identifier.
func (s *Segment) ID() SegmentID { return s.id }

// Owner reports the owning protection domain.
func (s *Segment) Owner() mmu.ContextID { return s.owner }

// Base reports the owner-side base address.
func (s *Segment) Base() mmu.VAddr { return s.base }

// Pages reports the segment's length in pages.
func (s *Segment) Pages() int { return s.pages }

// Size reports the segment's length in bytes.
func (s *Segment) Size() int { return s.pages * mmu.PageSize }

// Grant issues a new grant of the segment to a grantee context with
// the given rights, returning the grant. Pass Grant.Ref() across the
// invocation plane (one capability word); the grantee attaches with
// Registry.Attach.
func (s *Segment) Grant(to mmu.ContextID, rights Rights) (*Grant, error) {
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.destroyed {
		return nil, ErrDestroyed
	}
	if _, dead := r.condemned[to]; dead {
		return nil, fmt.Errorf("%w: context %d", ErrCondemned, to)
	}
	var ref GrantRef
	for {
		ref = GrantRef(r.rnd.Uint64())
		if ref != 0 && r.grants[ref] == nil {
			break
		}
	}
	g := &Grant{reg: r, ref: ref, seg: s, to: to, rights: rights}
	r.grants[ref] = g
	s.grants[ref] = g
	return g, nil
}

// Ref returns the grant's unforgeable capability reference.
func (g *Grant) Ref() GrantRef { return g.ref }

// Grantee reports the context the grant is addressed to.
func (g *Grant) Grantee() mmu.ContextID { return g.to }

// Rights reports the access the grant confers.
func (g *Grant) Rights() Rights { return g.rights }

// Revoke withdraws the grant; see Registry.Revoke.
func (g *Grant) Revoke() error { return g.reg.Revoke(g.ref) }

// Revoked reports whether the grant has been withdrawn (including by a
// CondemnDomain sweep of the grantee). The granting side polls this to
// learn the grantee is gone — the ring protocol reads it as hangup.
func (g *Grant) Revoked() bool {
	g.accessMu.RLock()
	defer g.accessMu.RUnlock()
	return g.revoked
}

// RevokeFrom withdraws the grant, initiating shootdowns from the given
// CPU; see Registry.RevokeFrom.
func (g *Grant) RevokeFrom(initiator mmu.CPUID) error { return g.reg.RevokeFrom(initiator, g.ref) }

// Attach maps the granted segment into the grantee's MMU context and
// returns the attachment. The mapping shares the segment's refcounted
// frames — no byte is copied; the cost model charges the map machinery
// and later TLB traffic, not the payload. Attaching an already-mapped
// grant returns the existing attachment. Attaching into a domain being
// destroyed fails with ErrCondemned, a revoked grant with ErrRevoked,
// and a ref the registry never issued with ErrNoGrant.
func (r *Registry) Attach(ref GrantRef) (*Attachment, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.grants[ref]
	if g == nil {
		return nil, ErrNoGrant
	}
	return r.attachLocked(g)
}

// attachLocked maps one validated grant. Caller holds r.mu. The
// grant-attach flight-recorder event is stamped on the boot CPU:
// attach runs on the nucleus' control plane, not a particular CPU.
func (r *Registry) attachLocked(g *Grant) (*Attachment, error) {
	if g.revoked {
		return nil, ErrRevoked
	}
	if _, dead := r.condemned[g.to]; dead {
		return nil, fmt.Errorf("%w: context %d", ErrCondemned, g.to)
	}
	if g.mapped {
		return g.att, nil
	}
	base := r.svc.ReserveVA(g.to, g.seg.pages)
	for i := 0; i < g.seg.pages; i++ {
		off := mmu.VAddr(i * mmu.PageSize)
		if err := r.svc.SharePage(g.seg.owner, g.seg.base+off, g.to, base+off, g.rights.perm()); err != nil {
			for j := 0; j < i; j++ {
				_ = r.svc.FreePage(g.to, base+mmu.VAddr(j*mmu.PageSize))
			}
			r.svc.ReleaseVA(g.to, base, g.seg.pages)
			return nil, fmt.Errorf("shm: attach page %d of %d: %w", i, g.seg.pages, err)
		}
	}
	g.mapped, g.base = true, base
	g.att = &Attachment{g: g}
	if probe.Enabled() {
		m := r.svc.Machine().Meter
		m.Emit(int(mmu.BootCPU), probe.KindGrantAttach, uint32(g.to), uint64(g.seg.id), uint64(g.seg.pages))
	}
	return g.att, nil
}

// Attach is Registry.Attach scoped to this segment: a ref naming
// another segment's grant is rejected with ErrNoGrant, so a caller
// holding several segments cannot map the wrong one through a
// mixed-up ref.
func (s *Segment) Attach(ref GrantRef) (*Attachment, error) {
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.grants[ref]
	if g == nil || g.seg != s {
		return nil, ErrNoGrant
	}
	return r.attachLocked(g)
}

// Revoke is Registry.Revoke scoped to this segment: a ref naming
// another segment's grant is rejected with ErrNoGrant rather than
// silently revoking a grant the caller never meant to touch. Shootdowns
// initiate from the boot CPU; see RevokeFrom.
func (s *Segment) Revoke(ref GrantRef) error {
	return s.RevokeFrom(mmu.BootCPU, ref)
}

// RevokeFrom is Revoke initiated from the given CPU: the unmap sweep
// charges TLB shootdowns only for OTHER CPUs that still held the
// grantee-side pages cached, exactly as if the revoking domain's thread
// ran the unmaps on its own processor.
func (s *Segment) RevokeFrom(initiator mmu.CPUID, ref GrantRef) error {
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.grants[ref]
	if g == nil || g.seg != s {
		return ErrNoGrant
	}
	if g.revoked {
		return ErrRevoked
	}
	r.revokeLocked(initiator, g)
	return nil
}

// CheckDeliverable reports whether ref names a live grant addressed to
// the given context — the validation the cross-domain proxy applies to
// grant capability words before paying for the crossing: a forged ref
// fails ErrNoGrant, a withdrawn one ErrRevoked, and a grant addressed
// to some other domain ErrWrongDomain (grants are not transferable, so
// delivering one to the wrong domain is always a caller bug).
func (r *Registry) CheckDeliverable(ref GrantRef, to mmu.ContextID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.grants[ref]
	switch {
	case g == nil:
		return ErrNoGrant
	case g.revoked:
		return ErrRevoked
	case g.to != to:
		return fmt.Errorf("%w: granted to context %d, delivered to %d", ErrWrongDomain, g.to, to)
	}
	return nil
}

// Revoke withdraws a grant: the segment is unmapped from the grantee's
// context (paying the per-remote-CPU TLB shootdown charge for every
// page a remote CPU still held cached), its frames are unreferenced,
// and the grant becomes a tombstone — later attaches and accesses fail
// with ErrRevoked. Revoking an already-revoked grant reports
// ErrRevoked; an unknown ref, ErrNoGrant. Shootdowns initiate from the
// boot CPU; see RevokeFrom.
func (r *Registry) Revoke(ref GrantRef) error {
	return r.RevokeFrom(mmu.BootCPU, ref)
}

// RevokeFrom is Revoke initiated from the given CPU: the unmap sweep
// charges TLB shootdowns only for OTHER CPUs that still held the
// grantee-side pages cached, exactly as if the revoking domain's thread
// ran the unmaps on its own processor.
func (r *Registry) RevokeFrom(initiator mmu.CPUID, ref GrantRef) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.grants[ref]
	if g == nil {
		return ErrNoGrant
	}
	if g.revoked {
		return ErrRevoked
	}
	r.revokeLocked(initiator, g)
	return nil
}

// revokeLocked unmaps and tombstones one grant. Caller holds r.mu.
// The grant's access lock is taken exclusively around the unmap, so an
// in-flight Attachment copy (which holds it shared) finishes against
// the still-live mapping before the frames are released — the revoke
// waits out at most one copy, never exposes a recycled frame.
func (r *Registry) revokeLocked(initiator mmu.CPUID, g *Grant) {
	g.accessMu.Lock()
	if g.mapped {
		for i := 0; i < g.seg.pages; i++ {
			// FreePageOn unmaps (charging shootdowns for pages other CPUs
			// still held cached) and drops the frame reference. Errors are
			// ignored: during domain teardown the grantee context may
			// already be partially gone, and the tombstone below is what
			// matters.
			_ = r.svc.FreePageOn(initiator, g.to, g.base+mmu.VAddr(i*mmu.PageSize))
		}
		r.svc.ReleaseVA(g.to, g.base, g.seg.pages)
	}
	g.mapped = false
	g.revoked = true
	g.accessMu.Unlock()
	delete(g.seg.grants, g.ref)
	r.tombLocked(g.ref)
	if probe.Enabled() {
		m := r.svc.Machine().Meter
		m.Emit(int(initiator), probe.KindGrantRevoke, uint32(g.to), uint64(g.seg.id), uint64(g.seg.pages))
	}
}

// tombLocked records a fresh tombstone and evicts the oldest past the
// retention cap. Caller holds r.mu.
func (r *Registry) tombLocked(ref GrantRef) {
	r.tombs = append(r.tombs, ref)
	r.evictTombsLocked()
}

// evictTombsLocked drops the oldest tombstones until the retention cap
// is respected. Caller holds r.mu.
func (r *Registry) evictTombsLocked() {
	for len(r.tombs) > r.maxTombs {
		old := r.tombs[0]
		r.tombs = r.tombs[1:]
		// Only drop the record if it is still a tombstone (never a live
		// reissued ref — refs are unique, but stay defensive).
		if g, ok := r.grants[old]; ok && g.revoked {
			delete(r.grants, old)
		}
	}
}

// Destroy revokes every grant of the segment (unmapping it from every
// grantee, shootdown charges included), unmaps and unreferences the
// owner's pages, and tombstones the segment. Shootdowns initiate from
// the boot CPU; see DestroyFrom.
func (s *Segment) Destroy() error {
	return s.DestroyFrom(mmu.BootCPU)
}

// DestroyFrom is Destroy initiated from the given CPU: every unmap in
// the teardown sweep charges TLB shootdowns only for OTHER CPUs that
// still held the pages cached.
func (s *Segment) DestroyFrom(initiator mmu.CPUID) error {
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.destroyed {
		return ErrDestroyed
	}
	r.destroyLocked(initiator, s)
	return nil
}

// destroyLocked tears one segment down. Caller holds r.mu. The
// segment's access lock excludes in-flight owner-side copies exactly
// as revokeLocked excludes grantee-side ones. The segment's retained
// grant tombstones are swept with it: once the segment object is gone
// its refs report ErrNoGrant, and the registry stops paying for them.
func (r *Registry) destroyLocked(initiator mmu.CPUID, s *Segment) {
	for _, g := range s.grants {
		r.revokeLocked(initiator, g)
	}
	s.accessMu.Lock()
	for i := 0; i < s.pages; i++ {
		_ = r.svc.FreePageOn(initiator, s.owner, s.base+mmu.VAddr(i*mmu.PageSize))
	}
	r.svc.ReleaseVA(s.owner, s.base, s.pages)
	s.destroyed = true
	s.accessMu.Unlock()
	delete(r.segs, s.id)
	r.sweepTombsLocked(s)
}

// sweepTombsLocked reclaims every tombstone whose grant belonged to the
// destroyed segment. Caller holds r.mu.
func (r *Registry) sweepTombsLocked(s *Segment) {
	kept := r.tombs[:0]
	for _, ref := range r.tombs {
		if g, ok := r.grants[ref]; ok && g.seg == s {
			delete(r.grants, ref)
			continue
		}
		kept = append(kept, ref)
	}
	r.tombs = kept
}

// CondemnDomain begins the domain's shared-memory teardown: the
// context is marked condemned (all future NewSegment, Grant and Attach
// involving it fail), every grant addressed to it is revoked, and
// every segment it owns is destroyed — revoking those segments' grants
// in every other domain too. It runs under the same registry lock that
// Attach maps under, so a racing attach either completes first and is
// revoked here, or observes the condemn and fails: when CondemnDomain
// returns, the dying domain holds no segment mapping and never will
// again. The kernel invokes it from the proxy factory's CloseTarget
// sweep, so one DestroyDomain quiesces calls and mappings together.
// Teardown shootdowns are initiated from the boot CPU; use
// CondemnDomainFrom to charge them to the true initiator.
func (r *Registry) CondemnDomain(ctx mmu.ContextID) {
	r.CondemnDomainFrom(mmu.BootCPU, ctx)
}

// CondemnDomainFrom is CondemnDomain initiated from the given CPU, so
// the teardown sweep's unmaps charge shootdowns from the perspective of
// the CPU actually running the teardown. The kernel's DestroyDomain
// path runs on the boot CPU and uses the compatibility form.
func (r *Registry) CondemnDomainFrom(initiator mmu.CPUID, ctx mmu.ContextID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.condemned[ctx] = struct{}{}
	for _, g := range r.grants {
		if g.to == ctx && !g.revoked {
			r.revokeLocked(initiator, g)
		}
	}
	var owned []*Segment
	for _, s := range r.segs {
		if s.owner == ctx {
			owned = append(owned, s)
		}
	}
	for _, s := range owned {
		r.destroyLocked(initiator, s)
	}
}

// AbsolveDomain forgets a condemned context, bounding the condemned
// set for kernels that churn domains. Only safe once the MMU context
// no longer exists: from then on every map into it fails at the MMU,
// so the condemn gate is redundant.
func (r *Registry) AbsolveDomain(ctx mmu.ContextID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.condemned, ctx)
}

// Segments reports the number of live segments.
func (r *Registry) Segments() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.segs)
}

// bounds validates an [off, off+n) access against a segment size.
func bounds(off, n, size int) error {
	if off < 0 || n < 0 || off+n > size {
		return fmt.Errorf("%w: [%d, %d) of %d bytes", ErrBounds, off, off+n, size)
	}
	return nil
}

// Load copies from the segment (owner side) into buf.
func (s *Segment) Load(off int, buf []byte) error {
	return s.access(off, buf, false)
}

// Store copies buf into the segment (owner side).
func (s *Segment) Store(off int, buf []byte) error {
	return s.access(off, buf, true)
}

// access is the owner-side bulk data plane. Copies translate through
// the boot CPU: the segment API carries no initiator, so the charge
// lands on the shared boot TLB — an acknowledged single-CPU-era
// choice; an initiator-carrying segment API is the topology follow-up.
//
//paramecium:hotpath
func (s *Segment) access(off int, buf []byte, write bool) error {
	// Data plane: the segment's own access lock, never the registry's —
	// owner-side copies of unrelated segments run fully in parallel,
	// and Destroy (exclusive) waits out an in-flight copy rather than
	// freeing frames under it.
	s.accessMu.RLock()
	defer s.accessMu.RUnlock()
	if s.destroyed {
		return ErrDestroyed
	}
	if err := bounds(off, len(buf), s.Size()); err != nil {
		return err
	}
	machine := s.reg.svc.Machine()
	if write {
		return machine.Store(s.owner, s.base+mmu.VAddr(off), buf)
	}
	return machine.Load(s.owner, s.base+mmu.VAddr(off), buf)
}

// Base reports the grantee-side base address of the mapping.
func (a *Attachment) Base() mmu.VAddr { return a.g.base }

// Size reports the attached segment's length in bytes.
func (a *Attachment) Size() int { return a.g.seg.pages * mmu.PageSize }

// Rights reports the access the underlying grant confers.
func (a *Attachment) Rights() Rights { return a.g.rights }

// Revoked reports whether the attachment's grant has been revoked.
func (a *Attachment) Revoked() bool {
	a.g.accessMu.RLock()
	defer a.g.accessMu.RUnlock()
	return a.g.revoked
}

// Load copies from the attached segment into buf through the
// grantee's MMU context. A revoked attachment fails with ErrRevoked —
// the distinct "your access was withdrawn" error, not a lookup fault.
func (a *Attachment) Load(off int, buf []byte) error {
	return a.access(off, buf, false)
}

// Store copies buf into the attached segment. Read-only attachments
// fail with ErrReadOnly before touching the MMU.
func (a *Attachment) Store(off int, buf []byte) error {
	return a.access(off, buf, true)
}

// access is the grantee-side bulk data plane. As on the owner side,
// copies translate through the boot CPU: the attachment API carries no
// initiator — an acknowledged single-CPU-era choice; an
// initiator-carrying form is the topology follow-up.
//
//paramecium:hotpath
func (a *Attachment) access(off int, buf []byte, write bool) error {
	g := a.g
	// Data plane: the grant's own access lock, never the registry's —
	// copies over unrelated grants run fully in parallel. Holding it
	// shared pins the mapping: a concurrent revoke (exclusive) waits
	// for the copy to finish before unmapping and releasing frames, so
	// a stale copy can never read a recycled frame; once revoked is
	// visible here, the access fails with the distinct error.
	g.accessMu.RLock()
	defer g.accessMu.RUnlock()
	if g.revoked {
		return ErrRevoked
	}
	if write && g.rights != RW {
		return ErrReadOnly
	}
	if err := bounds(off, len(buf), a.Size()); err != nil {
		return err
	}
	machine := g.reg.svc.Machine()
	if write {
		return machine.Store(g.to, g.base+mmu.VAddr(off), buf)
	}
	return machine.Load(g.to, g.base+mmu.VAddr(off), buf)
}
