// Package paramecium is a reproduction, in Go, of "Paramecium: an
// extensible object-based kernel" (van Doorn, Homburg, Tanenbaum;
// HotOS-V, 1995), with a public embedding API over it.
//
// The public surface is this package plus paramecium/api. Boot
// assembles a System — the nucleus, the simulated machine and the
// root of the hierarchical name space — configured by functional
// options (WithAuthority, WithMachine). Components are objects
// exporting named interfaces ("methods, state pointers and type
// information", api.InterfaceDecl); they are registered under paths
// and late-bound by name from protection Domains, which receive
// Handles — over the object itself in-domain, over a page-fault
// driven proxy across domains.
//
// Invocation follows the bind-once/invoke-many pattern the paper's
// late binding implies: Handle.Resolve (or api.Invoker.Resolve)
// pre-binds a method to an api.MethodHandle that dispatches by slot
// index, with no per-call name lookup or lock; the string-keyed
// Invoke remains as a compatibility path. Both validate argument and
// result arity against the interface's type information.
//
// The implementation lives under internal/: the simulated machine
// (hw, mmu, clock), the object architecture (obj), the name space
// (names), the nucleus services wired together by core, the thread
// package with proto-thread pop-up threads (threads), cross-domain
// proxies (proxy), shared-memory segments and the streaming ring
// protocol over them (shm, ring — see Domain.NewRing and
// Handle.Coalesce), the PVM bytecode with its SFI rewriter (sandbox),
// drivers and a protocol stack (drivers, netstack), a virtual-memory
// extension (vmm), the component repository (repoz), the
// monolithic-kernel baseline (baseline), monitoring tools (trace) and
// the experiment harness (bench).
//
// The invariants the design leans on are enforced statically by
// paralint (internal/analysis, run by CI as cmd/paralint): every raw
// byte movement in the data planes is dominated by a clock charge,
// the documented mutex ranks are never inverted, fields accessed via
// sync/atomic are never accessed plainly, and per-CPU state is only
// reached through a blessed CPU identity. Functions on the invocation
// or data fast path carry the //paramecium:hotpath directive in their
// doc comment, which holds them to hotpathalloc's zero-allocation
// rules — annotate any new fast-path function the same way.
//
// See README.md for a package tour and a quickstart that uses only
// the public API, and ARCHITECTURE.md for the layer diagram, the full
// virtual-cycle cost table, the ring wire format and the documented
// lock ranks.
package paramecium
