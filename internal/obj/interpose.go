package obj

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
)

// Interposer is an interposing agent in the sense of Jones [3] as used
// by the paper: an object that "exports a superset of the original
// object's interfaces, reimplements those methods it sees fit and
// forwards the others to the original object". Replacing an object
// handle in the name space with an interposer transparently puts the
// agent on every future binding — the basis of the paper's monitoring
// and debugging tools.
//
// Like the name space, the interposer is copy-on-write: calls read an
// atomically published immutable snapshot of the wrap set, meter and
// extra interfaces, so the invocation path takes no lock no matter how
// many goroutines share it. Wrap, SetMeter and AddExtraInterface
// serialize among themselves and publish a new snapshot; a mutation
// made at any time — before or after Iface or Resolve — is observed by
// the very next call.
type Interposer struct {
	class  string
	target Instance

	state atomic.Pointer[ipState]
	wmu   sync.Mutex // serializes mutations
}

// ipState is one immutable snapshot of the interposer's configuration.
type ipState struct {
	meter  *clock.Meter
	wraps  map[string]map[string]WrapFunc // iface -> method -> wrapper
	extras map[string]Invoker             // additional interfaces (the superset part)
}

// WrapFunc reimplements one method. next invokes the original
// implementation, so a wrapper can run code before and after, modify
// arguments or results, or suppress the call entirely.
type WrapFunc func(next Method, args ...any) ([]any, error)

// NewInterposer wraps target. The interposer initially forwards
// everything; use Wrap and AddExtraInterface to specialize it.
func NewInterposer(class string, target Instance) *Interposer {
	ip := &Interposer{class: class, target: target}
	ip.state.Store(&ipState{
		wraps:  map[string]map[string]WrapFunc{},
		extras: map[string]Invoker{},
	})
	return ip
}

// Target returns the wrapped instance.
func (ip *Interposer) Target() Instance { return ip.target }

// SetMeter makes the interposer charge one indirect-call cost per
// invocation passing through it, so interposition layers are visible
// in virtual time (experiment T1).
func (ip *Interposer) SetMeter(m *clock.Meter) {
	ip.wmu.Lock()
	defer ip.wmu.Unlock()
	st := *ip.state.Load()
	st.meter = m
	ip.state.Store(&st)
}

// Class implements Instance.
func (ip *Interposer) Class() string { return ip.class }

// Wrap reimplements one method of one interface of the target.
func (ip *Interposer) Wrap(ifaceName, method string, w WrapFunc) error {
	target, ok := ip.target.Iface(ifaceName)
	if !ok {
		return fmt.Errorf("%w: target %q has no %q", ErrNoInterface, ip.target.Class(), ifaceName)
	}
	if _, ok := target.Decl().Method(method); !ok {
		return fmt.Errorf("%w: %q.%s", ErrNoMethod, ifaceName, method)
	}
	ip.wmu.Lock()
	defer ip.wmu.Unlock()
	st := *ip.state.Load()
	wraps := make(map[string]map[string]WrapFunc, len(st.wraps)+1)
	for n, m := range st.wraps {
		wraps[n] = m
	}
	methods := make(map[string]WrapFunc, len(wraps[ifaceName])+1)
	for n, f := range wraps[ifaceName] {
		methods[n] = f
	}
	methods[method] = w
	wraps[ifaceName] = methods
	st.wraps = wraps
	ip.state.Store(&st)
	return nil
}

// AddExtraInterface exports an interface the target does not have —
// the "superset" in the paper's definition (e.g. a measurement
// interface on a wrapped RPC object).
func (ip *Interposer) AddExtraInterface(iv Invoker) error {
	name := iv.Decl().Name
	if _, ok := ip.target.Iface(name); ok {
		return fmt.Errorf("obj: %q already exported by target; use Wrap", name)
	}
	ip.wmu.Lock()
	defer ip.wmu.Unlock()
	st := *ip.state.Load()
	if _, dup := st.extras[name]; dup {
		return fmt.Errorf("obj: extra interface %q already added", name)
	}
	extras := make(map[string]Invoker, len(st.extras)+1)
	for n, e := range st.extras {
		extras[n] = e
	}
	extras[name] = iv
	st.extras = extras
	ip.state.Store(&st)
	return nil
}

// InterfaceNames implements Instance: the union of the target's
// interfaces and the extras, sorted.
func (ip *Interposer) InterfaceNames() []string {
	names := ip.target.InterfaceNames()
	for n := range ip.state.Load().extras {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Iface implements Instance.
func (ip *Interposer) Iface(name string) (Invoker, bool) {
	if extra, ok := ip.state.Load().extras[name]; ok {
		return extra, true
	}
	target, ok := ip.target.Iface(name)
	if !ok {
		return nil, false
	}
	return &interposedIface{ip: ip, name: name, target: target}, true
}

// interposedIface presents one interface of the target with wrappers
// applied. Unwrapped methods forward directly. It keeps no wrap-set
// snapshot of its own: every call loads the interposer's current
// state — one atomic load, no lock — so a Wrap or SetMeter installed
// at any time is observed by the very next call, from any goroutine.
type interposedIface struct {
	ip     *Interposer
	name   string
	target Invoker
}

func (ii *interposedIface) Decl() *InterfaceDecl { return ii.target.Decl() }
func (ii *interposedIface) State() any           { return ii.target.State() }

func (ii *interposedIface) Invoke(method string, args ...any) ([]any, error) {
	st := ii.ip.state.Load()
	if st.meter != nil {
		st.meter.Charge(clock.OpIndirect)
	}
	if w, ok := st.wraps[ii.name][method]; ok {
		next := func(a ...any) ([]any, error) {
			return ii.target.Invoke(method, a...)
		}
		return w(next, args...)
	}
	return ii.target.Invoke(method, args...)
}

// Resolve implements Invoker. The target's handle is resolved once,
// so repeated calls pay neither the interposer's nor the target's
// name lookup; the wrapper is looked up per call from the same state
// Invoke consults, so a Wrap installed after Resolve is observed by
// live handles exactly as it is by string invocation.
func (ii *interposedIface) Resolve(method string) (MethodHandle, error) {
	th, err := ii.target.Resolve(method)
	if err != nil {
		return MethodHandle{}, err
	}
	return MethodHandle{decl: th.decl, call: func(args ...any) ([]any, error) {
		st := ii.ip.state.Load()
		if st.meter != nil {
			st.meter.Charge(clock.OpIndirect)
		}
		if w, ok := st.wraps[ii.name][method]; ok {
			return w(th.Call, args...)
		}
		return th.call(args...)
	}}, nil
}

var _ Instance = (*Interposer)(nil)
var _ Invoker = (*interposedIface)(nil)
