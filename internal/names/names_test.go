package names

import (
	"errors"
	"testing"
	"testing/quick"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

func inst(class string) obj.Instance { return obj.New(class, nil) }

func TestSplitAndClean(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"/shared/network", "/shared/network"},
		{"shared/network", "/shared/network"},
		{"//shared///network/", "/shared/network"},
		{"/", "/"},
		{"", "/"},
		{"/a/./b", "/a/b"},
	}
	for _, c := range cases {
		got, err := Clean(c.in)
		if err != nil {
			t.Errorf("Clean(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := Clean("/a/../b"); !errors.Is(err, ErrBadPath) {
		t.Errorf("dotdot: %v", err)
	}
	if _, err := Clean("/a\x00b"); !errors.Is(err, ErrBadPath) {
		t.Errorf("NUL: %v", err)
	}
}

func TestJoin(t *testing.T) {
	if got := Join("shared", "network"); got != "/shared/network" {
		t.Errorf("Join = %q", got)
	}
	if got := Join("/a/", "/b/"); got != "/a/b" {
		t.Errorf("Join = %q", got)
	}
}

func TestRegisterBind(t *testing.T) {
	s := NewSpace(nil)
	net := inst("netdriver")
	if err := s.Register("/shared/network", net); err != nil {
		t.Fatal(err)
	}
	got, err := s.Bind("/shared/network")
	if err != nil {
		t.Fatal(err)
	}
	if got != net {
		t.Fatal("bound wrong instance")
	}
	// Normalized path variants resolve identically.
	got2, err := s.Bind("shared//network/")
	if err != nil || got2 != net {
		t.Fatalf("normalized bind = %v, %v", got2, err)
	}
}

func TestRegisterErrors(t *testing.T) {
	s := NewSpace(nil)
	if err := s.Register("/x", nil); !errors.Is(err, ErrBadPath) {
		t.Fatalf("nil instance: %v", err)
	}
	if err := s.Register("/", inst("a")); !errors.Is(err, ErrBadPath) {
		t.Fatalf("root: %v", err)
	}
	if err := s.Register("/a", inst("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("/a", inst("b")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	// A leaf cannot be used as a directory.
	if err := s.Register("/a/b", inst("c")); !errors.Is(err, ErrNotDir) {
		t.Fatalf("leaf as dir: %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	s := NewSpace(nil)
	if _, err := s.Bind("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if err := s.Register("/d/leaf", inst("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("dir: %v", err)
	}
	if _, err := s.Bind("/d/leaf/deeper"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("through leaf: %v", err)
	}
	if _, err := s.Bind("/"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("root: %v", err)
	}
}

func TestReplaceInterposes(t *testing.T) {
	s := NewSpace(nil)
	orig := inst("netdriver")
	if err := s.Register("/shared/network", orig); err != nil {
		t.Fatal(err)
	}
	agent := obj.NewInterposer("monitor", orig)
	prev, err := s.Replace("/shared/network", agent)
	if err != nil {
		t.Fatal(err)
	}
	if prev != orig {
		t.Fatal("Replace returned wrong previous instance")
	}
	got, err := s.Bind("/shared/network")
	if err != nil {
		t.Fatal(err)
	}
	if got != obj.Instance(agent) {
		t.Fatal("bind did not return interposer")
	}
}

func TestReplaceErrors(t *testing.T) {
	s := NewSpace(nil)
	if _, err := s.Replace("/none", inst("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if err := s.Register("/d/leaf", inst("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Replace("/d", inst("y")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("dir: %v", err)
	}
	if _, err := s.Replace("/d/leaf", nil); !errors.Is(err, ErrBadPath) {
		t.Fatalf("nil: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	s := NewSpace(nil)
	if err := s.Register("/a/b", inst("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("/a"); err == nil {
		t.Fatal("removed non-empty directory")
	}
	if err := s.Unregister("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind("/a/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after unregister: %v", err)
	}
	// Now the empty directory can be removed.
	if err := s.Unregister("/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double: %v", err)
	}
	if err := s.Unregister("/"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("root: %v", err)
	}
}

func TestList(t *testing.T) {
	s := NewSpace(nil)
	for _, p := range []string{"/svc/net", "/svc/disk", "/svc/sub/x"} {
		if err := s.Register(p, inst(p)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.List("/svc")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"disk", "net", "sub/"}
	if len(got) != len(want) {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
	if _, err := s.List("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if _, err := s.List("/svc/net"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("leaf: %v", err)
	}
	root, err := s.List("/")
	if err != nil || len(root) != 1 || root[0] != "svc/" {
		t.Fatalf("root list = %v, %v", root, err)
	}
}

func TestWalk(t *testing.T) {
	s := NewSpace(nil)
	paths := []string{"/a/x", "/a/y", "/b"}
	for _, p := range paths {
		if err := s.Register(p, inst(p)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	if err := s.Walk(func(p string, _ obj.Instance) error {
		seen = append(seen, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != "/a/x" || seen[1] != "/a/y" || seen[2] != "/b" {
		t.Fatalf("walk order = %v", seen)
	}
	// Walk propagates the callback error.
	sentinel := errors.New("stop")
	if err := s.Walk(func(string, obj.Instance) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("walk error: %v", err)
	}
}

func TestBindChargesHopsPerComponent(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	s := NewSpace(meter)
	if err := s.Register("/a/b/c/d", inst("deep")); err != nil {
		t.Fatal(err)
	}
	meter.ResetCounts()
	if _, err := s.Bind("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpNameLookupHop); got != 4 {
		t.Fatalf("hops = %d, want 4", got)
	}
}

func TestViewInheritsParent(t *testing.T) {
	s := NewSpace(nil)
	net := inst("net")
	if err := s.Register("/services/net", net); err != nil {
		t.Fatal(err)
	}
	root := RootView(s)
	child := root.Child().Child() // two levels of inheritance
	got, err := child.Bind("/services/net")
	if err != nil || got != net {
		t.Fatalf("inherited bind = %v, %v", got, err)
	}
}

func TestViewOverride(t *testing.T) {
	s := NewSpace(nil)
	real := inst("net")
	fake := inst("mocknet")
	if err := s.Register("/services/net", real); err != nil {
		t.Fatal(err)
	}
	root := RootView(s)
	child := root.Child()
	if err := child.Override("/services/net", fake); err != nil {
		t.Fatal(err)
	}
	// Child sees the override.
	got, err := child.Bind("/services/net")
	if err != nil || got != fake {
		t.Fatalf("child bind = %v, %v", got, err)
	}
	// The root view and the space are untouched.
	got, err = root.Bind("/services/net")
	if err != nil || got != real {
		t.Fatalf("root bind = %v, %v", got, err)
	}
	// A grandchild inherits the override.
	got, err = child.Child().Bind("/services/net")
	if err != nil || got != fake {
		t.Fatalf("grandchild bind = %v, %v", got, err)
	}
}

func TestViewOverrideShadowsParentOverride(t *testing.T) {
	s := NewSpace(nil)
	if err := s.Register("/x", inst("base")); err != nil {
		t.Fatal(err)
	}
	a, b := inst("a"), inst("b")
	parent := RootView(s).Child()
	if err := parent.Override("/x", a); err != nil {
		t.Fatal(err)
	}
	child := parent.Child()
	if err := child.Override("/x", b); err != nil {
		t.Fatal(err)
	}
	got, _ := child.Bind("/x")
	if got != b {
		t.Fatal("child override did not shadow parent's")
	}
}

func TestViewAlias(t *testing.T) {
	s := NewSpace(nil)
	debug := inst("net-debug")
	if err := s.Register("/services/net", inst("net")); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("/services/net-debug", debug); err != nil {
		t.Fatal(err)
	}
	v := RootView(s).Child()
	if err := v.Alias("/services/net", "/services/net-debug"); err != nil {
		t.Fatal(err)
	}
	got, err := v.Bind("/services/net")
	if err != nil || got != debug {
		t.Fatalf("aliased bind = %v, %v", got, err)
	}
	if err := v.Alias("/a", "/a"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("self alias: %v", err)
	}
}

func TestViewAliasCycleDetected(t *testing.T) {
	s := NewSpace(nil)
	v := RootView(s).Child()
	if err := v.Alias("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if err := v.Alias("/b", "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Bind("/a"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("cycle: %v", err)
	}
}

func TestViewClearOverride(t *testing.T) {
	s := NewSpace(nil)
	real := inst("real")
	if err := s.Register("/x", real); err != nil {
		t.Fatal(err)
	}
	v := RootView(s).Child()
	if err := v.Override("/x", inst("fake")); err != nil {
		t.Fatal(err)
	}
	if err := v.ClearOverride("/x"); err != nil {
		t.Fatal(err)
	}
	got, _ := v.Bind("/x")
	if got != real {
		t.Fatal("override still active after clear")
	}
	if err := v.ClearOverride("/x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double clear: %v", err)
	}
	// Clearing an alias works too.
	if err := v.Alias("/x", "/y"); err != nil {
		t.Fatal(err)
	}
	if err := v.ClearOverride("/x"); err != nil {
		t.Fatal(err)
	}
}

func TestViewOverridesListing(t *testing.T) {
	s := NewSpace(nil)
	v := RootView(s).Child()
	if err := v.Override("/b", inst("x")); err != nil {
		t.Fatal(err)
	}
	if err := v.Alias("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	got := v.Overrides()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("Overrides = %v", got)
	}
}

func TestViewOverrideValidation(t *testing.T) {
	v := RootView(NewSpace(nil))
	if err := v.Override("/x", nil); !errors.Is(err, ErrBadPath) {
		t.Fatalf("nil: %v", err)
	}
	if err := v.Override("/", inst("x")); !errors.Is(err, ErrBadPath) {
		t.Fatalf("root: %v", err)
	}
}

func TestBindInterface(t *testing.T) {
	s := NewSpace(nil)
	o := obj.New("ctr", nil)
	decl := obj.MustInterfaceDecl("i.v1", obj.MethodDecl{Name: "f", NumIn: 0, NumOut: 0})
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	called := false
	bi.MustBind("f", func(...any) ([]any, error) { called = true; return nil, nil })
	if err := s.Register("/o", o); err != nil {
		t.Fatal(err)
	}
	v := RootView(s)
	iv, err := v.BindInterface("/o", "i.v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iv.Invoke("f"); err != nil || !called {
		t.Fatalf("invoke: %v, called=%v", err, called)
	}
	if _, err := v.BindInterface("/o", "missing"); !errors.Is(err, obj.ErrNoInterface) {
		t.Fatalf("missing iface: %v", err)
	}
	if _, err := v.BindInterface("/missing", "i.v1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing path: %v", err)
	}
}

// Property: register-then-bind returns the same instance for any
// well-formed path.
func TestRegisterBindProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		s := NewSpace(nil)
		p := Join("d"+string(rune('a'+a%26)), "leaf"+string(rune('a'+b%26)))
		x := inst(p)
		if err := s.Register(p, x); err != nil {
			return false
		}
		got, err := s.Bind(p)
		return err == nil && got == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: view overrides never leak into the parent view.
func TestOverrideIsolationProperty(t *testing.T) {
	f := func(n uint8) bool {
		s := NewSpace(nil)
		base := inst("base")
		if err := s.Register("/svc", base); err != nil {
			return false
		}
		root := RootView(s)
		views := make([]*View, 0, int(n%8)+1)
		for i := 0; i <= int(n%8); i++ {
			v := root.Child()
			if err := v.Override("/svc", inst("override")); err != nil {
				return false
			}
			views = append(views, v)
		}
		got, err := root.Bind("/svc")
		if err != nil || got != base {
			return false
		}
		for _, v := range views {
			got, err := v.Bind("/svc")
			if err != nil || got == base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
