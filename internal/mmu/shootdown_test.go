package mmu

import (
	"testing"

	"paramecium/internal/clock"
)

// fillTLB translates va on the given CPUs so each of their TLBs caches
// the page, then returns the meter's shootdown count at that point.
func fillTLB(t *testing.T, m *MMU, ctx ContextID, va VAddr, cpus ...CPUID) {
	t.Helper()
	for _, cpu := range cpus {
		if _, err := m.TranslateOn(cpu, ctx, va, AccessRead); err != nil {
			t.Fatalf("TranslateOn(cpu %d): %v", cpu, err)
		}
	}
}

// TestShootdownChargePartitionsExactly maps one page, caches it in a
// strict subset of the machine's TLBs, and asserts that Unmap charges
// OpTLBShootdown once per REMOTE CPU that held the entry — no charge
// for the initiating (boot) CPU's own invalidation, none for CPUs that
// never cached the page — and that the per-CPU Shootdowns counters
// record exactly which CPUs received an IPI.
func TestShootdownChargePartitionsExactly(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	m := New(meter, Config{CPUs: 4})
	ctx := m.NewContext()
	va := VAddr(0x4000)
	if err := m.Map(ctx, va, 7, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}

	// CPUs 0 (the initiator), 1 and 2 cache the page; CPU 3 never does.
	fillTLB(t, m, ctx, va, 0, 1, 2)

	before := meter.Count(clock.OpTLBShootdown)
	cyclesBefore := meter.Clock.Now()
	if err := m.Unmap(ctx, va); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 2 {
		t.Fatalf("shootdowns charged = %d, want 2 (CPUs 1 and 2 held the entry; CPU 0 is the initiator, CPU 3 never cached it)", got)
	}
	wantCycles := 2 * meter.Model.Cost(clock.OpTLBShootdown)
	if got := meter.Clock.Now() - cyclesBefore; got != wantCycles {
		t.Fatalf("Unmap advanced the clock by %d cycles, want %d (two shootdowns)", got, wantCycles)
	}
	for cpu, want := range map[CPUID]uint64{0: 0, 1: 1, 2: 1, 3: 0} {
		if got := m.TLBStatsOn(cpu).Shootdowns; got != want {
			t.Errorf("CPU %d Shootdowns = %d, want %d", cpu, got, want)
		}
	}
}

// TestShootdownLocalOnlyIsFree asserts that unmapping a page cached
// only in the initiating CPU's own TLB charges nothing: the local
// invalidation is part of the unmap itself, not an IPI.
func TestShootdownLocalOnlyIsFree(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	m := New(meter, Config{CPUs: 4})
	ctx := m.NewContext()
	va := VAddr(0x4000)
	if err := m.Map(ctx, va, 7, PermRead); err != nil {
		t.Fatal(err)
	}
	fillTLB(t, m, ctx, va, BootCPU)
	before := meter.Count(clock.OpTLBShootdown)
	if err := m.Unmap(ctx, va); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 0 {
		t.Fatalf("shootdowns charged = %d, want 0 (only the initiator held the entry)", got)
	}
}

// TestShootdownOnProtectAndRemap asserts Protect and a re-Map pay the
// same remote-invalidation charge as Unmap: any PTE change must evict
// remote cached copies.
func TestShootdownOnProtectAndRemap(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	m := New(meter, Config{CPUs: 2})
	ctx := m.NewContext()
	va := VAddr(0x8000)
	if err := m.Map(ctx, va, 3, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}

	fillTLB(t, m, ctx, va, 1)
	before := meter.Count(clock.OpTLBShootdown)
	if err := m.Protect(ctx, va, PermRead); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 1 {
		t.Fatalf("Protect charged %d shootdowns, want 1", got)
	}

	fillTLB(t, m, ctx, va, 1)
	before = meter.Count(clock.OpTLBShootdown)
	if err := m.Map(ctx, va, 9, PermRead); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 1 {
		t.Fatalf("re-Map charged %d shootdowns, want 1", got)
	}
	if got := m.TLBStatsOn(1).Shootdowns; got != 2 {
		t.Fatalf("CPU 1 Shootdowns = %d, want 2", got)
	}
}

// TestShootdownInitiatorPerspective is the regression test for the
// boot-CPU-initiator bug: an unmap initiated ON the CPU that holds the
// entry must be free (local invalidation), while the same unmap
// initiated from the boot CPU must pay one IPI — the charge depends on
// who initiates, not on a hard-wired boot-CPU perspective.
func TestShootdownInitiatorPerspective(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	m := New(meter, Config{CPUs: 2})
	ctx := m.NewContext()
	va := VAddr(0x4000)
	if err := m.MapOn(1, ctx, va, 7, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}

	// Only CPU 1 caches the page. Unmapping FROM CPU 1 is free.
	fillTLB(t, m, ctx, va, 1)
	before := meter.Count(clock.OpTLBShootdown)
	if err := m.UnmapOn(1, ctx, va); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 0 {
		t.Fatalf("UnmapOn(1) charged %d shootdowns, want 0 (initiator held the only copy)", got)
	}
	if got := m.TLBStatsOn(1).Shootdowns; got != 0 {
		t.Fatalf("CPU 1 Shootdowns = %d, want 0 (it initiated)", got)
	}

	// Same topology, but the unmap initiates from the boot CPU: CPU 1
	// is now remote and must receive one IPI.
	if err := m.MapOn(1, ctx, va, 7, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	fillTLB(t, m, ctx, va, 1)
	before = meter.Count(clock.OpTLBShootdown)
	if err := m.Unmap(ctx, va); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 1 {
		t.Fatalf("boot-initiated Unmap charged %d shootdowns, want 1", got)
	}
	if got := m.TLBStatsOn(1).Shootdowns; got != 1 {
		t.Fatalf("CPU 1 Shootdowns = %d, want 1", got)
	}
}

// TestProtectOnInitiator mirrors the initiator test for ProtectOn.
func TestProtectOnInitiator(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	m := New(meter, Config{CPUs: 2})
	ctx := m.NewContext()
	va := VAddr(0x8000)
	if err := m.Map(ctx, va, 3, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	fillTLB(t, m, ctx, va, 1)
	before := meter.Count(clock.OpTLBShootdown)
	if err := m.ProtectOn(1, ctx, va, PermRead); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 0 {
		t.Fatalf("ProtectOn(1) charged %d shootdowns, want 0 (initiator held the only copy)", got)
	}
}

// TestDestroyContextChargesTeardownShootdowns asserts context teardown
// is no longer free on a multiprocessor: each REMOTE CPU whose TLB
// still held entries for the dying context costs one OpTLBShootdown
// (one context-wide invalidation IPI, however many entries it held),
// the initiator and CPUs that never cached the context cost nothing,
// and receiving CPUs record the IPI in their Shootdowns counter.
func TestDestroyContextChargesTeardownShootdowns(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	m := New(meter, Config{CPUs: 4})
	ctx := m.NewContext()
	va1, va2 := VAddr(0x4000), VAddr(0x9000)
	if err := m.Map(ctx, va1, 7, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(ctx, va2, 8, PermRead); err != nil {
		t.Fatal(err)
	}

	// CPU 0 (the initiator) and CPU 1 cache both pages; CPU 2 caches
	// one; CPU 3 none. Teardown must charge exactly 2 IPIs: one for
	// CPU 1 (despite holding two entries) and one for CPU 2.
	fillTLB(t, m, ctx, va1, 0, 1, 2)
	fillTLB(t, m, ctx, va2, 0, 1)

	before := meter.Count(clock.OpTLBShootdown)
	cyclesBefore := meter.Clock.Now()
	if err := m.DestroyContext(ctx); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 2 {
		t.Fatalf("DestroyContext charged %d shootdowns, want 2 (CPUs 1 and 2 held entries)", got)
	}
	wantCycles := 2 * meter.Model.Cost(clock.OpTLBShootdown)
	if got := meter.Clock.Now() - cyclesBefore; got != wantCycles {
		t.Fatalf("DestroyContext advanced the clock by %d cycles, want %d", got, wantCycles)
	}
	for cpu, want := range map[CPUID]uint64{0: 0, 1: 1, 2: 1, 3: 0} {
		if got := m.TLBStatsOn(cpu).Shootdowns; got != want {
			t.Errorf("CPU %d Shootdowns = %d, want %d", cpu, got, want)
		}
	}
}

// TestDestroyContextFromInitiator asserts the initiator's own held
// entries never cost an IPI during teardown.
func TestDestroyContextFromInitiator(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	m := New(meter, Config{CPUs: 2})
	ctx := m.NewContext()
	va := VAddr(0x4000)
	if err := m.Map(ctx, va, 7, PermRead); err != nil {
		t.Fatal(err)
	}
	// Only CPU 1 caches the page; destroying FROM CPU 1 is free.
	fillTLB(t, m, ctx, va, 1)
	before := meter.Count(clock.OpTLBShootdown)
	if err := m.DestroyContextFrom(1, ctx); err != nil {
		t.Fatal(err)
	}
	if got := meter.Count(clock.OpTLBShootdown) - before; got != 0 {
		t.Fatalf("DestroyContextFrom(1) charged %d shootdowns, want 0", got)
	}
}

// TestDestroyContextUniprocessorFree pins the single-CPU baseline:
// teardown on a uniprocessor charges nothing, exactly as before the
// teardown-shootdown charge existed.
func TestDestroyContextUniprocessorFree(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	m := New(meter, Config{CPUs: 1})
	ctx := m.NewContext()
	va := VAddr(0x4000)
	if err := m.Map(ctx, va, 7, PermRead); err != nil {
		t.Fatal(err)
	}
	fillTLB(t, m, ctx, va, BootCPU)
	cyclesBefore := meter.Clock.Now()
	if err := m.DestroyContext(ctx); err != nil {
		t.Fatal(err)
	}
	if got := meter.Clock.Now() - cyclesBefore; got != 0 {
		t.Fatalf("uniprocessor DestroyContext advanced the clock by %d cycles, want 0", got)
	}
}
