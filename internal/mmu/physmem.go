package mmu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrOutOfMemory is returned when no physical frames are free.
var ErrOutOfMemory = errors.New("mmu: out of physical memory")

// ErrBadFrame is returned for operations on frames that were never
// allocated or are out of range.
var ErrBadFrame = errors.New("mmu: bad frame")

// PhysMem is the simulated physical memory: an array of frames with a
// free list. Frame contents are byte-addressable through Read/Write,
// which the machine uses after a successful translation.
type PhysMem struct {
	mu       sync.Mutex
	frames   [][]byte
	free     []uint64
	refcount []int // shared pages carry a reference count

	// nodes is each frame's home NUMA node, NoNode when untagged.
	// Atomic (not under mu) so the access hot path can consult a
	// frame's home without taking the physical-memory lock.
	nodes []atomic.Int32
}

// NoNode marks a frame with no home NUMA node: accesses to it are
// never charged as remote, whatever the machine topology.
const NoNode int32 = -1

// NewPhysMem builds a physical memory of nframes frames.
func NewPhysMem(nframes int) *PhysMem {
	p := &PhysMem{
		frames:   make([][]byte, nframes),
		free:     make([]uint64, 0, nframes),
		refcount: make([]int, nframes),
		nodes:    make([]atomic.Int32, nframes),
	}
	// Push frames so that low frame numbers are handed out first,
	// keeping experiment output stable across runs.
	for i := nframes - 1; i >= 0; i-- {
		p.free = append(p.free, uint64(i))
		p.nodes[i].Store(NoNode)
	}
	return p
}

// NumFrames reports the total number of frames.
func (p *PhysMem) NumFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// FreeFrames reports how many frames are currently unallocated.
func (p *PhysMem) FreeFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// AllocFrame takes a zeroed frame off the free list. The frame starts
// with a reference count of one.
func (p *PhysMem) AllocFrame() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0, ErrOutOfMemory
	}
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.frames[f] = make([]byte, PageSize)
	p.refcount[f] = 1
	// A recycled frame must not inherit the previous owner's home
	// node: it starts untagged until a placement policy claims it.
	p.nodes[f].Store(NoNode)
	return f, nil
}

// SetFrameNode tags a live frame with its home NUMA node (first-touch
// or explicit placement). Tagging an out-of-range frame is an error;
// re-tagging moves the home, which only placement policies should do.
func (p *PhysMem) SetFrameNode(frame uint64, node int32) error {
	if frame >= uint64(len(p.frames)) {
		return fmt.Errorf("%w: %d", ErrBadFrame, frame)
	}
	p.nodes[frame].Store(node)
	return nil
}

// FrameNode reports a frame's home NUMA node, NoNode if untagged or
// out of range.
//
//paramecium:hotpath
func (p *PhysMem) FrameNode(frame uint64) int32 {
	if frame >= uint64(len(p.nodes)) {
		return NoNode
	}
	return p.nodes[frame].Load()
}

// Ref increments the reference count of a live frame (page sharing).
func (p *PhysMem) Ref(frame uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkLive(frame); err != nil {
		return err
	}
	p.refcount[frame]++
	return nil
}

// Unref decrements the reference count, freeing the frame when it hits
// zero. It reports whether the frame was actually released.
func (p *PhysMem) Unref(frame uint64) (released bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkLive(frame); err != nil {
		return false, err
	}
	p.refcount[frame]--
	if p.refcount[frame] > 0 {
		return false, nil
	}
	p.frames[frame] = nil
	p.refcount[frame] = 0
	p.free = append(p.free, frame)
	return true, nil
}

// RefCount reports the reference count of a frame (0 if free).
func (p *PhysMem) RefCount(frame uint64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if frame >= uint64(len(p.frames)) {
		return 0
	}
	return p.refcount[frame]
}

func (p *PhysMem) checkLive(frame uint64) error {
	if frame >= uint64(len(p.frames)) || p.frames[frame] == nil {
		return fmt.Errorf("%w: %d", ErrBadFrame, frame)
	}
	return nil
}

// Read copies bytes starting at physical address pa into buf. The read
// must not cross a frame boundary into an unallocated frame.
func (p *PhysMem) Read(pa PAddr, buf []byte) error {
	return p.access(pa, buf, false)
}

// Write copies buf into physical memory starting at pa.
func (p *PhysMem) Write(pa PAddr, buf []byte) error {
	return p.access(pa, buf, true)
}

func (p *PhysMem) access(pa PAddr, buf []byte, write bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	off := uint64(pa) & (PageSize - 1)
	frame := pa.Frame()
	for len(buf) > 0 {
		if err := p.checkLive(frame); err != nil {
			return err
		}
		n := PageSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		dst := p.frames[frame][off : off+n]
		if write {
			copy(dst, buf[:n])
		} else {
			copy(buf[:n], dst)
		}
		buf = buf[n:]
		off = 0
		frame++
	}
	return nil
}

// FramePayload exposes the raw contents of a frame for device DMA. The
// returned slice aliases the frame; callers must treat it as owned by
// the device for the duration of the transfer.
func (p *PhysMem) FramePayload(frame uint64) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkLive(frame); err != nil {
		return nil, err
	}
	return p.frames[frame], nil
}
