// Package atomicmix is the golden suite for the atomicmix analyzer:
// a field accessed through sync/atomic anywhere must be accessed
// through sync/atomic everywhere.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  uint64
	total uint64
	name  string
}

// bump and read establish hits as an atomic field.
func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// racyRead reads the atomic field plainly.
func (c *counter) racyRead() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere`
}

// racyReset writes it plainly.
func (c *counter) racyReset() {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere`
}

// bumpTotal touches only plain fields: fine.
func (c *counter) bumpTotal() {
	c.total++
	_ = c.name
}

// newCounter initializes before publication, a reviewed deviation.
func newCounter() *counter {
	c := &counter{}
	//paralint:ignore atomicmix pre-publication initialization cannot race
	c.hits = 42
	return c
}
