package probe

import (
	"sync"
	"testing"
)

// TestGateCounts: the enable gate is a counter — it stays up until the
// last of several concurrent enablers disables, so traced systems in
// one process never turn each other's instrumentation off.
func TestGateCounts(t *testing.T) {
	if Enabled() {
		t.Fatal("gate up before any Enable")
	}
	Enable()
	Enable()
	if !Enabled() {
		t.Fatal("gate down after Enable")
	}
	Disable()
	if !Enabled() {
		t.Fatal("gate down while one enabler remains")
	}
	Disable()
	if Enabled() {
		t.Fatal("gate up after the last Disable")
	}
}

// TestKindNamesExhaustive: every Kind has a mnemonic and out-of-range
// kinds degrade to a placeholder instead of panicking.
func TestKindNamesExhaustive(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == "" || k.String() == "kind(?)" {
			t.Fatalf("kind %d has no mnemonic", k)
		}
	}
	if got := Kind(200).String(); got != "kind(?)" {
		t.Fatalf("out-of-range kind = %q", got)
	}
}

// TestRecorderWrapAndDrop: a ring retains exactly its capacity of the
// most recent events, counts everything it overwrote, and the snapshot
// comes back in emission order.
func TestRecorderWrapAndDrop(t *testing.T) {
	r := NewRecorder(2, 8)
	if r.CPUs() != 2 || r.Capacity() != 8 {
		t.Fatalf("CPUs=%d Capacity=%d, want 2, 8", r.CPUs(), r.Capacity())
	}
	const n = 20
	for i := 0; i < n; i++ {
		r.Emit(0, uint64(100+i), KindDoorbell, 7, uint64(i), uint64(i))
	}
	if got := r.Emitted(0); got != n {
		t.Fatalf("Emitted(0) = %d, want %d", got, n)
	}
	if got := r.Dropped(0); got != n-8 {
		t.Fatalf("Dropped(0) = %d, want %d", got, n-8)
	}
	if got := r.Emitted(1); got != 0 {
		t.Fatalf("Emitted(1) = %d, want 0 (untouched ring)", got)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || len(snap[1]) != 0 {
		t.Fatalf("snapshot shape = %d rings, cpu1 %d events", len(snap), len(snap[1]))
	}
	evs := snap[0]
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, e := range evs {
		want := uint64(n - 8 + i)
		if e.Seq != want || e.A != want || e.Cycles != 100+want {
			t.Fatalf("event %d = %+v, want seq/A %d cycles %d", i, e, want, 100+want)
		}
		if e.Kind != KindDoorbell || e.Domain != 7 || e.CPU != 0 {
			t.Fatalf("event %d payload = %+v", i, e)
		}
	}
}

// TestRecorderEdgeCPUs: a nil recorder and out-of-range CPU ids are the
// boot-time and NoCPU-sentinel paths — the former is a no-op, the
// latter lands on ring 0.
func TestRecorderEdgeCPUs(t *testing.T) {
	var nilRec *Recorder
	nilRec.Emit(0, 1, KindTrap, 0, 0, 0) // must not panic
	if nilRec.Snapshot() != nil {
		t.Fatal("nil recorder snapshot not nil")
	}

	r := NewRecorder(0, 0) // clamps to 1 CPU, default capacity
	if r.CPUs() != 1 || r.Capacity() != DefaultRingCapacity {
		t.Fatalf("clamped recorder: CPUs=%d Capacity=%d", r.CPUs(), r.Capacity())
	}
	r.Emit(-1, 1, KindTrap, 1, 10, 0)
	r.Emit(99, 2, KindTrap, 1, 20, 0)
	if got := r.Emitted(0); got != 2 {
		t.Fatalf("out-of-range CPUs emitted %d events on ring 0, want 2", got)
	}
	if got := r.Emitted(-5); got != 0 {
		t.Fatalf("Emitted(-5) = %d", got)
	}
}

// TestRecorderSnapshotUnderFire: snapshots racing live emits never
// return a torn slot. Every emit stores A == B, so any snapshot event
// where they differ was stitched from two writes.
func TestRecorderSnapshotUnderFire(t *testing.T) {
	r := NewRecorder(2, 16) // small ring: constant lapping
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for cpu := 0; cpu < 2; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Emit(cpu, i, Kind(i%uint64(NumKinds)), uint32(i), i, i)
			}
		}(cpu)
	}
	for round := 0; round < 200; round++ {
		for cpu, evs := range r.Snapshot() {
			for _, e := range evs {
				if e.A != e.B {
					t.Errorf("cpu %d: torn event %+v", cpu, e)
				}
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestLedgerAccounting: adds accumulate per cell and per row, rows sort
// by domain, out-of-range ops are ignored, and the grand total is the
// sum of the rows.
func TestLedgerAccounting(t *testing.T) {
	l := NewLedger(4)
	if l.Ops() != 4 {
		t.Fatalf("Ops = %d", l.Ops())
	}
	l.Add(2, 1, 100, 2)
	l.Add(2, 1, 50, 1)
	l.Add(2, 3, 25, 5)
	l.Add(0, 0, 7, 1)
	l.Add(2, -1, 999, 1) // out of range: dropped
	l.Add(2, 4, 999, 1)  // out of range: dropped

	if got := l.DomainCycles(2); got != 175 {
		t.Fatalf("DomainCycles(2) = %d, want 175", got)
	}
	if got := l.DomainCycles(9); got != 0 {
		t.Fatalf("DomainCycles(9) = %d, want 0 (no row)", got)
	}
	if got := l.Total(); got != 182 {
		t.Fatalf("Total = %d, want 182", got)
	}

	rows := l.Snapshot()
	if len(rows) != 2 || rows[0].Domain != 0 || rows[1].Domain != 2 {
		t.Fatalf("snapshot rows = %+v, want domains [0 2]", rows)
	}
	d2 := rows[1]
	if d2.Cycles[1] != 150 || d2.Counts[1] != 3 || d2.Cycles[3] != 25 || d2.Counts[3] != 5 {
		t.Fatalf("domain 2 cells = cycles %v counts %v", d2.Cycles, d2.Counts)
	}
	if d2.Total != 175 || d2.Frozen {
		t.Fatalf("domain 2 row = %+v", d2)
	}
}

// TestLedgerFreeze: freezing keeps a destroyed domain's bill readable,
// and freezing a domain that never charged records an empty row.
func TestLedgerFreeze(t *testing.T) {
	l := NewLedger(2)
	l.Add(5, 0, 40, 1)
	l.Freeze(5)
	if !l.Frozen(5) {
		t.Fatal("row not frozen")
	}
	if got := l.DomainCycles(5); got != 40 {
		t.Fatalf("frozen row cycles = %d, want 40", got)
	}
	l.Freeze(6) // never charged: empty frozen row records existence
	if !l.Frozen(6) || l.DomainCycles(6) != 0 {
		t.Fatalf("empty frozen row: frozen=%v cycles=%d", l.Frozen(6), l.DomainCycles(6))
	}
	if l.Frozen(7) {
		t.Fatal("nonexistent row reports frozen")
	}

	var nilLedger *Ledger
	nilLedger.Add(0, 0, 1, 1) // all nil-receiver paths are no-ops
	nilLedger.Freeze(0)
	if nilLedger.DomainCycles(0) != 0 || nilLedger.Snapshot() != nil {
		t.Fatal("nil ledger not inert")
	}
}

// TestLedgerConcurrentAdd: the lock-free charge path loses nothing
// under contention — the invariant behind ledger-total == meter-clock.
func TestLedgerConcurrentAdd(t *testing.T) {
	l := NewLedger(3)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Add(uint32(w%4), i%3, 3, 1)
			}
		}(w)
	}
	wg.Wait()
	if got, want := l.Total(), uint64(workers*perWorker*3); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	for d := uint32(0); d < 4; d++ {
		if got := l.DomainCycles(d); got != workers/4*perWorker*3 {
			t.Fatalf("domain %d = %d cycles", d, got)
		}
	}
}
