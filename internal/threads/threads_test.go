package threads

import (
	"testing"

	"paramecium/internal/clock"
)

func newSched() (*Scheduler, *clock.Meter) {
	meter := clock.NewMeter(clock.DefaultCosts())
	return NewScheduler(meter), meter
}

func TestSpawnRunsFunction(t *testing.T) {
	s, meter := newSched()
	ran := false
	th := s.Spawn("worker", func(*Thread) { ran = true })
	if got := s.RunUntilIdle(); got != 1 {
		t.Fatalf("dispatches = %d", got)
	}
	if !ran {
		t.Fatal("function did not run")
	}
	<-th.Done()
	if th.State() != StateDone {
		t.Fatalf("state = %v", th.State())
	}
	if meter.Count(clock.OpThreadCreate) != 1 {
		t.Fatal("thread creation not charged")
	}
	if s.LiveCount() != 0 {
		t.Fatalf("live = %d", s.LiveCount())
	}
}

func TestYieldRoundRobin(t *testing.T) {
	s, _ := newSched()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn("w", func(th *Thread) {
			order = append(order, i)
			th.Yield()
			order = append(order, i+10)
		})
	}
	s.RunUntilIdle()
	want := []int{0, 1, 2, 10, 11, 12}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	s, _ := newSched()
	m := NewMutex(s)
	inCritical := 0
	maxInCritical := 0
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(th *Thread) {
			m.Lock(th)
			inCritical++
			if inCritical > maxInCritical {
				maxInCritical = inCritical
			}
			th.Yield() // try to let others overlap
			inCritical--
			if err := m.Unlock(th); err != nil {
				t.Errorf("unlock: %v", err)
			}
		})
	}
	s.RunUntilIdle()
	if maxInCritical != 1 {
		t.Fatalf("max threads in critical section = %d", maxInCritical)
	}
	if m.Holder() != nil {
		t.Fatal("mutex still held")
	}
}

func TestMutexFairHandoff(t *testing.T) {
	s, _ := newSched()
	m := NewMutex(s)
	var order []string
	s.Spawn("a", func(th *Thread) {
		m.Lock(th)
		th.Yield() // b and c queue up on the mutex
		th.Yield()
		order = append(order, "a")
		m.Unlock(th)
	})
	s.Spawn("b", func(th *Thread) {
		m.Lock(th)
		order = append(order, "b")
		m.Unlock(th)
	})
	s.Spawn("c", func(th *Thread) {
		m.Lock(th)
		order = append(order, "c")
		m.Unlock(th)
	})
	s.RunUntilIdle()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestMutexUnlockByNonOwner(t *testing.T) {
	s, _ := newSched()
	m := NewMutex(s)
	var errA, errB error
	s.Spawn("a", func(th *Thread) {
		m.Lock(th)
		th.Yield()
		errA = m.Unlock(th)
	})
	s.Spawn("b", func(th *Thread) {
		errB = m.Unlock(th) // does not own it
	})
	s.RunUntilIdle()
	if errA != nil {
		t.Fatalf("owner unlock: %v", errA)
	}
	if errB != ErrNotOwner {
		t.Fatalf("non-owner unlock: %v", errB)
	}
}

func TestTryLock(t *testing.T) {
	s, _ := newSched()
	m := NewMutex(s)
	var got []bool
	s.Spawn("a", func(th *Thread) {
		got = append(got, m.TryLock(th)) // true
		got = append(got, m.TryLock(th)) // false, already held
		m.Unlock(th)
		got = append(got, m.TryLock(th)) // true again
		m.Unlock(th)
	})
	s.RunUntilIdle()
	if len(got) != 3 || !got[0] || got[1] || !got[2] {
		t.Fatalf("TryLock results = %v", got)
	}
}

func TestCondWaitSignal(t *testing.T) {
	s, _ := newSched()
	m := NewMutex(s)
	c := NewCond(m)
	ready := false
	var consumed []int
	s.Spawn("consumer", func(th *Thread) {
		m.Lock(th)
		for !ready {
			if err := c.Wait(th); err != nil {
				t.Errorf("wait: %v", err)
			}
		}
		consumed = append(consumed, 1)
		m.Unlock(th)
	})
	s.Spawn("producer", func(th *Thread) {
		m.Lock(th)
		ready = true
		c.Signal()
		m.Unlock(th)
	})
	s.RunUntilIdle()
	if len(consumed) != 1 {
		t.Fatalf("consumed = %v", consumed)
	}
}

func TestCondWaitRequiresMutex(t *testing.T) {
	s, _ := newSched()
	m := NewMutex(s)
	c := NewCond(m)
	var err error
	s.Spawn("w", func(th *Thread) {
		err = c.Wait(th) // without holding m
	})
	s.RunUntilIdle()
	if err != ErrNotOwner {
		t.Fatalf("err = %v", err)
	}
}

func TestCondBroadcast(t *testing.T) {
	s, _ := newSched()
	m := NewMutex(s)
	c := NewCond(m)
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn("waiter", func(th *Thread) {
			m.Lock(th)
			c.Wait(th)
			woken++
			m.Unlock(th)
		})
	}
	s.Spawn("caster", func(th *Thread) {
		m.Lock(th)
		c.Broadcast()
		m.Unlock(th)
	})
	s.RunUntilIdle()
	if woken != 3 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestSemaphore(t *testing.T) {
	s, _ := newSched()
	sem := NewSemaphore(s, 2)
	active, peak := 0, 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(th *Thread) {
			sem.P(th)
			active++
			if active > peak {
				peak = active
			}
			th.Yield()
			active--
			sem.V()
		})
	}
	s.RunUntilIdle()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if sem.Count() != 2 {
		t.Fatalf("final count = %d", sem.Count())
	}
}

func TestQueueProducerConsumer(t *testing.T) {
	s, _ := newSched()
	q, err := NewQueue(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	s.Spawn("producer", func(th *Thread) {
		for i := 0; i < 5; i++ {
			q.Push(th, i) // blocks when full
		}
	})
	s.Spawn("consumer", func(th *Thread) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(th).(int))
		}
	})
	s.RunUntilIdle()
	if len(got) != 5 {
		t.Fatalf("got = %v", got)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got = %v (order broken)", got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue len = %d", q.Len())
	}
}

func TestQueueTryPush(t *testing.T) {
	s, _ := newSched()
	q, _ := NewQueue(s, 1)
	if !q.TryPush(1) {
		t.Fatal("push to empty failed")
	}
	if q.TryPush(2) {
		t.Fatal("push to full succeeded")
	}
	if _, err := NewQueue(s, 0); err != ErrQueueSize {
		t.Fatalf("zero capacity: %v", err)
	}
}

func TestPopUpProtoRunsToCompletionInline(t *testing.T) {
	s, meter := newSched()
	ran := false
	th, completed := s.PopUpProto("irq", func(*Thread) { ran = true })
	if !completed || !ran {
		t.Fatalf("completed=%v ran=%v", completed, ran)
	}
	if th.Promoted() {
		t.Fatal("non-blocking proto-thread was promoted")
	}
	if meter.Count(clock.OpThreadCreate) != 0 {
		t.Fatal("proto path charged a thread creation")
	}
	if meter.Count(clock.OpProtoThread) != 1 {
		t.Fatal("proto-thread cost not charged")
	}
	<-th.Done()
	if s.LiveCount() != 0 {
		t.Fatalf("live = %d", s.LiveCount())
	}
}

func TestPopUpProtoPromotesOnBlock(t *testing.T) {
	s, meter := newSched()
	m := NewMutex(s)
	q, _ := NewQueue(s, 1)
	// holder grabs the mutex and parks on the queue, simulating a
	// thread that owns a resource when the interrupt arrives.
	s.Spawn("holder", func(th *Thread) {
		m.Lock(th)
		q.Pop(th)
		m.Unlock(th)
	})
	s.RunUntilIdle()

	handlerDone := false
	th, completed := s.PopUpProto("irq", func(t2 *Thread) {
		m.Lock(t2) // blocks: holder owns it -> promotion
		handlerDone = true
		m.Unlock(t2)
	})
	if completed {
		t.Fatal("blocking handler reported inline completion")
	}
	if !th.Promoted() {
		t.Fatal("blocked proto-thread not promoted")
	}
	if meter.Count(clock.OpPromote) != 1 || meter.Count(clock.OpThreadCreate) != 2 {
		t.Fatalf("promotion accounting: promote=%d create=%d",
			meter.Count(clock.OpPromote), meter.Count(clock.OpThreadCreate))
	}
	if handlerDone {
		t.Fatal("handler finished before mutex released")
	}
	// Unblock the holder; it releases the mutex, handing it to the
	// promoted thread.
	if !q.TryPush(struct{}{}) {
		t.Fatal("TryPush failed")
	}
	s.RunUntilIdle()
	<-th.Done()
	if !handlerDone {
		t.Fatal("promoted handler never completed")
	}
}

func TestPopUpProtoPromotesOnYield(t *testing.T) {
	s, meter := newSched()
	th, completed := s.PopUpProto("irq", func(t2 *Thread) {
		t2.Yield() // "about to be rescheduled" -> promotion
	})
	if completed {
		t.Fatal("yielding handler reported inline completion")
	}
	if !th.Promoted() {
		t.Fatal("yielding proto-thread not promoted")
	}
	if meter.Count(clock.OpPromote) != 1 {
		t.Fatal("promotion not charged")
	}
	s.RunUntilIdle()
	<-th.Done()
}

func TestPopUpProtoPromotesOnSleep(t *testing.T) {
	s, _ := newSched()
	th, completed := s.PopUpProto("irq", func(t2 *Thread) {
		t2.Sleep(100)
	})
	if completed || !th.Promoted() {
		t.Fatalf("completed=%v promoted=%v", completed, th.Promoted())
	}
	s.RunUntilIdle()
	<-th.Done()
}

func TestPopUpEagerAlwaysCreatesThread(t *testing.T) {
	s, meter := newSched()
	ran := false
	s.PopUpEager("irq", func(*Thread) { ran = true })
	if meter.Count(clock.OpThreadCreate) != 1 {
		t.Fatal("eager pop-up did not create a thread")
	}
	if ran {
		t.Fatal("eager pop-up ran before scheduling")
	}
	s.RunUntilIdle()
	if !ran {
		t.Fatal("eager pop-up never ran")
	}
}

func TestProtoCheaperThanEagerForNonBlocking(t *testing.T) {
	// The core claim of the proto-thread design: when handlers run to
	// completion, the proto path costs far less virtual time.
	sE, meterE := newSched()
	w := sE.Meter().Clock.StartWatch()
	for i := 0; i < 100; i++ {
		sE.PopUpEager("irq", func(*Thread) {})
	}
	sE.RunUntilIdle()
	eager := w.Elapsed()
	_ = meterE

	sP, _ := newSched()
	w2 := sP.Meter().Clock.StartWatch()
	for i := 0; i < 100; i++ {
		sP.PopUpProto("irq", func(*Thread) {})
	}
	sP.RunUntilIdle()
	proto := w2.Elapsed()

	if proto*5 > eager {
		t.Fatalf("proto path (%d cycles) not clearly cheaper than eager (%d)", proto, eager)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s, meter := newSched()
	start := meter.Clock.Now()
	var wakeTimes []uint64
	s.Spawn("short", func(th *Thread) {
		th.Sleep(100)
		wakeTimes = append(wakeTimes, meter.Clock.Now())
	})
	s.Spawn("long", func(th *Thread) {
		th.Sleep(500)
		wakeTimes = append(wakeTimes, meter.Clock.Now())
	})
	s.RunUntilIdle()
	if len(wakeTimes) != 2 {
		t.Fatalf("wakeTimes = %v", wakeTimes)
	}
	if wakeTimes[0] > wakeTimes[1] {
		t.Fatal("short sleeper woke after long sleeper")
	}
	if meter.Clock.Now() < start+500 {
		t.Fatalf("clock = %d, want >= %d", meter.Clock.Now(), start+500)
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateReady: "ready", StateRunning: "running", StateBlocked: "blocked",
		StateSleeping: "sleeping", StateDone: "done",
	}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("%d = %q", st, st.String())
		}
	}
	if State(99).String() != "state(99)" {
		t.Error("unknown state string")
	}
}

func TestThreadIdentity(t *testing.T) {
	s, _ := newSched()
	a := s.Spawn("alpha", func(*Thread) {})
	b := s.Spawn("beta", func(*Thread) {})
	if a.ID() == b.ID() {
		t.Fatal("duplicate thread IDs")
	}
	if a.Name() != "alpha" || b.Name() != "beta" {
		t.Fatal("names wrong")
	}
	s.RunUntilIdle()
}

func TestReadyCount(t *testing.T) {
	s, _ := newSched()
	s.Spawn("a", func(*Thread) {})
	s.Spawn("b", func(*Thread) {})
	if got := s.ReadyCount(); got != 2 {
		t.Fatalf("ready = %d", got)
	}
	s.RunUntilIdle()
	if got := s.ReadyCount(); got != 0 {
		t.Fatalf("ready after idle = %d", got)
	}
}
