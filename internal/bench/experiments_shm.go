package bench

import (
	"fmt"

	"paramecium/internal/obj"
	"paramecium/internal/shm"
)

// The P6 experiment compares the two ways of moving bulk bytes between
// protection domains:
//
//   - copy: the payload rides the vectored invocation plane as a call
//     argument — the best copy path we have (batched, one crossing per
//     group), but every 8 payload bytes is still charged one
//     OpCopyWord on every transfer.
//   - share: the payload lives in a shared-memory segment granted to
//     the consumer, which attached it once (map + shootdown machinery
//     charged, included in the measurement) and per transfer receives
//     only a notify carrying the region offset — it reads the frame
//     descriptor in place, through its own MMU mapping.
//
// Both harnesses do equivalent per-transfer work (the consumer
// validates the transfer's 8-byte header) and both vector their calls
// in groups of BulkGroup, so the difference isolated is exactly the
// payload's trip through the invocation plane.

// BulkGroup is the vectoring factor both bulk-transfer harnesses use.
const BulkGroup = 16

// bulkSizes is the payload sweep of the P6 experiment and benchmark.
var bulkSizes = []int{256, 1024, 4096, 16384, 65536}

// BulkCopy is the copy-through-batch harness: each transfer carries
// the whole payload across the invocation plane as an argument.
type BulkCopy struct {
	W     *World
	put   obj.MethodHandle
	args  [][]any
	batch *obj.Batch
}

// NewBulkCopy boots a world with a sink service in its own domain and
// a client holding a pre-resolved handle plus pre-built argument
// lists, so the steady-state Run allocates nothing.
func NewBulkCopy(size int) *BulkCopy {
	w := NewWorld()
	decl := obj.MustInterfaceDecl("bench.bulk.v1",
		obj.MethodDecl{Name: "put", NumIn: 1, NumOut: 0})
	server := obj.New("bulk-sink", w.K.Meter)
	var seen byte
	bi, err := server.AddInterface(decl, &seen)
	if err != nil {
		panic(err)
	}
	bi.MustBindInto("put", func(out []any, args ...any) ([]any, error) {
		// Validate the delivered frame's header byte — the same
		// per-transfer work the share harness does in place.
		seen = args[0].([]byte)[0]
		return out, nil
	})
	serverDom := w.K.NewDomain("server")
	clientDom := w.K.NewDomain("client")
	if err := w.K.Register("/services/bulk", server, serverDom.Ctx); err != nil {
		panic(err)
	}
	put, err := clientDom.ResolveMethod("/services/bulk", "bench.bulk.v1", "put")
	if err != nil {
		panic(err)
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = 0x5A
	}
	args := make([][]any, BulkGroup)
	for i := range args {
		args[i] = []any{payload}
	}
	return &BulkCopy{W: w, put: put, args: args, batch: obj.NewBatch(BulkGroup)}
}

// Run performs n transfers, vectored in groups of BulkGroup.
func (h *BulkCopy) Run(n int) {
	for i := 0; i < n; {
		k := BulkGroup
		if rem := n - i; rem < k {
			k = rem
		}
		h.batch.Reset()
		for j := 0; j < k; j++ {
			if err := h.batch.Add(h.put, h.args[j]...); err != nil {
				panic(fmt.Sprintf("bench: bulk add: %v", err))
			}
		}
		if err := h.batch.Run(); err != nil {
			panic(fmt.Sprintf("bench: bulk run: %v", err))
		}
		i += k
	}
}

// BulkShare is the shared-segment harness: the payload lives in a
// segment the client owns and granted read-only to the server; each
// transfer is a vectored notify carrying only the region offset, and
// the server validates the header in place through its attachment.
type BulkShare struct {
	W     *World
	ready obj.MethodHandle
	args  [][]any
	batch *obj.Batch

	seg     *shm.Segment
	grant   *shm.Grant
	att     *shm.Attachment
	payload []byte
}

// NewBulkShare boots the world, creates the client-owned segment and
// its RO grant to the server domain, and binds the server's notify
// method, which reads the transfer's 8-byte header through the
// attachment. Prepare maps and fills the segment; Finish revokes it.
func NewBulkShare(size int) *BulkShare {
	w := NewWorld()
	pages := (size + 4095) / 4096
	serverDom := w.K.NewDomain("server")
	clientDom := w.K.NewDomain("client")

	seg, err := w.K.Shm.NewSegment(clientDom.Ctx, pages)
	if err != nil {
		panic(err)
	}
	grant, err := seg.Grant(serverDom.Ctx, shm.RO)
	if err != nil {
		panic(err)
	}

	h := &BulkShare{W: w, seg: seg, grant: grant, payload: make([]byte, size)}
	for i := range h.payload {
		h.payload[i] = 0x5A
	}
	decl := obj.MustInterfaceDecl("bench.bulknotify.v1",
		obj.MethodDecl{Name: "ready", NumIn: 1, NumOut: 0})
	server := obj.New("bulk-reader", w.K.Meter)
	var hdr [8]byte
	bi, err := server.AddInterface(decl, &hdr)
	if err != nil {
		panic(err)
	}
	bi.MustBindInto("ready", func(out []any, args ...any) ([]any, error) {
		// Zero-copy consumption: the header is read IN PLACE through
		// the server's own mapping of the shared frames — the payload
		// behind it is the server's memory now, no copy needed.
		if err := h.att.Load(args[0].(int), hdr[:]); err != nil {
			return nil, err
		}
		return out, nil
	})
	if err := w.K.Register("/services/bulknotify", server, serverDom.Ctx); err != nil {
		panic(err)
	}
	ready, err := clientDom.ResolveMethod("/services/bulknotify", "bench.bulknotify.v1", "ready")
	if err != nil {
		panic(err)
	}
	h.ready = ready
	h.args = make([][]any, BulkGroup)
	for i := range h.args {
		h.args[i] = []any{0}
	}
	h.batch = obj.NewBatch(BulkGroup)
	return h
}

// Prepare performs the one-time zero-copy setup INSIDE the caller's
// measurement window: the server attaches the granted segment (map
// charges) and the client produces the payload into it. Amortized over
// a run, this is the "cycles charged for map, not per byte" half of
// the claim.
func (h *BulkShare) Prepare() {
	att, err := h.W.K.Shm.Attach(h.grant.Ref())
	if err != nil {
		panic(err)
	}
	h.att = att
	if err := h.seg.Store(0, h.payload); err != nil {
		panic(err)
	}
}

// Run performs n transfers: vectored notifies, header validated in
// place, zero payload bytes on the invocation plane.
func (h *BulkShare) Run(n int) {
	for i := 0; i < n; {
		k := BulkGroup
		if rem := n - i; rem < k {
			k = rem
		}
		h.batch.Reset()
		for j := 0; j < k; j++ {
			if err := h.batch.Add(h.ready, h.args[j]...); err != nil {
				panic(fmt.Sprintf("bench: notify add: %v", err))
			}
		}
		if err := h.batch.Run(); err != nil {
			panic(fmt.Sprintf("bench: notify run: %v", err))
		}
		i += k
	}
}

// Finish revokes the grant inside the measurement window: the unmap
// pays the per-remote-CPU TLB shootdown charge for any page a remote
// CPU still holds cached — the "plus shootdown" half of the claim
// (zero remotes on this single-CPU world, charged exactly as such).
func (h *BulkShare) Finish() {
	if err := h.grant.Revoke(); err != nil {
		panic(err)
	}
}

// P6BulkTransfer sweeps payload size over the copy-vs-share pair,
// reporting deterministic virtual cycles per transfer. Copy cost grows
// a word per 8 payload bytes; share cost is flat — the capability and
// notify words, the map amortized — so the advantage grows linearly
// with payload size, crossing 4x around the page size.
func P6BulkTransfer() Table {
	t := Table{
		ID:     "P6",
		Title:  "Bulk transfer: copy through the invocation plane vs shared-segment attach (virtual cycles per transfer)",
		Claim:  `contexts communicate through shared memory set up by the memory service: granting and mapping a segment moves bulk data between domains for the cost of the mapping — per-byte copy charges stay off the invocation plane entirely`,
		Header: []string{"bytes", "copy cycles/op", "share cycles/op", "share advantage", "payload words"},
	}
	const ops = 1024
	for _, size := range bulkSizes {
		copyCost := func() float64 {
			h := NewBulkCopy(size)
			watch := h.W.K.Meter.Clock.StartWatch()
			h.Run(ops)
			return float64(watch.Elapsed()) / ops
		}()
		shareCost := func() float64 {
			h := NewBulkShare(size)
			watch := h.W.K.Meter.Clock.StartWatch()
			h.Prepare()
			h.Run(ops)
			h.Finish()
			return float64(watch.Elapsed()) / ops
		}()
		t.AddRow(size,
			fmt.Sprintf("%.1f", copyCost),
			fmt.Sprintf("%.1f", shareCost),
			fmt.Sprintf("%.2fx", copyCost/shareCost),
			size/8)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("deterministic virtual cycles; both paths vector calls in groups of %d and validate the 8-byte transfer header", BulkGroup),
		"share includes attach (map) and revoke (TLB-shootdown path) inside the measured window, amortized over the run",
		"copy pays OpCopyWord per 8 payload bytes on EVERY transfer; share pays it only for bytes the consumer actually touches")
	return t
}
