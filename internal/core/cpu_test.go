package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"paramecium/internal/cert"
	"paramecium/internal/mmu"
	"paramecium/internal/names"
	"paramecium/internal/obj"
)

// TestDestroyDomainSweepsNames: destroying a domain unregisters every
// name whose instance lived there, so later binds fail with a lookup
// error instead of silently resolving placement-less (kernel context)
// to the orphaned object.
func TestDestroyDomainSweepsNames(t *testing.T) {
	w := newWorld(t)
	server := obj.New("doomed-svc", w.k.Meter)
	d := w.k.NewDomain("server")
	client := w.k.NewDomain("client")
	if err := w.k.Register("/services/doomed", server, d.Ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.k.Register("/services/doomed-alias", server, d.Ctx); err != nil {
		t.Fatal(err)
	}
	// Sane before teardown: a cross-domain bind resolves to a proxy.
	if _, err := client.Bind("/services/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := w.k.DestroyDomain(d); err != nil {
		t.Fatal(err)
	}
	// Every name of the dead domain is gone, from domains and from
	// kernel-resident callers alike.
	for _, path := range []string{"/services/doomed", "/services/doomed-alias"} {
		if _, err := client.Bind(path); !errors.Is(err, names.ErrNotFound) {
			t.Fatalf("bind %q after destroy: %v, want ErrNotFound", path, err)
		}
		if _, err := w.k.KernelBind(path); !errors.Is(err, names.ErrNotFound) {
			t.Fatalf("kernel bind %q after destroy: %v, want ErrNotFound", path, err)
		}
	}
	// Unrelated names survive the sweep.
	if _, err := w.k.KernelBind("/nucleus/events"); err != nil {
		t.Fatalf("unrelated name swept: %v", err)
	}
}

// TestDestroyDomainSweepsViewOverrides: an override pinned on a dead
// domain's instance is swept from every live view, so the bind falls
// through to the (also swept) global space and fails — it cannot
// resolve placement-less to the orphaned object.
func TestDestroyDomainSweepsViewOverrides(t *testing.T) {
	w := newWorld(t)
	server := obj.New("doomed-svc", w.k.Meter)
	d := w.k.NewDomain("server")
	client := w.k.NewDomain("client")
	if err := w.k.Register("/services/doomed", server, d.Ctx); err != nil {
		t.Fatal(err)
	}
	// The client privately pins the name at the server's instance.
	if err := client.View.Override("/services/pinned", server); err != nil {
		t.Fatal(err)
	}
	if inst, err := client.Bind("/services/pinned"); err != nil {
		t.Fatal(err)
	} else if inst == obj.Instance(server) {
		t.Fatal("cross-domain override bound direct, want proxy")
	}
	if err := w.k.DestroyDomain(d); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Bind("/services/pinned"); !errors.Is(err, names.ErrNotFound) {
		t.Fatalf("override bind after destroy: %v, want ErrNotFound", err)
	}
}

// TestDestroyDomainSweepKeepsRehomedNames: a name re-homed out of the
// dying domain before destruction is not swept.
func TestDestroyDomainSweepsOnlyDeadPlacements(t *testing.T) {
	w := newWorld(t)
	server := obj.New("svc", w.k.Meter)
	d := w.k.NewDomain("dying")
	survivor := w.k.NewDomain("survivor")
	if err := w.k.Register("/services/movable", server, d.Ctx); err != nil {
		t.Fatal(err)
	}
	// Re-home the instance into the survivor domain (placement is
	// last-write-wins through registerPlacement).
	w.k.registerPlacement(server, survivor.Ctx)
	if err := w.k.DestroyDomain(d); err != nil {
		t.Fatal(err)
	}
	if _, err := w.k.KernelBind("/services/movable"); err != nil {
		t.Fatalf("re-homed name swept with the dead domain: %v", err)
	}
}

// TestParallelInvocationAcrossCPUs is the N-CPU end-to-end stress: a
// 4-CPU kernel serving one shared cross-domain handle to many
// concurrent callers. Dispatch and translation must not serialize on a
// global MMU mutex, every call must land, and the per-CPU TLBs must
// carry the traffic disjointly: each call's entry-page miss is charged
// to exactly one CPU, and more than one CPU sees traffic.
func TestParallelInvocationAcrossCPUs(t *testing.T) {
	auth := cert.NewAuthority(1000)
	k, err := Boot(Config{AuthorityKey: auth.PublicKey(), CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if k.Machine.NumCPUs() != 4 || k.Machine.MMU.NumCPUs() != 4 || k.Sched.NumCPUs() != 4 {
		t.Fatalf("topology: machine=%d mmu=%d sched=%d, want 4",
			k.Machine.NumCPUs(), k.Machine.MMU.NumCPUs(), k.Sched.NumCPUs())
	}

	decl := obj.MustInterfaceDecl("stress.counter.v1", obj.MethodDecl{Name: "inc", NumIn: 0, NumOut: 1})
	server := obj.New("counter", k.Meter)
	var n atomic.Int64
	bi, err := server.AddInterface(decl, &n)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("inc", func(...any) ([]any, error) { return []any{n.Add(1)}, nil })
	serverDom := k.NewDomain("server")
	clientDom := k.NewDomain("client")
	if err := k.Register("/services/counter", server, serverDom.Ctx); err != nil {
		t.Fatal(err)
	}
	inc, err := clientDom.ResolveMethod("/services/counter", "stress.counter.v1", "inc")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const each = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := inc.Call(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := n.Load(); got != workers*each {
		t.Fatalf("%d calls landed, want %d", got, workers*each)
	}

	// Per-CPU TLB accounting: the only translations in this kernel are
	// the calls' entry-page touches — one miss per call, charged to the
	// CPU the call claimed. The per-CPU counters must partition the
	// total exactly (disjointness) and span more than one CPU.
	populated := 0
	var sum uint64
	for i := 0; i < k.Machine.NumCPUs(); i++ {
		s := k.Machine.MMU.TLBStatsOn(mmu.CPUID(i))
		if s.Misses > 0 {
			populated++
		}
		sum += s.Misses
	}
	if sum != workers*each {
		t.Fatalf("per-CPU misses sum to %d, want %d (stats not disjoint)", sum, workers*each)
	}
	if populated < 2 {
		t.Fatalf("TLB traffic on %d CPUs, want >= 2", populated)
	}
	_, aggMisses := k.Machine.MMU.TLBStats()
	if aggMisses != sum {
		t.Fatalf("aggregate misses %d != per-CPU sum %d", aggMisses, sum)
	}
}

// TestSingleCPUDefaultTopology: the default boot stays a uniprocessor.
func TestSingleCPUDefaultTopology(t *testing.T) {
	w := newWorld(t)
	if n := w.k.Machine.NumCPUs(); n != 1 {
		t.Fatalf("default CPUs = %d, want 1", n)
	}
	if n := w.k.Sched.NumCPUs(); n != 1 {
		t.Fatalf("default scheduler CPUs = %d, want 1", n)
	}
}
