package obj

import (
	"fmt"
	"reflect"
)

// Batcher executes a group of pre-resolved calls together. The
// cross-domain proxy implements it to carry a whole group across the
// protection boundary in a single crossing — one trap, one
// context-switch pair — amortizing the fixed crossing cost over the
// group, the way active-message systems vector requests. Local
// handles have no batcher and dispatch one by one.
//
// DispatchBatch receives entries whose handles all name this batcher.
// It records each entry's results or error with SetResult and returns
// an error only when the group as a whole could not be attempted (the
// route itself failed); per-call failures are per-entry state.
type Batcher interface {
	DispatchBatch(calls []BatchCall) error
}

// ModeBatcher is an optional Batcher extension for batchers that want
// to know which dispatch mode formed the group they receive — the
// cross-domain proxy records it in the flight recorder's
// batch-dispatch events. It is telemetry, not routing: dispatch
// semantics are identical to DispatchBatch.
type ModeBatcher interface {
	Batcher
	DispatchBatchMode(calls []BatchCall, mode BatchMode) error
}

// dispatchGroup hands one group to its batcher, threading the batch
// mode through when the batcher can use it.
//
//paramecium:hotpath
func dispatchGroup(bt Batcher, calls []BatchCall, mode BatchMode) error {
	if mb, ok := bt.(ModeBatcher); ok {
		return mb.DispatchBatchMode(calls, mode)
	}
	return bt.DispatchBatch(calls)
}

// BatchCall is one queued invocation of a Batch: the resolved handle,
// its arguments, and — after Run — its results or error.
type BatchCall struct {
	h    MethodHandle
	args []any
	out  []any // caller-provided result buffer (AddInto); may be nil
	res  []any
	err  error
}

// Decl returns the type information of the entry's method.
func (c *BatchCall) Decl() *MethodDecl { return c.h.decl }

// Args returns the entry's argument list. Batchers read it; callers
// must not mutate it between Add and Run.
func (c *BatchCall) Args() []any { return c.args }

// Key returns the batcher-private routing key of the entry's handle
// (see NewBatchableHandle). It is how a Batcher finds the target slot
// without a name lookup.
func (c *BatchCall) Key() any { return c.h.bkey }

// Out returns the entry's caller-provided result buffer (nil unless
// queued with AddInto). Batchers dispatch through it — CallInto-style —
// so the entry's results land in caller-owned storage without an
// allocation.
func (c *BatchCall) Out() []any { return c.out }

// SetResult records the entry's outcome. Batchers call it once per
// entry; result arity against the declaration is the batcher's (or its
// dispatch path's) responsibility, exactly as for a single call.
func (c *BatchCall) SetResult(res []any, err error) {
	c.res, c.err = res, err
}

// Results returns the entry's results or error after Run.
func (c *BatchCall) Results() ([]any, error) { return c.res, c.err }

// BatchMode selects how Batch.Run orders dispatch across targets; see
// the Batch documentation for the semantics of each mode.
type BatchMode int

const (
	// InOrder (the default) executes entries strictly in the order
	// they were added. Only maximal runs of CONSECUTIVE entries
	// sharing a Batcher vector in one crossing; a batch alternating
	// between two targets pays one crossing per entry.
	InOrder BatchMode = iota
	// Grouped partitions entries by target Batcher and pays ONE
	// crossing per distinct target, preserving per-target order but
	// reordering execution across targets. Opt in only when entries
	// bound for different targets are independent.
	Grouped
)

// String returns the mode's name.
func (m BatchMode) String() string {
	switch m {
	case InOrder:
		return "in-order"
	case Grouped:
		return "grouped"
	default:
		return fmt.Sprintf("BatchMode(%d)", int(m))
	}
}

// Batch is an ordered list of pre-resolved invocations executed
// together by Run. In the default InOrder mode, only maximal runs of
// CONSECUTIVE entries whose handles share a Batcher (calls through
// the same cross-domain proxy) are carried across the protection
// boundary in one crossing; everything else dispatches individually.
// Entries are never reordered — execution order is observable, so Run
// will not move an entry past one with a different target to enlarge
// a group.
//
// The mixed-target cost follows directly: in InOrder mode a batch
// alternating between two proxies (A, B, A, B, …) forms groups of one
// and pays a full crossing per entry — none of the 12x size-16
// amortization. SetMode(Grouped) is the fix for callers whose entries
// are independent across targets: Run partitions the batch by target,
// dispatches one crossing per DISTINCT target (two for the
// alternating batch above, however it is ordered), and scatters every
// result back to its original entry slot. The trade is observable:
// grouped execution preserves the relative order of entries sharing a
// target (and of plain local entries among themselves) but reorders
// execution ACROSS targets — partitions run in first-appearance
// order, each to completion. Do not use Grouped when a later entry on
// one target depends on an earlier entry on another having executed.
//
// A batch is not a transaction in either mode: a failing entry
// records its error and the rest still run — exactly the semantics of
// issuing the calls one by one, minus the repeated crossings.
//
// A Batch is reusable: Reset keeps the entry array's capacity (and
// the mode), so a steady-state caller building same-sized batches
// allocates nothing for the batch machinery — grouped partitioning
// included, whose scratch state is retained the same way. It is not
// safe for concurrent use; build and Run a batch from one goroutine
// (any number of goroutines may each run their own).
type Batch struct {
	calls []BatchCall
	mode  BatchMode

	// Grouped-mode scratch, retained across runs so steady-state
	// grouped dispatch allocates nothing. tidx assigns each entry a
	// partition; targets holds the distinct batchers in
	// first-appearance order (nil marks the local partition); scratch
	// is the partition-ordered entry copy handed to each Batcher and
	// perm maps each scratch position back to the caller's original
	// entry index for the result scatter.
	tidx    []int
	targets []Batcher
	scratch []BatchCall
	perm    []int

	// crossings counts the Batcher group dispatches the last Run
	// paid; see Crossings.
	crossings int
}

// NewBatch returns an empty batch with room for n entries.
func NewBatch(n int) *Batch {
	return &Batch{calls: make([]BatchCall, 0, n)}
}

// Add queues one invocation. Argument arity is validated immediately,
// so a malformed entry fails at Add rather than poisoning Run.
func (b *Batch) Add(h MethodHandle, args ...any) error {
	return b.AddInto(h, nil, args...)
}

// AddInto is Add with a caller-provided result buffer: the entry's
// results are appended to out (typically a zero-length slice over a
// reused array), exactly as MethodHandle.CallInto threads a buffer
// through a single call. A steady-state caller that reuses the batch
// (Reset) and its per-entry buffers completes whole vectored rounds
// with zero allocations for the batch machinery and results alike.
// After Run, the entry's Results are out plus exactly the method's
// results; the buffer's array is the caller's to reuse once read.
func (b *Batch) AddInto(h MethodHandle, out []any, args ...any) error {
	if h.call == nil {
		return fmt.Errorf("%w: batch entry through zero method handle", ErrUnbound)
	}
	if err := CheckArity(h.decl, args); err != nil {
		return err
	}
	b.calls = append(b.calls, BatchCall{h: h, args: args, out: out})
	return nil
}

// SetMode selects the dispatch mode of future Runs. The default is
// InOrder; Grouped opts in to one-crossing-per-distinct-target
// dispatch with its cross-target reordering — see Batch. The mode
// survives Reset, like the entry array's capacity.
func (b *Batch) SetMode(m BatchMode) { b.mode = m }

// Mode reports the batch's dispatch mode.
func (b *Batch) Mode() BatchMode { return b.mode }

// Crossings reports how many Batcher group dispatches the last Run
// paid. For entries resolved through cross-domain proxies every group
// dispatch is one protection crossing, so this is the crossing bill
// of the run: len(batch) in the worst in-order mixed case, the number
// of distinct targets in grouped mode. Entries with no batcher (local
// objects, interposers) dispatch without crossing and do not count.
func (b *Batch) Crossings() int { return b.crossings }

// Len reports the number of queued entries.
func (b *Batch) Len() int { return len(b.calls) }

// Call returns the i'th entry (for reading results after Run).
func (b *Batch) Call(i int) *BatchCall { return &b.calls[i] }

// Results returns the i'th entry's results or error after Run.
func (b *Batch) Results(i int) ([]any, error) { return b.calls[i].Results() }

// Reset empties the batch, keeping the entry array's capacity and
// dropping all value references so a pooled batch does not pin caller
// data.
func (b *Batch) Reset() {
	for i := range b.calls {
		b.calls[i] = BatchCall{}
	}
	b.calls = b.calls[:0]
}

// Run executes the batch. In InOrder mode (the default) entries run
// strictly in order: maximal runs of consecutive entries sharing one
// Batcher are handed to it as a group — one protection crossing for
// the whole run — while entries with no batcher (local objects,
// interposers) dispatch directly. In Grouped mode entries are
// partitioned by target first and each distinct target's partition
// dispatches as one group — one crossing per target, whatever the
// queueing order — with every result scattered back to its original
// entry slot. Per-entry results and errors land in the entries
// (Results); Run returns the first group-level dispatch error, if
// any, after attempting every group.
//
//paramecium:hotpath
func (b *Batch) Run() error {
	b.crossings = 0
	if b.mode == Grouped {
		return b.runGrouped()
	}
	var firstErr error
	calls := b.calls
	for i := 0; i < len(calls); {
		c := &calls[i]
		if c.h.batcher == nil {
			if c.out != nil {
				c.res, c.err = c.h.CallInto(c.out, c.args...)
			} else {
				c.res, c.err = c.h.Call(c.args...)
			}
			i++
			continue
		}
		j := i + 1
		for j < len(calls) && sameBatcher(calls[j].h.batcher, c.h.batcher) {
			j++
		}
		b.crossings++
		if err := dispatchGroup(c.h.batcher, calls[i:j], InOrder); err != nil && firstErr == nil {
			firstErr = err
		}
		i = j
	}
	return firstErr
}

// runGrouped is Run's Grouped-mode body: multi-target vectoring. It
// assigns every entry to a partition (one per distinct Batcher, in
// first-appearance order, plus one for batcher-less local entries),
// gathers each partition into a contiguous scratch group preserving
// the entries' relative order, dispatches each group in ONE crossing,
// and scatters the results back to the caller's original entry slots.
// All scratch state is retained across runs, so the steady-state
// grouped path allocates nothing.
//
//paramecium:hotpath
func (b *Batch) runGrouped() error {
	calls := b.calls
	b.targets = b.targets[:0]
	b.tidx = b.tidx[:0]
	localIdx := -1
	for i := range calls {
		bt := calls[i].h.batcher
		idx := -1
		if bt == nil {
			if localIdx < 0 {
				b.targets = append(b.targets, nil)
				localIdx = len(b.targets) - 1
			}
			idx = localIdx
		} else {
			for j := range b.targets {
				if sameBatcher(b.targets[j], bt) {
					idx = j
					break
				}
			}
			if idx < 0 {
				// First entry for this target — or a batcher of an
				// uncomparable type, which sameBatcher never matches
				// (not even against itself), so each of its entries
				// forms its own partition of one: exactly the groups
				// InOrder mode would have formed.
				b.targets = append(b.targets, bt)
				idx = len(b.targets) - 1
			}
		}
		b.tidx = append(b.tidx, idx)
	}

	var firstErr error
	b.scratch = b.scratch[:0]
	b.perm = b.perm[:0]
	for k := range b.targets {
		if b.targets[k] == nil {
			// The local partition: nothing to amortize, so entries
			// dispatch directly, in their original relative order.
			for i := range calls {
				if b.tidx[i] != k {
					continue
				}
				c := &calls[i]
				if c.out != nil {
					c.res, c.err = c.h.CallInto(c.out, c.args...)
				} else {
					c.res, c.err = c.h.Call(c.args...)
				}
			}
			continue
		}
		start := len(b.scratch)
		for i := range calls {
			if b.tidx[i] == k {
				b.scratch = append(b.scratch, calls[i])
				b.perm = append(b.perm, i)
			}
		}
		group := b.scratch[start:len(b.scratch):len(b.scratch)]
		b.crossings++
		if err := dispatchGroup(b.targets[k], group, Grouped); err != nil && firstErr == nil {
			firstErr = err
		}
		// Scatter: each group entry's outcome lands back in the
		// caller's original entry slot, so readers index the batch
		// exactly as they queued it, whatever the partition order.
		for s := start; s < len(b.scratch); s++ {
			calls[b.perm[s]].res = b.scratch[s].res
			calls[b.perm[s]].err = b.scratch[s].err
		}
	}
	// Drop the scratch copies' value references so a reused batch
	// does not pin caller data between runs (Reset only clears the
	// entries themselves), and drop the target refs so scratch never
	// outlives a proxy it grouped for.
	clear(b.scratch)
	b.scratch = b.scratch[:0]
	clear(b.targets)
	b.targets = b.targets[:0]
	return firstErr
}

// sameBatcher reports whether two handles name the same Batcher,
// without panicking on Batcher implementations of uncomparable types
// (a struct with a slice or map field): those never group — each
// entry dispatches as its own batch of one, which is correct, just
// unamortized. Pointer-typed batchers (the cross-domain proxy)
// compare by identity.
func sameBatcher(a, b Batcher) bool {
	if a == nil || b == nil {
		return false
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}
