// Package ring implements a single-producer/single-consumer record
// ring layered on a shared-memory segment: the streaming data plane
// that completes the paper's communication model — shared memory for
// data, event-driven notification for control.
//
// # Why a ring
//
// The segment plane (internal/shm) already moves bulk payloads for
// free — share beats copy 9.6x at 4 KiB — but every transfer still
// pays a per-transfer vectored notify, and the vectored call plane
// (internal/obj Batch) amortizes the fixed crossing cost only when the
// caller collects calls by hand. A ring amortizes the *notification*:
// the producer publishes records into shared slots at a couple of
// cycles each and rings one doorbell per burst, so the ~700-cycle
// fixed cost of waking the consumer is split across the whole burst.
// At burst 64 the per-record overhead is push (≈5) + pop (≈5) +
// doorbell/64 (≈12) ≈ 22 cycles — versus ≈59 for the per-transfer
// share+notify pattern of the P6 experiment.
//
// # Wire format
//
// A ring of S slots of B payload bytes lives in one segment owned by
// the producer's protection domain, granted read-write to the
// consumer. All control state is little-endian uint64 words at fixed
// offsets in page 0:
//
//	off  0  magic     0x706d72696e673031 ("pmring01")
//	off  8  slots     S
//	off 16  slotBytes B
//	off 24  tail      records published — written by the producer only
//	off 32  head      records consumed — written by the consumer only
//	off 40  doorbell  tail value latched at the last Notify
//
// tail and head are free-running counters (they never wrap to zero);
// slot indices are counter mod S, the ring is empty when head == tail
// and full when tail-head == S. Because each control word has exactly
// one writer, no compare-and-swap is needed anywhere in the protocol.
//
// Behind the control words sits a dense descriptor array — one
// 8-byte length word per slot, starting at offset 64 — and behind
// that, page-aligned, the payload slots (slotBytes rounded up to a
// word). The descriptor array is what keeps the steady-state working
// set small: publishing and consuming a record touches only control
// and descriptor words, which pack hundreds to a page, so a ring of
// large slots stays TLB-resident (the simulated TLBs hold
// mmu.DefaultTLBSize entries) no matter how big the payload area is.
// Payload pages cost translations only when a side actually reads or
// writes payload bytes — exactly the accounting of the segment plane,
// where the mapped data is charged to whoever touches it.
//
// # Ordering and atomicity
//
// Every word access goes through Segment.Store/Load (producer side)
// or Attachment.Store/Load (consumer side), i.e. under the existing
// per-grant access locks and the simulated memory's global ordering.
// Word accesses are therefore atomic, and a side's writes become
// visible in program order: the producer writes the descriptor
// *before* publishing tail, so a consumer that observes the new tail
// always observes the descriptor; the consumer publishes head only
// after it is done with the slot, so the producer never overwrites a
// record still being read.
//
// # Doorbell
//
// Producer.Notify latches tail into the doorbell word (charged as one
// clock.OpDoorbell, paid by the producer per burst — not per record)
// and, if a doorbell handle is set, invokes it: a zero-argument
// method, typically resolved through the cross-domain proxy plane, so
// one vectored crossing wakes the consumer for the whole burst. A
// ring without a doorbell handle is a pure polling ring.
//
// # Hangup, not errors
//
// The revoked grant tombstone of the segment plane is the ring's
// hangup signal. If the producer's domain is destroyed (or calls
// Hangup), the grant is revoked and every consumer access fails; if
// the consumer's domain is destroyed, the CondemnDomain sweep revokes
// the grant and the producer finds out at the next Push. Both sides
// surface this as ErrHangup — distinct from shm.ErrNoGrant, which
// means a capability that never existed. Unconsumed records are lost
// on hangup, mirroring the paper's segment-fault semantics: the
// mapping is gone, so the data is too.
//
// # Tuning
//
// Burst size (records per Notify) is the lever: per-record overhead
// is roughly 10 + crossing/burst cycles, where crossing ≈ 700 under
// the default cost model, so burst 16 breaks even with batched calls
// and burst ≥ 32 wins decisively. Slot count bounds the producer's
// lead over the consumer; 2x the burst lets one burst be produced
// while the previous one drains. Slot size only reserves payload
// space — it does not appear in the steady-state cost at all.
//
// ARCHITECTURE.md at the repository root specifies the wire format and
// ordering rules alongside the full cost-model table and the layer
// diagram this plane slots into.
package ring
