// Package chargepath is the golden suite for the chargepath analyzer:
// raw data movement must be dominated by a clock charge on every path.
package chargepath

// Meter mirrors the clock meter's charging surface.
type Meter struct{}

func (m *Meter) Charge(op int)            {}
func (m *Meter) ChargeN(op int, n uint64) {}

// PhysMem mirrors the raw DRAM primitive.
type PhysMem struct{}

func (p *PhysMem) Read(pa uint64, buf []byte) error  { return nil }
func (p *PhysMem) Write(pa uint64, buf []byte) error { return nil }

type dev struct {
	meter *Meter
	phys  *PhysMem
}

const opCopy = 1

// badCopy moves bytes with no charge anywhere.
func (d *dev) badCopy(dst, src []byte) {
	copy(dst, src) // want `copy of payload bytes is not dominated by a clock charge`
}

// badPhysWrite touches DRAM with no charge.
func (d *dev) badPhysWrite(pa uint64, buf []byte) {
	d.phys.Write(pa, buf) // want `PhysMem\.Write is not dominated by a clock charge`
}

// goodCopy charges before moving.
func (d *dev) goodCopy(dst, src []byte) {
	d.meter.ChargeN(opCopy, uint64(len(src)))
	copy(dst, src)
}

// chargeLate charges only after the movement: the movement itself is
// undominated.
func (d *dev) chargeLate(dst, src []byte) {
	copy(dst, src) // want `copy of payload bytes is not dominated by a clock charge`
	d.meter.ChargeN(opCopy, uint64(len(src)))
}

// oneArm charges on one branch only, which does not dominate.
func (d *dev) oneArm(pa uint64, buf []byte, fast bool) {
	if fast {
		d.meter.Charge(opCopy)
	}
	d.phys.Read(pa, buf) // want `PhysMem\.Read is not dominated by a clock charge`
}

// bothArms charges on every branch, which does.
func (d *dev) bothArms(pa uint64, buf []byte, fast bool) {
	if fast {
		d.meter.Charge(opCopy)
	} else {
		d.meter.ChargeN(opCopy, 2)
	}
	d.phys.Read(pa, buf)
}

// viaHelper charges through a same-package helper that itself charges.
func (d *dev) viaHelper(dst, src []byte) {
	d.chargeCopy(len(src))
	copy(dst, src)
}

func (d *dev) chargeCopy(n int) { d.meter.ChargeN(opCopy, uint64(n)) }

// mirror is a PhysMem method: the raw primitive sits below the cost
// model and is exempt.
func (p *PhysMem) mirror(dst, src []byte) {
	copy(dst, src)
}

// dma is a reviewed deviation: the copy models a device DMA engine.
func (d *dev) dma(dst, src []byte) {
	//paralint:ignore chargepath device DMA engines cost no CPU cycles in this model
	copy(dst, src)
}

// ints moves non-payload (non-byte) data, which is not charged.
func (d *dev) ints(dst, src []int) {
	copy(dst, src)
}
