package netstack

import (
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// StackIface is the interface name exported by the stack object.
const StackIface = "paramecium.netstack.v1"

// StackDecl is the stack interface's type information.
var StackDecl = obj.MustInterfaceDecl(StackIface,
	obj.MethodDecl{Name: "pump", NumIn: 0, NumOut: 1},  // -> frames processed
	obj.MethodDecl{Name: "send", NumIn: 3, NumOut: 0},  // (dstPort, srcPort, payload)
	obj.MethodDecl{Name: "stats", NumIn: 0, NumOut: 4}, // -> delivered, filtered, noport, malformed
)

// Errors.
var (
	ErrPortBusy = errors.New("netstack: port already bound")
	ErrNoPort   = errors.New("netstack: port not bound")
)

// Stats counts the stack's dispositions.
type Stats struct {
	Delivered uint64 // datagrams queued to an endpoint
	Filtered  uint64 // frames rejected by a filter
	NoPort    uint64 // datagrams to unbound ports
	Malformed uint64 // frames that failed to parse
}

// Stack is the shared protocol stack: it pulls frames from a network
// driver (any object exporting paramecium.netdev.v1), runs the
// attached packet filters, parses Ethernet/IP/UDP and demultiplexes
// datagrams to bound endpoints.
type Stack struct {
	*obj.Object
	// recv/send are the driver methods pre-resolved at construction:
	// the per-frame pump path dispatches by slot, not by name.
	recv  obj.MethodHandle
	send  obj.MethodHandle
	meter *clock.Meter

	// Addr/HWAddr identify this stack on the simulated wire.
	Addr   IP
	HWAddr MAC

	mu        sync.Mutex
	filters   []Filter
	endpoints map[uint16]*Endpoint
	stats     Stats
}

// NewStack builds a stack over a driver interface.
func NewStack(class string, meter *clock.Meter, driver obj.Invoker, hwaddr MAC, addr IP) (*Stack, error) {
	if driver == nil {
		return nil, errors.New("netstack: nil driver")
	}
	recv, err := driver.Resolve("recv")
	if err != nil {
		return nil, fmt.Errorf("netstack: driver has no recv: %w", err)
	}
	send, err := driver.Resolve("send")
	if err != nil {
		return nil, fmt.Errorf("netstack: driver has no send: %w", err)
	}
	s := &Stack{
		Object:    obj.New(class, meter),
		recv:      recv,
		send:      send,
		meter:     meter,
		Addr:      addr,
		HWAddr:    hwaddr,
		endpoints: make(map[uint16]*Endpoint),
	}
	bi, err := s.AddInterface(StackDecl, s)
	if err != nil {
		return nil, err
	}
	bi.MustBind("pump", func(...any) ([]any, error) {
		return []any{s.Pump()}, nil
	}).MustBind("send", func(args ...any) ([]any, error) {
		dstPort, ok1 := args[0].(uint16)
		srcPort, ok2 := args[1].(uint16)
		payload, ok3 := args[2].([]byte)
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("netstack: send wants (uint16, uint16, []byte)")
		}
		return nil, s.Send(BroadcastMAC, s.Addr, dstPort, srcPort, payload)
	}).MustBind("stats", func(...any) ([]any, error) {
		st := s.Stats()
		return []any{st.Delivered, st.Filtered, st.NoPort, st.Malformed}, nil
	})
	return s, nil
}

// BroadcastMAC is the all-ones hardware address.
var BroadcastMAC = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// AttachFilter appends a filter to the chain (run in attach order).
func (s *Stack) AttachFilter(f Filter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.filters = append(s.filters, f)
}

// DetachFilter removes the named filter.
func (s *Stack) DetachFilter(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, f := range s.filters {
		if f.Name() == name {
			s.filters = append(s.filters[:i], s.filters[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("netstack: no filter %q", name)
}

// Filters lists attached filter names in order.
func (s *Stack) Filters() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.filters))
	for i, f := range s.filters {
		out[i] = f.Name()
	}
	return out
}

// Bind claims a UDP port and returns its endpoint.
func (s *Stack) Bind(port uint16) (*Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, busy := s.endpoints[port]; busy {
		return nil, fmt.Errorf("%w: %d", ErrPortBusy, port)
	}
	ep := &Endpoint{stack: s, port: port}
	s.endpoints[port] = ep
	return ep, nil
}

// Unbind releases a port.
func (s *Stack) Unbind(port uint16) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.endpoints[port]; !ok {
		return fmt.Errorf("%w: %d", ErrNoPort, port)
	}
	delete(s.endpoints, port)
	return nil
}

// Pump drains the driver's receive queue through the stack and
// returns the number of frames processed.
func (s *Stack) Pump() int {
	n := 0
	for {
		res, err := s.recv.Call()
		if err != nil {
			return n
		}
		frame, _ := res[0].([]byte)
		if frame == nil {
			return n
		}
		s.Deliver(frame)
		n++
	}
}

// Deliver pushes one raw frame through filters, parsing and
// demultiplexing. It is exported so the experiments can feed the
// stack directly.
func (s *Stack) Deliver(frame []byte) {
	s.mu.Lock()
	filters := s.filters
	s.mu.Unlock()
	for _, f := range filters {
		ok, err := f.Accept(frame)
		if err != nil || !ok {
			s.mu.Lock()
			s.stats.Filtered++
			s.mu.Unlock()
			return
		}
	}
	// Header processing is charged per protocol layer, the payload
	// copy per word, so the stack's own cost is visible in virtual
	// time alongside the filters'.
	if s.meter != nil {
		s.meter.ChargeN(clock.OpCall, 3)
		s.meter.ChargeN(clock.OpCopyWord, uint64(len(frame)+7)/8)
	}
	eth, err := ParseFrame(frame)
	if err != nil || eth.EtherType != EtherTypeIP {
		s.countMalformed()
		return
	}
	ip, err := ParseIP(eth.Payload)
	if err != nil || ip.Proto != ProtoUDP {
		s.countMalformed()
		return
	}
	udp, err := ParseUDP(ip.Payload)
	if err != nil {
		s.countMalformed()
		return
	}
	s.mu.Lock()
	ep, ok := s.endpoints[udp.DstPort]
	if !ok {
		s.stats.NoPort++
		s.mu.Unlock()
		return
	}
	s.stats.Delivered++
	s.mu.Unlock()
	ep.push(Received{Src: ip.Src, SrcPort: udp.SrcPort, Payload: append([]byte{}, udp.Payload...)})
}

func (s *Stack) countMalformed() {
	s.mu.Lock()
	s.stats.Malformed++
	s.mu.Unlock()
}

// Send transmits a UDP datagram through the driver.
func (s *Stack) Send(dstMAC MAC, dstIP IP, dstPort, srcPort uint16, payload []byte) error {
	frame := BuildUDPFrame(dstMAC, s.HWAddr, s.Addr, dstIP, srcPort, dstPort, payload)
	_, err := s.send.Call(frame)
	return err
}

// Stats returns a snapshot of the counters.
func (s *Stack) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Received is one delivered datagram.
type Received struct {
	Src     IP
	SrcPort uint16
	Payload []byte
}

// Endpoint is a bound UDP port's receive queue.
type Endpoint struct {
	stack *Stack
	port  uint16

	mu sync.Mutex
	q  []Received
}

// Port reports the bound port.
func (e *Endpoint) Port() uint16 { return e.port }

func (e *Endpoint) push(r Received) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.q = append(e.q, r)
}

// Recv pops the oldest datagram.
func (e *Endpoint) Recv() (Received, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.q) == 0 {
		return Received{}, false
	}
	r := e.q[0]
	e.q = e.q[1:]
	return r, true
}

// Len reports queued datagrams.
func (e *Endpoint) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.q)
}
