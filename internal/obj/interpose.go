package obj

import (
	"fmt"
	"sort"
	"sync"

	"paramecium/internal/clock"
)

// Interposer is an interposing agent in the sense of Jones [3] as used
// by the paper: an object that "exports a superset of the original
// object's interfaces, reimplements those methods it sees fit and
// forwards the others to the original object". Replacing an object
// handle in the name space with an interposer transparently puts the
// agent on every future binding — the basis of the paper's monitoring
// and debugging tools.
type Interposer struct {
	class  string
	target Instance
	meter  *clock.Meter

	mu     sync.RWMutex
	wraps  map[string]map[string]WrapFunc // iface -> method -> wrapper
	extras map[string]Invoker             // additional interfaces (the superset part)
}

// WrapFunc reimplements one method. next invokes the original
// implementation, so a wrapper can run code before and after, modify
// arguments or results, or suppress the call entirely.
type WrapFunc func(next Method, args ...any) ([]any, error)

// NewInterposer wraps target. The interposer initially forwards
// everything; use Wrap and AddExtraInterface to specialize it.
func NewInterposer(class string, target Instance) *Interposer {
	return &Interposer{
		class:  class,
		target: target,
		wraps:  make(map[string]map[string]WrapFunc),
		extras: make(map[string]Invoker),
	}
}

// Target returns the wrapped instance.
func (ip *Interposer) Target() Instance { return ip.target }

// SetMeter makes the interposer charge one indirect-call cost per
// invocation passing through it, so interposition layers are visible
// in virtual time (experiment T1).
func (ip *Interposer) SetMeter(m *clock.Meter) {
	ip.mu.Lock()
	ip.meter = m
	ip.mu.Unlock()
}

// Class implements Instance.
func (ip *Interposer) Class() string { return ip.class }

// Wrap reimplements one method of one interface of the target.
func (ip *Interposer) Wrap(ifaceName, method string, w WrapFunc) error {
	target, ok := ip.target.Iface(ifaceName)
	if !ok {
		return fmt.Errorf("%w: target %q has no %q", ErrNoInterface, ip.target.Class(), ifaceName)
	}
	if _, ok := target.Decl().Method(method); !ok {
		return fmt.Errorf("%w: %q.%s", ErrNoMethod, ifaceName, method)
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	m := ip.wraps[ifaceName]
	if m == nil {
		m = make(map[string]WrapFunc)
		ip.wraps[ifaceName] = m
	}
	m[method] = w
	return nil
}

// AddExtraInterface exports an interface the target does not have —
// the "superset" in the paper's definition (e.g. a measurement
// interface on a wrapped RPC object).
func (ip *Interposer) AddExtraInterface(iv Invoker) error {
	name := iv.Decl().Name
	if _, ok := ip.target.Iface(name); ok {
		return fmt.Errorf("obj: %q already exported by target; use Wrap", name)
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if _, dup := ip.extras[name]; dup {
		return fmt.Errorf("obj: extra interface %q already added", name)
	}
	ip.extras[name] = iv
	return nil
}

// InterfaceNames implements Instance: the union of the target's
// interfaces and the extras, sorted.
func (ip *Interposer) InterfaceNames() []string {
	names := ip.target.InterfaceNames()
	ip.mu.RLock()
	for n := range ip.extras {
		names = append(names, n)
	}
	ip.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Iface implements Instance.
func (ip *Interposer) Iface(name string) (Invoker, bool) {
	ip.mu.RLock()
	if extra, ok := ip.extras[name]; ok {
		ip.mu.RUnlock()
		return extra, true
	}
	wraps := ip.wraps[name]
	meter := ip.meter
	ip.mu.RUnlock()
	target, ok := ip.target.Iface(name)
	if !ok {
		return nil, false
	}
	return &interposedIface{target: target, wraps: wraps, meter: meter}, true
}

// interposedIface presents one interface of the target with wrappers
// applied. Unwrapped methods forward directly.
type interposedIface struct {
	target Invoker
	wraps  map[string]WrapFunc
	meter  *clock.Meter
}

func (ii *interposedIface) Decl() *InterfaceDecl { return ii.target.Decl() }
func (ii *interposedIface) State() any           { return ii.target.State() }

func (ii *interposedIface) Invoke(method string, args ...any) ([]any, error) {
	if ii.meter != nil {
		ii.meter.Charge(clock.OpIndirect)
	}
	if w, ok := ii.wraps[method]; ok {
		next := func(a ...any) ([]any, error) {
			return ii.target.Invoke(method, a...)
		}
		return w(next, args...)
	}
	return ii.target.Invoke(method, args...)
}

// Resolve implements Invoker. The target's handle is resolved once,
// so repeated calls pay neither the interposer's nor the target's
// name lookup; the wrapper is looked up per call from the same wrap
// set Invoke consults, so a Wrap installed after Resolve is observed
// by live handles exactly as it is by string invocation. An
// interface with no wrap set and no meter resolves straight through
// to the target's handle.
func (ii *interposedIface) Resolve(method string) (MethodHandle, error) {
	th, err := ii.target.Resolve(method)
	if err != nil {
		return MethodHandle{}, err
	}
	if ii.wraps == nil && ii.meter == nil {
		return th, nil
	}
	return MethodHandle{decl: th.decl, call: func(args ...any) ([]any, error) {
		if ii.meter != nil {
			ii.meter.Charge(clock.OpIndirect)
		}
		if w, ok := ii.wraps[method]; ok {
			return w(th.Call, args...)
		}
		return th.call(args...)
	}}, nil
}

var _ Instance = (*Interposer)(nil)
var _ Invoker = (*interposedIface)(nil)
