package netstack

import (
	"errors"
	"testing"
	"testing/quick"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
	"paramecium/internal/sandbox"
)

var (
	macA = MAC{2, 0, 0, 0, 0, 1}
	macB = MAC{2, 0, 0, 0, 0, 2}
	ipA  = IP{10, 0, 0, 1}
	ipB  = IP{10, 0, 0, 2}
)

func TestAddressStrings(t *testing.T) {
	if macA.String() != "02:00:00:00:00:01" {
		t.Fatalf("MAC = %q", macA.String())
	}
	if ipA.String() != "10.0.0.1" {
		t.Fatalf("IP = %q", ipA.String())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	b := BuildFrame(macA, macB, EtherTypeIP, []byte("payload"))
	f, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dst != macA || f.Src != macB || f.EtherType != EtherTypeIP || string(f.Payload) != "payload" {
		t.Fatalf("frame = %+v", f)
	}
	if _, err := ParseFrame(b[:10]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short frame: %v", err)
	}
}

func TestIPRoundTrip(t *testing.T) {
	b := BuildIP(ipA, ipB, ProtoUDP, []byte("data"))
	p, err := ParseIP(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Src != ipA || p.Dst != ipB || p.Proto != ProtoUDP || p.TTL != DefaultTTL || string(p.Payload) != "data" {
		t.Fatalf("packet = %+v", p)
	}
	if _, err := ParseIP(b[:4]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short: %v", err)
	}
	// Total length beyond buffer.
	bad := append([]byte{}, b...)
	bad[2], bad[3] = 0xFF, 0xFF
	if _, err := ParseIP(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad length: %v", err)
	}
	// Trailing padding after total length is ignored.
	padded := append(append([]byte{}, b...), 0, 0, 0)
	p2, err := ParseIP(padded)
	if err != nil || string(p2.Payload) != "data" {
		t.Fatalf("padded parse: %v %q", err, p2.Payload)
	}
}

func TestUDPRoundTripAndChecksum(t *testing.T) {
	b := BuildUDP(1000, 2000, []byte("hello"))
	d, err := ParseUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 1000 || d.DstPort != 2000 || string(d.Payload) != "hello" {
		t.Fatalf("dgram = %+v", d)
	}
	// Corrupt a payload byte: checksum must catch it.
	bad := append([]byte{}, b...)
	bad[UDPHeaderLen] ^= 0xFF
	if _, err := ParseUDP(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("corrupted: %v", err)
	}
	if _, err := ParseUDP(b[:4]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short: %v", err)
	}
}

func TestChecksumProperties(t *testing.T) {
	f := func(data []byte) bool {
		c := Checksum(data)
		// Deterministic.
		if Checksum(data) != c {
			return false
		}
		// One-byte flips are detected (for payloads with at least 1 byte).
		if len(data) > 0 {
			mut := append([]byte{}, data...)
			mut[0] ^= 0x01
			if Checksum(mut) == c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// fakeDriver is a minimal in-memory netdev object for stack tests.
type fakeDriver struct {
	*obj.Object
	rxq  [][]byte
	sent [][]byte
}

func newFakeDriver() *fakeDriver {
	d := &fakeDriver{Object: obj.New("fakedrv", nil)}
	bi, err := d.AddInterface(obj.MustInterfaceDecl("paramecium.netdev.v1",
		obj.MethodDecl{Name: "send", NumIn: 1, NumOut: 0},
		obj.MethodDecl{Name: "recv", NumIn: 0, NumOut: 1},
		obj.MethodDecl{Name: "stats", NumIn: 0, NumOut: 3},
	), nil)
	if err != nil {
		panic(err)
	}
	bi.MustBind("send", func(args ...any) ([]any, error) {
		d.sent = append(d.sent, args[0].([]byte))
		return nil, nil
	}).MustBind("recv", func(...any) ([]any, error) {
		if len(d.rxq) == 0 {
			return []any{[]byte(nil)}, nil
		}
		f := d.rxq[0]
		d.rxq = d.rxq[1:]
		return []any{f}, nil
	}).MustBind("stats", func(...any) ([]any, error) {
		return []any{uint64(0), uint64(0), uint64(0)}, nil
	})
	return d
}

func (d *fakeDriver) iface() obj.Invoker {
	iv, _ := d.Iface("paramecium.netdev.v1")
	return iv
}

func newTestStack(t *testing.T) (*Stack, *fakeDriver) {
	t.Helper()
	drv := newFakeDriver()
	s, err := NewStack("stack", clock.NewMeter(clock.DefaultCosts()), drv.iface(), macA, ipA)
	if err != nil {
		t.Fatal(err)
	}
	return s, drv
}

func TestStackDeliverToEndpoint(t *testing.T) {
	s, drv := newTestStack(t)
	ep, err := s.Bind(7)
	if err != nil {
		t.Fatal(err)
	}
	drv.rxq = append(drv.rxq, BuildUDPFrame(macA, macB, ipB, ipA, 9000, 7, []byte("ping")))
	if n := s.Pump(); n != 1 {
		t.Fatalf("pumped %d", n)
	}
	got, ok := ep.Recv()
	if !ok || string(got.Payload) != "ping" || got.SrcPort != 9000 || got.Src != ipB {
		t.Fatalf("recv = %+v, %v", got, ok)
	}
	st := s.Stats()
	if st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStackPortLifecycle(t *testing.T) {
	s, _ := newTestStack(t)
	if _, err := s.Bind(7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind(7); !errors.Is(err, ErrPortBusy) {
		t.Fatalf("rebind: %v", err)
	}
	if err := s.Unbind(7); err != nil {
		t.Fatal(err)
	}
	if err := s.Unbind(7); !errors.Is(err, ErrNoPort) {
		t.Fatalf("double unbind: %v", err)
	}
}

func TestStackNoPortCounted(t *testing.T) {
	s, _ := newTestStack(t)
	s.Deliver(BuildUDPFrame(macA, macB, ipB, ipA, 1, 99, []byte("x")))
	if st := s.Stats(); st.NoPort != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStackMalformedCounted(t *testing.T) {
	s, _ := newTestStack(t)
	s.Deliver([]byte("way too short"))
	// Valid eth, bad ethertype.
	s.Deliver(BuildFrame(macA, macB, 0x9999, []byte("xxxxxxxxxxxxxxxx")))
	// Valid eth+ip, corrupt UDP checksum.
	udp := BuildUDP(1, 2, []byte("data"))
	udp[UDPHeaderLen] ^= 0xFF
	s.Deliver(BuildFrame(macA, macB, EtherTypeIP, BuildIP(ipB, ipA, ProtoUDP, udp)))
	if st := s.Stats(); st.Malformed != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStackSend(t *testing.T) {
	s, drv := newTestStack(t)
	if err := s.Send(macB, ipB, 53, 1024, []byte("query")); err != nil {
		t.Fatal(err)
	}
	if len(drv.sent) != 1 {
		t.Fatal("nothing sent")
	}
	f, err := ParseFrame(drv.sent[0])
	if err != nil || f.Dst != macB || f.Src != macA {
		t.Fatalf("sent frame = %+v, %v", f, err)
	}
	ip, err := ParseIP(f.Payload)
	if err != nil || ip.Dst != ipB {
		t.Fatalf("ip = %+v, %v", ip, err)
	}
	udp, err := ParseUDP(ip.Payload)
	if err != nil || udp.DstPort != 53 || string(udp.Payload) != "query" {
		t.Fatalf("udp = %+v, %v", udp, err)
	}
}

func TestStackObjectInterface(t *testing.T) {
	s, drv := newTestStack(t)
	iv, ok := s.Iface(StackIface)
	if !ok {
		t.Fatal("stack interface missing")
	}
	if _, err := iv.Invoke("send", uint16(80), uint16(1000), []byte("web")); err != nil {
		t.Fatal(err)
	}
	if len(drv.sent) != 1 {
		t.Fatal("send via interface failed")
	}
	res, err := iv.Invoke("pump")
	if err != nil || res[0].(int) != 0 {
		t.Fatalf("pump = %v, %v", res, err)
	}
	res, err = iv.Invoke("stats")
	if err != nil || len(res) != 4 {
		t.Fatalf("stats = %v, %v", res, err)
	}
	if _, err := iv.Invoke("send", 1, 2, 3); err == nil {
		t.Fatal("bad args accepted")
	}
}

func TestGoFilter(t *testing.T) {
	s, _ := newTestStack(t)
	ep, _ := s.Bind(7)
	s.AttachFilter(FilterFunc{FName: "drop-odd", Fn: func(frame []byte) bool {
		return len(frame)%2 == 0
	}})
	even := BuildUDPFrame(macA, macB, ipB, ipA, 1, 7, []byte("ab")) // even overall?
	odd := BuildUDPFrame(macA, macB, ipB, ipA, 1, 7, []byte("abc"))
	// Sizes: 14+12+8+len. For "ab": 36 (even). For "abc": 37 (odd).
	s.Deliver(even)
	s.Deliver(odd)
	if ep.Len() != 1 {
		t.Fatalf("endpoint got %d datagrams", ep.Len())
	}
	st := s.Stats()
	if st.Filtered != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := s.Filters(); len(got) != 1 || got[0] != "drop-odd" {
		t.Fatalf("filters = %v", got)
	}
	if err := s.DetachFilter("drop-odd"); err != nil {
		t.Fatal(err)
	}
	if err := s.DetachFilter("drop-odd"); err == nil {
		t.Fatal("double detach succeeded")
	}
}

func TestPortFilterProgramCertified(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	prog := sandbox.MustAssemble(PortFilterProgram(7))
	f, err := NewCertifiedFilter("port7", prog, meter)
	if err != nil {
		t.Fatal(err)
	}
	hit := BuildUDPFrame(macA, macB, ipB, ipA, 999, 7, []byte("yes"))
	miss := BuildUDPFrame(macA, macB, ipB, ipA, 999, 8, []byte("no"))
	short := []byte{1, 2, 3}
	notIP := BuildFrame(macA, macB, 0x0806, make([]byte, 40))

	for _, c := range []struct {
		frame []byte
		want  bool
	}{{hit, true}, {miss, false}, {short, false}, {notIP, false}} {
		got, err := f.Accept(c.frame)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("Accept(len %d) = %v, want %v", len(c.frame), got, c.want)
		}
	}
	if meter.Count(clock.OpSFICheck) != 0 {
		t.Fatal("certified filter paid SFI checks")
	}
}

func TestPortFilterProgramSandboxed(t *testing.T) {
	meter := clock.NewMeter(clock.DefaultCosts())
	prog := sandbox.MustAssemble(PortFilterProgram(7))
	f, err := NewSandboxedFilter("port7-sfi", prog, meter)
	if err != nil {
		t.Fatal(err)
	}
	hit := BuildUDPFrame(macA, macB, ipB, ipA, 999, 7, []byte("yes"))
	ok, err := f.Accept(hit)
	if err != nil || !ok {
		t.Fatalf("Accept = %v, %v", ok, err)
	}
	if meter.Count(clock.OpSFICheck) == 0 {
		t.Fatal("sandboxed filter paid no checks")
	}
}

func TestSandboxedCostsMoreThanCertified(t *testing.T) {
	prog := sandbox.MustAssemble(WorkFilterProgram(7, 256))
	frame := BuildUDPFrame(macA, macB, ipB, ipA, 999, 7, make([]byte, 512))

	mCert := clock.NewMeter(clock.DefaultCosts())
	cf, err := NewCertifiedFilter("w", prog, mCert)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.Accept(frame); err != nil {
		t.Fatal(err)
	}

	mSFI := clock.NewMeter(clock.DefaultCosts())
	sf, err := NewSandboxedFilter("w", prog, mSFI)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Accept(frame); err != nil {
		t.Fatal(err)
	}
	if mSFI.Clock.Now() <= mCert.Clock.Now() {
		t.Fatalf("sandboxed %d cycles <= certified %d", mSFI.Clock.Now(), mCert.Clock.Now())
	}
}

func TestFilterCannotSeePreviousFrames(t *testing.T) {
	// A filter reading beyond the current frame must see zeros, not
	// the previous frame's bytes (no cross-user snooping through the
	// filter segment).
	meter := clock.NewMeter(clock.DefaultCosts())
	// Reads one byte at offset 100 into the frame area.
	prog := sandbox.MustAssemble(`
        loadi r1, 102
        ld8   r0, [r1+0]
        halt  r0
`)
	f, err := NewCertifiedFilter("peek", prog, meter)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 200)
	for i := range big {
		big[i] = 0xAA
	}
	if _, err := f.Accept(big); err != nil {
		t.Fatal(err)
	}
	// Now a short frame: offset 102 is past its end and must read 0.
	ok, err := f.Accept([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("filter observed residue of a previous frame")
	}
}

func TestAcceptAllProgram(t *testing.T) {
	f, err := NewCertifiedFilter("all", sandbox.MustAssemble(AcceptAllProgram), nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := f.Accept([]byte{})
	if err != nil || !ok {
		t.Fatalf("Accept = %v, %v", ok, err)
	}
}

func TestFilterErrorDropsFrame(t *testing.T) {
	s, _ := newTestStack(t)
	ep, _ := s.Bind(7)
	// A certified filter with a wild read fails at run time; the
	// frame must be dropped, not delivered.
	prog := sandbox.MustAssemble("loadi r1, 999999\nld8 r0, [r1+0]\nhalt r0")
	f, err := NewCertifiedFilter("wild", prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachFilter(f)
	s.Deliver(BuildUDPFrame(macA, macB, ipB, ipA, 1, 7, []byte("x")))
	if ep.Len() != 0 {
		t.Fatal("frame delivered despite filter failure")
	}
	if st := s.Stats(); st.Filtered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUDPFrameRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		frame := BuildUDPFrame(macA, macB, ipA, ipB, sp, dp, payload)
		eth, err := ParseFrame(frame)
		if err != nil {
			return false
		}
		ip, err := ParseIP(eth.Payload)
		if err != nil {
			return false
		}
		udp, err := ParseUDP(ip.Payload)
		if err != nil {
			return false
		}
		return udp.SrcPort == sp && udp.DstPort == dp && string(udp.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
