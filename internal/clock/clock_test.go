package clock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %d, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	if got := c.Advance(5); got != 5 {
		t.Fatalf("Advance(5) = %d, want 5", got)
	}
	if got := c.Advance(7); got != 12 {
		t.Fatalf("second Advance = %d, want 12", got)
	}
	if got := c.Now(); got != 12 {
		t.Fatalf("Now() = %d, want 12", got)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(100)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() after Reset = %d, want 0", got)
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(10)
	w := c.StartWatch()
	c.Advance(32)
	if got := w.Elapsed(); got != 32 {
		t.Fatalf("Elapsed = %d, want 32", got)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*perWorker {
		t.Fatalf("Now() = %d, want %d", got, workers*perWorker)
	}
}

func TestOpString(t *testing.T) {
	if got := OpTrapEnter.String(); got != "trap-enter" {
		t.Errorf("OpTrapEnter = %q", got)
	}
	if got := Op(-1).String(); got != "op(-1)" {
		t.Errorf("Op(-1) = %q", got)
	}
	if got := Op(999).String(); got != "op(999)" {
		t.Errorf("Op(999) = %q", got)
	}
	// Every defined op must have a non-empty name.
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
}

func TestDefaultCostsNonZeroForPrivilegedOps(t *testing.T) {
	m := DefaultCosts()
	for _, op := range []Op{OpTrapEnter, OpTrapExit, OpCtxSwitch, OpTLBMiss, OpSigVerify, OpThreadCreate} {
		if m.Cost(op) == 0 {
			t.Errorf("default cost of %v is zero", op)
		}
	}
	// The paper's efficiency argument requires traps to dominate calls.
	if m.Cost(OpTrapEnter) <= m.Cost(OpCall) {
		t.Errorf("trap cost %d should exceed call cost %d", m.Cost(OpTrapEnter), m.Cost(OpCall))
	}
	// And proto-threads to be much cheaper than full threads.
	if m.Cost(OpProtoThread)*4 > m.Cost(OpThreadCreate) {
		t.Errorf("proto-thread cost %d not clearly below thread-create %d",
			m.Cost(OpProtoThread), m.Cost(OpThreadCreate))
	}
}

func TestWithCost(t *testing.T) {
	base := DefaultCosts()
	mod := base.WithCost(OpTrapEnter, 999)
	if got := mod.Cost(OpTrapEnter); got != 999 {
		t.Fatalf("modified cost = %d, want 999", got)
	}
	if got := base.Cost(OpTrapEnter); got == 999 {
		t.Fatal("WithCost mutated the receiver")
	}
	// Out-of-range op is a no-op, not a panic.
	_ = base.WithCost(Op(-1), 1)
	_ = base.WithCost(Op(NumOps), 1)
}

func TestCostOutOfRange(t *testing.T) {
	m := DefaultCosts()
	if got := m.Cost(Op(-3)); got != 0 {
		t.Errorf("Cost(-3) = %d, want 0", got)
	}
	if got := m.Cost(Op(NumOps + 1)); got != 0 {
		t.Errorf("Cost(out of range) = %d, want 0", got)
	}
}

func TestMeterChargeAdvancesAndCounts(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.Charge(OpTrapEnter)
	m.Charge(OpTrapEnter)
	m.Charge(OpCall)
	wantCycles := 2*m.Model.Cost(OpTrapEnter) + m.Model.Cost(OpCall)
	if got := m.Clock.Now(); got != wantCycles {
		t.Fatalf("clock = %d, want %d", got, wantCycles)
	}
	if got := m.Count(OpTrapEnter); got != 2 {
		t.Fatalf("Count(OpTrapEnter) = %d, want 2", got)
	}
	if got := m.Count(OpCall); got != 1 {
		t.Fatalf("Count(OpCall) = %d, want 1", got)
	}
	if got := m.Count(OpTLBMiss); got != 0 {
		t.Fatalf("Count(OpTLBMiss) = %d, want 0", got)
	}
}

func TestMeterChargeN(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.ChargeN(OpCopyWord, 128)
	if got := m.Count(OpCopyWord); got != 128 {
		t.Fatalf("Count = %d, want 128", got)
	}
	if got := m.Clock.Now(); got != 128*m.Model.Cost(OpCopyWord) {
		t.Fatalf("clock = %d", got)
	}
	m.ChargeN(OpCopyWord, 0) // must be a no-op
	if got := m.Count(OpCopyWord); got != 128 {
		t.Fatalf("ChargeN(0) changed count to %d", got)
	}
}

func TestMeterResetCounts(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.Charge(OpSchedule)
	before := m.Clock.Now()
	m.ResetCounts()
	if got := m.Count(OpSchedule); got != 0 {
		t.Fatalf("count after reset = %d", got)
	}
	if got := m.Clock.Now(); got != before {
		t.Fatalf("ResetCounts moved the clock: %d != %d", got, before)
	}
}

func TestMeterSnapshot(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.ChargeN(OpTLBMiss, 3)
	m.Charge(OpTrapExit)
	snap := m.Snapshot()
	if snap[OpTLBMiss] != 3 || snap[OpTrapExit] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestMeterChargeOutOfRangeOp(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.Charge(Op(-1)) // must not panic
	m.Charge(Op(NumOps))
	if got := m.Clock.Now(); got != 0 {
		t.Fatalf("out-of-range charge advanced clock to %d", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of range", f)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRandBytesCoversTail(t *testing.T) {
	r := NewRand(5)
	b := make([]byte, 13) // not a multiple of 8
	r.Bytes(b)
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Bytes left buffer all zero")
	}
}

// Property: the clock equals the sum of (count × cost) over all ops when
// only Charge is used.
func TestMeterAccountingInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewMeter(DefaultCosts())
		for _, o := range ops {
			m.Charge(Op(int(o) % NumOps))
		}
		var want uint64
		snap := m.Snapshot()
		for op, n := range snap {
			want += uint64(n) * m.Model.Cost(Op(op))
		}
		return m.Clock.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm always returns a valid permutation for any small n.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := NewRand(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
