// Package event implements the nucleus' processor event management
// service: "All processor events (traps and interrupts) are handled by
// this service. Components can register call-backs which are called
// every time a specified processor event occurs. A call-back consists
// of a context, and the address of a call-back function."
//
// Events are "usually redirected to the thread system to turn them
// into pop-up threads"; the service supports three dispatch policies
// so the experiments can compare them:
//
//   - DispatchRaw: the call-back runs directly on the interrupt
//     context. Fastest, but the handler must never block.
//   - DispatchProto: the call-back runs as a proto-thread, promoted to
//     a real thread only if it blocks (the paper's design).
//   - DispatchEager: a full pop-up thread is created for every event
//     (the baseline the proto-thread optimization beats).
package event

import (
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/hw"
	"paramecium/internal/mmu"
	"paramecium/internal/threads"
)

// Dispatch selects how a registered call-back is executed.
type Dispatch int

// Dispatch policies.
const (
	DispatchRaw Dispatch = iota
	DispatchProto
	DispatchEager
)

func (d Dispatch) String() string {
	switch d {
	case DispatchRaw:
		return "raw"
	case DispatchProto:
		return "proto"
	case DispatchEager:
		return "eager"
	}
	return fmt.Sprintf("dispatch(%d)", int(d))
}

// Handler is an event call-back. For thread dispatches t is the
// (proto-)thread the handler runs on; for DispatchRaw t is nil and the
// handler must not block.
type Handler func(frame *hw.TrapFrame, t *threads.Thread)

// ErrBound is returned when registering over an existing binding.
var ErrBound = errors.New("event: event already bound")

// ErrNotBound is returned when unregistering a free event.
var ErrNotBound = errors.New("event: event not bound")

// binding is one registered call-back.
type binding struct {
	ctx      mmu.ContextID
	cpu      mmu.CPUID // CPU the call-back is routed to
	dispatch Dispatch
	handler  Handler
	name     string

	mu        sync.Mutex
	delivered uint64
	promoted  uint64
	inline    uint64 // proto-threads that completed without promotion
}

// Stats is a snapshot of a binding's delivery counters.
type Stats struct {
	Name      string
	Dispatch  Dispatch
	Delivered uint64
	Promoted  uint64
	Inline    uint64
}

// Service is the processor event management service.
type Service struct {
	machine *hw.Machine
	sched   *threads.Scheduler

	mu    sync.Mutex
	irqs  map[hw.IRQLine]*binding
	traps map[hw.TrapVector]*binding

	// deliveryMu serializes deliveries per virtual CPU: a CPU runs one
	// handler at a time, exactly as hardware delivers with interrupts
	// masked, so the switch/restore pairs on one CPU's context register
	// can never interleave. Consequence (also hardware-faithful): a
	// handler must not synchronously raise an event routed to its own
	// CPU — that is spinning with interrupts off. Raise it on another
	// CPU or defer it to a thread.
	deliveryMu []sync.Mutex
}

// New builds the service over a machine and a thread scheduler.
func New(machine *hw.Machine, sched *threads.Scheduler) *Service {
	return &Service{
		machine:    machine,
		sched:      sched,
		irqs:       make(map[hw.IRQLine]*binding),
		traps:      make(map[hw.TrapVector]*binding),
		deliveryMu: make([]sync.Mutex, machine.NumCPUs()),
	}
}

// RegisterIRQ binds an interrupt line to a call-back running in ctx
// under the given dispatch policy, routed to the boot CPU.
func (s *Service) RegisterIRQ(line hw.IRQLine, name string, ctx mmu.ContextID, d Dispatch, h Handler) error {
	return s.RegisterIRQOn(line, name, ctx, d, mmu.BootCPU, h)
}

// RegisterIRQOn is RegisterIRQ with an explicit target CPU: raw and
// proto deliveries enter the call-back's context on that CPU's
// register (so cross-context delivery charges land on it), and pop-up
// threads — proto promotions and eager threads alike — are queued on
// that CPU's run queue. Concurrent interrupts bound to distinct CPUs
// dispatch and run genuinely in parallel; deliveries to one CPU
// serialize, as hardware does with interrupts masked.
func (s *Service) RegisterIRQOn(line hw.IRQLine, name string, ctx mmu.ContextID, d Dispatch, cpu mmu.CPUID, h Handler) error {
	if h == nil {
		return errors.New("event: nil handler")
	}
	if cpu < 0 || int(cpu) >= s.machine.NumCPUs() {
		return fmt.Errorf("event: no CPU %d (machine has %d)", cpu, s.machine.NumCPUs())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.irqs[line]; dup {
		return fmt.Errorf("%w: irq %d", ErrBound, line)
	}
	b := &binding{ctx: ctx, cpu: cpu, dispatch: d, handler: h, name: name}
	if _, err := s.machine.SetIRQHandler(line, func(f *hw.TrapFrame) bool {
		s.deliver(b, f)
		return true
	}); err != nil {
		return err
	}
	s.irqs[line] = b
	return nil
}

// UnregisterIRQ removes an interrupt binding.
func (s *Service) UnregisterIRQ(line hw.IRQLine) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.irqs[line]; !ok {
		return fmt.Errorf("%w: irq %d", ErrNotBound, line)
	}
	if _, err := s.machine.SetIRQHandler(line, nil); err != nil {
		return err
	}
	delete(s.irqs, line)
	return nil
}

// RegisterTrap binds a trap vector. Trap handlers use DispatchRaw
// semantics (the faulting context is suspended until the handler
// returns); the handler's bool result — fault resolved or not — is
// what the raw machine handler returns, so the signature differs.
func (s *Service) RegisterTrap(vector hw.TrapVector, name string, ctx mmu.ContextID, h func(*hw.TrapFrame) bool) error {
	if h == nil {
		return errors.New("event: nil handler")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.traps[vector]; dup {
		return fmt.Errorf("%w: trap %v", ErrBound, vector)
	}
	b := &binding{ctx: ctx, dispatch: DispatchRaw, name: name}
	s.machine.SetTrapHandler(vector, func(f *hw.TrapFrame) bool {
		b.mu.Lock()
		b.delivered++
		b.mu.Unlock()
		// Traps are synchronous: the handler runs on the CPU that
		// faulted, whichever one that was, serialized with every other
		// delivery on that CPU.
		s.deliveryMu[f.CPU].Lock()
		defer s.deliveryMu[f.CPU].Unlock()
		restore := s.enterContext(f.CPU, b.ctx)
		defer restore()
		return h(f)
	})
	s.traps[vector] = b
	return nil
}

// UnregisterTrap removes a trap binding.
func (s *Service) UnregisterTrap(vector hw.TrapVector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.traps[vector]; !ok {
		return fmt.Errorf("%w: trap %v", ErrNotBound, vector)
	}
	s.machine.SetTrapHandler(vector, nil)
	delete(s.traps, vector)
	return nil
}

// deliver runs one interrupt call-back under its dispatch policy,
// routed to the binding's CPU. The synchronous dispatches (raw, and
// proto up to its promotion point) hold the CPU's delivery lock for
// the handler's duration, so their register use never interleaves. An
// eager pop-up runs WITHOUT the delivery lock (a real thread may
// block, and holding the CPU's delivery slot across a block could
// deadlock it): see the DispatchEager case for the resulting — and
// deliberately weaker — multi-CPU guarantee.
func (s *Service) deliver(b *binding, f *hw.TrapFrame) {
	b.mu.Lock()
	b.delivered++
	b.mu.Unlock()

	switch b.dispatch {
	case DispatchRaw:
		s.deliveryMu[b.cpu].Lock()
		s.retarget(b, f)
		restore := s.enterContext(b.cpu, b.ctx)
		b.handler(f, nil)
		restore()
		s.deliveryMu[b.cpu].Unlock()
	case DispatchProto:
		s.deliveryMu[b.cpu].Lock()
		s.retarget(b, f)
		restore := s.enterContext(b.cpu, b.ctx)
		// The promotion path keeps the binding's CPU: a handler that
		// blocks continues as a real thread on b.cpu's run queue. The
		// delivery lock is NOT held by that continuation — only the
		// inline portion (which by construction ends at the first
		// block) runs under it.
		_, inline := s.sched.PopUpProtoOn(b.cpu, b.name, func(t *threads.Thread) {
			b.handler(f, t)
		})
		restore()
		s.deliveryMu[b.cpu].Unlock()
		b.mu.Lock()
		if inline {
			b.inline++
		} else {
			b.promoted++
		}
		b.mu.Unlock()
	case DispatchEager:
		// The thread runs under the scheduler later, queued on the
		// binding's CPU. Its body enters the binding's context exactly
		// as before, but WITHOUT the CPU's delivery lock: an eager
		// pop-up is a real thread that may block or yield, and holding
		// the delivery slot across a block could deadlock the CPU. On
		// a single-CPU scheduler bodies run one at a time, so the
		// switch/restore pairs cannot interleave; on a multiprocessor
		// scheduler, concurrent eager handlers bound to one CPU may
		// interleave their courtesy register use — handlers needing
		// exact context isolation use raw or proto dispatch. Scheduler
		// CPU k and machine CPU k are now one identity (the thread's
		// own Load/Store charge b.cpu's TLB), but eager bodies still
		// share the context register by design: context isolation is
		// what the raw/proto delivery locks are for.
		s.deliveryMu[b.cpu].Lock()
		s.retarget(b, f)
		s.deliveryMu[b.cpu].Unlock()
		s.sched.PopUpEagerOn(b.cpu, b.name, func(t *threads.Thread) {
			restore := s.enterContext(b.cpu, b.ctx)
			defer restore()
			b.handler(f, t)
		})
	}
}

// retarget points a routed delivery's frame at the binding's CPU. Ctx
// is re-read under the CPU's delivery lock so it is the context that
// is genuinely current on frame.CPU at delivery time — never a context
// that was only ever current on the arrival CPU, and never another
// delivery's transient handler context.
func (s *Service) retarget(b *binding, f *hw.TrapFrame) {
	if b.cpu != f.CPU {
		f.CPU = b.cpu
		f.Ctx = s.machine.MMU.CurrentOn(b.cpu)
	}
}

// enterContext switches one CPU's MMU register to the call-back's
// context if needed and returns a function restoring the previous
// context. Delivering an event into another protection domain costs
// two context switches — exactly the cost a user-level handler pays
// over a kernel-resident one — and the charges (plus any
// flush-on-switch TLB loss) land on the delivering CPU alone.
func (s *Service) enterContext(cpu mmu.CPUID, ctx mmu.ContextID) func() {
	cur := s.machine.MMU.CurrentOn(cpu)
	if ctx == cur {
		return func() {}
	}
	// Switch errors mean the context died; the event is delivered in
	// the current context rather than dropped.
	if err := s.machine.MMU.SwitchOn(cpu, ctx); err != nil {
		return func() {}
	}
	return func() { _ = s.machine.MMU.SwitchOn(cpu, cur) }
}

// IRQStats reports the counters of an interrupt binding.
func (s *Service) IRQStats(line hw.IRQLine) (Stats, bool) {
	s.mu.Lock()
	b, ok := s.irqs[line]
	s.mu.Unlock()
	if !ok {
		return Stats{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Name:      b.name,
		Dispatch:  b.dispatch,
		Delivered: b.delivered,
		Promoted:  b.promoted,
		Inline:    b.inline,
	}, true
}

// TrapStats reports the counters of a trap binding.
func (s *Service) TrapStats(vector hw.TrapVector) (Stats, bool) {
	s.mu.Lock()
	b, ok := s.traps[vector]
	s.mu.Unlock()
	if !ok {
		return Stats{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Name: b.name, Dispatch: b.dispatch, Delivered: b.delivered}, true
}

// Scheduler returns the thread scheduler events are pumped into.
func (s *Service) Scheduler() *threads.Scheduler { return s.sched }
