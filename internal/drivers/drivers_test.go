package drivers

import (
	"testing"

	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/threads"
)

type rig struct {
	machine *hw.Machine
	svc     *mem.Service
	evt     *event.Service
	sched   *threads.Scheduler
}

func newRig() *rig {
	m := hw.New(hw.Config{PhysFrames: 64})
	svc := mem.New(m)
	sched := threads.NewScheduler(m.Meter)
	return &rig{machine: m, svc: svc, evt: event.New(m, sched), sched: sched}
}

func (r *rig) newNIC(t *testing.T) *hw.NIC {
	t.Helper()
	nic := hw.NewNIC("net0", 4)
	if err := r.machine.AttachDevice(nic); err != nil {
		t.Fatal(err)
	}
	return nic
}

func TestNetDriverReceivePath(t *testing.T) {
	r := newRig()
	nic := r.newNIC(t)
	d, err := NewNetDriver("netdrv", nic, r.svc, r.evt, NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOExclusive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nic.Inject([]byte("hello wire")); err != nil {
		t.Fatal(err)
	}
	// Proto dispatch drained the ring inline during the interrupt.
	if nic.Pending() != 0 {
		t.Fatal("ring not drained by interrupt")
	}
	frame, ok := d.Recv()
	if !ok || string(frame) != "hello wire" {
		t.Fatalf("Recv = %q, %v", frame, ok)
	}
	if _, ok := d.Recv(); ok {
		t.Fatal("phantom frame")
	}
	rx, _, _ := d.Stats()
	if rx != 1 {
		t.Fatalf("rx = %d", rx)
	}
}

func TestNetDriverBurstDrain(t *testing.T) {
	r := newRig()
	nic := r.newNIC(t)
	d, err := NewNetDriver("netdrv", nic, r.svc, r.evt, NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchRaw, IOMode: mem.IOExclusive,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mask the IRQ so several frames pile up in the ring, then unmask:
	// a single delivery must drain all of them.
	if err := r.machine.MaskIRQ(nic.IRQ()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := nic.Inject([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.machine.UnmaskIRQ(nic.IRQ()); err != nil {
		t.Fatal(err)
	}
	if d.QueueLen() != 5 {
		t.Fatalf("queue = %d", d.QueueLen())
	}
	for i := 0; i < 5; i++ {
		frame, ok := d.Recv()
		if !ok || frame[0] != byte(i) {
			t.Fatalf("frame %d = %v, %v", i, frame, ok)
		}
	}
}

func TestNetDriverSend(t *testing.T) {
	r := newRig()
	nic := r.newNIC(t)
	var sent []byte
	nic.SetTxSink(func(f []byte) { sent = f })
	d, err := NewNetDriver("netdrv", nic, r.svc, r.evt, NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOExclusive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Send([]byte("outbound")); err != nil {
		t.Fatal(err)
	}
	if string(sent) != "outbound" {
		t.Fatalf("sent %q", sent)
	}
	_, tx, _ := d.Stats()
	if tx != 1 {
		t.Fatalf("tx = %d", tx)
	}
	if err := d.Send(make([]byte, hw.NICSlotSize+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestNetDriverObjectInterface(t *testing.T) {
	r := newRig()
	nic := r.newNIC(t)
	var sent []byte
	nic.SetTxSink(func(f []byte) { sent = f })
	d, err := NewNetDriver("netdrv", nic, r.svc, r.evt, NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOExclusive,
	})
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := d.Iface(NetDevIface)
	if !ok {
		t.Fatal("netdev interface missing")
	}
	if _, err := iv.Invoke("send", []byte("via-iface")); err != nil {
		t.Fatal(err)
	}
	if string(sent) != "via-iface" {
		t.Fatalf("sent %q", sent)
	}
	if _, err := iv.Invoke("send", 42); err == nil {
		t.Fatal("non-[]byte frame accepted")
	}
	if err := nic.Inject([]byte("in")); err != nil {
		t.Fatal(err)
	}
	res, err := iv.Invoke("recv")
	if err != nil {
		t.Fatal(err)
	}
	if string(res[0].([]byte)) != "in" {
		t.Fatalf("recv = %v", res)
	}
	res, err = iv.Invoke("stats")
	if err != nil || len(res) != 3 {
		t.Fatalf("stats = %v, %v", res, err)
	}
}

func TestNetDriverExclusiveIO(t *testing.T) {
	r := newRig()
	nic := r.newNIC(t)
	if _, err := NewNetDriver("drv1", nic, r.svc, r.evt, NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOExclusive,
	}); err != nil {
		t.Fatal(err)
	}
	// A second exclusive driver on the same device must fail.
	if _, err := NewNetDriver("drv2", nic, r.svc, r.evt, NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOExclusive,
	}); err == nil {
		t.Fatal("second exclusive driver accepted")
	}
}

func TestNetDriverClose(t *testing.T) {
	r := newRig()
	nic := r.newNIC(t)
	d, err := NewNetDriver("netdrv", nic, r.svc, r.evt, NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOExclusive,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(r.svc); err != nil {
		t.Fatal(err)
	}
	// Resources are free for a replacement driver.
	if _, err := NewNetDriver("netdrv2", nic, r.svc, r.evt, NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOExclusive,
	}); err != nil {
		t.Fatalf("replacement driver: %v", err)
	}
}

func TestTimerDriver(t *testing.T) {
	r := newRig()
	timer := hw.NewTimer("timer0", 1, r.machine.Meter.Clock)
	if err := r.machine.AttachDevice(timer); err != nil {
		t.Fatal(err)
	}
	d, err := NewTimerDriver("timerdrv", timer, r.svc, r.evt, TimerDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchRaw,
	})
	if err != nil {
		t.Fatal(err)
	}
	tickeds := 0
	d.Subscribe(func() { tickeds++ })

	iv, _ := d.Iface(TimerIface)
	if _, err := iv.Invoke("program", uint64(100)); err != nil {
		t.Fatal(err)
	}
	r.machine.Meter.Clock.Advance(350)
	res, err := iv.Invoke("poll")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int) != 3 {
		t.Fatalf("poll fired %v", res)
	}
	if d.Ticks() != 3 || tickeds != 3 {
		t.Fatalf("ticks = %d, subscriber saw %d", d.Ticks(), tickeds)
	}
	res, _ = iv.Invoke("ticks")
	if res[0].(uint64) != 3 {
		t.Fatalf("ticks via iface = %v", res)
	}
	if _, err := iv.Invoke("program", "not-a-uint"); err == nil {
		t.Fatal("bad program arg accepted")
	}
}

func TestConsoleDriver(t *testing.T) {
	r := newRig()
	cons := hw.NewConsole("cons0", 2)
	if err := r.machine.AttachDevice(cons); err != nil {
		t.Fatal(err)
	}
	d, err := NewConsoleDriver("consdrv", cons, r.svc, mmu.KernelContext)
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Write("hello, console\n")
	if err != nil || n != 15 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if got := cons.Contents(); got != "hello, console\n" {
		t.Fatalf("console = %q", got)
	}
	iv, _ := d.Iface(ConsoleIface)
	if _, err := iv.Invoke("write", 99); err == nil {
		t.Fatal("non-string write accepted")
	}
}
