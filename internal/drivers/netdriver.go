// Package drivers contains the device drivers of the reproduction —
// ordinary Paramecium objects that live *outside* the nucleus and can
// be placed in the kernel or in an application protection domain.
// Each driver allocates its device's I/O space through the memory
// service and registers an interrupt call-back through the event
// service, exactly the resource path the paper prescribes.
package drivers

import (
	"errors"
	"fmt"
	"sync"

	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/obj"
	"paramecium/internal/threads"
)

// NetDevIface is the interface name exported by network drivers.
const NetDevIface = "paramecium.netdev.v1"

// NetDevDecl is the type information of the network device interface.
var NetDevDecl = obj.MustInterfaceDecl(NetDevIface,
	obj.MethodDecl{Name: "send", NumIn: 1, NumOut: 0},  // (frame []byte)
	obj.MethodDecl{Name: "recv", NumIn: 0, NumOut: 1},  // -> frame []byte or nil
	obj.MethodDecl{Name: "stats", NumIn: 0, NumOut: 3}, // -> rx, tx, dropped
)

// ErrTxFailed is returned when the device rejects a transmit.
var ErrTxFailed = errors.New("drivers: transmit failed")

// NetDriver drives a simulated NIC: it drains the device ring into a
// software receive queue on interrupt and transmits via the device
// registers. It is an obj.Instance, so it can be registered in the
// name space, interposed upon, shared, and proxied across domains.
type NetDriver struct {
	*obj.Object
	nic   *hw.NIC
	grant *mem.IOGrant
	evt   *event.Service
	line  hw.IRQLine

	mu      sync.Mutex
	rxq     [][]byte
	rx, tx  uint64
	dropped uint64
}

// NetDriverConfig configures driver construction.
type NetDriverConfig struct {
	// Ctx is the protection domain the driver's interrupt call-back
	// runs in (kernel context for an in-kernel driver).
	Ctx mmu.ContextID
	// Dispatch selects the interrupt dispatch policy (the paper's
	// design is DispatchProto).
	Dispatch event.Dispatch
	// IOMode selects exclusive or shared I/O space. A driver that
	// other contexts must reach through shared on-device buffers uses
	// mem.IOShared.
	IOMode mem.IOMode
}

// NewNetDriver builds and starts a network driver for nic.
func NewNetDriver(class string, nic *hw.NIC, svc *mem.Service, evt *event.Service, cfg NetDriverConfig) (*NetDriver, error) {
	grant, err := svc.AllocIOSpace(cfg.Ctx, nic.IORegion().Name, cfg.IOMode)
	if err != nil {
		return nil, fmt.Errorf("drivers: I/O space: %w", err)
	}
	d := &NetDriver{
		Object: obj.New(class, svc.Machine().Meter),
		nic:    nic,
		grant:  grant,
		evt:    evt,
		line:   nic.IRQ(),
	}
	bi, err := d.AddInterface(NetDevDecl, d)
	if err != nil {
		_ = svc.ReleaseIOSpace(grant)
		return nil, err
	}
	bi.MustBind("send", func(args ...any) ([]any, error) {
		frame, ok := args[0].([]byte)
		if !ok {
			return nil, fmt.Errorf("drivers: send wants []byte, got %T", args[0])
		}
		return nil, d.Send(frame)
	}).MustBind("recv", func(...any) ([]any, error) {
		frame, _ := d.Recv()
		return []any{frame}, nil
	}).MustBind("stats", func(...any) ([]any, error) {
		rx, tx, dr := d.Stats()
		return []any{rx, tx, dr}, nil
	})

	if err := evt.RegisterIRQ(d.line, class+"-rx", cfg.Ctx, cfg.Dispatch, func(f *hw.TrapFrame, t *threads.Thread) {
		d.drainRing()
	}); err != nil {
		_ = svc.ReleaseIOSpace(grant)
		return nil, fmt.Errorf("drivers: IRQ: %w", err)
	}
	return d, nil
}

// drainRing moves every pending frame from device memory into the
// software receive queue.
func (d *NetDriver) drainRing() {
	regs := d.grant.Region
	for {
		pending, err := regs.ReadReg(hw.NICRegRxPending)
		if err != nil || pending == 0 {
			return
		}
		slot, _ := regs.ReadReg(hw.NICRegRxSlot)
		length, _ := regs.ReadReg(hw.NICRegRxLen)
		data, err := d.nic.SlotData(int(slot))
		if err != nil {
			return
		}
		frame := make([]byte, length)
		copy(frame, data[:length])
		_ = regs.WriteReg(hw.NICRegRxPop, 1)
		d.mu.Lock()
		d.rxq = append(d.rxq, frame)
		d.rx++
		d.mu.Unlock()
	}
}

// Recv pops the oldest received frame (nil, false when empty).
func (d *NetDriver) Recv() ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.rxq) == 0 {
		return nil, false
	}
	f := d.rxq[0]
	d.rxq = d.rxq[1:]
	return f, true
}

// Send transmits a frame through the device.
func (d *NetDriver) Send(frame []byte) error {
	if len(frame) > hw.NICSlotSize {
		return hw.ErrFrameTooBig
	}
	regs := d.grant.Region
	d.mu.Lock()
	defer d.mu.Unlock()
	// Use the last slot as a scratch transmit buffer. A production
	// driver would manage a transmit ring; one slot is enough for the
	// synchronous transmit the experiments need.
	slot := hw.NICSlots - 1
	data, err := d.nic.SlotData(slot)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrTxFailed, err)
	}
	copy(data, frame)
	if err := regs.WriteReg(hw.NICRegTxSlot, uint64(slot)); err != nil {
		return fmt.Errorf("%w: %v", ErrTxFailed, err)
	}
	if err := regs.WriteReg(hw.NICRegTxLen, uint64(len(frame))); err != nil {
		return fmt.Errorf("%w: %v", ErrTxFailed, err)
	}
	if err := regs.WriteReg(hw.NICRegTxGo, 1); err != nil {
		return fmt.Errorf("%w: %v", ErrTxFailed, err)
	}
	d.tx++
	return nil
}

// Stats reports frames received, transmitted and dropped (device-side
// ring overflows).
func (d *NetDriver) Stats() (rx, tx, dropped uint64) {
	d.mu.Lock()
	rx, tx = d.rx, d.tx
	d.mu.Unlock()
	return rx, tx, d.nic.Dropped()
}

// QueueLen reports frames waiting in the software receive queue.
func (d *NetDriver) QueueLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.rxq)
}

// Close unregisters the interrupt and releases the I/O grant.
func (d *NetDriver) Close(svc *mem.Service) error {
	if err := d.evt.UnregisterIRQ(d.line); err != nil {
		return err
	}
	return svc.ReleaseIOSpace(d.grant)
}
