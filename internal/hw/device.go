package hw

import (
	"errors"
	"fmt"
	"sync"
)

// Device is a simulated hardware device. Devices expose their control
// registers through an IORegion; drivers obtain access to the region
// via the memory-management service's I/O space allocation, mirroring
// the paper's "device drivers use this service to allocate I/O space
// and map in the device registers into their protection domain".
type Device interface {
	Name() string
	IRQ() IRQLine
	IORegion() *IORegion
	// attach wires the device to the machine so it can raise
	// interrupts. Called exactly once by Machine.AttachDevice.
	attach(m *Machine)
}

// ErrBadRegister is returned for accesses to undefined registers.
var ErrBadRegister = errors.New("hw: bad register")

// IORegion is a device's register file: a named set of 64-bit
// registers addressed by word offset. Register semantics (side effects)
// are provided by the owning device through the hook functions.
type IORegion struct {
	Name string
	Size int // number of registers

	mu    sync.Mutex
	read  func(reg int) (uint64, error)
	write func(reg int, val uint64) error
}

// NewIORegion constructs a region with the given access hooks.
func NewIORegion(name string, size int, read func(int) (uint64, error), write func(int, uint64) error) *IORegion {
	return &IORegion{Name: name, Size: size, read: read, write: write}
}

// ReadReg reads register reg.
func (r *IORegion) ReadReg(reg int) (uint64, error) {
	if reg < 0 || reg >= r.Size {
		return 0, fmt.Errorf("%w: %s[%d]", ErrBadRegister, r.Name, reg)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.read == nil {
		return 0, nil
	}
	return r.read(reg)
}

// WriteReg writes register reg.
func (r *IORegion) WriteReg(reg int, val uint64) error {
	if reg < 0 || reg >= r.Size {
		return fmt.Errorf("%w: %s[%d]", ErrBadRegister, r.Name, reg)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.write == nil {
		return nil
	}
	return r.write(reg, val)
}

// baseDevice provides the attach plumbing shared by all devices.
type baseDevice struct {
	mu      sync.Mutex
	machine *Machine
}

func (b *baseDevice) attach(m *Machine) {
	b.mu.Lock()
	b.machine = m
	b.mu.Unlock()
}

// raise raises the device's interrupt if the device is attached.
func (b *baseDevice) raise(line IRQLine) {
	b.mu.Lock()
	m := b.machine
	b.mu.Unlock()
	if m != nil {
		// Delivery errors (no handler yet) are deliberately dropped:
		// real devices do not care whether software listens.
		_ = m.RaiseIRQ(line)
	}
}
