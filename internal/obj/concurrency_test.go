package obj

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestBoundInterfaceConcurrentCallAndRebind: slot dispatch is a single
// atomic load, so calls may race Bind rewiring the same slot; every
// call lands on one implementation or the other, never in between.
func TestBoundInterfaceConcurrentCallAndRebind(t *testing.T) {
	decl := MustInterfaceDecl("t.v1", MethodDecl{Name: "m", NumIn: 0, NumOut: 1})
	o := New("t", nil)
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a, b atomic.Int64
	implA := func(...any) ([]any, error) { return []any{a.Add(1)}, nil }
	implB := func(...any) ([]any, error) { return []any{b.Add(1)}, nil }
	bi.MustBind("m", implA)
	h, err := bi.Resolve("m")
	if err != nil {
		t.Fatal(err)
	}

	const calls = 500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				if _, err := h.Call(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			bi.MustBind("m", implB)
			bi.MustBind("m", implA)
		}
	}()
	wg.Wait()
	if got := a.Load() + b.Load(); got != 4*calls {
		t.Fatalf("dispatched %d calls, want %d", got, 4*calls)
	}
}

// TestInterposerConcurrentWrapAndCall is the regression test for the
// wrap-set race: Wrap used to mutate a map that live handles read
// without synchronization. Calls through both Invoke and a resolved
// handle race Wrap installs; every call must route through either the
// bare target or the wrapper.
func TestInterposerConcurrentWrapAndCall(t *testing.T) {
	decl := MustInterfaceDecl("t.v1", MethodDecl{Name: "m", NumIn: 0, NumOut: 1})
	o := New("t", nil)
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	var direct atomic.Int64
	bi.MustBind("m", func(...any) ([]any, error) { return []any{direct.Add(1)}, nil })

	ip := NewInterposer("wrapper", o)
	iv, ok := ip.Iface("t.v1")
	if !ok {
		t.Fatal("interposer hides interface")
	}
	h, err := iv.Resolve("m")
	if err != nil {
		t.Fatal(err)
	}

	var wrapped atomic.Int64
	wrap := func(next Method, args ...any) ([]any, error) {
		wrapped.Add(1)
		return next(args...)
	}

	const calls = 500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				var err error
				if w%2 == 0 {
					_, err = h.Call()
				} else {
					_, err = iv.Invoke("m")
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := ip.Wrap("t.v1", "m", wrap); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := direct.Load(); got != 4*calls {
		t.Fatalf("target saw %d calls, want %d", got, 4*calls)
	}
}
