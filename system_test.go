// End-to-end integration tests exercising whole-system scenarios that
// span most packages: multi-tenant filtering on a shared stack, the
// full device-to-endpoint receive pipeline, virtual memory as a
// nucleus-external component, and repository round trips with
// certification.
package paramecium_test

import (
	"errors"
	"fmt"
	"testing"

	"paramecium/internal/bench"
	"paramecium/internal/cert"
	"paramecium/internal/clock"
	"paramecium/internal/core"
	"paramecium/internal/drivers"
	"paramecium/internal/event"
	"paramecium/internal/hw"
	"paramecium/internal/mem"
	"paramecium/internal/mmu"
	"paramecium/internal/netstack"
	"paramecium/internal/obj"
	"paramecium/internal/repoz"
	"paramecium/internal/sandbox"
	"paramecium/internal/trace"
	"paramecium/internal/vmm"
)

func frameTo(port uint16, payload string) []byte {
	return netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.MAC{2, 0, 0, 0, 0, 2},
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
		700, port, []byte(payload))
}

// TestFullReceivePipeline drives a frame from the simulated wire
// through NIC DMA, interrupt, proto-thread, driver ring drain, shared
// stack, certified filter, and UDP demux to an endpoint.
func TestFullReceivePipeline(t *testing.T) {
	w := bench.NewWorld()
	k := w.K
	nic := hw.NewNIC("net0", 4)
	if err := k.Machine.AttachDevice(nic); err != nil {
		t.Fatal(err)
	}
	drv, err := drivers.NewNetDriver("netdrv", nic, k.Mem, k.Events, drivers.NetDriverConfig{
		Ctx: mmu.KernelContext, Dispatch: event.DispatchProto, IOMode: mem.IOShared,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Register("/devices/net0", drv, mmu.KernelContext); err != nil {
		t.Fatal(err)
	}
	drvIv, err := k.RootView.BindInterface("/devices/net0", drivers.NetDevIface)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := netstack.NewStack("ipstack", k.Meter, drvIv,
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.IP{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	w.AddPVM("portfilter", netstack.PortFilterProgram(7), true)
	lf, err := k.LoadFilter("portfilter", core.PlaceKernelCertified)
	if err != nil {
		t.Fatal(err)
	}
	stack.AttachFilter(lf)
	ep, err := stack.Bind(7)
	if err != nil {
		t.Fatal(err)
	}

	if err := nic.Inject(frameTo(7, "for us")); err != nil {
		t.Fatal(err)
	}
	if err := nic.Inject(frameTo(9, "for someone else")); err != nil {
		t.Fatal(err)
	}
	if n := stack.Pump(); n != 2 {
		t.Fatalf("pumped %d frames", n)
	}
	got, ok := ep.Recv()
	if !ok || string(got.Payload) != "for us" {
		t.Fatalf("endpoint recv = %+v, %v", got, ok)
	}
	if _, ok := ep.Recv(); ok {
		t.Fatal("filtered frame leaked through")
	}
	st := stack.Stats()
	if st.Delivered != 1 || st.Filtered != 1 {
		t.Fatalf("stack stats = %+v", st)
	}
	k.Sched.RunUntilIdle()
}

// TestMultiTenantIsolation runs two tenants' filters on one shared
// stack: each tenant's filter only admits its own port, and a
// malicious wild-reading filter in the SFI sandbox is contained.
func TestMultiTenantIsolation(t *testing.T) {
	w := bench.NewWorld()
	k := w.K
	drvObj := obj.New("nulldrv", k.Meter)
	bi, err := drvObj.AddInterface(obj.MustInterfaceDecl("paramecium.netdev.v1",
		obj.MethodDecl{Name: "send", NumIn: 1, NumOut: 0},
		obj.MethodDecl{Name: "recv", NumIn: 0, NumOut: 1},
		obj.MethodDecl{Name: "stats", NumIn: 0, NumOut: 3}), nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("send", func(...any) ([]any, error) { return nil, nil }).
		MustBind("recv", func(...any) ([]any, error) { return []any{[]byte(nil)}, nil }).
		MustBind("stats", func(...any) ([]any, error) { return []any{uint64(0), uint64(0), uint64(0)}, nil })
	drvIv, _ := drvObj.Iface("paramecium.netdev.v1")

	stackA, err := netstack.NewStack("stackA", k.Meter, drvIv,
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.IP{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Tenant A: certified filter for port 7.
	w.AddPVM("tenantA", netstack.PortFilterProgram(7), true)
	lfA, err := k.LoadFilter("tenantA", core.PlaceKernelCertified)
	if err != nil {
		t.Fatal(err)
	}
	stackA.AttachFilter(lfA)
	epA, err := stackA.Bind(7)
	if err != nil {
		t.Fatal(err)
	}

	// Tenant B: an uncertified filter that tries to read far outside
	// its segment. The kernel only admits it sandboxed.
	wild := `
        loadi r1, 1000000
        ld8   r0, [r1+0]
        loadi r0, 1
        halt  r0
`
	w.AddPVM("tenantB", wild, false)
	if _, err := k.LoadFilter("tenantB", core.PlaceKernelCertified); !errors.Is(err, core.ErrNotCertified) {
		t.Fatalf("uncertified kernel load: %v", err)
	}
	lfB, err := k.LoadFilter("tenantB", core.PlaceKernelSandboxed)
	if err != nil {
		t.Fatal(err)
	}
	// The wild read is masked by SFI, not fatal.
	if _, err := lfB.Accept(frameTo(7, "probe")); err != nil {
		t.Fatalf("sandboxed wild filter crashed: %v", err)
	}

	stackA.Deliver(frameTo(7, "tenant A data"))
	stackA.Deliver(frameTo(8, "not tenant A"))
	if epA.Len() != 1 {
		t.Fatalf("tenant A got %d datagrams", epA.Len())
	}
}

// TestVMMAsExtensionComponent checks that virtual memory — demand
// paging plus COW — composes with a booted kernel purely through the
// memory service.
func TestVMMAsExtensionComponent(t *testing.T) {
	w := bench.NewWorld()
	k := w.K
	mgr := vmm.New(k.Mem)
	parent := k.NewDomain("parent")
	child := k.NewDomain("child")

	if err := mgr.DemandRegion(parent.Ctx, 0x40000, 4, mmu.PermRead|mmu.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := k.Machine.Store(parent.Ctx, 0x40000, []byte("genesis")); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Clone(parent.Ctx, 0x40000, child.Ctx, 0x40000, 4); err != nil {
		t.Fatal(err)
	}
	if err := k.Machine.Store(child.Ctx, 0x40000, []byte("mutated")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if err := k.Machine.Load(parent.Ctx, 0x40000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "genesis" {
		t.Fatalf("parent sees %q after child COW write", buf)
	}
	demand, cow, _, _ := mgr.Stats()
	if demand == 0 || cow == 0 {
		t.Fatalf("vmm stats: demand=%d cow=%d", demand, cow)
	}
}

// TestRepositoryManifestWorkflow mirrors cmd/certify: build a
// repository, sign an image, serialize, reload, and load the
// component into a fresh kernel that trusts the same authority.
func TestRepositoryManifestWorkflow(t *testing.T) {
	auth := cert.NewAuthority(9001)
	admin := cert.NewKeyCertifier("sysadmin", cert.GenerateKey(9002), cert.PrivKernelResident)

	repo := repoz.New()
	prog := sandbox.MustAssemble(netstack.PortFilterProgram(53))
	img := &repoz.Image{Name: "dnsfilter", Kind: repoz.KindPVM, Data: prog.Encode()}
	if err := repo.Add(img); err != nil {
		t.Fatal(err)
	}
	c, err := admin.Certify("dnsfilter", img.Data, cert.PrivKernelResident)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Certify("dnsfilter", c); err != nil {
		t.Fatal(err)
	}
	blob, err := repo.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// A different machine, same root of trust.
	k, err := core.Boot(core.Config{AuthorityKey: auth.PublicKey()})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validator.AddDelegation(auth.Delegate("sysadmin", admin.Key().Pub, cert.PrivKernelResident)); err != nil {
		t.Fatal(err)
	}
	restored, err := repoz.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Get("dnsfilter")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Repo.Add(got); err != nil {
		t.Fatal(err)
	}
	lf, err := k.LoadFilter("dnsfilter", core.PlaceKernelCertified)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := lf.Accept(frameTo(53, "query"))
	if err != nil || !ok {
		t.Fatalf("accept = %v, %v", ok, err)
	}
}

// TestMonitoringSharedService interposes a tracer on a shared stack
// and verifies observations flow while untraced references bypass it.
func TestMonitoringSharedService(t *testing.T) {
	w := bench.NewWorld()
	k := w.K
	drvObj := obj.New("nulldrv", k.Meter)
	bi, err := drvObj.AddInterface(obj.MustInterfaceDecl("paramecium.netdev.v1",
		obj.MethodDecl{Name: "send", NumIn: 1, NumOut: 0},
		obj.MethodDecl{Name: "recv", NumIn: 0, NumOut: 1},
		obj.MethodDecl{Name: "stats", NumIn: 0, NumOut: 3}), nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("send", func(...any) ([]any, error) { return nil, nil }).
		MustBind("recv", func(...any) ([]any, error) { return []any{[]byte(nil)}, nil }).
		MustBind("stats", func(...any) ([]any, error) { return []any{uint64(0), uint64(0), uint64(0)}, nil })
	drvIv, _ := drvObj.Iface("paramecium.netdev.v1")
	stack, err := netstack.NewStack("ipstack", k.Meter, drvIv,
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.IP{10, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Register("/shared/network", stack, mmu.KernelContext); err != nil {
		t.Fatal(err)
	}
	tracer, err := trace.NewTracer(stack, k.Meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Interpose("/shared/network", func(obj.Instance) (obj.Instance, error) {
		return tracer.Agent(), nil
	}); err != nil {
		t.Fatal(err)
	}

	iv, err := k.RootView.BindInterface("/shared/network", netstack.StackIface)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := iv.Invoke("pump"); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := tracer.Stats("paramecium.netstack.v1.pump")
	if !ok || st.Calls != 3 {
		t.Fatalf("tracer stats = %+v, %v", st, ok)
	}
}

// TestCostModelSweepChangesShape verifies experiments respond to the
// cost model: with free traps and switches, the proxy path collapses
// toward the copy cost.
func TestCostModelSweepChangesShape(t *testing.T) {
	costs := clock.DefaultCosts().
		WithCost(clock.OpTrapEnter, 0).
		WithCost(clock.OpTrapExit, 0).
		WithCost(clock.OpCtxSwitch, 0).
		WithCost(clock.OpPageFault, 0)
	auth := cert.NewAuthority(1)
	k, err := core.Boot(core.Config{AuthorityKey: auth.PublicKey(), Machine: hw.Config{Costs: &costs}})
	if err != nil {
		t.Fatal(err)
	}
	decl := obj.MustInterfaceDecl("x.v1", obj.MethodDecl{Name: "f", NumIn: 0, NumOut: 0})
	server := obj.New("srv", k.Meter)
	bi, err := server.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("f", func(...any) ([]any, error) { return nil, nil })
	sd := k.NewDomain("s")
	cd := k.NewDomain("c")
	if err := k.Register("/services/srv", server, sd.Ctx); err != nil {
		t.Fatal(err)
	}
	iv, err := cd.BindInterface("/services/srv", "x.v1")
	if err != nil {
		t.Fatal(err)
	}
	watch := k.Meter.Clock.StartWatch()
	if _, err := iv.Invoke("f"); err != nil {
		t.Fatal(err)
	}
	if got := watch.Elapsed(); got > 60 {
		t.Fatalf("free-hardware proxy call still costs %d cycles", got)
	}
}

// TestManyDomainsStress creates many domains each binding the same
// kernel service; proxies stay isolated and the system tears down
// cleanly.
func TestManyDomainsStress(t *testing.T) {
	w := bench.NewWorld()
	k := w.K
	decl := obj.MustInterfaceDecl("ctr.v1", obj.MethodDecl{Name: "hit", NumIn: 0, NumOut: 1})
	server := obj.New("ctr", k.Meter)
	hits := 0
	bi, err := server.AddInterface(decl, &hits)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("hit", func(...any) ([]any, error) { hits++; return []any{hits}, nil })
	if err := k.Register("/services/ctr", server, mmu.KernelContext); err != nil {
		t.Fatal(err)
	}

	const domains = 20
	var doms []*core.Domain
	for i := 0; i < domains; i++ {
		d := k.NewDomain(fmt.Sprintf("app%d", i))
		doms = append(doms, d)
		iv, err := d.BindInterface("/services/ctr", "ctr.v1")
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if _, err := iv.Invoke("hit"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if hits != domains*5 {
		t.Fatalf("hits = %d", hits)
	}
	for _, d := range doms {
		if err := k.DestroyDomain(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Machine.Load(doms[0].Ctx, 0x1000, make([]byte, 1)); err == nil {
		t.Fatal("destroyed domain still accessible")
	}
}
