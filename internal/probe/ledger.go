package probe

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Ledger rolls clock charges up into per-domain rows: cycles and
// occurrence counts per operation, per paying protection-domain
// context. Every charge the meter makes while tracing is enabled lands
// in exactly one row, so the sum of all row totals equals the clock —
// the invariant the acceptance tests pin.
//
// The operation index space is the clock package's Op ordinals plus one
// trailing pseudo-slot for unattributed clock advances (scheduler idle
// fast-forward); the ledger itself only knows the slot count, keeping
// this package free of a clock dependency.
type Ledger struct {
	ops int

	mu   sync.Mutex // serializes row creation and freezing only
	rows sync.Map   // uint32 (domain context) -> *ledgerRow
}

// ledgerRow is one domain's accumulation. Cells are updated with
// atomics on the charge path; creation and freeze go through Ledger.mu.
type ledgerRow struct {
	frozen atomic.Bool
	total  atomic.Uint64
	cells  []ledgerCell
}

type ledgerCell struct {
	cycles atomic.Uint64
	count  atomic.Uint64
}

// NewLedger builds a ledger with the given operation-slot count.
func NewLedger(ops int) *Ledger {
	if ops < 1 {
		ops = 1
	}
	return &Ledger{ops: ops}
}

// Ops reports the ledger's operation-slot count.
func (l *Ledger) Ops() int { return l.ops }

// Add attributes n occurrences of op, worth cycles virtual cycles in
// total, to domain's row. The fast path — row already exists — is a
// lock-free map load plus three atomic adds; a domain's first charge
// creates its row under the ledger lock.
func (l *Ledger) Add(domain uint32, op int, cycles, n uint64) {
	if l == nil || op < 0 || op >= l.ops {
		return
	}
	r := l.row(domain)
	c := &r.cells[op]
	c.cycles.Add(cycles)
	c.count.Add(n)
	r.total.Add(cycles)
}

// row returns domain's row, creating it on first sight.
func (l *Ledger) row(domain uint32) *ledgerRow {
	if v, ok := l.rows.Load(domain); ok {
		return v.(*ledgerRow)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if v, ok := l.rows.Load(domain); ok {
		return v.(*ledgerRow)
	}
	r := &ledgerRow{cells: make([]ledgerCell, l.ops)}
	l.rows.Store(domain, r)
	return r
}

// Freeze marks domain's row final — DestroyDomain calls it once the
// domain is quiescent, so a dead domain's bill stays readable instead
// of being dropped with the domain. Context ids are never reused, so a
// frozen row accumulates nothing further; freezing a domain that never
// charged anything creates an empty frozen row, recording that the
// domain existed.
func (l *Ledger) Freeze(domain uint32) {
	if l == nil {
		return
	}
	l.row(domain).frozen.Store(true)
}

// Frozen reports whether domain's row has been frozen.
func (l *Ledger) Frozen(domain uint32) bool {
	v, ok := l.rows.Load(domain)
	return ok && v.(*ledgerRow).frozen.Load()
}

// DomainCycles reports the total cycles attributed to domain.
func (l *Ledger) DomainCycles(domain uint32) uint64 {
	if l == nil {
		return 0
	}
	v, ok := l.rows.Load(domain)
	if !ok {
		return 0
	}
	return v.(*ledgerRow).total.Load()
}

// Total reports the cycles attributed across all rows. With tracing
// enabled from boot this equals the meter's clock.
func (l *Ledger) Total() uint64 {
	var sum uint64
	l.rows.Range(func(_, v any) bool {
		sum += v.(*ledgerRow).total.Load()
		return true
	})
	return sum
}

// RowSnapshot is one domain's ledger row as read by Snapshot.
type RowSnapshot struct {
	Domain uint32
	Frozen bool
	Total  uint64
	Cycles []uint64 // per op slot
	Counts []uint64 // per op slot
}

// Snapshot copies every row, sorted by domain context id. The copy is
// cell-atomic, not row-atomic: a snapshot racing live charges may split
// one charge across Cycles and Total, which the exporters tolerate.
func (l *Ledger) Snapshot() []RowSnapshot {
	if l == nil {
		return nil
	}
	var out []RowSnapshot
	l.rows.Range(func(k, v any) bool {
		r := v.(*ledgerRow)
		row := RowSnapshot{
			Domain: k.(uint32),
			Frozen: r.frozen.Load(),
			Total:  r.total.Load(),
			Cycles: make([]uint64, l.ops),
			Counts: make([]uint64, l.ops),
		}
		for i := range r.cells {
			row.Cycles[i] = r.cells[i].cycles.Load()
			row.Counts[i] = r.cells[i].count.Load()
		}
		out = append(out, row)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}
