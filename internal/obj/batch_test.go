package obj

import (
	"errors"
	"fmt"
	"testing"
)

// batchTestIface builds an object with an into-bound counter and a
// plain failing method, returning the invoker.
func batchTestIface(t *testing.T) (Invoker, *int) {
	t.Helper()
	decl := MustInterfaceDecl("batch.v1",
		MethodDecl{Name: "inc", NumIn: 0, NumOut: 1},
		MethodDecl{Name: "fail", NumIn: 0, NumOut: 0},
	)
	o := New("counter", nil)
	n := new(int)
	bi, err := o.AddInterface(decl, n)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBindInto("inc", func(out []any, _ ...any) ([]any, error) {
		*n++
		return append(out, n), nil
	})
	bi.MustBind("fail", func(...any) ([]any, error) {
		return nil, errors.New("boom")
	})
	iv, _ := o.Iface("batch.v1")
	return iv, n
}

// TestBatchLocalEntriesDispatchInOrder: a batch of local handles runs
// every entry in order, recording per-entry results.
func TestBatchLocalEntriesDispatchInOrder(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(4)
	for i := 0; i < 4; i++ {
		if err := b.Add(inc); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if *n != 4 {
		t.Fatalf("counter = %d, want 4", *n)
	}
	for i := 0; i < b.Len(); i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got := *(res[0].(*int)); got != 4 {
			// The into-form returns the state pointer; all entries see
			// the final count.
			t.Fatalf("entry %d result = %d, want 4", i, got)
		}
	}
}

// TestBatchPartialFailureContinues: a failing entry records its error
// and the remaining entries still execute — batch semantics are N
// independent calls, not a transaction.
func TestBatchPartialFailureContinues(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	fail, _ := iv.Resolve("fail")
	b := NewBatch(3)
	_ = b.Add(inc)
	_ = b.Add(fail)
	_ = b.Add(inc)
	if err := b.Run(); err != nil {
		t.Fatalf("local batch returned group error: %v", err)
	}
	if *n != 2 {
		t.Fatalf("counter = %d, want 2 (entries after the failure must run)", *n)
	}
	if _, err := b.Results(0); err != nil {
		t.Fatalf("entry 0: %v", err)
	}
	if _, err := b.Results(1); err == nil {
		t.Fatal("failing entry recorded no error")
	}
	if _, err := b.Results(2); err != nil {
		t.Fatalf("entry 2: %v", err)
	}
}

// TestBatchAddValidatesArity: a malformed entry fails at Add, before
// anything runs.
func TestBatchAddValidatesArity(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	b := NewBatch(1)
	if err := b.Add(inc, "unexpected"); !errors.Is(err, ErrArity) {
		t.Fatalf("err = %v, want ErrArity", err)
	}
	if err := b.Add(MethodHandle{}); !errors.Is(err, ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
	if b.Len() != 0 {
		t.Fatalf("len = %d after rejected adds", b.Len())
	}
	_ = b.Run()
	if *n != 0 {
		t.Fatal("rejected entry executed")
	}
}

// TestBatchResetReuses: Reset keeps capacity and drops entry state.
func TestBatchResetReuses(t *testing.T) {
	iv, _ := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	b := NewBatch(2)
	_ = b.Add(inc)
	_ = b.Add(inc)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len = %d after Reset", b.Len())
	}
	_ = b.Add(inc)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Results(0); err != nil {
		t.Fatal(err)
	}
}

// recordingBatcher counts DispatchBatch groups and entries.
type recordingBatcher struct {
	groups  int
	entries int
}

func (r *recordingBatcher) DispatchBatch(calls []BatchCall) error {
	r.groups++
	r.entries += len(calls)
	for i := range calls {
		calls[i].SetResult(nil, nil)
	}
	return nil
}

// TestBatchGroupsConsecutiveSameBatcher: consecutive entries sharing
// a batcher form one group; an interleaved local entry splits them.
func TestBatchGroupsConsecutiveSameBatcher(t *testing.T) {
	iv, _ := batchTestIface(t)
	local, _ := iv.Resolve("fail") // plain local handle, no batcher
	rb := &recordingBatcher{}
	decl := &MethodDecl{Name: "remote", NumIn: 0, NumOut: 0}
	remote := NewBatchableHandle(decl,
		func(...any) ([]any, error) { return nil, nil }, nil, rb, nil)

	b := NewBatch(5)
	_ = b.Add(remote)
	_ = b.Add(remote)
	_ = b.Add(local)
	_ = b.Add(remote)
	_ = b.Add(remote)
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if rb.groups != 2 || rb.entries != 4 {
		t.Fatalf("groups = %d entries = %d, want 2 groups of 4 entries", rb.groups, rb.entries)
	}
}

// TestBatchAddIntoThreadsBuffers: entries queued with AddInto land
// their results in the caller's own buffers, and a steady-state
// Reset-and-refill round over reused buffers allocates nothing — the
// vectored-plane twin of the single-call CallInto invariant.
func TestBatchAddIntoThreadsBuffers(t *testing.T) {
	iv, n := batchTestIface(t)
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}
	const size = 4
	b := NewBatch(size)
	bufs := make([][1]any, size)
	for i := 0; i < size; i++ {
		if err := b.AddInto(inc, bufs[i][:0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < size; i++ {
		res, err := b.Results(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if &res[0] != &bufs[i][0] {
			t.Fatalf("entry %d result not in the caller's buffer", i)
		}
	}
	if *n != size {
		t.Fatalf("counter = %d, want %d", *n, size)
	}

	// Steady state: rebuilt from the same buffers, a round allocates
	// nothing.
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for i := 0; i < size; i++ {
			if err := b.AddInto(inc, bufs[i][:0]); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AddInto round allocates %.1f allocs, want 0", allocs)
	}
}

// TestBatchAddIntoValidatesLikeAdd: AddInto applies the same arity and
// zero-handle validation as Add.
func TestBatchAddIntoValidatesLikeAdd(t *testing.T) {
	iv, _ := batchTestIface(t)
	inc, _ := iv.Resolve("inc")
	var buf [1]any
	b := NewBatch(1)
	if err := b.AddInto(inc, buf[:0], "unexpected"); !errors.Is(err, ErrArity) {
		t.Fatalf("err = %v, want ErrArity", err)
	}
	if err := b.AddInto(MethodHandle{}, buf[:0]); !errors.Is(err, ErrUnbound) {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
}

// TestCallIntoZeroAlloc: the resolved into-path — dispatch, method
// body, results — allocates nothing when the caller supplies the
// result buffer. This is the single-call zero-allocation invariant
// the B0 benchmark gates in CI.
func TestCallIntoZeroAlloc(t *testing.T) {
	iv, _ := batchTestIface(t)
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}
	var buf [1]any
	allocs := testing.AllocsPerRun(1000, func() {
		res, err := inc.CallInto(buf[:0])
		if err != nil || len(res) != 1 {
			t.Fatal("bad result")
		}
	})
	if allocs != 0 {
		t.Fatalf("CallInto allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestCallIntoFallsBackForPlainHandles: handles without an into form
// (custom NewMethodHandle dispatchers) still work through CallInto.
func TestCallIntoFallsBackForPlainHandles(t *testing.T) {
	decl := &MethodDecl{Name: "echo", NumIn: 1, NumOut: 1}
	h := NewMethodHandle(decl, func(args ...any) ([]any, error) {
		return []any{fmt.Sprint(args[0])}, nil
	})
	var buf [1]any
	res, err := h.CallInto(buf[:0], 7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "7" {
		t.Fatalf("res = %v", res)
	}
}
