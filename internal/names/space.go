package names

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// Space is the system-wide hierarchical name space of object
// instances, managed by the directory service in the nucleus. Every
// lookup charges one hop per path component, so experiments can
// measure lookup cost versus depth (experiment F4).
//
// The tree is copy-on-write: lookups (Bind, List, Walk) read an
// atomically published immutable snapshot and take no lock at all, so
// hot-path name resolution scales across cores. Mutations (Register,
// Replace, Unregister) serialize on a writer lock, path-copy the
// affected directories, and publish a new root.
type Space struct {
	meter *clock.Meter

	wmu  sync.Mutex          // serializes mutations
	root atomic.Pointer[dir] // current published snapshot
}

// dir is one directory level. Once a dir has been published via
// Space.root it is immutable; mutations clone every dir on the path
// they change.
type dir struct {
	children map[string]*entry
}

// entry is either a subdirectory or an object handle (never both).
// Entries are immutable after publication.
type entry struct {
	dir  *dir
	inst obj.Instance
}

func newDir() *dir { return &dir{children: make(map[string]*entry)} }

// clone returns a mutable copy of d with the children map duplicated.
func (d *dir) clone() *dir {
	nd := &dir{children: make(map[string]*entry, len(d.children)+1)}
	for k, v := range d.children {
		nd.children[k] = v
	}
	return nd
}

// clonePath is the copy-on-write walk shared by all mutations: it
// clones root and every directory down to the parent of parts' leaf,
// returning the new root and that cloned parent. With create, missing
// intermediate directories are created (Register); otherwise a
// missing or non-directory component fails with ErrNotFound
// (Replace, Unregister). An existing non-directory component under
// create fails with ErrNotDir. On error, nothing is published.
func clonePath(root *dir, parts []string, path string, create bool) (newRoot, parent *dir, err error) {
	newRoot = root.clone()
	d := newRoot
	for _, c := range parts[:len(parts)-1] {
		e, ok := d.children[c]
		if !ok {
			if !create {
				return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, path)
			}
			nd := newDir()
			d.children[c] = &entry{dir: nd}
			d = nd
			continue
		}
		if e.dir == nil {
			if !create {
				return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, path)
			}
			return nil, nil, fmt.Errorf("%w: %q under %q", ErrNotDir, c, path)
		}
		nd := e.dir.clone()
		d.children[c] = &entry{dir: nd}
		d = nd
	}
	return newRoot, d, nil
}

// NewSpace builds an empty name space. meter may be nil.
func NewSpace(meter *clock.Meter) *Space {
	s := &Space{meter: meter}
	s.root.Store(newDir())
	return s
}

func (s *Space) chargeHops(n int) {
	if s.meter != nil && n > 0 {
		s.meter.ChargeN(clock.OpNameLookupHop, uint64(n))
	}
}

// Register binds an instance to path, creating intermediate
// directories as needed. Registering over an existing name fails; use
// Replace for interposition.
func (s *Space) Register(path string, inst obj.Instance) error {
	if inst == nil {
		return fmt.Errorf("%w: nil instance for %q", ErrBadPath, path)
	}
	parts, err := Split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot register at root", ErrBadPath)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	root, d, err := clonePath(s.root.Load(), parts, path, true)
	if err != nil {
		return err
	}
	leaf := parts[len(parts)-1]
	if _, dup := d.children[leaf]; dup {
		return fmt.Errorf("%w: %q", ErrExists, path)
	}
	d.children[leaf] = &entry{inst: inst}
	s.root.Store(root)
	return nil
}

// Replace atomically swaps the instance registered at path for a new
// one and returns the previous instance. This is the interposition
// primitive: "build an interposing object … and replace the object
// handle in the name space. All further lookups … will result in a
// reference to the interposing agent."
func (s *Space) Replace(path string, inst obj.Instance) (obj.Instance, error) {
	if inst == nil {
		return nil, fmt.Errorf("%w: nil instance for %q", ErrBadPath, path)
	}
	parts, err := Split(path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: root is a directory", ErrIsDir)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	// Validate against the current snapshot first, so failures leave
	// the published tree untouched.
	e, err := lookup(s.root.Load(), parts)
	if err != nil {
		return nil, err
	}
	if e.inst == nil {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	prev := e.inst
	root, d, err := clonePath(s.root.Load(), parts, path, false)
	if err != nil {
		return nil, err
	}
	d.children[parts[len(parts)-1]] = &entry{inst: inst}
	s.root.Store(root)
	return prev, nil
}

// Unregister removes the instance at path. Directories are removed
// only when empty.
func (s *Space) Unregister(path string) error {
	parts, err := Split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot unregister root", ErrBadPath)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	root, d, err := clonePath(s.root.Load(), parts, path, false)
	if err != nil {
		return err
	}
	leaf := parts[len(parts)-1]
	e, ok := d.children[leaf]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	if e.dir != nil && len(e.dir.children) > 0 {
		return fmt.Errorf("names: directory %q not empty", path)
	}
	delete(d.children, leaf)
	s.root.Store(root)
	return nil
}

// Bind resolves path to the registered instance, charging one hop per
// component. Bind is lock-free: it walks the current snapshot.
func (s *Space) Bind(path string) (obj.Instance, error) {
	parts, err := Split(path)
	if err != nil {
		return nil, err
	}
	s.chargeHops(len(parts))
	e, err := lookup(s.root.Load(), parts)
	if err != nil {
		return nil, err
	}
	if e.inst == nil {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	return e.inst, nil
}

// lookup walks one snapshot; it needs no locking because published
// trees are immutable.
func lookup(root *dir, parts []string) (*entry, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: root is a directory", ErrIsDir)
	}
	d := root
	for i, c := range parts {
		e, ok := d.children[c]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, "/"+joinParts(parts[:i+1]))
		}
		if i == len(parts)-1 {
			return e, nil
		}
		if e.dir == nil {
			return nil, fmt.Errorf("%w: %q", ErrNotDir, "/"+joinParts(parts[:i+1]))
		}
		d = e.dir
	}
	return nil, ErrNotFound // unreachable
}

func joinParts(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "/"
		}
		out += p
	}
	return out
}

// List returns the sorted names under a directory path ("" or "/" for
// the root). Names of subdirectories carry a trailing slash.
func (s *Space) List(path string) ([]string, error) {
	parts, err := Split(path)
	if err != nil {
		return nil, err
	}
	d := s.root.Load()
	for _, c := range parts {
		e, ok := d.children[c]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		if e.dir == nil {
			return nil, fmt.Errorf("%w: %q", ErrNotDir, path)
		}
		d = e.dir
	}
	out := make([]string, 0, len(d.children))
	for name, e := range d.children {
		if e.dir != nil {
			name += "/"
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Walk visits every registered instance in depth-first name order.
// The walk sees one consistent snapshot: mutations published during
// the walk are not observed.
func (s *Space) Walk(fn func(path string, inst obj.Instance) error) error {
	return walkDir(s.root.Load(), "", fn)
}

func walkDir(d *dir, prefix string, fn func(string, obj.Instance) error) error {
	names := make([]string, 0, len(d.children))
	for n := range d.children {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := d.children[n]
		p := prefix + "/" + n
		if e.dir != nil {
			if err := walkDir(e.dir, p, fn); err != nil {
				return err
			}
			continue
		}
		if err := fn(p, e.inst); err != nil {
			return err
		}
	}
	return nil
}
