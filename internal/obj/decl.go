// Package obj implements the Paramecium software architecture of
// Section 2 of the paper: coarse-grained objects that export one or
// more *named interfaces*, where an interface is "a set of methods,
// state pointers and type information". The package also provides the
// two structuring mechanisms the paper builds on top of objects:
// method delegation (code sharing) and composition (encapsulation of
// object instances, applicable recursively).
//
// Both operating-system components (drivers, protocol stacks,
// schedulers) and application components (allocators, matrices) are
// expressed in this one architecture so that they can be interchanged
// and relocated between protection domains.
package obj

import (
	"errors"
	"fmt"
	"sort"
)

// Method is a late-bound method implementation. Arguments and results
// are dynamically typed; the interface declaration carries the arity
// used for call validation, mirroring the paper's "type information".
type Method func(args ...any) ([]any, error)

// MethodInto is the buffer-threading form of a method implementation:
// results are appended to out — a caller-owned slice, possibly empty
// but with capacity — and the extended slice is returned. A method
// bound in this form (BindInto) and invoked through
// MethodHandle.CallInto completes without allocating when out has
// room, which is what keeps the single-call invocation hot path
// allocation-free. Implementations must append to out (never replace
// it) and must not retain it after returning.
type MethodInto func(out []any, args ...any) ([]any, error)

// MethodDecl declares one method of an interface: its name and arity.
type MethodDecl struct {
	Name   string
	NumIn  int
	NumOut int

	// slot is the method's index within its interface, assigned by
	// NewInterfaceDecl. Bound interfaces store implementations in a
	// flat array indexed by slot, so a pre-resolved handle dispatches
	// without a map lookup.
	slot int
}

// Slot returns the method's index within its interface. Only
// meaningful on declarations obtained from an InterfaceDecl.
func (m *MethodDecl) Slot() int { return m.slot }

// InterfaceDecl is the type information of a named interface. Decls are
// immutable after construction and may be shared between many objects.
type InterfaceDecl struct {
	// Name identifies the interface, e.g. "paramecium.rpc.v1".
	// Objects may export several independently named interfaces; adding
	// a new one (say a measurement interface) never invalidates
	// existing users of the others.
	Name    string
	Methods []MethodDecl

	byName map[string]*MethodDecl
}

// NewInterfaceDecl builds a declaration. Method names must be unique.
func NewInterfaceDecl(name string, methods ...MethodDecl) (*InterfaceDecl, error) {
	if name == "" {
		return nil, errors.New("obj: empty interface name")
	}
	d := &InterfaceDecl{Name: name, Methods: methods, byName: make(map[string]*MethodDecl, len(methods))}
	for i := range methods {
		m := &d.Methods[i]
		if m.Name == "" {
			return nil, fmt.Errorf("obj: interface %q has an unnamed method", name)
		}
		if _, dup := d.byName[m.Name]; dup {
			return nil, fmt.Errorf("obj: interface %q declares method %q twice", name, m.Name)
		}
		m.slot = i
		d.byName[m.Name] = m
	}
	return d, nil
}

// MustInterfaceDecl is NewInterfaceDecl that panics on error; intended
// for package-level declarations of well-known interfaces.
func MustInterfaceDecl(name string, methods ...MethodDecl) *InterfaceDecl {
	d, err := NewInterfaceDecl(name, methods...)
	if err != nil {
		panic(err)
	}
	return d
}

// Method returns the declaration of a method by name.
func (d *InterfaceDecl) Method(name string) (*MethodDecl, bool) {
	m, ok := d.byName[name]
	return m, ok
}

// MethodNames returns the declared method names in sorted order.
func (d *InterfaceDecl) MethodNames() []string {
	out := make([]string, 0, len(d.Methods))
	for _, m := range d.Methods {
		out = append(out, m.Name)
	}
	sort.Strings(out)
	return out
}

// Invoker is the universal calling surface of a bound interface. Real
// objects, interposers and cross-domain proxies all satisfy it, which
// is what lets the name space hand out any of them interchangeably.
type Invoker interface {
	// Decl returns the interface's type information.
	Decl() *InterfaceDecl
	// State returns the interface's state pointer (may be nil).
	State() any
	// Invoke calls a method by name. It is the compatibility path:
	// each call pays a name lookup. Callers on a hot path should
	// Resolve once and Call many times.
	Invoke(method string, args ...any) ([]any, error)
	// Resolve pre-binds a method, returning a handle whose Call
	// dispatches by slot index with no per-call name lookup. The
	// handle observes later rebinding of the slot (late binding is
	// preserved); it fails only for undeclared methods.
	Resolve(method string) (MethodHandle, error)
}

// Instance is anything that can be registered in, and bound from, the
// name space: an object, a composition, an interposing agent or a
// proxy for an object in another protection domain.
type Instance interface {
	// Class is the component (not instance) name, e.g. "netdriver".
	Class() string
	// InterfaceNames lists the exported interfaces, sorted.
	InterfaceNames() []string
	// Iface returns the named exported interface.
	Iface(name string) (Invoker, bool)
}

// Errors shared across implementations of Invoker.
var (
	ErrNoInterface = errors.New("obj: no such interface")
	ErrNoMethod    = errors.New("obj: no such method")
	ErrUnbound     = errors.New("obj: method declared but not bound")
	ErrArity       = errors.New("obj: wrong number of arguments")
)

// CheckArity validates an argument list against a method declaration.
func CheckArity(d *MethodDecl, args []any) error {
	if d.NumIn >= 0 && len(args) != d.NumIn {
		return fmt.Errorf("%w: %s takes %d args, got %d", ErrArity, d.Name, d.NumIn, len(args))
	}
	return nil
}

// CheckResults validates a result list against a method declaration,
// so an implementation cannot silently return the wrong number of
// results past the interface's type information.
func CheckResults(d *MethodDecl, results []any) error {
	if d.NumOut >= 0 && len(results) != d.NumOut {
		return fmt.Errorf("%w: %s returns %d results, got %d", ErrArity, d.Name, d.NumOut, len(results))
	}
	return nil
}
