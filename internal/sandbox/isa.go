// Package sandbox implements PVM, a small register bytecode used as
// the machine language of downloadable components in the reproduction.
//
// PVM exists to make the paper's central comparison concrete. A
// component image (an encoded PVM program) can be executed three ways:
//
//   - certified: the image was validated at load time by the
//     certification service, so it runs with no run-time checks;
//   - sandboxed: the image is first passed through the SFI rewriter
//     (after Wahbe et al.), which inserts an address-masking check
//     before every memory reference, exactly the per-access overhead
//     software fault isolation pays;
//   - user-level: the image runs unmodified in its own protection
//     domain and is reached through a cross-domain proxy.
//
// The interpreter charges one OpVMInstr per executed instruction and
// one OpSFICheck per executed check, so the three placements differ in
// precisely the costs the paper argues about.
package sandbox

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// SandboxReg is the register reserved by the SFI rewriter for masked
// effective addresses, after Wahbe's dedicated-register technique.
// The verifier rejects source programs that use it.
const SandboxReg = 15

// Opcode identifies a PVM instruction.
type Opcode uint8

// The instruction set.
const (
	OpHalt  Opcode = iota // halt; return value in reg A
	OpLoadI               // A <- Imm
	OpMov                 // A <- B
	OpAdd                 // A <- B + C
	OpSub                 // A <- B - C
	OpMul                 // A <- B * C
	OpAnd                 // A <- B & C
	OpOr                  // A <- B | C
	OpXor                 // A <- B ^ C
	OpShl                 // A <- B << (C & 63)
	OpShr                 // A <- B >> (C & 63)
	OpAddI                // A <- B + Imm
	OpLd8                 // A <- mem8[B + Imm]
	OpLd16                // A <- mem16[B + Imm] (big endian)
	OpLd32                // A <- mem32[B + Imm]
	OpLd64                // A <- mem64[B + Imm]
	OpSt8                 // mem8[B + Imm] <- A
	OpSt16                // mem16[B + Imm] <- A
	OpSt32                // mem32[B + Imm] <- A
	OpSt64                // mem64[B + Imm] <- A
	OpJmp                 // pc <- Imm
	OpJeq                 // if A == B: pc <- Imm
	OpJne                 // if A != B: pc <- Imm
	OpJlt                 // if A <  B: pc <- Imm (unsigned)
	OpJge                 // if A >= B: pc <- Imm (unsigned)
	OpCheck               // SandboxReg <- (B + Imm) & maskFor(len(mem)); SFI-inserted
	opcodeCount
)

var opcodeNames = [...]string{
	OpHalt: "halt", OpLoadI: "loadi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpAddI: "addi",
	OpLd8: "ld8", OpLd16: "ld16", OpLd32: "ld32", OpLd64: "ld64",
	OpSt8: "st8", OpSt16: "st16", OpSt32: "st32", OpSt64: "st64",
	OpJmp: "jmp", OpJeq: "jeq", OpJne: "jne", OpJlt: "jlt", OpJge: "jge",
	OpCheck: "check",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Instr is one PVM instruction.
type Instr struct {
	Op  Opcode
	A   uint8
	B   uint8
	C   uint8
	Imm int64
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch i.Op {
	case OpHalt:
		return fmt.Sprintf("halt r%d", i.A)
	case OpLoadI:
		return fmt.Sprintf("loadi r%d, %d", i.A, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", i.A, i.B)
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.A, i.B, i.C)
	case OpAddI:
		return fmt.Sprintf("addi r%d, r%d, %d", i.A, i.B, i.Imm)
	case OpLd8, OpLd16, OpLd32, OpLd64:
		return fmt.Sprintf("%s r%d, [r%d+%d]", i.Op, i.A, i.B, i.Imm)
	case OpSt8, OpSt16, OpSt32, OpSt64:
		return fmt.Sprintf("%s [r%d+%d], r%d", i.Op, i.B, i.Imm, i.A)
	case OpJmp:
		return fmt.Sprintf("jmp %d", i.Imm)
	case OpJeq, OpJne, OpJlt, OpJge:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.A, i.B, i.Imm)
	case OpCheck:
		return fmt.Sprintf("check r%d+%d", i.B, i.Imm)
	}
	return fmt.Sprintf("op%d a=%d b=%d c=%d imm=%d", i.Op, i.A, i.B, i.C, i.Imm)
}

// Program is a PVM program.
type Program []Instr

// instrSize is the encoded size of one instruction in bytes.
const instrSize = 12

const imageMagic = "PVMIMG1\x00"

// ErrBadImage is returned when decoding a malformed image.
var ErrBadImage = errors.New("sandbox: bad program image")

// Encode serializes the program into a component image — the byte
// string that certificates digest.
func (p Program) Encode() []byte {
	out := make([]byte, 0, len(imageMagic)+4+len(p)*instrSize)
	out = append(out, imageMagic...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(p)))
	out = append(out, n[:]...)
	for _, ins := range p {
		var b [instrSize]byte
		b[0] = byte(ins.Op)
		b[1] = ins.A
		b[2] = ins.B
		b[3] = ins.C
		binary.BigEndian.PutUint64(b[4:], uint64(ins.Imm))
		out = append(out, b[:]...)
	}
	return out
}

// Decode parses a component image back into a program.
func Decode(image []byte) (Program, error) {
	if len(image) < len(imageMagic)+4 || string(image[:len(imageMagic)]) != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	rest := image[len(imageMagic):]
	n := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if len(rest) != int(n)*instrSize {
		return nil, fmt.Errorf("%w: length mismatch (%d instructions, %d bytes)", ErrBadImage, n, len(rest))
	}
	p := make(Program, n)
	for i := range p {
		b := rest[i*instrSize : (i+1)*instrSize]
		p[i] = Instr{
			Op:  Opcode(b[0]),
			A:   b[1],
			B:   b[2],
			C:   b[3],
			Imm: int64(binary.BigEndian.Uint64(b[4:])),
		}
	}
	return p, nil
}
