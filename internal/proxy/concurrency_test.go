package proxy

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"paramecium/internal/clock"
	"paramecium/internal/obj"
)

// atomicCounterDecl exports one method whose implementation is itself
// safe for concurrent invocation, so tests exercise only the proxy's
// own concurrency.
var atomicCounterDecl = obj.MustInterfaceDecl("test.atomic.v1",
	obj.MethodDecl{Name: "inc", NumIn: 1, NumOut: 1},
)

func newAtomicCounter(meter *clock.Meter) (*obj.Object, *atomic.Int64) {
	o := obj.New("atomic-counter", meter)
	n := new(atomic.Int64)
	bi, err := o.AddInterface(atomicCounterDecl, n)
	if err != nil {
		panic(err)
	}
	bi.MustBind("inc", func(args ...any) ([]any, error) {
		return []any{n.Add(int64(args[0].(int)))}, nil
	})
	return o, n
}

// TestConcurrentCallsSharedHandle drives many goroutines through ONE
// MethodHandle of one proxy interface: the exact sharing pattern the
// per-call frame table exists for. Every call must observe its own
// results; no update may be lost.
func TestConcurrentCallsSharedHandle(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	target, n := newAtomicCounter(m.Meter)
	p, err := f.New(clientCtx, serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.atomic.v1")
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const callsEach = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				res, err := inc.Call(1)
				if err != nil {
					errs <- err
					return
				}
				if res[0].(int64) < 1 {
					errs <- errors.New("result from another call's frame")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := n.Load(); got != goroutines*callsEach {
		t.Fatalf("lost updates: counter = %d, want %d", got, goroutines*callsEach)
	}
	if got := p.Calls(); got != goroutines*callsEach {
		t.Fatalf("Calls() = %d, want %d", got, goroutines*callsEach)
	}
}

// TestConcurrentInvokeAndResolve mixes the string-keyed path, handle
// resolution and handle calls on one interface concurrently.
func TestConcurrentInvokeAndResolve(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	target, n := newAtomicCounter(m.Meter)
	p, err := f.New(clientCtx, serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.atomic.v1")

	const goroutines = 8
	const callsEach = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				if g%2 == 0 {
					if _, err := iv.Invoke("inc", 1); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				h, err := iv.Resolve("inc")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := h.Call(1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := n.Load(); got != goroutines*callsEach {
		t.Fatalf("lost updates: counter = %d, want %d", got, goroutines*callsEach)
	}
}

// TestProxyCloseRace is the regression test for the close/call race:
// callers racing with Close must either complete normally or fail
// with ErrClosed — never ErrNoDelivery, which before the per-call
// frame redesign could leak out when Close unregistered the fault
// handler between the caller's closed-check and its entry-page touch.
func TestProxyCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		f, svc, m := setup()
		serverCtx := svc.NewDomain()
		clientCtx := svc.NewDomain()
		target, _ := newAtomicCounter(m.Meter)
		p, err := f.New(clientCtx, serverCtx, target)
		if err != nil {
			t.Fatal(err)
		}
		iv, _ := p.Iface("test.atomic.v1")
		inc, err := iv.Resolve("inc")
		if err != nil {
			t.Fatal(err)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					_, err := inc.Call(1)
					if err == nil || errors.Is(err, ErrClosed) {
						continue
					}
					t.Errorf("round %d: call racing Close: %v", round, err)
					return
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := p.Close(); err != nil {
				t.Errorf("round %d: close: %v", round, err)
			}
		}()
		close(start)
		wg.Wait()

		// After Close every call must fail with ErrClosed.
		if _, err := inc.Call(1); !errors.Is(err, ErrClosed) {
			t.Fatalf("call after close = %v, want ErrClosed", err)
		}
	}
}

// TestConcurrentCrossingsChargeDeterministically is the regression
// test for the context-register TOCTOU: a cross-domain call charges
// exactly one context switch in and one back, no matter how calls
// interleave. Before the per-call crossing model, a concurrent handler
// could observe another call's transient target context in the shared
// register and skip its own switch pair, making the charge total (and
// the final register value) interleaving-dependent.
func TestConcurrentCrossingsChargeDeterministically(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	targetA, _ := newAtomicCounter(m.Meter)
	targetB, _ := newAtomicCounter(m.Meter)
	pA, err := f.New(svc.NewDomain(), serverCtx, targetA)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := f.New(svc.NewDomain(), serverCtx, targetB)
	if err != nil {
		t.Fatal(err)
	}
	ivA, _ := pA.Iface("test.atomic.v1")
	ivB, _ := pB.Iface("test.atomic.v1")
	incA, _ := ivA.Resolve("inc")
	incB, _ := ivB.Resolve("inc")

	const goroutines = 8
	const callsEach = 100
	m.Meter.ResetCounts()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h := incA
		if g%2 == 1 {
			h = incB
		}
		wg.Add(1)
		go func(h obj.MethodHandle) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				if _, err := h.Call(1); err != nil {
					t.Error(err)
					return
				}
			}
		}(h)
	}
	wg.Wait()
	want := uint64(2 * goroutines * callsEach)
	if got := m.Meter.Count(clock.OpCtxSwitch); got != want {
		t.Fatalf("context switches = %d, want exactly %d", got, want)
	}
}

// TestProxyCloseQuiesces: Close must not return while a call is still
// executing in the target's domain, so teardown that follows Close
// (destroying the target context, freeing target state) cannot race an
// in-flight cross-domain call.
func TestProxyCloseQuiesces(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()

	entered := make(chan struct{})
	release := make(chan struct{})
	o := obj.New("blocker", m.Meter)
	decl := obj.MustInterfaceDecl("test.block.v1",
		obj.MethodDecl{Name: "block", NumIn: 0, NumOut: 0})
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi.MustBind("block", func(...any) ([]any, error) {
		close(entered)
		<-release
		return nil, nil
	})
	p, err := f.New(clientCtx, serverCtx, o)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.block.v1")

	callDone := make(chan error, 1)
	go func() {
		_, err := iv.Invoke("block")
		callDone <- err
	}()
	<-entered // the call is now mid-invoke in the target domain

	// Two concurrent closers: the winner and the loser must BOTH wait
	// for the drain — teardown sequenced after any returned Close,
	// ErrClosed or not, must be safe.
	closeErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { closeErrs <- p.Close() }()
	}
	select {
	case err := <-closeErrs:
		t.Fatalf("Close returned (%v) while a call was executing in the target domain", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	var wins, losses int
	for i := 0; i < 2; i++ {
		switch err := <-closeErrs; {
		case err == nil:
			wins++
		case errors.Is(err, ErrClosed):
			losses++
		default:
			t.Fatal(err)
		}
	}
	if wins != 1 || losses != 1 {
		t.Fatalf("close results: %d nil, %d ErrClosed; want 1 and 1", wins, losses)
	}
	if err := <-callDone; err != nil {
		t.Fatal(err)
	}
	// Quiescence achieved: the target domain can now be torn down
	// without racing the (finished) call.
	if err := svc.DestroyDomain(serverCtx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCloseIdempotent: exactly one Close wins; the rest get
// ErrClosed.
func TestConcurrentCloseIdempotent(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	target, _ := newAtomicCounter(m.Meter)
	p, err := f.New(clientCtx, serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	const closers = 8
	var wins atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch err := p.Close(); {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrClosed):
			default:
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d Close calls succeeded, want exactly 1", wins.Load())
	}
}

// TestConcurrentCallsTwoProxies: independent proxies built from one
// factory share the frame table; their calls must not cross.
func TestConcurrentCallsTwoProxies(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientA := svc.NewDomain()
	clientB := svc.NewDomain()
	targetA, nA := newAtomicCounter(m.Meter)
	targetB, nB := newAtomicCounter(m.Meter)
	pA, err := f.New(clientA, serverCtx, targetA)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := f.New(clientB, serverCtx, targetB)
	if err != nil {
		t.Fatal(err)
	}
	ivA, _ := pA.Iface("test.atomic.v1")
	ivB, _ := pB.Iface("test.atomic.v1")
	incA, _ := ivA.Resolve("inc")
	incB, _ := ivB.Resolve("inc")

	const callsEach = 300
	var wg sync.WaitGroup
	for _, h := range []obj.MethodHandle{incA, incB, incA, incB} {
		wg.Add(1)
		go func(h obj.MethodHandle) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				if _, err := h.Call(1); err != nil {
					t.Error(err)
					return
				}
			}
		}(h)
	}
	wg.Wait()
	if nA.Load() != 2*callsEach || nB.Load() != 2*callsEach {
		t.Fatalf("cross-talk: A=%d B=%d, want %d each", nA.Load(), nB.Load(), 2*callsEach)
	}
}

// TestCloseTargetCondemnsNewProxies: after CloseTarget(ctx) the
// factory must refuse to build proxies onto ctx — otherwise a bind
// racing domain teardown could create a fresh route into a context
// about to be destroyed, reopening the quiescence hole CloseTarget
// exists to plug.
func TestCloseTargetCondemnsNewProxies(t *testing.T) {
	f, svc, m := setup()
	serverCtx := svc.NewDomain()
	clientCtx := svc.NewDomain()
	target, _ := newAtomicCounter(m.Meter)
	p, err := f.New(clientCtx, serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := p.Iface("test.atomic.v1")
	inc, err := iv.Resolve("inc")
	if err != nil {
		t.Fatal(err)
	}

	f.CloseTarget(serverCtx)
	if _, err := inc.Call(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("call through closed-by-target proxy = %v, want ErrClosed", err)
	}
	if _, err := f.New(clientCtx, serverCtx, target); err == nil {
		t.Fatal("factory built a proxy onto a condemned target context")
	}
	// Other targets are unaffected.
	otherCtx := svc.NewDomain()
	p2, err := f.New(clientCtx, otherCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	// Absolve lifts the gate (done by the kernel once the MMU context
	// itself is destroyed).
	f.Absolve(serverCtx)
	p3, err := f.New(clientCtx, serverCtx, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := p3.Close(); err != nil {
		t.Fatal(err)
	}
}
