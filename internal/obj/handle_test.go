package obj

import (
	"errors"
	"testing"
)

func handleTestIface(t *testing.T) (*Object, *BoundInterface, Invoker) {
	t.Helper()
	decl := MustInterfaceDecl("h.v1",
		MethodDecl{Name: "a", NumIn: 0, NumOut: 1},
		MethodDecl{Name: "b", NumIn: 1, NumOut: 0},
	)
	o := New("h", nil)
	bi, err := o.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := o.Iface("h.v1")
	return o, bi, iv
}

func TestDeclSlotAssignment(t *testing.T) {
	decl := MustInterfaceDecl("s.v1",
		MethodDecl{Name: "x"}, MethodDecl{Name: "y"}, MethodDecl{Name: "z"})
	for i, name := range []string{"x", "y", "z"} {
		md, ok := decl.Method(name)
		if !ok || md.Slot() != i {
			t.Fatalf("method %q slot = %d, want %d", name, md.Slot(), i)
		}
	}
}

func TestResolveSeesLaterBind(t *testing.T) {
	_, bi, iv := handleTestIface(t)
	h, err := iv.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	// Resolved before any binding: the slot is empty.
	if _, err := h.Call(); !errors.Is(err, ErrUnbound) {
		t.Fatalf("call on empty slot = %v, want ErrUnbound", err)
	}
	bi.MustBind("a", func(...any) ([]any, error) { return []any{1}, nil })
	res, err := h.Call()
	if err != nil || res[0] != 1 {
		t.Fatalf("call after bind = %v, %v", res, err)
	}
	// Rebind: same handle, new implementation.
	bi.MustBind("a", func(...any) ([]any, error) { return []any{2}, nil })
	res, err = h.Call()
	if err != nil || res[0] != 2 {
		t.Fatalf("call after rebind = %v, %v", res, err)
	}
}

func TestZeroHandleInvalid(t *testing.T) {
	var h MethodHandle
	if h.Valid() {
		t.Fatal("zero handle claims validity")
	}
	if _, err := h.Call(); !errors.Is(err, ErrUnbound) {
		t.Fatalf("zero handle call = %v, want ErrUnbound", err)
	}
	if NewMethodHandle(nil, nil).Valid() {
		t.Fatal("NewMethodHandle(nil, nil) claims validity")
	}
}

func TestResultArityValidatedBothPaths(t *testing.T) {
	_, bi, iv := handleTestIface(t)
	bi.MustBind("a", func(...any) ([]any, error) { return []any{1, 2}, nil }) // declares 1 result
	if _, err := iv.Invoke("a"); !errors.Is(err, ErrArity) {
		t.Fatalf("Invoke wrong result count = %v, want ErrArity", err)
	}
	h, err := iv.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Call(); !errors.Is(err, ErrArity) {
		t.Fatalf("handle wrong result count = %v, want ErrArity", err)
	}
	// Errors are exempt: a failing method may return any result list.
	bi.MustBind("b", func(...any) ([]any, error) { return []any{1, 2, 3}, errors.New("boom") })
	if _, err := iv.Invoke("b", 0); err == nil || errors.Is(err, ErrArity) {
		t.Fatalf("failing method = %v, want its own error", err)
	}
}

func TestDelegatePrefersOwnBindings(t *testing.T) {
	decl := MustInterfaceDecl("d.v1",
		MethodDecl{Name: "own", NumIn: 0, NumOut: 1},
		MethodDecl{Name: "shared", NumIn: 0, NumOut: 1},
	)
	backend := New("backend", nil)
	bbi, err := backend.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bbi.MustBind("own", func(...any) ([]any, error) { return []any{"backend"}, nil }).
		MustBind("shared", func(...any) ([]any, error) { return []any{"backend"}, nil })

	front := New("front", nil)
	fbi, err := front.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	fbi.MustBind("own", func(...any) ([]any, error) { return []any{"front"}, nil })
	if err := front.Delegate("d.v1", backend); err != nil {
		t.Fatal(err)
	}
	iv, _ := front.Iface("d.v1")
	for method, want := range map[string]string{"own": "front", "shared": "backend"} {
		h, err := iv.Resolve(method)
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Call()
		if err != nil || res[0] != want {
			t.Fatalf("%s = %v, %v; want %q", method, res, err, want)
		}
	}
	if !front.FullyBound() {
		t.Fatal("delegated object not fully bound")
	}
}

func TestInterposerResolveTransparent(t *testing.T) {
	o, bi, _ := handleTestIface(t)
	bi.MustBind("a", func(...any) ([]any, error) { return []any{10}, nil }).
		MustBind("b", func(...any) ([]any, error) { return nil, nil })

	ip := NewInterposer("mon", o)
	calls := 0
	if err := ip.Wrap("h.v1", "a", func(next Method, args ...any) ([]any, error) {
		calls++
		return next(args...)
	}); err != nil {
		t.Fatal(err)
	}
	iv, ok := ip.Iface("h.v1")
	if !ok {
		t.Fatal("interface lost")
	}
	ha, err := iv.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ha.Call()
	if err != nil || res[0] != 10 || calls != 1 {
		t.Fatalf("wrapped handle = %v, %v (calls=%d)", res, err, calls)
	}
	// Unwrapped method on an unmetered interposer resolves straight
	// through to the target's own handle.
	hb, err := iv.Resolve("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Call(1); err != nil {
		t.Fatal(err)
	}
	if _, err := iv.Resolve("nope"); !errors.Is(err, ErrNoMethod) {
		t.Fatalf("Resolve undeclared through interposer = %v", err)
	}
}

func TestInterposerWrapAfterResolveObserved(t *testing.T) {
	o, bi, _ := handleTestIface(t)
	bi.MustBind("a", func(...any) ([]any, error) { return []any{1}, nil })
	ip := NewInterposer("mon", o)
	// Ensure the interface's wrap set exists before Iface, as it would
	// for any interposer that wraps at least one method.
	if err := ip.Wrap("h.v1", "b", func(next Method, args ...any) ([]any, error) {
		return next(args...)
	}); err != nil {
		t.Fatal(err)
	}
	iv, _ := ip.Iface("h.v1")
	h, err := iv.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h.Call(); err != nil || res[0] != 1 {
		t.Fatalf("pre-wrap call = %v, %v", res, err)
	}
	// A wrapper installed after Resolve must be observed by the live
	// handle, exactly as string Invoke observes it.
	if err := ip.Wrap("h.v1", "a", func(next Method, args ...any) ([]any, error) {
		return []any{99}, nil
	}); err != nil {
		t.Fatal(err)
	}
	res, err := iv.Invoke("a")
	if err != nil || res[0] != 99 {
		t.Fatalf("Invoke after late wrap = %v, %v", res, err)
	}
	res, err = h.Call()
	if err != nil || res[0] != 99 {
		t.Fatalf("handle Call after late wrap = %v, %v; diverges from Invoke", res, err)
	}
}

func TestCompositionExportUsesHandles(t *testing.T) {
	decl := MustInterfaceDecl("c.v1", MethodDecl{Name: "f", NumIn: 0, NumOut: 1})
	child := New("child", nil)
	cbi, err := child.AddInterface(decl, nil)
	if err != nil {
		t.Fatal(err)
	}
	cbi.MustBind("f", func(...any) ([]any, error) { return []any{"child"}, nil })
	comp := NewComposition("comp", nil)
	if err := comp.AddChild("part", child); err != nil {
		t.Fatal(err)
	}
	if err := comp.ExportChildInterface("part", "c.v1"); err != nil {
		t.Fatal(err)
	}
	iv, _ := comp.Iface("c.v1")
	h, err := iv.Resolve("f")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Call()
	if err != nil || res[0] != "child" {
		t.Fatalf("composed handle = %v, %v", res, err)
	}
}
