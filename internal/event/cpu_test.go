package event

import (
	"sync"
	"testing"

	"paramecium/internal/clock"
	"paramecium/internal/hw"
	"paramecium/internal/mmu"
	"paramecium/internal/threads"
)

func newMultiService(ncpu int) (*Service, *hw.Machine, *threads.Scheduler) {
	machine := hw.New(hw.Config{PhysFrames: 16, CPUs: ncpu})
	sched := threads.NewSchedulerCPUs(machine.Meter, ncpu)
	return New(machine, sched), machine, sched
}

// TestRegisterIRQOnRoutesToCPU: a routed delivery switches the target
// CPU's context register — and only that CPU's.
func TestRegisterIRQOnRoutesToCPU(t *testing.T) {
	s, m, _ := newMultiService(2)
	userCtx := m.MMU.NewContext()
	var seenCPU mmu.CPUID = -1
	var seenCtx mmu.ContextID
	if err := s.RegisterIRQOn(2, "routed", userCtx, DispatchRaw, 1,
		func(f *hw.TrapFrame, _ *threads.Thread) {
			seenCPU = f.CPU
			seenCtx = m.MMU.CurrentOn(1)
			if cur := m.MMU.CurrentOn(0); cur != mmu.KernelContext {
				t.Errorf("CPU0 register moved to %d during CPU1 delivery", cur)
			}
		}); err != nil {
		t.Fatal(err)
	}
	before := m.Meter.Count(clock.OpCtxSwitch)
	if err := m.RaiseIRQOn(2, 0); err != nil { // arrives on CPU 0, routed to CPU 1
		t.Fatal(err)
	}
	if seenCPU != 1 || seenCtx != userCtx {
		t.Fatalf("delivered on CPU %d in ctx %d, want CPU 1 ctx %d", seenCPU, seenCtx, userCtx)
	}
	if m.MMU.CurrentOn(1) != mmu.KernelContext {
		t.Fatal("CPU1 register not restored after delivery")
	}
	if got := m.Meter.Count(clock.OpCtxSwitch) - before; got != 2 {
		t.Fatalf("switches = %d, want 2", got)
	}
}

// TestRegisterIRQOnValidatesCPU: binding to a CPU the machine does not
// have fails up front.
func TestRegisterIRQOnValidatesCPU(t *testing.T) {
	s, _, _ := newMultiService(2)
	err := s.RegisterIRQOn(2, "bad", mmu.KernelContext, DispatchRaw, 5,
		func(*hw.TrapFrame, *threads.Thread) {})
	if err == nil {
		t.Fatal("out-of-range CPU accepted")
	}
}

// TestEagerPopUpRunsOnBoundCPU: an eager pop-up thread is queued on
// the binding's CPU and (absent stealing pressure) dispatched there.
func TestEagerPopUpRunsOnBoundCPU(t *testing.T) {
	s, m, sched := newMultiService(2)
	var th *threads.Thread
	done := make(chan struct{})
	if err := s.RegisterIRQOn(4, "eager", mmu.KernelContext, DispatchEager, 1,
		func(_ *hw.TrapFrame, t2 *threads.Thread) {
			th = t2
			close(done)
		}); err != nil {
		t.Fatal(err)
	}
	if err := m.RaiseIRQOn(4, 0); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle()
	<-done
	if th == nil {
		t.Fatal("handler never ran")
	}
}

// TestConcurrentIRQsOnDistinctCPUs: interrupts bound to different CPUs
// deliver and run their pop-up handlers in parallel without
// serializing on any shared register.
func TestConcurrentIRQsOnDistinctCPUs(t *testing.T) {
	s, m, sched := newMultiService(4)
	const perLine = 50
	var mu sync.Mutex
	counts := map[hw.IRQLine]int{}
	for line := hw.IRQLine(0); line < 4; line++ {
		line := line
		if err := s.RegisterIRQOn(line, "worker", mmu.KernelContext, DispatchProto,
			mmu.CPUID(line), func(*hw.TrapFrame, *threads.Thread) {
				mu.Lock()
				counts[line]++
				mu.Unlock()
			}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for line := hw.IRQLine(0); line < 4; line++ {
		wg.Add(1)
		go func(line hw.IRQLine) {
			defer wg.Done()
			for i := 0; i < perLine; i++ {
				if err := m.RaiseIRQOn(line, mmu.CPUID(line)); err != nil {
					t.Error(err)
					return
				}
			}
		}(line)
	}
	wg.Wait()
	sched.RunUntilIdle()
	for line := hw.IRQLine(0); line < 4; line++ {
		if counts[line] != perLine {
			t.Fatalf("line %d delivered %d, want %d", line, counts[line], perLine)
		}
		st, ok := s.IRQStats(line)
		if !ok || st.Delivered != perLine {
			t.Fatalf("line %d stats = %+v", line, st)
		}
	}
}
