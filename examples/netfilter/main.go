// Netfilter: the paper's motivating scenario end to end. A PVM packet
// filter component is written in assembler, stored in the repository,
// and loaded three ways — certified into the kernel (no run-time
// checks), SFI-sandboxed into the kernel (Exokernel/SPIN-style), and
// into its own user domain behind a proxy. The example also exercises
// the certification escape hatch: an automated "prover" refuses the
// component, and the decision falls through to the system
// administrator.
package main

import (
	"bytes"
	"fmt"
	"log"

	"paramecium/internal/cert"
	"paramecium/internal/core"
	"paramecium/internal/netstack"
	"paramecium/internal/repoz"
	"paramecium/internal/sandbox"
)

func main() {
	log.SetFlags(0)

	// Trust infrastructure: authority -> {prover, sysadmin}.
	auth := cert.NewAuthority(100)
	k, err := core.Boot(core.Config{AuthorityKey: auth.PublicKey()})
	if err != nil {
		log.Fatal(err)
	}
	prover := cert.NewKeyCertifier("correctness-prover", cert.GenerateKey(101), cert.PrivKernelResident)
	// The prover only "proves" programs small enough for its search —
	// a limited application domain, as the paper anticipates.
	prover.Policy = func(component string, image []byte) bool {
		prog, err := sandbox.Decode(image)
		return err == nil && len(prog) <= 8
	}
	admin := cert.NewKeyCertifier("sysadmin", cert.GenerateKey(102), cert.PrivKernelResident)
	for _, c := range []*cert.KeyCertifier{prover, admin} {
		if err := k.Validator.AddDelegation(auth.Delegate(c.Name(), c.Key().Pub, cert.PrivKernelResident)); err != nil {
			log.Fatal(err)
		}
	}
	hatch := cert.NewEscapeHatch(prover, admin)
	fmt.Println("delegates in preference order:", hatch.Names())

	// The component: a UDP port-7 filter, written in PVM assembler.
	prog := sandbox.MustAssemble(netstack.PortFilterProgram(7))
	image := prog.Encode()
	fmt.Printf("component: %d instructions, %d-byte image\n", len(prog), len(image))

	// Certification via the escape hatch: the prover refuses (the
	// program is too big for it), the sysadmin certifies.
	c, err := hatch.Certify("portfilter", image, cert.PrivKernelResident)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified by %q (escape hatch fell through the prover)\n", c.Issuer)

	img := &repoz.Image{Name: "portfilter", Kind: repoz.KindPVM, Data: image, Cert: c}
	if err := k.Repo.Add(img); err != nil {
		log.Fatal(err)
	}

	// Load under all three regimes and compare per-packet cost.
	hit := netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.MAC{2, 0, 0, 0, 0, 2},
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
		999, 7, bytes.Repeat([]byte{0xAB}, 256))
	miss := netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 1}, netstack.MAC{2, 0, 0, 0, 0, 2},
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1},
		999, 9, []byte("other tenant"))

	fmt.Printf("\n%-20s %14s %8s %8s\n", "placement", "cycles/packet", "hit", "miss")
	for _, p := range []core.Placement{core.PlaceKernelCertified, core.PlaceKernelSandboxed, core.PlaceUser} {
		lf, err := k.LoadFilter("portfilter", p)
		if err != nil {
			log.Fatal(err)
		}
		const rounds = 100
		watch := k.Meter.Clock.StartWatch()
		var hits, misses int
		for i := 0; i < rounds; i++ {
			if ok, err := lf.Accept(hit); err != nil {
				log.Fatal(err)
			} else if ok {
				hits++
			}
			if ok, err := lf.Accept(miss); err != nil {
				log.Fatal(err)
			} else if !ok {
				misses++
			}
		}
		fmt.Printf("%-20s %14d %8d %8d\n", p, watch.Elapsed()/(2*rounds), hits, misses)
	}

	// Tampering after certification is caught at load time.
	tampered := append([]byte{}, image...)
	tampered[len(tampered)-1] ^= 0xFF
	img2 := &repoz.Image{Name: "portfilter-tampered", Kind: repoz.KindPVM, Data: tampered, Cert: c}
	if err := k.Repo.Add(img2); err != nil {
		log.Fatal(err)
	}
	if _, err := k.LoadFilter("portfilter-tampered", core.PlaceKernelCertified); err != nil {
		fmt.Printf("\ntampered component rejected at load time: %v\n", err)
	} else {
		log.Fatal("BUG: tampered component entered the kernel")
	}

	// And a component nobody certified cannot enter the kernel at
	// all — but it can still run sandboxed or in its own domain.
	wild := sandbox.MustAssemble(netstack.AcceptAllProgram)
	if err := k.Repo.Add(&repoz.Image{Name: "wild", Kind: repoz.KindPVM, Data: wild.Encode()}); err != nil {
		log.Fatal(err)
	}
	if _, err := k.LoadFilter("wild", core.PlaceKernelCertified); err != nil {
		fmt.Printf("uncertified component refused kernel residence: %v\n", err)
	}
	if _, err := k.LoadFilter("wild", core.PlaceKernelSandboxed); err != nil {
		log.Fatal(err)
	}
	fmt.Println("uncertified component accepted under SFI sandboxing instead")
}
