// Package cert implements the Paramecium certification service: the
// mechanism that decides whether a component is trustworthy enough to
// run inside the kernel protection domain.
//
// A certificate binds a message digest of the component image to a
// privilege level and is signed, via public-key cryptography, by a
// certification authority or one of its delegates. Delegates receive
// their power through delegation certificates forming a chain back to
// the authority, in the style of the Taos authentication work the
// paper cites. Because the certificate includes the digest, "it is
// impossible to modify the component after it has been certified."
//
// Delegates are ordered by preference and form an escape hatch: when
// one refuses to certify (e.g. an automated prover that cannot finish
// a proof), the next is tried — down to, in the paper's words, the
// system administrator or "even graduate students".
package cert

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"paramecium/internal/clock"
)

// Privilege is the capability a certificate grants to a component.
type Privilege uint32

// Privilege bits. A component's certificate must carry every privilege
// bit the requested placement needs, and a delegate may only grant
// bits inside its own delegated mask.
const (
	// PrivKernelResident allows loading into the kernel protection
	// domain.
	PrivKernelResident Privilege = 1 << iota
	// PrivDeviceAccess allows allocating I/O space and registering
	// interrupt handlers.
	PrivDeviceAccess
	// PrivSharedService allows the component to be bound by contexts
	// other than its loader (shared drivers, protocol stacks).
	PrivSharedService
)

// Has reports whether p contains every bit of want.
func (p Privilege) Has(want Privilege) bool { return p&want == want }

// String renders the privilege set.
func (p Privilege) String() string {
	if p == 0 {
		return "none"
	}
	var b bytes.Buffer
	add := func(s string) {
		if b.Len() > 0 {
			b.WriteByte('+')
		}
		b.WriteString(s)
	}
	if p.Has(PrivKernelResident) {
		add("kernel")
	}
	if p.Has(PrivDeviceAccess) {
		add("device")
	}
	if p.Has(PrivSharedService) {
		add("shared")
	}
	return b.String()
}

// DigestSize is the size of a component digest in bytes.
const DigestSize = sha256.Size

// Digest is a message digest of a component image.
type Digest [DigestSize]byte

// DigestImage computes the digest of an image, charging one digest
// block per 64 bytes on the meter (nil meter skips accounting).
func DigestImage(meter *clock.Meter, image []byte) Digest {
	if meter != nil {
		blocks := uint64(len(image)+63) / 64
		if blocks == 0 {
			blocks = 1
		}
		meter.ChargeN(clock.OpDigestBlock, blocks)
	}
	return sha256.Sum256(image)
}

// Certificate states that the component whose image hashes to Digest
// may run with the given privileges, vouched for by Issuer.
type Certificate struct {
	// Component is the component (class) name being certified.
	Component string
	// Digest is the SHA-256 of the certified image.
	Digest Digest
	// Privilege is the granted capability set.
	Privilege Privilege
	// Issuer names the delegate that signed the certificate.
	Issuer string
	// Signature is the Ed25519 signature over SigningBytes by the
	// issuer's key.
	Signature []byte
}

const certMagic = "PMCERT1\x00"

// SigningBytes returns the canonical byte string that is signed. The
// encoding is deterministic: magic, component, privilege, digest.
func (c *Certificate) SigningBytes() []byte {
	var b bytes.Buffer
	b.WriteString(certMagic)
	writeLenPrefixed(&b, []byte(c.Component))
	binary.Write(&b, binary.BigEndian, uint32(c.Privilege))
	b.Write(c.Digest[:])
	writeLenPrefixed(&b, []byte(c.Issuer))
	return b.Bytes()
}

// Delegation states that the named delegate's public key may issue
// certificates carrying privileges within MaxPrivilege. It is signed
// by the certification authority (or, for chains, by another
// delegate).
type Delegation struct {
	// Delegate names the subordinate (e.g. "type-safe-compiler",
	// "sysadmin").
	Delegate string
	// Key is the delegate's Ed25519 public key.
	Key ed25519.PublicKey
	// MaxPrivilege bounds what the delegate may grant.
	MaxPrivilege Privilege
	// Issuer names the signer: "" (or AuthorityName) for the root
	// authority, otherwise the parent delegate in a chain.
	Issuer string
	// Signature is over SigningBytes by the issuer's key.
	Signature []byte
}

const delegMagic = "PMDELEG1"

// SigningBytes returns the canonical signed encoding of the
// delegation.
func (d *Delegation) SigningBytes() []byte {
	var b bytes.Buffer
	b.WriteString(delegMagic)
	writeLenPrefixed(&b, []byte(d.Delegate))
	writeLenPrefixed(&b, d.Key)
	binary.Write(&b, binary.BigEndian, uint32(d.MaxPrivilege))
	writeLenPrefixed(&b, []byte(d.Issuer))
	return b.Bytes()
}

func writeLenPrefixed(b *bytes.Buffer, p []byte) {
	binary.Write(b, binary.BigEndian, uint32(len(p)))
	b.Write(p)
}

// Marshal encodes a certificate for storage in a component repository.
func (c *Certificate) Marshal() []byte {
	var b bytes.Buffer
	b.Write(c.SigningBytes())
	writeLenPrefixed(&b, c.Signature)
	return b.Bytes()
}

// UnmarshalCertificate decodes a certificate produced by Marshal.
func UnmarshalCertificate(data []byte) (*Certificate, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(certMagic))
	if _, err := r.Read(magic); err != nil || string(magic) != certMagic {
		return nil, errors.New("cert: bad certificate magic")
	}
	c := &Certificate{}
	comp, err := readLenPrefixed(r)
	if err != nil {
		return nil, fmt.Errorf("cert: component: %w", err)
	}
	c.Component = string(comp)
	var priv uint32
	if err := binary.Read(r, binary.BigEndian, &priv); err != nil {
		return nil, fmt.Errorf("cert: privilege: %w", err)
	}
	c.Privilege = Privilege(priv)
	if _, err := r.Read(c.Digest[:]); err != nil {
		return nil, fmt.Errorf("cert: digest: %w", err)
	}
	issuer, err := readLenPrefixed(r)
	if err != nil {
		return nil, fmt.Errorf("cert: issuer: %w", err)
	}
	c.Issuer = string(issuer)
	sig, err := readLenPrefixed(r)
	if err != nil {
		return nil, fmt.Errorf("cert: signature: %w", err)
	}
	c.Signature = sig
	return c, nil
}

func readLenPrefixed(r *bytes.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if int(n) > r.Len() {
		return nil, errors.New("length prefix exceeds data")
	}
	p := make([]byte, n)
	if _, err := r.Read(p); err != nil {
		return nil, err
	}
	return p, nil
}

// KeyPair is an Ed25519 signing key pair.
type KeyPair struct {
	Pub  ed25519.PublicKey
	Priv ed25519.PrivateKey
}

// GenerateKey derives a key pair deterministically from a seed,
// keeping all experiments reproducible. Production use would draw the
// seed from crypto/rand.
func GenerateKey(seed uint64) KeyPair {
	r := clock.NewRand(seed)
	s := make([]byte, ed25519.SeedSize)
	r.Bytes(s)
	priv := ed25519.NewKeyFromSeed(s)
	return KeyPair{Pub: priv.Public().(ed25519.PublicKey), Priv: priv}
}

// Sign signs msg with the pair's private key.
func (k KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.Priv, msg)
}
