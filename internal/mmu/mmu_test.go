package mmu

import (
	"errors"
	"testing"
	"testing/quick"

	"paramecium/internal/clock"
)

func newTestMMU(cfg Config) (*MMU, *clock.Meter) {
	meter := clock.NewMeter(clock.DefaultCosts())
	return New(meter, cfg), meter
}

func TestVAddrDecomposition(t *testing.T) {
	a := VAddr(0x12345)
	if got := a.VPN(); got != 0x12 {
		t.Errorf("VPN = %#x, want 0x12", got)
	}
	if got := a.Offset(); got != 0x345 {
		t.Errorf("Offset = %#x, want 0x345", got)
	}
	if got := a.PageBase(); got != 0x12000 {
		t.Errorf("PageBase = %#x, want 0x12000", got)
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		0:                               "---",
		PermRead:                        "r--",
		PermRead | PermWrite:            "rw-",
		PermRead | PermWrite | PermExec: "rwx",
		PermExec:                        "--x",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Perm(%b).String() = %q, want %q", p, got, want)
		}
	}
}

func TestAccessString(t *testing.T) {
	for a, want := range map[Access]string{AccessRead: "read", AccessWrite: "write", AccessExec: "exec"} {
		if got := a.String(); got != want {
			t.Errorf("Access %d = %q, want %q", a, got, want)
		}
	}
}

func TestKernelContextExists(t *testing.T) {
	m, _ := newTestMMU(Config{})
	if !m.HasContext(KernelContext) {
		t.Fatal("kernel context missing after New")
	}
	if m.Current() != KernelContext {
		t.Fatal("initial current context is not the kernel context")
	}
}

func TestNewContextDistinctIDs(t *testing.T) {
	m, _ := newTestMMU(Config{})
	a, b := m.NewContext(), m.NewContext()
	if a == b || a == KernelContext || b == KernelContext {
		t.Fatalf("NewContext ids %d, %d not distinct from each other and kernel", a, b)
	}
}

func TestMapTranslateRoundTrip(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x4000, 7, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	pa, err := m.Translate(ctx, 0x4123, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	want := PAddr(7<<PageShift | 0x123)
	if pa != want {
		t.Fatalf("Translate = %#x, want %#x", pa, want)
	}
}

func TestTranslateFaults(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()

	_, err := m.Translate(ctx, 0x9000, AccessRead)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultNoMapping {
		t.Fatalf("unmapped page: err = %v, want FaultNoMapping", err)
	}

	if err := m.Map(ctx, 0x9000, 1, PermRead); err != nil {
		t.Fatal(err)
	}
	_, err = m.Translate(ctx, 0x9000, AccessWrite)
	if !errors.As(err, &f) || f.Kind != FaultProtection {
		t.Fatalf("write to read-only: err = %v, want FaultProtection", err)
	}
	if f.Present != PermRead {
		t.Fatalf("fault Present = %v, want r--", f.Present)
	}

	_, err = m.Translate(ContextID(999), 0x9000, AccessRead)
	if !errors.As(err, &f) || f.Kind != FaultBadContext {
		t.Fatalf("bad context: err = %v, want FaultBadContext", err)
	}
	if f.Error() == "" {
		t.Fatal("fault error string empty")
	}
}

func TestProtectionFaultFromTLBHit(t *testing.T) {
	// A protection fault must be raised even when the entry is cached
	// in the TLB — this is what makes write-protected fault call-backs
	// (copy-on-write, proxies) reliable.
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x2000, 3, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x2000, AccessRead); err != nil {
		t.Fatal(err) // loads the TLB
	}
	_, err := m.Translate(ctx, 0x2000, AccessWrite)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultProtection {
		t.Fatalf("err = %v, want FaultProtection on TLB hit", err)
	}
}

func TestExecPermission(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x1000, 2, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x1000, AccessExec); err != nil {
		t.Fatalf("exec on r-x page: %v", err)
	}
	if err := m.Protect(ctx, 0x1000, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x1000, AccessExec); err == nil {
		t.Fatal("exec allowed after Protect removed PermExec")
	}
}

func TestUnmap(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x3000, 4, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x3000, AccessRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(ctx, 0x3000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x3000, AccessRead); err == nil {
		t.Fatal("translate succeeded after Unmap (stale TLB entry?)")
	}
}

func TestProtectInvalidatesTLB(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x5000, 5, PermRead|PermWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x5000, AccessWrite); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(ctx, 0x5000, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x5000, AccessWrite); err == nil {
		t.Fatal("write allowed after Protect downgraded the page")
	}
}

func TestProtectUnmappedPage(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Protect(ctx, 0x7000, PermRead); err == nil {
		t.Fatal("Protect on unmapped page succeeded")
	}
	if err := m.Protect(ContextID(999), 0x7000, PermRead); !errors.Is(err, ErrNoContext) {
		t.Fatalf("Protect in bad context: %v", err)
	}
}

func TestSwitchChargesAndValidates(t *testing.T) {
	m, meter := newTestMMU(Config{})
	ctx := m.NewContext()
	before := meter.Count(clock.OpCtxSwitch)
	if err := m.Switch(ctx); err != nil {
		t.Fatal(err)
	}
	if meter.Count(clock.OpCtxSwitch) != before+1 {
		t.Fatal("Switch did not charge a context switch")
	}
	if m.Current() != ctx {
		t.Fatal("Current() wrong after Switch")
	}
	// Switching to the same context is free.
	if err := m.Switch(ctx); err != nil {
		t.Fatal(err)
	}
	if meter.Count(clock.OpCtxSwitch) != before+1 {
		t.Fatal("self-switch charged a context switch")
	}
	if err := m.Switch(ContextID(404)); !errors.Is(err, ErrNoContext) {
		t.Fatalf("Switch to missing context: %v", err)
	}
}

func TestFlushOnSwitchConfig(t *testing.T) {
	m, meter := newTestMMU(Config{FlushOnSwitch: true})
	ctx := m.NewContext()
	if err := m.Map(KernelContext, 0x1000, 1, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(KernelContext, 0x1000, AccessRead); err != nil {
		t.Fatal(err)
	}
	missesBefore := meter.Count(clock.OpTLBMiss)
	if err := m.Switch(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Switch(KernelContext); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(KernelContext, 0x1000, AccessRead); err != nil {
		t.Fatal(err)
	}
	if meter.Count(clock.OpTLBMiss) != missesBefore+1 {
		t.Fatal("expected TLB miss after flush-on-switch round trip")
	}
}

func TestASIDTaggedTLBSurvivesSwitch(t *testing.T) {
	m, meter := newTestMMU(Config{}) // default: ASID-tagged, no flush
	ctx := m.NewContext()
	if err := m.Map(KernelContext, 0x1000, 1, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(KernelContext, 0x1000, AccessRead); err != nil {
		t.Fatal(err)
	}
	misses := meter.Count(clock.OpTLBMiss)
	if err := m.Switch(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Switch(KernelContext); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(KernelContext, 0x1000, AccessRead); err != nil {
		t.Fatal(err)
	}
	if meter.Count(clock.OpTLBMiss) != misses {
		t.Fatal("ASID-tagged TLB lost an entry across a context switch")
	}
}

func TestTLBChargesMissOnlyOnce(t *testing.T) {
	m, meter := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x8000, 8, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x8000, AccessRead); err != nil {
		t.Fatal(err)
	}
	misses := meter.Count(clock.OpTLBMiss)
	for i := 0; i < 10; i++ {
		if _, err := m.Translate(ctx, 0x8000, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	if meter.Count(clock.OpTLBMiss) != misses {
		t.Fatal("hot page charged additional TLB misses")
	}
	hits, _ := m.TLBStats()
	if hits < 10 {
		t.Fatalf("TLB hits = %d, want >= 10", hits)
	}
}

func TestTLBEviction(t *testing.T) {
	m, _ := newTestMMU(Config{TLBSize: 4})
	ctx := m.NewContext()
	for i := 0; i < 8; i++ {
		va := VAddr(uint64(i) << PageShift)
		if err := m.Map(ctx, va, uint64(i), PermRead); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Translate(ctx, va, AccessRead); err != nil {
			t.Fatal(err)
		}
	}
	// All translations must still succeed after evictions.
	for i := 0; i < 8; i++ {
		va := VAddr(uint64(i) << PageShift)
		pa, err := m.Translate(ctx, va, AccessRead)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if pa.Frame() != uint64(i) {
			t.Fatalf("page %d translated to frame %d", i, pa.Frame())
		}
	}
}

func TestDestroyContext(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Map(ctx, 0x1000, 1, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ctx, 0x1000, AccessRead); err != nil {
		t.Fatal(err)
	}
	if err := m.DestroyContext(ctx); err != nil {
		t.Fatal(err)
	}
	if m.HasContext(ctx) {
		t.Fatal("context alive after destroy")
	}
	if _, err := m.Translate(ctx, 0x1000, AccessRead); err == nil {
		t.Fatal("translate in destroyed context succeeded")
	}
	if err := m.DestroyContext(KernelContext); err == nil {
		t.Fatal("destroyed the kernel context")
	}
	if err := m.DestroyContext(ctx); !errors.Is(err, ErrNoContext) {
		t.Fatalf("double destroy: %v", err)
	}
}

func TestDestroyCurrentContextRefused(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if err := m.Switch(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.DestroyContext(ctx); err == nil {
		t.Fatal("destroyed the active context")
	}
}

func TestLookupAndMappings(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	if _, ok := m.Lookup(ctx, 0x1000); ok {
		t.Fatal("Lookup found a mapping in empty context")
	}
	if err := m.MapTagged(ctx, 0x1000, 9, PermRead, "tag"); err != nil {
		t.Fatal(err)
	}
	pte, ok := m.Lookup(ctx, 0x1000)
	if !ok || pte.Frame != 9 || pte.Tag != "tag" {
		t.Fatalf("Lookup = %+v, %v", pte, ok)
	}
	if got := m.Mappings(ctx); got != 1 {
		t.Fatalf("Mappings = %d, want 1", got)
	}
	if got := m.Mappings(ContextID(999)); got != 0 {
		t.Fatalf("Mappings(bad) = %d, want 0", got)
	}
}

// Property: for any mapped page, Translate preserves the page offset and
// maps to the installed frame.
func TestTranslatePreservesOffsetProperty(t *testing.T) {
	m, _ := newTestMMU(Config{})
	ctx := m.NewContext()
	f := func(vpn uint16, off uint16, frame uint16) bool {
		va := VAddr(uint64(vpn)<<PageShift | uint64(off)%PageSize)
		if err := m.Map(ctx, va, uint64(frame), PermRead); err != nil {
			return false
		}
		pa, err := m.Translate(ctx, va, AccessRead)
		if err != nil {
			return false
		}
		return pa.Frame() == uint64(frame) && uint64(pa)&(PageSize-1) == va.Offset()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPhysMemAllocFree(t *testing.T) {
	p := NewPhysMem(4)
	if p.NumFrames() != 4 || p.FreeFrames() != 4 {
		t.Fatalf("fresh physmem: %d/%d", p.FreeFrames(), p.NumFrames())
	}
	var frames []uint64
	for i := 0; i < 4; i++ {
		f, err := p.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := p.AllocFrame(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc on empty: %v", err)
	}
	released, err := p.Unref(frames[0])
	if err != nil || !released {
		t.Fatalf("Unref = %v, %v", released, err)
	}
	if p.FreeFrames() != 1 {
		t.Fatalf("FreeFrames = %d, want 1", p.FreeFrames())
	}
	if _, err := p.AllocFrame(); err != nil {
		t.Fatalf("realloc after free: %v", err)
	}
}

func TestPhysMemRefCounting(t *testing.T) {
	p := NewPhysMem(2)
	f, err := p.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ref(f); err != nil {
		t.Fatal(err)
	}
	if got := p.RefCount(f); got != 2 {
		t.Fatalf("RefCount = %d, want 2", got)
	}
	released, err := p.Unref(f)
	if err != nil || released {
		t.Fatalf("first Unref released the shared frame: %v %v", released, err)
	}
	released, err = p.Unref(f)
	if err != nil || !released {
		t.Fatalf("second Unref did not release: %v %v", released, err)
	}
	if err := p.Ref(f); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("Ref on freed frame: %v", err)
	}
}

func TestPhysMemReadWrite(t *testing.T) {
	p := NewPhysMem(2)
	f, err := p.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	pa := PAddr(f << PageShift)
	msg := []byte("hello, physical world")
	if err := p.Write(pa+100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := p.Read(pa+100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("read back %q", got)
	}
}

func TestPhysMemCrossFrameAccess(t *testing.T) {
	p := NewPhysMem(4)
	// Allocate two frames; AllocFrame hands out low numbers first so
	// they are adjacent.
	f1, _ := p.AllocFrame()
	f2, _ := p.AllocFrame()
	if f2 != f1+1 {
		t.Skipf("frames not adjacent (%d, %d)", f1, f2)
	}
	pa := PAddr(f1<<PageShift + PageSize - 4)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := p.Write(pa, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := p.Read(pa, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("cross-frame read = %v", got)
		}
	}
}

func TestPhysMemAccessUnallocated(t *testing.T) {
	p := NewPhysMem(2)
	if err := p.Write(PAddr(0), []byte{1}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("write to unallocated frame: %v", err)
	}
	buf := make([]byte, 1)
	if err := p.Read(PAddr(1<<PageShift), buf); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("read from unallocated frame: %v", err)
	}
}

func TestFramePayload(t *testing.T) {
	p := NewPhysMem(1)
	f, _ := p.AllocFrame()
	payload, err := p.FramePayload(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != PageSize {
		t.Fatalf("payload len = %d", len(payload))
	}
	payload[0] = 0xAB
	got := make([]byte, 1)
	if err := p.Read(PAddr(f<<PageShift), got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatal("FramePayload does not alias frame contents")
	}
	if _, err := p.FramePayload(99); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("FramePayload(bad): %v", err)
	}
}

// Property: alloc/unref sequences never lose frames: free + live == total.
func TestPhysMemConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		p := NewPhysMem(8)
		var live []uint64
		for _, alloc := range ops {
			if alloc {
				fr, err := p.AllocFrame()
				if err == nil {
					live = append(live, fr)
				} else if len(live) != 8 {
					return false // spurious OOM
				}
			} else if len(live) > 0 {
				fr := live[len(live)-1]
				live = live[:len(live)-1]
				if _, err := p.Unref(fr); err != nil {
					return false
				}
			}
		}
		return p.FreeFrames()+len(live) == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
